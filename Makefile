# Development targets for the CORP reproduction. `make check` is the
# gate CI (and contributors) run before merging.

GO ?= go

.PHONY: check check-perf farm-smoke fmt vet build test race scale-smoke bench bench-figs bench-diff profile-scale

check: fmt vet build test race farm-smoke scale-smoke
	@$(MAKE) --no-print-directory check-perf PERF_FATAL=0

# gofmt -l prints unformatted files; fail loudly if there are any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" ; echo "$$out" ; exit 1 ; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race subset covers the packages with real concurrency: the parallel
# sweep runner, the shared workload-snapshot cache, the DNN's shared
# training state, the scheduler's batched-refresh engine (the
# multi-worker equivalence tests drive the gather/forward/scatter phases
# across goroutines), and the farm dispatcher/worker pair (leases,
# heartbeats, and result submission race by design). -short skips the
# heavyweight single-threaded determinism tests (they add minutes under
# the race detector and no concurrency coverage). internal/sim alone runs
# ~10 minutes on a one-core box, right at go test's default -timeout;
# raise it so a loaded machine cannot flake the gate.
race:
	$(GO) test -race -short -timeout 30m ./internal/sim ./internal/workload ./internal/dnn ./internal/scheduler ./internal/farm

# farm-smoke builds the corpfarm/corpfarmd pair and runs a localhost
# mini-campaign (one figure plus the faulted extension figure) through two
# spawned corpfarmd worker processes — the cheapest end-to-end proof that
# the HTTP work-pull protocol, process spawning, and positional result
# assembly work outside the test harness.
farm-smoke:
	@mkdir -p bin
	$(GO) build -o bin/corpfarm ./cmd/corpfarm
	$(GO) build -o bin/corpfarmd ./cmd/corpfarmd
	./bin/corpfarm -addr 127.0.0.1:0 -quick -local 0 -spawn 2 -figs fig06,ext-faults

# scale-smoke runs the short-horizon scale-profile smoke test explicitly:
# one 5000-PM / 20000-VM RCCR burst at a truncated horizon, run with the
# periodic resident tables on and off and compared bit-for-bit. It also
# rides the plain `go test ./...` tier; the named target keeps the 5k-PM
# path visible as its own CI step.
scale-smoke:
	$(GO) test -count=1 -run TestScaleProfileSmoke ./internal/sim

# profile-scale captures pprof CPU+heap profiles of the scale-profile
# single run (scale/sim-scale5k-rccr only, via -bench-filter — no other
# bench or its setup runs). -bench-filter also takes a comma-separated
# list (e.g. "scale/,sim/span") to profile several groups in one run.
# Inspect with `go tool pprof cpu-scale.pprof`.
# This is where every scale-profile optimisation starts; see EXPERIMENTS.md.
profile-scale:
	$(GO) run ./cmd/corpbench -json -bench-filter scale/sim-scale5k-rccr-w1 \
		-cpuprofile cpu-scale.pprof -memprofile mem-scale.pprof -out /tmp/bench-scale.json
	@echo "wrote cpu-scale.pprof mem-scale.pprof (bench json: /tmp/bench-scale.json)"

# bench runs the hot-path benchmark suite at a fixed benchtime (stable
# enough for snapshot comparison) and writes the BENCH_<date>.json perf
# snapshot via corpbench -json. Commit the snapshot to extend the perf
# trajectory.
BENCHTIME ?= 2s
bench:
	$(GO) test -run XXX -bench 'TableII|CorpObserve' -benchtime $(BENCHTIME) ./internal/dnn ./internal/predict
	$(GO) run ./cmd/corpbench -json -out BENCH_$$(date +%Y-%m-%d).json

# bench-diff compares two snapshots and fails on >10% ns/op regression
# (or any allocs/op growth) in the DNN kernels:
#   make bench-diff OLD=BENCH_2026-08-06.json NEW=BENCH_2026-09-01.json
bench-diff:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "usage: make bench-diff OLD=old.json NEW=new.json"; exit 1; }
	$(GO) run ./cmd/corpbench -bench-diff "$(OLD),$(NEW)"

# check-perf captures a quick snapshot (kernel + engine micro-benches
# only) and diffs it against the newest committed BENCH_*.json. Run
# standalone it fails on DNN/HMM-kernel ns regressions and on allocs/op
# growth in any non-engine bench (predictor refresh paths included); from
# `make check` it is invoked with PERF_FATAL=0 so a noisy CI box warns
# instead of blocking.
# The equivalence tests are the correctness side of the perf work: they
# pin every figure series bit-identical with the workload snapshot cache
# on vs off, with the event-queue core vs the reference slot loop, and
# with the batched CORP refresh vs the per-VM forward path, so a perf
# "win" can never silently change results.
# The quick capture runs BEFORE the equivalence tests: committed
# BENCH_*.json snapshots are taken on an otherwise-idle box, and several
# minutes of figure sweeps right before the capture leave a small
# machine hot enough to skew the µs-scale kernels past the 10% gate.
PERF_FATAL ?= 1
check-perf:
	@latest="$$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)"; \
	if [ -z "$$latest" ]; then echo "check-perf: no committed BENCH_*.json; skipping bench diff"; exit 0; fi; \
	tmp="$$(mktemp)"; \
	$(GO) run ./cmd/corpbench -json -bench-quick -out "$$tmp" >/dev/null || exit 1; \
	if $(GO) run ./cmd/corpbench -bench-diff "$$latest,$$tmp"; then rm -f "$$tmp"; \
	elif [ "$(PERF_FATAL)" = "0" ]; then \
		echo "check-perf: WARNING: kernel regression vs $$latest (non-fatal in make check)"; rm -f "$$tmp"; \
	else rm -f "$$tmp"; exit 1; fi
	$(GO) test -count=1 -run 'TestWorkloadCacheEquivalence|TestFigureCoreEquivalence|TestFigureBatchEquivalence' ./internal/experiments

# bench-figs regenerates every figure once — the end-to-end sweep suite
# (the old `make bench` behaviour).
bench-figs:
	$(GO) test -bench . -benchtime 1x ./...
