# Development targets for the CORP reproduction. `make check` is the
# gate CI (and contributors) run before merging.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

# gofmt -l prints unformatted files; fail loudly if there are any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" ; echo "$$out" ; exit 1 ; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race subset covers the packages with real concurrency: the parallel
# sweep runner and the DNN's shared training state. -short skips the
# heavyweight single-threaded determinism tests (they add minutes under
# the race detector and no concurrency coverage).
race:
	$(GO) test -race -short ./internal/sim ./internal/dnn

bench:
	$(GO) test -bench . -benchtime 1x ./...
