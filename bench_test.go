package corp

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each bench iteration regenerates
// the corresponding figure's series; run with -v (benches b.Log the series
// once) or use cmd/corpbench for the full text output.
//
// Benches default to quick mode (small cluster, 3-point sweeps) so the
// whole suite completes in minutes; set CORP_BENCH_FULL=1 for the paper's
// full scale.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// TestMain reports the workload snapshot cache's counters after the suite,
// so `make bench-figs` CI output shows whether the figure sweeps actually
// shared generations — a sharing regression appears as a hit-rate collapse.
func TestMain(m *testing.M) {
	code := m.Run()
	if st := WorkloadCacheCounters(); st.Hits+st.Misses > 0 {
		fmt.Printf("workload cache: %d hits, %d misses, %d evictions, %.1f MB resident\n",
			st.Hits, st.Misses, st.Evictions, float64(st.Bytes)/1e6)
	}
	os.Exit(code)
}

// benchOptions picks quick or full scale.
func benchOptions(seed int64) Options {
	if os.Getenv("CORP_BENCH_FULL") != "" {
		return FullOptions(seed)
	}
	return QuickOptions(seed)
}

// TestTableIIDefaults pins the implemented defaults to Table II.
func TestTableIIDefaults(t *testing.T) {
	f, err := ReproduceFigure("tableII", QuickOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		s := f.SeriesByLabel(label)
		if s == nil {
			t.Fatalf("Table II entry %q missing", label)
		}
		return s.Y[0]
	}
	checks := map[string]float64{
		"resource types l":    3,
		"P_th":                0.95,
		"DNN layers h":        4,
		"DNN units per layer": 50,
		"HMM states H":        3,
		"confidence min":      0.50,
		"confidence max":      0.90,
		"jobs |J| max":        300,
	}
	for label, want := range checks {
		if got := get(label); got != want {
			t.Errorf("%s = %v, want %v", label, got, want)
		}
	}
}

// benchFigure runs one figure per iteration and logs it once.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	o := benchOptions(1)
	var fig *Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = ReproduceFigure(id, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if fig != nil {
		b.Log("\n" + fig.String())
	}
}

// BenchmarkFig06PredictionError regenerates Fig. 6 (prediction error rate
// vs number of jobs, cluster).
func BenchmarkFig06PredictionError(b *testing.B) { benchFigure(b, "fig06") }

// BenchmarkFig07Utilization regenerates Fig. 7 (per-resource utilization
// vs number of jobs, cluster).
func BenchmarkFig07Utilization(b *testing.B) { benchFigure(b, "fig07") }

// BenchmarkFig08UtilVsSLO regenerates Fig. 8 (overall utilization vs SLO
// violation rate, cluster).
func BenchmarkFig08UtilVsSLO(b *testing.B) { benchFigure(b, "fig08") }

// BenchmarkFig09SLOVsConfidence regenerates Fig. 9 (SLO violation rate vs
// confidence level, cluster).
func BenchmarkFig09SLOVsConfidence(b *testing.B) { benchFigure(b, "fig09") }

// BenchmarkFig10Overhead regenerates Fig. 10 (allocation overhead,
// cluster).
func BenchmarkFig10Overhead(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11UtilizationEC2 regenerates Fig. 11 (per-resource
// utilization vs number of jobs, EC2).
func BenchmarkFig11UtilizationEC2(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12UtilVsSLOEC2 regenerates Fig. 12 (overall utilization vs
// SLO violation rate, EC2).
func BenchmarkFig12UtilVsSLOEC2(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkFig13SLOVsConfidenceEC2 regenerates Fig. 13 (SLO violation rate
// vs confidence level, EC2).
func BenchmarkFig13SLOVsConfidenceEC2(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14OverheadEC2 regenerates Fig. 14 (allocation overhead,
// EC2).
func BenchmarkFig14OverheadEC2(b *testing.B) { benchFigure(b, "fig14") }

// benchAblation runs one CORP variant per iteration.
func benchAblation(b *testing.B, a experiments.Ablation) {
	b.Helper()
	o := benchOptions(1)
	jobs := 120
	if os.Getenv("CORP_BENCH_FULL") != "" {
		jobs = 300
	}
	var r *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunAblation(o, a, jobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r != nil {
		b.Logf("%s: overall=%.4f slo=%.4f errRate=%.4f opp=%d fresh=%d",
			a, r.Overall, r.SLORate, r.PredictionErrorRate,
			r.PlacedOpportunistic, r.PlacedFresh)
	}
}

// BenchmarkAblationFull is unmodified CORP, the ablation reference point.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, experiments.AblationFull) }

// BenchmarkAblationNoHMM removes the peak/valley fluctuation correction.
func BenchmarkAblationNoHMM(b *testing.B) { benchAblation(b, experiments.AblationNoHMM) }

// BenchmarkAblationNoPacking places every job as a singleton entity.
func BenchmarkAblationNoPacking(b *testing.B) { benchAblation(b, experiments.AblationNoPacking) }

// BenchmarkAblationNoCI removes the confidence-interval conservatism.
func BenchmarkAblationNoCI(b *testing.B) { benchAblation(b, experiments.AblationNoCI) }

// BenchmarkAblationETSPredictor swaps the DNN+HMM predictor for RCCR's ETS.
func BenchmarkAblationETSPredictor(b *testing.B) { benchAblation(b, experiments.AblationETSPredictor) }

// BenchmarkSimulationPerScheme measures one full simulation run per
// scheme at bench scale — the end-to-end cost comparison behind
// Figs. 10/14.
func BenchmarkSimulationPerScheme(b *testing.B) {
	for _, sc := range scheduler.Schemes() {
		sc := sc
		b.Run(sc.String(), func(b *testing.B) {
			o := benchOptions(1)
			for i := 0; i < b.N; i++ {
				cfg := SimConfig{
					NumPMs: 10, NumVMs: 40, NumJobs: 80, Seed: int64(i),
					Scheduler: SchedulerConfig{Scheme: sc, Seed: int64(i)},
				}
				_ = o
				if _, err := RunSimulation(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestReproduceFigureUnknownID covers the facade's error path.
func TestReproduceFigureUnknownID(t *testing.T) {
	if _, err := ReproduceFigure("fig99", QuickOptions(1)); err == nil {
		t.Error("unknown figure should fail")
	}
}

// TestFigureIDsAllRunnable checks every listed ID resolves to a runner.
func TestFigureIDsAllRunnable(t *testing.T) {
	for _, id := range FigureIDs() {
		if id == "tableII" {
			continue // runs instantly, exercised in TestTableIIDefaults
		}
		// Resolution only — running all would repeat the bench suite.
		if _, err := ReproduceFigure(id+"-missing", QuickOptions(1)); err == nil {
			t.Error("suffixed ID should not resolve")
		}
	}
}

// TestDefaultSimConfig pins the facade defaults.
func TestDefaultSimConfig(t *testing.T) {
	cfg := DefaultSimConfig()
	if cfg.NumJobs != 300 || cfg.Scheduler.Scheme != SchemeCORP || cfg.Profile != ProfileCluster {
		t.Errorf("DefaultSimConfig = %+v", cfg)
	}
}

// TestFacadeWorkload exercises the workload generation re-export.
func TestFacadeWorkload(t *testing.T) {
	jobs, err := GenerateWorkload(WorkloadConfig{Seed: 1, NumJobs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 10 {
		t.Errorf("got %d jobs", len(jobs))
	}
}

// BenchmarkExtensionStrategies compares CORP placement strategies on a
// heterogeneous contended cluster.
func BenchmarkExtensionStrategies(b *testing.B) { benchFigure(b, "ext-strategies") }

// BenchmarkExtensionPackK compares entity sizes k = 1, 2, 3.
func BenchmarkExtensionPackK(b *testing.B) { benchFigure(b, "ext-packk") }

// BenchmarkExtensionMixedWorkload measures the cooperative long+short mode.
func BenchmarkExtensionMixedWorkload(b *testing.B) { benchFigure(b, "ext-mixed") }

// BenchmarkExtensionOracleGap measures the CORP-to-oracle headroom.
func BenchmarkExtensionOracleGap(b *testing.B) { benchFigure(b, "ext-oracle") }

// BenchmarkExtensionFaults sweeps the failure rate through the fault
// injector.
func BenchmarkExtensionFaults(b *testing.B) { benchFigure(b, "ext-faults") }

// TestReproduceExtFaultsQuick runs the fault-tolerance extension through
// the public facade (the acceptance path for the fault subsystem).
func TestReproduceExtFaultsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	f, err := ReproduceFigure("ext-faults", QuickOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "ext-faults" || len(f.Series) != 8 {
		t.Fatalf("figure = %q with %d series", f.ID, len(f.Series))
	}
	// The facade re-exports the fault config and deterministic clock.
	var _ FaultConfig = FaultConfig{VMCrashProb: 0.01}
	var _ Clock = &VirtualClock{StepMicros: 1}
}
