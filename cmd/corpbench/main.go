// Command corpbench regenerates the paper's tables and figures as text
// series, and doubles as the perf-harness front end.
//
// Usage:
//
//	corpbench [flags]
//
//	-fig        figure id (tableII, fig06..fig14, ablations) or "all"
//	-seed       workload seed (default 1)
//	-quick      small cluster and 3-point sweeps (default true)
//	-workers    intra-run prediction-engine workers per simulation
//	            (0 = auto from the shared budget, 1 = serial; figures
//	            are identical at any value)
//	-core       event | slot simulator core (default event; figures are
//	            bit-identical either way — see the core-equivalence test)
//	-workload-cache  on | off: share generated workload snapshots across
//	            the sweep's runs (default on; figures are bit-identical
//	            either way — see the cache-equivalence test)
//	-forecast-tier  off | auto: CORP two-tier predictor for figure runs
//	            (default off; off is bit-identical to the single-tier
//	            pipeline — see the batch-equivalence test)
//	-progress   print per-batch sweep progress to stderr
//	-list       print the available figure ids and exit
//	-md         render the output as a Markdown report
//	-json       run the perf benchmark suite and write a JSON snapshot
//	-out        snapshot path for -json (default BENCH_<date>.json)
//	-bench-diff compare two snapshots "old.json,new.json"; non-zero exit
//	            on >10% ns/op regression in the DNN kernels
//	-bench-tol  fractional regression tolerance for -bench-diff (default 0.10)
//	-bench-filter with -json, run only benches whose name contains one of
//	            these comma-separated substrings (e.g. "scale/,sim/span")
//	-cpuprofile write a pprof CPU profile of the run to the given file
//	-memprofile write a pprof heap profile at exit to the given file
//
// Examples:
//
//	corpbench -fig fig06
//	corpbench -fig all -quick=false     # full paper-scale run (slow)
//	corpbench -json -out BENCH_2026-08-06.json
//	corpbench -bench-diff BENCH_old.json,BENCH_new.json
//	corpbench -fig fig06 -cpuprofile cpu.out
//	corpbench -json -bench-filter scale/sim-scale5k -cpuprofile cpu.pprof -out /tmp/scale.json
//	corpbench -json -bench-filter scale/,sim/span -out /tmp/groups.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("corpbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure id or \"all\"")
	seed := fs.Int64("seed", 1, "workload seed")
	quick := fs.Bool("quick", true, "small cluster and 3-point sweeps")
	workers := fs.Int("workers", 0, "intra-run prediction-engine workers per simulation (0 = auto, 1 = serial)")
	coreName := fs.String("core", "event", "simulator core: event or slot (bit-identical figures)")
	wlCache := fs.String("workload-cache", "on", "share generated workload snapshots across runs: on or off")
	forecastTier := fs.String("forecast-tier", "off", "CORP two-tier predictor for figure runs: off or auto")
	progress := fs.Bool("progress", false, "print per-batch sweep progress to stderr")
	list := fs.Bool("list", false, "print the available figure ids and exit")
	md := fs.Bool("md", false, "render the output as a Markdown report")
	benchJSON := fs.Bool("json", false, "run the perf benchmark suite and write a JSON snapshot")
	benchOut := fs.String("out", "", "snapshot path for -json (default BENCH_<date>.json)")
	benchQuick := fs.Bool("bench-quick", false, "with -json, skip the end-to-end figure bench")
	benchFilter := fs.String("bench-filter", "", "with -json, run only benches whose name contains one of these comma-separated substrings")
	benchDiff := fs.String("bench-diff", "", "compare two snapshots \"old.json,new.json\"")
	benchTol := fs.Float64("bench-tol", 0.10, "fractional ns/op regression tolerance for -bench-diff")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *wlCache {
	case "on":
		corp.SetWorkloadCache(true)
	case "off":
		corp.SetWorkloadCache(false)
	default:
		return fmt.Errorf("workload-cache: want on or off, got %q", *wlCache)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "corpbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "corpbench: memprofile:", err)
			}
		}()
	}

	switch {
	case *list:
		for _, id := range corp.FigureIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	case *benchDiff != "":
		return runBenchDiff(out, *benchDiff, *benchTol)
	case *benchJSON:
		return runBenchJSON(out, *benchOut, *benchQuick, *benchFilter)
	}

	core, err := sim.ParseCore(*coreName)
	if err != nil {
		return err
	}
	switch *forecastTier {
	case "off", "auto":
	default:
		return fmt.Errorf("forecast-tier: want off or auto, got %q", *forecastTier)
	}
	opts := corp.Options{Seed: *seed, Quick: *quick, Workers: *workers, Core: core, ForecastTier: *forecastTier}
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "corpbench: batch %d/%d runs done\n", done, total)
		}
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = corp.FigureIDs()
	}
	var figs []*corp.Figure
	for _, id := range ids {
		start := time.Now()
		f, err := corp.ReproduceFigure(id, opts)
		if err != nil {
			return err
		}
		if *md {
			figs = append(figs, f)
			continue
		}
		fmt.Fprint(out, f.String())
		fmt.Fprintf(out, "  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if *md {
		return experiments.WriteMarkdownReport(out, "CORP reproduction report", figs)
	}
	printCacheStats(out)
	return nil
}

// printCacheStats surfaces the workload snapshot cache's counters after a
// figure sweep, so CI logs show whether runs actually shared generations.
func printCacheStats(out io.Writer) {
	st := corp.WorkloadCacheCounters()
	if st.Hits == 0 && st.Misses == 0 {
		return
	}
	fmt.Fprintf(out, "workload cache: %d hits, %d misses, %d evictions, %d entries, %.1f MB\n",
		st.Hits, st.Misses, st.Evictions, st.Entries, float64(st.Bytes)/1e6)
}

// runBenchJSON runs the perf suite (optionally restricted to benches whose
// name contains filter) and writes the snapshot file.
func runBenchJSON(out io.Writer, path string, quick bool, filter string) error {
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	snap := perf.SuiteFiltered(quick, filter)
	snap.Date = time.Now().Format("2006-01-02")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench snapshot: %w", err)
	}
	defer f.Close()
	if err := snap.WriteJSON(f); err != nil {
		return fmt.Errorf("bench snapshot: %w", err)
	}
	for _, r := range snap.Results {
		fmt.Fprintf(out, "%-28s %12.1f ns/op %8d allocs/op %10d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	if st := snap.WorkloadCache; st != nil {
		fmt.Fprintf(out, "workload cache: %d hits, %d misses, %d evictions\n",
			st.Hits, st.Misses, st.Evictions)
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// runBenchDiff loads two snapshots and fails on kernel regressions.
func runBenchDiff(out io.Writer, spec string, tol float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("bench-diff: want \"old.json,new.json\", got %q", spec)
	}
	snaps := make([]perf.Snapshot, 2)
	for i, path := range parts {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return fmt.Errorf("bench-diff: %w", err)
		}
		s, err := perf.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("bench-diff %s: %w", path, err)
		}
		snaps[i] = s
	}
	report, err := perf.Diff(snaps[0], snaps[1], tol)
	fmt.Fprint(out, report)
	return err
}
