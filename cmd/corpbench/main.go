// Command corpbench regenerates the paper's tables and figures as text
// series.
//
// Usage:
//
//	corpbench [flags]
//
//	-fig    figure id (tableII, fig06..fig14, ablations) or "all"
//	-seed   workload seed (default 1)
//	-quick  small cluster and 3-point sweeps (default true)
//	-list   print the available figure ids and exit
//
// Examples:
//
//	corpbench -fig fig06
//	corpbench -fig all -quick=false     # full paper-scale run (slow)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("corpbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure id or \"all\"")
	seed := fs.Int64("seed", 1, "workload seed")
	quick := fs.Bool("quick", true, "small cluster and 3-point sweeps")
	list := fs.Bool("list", false, "print the available figure ids and exit")
	md := fs.Bool("md", false, "render the output as a Markdown report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range corp.FigureIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	opts := corp.Options{Seed: *seed, Quick: *quick}
	ids := []string{*fig}
	if *fig == "all" {
		ids = corp.FigureIDs()
	}
	var figs []*corp.Figure
	for _, id := range ids {
		start := time.Now()
		f, err := corp.ReproduceFigure(id, opts)
		if err != nil {
			return err
		}
		if *md {
			figs = append(figs, f)
			continue
		}
		fmt.Fprint(out, f.String())
		fmt.Fprintf(out, "  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if *md {
		return experiments.WriteMarkdownReport(out, "CORP reproduction report", figs)
	}
	return nil
}
