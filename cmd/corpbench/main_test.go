package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"tableII", "fig06", "fig14", "ablations", "ext-mixed"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunTableII(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "tableII"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P_th") {
		t.Errorf("tableII output missing P_th: %.120s", buf.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "fig99"}, &buf); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "tableII", "-md"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# CORP reproduction report") {
		t.Errorf("markdown report header missing: %.120s", buf.String())
	}
}
