package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"tableII", "fig06", "fig14", "ablations", "ext-mixed"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunTableII(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "tableII"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P_th") {
		t.Errorf("tableII output missing P_th: %.120s", buf.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "fig99"}, &buf); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "tableII", "-md"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# CORP reproduction report") {
		t.Errorf("markdown report header missing: %.120s", buf.String())
	}
}

func TestRunBenchDiffValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench-diff", "only-one.json"}, &buf); err == nil {
		t.Error("malformed -bench-diff spec accepted")
	}
	if err := run([]string{"-bench-diff", "missing-a.json,missing-b.json"}, &buf); err == nil {
		t.Error("missing snapshot files accepted")
	}
}

func TestRunBenchDiffGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	write := func(path string, ns float64) {
		s := perf.Snapshot{Date: "2026-08-06", Results: []perf.Result{
			{Name: "dnn/train-sample-tableII", NsPerOp: ns, Iterations: 100},
		}}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
	}
	write(oldPath, 5000)
	write(newPath, 5100) // +2%: passes
	var buf bytes.Buffer
	if err := run([]string{"-bench-diff", oldPath + "," + newPath}, &buf); err != nil {
		t.Fatalf("2%% regression failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "dnn/train-sample-tableII") {
		t.Errorf("diff report missing bench name: %s", buf.String())
	}
	write(newPath, 7000) // +40%: fails
	if err := run([]string{"-bench-diff", oldPath + "," + newPath}, &buf); err == nil {
		t.Error("40% kernel regression passed the gate")
	}
}

func TestRunCPUProfileWrites(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "cpu.out")
	var buf bytes.Buffer
	if err := run([]string{"-fig", "tableII", "-cpuprofile", profPath}, &buf); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("cpu profile is empty")
	}
}

func TestRunMemProfileWrites(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "mem.out")
	var buf bytes.Buffer
	if err := run([]string{"-fig", "tableII", "-memprofile", profPath}, &buf); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

func TestRunBenchJSONWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_test.json")
	var buf bytes.Buffer
	if err := run([]string{"-json", "-bench-quick", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := perf.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) == 0 || s.Date == "" {
		t.Fatalf("snapshot = %+v", s)
	}
	if !strings.Contains(buf.String(), "dnn/train-sample-tableII") {
		t.Errorf("summary output missing kernel bench: %s", buf.String())
	}
}
