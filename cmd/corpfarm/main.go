// Command corpfarm is the experiment-farm dispatcher: it serializes a
// figure campaign into a content-addressed job queue, serves the HTTP/JSON
// work-pull protocol to corpfarmd workers, reassembles results
// positionally, and prints the merged figures — bit-identical to a
// single-process run no matter how many workers pulled the jobs or in
// what order.
//
// Usage:
//
//	corpfarm [flags]
//
//	-addr     dispatcher listen address            (default 127.0.0.1:8423;
//	          use :0 for an ephemeral port)
//	-figs     comma-separated figure IDs, or "campaign" for the full
//	          two-profile figure campaign           (default campaign)
//	-quick    quick mode (small cluster, fewer sweep points)
//	-seed     base workload seed                    (default 1)
//	-local    in-process worker loops to run        (default 1 when
//	          -spawn is 0; 0 otherwise)
//	-spawn    corpfarmd worker processes to spawn locally
//	-corpfarmd-bin  corpfarmd binary for -spawn     (default: next to
//	          this executable, falling back to $PATH)
//	-slots    slots per spawned/local worker        (default 1)
//	-lease    job lease duration                    (default 2m)
//	-retries  attempts per job before permanent failure (default 3)
//	-core     event | slot simulator core           (default event)
//	-forecast-tier  off | auto CORP two-tier predictor (default off)
//	-progress print per-batch sweep progress to stderr
//	-serve    keep serving after the campaign (for external workers
//	          joining late; terminate with SIGINT)
//
// Example (two local worker processes on localhost):
//
//	corpfarm -quick -spawn 2 -figs fig06,ext-faults
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpfarm:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("corpfarm", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8423", "dispatcher listen address (:0 for ephemeral)")
	figs := fs.String("figs", "campaign", `figure IDs or "campaign" for the two-profile campaign`)
	quick := fs.Bool("quick", false, "quick mode (small cluster, fewer sweep points)")
	seed := fs.Int64("seed", 1, "base workload seed")
	local := fs.Int("local", -1, "in-process worker loops (-1: 1 unless -spawn is set)")
	spawn := fs.Int("spawn", 0, "corpfarmd worker processes to spawn locally")
	bin := fs.String("corpfarmd-bin", "", "corpfarmd binary for -spawn (default: sibling of this executable)")
	slots := fs.Int("slots", 1, "concurrent runs per worker")
	lease := fs.Duration("lease", 2*time.Minute, "job lease duration")
	retries := fs.Int("retries", 3, "attempts per job before permanent failure")
	coreName := fs.String("core", "event", "simulator core: event or slot (bit-identical results)")
	forecastTier := fs.String("forecast-tier", "off", "CORP two-tier predictor: off or auto")
	progress := fs.Bool("progress", false, "print per-batch sweep progress to stderr")
	serve := fs.Bool("serve", false, "keep serving after the campaign for late workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	core, err := sim.ParseCore(*coreName)
	if err != nil {
		return err
	}
	if *forecastTier != "off" && *forecastTier != "auto" {
		return fmt.Errorf("forecast-tier: want off or auto, got %q", *forecastTier)
	}

	d := farm.NewDispatcher(farm.Config{
		Lease:       *lease,
		MaxAttempts: *retries,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "corpfarm: "+format+"\n", a...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "corpfarm: dispatcher on %s\n", baseURL)

	// Workers: in-process loops (cheap, same binary) and/or spawned
	// corpfarmd processes (the distributed deployment, exercised locally).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nLocal := *local
	if nLocal < 0 {
		if *spawn > 0 {
			nLocal = 0
		} else {
			nLocal = 1
		}
	}
	workerDone := make(chan error, nLocal)
	for i := 0; i < nLocal; i++ {
		w := &farm.Worker{BaseURL: baseURL, ID: fmt.Sprintf("local-%d", i), Slots: *slots}
		go func() { workerDone <- w.Serve(ctx) }()
	}
	var procs []*exec.Cmd
	for i := 0; i < *spawn; i++ {
		path, err := corpfarmdPath(*bin)
		if err != nil {
			return err
		}
		cmd := exec.Command(path,
			"-dispatcher", baseURL,
			"-id", fmt.Sprintf("spawned-%d", i),
			"-slots", fmt.Sprint(*slots))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn corpfarmd: %w", err)
		}
		procs = append(procs, cmd)
	}

	o := corp.Options{
		Seed:         *seed,
		Quick:        *quick,
		Core:         core,
		ForecastTier: *forecastTier,
		RunBatch:     d.RunBatch,
	}
	if *progress {
		// Progress/ETA from the dispatcher's own accounting: batch-local
		// completion counts plus the global status line.
		o.RunBatch = func(cfgs []sim.Config) ([]*sim.Result, error) {
			b, err := d.Submit(cfgs)
			if err != nil {
				return nil, err
			}
			return b.Wait(func(done, total int) {
				st := d.Status()
				fmt.Fprintf(os.Stderr, "corpfarm: batch %d/%d done (queue: %d pending, %d leased, ETA %.0fs)\n",
					done, total, st.Pending, st.Leased, st.ETASeconds)
			})
		}
	}

	var figures []*corp.Figure
	if *figs == "campaign" {
		figures, err = experiments.Campaign(o)
	} else {
		for _, id := range strings.Split(*figs, ",") {
			f, ferr := corp.ReproduceFigure(strings.TrimSpace(id), o)
			if ferr != nil {
				err = ferr
				break
			}
			figures = append(figures, f)
		}
	}
	if err != nil {
		return err
	}
	for _, f := range figures {
		fmt.Fprint(out, f.String())
	}
	c := d.Counters()
	fmt.Fprintf(out, "farm: %d configs submitted, %d distinct jobs (%d dedup hits), %d distinct workloads, %d completed, %d retries, %d failed\n",
		c.Submitted, c.Jobs, c.DedupHits, c.DistinctWorkloads, c.Completed, c.Retries, c.Failed)

	if *serve {
		fmt.Fprintf(os.Stderr, "corpfarm: campaign done; still serving on %s (SIGINT to exit)\n", baseURL)
		return <-serveErr
	}
	d.Shutdown() // pulls now tell workers to exit
	for i := 0; i < nLocal; i++ {
		if werr := <-workerDone; werr != nil {
			fmt.Fprintf(os.Stderr, "corpfarm: local worker: %v\n", werr)
		}
	}
	for _, p := range procs {
		if werr := p.Wait(); werr != nil {
			fmt.Fprintf(os.Stderr, "corpfarm: corpfarmd: %v\n", werr)
		}
	}
	return srv.Close()
}

// corpfarmdPath resolves the worker binary: an explicit flag, a sibling of
// the corpfarm executable (the `make farm-smoke` layout), then $PATH.
func corpfarmdPath(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "corpfarmd")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("corpfarmd"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("corpfarmd binary not found (set -corpfarmd-bin)")
}
