// Command corpfarmd is the experiment-farm worker daemon: it pulls jobs
// from a corpfarm dispatcher over the HTTP/JSON work-pull protocol, runs
// each through the simulator (with the process-wide workload-snapshot
// cache, so shared traces are generated once per worker process), streams
// heartbeats and progress, and submits typed results. The daemon is
// stateless — kill it at any time and restart it; its abandoned leases
// expire on the dispatcher and are retried, and the fresh process simply
// pulls new work.
//
// Usage:
//
//	corpfarmd -dispatcher http://host:8423 [flags]
//
//	-dispatcher  dispatcher base URL (required)
//	-id          worker name in leases/status    (default host-pid)
//	-slots       concurrent pull→run→submit loops (default 1; the shared
//	             workpool budget keeps intra-run engines from
//	             oversubscribing the machine)
//	-poll        idle re-poll interval            (default 500ms)
//	-heartbeat   lease-extension interval         (default 5s)
//	-workload-cache  on | off snapshot cache      (default on)
//	-v           verbose event logging
//
// Example:
//
//	corpfarmd -dispatcher http://127.0.0.1:8423 -slots 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/farm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpfarmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpfarmd", flag.ContinueOnError)
	dispatcher := fs.String("dispatcher", "", "dispatcher base URL (required)")
	id := fs.String("id", "", "worker name (default host-pid)")
	slots := fs.Int("slots", 1, "concurrent pull→run→submit loops")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle re-poll interval")
	heartbeat := fs.Duration("heartbeat", 5*time.Second, "lease-extension interval")
	wlCache := fs.String("workload-cache", "on", "share generated workload snapshots across runs: on or off")
	verbose := fs.Bool("v", false, "verbose event logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dispatcher == "" {
		return fmt.Errorf("-dispatcher is required")
	}
	switch *wlCache {
	case "on":
		corp.SetWorkloadCache(true)
	case "off":
		corp.SetWorkloadCache(false)
	default:
		return fmt.Errorf("workload-cache: want on or off, got %q", *wlCache)
	}
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	w := &farm.Worker{
		BaseURL:   *dispatcher,
		ID:        *id,
		Slots:     *slots,
		Poll:      *poll,
		Heartbeat: *heartbeat,
	}
	if *verbose {
		w.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "corpfarmd[%s]: "+format+"\n", append([]any{*id}, a...)...)
		}
	}

	// SIGINT/SIGTERM cancel the loops; a clean dispatcher shutdown signal
	// ends Serve with nil.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return w.Serve(ctx)
}
