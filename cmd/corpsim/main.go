// Command corpsim runs one provisioning simulation and prints its metrics.
//
// Usage:
//
//	corpsim [flags]
//
//	-scheme   CORP | RCCR | CloudScale | DRA        (default CORP)
//	-profile  cluster | ec2 | scale                  (default cluster)
//	-core     event | slot simulator core            (default event;
//	          results are bit-identical, only wall time changes)
//	-jobs     number of short-lived jobs             (default 300)
//	-pms      physical machines (0 = profile default)
//	-vms      virtual machines  (0 = profile default)
//	-seed     workload seed                          (default 1)
//	-pth      CORP Eq. 21 gate (0 = default)
//	-eta      confidence level (0 = default)
//	-json     emit the result as JSON
//	-long     long-lived service jobs (cooperative mixed workload)
//	-hetero   carve unequal VM sizes (exercises Eq. 22)
//	-timeline write a per-slot CSV timeline to this file
//	-faults   per-VM per-slot crash probability (0 = fault-free)
//	-mttr     mean VM repair time in slots (with -faults)
//	-surge    per-VM per-slot resident demand-surge probability
//	-det      deterministic virtual clock for the overhead metric
//	-workers  intra-run prediction-engine workers (0 = auto from the
//	          shared budget, 1 = serial; results identical either way)
//	-forecast-tier  off | auto: CORP two-tier predictor — auto serves
//	          flat VMs from a cheap persistence+ridge forecaster and
//	          escalates to the full DNN+HMM on drift (default off;
//	          off is bit-identical to the single-tier pipeline)
//	-workload-cache  on | off: share generated workload snapshots across
//	          runs in this process (default on; results identical
//	          either way, only wall time changes)
//
// Example:
//
//	corpsim -scheme CORP -jobs 300 -profile cluster
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("corpsim", flag.ContinueOnError)
	schemeName := fs.String("scheme", "CORP", "provisioning scheme: CORP, RCCR, CloudScale or DRA")
	profileName := fs.String("profile", "cluster", "testbed profile: cluster, ec2 or scale")
	coreName := fs.String("core", "event", "simulator core: event or slot (bit-identical results)")
	jobs := fs.Int("jobs", 300, "number of short-lived jobs")
	pms := fs.Int("pms", 0, "physical machines (0 = profile default)")
	vms := fs.Int("vms", 0, "virtual machines (0 = profile default)")
	seed := fs.Int64("seed", 1, "workload seed")
	pth := fs.Float64("pth", 0, "CORP Eq. 21 probability threshold (0 = default)")
	eta := fs.Float64("eta", 0, "confidence level (0 = default)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	longJobs := fs.Int("long", 0, "long-lived service jobs (cooperative mixed workload)")
	hetero := fs.Bool("hetero", false, "carve unequal VM sizes (exercises Eq. 22)")
	timeline := fs.String("timeline", "", "write a per-slot CSV timeline to this file")
	faultRate := fs.Float64("faults", 0, "per-VM per-slot crash probability (0 = fault-free)")
	mttr := fs.Int("mttr", 0, "mean VM repair time in slots (0 = default)")
	surge := fs.Float64("surge", 0, "per-VM per-slot resident demand-surge probability")
	det := fs.Bool("det", false, "deterministic virtual clock for the overhead metric")
	workers := fs.Int("workers", 0, "intra-run prediction-engine workers (0 = auto, 1 = serial)")
	forecastTier := fs.String("forecast-tier", "off", "CORP two-tier predictor: off or auto")
	wlCache := fs.String("workload-cache", "on", "share generated workload snapshots across runs: on or off")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *wlCache {
	case "on":
		corp.SetWorkloadCache(true)
	case "off":
		corp.SetWorkloadCache(false)
	default:
		return fmt.Errorf("workload-cache: want on or off, got %q", *wlCache)
	}

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	profile, err := parseProfile(*profileName)
	if err != nil {
		return err
	}
	core, err := sim.ParseCore(*coreName)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Profile: profile,
		Core:    core,
		NumPMs:  *pms,
		NumVMs:  *vms,
		NumJobs: *jobs,
		Seed:    *seed,
		Scheduler: scheduler.Config{
			Scheme: scheme,
			Seed:   *seed,
		},
	}
	cfg.Scheduler.Corp.Pth = *pth
	cfg.Scheduler.Corp.Eta = *eta
	switch *forecastTier {
	case "off":
	case "auto":
		cfg.Scheduler.Corp.TierEnabled = true
	default:
		return fmt.Errorf("forecast-tier: want off or auto, got %q", *forecastTier)
	}
	cfg.Scheduler.RCCR.Eta = *eta
	cfg.LongJobs = *longJobs
	cfg.Heterogeneous = *hetero
	cfg.RecordTimeline = *timeline != ""
	cfg.Faults = faults.Config{
		Seed:         *seed,
		VMCrashProb:  *faultRate,
		PMCrashProb:  *faultRate / 10,
		MeanDowntime: *mttr,
		SurgeProb:    *surge,
	}
	if *det {
		cfg.Clock = &sim.VirtualClock{StepMicros: 150}
	}
	cfg.Workers = *workers

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		if err := sim.WriteTimelineCSV(f, res.Timeline); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		return enc.Encode(res)
	}
	printResult(out, res)
	return nil
}

func parseScheme(name string) (scheduler.Scheme, error) {
	for _, sc := range scheduler.Schemes() {
		if strings.EqualFold(sc.String(), name) {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

func parseProfile(name string) (cluster.Profile, error) {
	switch strings.ToLower(name) {
	case "cluster":
		return cluster.ProfileCluster, nil
	case "ec2":
		return cluster.ProfileEC2, nil
	case "scale":
		return cluster.ProfileScale, nil
	default:
		return 0, fmt.Errorf("unknown profile %q", name)
	}
}

func printResult(out *os.File, r *sim.Result) {
	fmt.Fprintf(out, "scheme      %s on %s (%d jobs, %d slots)\n", r.Scheme, r.Profile, r.NumJobs, r.Slots)
	fmt.Fprintf(out, "utilization")
	for _, k := range resource.Kinds() {
		fmt.Fprintf(out, " %s=%.3f", k, r.Utilization[k])
	}
	fmt.Fprintf(out, " overall=%.3f (wastage %.3f)\n", r.Overall, r.Wastage)
	fmt.Fprintf(out, "cluster    ")
	for _, k := range resource.Kinds() {
		fmt.Fprintf(out, " %s=%.3f", k, r.ClusterUtilization[k])
	}
	fmt.Fprintf(out, " overall=%.3f\n", r.ClusterOverall)
	fmt.Fprintf(out, "prediction  error rate %.3f over %d samples (ε band)\n",
		r.PredictionErrorRate, r.PredictionSamples)
	if r.TierHits+r.TierEscalations > 0 {
		total := float64(r.TierHits + r.TierEscalations)
		fmt.Fprintf(out, "forecast    tier served %d, escalated %d (%.1f%% first-tier)\n",
			r.TierHits, r.TierEscalations, 100*float64(r.TierHits)/total)
	}
	fmt.Fprintf(out, "SLO         violation rate %.3f (finished %d, violated %d, unfinished %d)\n",
		r.SLORate, r.SLO.Finished, r.SLO.Violated, r.SLO.Unfinished)
	fmt.Fprintf(out, "placement   opportunistic %d, fresh %d, never placed %d, mean response %.1f slots (P50 %d, P95 %d)\n",
		r.PlacedOpportunistic, r.PlacedFresh, r.NeverPlaced, r.MeanResponseSlots, r.ResponseP50, r.ResponseP95)
	fmt.Fprintf(out, "fairness    Jain index %.3f over short-job service rates\n", r.Fairness)
	if r.LongPlaced+r.LongUnplaced > 0 {
		fmt.Fprintf(out, "long jobs   placed %d, unplaced %d, finished %d, failed %d\n",
			r.LongPlaced, r.LongUnplaced, r.LongFinished, r.LongFailed)
	}
	if rec := r.Recovery; rec.VMCrashes+rec.PMCrashes+rec.SurgeSlots+rec.Delays > 0 {
		fmt.Fprintf(out, "faults      %d VM crashes (%d PM), %d recoveries, %d surge slots, %d delays\n",
			rec.VMCrashes, rec.PMCrashes, rec.VMRecoveries, rec.SurgeSlots, rec.Delays)
		fmt.Fprintf(out, "recovery    %d evictions, %d retries (%d exhausted), %d replaced (mean %.1f slots), violations failure/starvation %d/%d\n",
			rec.Evictions, rec.Retries, rec.RetriesExhausted, rec.Replaced,
			rec.MeanTimeToReplace(), rec.ViolationsFailure, rec.ViolationsStarvation)
	}
	fmt.Fprintf(out, "overhead    %.1f ms (compute %.1f ms + comm %.1f ms over %d ops)\n",
		r.Overhead.TotalMillis(), r.Overhead.ComputeMicros/1000,
		r.Overhead.CommMicros/1000, r.Overhead.Operations)
}
