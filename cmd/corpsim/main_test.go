package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"CORP", "corp", "RCCR", "cloudscale", "DRA"} {
		if _, err := parseScheme(name); err != nil {
			t.Errorf("parseScheme(%q): %v", name, err)
		}
	}
	if _, err := parseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"cluster", "ec2", "EC2"} {
		if _, err := parseProfile(name); err != nil {
			t.Errorf("parseProfile(%q): %v", name, err)
		}
	}
	if _, err := parseProfile("gcp"); err == nil {
		t.Error("bogus profile accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.txt")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	timeline := filepath.Join(dir, "tl.csv")
	err = run([]string{
		"-scheme", "RCCR", "-jobs", "20", "-pms", "4", "-vms", "16",
		"-seed", "2", "-timeline", timeline,
	}, out)
	out.Close()
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheme", "RCCR", "utilization", "SLO", "overhead"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	tl, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(tl), "slot,short_util") {
		t.Errorf("timeline header wrong: %.60s", tl)
	}
}

func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.json")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-scheme", "DRA", "-jobs", "15", "-pms", "4", "-vms", "16", "-json"}, out)
	out.Close()
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "\"Scheme\": \"DRA\"") {
		t.Errorf("JSON output missing scheme: %.120s", text)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "nope"}, os.Stdout); err == nil {
		t.Error("bad scheme accepted")
	}
	if err := run([]string{"-profile", "nope"}, os.Stdout); err == nil {
		t.Error("bad profile accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "out.txt")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-scheme", "RCCR", "-jobs", "40", "-pms", "4", "-vms", "16",
		"-seed", "3", "-faults", "0.01", "-mttr", "8", "-surge", "0.02", "-det",
	}, out)
	out.Close()
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"faults", "VM crashes", "recovery", "evictions", "retries"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("fault run output missing %q:\n%s", want, text)
		}
	}
	// Fault-free runs stay clean: no fault lines in the report.
	outPath2 := filepath.Join(dir, "clean.txt")
	out2, err := os.Create(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-scheme", "RCCR", "-jobs", "40", "-pms", "4", "-vms", "16", "-seed", "3"}, out2)
	out2.Close()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(clean), "VM crashes") {
		t.Errorf("fault-free run printed fault lines:\n%s", clean)
	}
}
