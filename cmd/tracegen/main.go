// Command tracegen emits synthetic Google-trace-like workloads.
//
// Usage:
//
//	tracegen [flags]
//
//	-n        number of short-lived jobs (default 300)
//	-seed     generator seed (default 1)
//	-format   json | csv (default json)
//	-o        output file (default stdout)
//	-span     arrival span in slots (default 60)
//	-duration mean duration in slots (default 6)
//
// Example:
//
//	tracegen -n 300 -format csv -o workload.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	n := fs.Int("n", 300, "number of short-lived jobs")
	seed := fs.Int64("seed", 1, "generator seed")
	format := fs.String("format", "json", "output format: json or csv")
	out := fs.String("o", "", "output file (default stdout)")
	span := fs.Int("span", 60, "arrival span in slots")
	duration := fs.Int("duration", 6, "mean duration in slots")
	if err := fs.Parse(args); err != nil {
		return err
	}

	jobs, err := trace.GenerateShortJobs(trace.Config{
		Seed:         *seed,
		NumJobs:      *n,
		ArrivalSpan:  *span,
		MeanDuration: *duration,
	})
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return trace.WriteJSON(w, jobs)
	case "csv":
		return trace.WriteCSV(w, jobs)
	default:
		return fmt.Errorf("unknown format %q (json or csv)", *format)
	}
}
