package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunJSONAndCSV(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "w.json")
	if err := run([]string{"-n", "5", "-seed", "3", "-o", jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"usage\"") {
		t.Errorf("JSON output missing usage: %.80s", data)
	}
	csvPath := filepath.Join(dir, "w.csv")
	if err := run([]string{"-n", "5", "-format", "csv", "-o", csvPath}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "job_id,class") {
		t.Errorf("CSV header wrong: %.60s", data)
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Error("bad format accepted")
	}
}
