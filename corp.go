// Package corp is a from-scratch Go reproduction of "CORP: Cooperative
// Opportunistic Resource Provisioning for Short-Lived Jobs in Cloud
// Systems" (Liu, Shen, Chen — IEEE CLUSTER 2016).
//
// The package re-exports the library's main entry points; the full
// machinery lives in the internal packages:
//
//   - internal/core — the CORP controller (prediction + packing +
//     placement) for live use;
//   - internal/sim — the discrete-time cluster simulator driving the
//     paper's evaluation;
//   - internal/experiments — one runner per table/figure of Section IV;
//   - internal/predict, internal/dnn, internal/hmm, internal/packing,
//     internal/stats, internal/trace, internal/cluster — the substrates.
//
// Quick start:
//
//	res, err := corp.RunSimulation(corp.DefaultSimConfig())
//	fig, err := corp.ReproduceFigure("fig06", corp.QuickOptions(1))
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-versus-measured record.
package corp

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported types: the stable public API surface.
type (
	// SimConfig parameterizes one simulation run.
	SimConfig = sim.Config
	// SimResult aggregates one run's metrics.
	SimResult = sim.Result
	// SchedulerConfig selects and tunes a provisioning scheme.
	SchedulerConfig = scheduler.Config
	// Scheme identifies one of the four evaluated schemes.
	Scheme = scheduler.Scheme
	// Figure is one reproduced table or figure.
	Figure = experiments.Figure
	// Options tunes an experiment run.
	Options = experiments.Options
	// Controller is the live CORP control loop.
	Controller = core.Controller
	// ControllerConfig parameterizes a Controller.
	ControllerConfig = core.Config
	// Grant is one allocation decision.
	Grant = core.Grant
	// Cluster is the simulated physical substrate.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes cluster construction.
	ClusterConfig = cluster.Config
	// Job is an immutable job specification.
	Job = job.Job
	// Vector is a multi-resource amount.
	Vector = resource.Vector
	// WorkloadConfig parameterizes synthetic short-job generation.
	WorkloadConfig = trace.Config
	// FaultConfig parameterizes the simulator's deterministic
	// fault-injection layer (SimConfig.Faults).
	FaultConfig = faults.Config
	// Clock abstracts the overhead timer; SimConfig.Clock accepts a
	// VirtualClock for deterministic overhead measurements.
	Clock = sim.Clock
	// VirtualClock is the deterministic Clock implementation.
	VirtualClock = sim.VirtualClock
	// WorkloadSnapshot is an immutable pre-built workload (residents,
	// short jobs, history, long jobs) shareable read-only across
	// concurrent runs via SimConfig.Prepared.
	WorkloadSnapshot = workload.Snapshot
	// WorkloadCacheStats reports the process-wide snapshot cache's
	// hit/miss/bytes counters.
	WorkloadCacheStats = workload.Stats
)

// The four evaluated schemes, in the paper's comparison order.
const (
	SchemeCORP       = scheduler.CORP
	SchemeRCCR       = scheduler.RCCR
	SchemeCloudScale = scheduler.CloudScale
	SchemeDRA        = scheduler.DRA
)

// Testbed profiles from Section IV of the paper.
const (
	ProfileCluster = cluster.ProfileCluster
	ProfileEC2     = cluster.ProfileEC2
)

// DefaultSimConfig returns a Table II-shaped configuration: the 50-server
// cluster testbed, 300 short-lived jobs, CORP as the scheme.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Profile:   ProfileCluster,
		NumJobs:   300,
		Scheduler: SchedulerConfig{Scheme: SchemeCORP},
	}
}

// RunSimulation executes one simulation run.
func RunSimulation(cfg SimConfig) (*SimResult, error) {
	return sim.Run(cfg)
}

// NewCluster builds a testbed.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(cfg)
}

// NewController builds a live CORP controller over a cluster.
func NewController(cl *Cluster, cfg ControllerConfig) (*Controller, error) {
	return core.NewController(cl, cfg)
}

// GenerateWorkload produces synthetic Google-trace-like short-lived jobs.
func GenerateWorkload(cfg WorkloadConfig) ([]*Job, error) {
	return trace.GenerateShortJobs(cfg)
}

// PrepareWorkload pre-builds (or fetches from the cache) the workload
// snapshot the given config's run would generate. Assign it to
// SimConfig.Prepared to drive any number of concurrent runs off one
// generation; results are identical either way.
func PrepareWorkload(cfg SimConfig) (*WorkloadSnapshot, error) {
	return sim.PrepareWorkload(cfg)
}

// SetWorkloadCache enables or disables the process-wide workload snapshot
// cache (the -workload-cache=on|off switch of the CLIs). Disabling makes
// every run regenerate its traces privately; figures are bit-identical
// either way, only wall time changes.
func SetWorkloadCache(on bool) {
	workload.Default.SetEnabled(on)
}

// WorkloadCacheCounters returns the process-wide snapshot cache's current
// counters.
func WorkloadCacheCounters() WorkloadCacheStats {
	return workload.Default.Stats()
}

// QuickOptions returns experiment options for fast runs (small cluster,
// fewer sweep points) with the given seed.
func QuickOptions(seed int64) Options {
	return Options{Seed: seed, Quick: true}
}

// FullOptions returns experiment options at the paper's scale.
func FullOptions(seed int64) Options {
	return Options{Seed: seed}
}

// figureRunners maps figure IDs to their runners with the profile set.
func figureRunners() map[string]func(Options) (*Figure, error) {
	ec2 := func(run func(Options) (*Figure, error)) func(Options) (*Figure, error) {
		return func(o Options) (*Figure, error) {
			o.Profile = ProfileEC2
			return run(o)
		}
	}
	return map[string]func(Options) (*Figure, error){
		"fig06": experiments.Fig06PredictionError,
		"fig07": experiments.Fig07Utilization,
		"fig08": experiments.Fig08UtilVsSLO,
		"fig09": experiments.Fig09SLOVsConfidence,
		"fig10": experiments.Fig10Overhead,
		"fig11": ec2(experiments.Fig07Utilization),
		"fig12": ec2(experiments.Fig08UtilVsSLO),
		"fig13": ec2(experiments.Fig09SLOVsConfidence),
		"fig14": ec2(experiments.Fig10Overhead),
		"tableII": func(Options) (*Figure, error) {
			return experiments.TableII(), nil
		},
		"ablations":      experiments.AblationStudy,
		"ext-strategies": experiments.ExtensionPlacementStrategies,
		"ext-packk":      experiments.ExtensionPackK,
		"ext-mixed":      experiments.ExtensionMixedWorkload,
		"ext-oracle":     experiments.ExtensionOracleGap,
		"ext-faults":     experiments.ExtensionFaultTolerance,
	}
}

// FigureIDs lists the reproducible figure identifiers in paper order.
func FigureIDs() []string {
	return []string{
		"tableII", "fig06", "fig07", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "ablations",
		"ext-strategies", "ext-packk", "ext-mixed", "ext-oracle",
		"ext-faults",
	}
}

// ReproduceFigure runs the harness for one of the paper's tables/figures.
// Valid IDs are those returned by FigureIDs.
func ReproduceFigure(id string, o Options) (*Figure, error) {
	run, ok := figureRunners()[id]
	if !ok {
		return nil, fmt.Errorf("corp: unknown figure %q (valid: %v)", id, FigureIDs())
	}
	return run(o)
}
