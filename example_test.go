package corp_test

import (
	"fmt"
	"log"

	corp "repro"
	"repro/internal/resource"
)

// ExampleRunSimulation runs a small trace-driven simulation with the RCCR
// baseline and reports the placement accounting.
func ExampleRunSimulation() {
	cfg := corp.DefaultSimConfig()
	cfg.NumPMs, cfg.NumVMs = 4, 16 // laptop-sized testbed
	cfg.NumJobs = 20
	cfg.Seed = 7
	cfg.Scheduler.Scheme = corp.SchemeRCCR
	cfg.Scheduler.Seed = 7

	res, err := corp.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	placed := res.PlacedOpportunistic + res.PlacedFresh
	fmt.Printf("scheme=%s jobs=%d placed=%d\n", res.Scheme, res.NumJobs, placed+res.NeverPlaced)
	// Output:
	// scheme=RCCR jobs=20 placed=20
}

// ExampleGenerateWorkload synthesizes a Google-trace-like workload.
func ExampleGenerateWorkload() {
	jobs, err := corp.GenerateWorkload(corp.WorkloadConfig{Seed: 1, NumJobs: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(jobs), "jobs")
	for _, j := range jobs {
		fmt.Printf("job %d: %d slots\n", j.ID, j.Duration)
	}
	// Output:
	// 3 jobs
	// job 0: 5 slots
	// job 1: 9 slots
	// job 2: 1 slots
}

// ExampleNewController shows the live control loop: telemetry in, grants
// out.
func ExampleNewController() {
	cl, err := corp.NewCluster(corp.ClusterConfig{NumPMs: 2, NumVMs: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, vm := range cl.VMs {
		if err := vm.Reserve(vm.Capacity.Scale(0.5)); err != nil {
			log.Fatal(err)
		}
	}
	ctrl, err := corp.NewController(cl, corp.ControllerConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// One slot of telemetry per VM: 1 core, 4 GB, 45 GB unused each.
	unused := make([]corp.Vector, len(cl.VMs))
	for v := range unused {
		unused[v] = resource.New(1, 4, 45)
	}
	if _, err := ctrl.ObserveSlot(unused); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window=%d slots observed=%d\n", ctrl.Window(), ctrl.Slot())
	// Output:
	// window=6 slots observed=1
}

// ExampleReproduceFigure regenerates the paper's Table II.
func ExampleReproduceFigure() {
	fig, err := corp.ReproduceFigure("tableII", corp.QuickOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	s := fig.SeriesByLabel("DNN layers h")
	fmt.Printf("%s = %.0f\n", s.Label, s.Y[0])
	// Output:
	// DNN layers h = 4
}
