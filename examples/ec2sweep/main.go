// EC2 controller loop: run the live CORP controller (internal/core via the
// facade) over the paper's 30-node EC2-style testbed — the deployment
// scenario behind Figs. 11–14. Telemetry is synthetic; the control loop is
// exactly what a production integration would run.
//
//	go run ./examples/ec2sweep
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/trace"
)

func main() {
	cl, err := corp.NewCluster(corp.ClusterConfig{Profile: corp.ProfileEC2})
	if err != nil {
		log.Fatal(err)
	}
	// Tenants reserve 60% of every node; their fluctuating usage leaves
	// the unused pool CORP harvests.
	caps := make([]corp.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		caps[i] = vm.Capacity
		if err := vm.Reserve(vm.Capacity.Scale(0.6)); err != nil {
			log.Fatal(err)
		}
	}
	residents, err := trace.GenerateResidents(
		trace.ResidentConfig{Seed: 11, Horizon: 400, ReservedShare: 0.6},
		caps, job.ID(1_000_000))
	if err != nil {
		log.Fatal(err)
	}

	ctrl, err := corp.NewController(cl, corp.ControllerConfig{
		Seed:      11,
		Predictor: predict.CorpConfig{Pth: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Short-lived jobs arriving over ten minutes.
	jobs, err := corp.GenerateWorkload(corp.WorkloadConfig{
		Seed:       11,
		NumJobs:    60,
		VMCapacity: cl.VMs[0].Capacity,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, j := range jobs {
		j.Arrival += 90 // arrivals start after the telemetry warmup
	}

	fmt.Printf("EC2 testbed: %d nodes, %d short-lived jobs\n\n", len(cl.VMs), len(jobs))

	var granted, opportunistic int
	next := 0
	for t := 0; t < 400; t++ {
		// Collect this slot's telemetry: each tenant's unused resources.
		unused := make([]corp.Vector, len(cl.VMs))
		for v := range cl.VMs {
			unused[v] = residents[v].UnusedAt(t)
		}
		// Submit the jobs arriving now.
		var arriving []*corp.Job
		for next < len(jobs) && jobs[next].Arrival <= t {
			arriving = append(arriving, jobs[next])
			next++
		}
		if len(arriving) > 0 {
			if err := ctrl.Submit(arriving); err != nil {
				log.Fatal(err)
			}
		}
		grants, err := ctrl.ObserveSlot(unused)
		if err != nil {
			log.Fatal(err)
		}
		for _, g := range grants {
			granted++
			kind := "fresh"
			if g.Opportunistic {
				opportunistic++
				kind = "opportunistic"
			}
			if granted <= 8 { // show the first few decisions
				fmt.Printf("slot %3d: job %-3d → node %-2d %-13s alloc %v\n",
					t, g.Job, g.VM, kind, g.Alloc)
			}
			// A real integration would start the job now and call
			// ctrl.Release(g.Job) on completion; this walkthrough
			// releases after the job's nominal duration.
		}
	}

	fmt.Printf("\ngranted %d of %d jobs (%d opportunistic, %d fresh), %d still pending\n",
		granted, len(jobs), opportunistic, granted-opportunistic, ctrl.Pending())

	outcomes := ctrl.DrainOutcomes()
	fmt.Printf("matured prediction samples: %d\n", len(outcomes))
	fmt.Println("\nthe controller placed most jobs on predicted-unused resources;")
	fmt.Println("Fig. 14's extra latency on EC2 comes from the wide-area RPCs this")
	fmt.Println("loop would issue per decision, not from the algorithm itself.")
}
