// Google-trace round trip: write a workload in the Google cluster-trace
// task_usage format, load it back the way a user holding the real 2011
// trace would, and drive a trace-driven simulation with the loaded jobs —
// including the paper's "removed the long-lived jobs" filter.
//
//	go run ./examples/googletrace
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/resource"
	"repro/internal/trace"
)

func main() {
	machineCap := resource.New(4, 16, 180)

	// 1. Synthesize a workload and render it as a task_usage table (five
	// columns of interest inside the published 20-column layout).
	jobs, err := corp.GenerateWorkload(corp.WorkloadConfig{
		Seed: 31, NumJobs: 60, MeanDuration: 12, VMCapacity: machineCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	var table bytes.Buffer
	if err := trace.WriteGoogleTaskUsage(&table, jobs, machineCap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task_usage table: %d bytes, %d tasks\n", table.Len(), len(jobs))

	// 2. Load it back with the short-job filter, as the paper prepared
	// its evaluation input.
	loaded, err := trace.ReadGoogleTaskUsage(&table, trace.GoogleReadOptions{
		MachineCapacity: machineCap,
		ShortOnly:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d short-lived tasks (5-minute timeout filter)\n\n", len(loaded))

	// 3. Drive a trace-driven comparison on the loaded jobs.
	fmt.Printf("%-11s %9s %9s %9s\n", "scheme", "util", "SLO rate", "opp/fresh")
	for _, sc := range []corp.Scheme{corp.SchemeCORP, corp.SchemeRCCR, corp.SchemeDRA} {
		cfg := corp.DefaultSimConfig()
		cfg.NumPMs, cfg.NumVMs = 10, 40
		cfg.Seed = 31
		cfg.Scheduler.Scheme = sc
		cfg.Scheduler.Seed = 31
		cfg.ExplicitJobs = loaded
		res, err := corp.RunSimulation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %9.3f %9.3f %5d/%-4d\n",
			res.Scheme, res.Overall, res.SLORate,
			res.PlacedOpportunistic, res.PlacedFresh)
	}
	fmt.Println()
	fmt.Println("swap the synthesized table for a real task_usage shard and the")
	fmt.Println("same three steps reproduce the paper's trace preparation.")
}
