// Mixed workload: the paper's "cooperative" angle and its future work —
// CORP runs alongside a reservation-based method serving long-lived jobs,
// harvesting the long jobs' allocated-but-unused resources for short-lived
// arrivals. Compares CORP's short-job metrics with and without the long
// population present.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("cooperative mixed workload: short-lived jobs over long-lived services")
	fmt.Println()

	run := func(longJobs int) *corp.SimResult {
		cfg := corp.DefaultSimConfig()
		cfg.NumPMs, cfg.NumVMs = 10, 40
		cfg.NumJobs = 100
		cfg.Seed = 21
		cfg.Scheduler.Seed = 21
		cfg.LongJobs = longJobs
		res, err := corp.RunSimulation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	short := run(0)
	mixed := run(25)

	fmt.Printf("%-28s %14s %14s\n", "", "short-only", "mixed (+25 long)")
	rows := []struct {
		name string
		a, b string
	}{
		{"short-job utilization", fmt.Sprintf("%.3f", short.Overall), fmt.Sprintf("%.3f", mixed.Overall)},
		{"cluster utilization", fmt.Sprintf("%.3f", short.ClusterOverall), fmt.Sprintf("%.3f", mixed.ClusterOverall)},
		{"SLO violation rate", fmt.Sprintf("%.3f", short.SLORate), fmt.Sprintf("%.3f", mixed.SLORate)},
		{"opportunistic placements", fmt.Sprintf("%d", short.PlacedOpportunistic), fmt.Sprintf("%d", mixed.PlacedOpportunistic)},
		{"fairness (Jain)", fmt.Sprintf("%.3f", short.Fairness), fmt.Sprintf("%.3f", mixed.Fairness)},
	}
	for _, r := range rows {
		fmt.Printf("%-28s %14s %14s\n", r.name, r.a, r.b)
	}
	fmt.Printf("\nlong jobs: placed %d, unplaced %d, finished %d\n",
		mixed.LongPlaced, mixed.LongUnplaced, mixed.LongFinished)
	fmt.Println()
	fmt.Println("the long services' reservations shrink the fresh pool, but their")
	fmt.Println("own unused resources flow into the opportunistic pool CORP")
	fmt.Println("harvests — short-lived jobs keep placing and the cluster-wide")
	fmt.Println("utilization rises with the extra served demand.")
}
