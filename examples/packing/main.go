// Packing walkthrough: reproduce the worked example of the paper's
// Section III-B (Fig. 5) — complementary job packing and most-matched VM
// selection by unused-resource volume (Eq. 22).
//
//	go run ./examples/packing
package main

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/packing"
	"repro/internal/resource"
)

func main() {
	// The paper's example: jobs 3 and 6 are CPU-dominant, jobs 4 and 5
	// storage-dominant. Deviation pairs (3,4) and (5,6).
	mk := func(id int, cpu, mem, sto float64) *job.Job {
		return &job.Job{
			ID: job.ID(id), Duration: 1, SLOFactor: 2,
			Usage:   []resource.Vector{resource.New(cpu, mem, sto)},
			Request: resource.New(cpu, mem, sto),
		}
	}
	jobs := []*job.Job{
		mk(3, 5, 0.2, 2), // CPU dominant
		mk(4, 2, 0.2, 7), // storage dominant
		mk(5, 1, 0.2, 4), // storage dominant
		mk(6, 4, 0.2, 1), // CPU dominant
	}

	// C′: the per-kind maximum capacity across all VMs (paper: <25,2,30>).
	cprime := resource.New(25, 2, 30)

	fmt.Println("deviations DV(j,i) between candidate pairs:")
	for _, a := range jobs {
		for _, b := range jobs {
			if a.ID >= b.ID {
				continue
			}
			fmt.Printf("  DV(job%d, job%d) = %.1f\n", a.ID, b.ID,
				packing.Deviation(a.PeakDemand(), b.PeakDemand()))
		}
	}

	entities := packing.Pack(jobs, cprime)
	fmt.Println("\npacked entities (highest-deviation complementary pairs):")
	for i, e := range entities {
		fmt.Printf("  entity %d: jobs", i+1)
		for _, j := range e.Jobs {
			fmt.Printf(" %d", j.ID)
		}
		fmt.Printf("  combined demand %v\n", e.Demand)
	}

	// The paper's VM pools: unused amounts <5,0,20>, <10,1,10>,
	// <20,2,30>, <10,1,8.5> with volumes 0.867, 1.233, 2.8, 1.183.
	candidates := []packing.Candidate{
		{VM: 1, Available: resource.New(5, 0, 20)},
		{VM: 2, Available: resource.New(10, 1, 10)},
		{VM: 3, Available: resource.New(20, 2, 30)},
		{VM: 4, Available: resource.New(10, 1, 8.5)},
	}
	fmt.Println("\nVM unused-resource volumes (Eq. 22):")
	for _, c := range candidates {
		fmt.Printf("  VM%d %v → volume %.3f\n",
			c.VM, c.Available, c.Available.Volume(cprime))
	}

	fmt.Println("\nplacement (most-matched VM = smallest adequate volume):")
	for i, e := range entities {
		vm, ok := packing.Place(e.Demand, candidates, cprime)
		if !ok {
			fmt.Printf("  entity %d: no VM fits %v\n", i+1, e.Demand)
			continue
		}
		fmt.Printf("  entity %d (demand %v) → VM%d\n", i+1, e.Demand, vm)
		// Consume the chosen VM's pool for the next entity.
		for ci := range candidates {
			if candidates[ci].VM == vm {
				candidates[ci].Available = candidates[ci].Available.Sub(e.Demand).ClampNonNegative()
			}
		}
	}
	fmt.Println("\nas in the paper: (job3, job4) → VM2 and (job5, job6) → VM4,")
	fmt.Println("leaving the big VM3 pool intact for future entities.")
}
