// Prediction walkthrough: drive the four unused-resource predictors over
// one VM's synthetic telemetry and print their window-by-window forecasts
// against the realized values — the machinery behind the paper's Fig. 6.
//
//	go run ./examples/prediction
package main

import (
	"fmt"
	"log"

	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
	"repro/internal/trace"
)

const (
	window  = 6   // L: one minute of 10-second slots
	warmup  = 90  // slots of history before the first scored forecast
	horizon = 300 // total slots
)

func main() {
	vmCap := resource.New(4, 16, 180)

	// One resident tenant whose allocated-but-unused resources are the
	// prediction target (Google-trace-like: reserved ≫ used).
	residents, err := trace.GenerateResidents(
		trace.ResidentConfig{Seed: 7, Horizon: horizon},
		[]resource.Vector{vmCap}, job.ID(0))
	if err != nil {
		log.Fatal(err)
	}
	res := residents[0]

	brain, err := predict.NewCorpBrain(predict.CorpConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// CORP trains its DNN on historical trace data before deployment
	// (the paper trains on Google-trace history); feed sibling VMs'
	// series through throwaway predictors sharing the same brain.
	sibCaps := make([]resource.Vector, 12)
	for i := range sibCaps {
		sibCaps[i] = vmCap
	}
	siblings, err := trace.GenerateResidents(
		trace.ResidentConfig{Seed: 99, Horizon: 300}, sibCaps, job.ID(100))
	if err != nil {
		log.Fatal(err)
	}
	for i, sib := range siblings {
		p := predict.NewCorpPredictor(brain, vmCap, int64(100+i))
		for t := 0; t < 300; t++ {
			p.Observe(sib.UnusedAt(t))
		}
	}

	predictors := []predict.Predictor{
		predict.NewCorpPredictor(brain, vmCap, 7),
		predict.NewRCCRPredictor(predict.RCCRConfig{}, vmCap),
		predict.NewCloudScalePredictor(predict.CloudScaleConfig{}, vmCap),
		predict.NewDRAPredictor(predict.DRAConfig{}, vmCap),
	}

	// Warm up on history.
	for t := 0; t < warmup; t++ {
		for _, p := range predictors {
			p.Observe(res.UnusedAt(t))
		}
	}

	fmt.Println("per-window CPU forecasts of unused resource (cores)")
	fmt.Printf("%-6s %-8s %-8s %-8s %-8s %-8s\n",
		"slot", "actual", "CORP", "RCCR", "CldScl", "DRA")
	for t := warmup; t+window <= horizon; t += window {
		forecasts := make([]float64, len(predictors))
		for i, p := range predictors {
			forecasts[i] = p.Predict().Unused.At(resource.CPU)
		}
		var actual float64
		for s := t; s < t+window; s++ {
			actual += res.UnusedAt(s).At(resource.CPU) / window
			for _, p := range predictors {
				p.Observe(res.UnusedAt(s))
			}
		}
		fmt.Printf("%-6d %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f\n",
			t, actual, forecasts[0], forecasts[1], forecasts[2], forecasts[3])
	}

	// Tally the paper's correctness criterion: error in [0, ε·capacity).
	fmt.Println()
	const epsilon = 0.10
	tol := epsilon * vmCap.At(resource.CPU)
	fmt.Printf("correct-prediction rates (error in [0, %.2f) cores):\n", tol)
	for _, p := range predictors {
		correct, total := 0, 0
		for _, o := range p.DrainOutcomes() {
			if o.Kind != resource.CPU {
				continue
			}
			total++
			if o.Error >= 0 && o.Error < tol {
				correct++
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("  %-11s %5.1f%% (%d/%d windows)\n",
			p.Name(), 100*float64(correct)/float64(total), correct, total)
	}
	fmt.Println()
	fmt.Println("CORP's DNN+HMM pipeline with its conservative confidence")
	fmt.Println("interval keeps errors small and non-negative — the paper's")
	fmt.Println("Fig. 6 ordering CORP < RCCR < CloudScale < DRA.")
}
