// Quickstart: run one CORP simulation against the paper's cluster testbed
// and compare it with the three baselines on the same workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("CORP reproduction quickstart")
	fmt.Println("reproducing one trace-driven run per provisioning scheme")
	fmt.Println()

	schemes := []corp.Scheme{
		corp.SchemeCORP, corp.SchemeRCCR, corp.SchemeCloudScale, corp.SchemeDRA,
	}
	fmt.Printf("%-11s %9s %9s %9s %9s %11s\n",
		"scheme", "util", "SLO rate", "errRate", "opp/fresh", "latency")
	for _, sc := range schemes {
		cfg := corp.DefaultSimConfig()
		cfg.NumPMs, cfg.NumVMs = 10, 40 // laptop-sized testbed
		cfg.NumJobs = 100
		cfg.Seed = 42
		cfg.Scheduler.Scheme = sc
		cfg.Scheduler.Seed = 42

		res, err := corp.RunSimulation(cfg)
		if err != nil {
			log.Fatalf("simulation failed: %v", err)
		}
		fmt.Printf("%-11s %9.3f %9.3f %9.3f %5d/%-4d %9.1fms\n",
			res.Scheme, res.Overall, res.SLORate, res.PredictionErrorRate,
			res.PlacedOpportunistic, res.PlacedFresh,
			res.Overhead.TotalMillis())
	}

	fmt.Println()
	fmt.Println("expected shape (paper Figs. 6-10): CORP has the highest")
	fmt.Println("utilization, the lowest SLO violation and prediction error")
	fmt.Println("rates, and slightly the highest allocation latency (DNN cost).")
}
