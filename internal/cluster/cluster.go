// Package cluster models the physical substrate of the paper's two
// testbeds: physical machines (PMs) whose resources are carved into virtual
// machines (VMs), with capacity accounting for reserved and opportunistic
// allocations.
//
// Profiles mirror Section IV of the paper:
//
//   - Cluster: 50 nodes of Clemson's Palmetto cluster (HP SL230, dual
//     E5-2665 → 16 cores, 64 GB memory), each node a PM, logical disks as
//     VMs; 1 GB/s bandwidth and 720 GB disk per server.
//   - EC2: 30 Amazon EC2 nodes (HP ProLiant ML110 G5 class, 2660 MIPS,
//     4 GB memory), each node simulated as one VM, with higher
//     communication overhead.
package cluster

import (
	"fmt"

	"repro/internal/resource"
)

// PM is a physical machine hosting VMs.
type PM struct {
	ID       int
	Capacity resource.Vector
	VMs      []int // indices into the cluster's VM list
}

// VM is a virtual machine with multi-resource capacity C_ij and allocation
// accounting. Reserved covers long-standing tenant reservations;
// Opportunistic covers short-lived grants carved from predicted-unused or
// unallocated headroom.
type VM struct {
	ID       int
	PM       int
	Capacity resource.Vector

	reserved      resource.Vector
	opportunistic resource.Vector
}

// Reserved returns the currently reserved amount.
func (v *VM) Reserved() resource.Vector { return v.reserved }

// Opportunistic returns the currently granted opportunistic amount.
func (v *VM) Opportunistic() resource.Vector { return v.opportunistic }

// Allocated returns reserved + opportunistic.
func (v *VM) Allocated() resource.Vector {
	return v.reserved.Add(v.opportunistic)
}

// Unallocated returns capacity − reserved − opportunistic, clamped at zero.
func (v *VM) Unallocated() resource.Vector {
	return v.Capacity.Sub(v.Allocated()).ClampNonNegative()
}

// Reserve claims amount from the VM's reserved pool. It fails without side
// effects when the VM lacks headroom.
func (v *VM) Reserve(amount resource.Vector) error {
	if !amount.NonNegative() {
		return fmt.Errorf("cluster: negative reserve %v on VM %d", amount, v.ID)
	}
	if !v.Allocated().Add(amount).FitsIn(v.Capacity) {
		return fmt.Errorf("cluster: VM %d cannot reserve %v (allocated %v of %v)",
			v.ID, amount, v.Allocated(), v.Capacity)
	}
	v.reserved = v.reserved.Add(amount)
	return nil
}

// ReleaseReserved returns amount to the reserved pool, clamping so the pool
// never goes negative even if callers double-release.
func (v *VM) ReleaseReserved(amount resource.Vector) {
	v.reserved = v.reserved.Sub(amount).ClampNonNegative()
}

// GrantOpportunistic claims amount from the VM's opportunistic pool. The
// grant is bounded by total capacity, not by actual current usage — an
// overcommitted grant is exactly how opportunistic provisioning causes SLO
// damage when the prediction was wrong, so the simulator enforces only the
// physical capacity here.
func (v *VM) GrantOpportunistic(amount resource.Vector) error {
	if !amount.NonNegative() {
		return fmt.Errorf("cluster: negative grant %v on VM %d", amount, v.ID)
	}
	if !v.Allocated().Add(amount).FitsIn(v.Capacity) {
		return fmt.Errorf("cluster: VM %d cannot grant %v (allocated %v of %v)",
			v.ID, amount, v.Allocated(), v.Capacity)
	}
	v.opportunistic = v.opportunistic.Add(amount)
	return nil
}

// ReleaseOpportunistic returns amount to the opportunistic pool, clamped.
func (v *VM) ReleaseOpportunistic(amount resource.Vector) {
	v.opportunistic = v.opportunistic.Sub(amount).ClampNonNegative()
}

// Cluster is a set of PMs and the VMs carved from them.
type Cluster struct {
	PMs []*PM
	VMs []*VM

	// CommLatencyMicros is the simulated communication latency added per
	// allocation operation, in microseconds. EC2 sets this higher than the
	// dedicated cluster (Fig. 14 vs Fig. 10).
	CommLatencyMicros float64
}

// MaxVMCapacity returns C′, the per-kind maximum capacity over all VMs
// (paper Eq. 22).
func (c *Cluster) MaxVMCapacity() resource.Vector {
	caps := make([]resource.Vector, len(c.VMs))
	for i, v := range c.VMs {
		caps[i] = v.Capacity
	}
	return resource.MaxAcross(caps)
}

// TotalCapacity returns the element-wise sum of all VM capacities.
func (c *Cluster) TotalCapacity() resource.Vector {
	caps := make([]resource.Vector, len(c.VMs))
	for i, v := range c.VMs {
		caps[i] = v.Capacity
	}
	return resource.SumAcross(caps)
}

// Validate checks structural invariants: every VM references a valid PM,
// per-PM VM capacity sums fit in the PM, and all allocations fit their VM.
func (c *Cluster) Validate() error {
	perPM := make([]resource.Vector, len(c.PMs))
	for i, v := range c.VMs {
		if v.ID != i {
			return fmt.Errorf("cluster: VM at index %d has ID %d", i, v.ID)
		}
		if v.PM < 0 || v.PM >= len(c.PMs) {
			return fmt.Errorf("cluster: VM %d references PM %d of %d", v.ID, v.PM, len(c.PMs))
		}
		perPM[v.PM] = perPM[v.PM].Add(v.Capacity)
		if !v.Allocated().FitsIn(v.Capacity) {
			return fmt.Errorf("cluster: VM %d over-allocated: %v of %v", v.ID, v.Allocated(), v.Capacity)
		}
	}
	for i, pm := range c.PMs {
		if pm.ID != i {
			return fmt.Errorf("cluster: PM at index %d has ID %d", i, pm.ID)
		}
		if !perPM[i].FitsIn(pm.Capacity) {
			return fmt.Errorf("cluster: PM %d oversubscribed: VMs need %v of %v", i, perPM[i], pm.Capacity)
		}
	}
	return nil
}

// Profile selects one of the paper's testbeds.
type Profile int

// Testbed profiles from Section IV.
const (
	// ProfileCluster is the 50-node Palmetto deployment.
	ProfileCluster Profile = iota
	// ProfileEC2 is the 30-node Amazon EC2 deployment.
	ProfileEC2
	// ProfileScale is the synthetic at-scale testbed: the Palmetto node
	// model scaled two orders of magnitude out to 5000 PMs carved into
	// 20000 VMs, for exercising the event-driven simulator core far past
	// the paper's 50-node evaluation (ROADMAP: production-scale worlds).
	ProfileScale
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileCluster:
		return "cluster"
	case ProfileEC2:
		return "ec2"
	case ProfileScale:
		return "scale"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Config parameterizes cluster construction.
type Config struct {
	Profile Profile
	// NumPMs overrides the profile default when > 0 (paper Table II:
	// 30–50 servers).
	NumPMs int
	// NumVMs overrides the profile default when > 0 (paper Table II:
	// 100–400 VMs). Must be ≥ NumPMs and is rounded to a multiple of
	// NumPMs so every PM hosts the same number of equal VMs.
	NumVMs int
	// Heterogeneous carves each cluster-profile PM into VMs of unequal
	// sizes (a 1/2 + 1/4 + 1/4 split pattern per group of equal VMs),
	// exercising the C′ normalization of Eq. 22 — "logical disks as
	// VMs" in the paper's testbed were not uniform. Ignored on EC2.
	Heterogeneous bool
}

// New builds a cluster for the given configuration.
//
// Cluster profile: each PM models an HP SL230 (16 cores, 64 GB memory,
// 720 GB disk); VMs split the PM evenly. EC2 profile: each node is one VM
// modeled on an ML110 G5 (≈2.66 GHz single-ish core budget normalized to
// 2 cores, 4 GB memory, 720 GB disk) hosted on a pass-through PM.
func New(cfg Config) (*Cluster, error) {
	switch cfg.Profile {
	case ProfileCluster:
		return newCluster(cfg)
	case ProfileEC2:
		return newEC2(cfg)
	case ProfileScale:
		// Same SL230 node model and LAN fabric as the cluster profile,
		// defaulted to 5000 PMs × 4 VMs each (the cluster profile's
		// per-PM carve) so per-VM capacities match across profiles.
		if cfg.NumPMs <= 0 {
			cfg.NumPMs = 5000
		}
		if cfg.NumVMs <= 0 {
			cfg.NumVMs = 4 * cfg.NumPMs
		}
		return newCluster(cfg)
	default:
		return nil, fmt.Errorf("cluster: unknown profile %v", cfg.Profile)
	}
}

func newCluster(cfg Config) (*Cluster, error) {
	numPMs := cfg.NumPMs
	if numPMs <= 0 {
		numPMs = 50
	}
	numVMs := cfg.NumVMs
	if numVMs <= 0 {
		numVMs = 200
	}
	if numVMs < numPMs {
		return nil, fmt.Errorf("cluster: NumVMs %d < NumPMs %d", numVMs, numPMs)
	}
	perPM := numVMs / numPMs
	numVMs = perPM * numPMs
	pmCap := resource.New(16, 64, 720) // SL230: 16 cores, 64 GB, 720 GB
	vmCap := pmCap.Scale(1 / float64(perPM))

	c := &Cluster{CommLatencyMicros: 50} // LAN-class fabric
	for p := 0; p < numPMs; p++ {
		c.PMs = append(c.PMs, &PM{ID: p, Capacity: pmCap})
	}
	for i := 0; i < numVMs; i++ {
		pm := i % numPMs
		cap := vmCap
		if cfg.Heterogeneous {
			// Within each run of equal shares, reshape capacity
			// 1/2 : 1/4 : 1/4 in a repeating pattern while keeping the
			// per-PM sum fixed (groups of 4 equal VMs become
			// 2×, 0.5×, 0.5×, 1× of the even split).
			switch (i / numPMs) % 4 {
			case 0:
				cap = vmCap.Scale(2)
			case 1, 2:
				cap = vmCap.Scale(0.5)
			}
			// Case 3 keeps the even split. PMs with fewer than 4 VMs
			// would oversubscribe with the 2× head, so only reshape
			// when a full pattern fits.
			if perPM < 4 {
				cap = vmCap
			}
		}
		vm := &VM{ID: i, PM: pm, Capacity: cap}
		c.VMs = append(c.VMs, vm)
		c.PMs[pm].VMs = append(c.PMs[pm].VMs, i)
	}
	return c, c.Validate()
}

func newEC2(cfg Config) (*Cluster, error) {
	numNodes := cfg.NumPMs
	if numNodes <= 0 {
		numNodes = 30
	}
	// "each node is simulated as a VM": one pass-through PM per VM.
	vmCap := resource.New(2, 4, 720)      // ML110 G5-class: 2 cores, 4 GB, 720 GB
	c := &Cluster{CommLatencyMicros: 800} // wide-area RTT budget (Fig. 14 ≫ Fig. 10)
	for i := 0; i < numNodes; i++ {
		c.PMs = append(c.PMs, &PM{ID: i, Capacity: vmCap})
		vm := &VM{ID: i, PM: i, Capacity: vmCap}
		c.VMs = append(c.VMs, vm)
		c.PMs[i].VMs = []int{i}
	}
	return c, c.Validate()
}
