package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func TestProfileString(t *testing.T) {
	if ProfileCluster.String() != "cluster" || ProfileEC2.String() != "ec2" {
		t.Error("profile names wrong")
	}
	if ProfileScale.String() != "scale" {
		t.Error("scale profile name wrong")
	}
	if Profile(9).String() != "Profile(9)" {
		t.Error("unknown profile name wrong")
	}
}

func TestNewScaleProfile(t *testing.T) {
	// Overriding NumPMs keeps the test cheap; the per-PM carve and fabric
	// must still match the cluster profile so figures are comparable.
	c, err := New(Config{Profile: ProfileScale, NumPMs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PMs) != 10 || len(c.VMs) != 40 {
		t.Errorf("PMs,VMs = %d,%d, want 10,40", len(c.PMs), len(c.VMs))
	}
	if want := resource.New(4, 16, 180); c.VMs[0].Capacity != want {
		t.Errorf("VM capacity = %v, want %v", c.VMs[0].Capacity, want)
	}
	if c.CommLatencyMicros != 50 {
		t.Errorf("CommLatencyMicros = %v, want 50 (LAN fabric)", c.CommLatencyMicros)
	}
	// Full-size defaults, checked without building the 20000-VM world.
	big, err := New(Config{Profile: ProfileScale, NumPMs: 5000, NumVMs: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.PMs) != 5000 || len(big.VMs) != 20000 {
		t.Errorf("default scale world = %d PMs, %d VMs, want 5000, 20000", len(big.PMs), len(big.VMs))
	}
}

func TestNewClusterDefaults(t *testing.T) {
	c, err := New(Config{Profile: ProfileCluster})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PMs) != 50 {
		t.Errorf("PMs = %d, want 50", len(c.PMs))
	}
	if len(c.VMs) != 200 {
		t.Errorf("VMs = %d, want 200", len(c.VMs))
	}
	// 200 VMs over 50 PMs → 4 per PM → VM gets 4 cores, 16 GB, 180 GB.
	want := resource.New(4, 16, 180)
	if c.VMs[0].Capacity != want {
		t.Errorf("VM capacity = %v, want %v", c.VMs[0].Capacity, want)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewClusterTableIIRanges(t *testing.T) {
	// Table II: 30–50 servers, 100–400 VMs; all combinations must build.
	for _, pms := range []int{30, 40, 50} {
		for _, vms := range []int{100, 200, 400} {
			c, err := New(Config{Profile: ProfileCluster, NumPMs: pms, NumVMs: vms})
			if err != nil {
				t.Fatalf("pms=%d vms=%d: %v", pms, vms, err)
			}
			if len(c.VMs)%len(c.PMs) != 0 {
				t.Errorf("pms=%d vms=%d: VM count %d not multiple of PM count",
					pms, vms, len(c.VMs))
			}
		}
	}
}

func TestNewClusterRejectsFewVMs(t *testing.T) {
	if _, err := New(Config{Profile: ProfileCluster, NumPMs: 50, NumVMs: 10}); err == nil {
		t.Error("expected error when NumVMs < NumPMs")
	}
}

func TestNewEC2Defaults(t *testing.T) {
	c, err := New(Config{Profile: ProfileEC2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.VMs) != 30 || len(c.PMs) != 30 {
		t.Errorf("EC2 nodes = %d PMs / %d VMs, want 30/30", len(c.PMs), len(c.VMs))
	}
	if c.VMs[3].Capacity != resource.New(2, 4, 720) {
		t.Errorf("EC2 VM capacity = %v", c.VMs[3].Capacity)
	}
	if c.CommLatencyMicros <= 50 {
		t.Error("EC2 comm latency should exceed the cluster's")
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := New(Config{Profile: Profile(42)}); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestVMReserveRelease(t *testing.T) {
	v := &VM{ID: 0, Capacity: resource.New(4, 16, 180)}
	if err := v.Reserve(resource.New(2, 8, 90)); err != nil {
		t.Fatal(err)
	}
	if v.Unallocated() != resource.New(2, 8, 90) {
		t.Errorf("Unallocated = %v", v.Unallocated())
	}
	// Over-reserve fails with no side effect.
	before := v.Reserved()
	if err := v.Reserve(resource.New(3, 0, 0)); err == nil {
		t.Error("over-reserve should fail")
	}
	if v.Reserved() != before {
		t.Error("failed reserve mutated state")
	}
	// Release clamps at zero.
	v.ReleaseReserved(resource.New(100, 100, 100))
	if !v.Reserved().IsZero() {
		t.Errorf("Reserved after big release = %v", v.Reserved())
	}
}

func TestVMOpportunisticPool(t *testing.T) {
	v := &VM{ID: 0, Capacity: resource.New(4, 16, 180)}
	if err := v.Reserve(resource.New(3, 12, 100)); err != nil {
		t.Fatal(err)
	}
	if err := v.GrantOpportunistic(resource.New(1, 4, 80)); err != nil {
		t.Fatal(err)
	}
	if !v.Unallocated().IsZero() {
		t.Errorf("Unallocated = %v, want zero", v.Unallocated())
	}
	if err := v.GrantOpportunistic(resource.New(0.1, 0, 0)); err == nil {
		t.Error("grant beyond capacity should fail")
	}
	v.ReleaseOpportunistic(resource.New(1, 4, 80))
	if !v.Opportunistic().IsZero() {
		t.Errorf("Opportunistic after release = %v", v.Opportunistic())
	}
}

func TestVMRejectsNegativeAmounts(t *testing.T) {
	v := &VM{ID: 0, Capacity: resource.New(4, 4, 4)}
	if err := v.Reserve(resource.New(-1, 0, 0)); err == nil {
		t.Error("negative reserve should fail")
	}
	if err := v.GrantOpportunistic(resource.New(-1, 0, 0)); err == nil {
		t.Error("negative grant should fail")
	}
}

func TestMaxVMCapacityAndTotal(t *testing.T) {
	c := &Cluster{VMs: []*VM{
		{ID: 0, Capacity: resource.New(25, 1, 20)},
		{ID: 1, Capacity: resource.New(10, 2, 30)},
	}}
	if got := c.MaxVMCapacity(); got != resource.New(25, 2, 30) {
		t.Errorf("MaxVMCapacity = %v", got)
	}
	if got := c.TotalCapacity(); got != resource.New(35, 3, 50) {
		t.Errorf("TotalCapacity = %v", got)
	}
}

func TestValidateCatchesBadTopology(t *testing.T) {
	c := &Cluster{
		PMs: []*PM{{ID: 0, Capacity: resource.New(4, 4, 4)}},
		VMs: []*VM{{ID: 0, PM: 3, Capacity: resource.New(1, 1, 1)}},
	}
	if err := c.Validate(); err == nil {
		t.Error("dangling PM reference should fail validation")
	}
	c.VMs[0].PM = 0
	c.VMs[0].Capacity = resource.New(100, 1, 1)
	if err := c.Validate(); err == nil {
		t.Error("PM oversubscription should fail validation")
	}
}

func TestValidateCatchesMisindexedIDs(t *testing.T) {
	c := &Cluster{
		PMs: []*PM{{ID: 0, Capacity: resource.New(4, 4, 4)}},
		VMs: []*VM{{ID: 7, PM: 0, Capacity: resource.New(1, 1, 1)}},
	}
	if err := c.Validate(); err == nil {
		t.Error("misindexed VM ID should fail validation")
	}
}

// Property: for any sequence of valid reserve/grant/release operations,
// Allocated never exceeds Capacity and never goes negative.
func TestQuickVMAccountingInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		v := &VM{ID: 0, Capacity: resource.New(8, 8, 8)}
		for _, op := range ops {
			amt := resource.Uniform(float64(op%5) * 0.7)
			switch op % 4 {
			case 0:
				_ = v.Reserve(amt) // may fail; fine
			case 1:
				_ = v.GrantOpportunistic(amt)
			case 2:
				v.ReleaseReserved(amt)
			case 3:
				v.ReleaseOpportunistic(amt)
			}
			if !v.Allocated().FitsIn(v.Capacity) {
				return false
			}
			if !v.Reserved().NonNegative() || !v.Opportunistic().NonNegative() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	c, err := New(Config{Profile: ProfileCluster, NumPMs: 10, NumVMs: 40, Heterogeneous: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("heterogeneous cluster invalid: %v", err)
	}
	// Capacities must actually differ.
	sizes := map[resource.Vector]int{}
	for _, vm := range c.VMs {
		sizes[vm.Capacity]++
	}
	if len(sizes) < 2 {
		t.Errorf("expected multiple VM sizes, got %v", sizes)
	}
	// Per-PM totals must equal the PM capacity.
	for _, pm := range c.PMs {
		var total resource.Vector
		for _, vi := range pm.VMs {
			total = total.Add(c.VMs[vi].Capacity)
		}
		if !total.FitsIn(pm.Capacity) || !pm.Capacity.FitsIn(total) {
			t.Errorf("PM %d VM capacities sum to %v, want %v", pm.ID, total, pm.Capacity)
		}
	}
	// C' reflects the largest VM.
	max := c.MaxVMCapacity()
	even, err := New(Config{Profile: ProfileCluster, NumPMs: 10, NumVMs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if max.At(resource.CPU) <= even.MaxVMCapacity().At(resource.CPU) {
		t.Errorf("heterogeneous C' CPU %v should exceed the even split", max.At(resource.CPU))
	}
}

func TestHeterogeneousFallbackSmallGroups(t *testing.T) {
	// perPM < 4 cannot host the 2× pattern; capacities stay even.
	c, err := New(Config{Profile: ProfileCluster, NumPMs: 10, NumVMs: 20, Heterogeneous: true})
	if err != nil {
		t.Fatal(err)
	}
	first := c.VMs[0].Capacity
	for _, vm := range c.VMs {
		if vm.Capacity != first {
			t.Fatalf("expected even capacities with perPM < 4")
		}
	}
}
