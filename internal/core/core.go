// Package core assembles the paper's primary contribution — the CORP
// cooperative opportunistic resource-provisioning controller — for live
// use. Where package sim drives the same machinery against synthetic
// workloads, core.Controller is the embeddable control loop a cluster
// manager would run: feed it per-VM unused-resource telemetry every slot,
// submit arriving short-lived jobs, and apply the grants it returns.
//
// The controller pipeline per Section III of the paper:
//
//  1. every slot, per-VM unused-resource telemetry trains the online DNN
//     (Eqs. 5–8) and updates the HMM observation stream;
//  2. every window of L slots, each VM's unused resources for the next
//     window are forecast, corrected for predicted peaks/valleys
//     (Eqs. 9–17), made conservative by the confidence interval
//     (Eqs. 18–19), and gated by Eq. 21;
//  3. pending jobs are packed into complementary entities (Section III-B)
//     and placed on the most-matched VM (Eq. 22), preferring unlocked
//     predicted-unused pools and falling back to unallocated headroom.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
	"repro/internal/scheduler"
)

// Config parameterizes a Controller.
type Config struct {
	// Predictor tunes the DNN+HMM prediction pipeline; the zero value
	// uses the paper's Table II defaults.
	Predictor predict.CorpConfig
	// DisablePacking turns complementary packing off.
	DisablePacking bool
	// AllocMargin sizes per-job allocations (mean demand × margin,
	// capped at the declared peak); zero defaults to 1.15.
	AllocMargin float64
	// Seed drives deterministic initialization.
	Seed int64
	// Workers sizes the parallel prediction engine that shards the
	// per-VM Observe/Refresh work; <= 1 runs serially. Grants are
	// bit-identical at any worker count.
	Workers int
}

// Grant is one allocation decision returned by Submit.
type Grant struct {
	Job           job.ID
	VM            int
	Alloc         resource.Vector
	Opportunistic bool
}

// Controller is the live CORP control loop. It is not safe for concurrent
// use; callers serialize ObserveSlot/Submit/Release.
type Controller struct {
	cfg   Config
	cl    *cluster.Cluster
	sched scheduler.Scheduler

	slot       int
	window     int
	oppInUse   []resource.Vector
	freshInUse []resource.Vector
	down       []bool
	active     map[job.ID]Grant
	specs      map[job.ID]*job.Job
	grantSlot  map[job.ID]int
	pending    []*job.Job
	pendingIDs map[job.ID]bool
}

// NewController builds a controller over the cluster.
func NewController(cl *cluster.Cluster, cfg Config) (*Controller, error) {
	if cl == nil || len(cl.VMs) == 0 {
		return nil, errors.New("core: cluster with at least one VM required")
	}
	sched, err := scheduler.New(scheduler.Config{
		Scheme:          scheduler.CORP,
		Corp:            cfg.Predictor,
		Seed:            cfg.Seed,
		DisablePacking:  cfg.DisablePacking,
		CorpAllocMargin: cfg.AllocMargin,
		Workers:         cfg.Workers,
	}, cl)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:        cfg,
		cl:         cl,
		sched:      sched,
		window:     sched.Window(),
		oppInUse:   make([]resource.Vector, len(cl.VMs)),
		freshInUse: make([]resource.Vector, len(cl.VMs)),
		down:       make([]bool, len(cl.VMs)),
		active:     make(map[job.ID]Grant),
		specs:      make(map[job.ID]*job.Job),
		grantSlot:  make(map[job.ID]int),
		pendingIDs: make(map[job.ID]bool),
	}, nil
}

// Window returns the prediction window L in slots.
func (c *Controller) Window() int { return c.window }

// Slot returns how many slots have been observed.
func (c *Controller) Slot() int { return c.slot }

// ObserveSlot advances one time slot: unused[v] is the measured
// allocated-but-unused vector of VM v this slot. Forecasts refresh every
// Window-th call, and any pending jobs are then re-offered for placement.
// It returns the grants issued this slot (nil on non-refresh slots with no
// pending work).
func (c *Controller) ObserveSlot(unused []resource.Vector) ([]Grant, error) {
	if len(unused) != len(c.cl.VMs) {
		return nil, fmt.Errorf("core: %d unused vectors for %d VMs", len(unused), len(c.cl.VMs))
	}
	for v, u := range unused {
		if !u.NonNegative() {
			return nil, fmt.Errorf("core: negative unused %v on VM %d", u, v)
		}
	}
	if bo, ok := c.sched.(scheduler.BatchObserver); ok {
		// The engine fans the per-VM predictor updates across its
		// workers; down VMs produce no telemetry and their predictor
		// state stays frozen until recovery.
		bo.ObserveAll(unused, c.down)
	} else {
		for v, u := range unused {
			if c.down[v] {
				continue
			}
			c.sched.Observe(v, u)
		}
	}
	if c.slot%c.window == 0 {
		c.sched.Refresh()
		c.adjustActive()
	}
	c.slot++
	if len(c.pending) == 0 {
		return nil, nil
	}
	return c.place()
}

// adjustActive re-sizes live grants to their jobs' current demand when the
// scheme supports dynamic adjustment (CORP's "dynamically allocates the
// corrected amount"). Callers observe the new sizes via Grants.
func (c *Controller) adjustActive() {
	adj, ok := c.sched.(scheduler.Adjuster)
	if !ok {
		return
	}
	for id, g := range c.active {
		spec := c.specs[id]
		if spec == nil {
			continue
		}
		// Without per-job progress telemetry the controller uses the
		// slot offset since the grant as the demand index.
		k := c.slot - c.grantSlot[id]
		newAlloc, changed := adj.AdjustAlloc(spec, spec.DemandAt(k))
		if !changed {
			continue
		}
		if g.Opportunistic {
			c.oppInUse[g.VM] = c.oppInUse[g.VM].Sub(g.Alloc).ClampNonNegative().Add(newAlloc)
		} else {
			head := c.cl.VMs[g.VM].Capacity.Sub(c.cl.VMs[g.VM].Reserved()).
				Sub(c.freshInUse[g.VM]).ClampNonNegative()
			grow := newAlloc.Sub(g.Alloc).ClampNonNegative().Min(head)
			newAlloc = g.Alloc.Min(newAlloc).Add(grow)
			c.freshInUse[g.VM] = c.freshInUse[g.VM].Sub(g.Alloc).ClampNonNegative().Add(newAlloc)
		}
		g.Alloc = newAlloc
		c.active[id] = g
	}
}

// Grants returns a snapshot of the live grants keyed by job ID.
func (c *Controller) Grants() map[job.ID]Grant {
	out := make(map[job.ID]Grant, len(c.active))
	for id, g := range c.active {
		out[id] = g
	}
	return out
}

// Submit queues jobs for placement; grants are issued on this or
// subsequent ObserveSlot calls. Jobs must have unique IDs among active and
// pending work.
func (c *Controller) Submit(jobs []*job.Job) error {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if _, ok := c.active[j.ID]; ok {
			return fmt.Errorf("core: job %d already active", j.ID)
		}
		if c.pendingIDs[j.ID] {
			return fmt.Errorf("core: job %d already pending", j.ID)
		}
		c.pending = append(c.pending, j)
		c.pendingIDs[j.ID] = true
	}
	return nil
}

// Pending returns the number of jobs queued for placement.
func (c *Controller) Pending() int { return len(c.pending) }

// Active returns the number of jobs with live grants.
func (c *Controller) Active() int { return len(c.active) }

// place runs one placement round over the pending queue.
func (c *Controller) place() ([]Grant, error) {
	views := make([]scheduler.VMView, len(c.cl.VMs))
	for v, vm := range c.cl.VMs {
		if c.down[v] {
			views[v] = scheduler.VMView{Down: true}
			continue
		}
		views[v] = scheduler.VMView{
			FreshAvailable: vm.Capacity.Sub(vm.Reserved()).Sub(c.freshInUse[v]).ClampNonNegative(),
			OppInUse:       c.oppInUse[v],
		}
	}
	placements := c.sched.Place(c.pending, views)
	if len(placements) == 0 {
		return nil, nil
	}
	var grants []Grant
	placed := make(map[job.ID]bool)
	for _, p := range placements {
		for i, spec := range p.Jobs {
			g := Grant{Job: spec.ID, VM: p.VM, Alloc: p.Allocs[i], Opportunistic: p.Opportunistic}
			if p.Opportunistic {
				c.oppInUse[p.VM] = c.oppInUse[p.VM].Add(g.Alloc)
			} else {
				c.freshInUse[p.VM] = c.freshInUse[p.VM].Add(g.Alloc)
			}
			c.active[g.Job] = g
			c.specs[g.Job] = spec
			c.grantSlot[g.Job] = c.slot
			placed[g.Job] = true
			grants = append(grants, g)
		}
	}
	kept := c.pending[:0]
	for _, j := range c.pending {
		if placed[j.ID] {
			delete(c.pendingIDs, j.ID)
		} else {
			kept = append(kept, j)
		}
	}
	c.pending = kept
	return grants, nil
}

// Release returns a finished job's grant to its pool. Releasing an unknown
// job is an error so double-releases surface instead of corrupting the
// ledgers.
func (c *Controller) Release(id job.ID) error {
	g, ok := c.active[id]
	if !ok {
		return fmt.Errorf("core: job %d has no active grant", id)
	}
	if g.Opportunistic {
		c.oppInUse[g.VM] = c.oppInUse[g.VM].Sub(g.Alloc).ClampNonNegative()
	} else {
		c.freshInUse[g.VM] = c.freshInUse[g.VM].Sub(g.Alloc).ClampNonNegative()
	}
	delete(c.active, id)
	delete(c.specs, id)
	delete(c.grantSlot, id)
	return nil
}

// Cancel removes a still-pending job from the queue.
func (c *Controller) Cancel(id job.ID) error {
	if !c.pendingIDs[id] {
		return fmt.Errorf("core: job %d is not pending", id)
	}
	kept := c.pending[:0]
	for _, j := range c.pending {
		if j.ID != id {
			kept = append(kept, j)
		}
	}
	c.pending = kept
	delete(c.pendingIDs, id)
	return nil
}

// VMDown marks VM v failed: it stops receiving telemetry and placements,
// and every live grant on it is revoked with its job requeued for
// placement elsewhere. The requeued job IDs are returned in ascending
// order so callers can restart the work deterministically.
func (c *Controller) VMDown(v int) ([]job.ID, error) {
	if v < 0 || v >= len(c.cl.VMs) {
		return nil, fmt.Errorf("core: no VM %d", v)
	}
	if c.down[v] {
		return nil, nil
	}
	c.down[v] = true
	var lost []job.ID
	for id, g := range c.active {
		if g.VM == v {
			lost = append(lost, id)
		}
	}
	sort.Slice(lost, func(a, b int) bool { return lost[a] < lost[b] })
	for _, id := range lost {
		spec := c.specs[id]
		delete(c.active, id)
		delete(c.specs, id)
		delete(c.grantSlot, id)
		if spec != nil {
			c.pending = append(c.pending, spec)
			c.pendingIDs[id] = true
		}
	}
	// Whatever the dead VM owed is gone with it.
	c.oppInUse[v] = resource.Vector{}
	c.freshInUse[v] = resource.Vector{}
	return lost, nil
}

// VMUp marks VM v recovered; it re-enters telemetry and placement on the
// next ObserveSlot.
func (c *Controller) VMUp(v int) error {
	if v < 0 || v >= len(c.cl.VMs) {
		return fmt.Errorf("core: no VM %d", v)
	}
	c.down[v] = false
	return nil
}

// VMIsDown reports whether VM v is currently marked failed.
func (c *Controller) VMIsDown(v int) bool { return c.down[v] }

// DrainOutcomes exposes matured prediction errors for monitoring. The
// returned slice is a reused buffer, valid until the next DrainOutcomes
// call; callers that retain samples must copy them out.
func (c *Controller) DrainOutcomes() []predict.ErrorSample {
	return c.sched.DrainOutcomes()
}

// OppInUse returns VM v's outstanding opportunistic grants.
func (c *Controller) OppInUse(v int) resource.Vector { return c.oppInUse[v] }

// FreshInUse returns VM v's outstanding fresh grants.
func (c *Controller) FreshInUse(v int) resource.Vector { return c.freshInUse[v] }
