package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{NumPMs: 2, NumVMs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Residents reserve 60% of each VM so opportunistic pools exist.
	for _, vm := range cl.VMs {
		if err := vm.Reserve(vm.Capacity.Scale(0.6)); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

func newController(t *testing.T, cl *cluster.Cluster) *Controller {
	t.Helper()
	c, err := NewController(cl, Config{
		Seed:      1,
		Predictor: predict.CorpConfig{Pth: 0.05, Epsilon: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func steadyUnused(cl *cluster.Cluster) []resource.Vector {
	unused := make([]resource.Vector, len(cl.VMs))
	for v := range unused {
		unused[v] = resource.New(1.5, 6, 60)
	}
	return unused
}

func mkJob(id int, cpu, mem, sto float64) *job.Job {
	return &job.Job{
		ID: job.ID(id), Duration: 3, SLOFactor: 2,
		Usage: []resource.Vector{
			resource.New(cpu, mem, sto),
			resource.New(cpu, mem, sto),
			resource.New(cpu, mem, sto),
		},
		Request: resource.New(cpu, mem, sto),
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(nil, Config{}); err == nil {
		t.Error("nil cluster should fail")
	}
	if _, err := NewController(&cluster.Cluster{}, Config{}); err == nil {
		t.Error("empty cluster should fail")
	}
	c := newController(t, testCluster(t))
	if c.Window() != 6 {
		t.Errorf("Window = %d", c.Window())
	}
}

func TestObserveSlotValidatesInput(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	if _, err := c.ObserveSlot(nil); err == nil {
		t.Error("wrong vector count should fail")
	}
	bad := steadyUnused(cl)
	bad[0] = resource.New(-1, 0, 0)
	if _, err := c.ObserveSlot(bad); err == nil {
		t.Error("negative unused should fail")
	}
}

// warm advances the controller through n slots of steady telemetry.
func warm(t *testing.T, c *Controller, cl *cluster.Cluster, n int) []Grant {
	t.Helper()
	var grants []Grant
	for i := 0; i < n; i++ {
		g, err := c.ObserveSlot(steadyUnused(cl))
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g...)
	}
	return grants
}

func TestSubmitAndPlaceLifecycle(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	warm(t, c, cl, 80)

	jobs := []*job.Job{mkJob(1, 0.8, 1, 5), mkJob(2, 0.1, 4, 5)}
	if err := c.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	grants := warm(t, c, cl, 6)
	if len(grants) != 2 {
		t.Fatalf("got %d grants: %+v", len(grants), grants)
	}
	if c.Pending() != 0 || c.Active() != 2 {
		t.Errorf("pending=%d active=%d", c.Pending(), c.Active())
	}
	for _, g := range grants {
		if !g.Alloc.NonNegative() || g.Alloc.IsZero() {
			t.Errorf("grant alloc %v invalid", g.Alloc)
		}
		if g.VM < 0 || g.VM >= len(cl.VMs) {
			t.Errorf("grant VM %d out of range", g.VM)
		}
	}
	// Ledgers reflect the grants.
	var total resource.Vector
	for v := range cl.VMs {
		total = total.Add(c.OppInUse(v)).Add(c.FreshInUse(v))
	}
	if total.IsZero() {
		t.Error("ledgers empty after grants")
	}
	// Release both; ledgers drain.
	for _, g := range grants {
		if err := c.Release(g.Job); err != nil {
			t.Fatal(err)
		}
	}
	for v := range cl.VMs {
		if !c.OppInUse(v).IsZero() || !c.FreshInUse(v).IsZero() {
			t.Errorf("VM %d ledger not drained", v)
		}
	}
	if c.Active() != 0 {
		t.Errorf("Active = %d after release", c.Active())
	}
}

func TestSubmitRejectsDuplicates(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	j := mkJob(1, 0.5, 1, 1)
	if err := c.Submit([]*job.Job{j}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit([]*job.Job{j}); err == nil {
		t.Error("duplicate pending submit should fail")
	}
	warm(t, c, cl, 80)
	if c.Active() != 1 {
		t.Fatalf("job not placed")
	}
	if err := c.Submit([]*job.Job{j}); err == nil {
		t.Error("duplicate active submit should fail")
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	c := newController(t, testCluster(t))
	if err := c.Submit([]*job.Job{{ID: 1}}); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestReleaseUnknownFails(t *testing.T) {
	c := newController(t, testCluster(t))
	if err := c.Release(99); err == nil {
		t.Error("releasing unknown job should fail")
	}
}

func TestCancelPending(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	j := mkJob(1, 100, 100, 100) // cannot ever place
	if err := c.Submit([]*job.Job{j}); err != nil {
		t.Fatal(err)
	}
	warm(t, c, cl, 12)
	if c.Pending() != 1 {
		t.Fatalf("oversized job should stay pending")
	}
	if err := c.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 0 {
		t.Error("cancel did not drain queue")
	}
	if err := c.Cancel(1); err == nil {
		t.Error("double cancel should fail")
	}
}

func TestDrainOutcomesFlows(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	warm(t, c, cl, 30)
	if len(c.DrainOutcomes()) == 0 {
		t.Error("matured outcomes expected after warm slots")
	}
}

func TestOpportunisticGrantsArriveWhenUnlocked(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	// Long steady warmup with a loose gate: predictions unlock.
	warm(t, c, cl, 90)
	if err := c.Submit([]*job.Job{mkJob(1, 0.5, 1, 5)}); err != nil {
		t.Fatal(err)
	}
	grants := warm(t, c, cl, 6)
	if len(grants) != 1 {
		t.Fatalf("got %d grants", len(grants))
	}
	if !grants[0].Opportunistic {
		t.Error("steady telemetry with loose gate should yield opportunistic grants")
	}
}

func TestVMDownEvictsAndRequeues(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	warm(t, c, cl, 80)
	jobs := []*job.Job{mkJob(1, 0.8, 1, 5), mkJob(2, 0.1, 4, 5)}
	if err := c.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	grants := warm(t, c, cl, 6)
	if len(grants) != 2 {
		t.Fatalf("got %d grants", len(grants))
	}
	victim := grants[0].VM
	var want []job.ID
	for _, g := range grants {
		if g.VM == victim {
			want = append(want, g.Job)
		}
	}
	lost, err := c.VMDown(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != len(want) {
		t.Fatalf("VMDown evicted %v, want %d jobs", lost, len(want))
	}
	for i := 1; i < len(lost); i++ {
		if lost[i-1] >= lost[i] {
			t.Errorf("evicted IDs not ascending: %v", lost)
		}
	}
	if !c.VMIsDown(victim) {
		t.Error("VMIsDown false after VMDown")
	}
	if !c.OppInUse(victim).IsZero() || !c.FreshInUse(victim).IsZero() {
		t.Error("dead VM's ledgers not cleared")
	}
	if c.Pending() != len(lost) {
		t.Errorf("Pending = %d, want %d requeued jobs", c.Pending(), len(lost))
	}
	// Idempotent: a second VMDown is a no-op.
	if again, err := c.VMDown(victim); err != nil || again != nil {
		t.Errorf("second VMDown = %v, %v", again, err)
	}
	// Requeued jobs place again, and never on the dead VM.
	regrants := warm(t, c, cl, 12)
	for _, g := range regrants {
		if g.VM == victim {
			t.Errorf("job %d placed on down VM %d", g.Job, victim)
		}
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d after replacement rounds", c.Pending())
	}
	// Recovery re-admits the VM.
	if err := c.VMUp(victim); err != nil {
		t.Fatal(err)
	}
	if c.VMIsDown(victim) {
		t.Error("VMIsDown true after VMUp")
	}
	if _, err := c.VMDown(99); err == nil {
		t.Error("VMDown out of range should fail")
	}
	if err := c.VMUp(-1); err == nil {
		t.Error("VMUp out of range should fail")
	}
}

func TestGrantsSnapshotAndAdjustment(t *testing.T) {
	cl := testCluster(t)
	c := newController(t, cl)
	warm(t, c, cl, 80)
	// A job whose demand rises sharply mid-life: the per-window
	// adjustment should grow its grant.
	j := &job.Job{
		ID: 5, Duration: 24, SLOFactor: 3,
		Usage: func() []resource.Vector {
			var u []resource.Vector
			for i := 0; i < 24; i++ {
				v := 0.3
				if i >= 6 {
					v = 1.2
				}
				u = append(u, resource.New(v, v, v))
			}
			return u
		}(),
		Request: resource.New(1.2, 1.2, 1.2),
	}
	if err := c.Submit([]*job.Job{j}); err != nil {
		t.Fatal(err)
	}
	grants := warm(t, c, cl, 6)
	if len(grants) != 1 {
		t.Fatalf("got %d grants", len(grants))
	}
	initial := grants[0].Alloc.At(resource.CPU)
	// Advance past the demand step and at least one refresh.
	warm(t, c, cl, 13)
	snap := c.Grants()
	g, ok := snap[5]
	if !ok {
		t.Fatal("grant missing from snapshot")
	}
	if g.Alloc.At(resource.CPU) <= initial {
		t.Errorf("grant did not grow with demand: %v → %v", initial, g.Alloc.At(resource.CPU))
	}
	// Snapshot is a copy: mutating it must not affect the controller.
	g.Alloc = resource.New(999, 999, 999)
	snap[5] = g
	if c.Grants()[5].Alloc.At(resource.CPU) > 900 {
		t.Error("snapshot mutation leaked into the controller")
	}
}
