package dnn

import (
	"errors"
	"fmt"
)

// Greedy layer-wise autoencoder pretraining.
//
// The paper's training description ("it first computes the hidden
// activation[,] the reconstructed output from the hidden activation[,]
// computes the error gradient, and back-propagates [it] to update weight";
// "for testing, the algorithm autoencodes the input and generates the
// output") matches the classic stacked-autoencoder recipe: each hidden
// layer is first trained to reconstruct its input through a temporary
// decoder, then the learned encoder weights seed the deep network before
// supervised fine-tuning.

// Autoencoder trains a single sigmoid encoder/decoder pair.
type Autoencoder struct {
	net *Network // topology {in, hidden, in}
}

// NewAutoencoder builds an autoencoder with the given visible and hidden
// sizes.
func NewAutoencoder(visible, hidden int, rate float64, seed int64) (*Autoencoder, error) {
	net, err := New(Config{LayerSizes: []int{visible, hidden, visible}, LearningRate: rate, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Autoencoder{net: net}, nil
}

// TrainEpochs runs the reconstruction objective for the given epochs over
// the inputs and returns the final mean reconstruction loss.
func (a *Autoencoder) TrainEpochs(inputs [][]float64, epochs int) (float64, error) {
	if len(inputs) == 0 {
		return 0, errors.New("dnn: no autoencoder inputs")
	}
	if epochs <= 0 {
		epochs = 20
	}
	var last float64
	for e := 0; e < epochs; e++ {
		var total float64
		for _, in := range inputs {
			loss, err := a.net.TrainSample(in, in)
			if err != nil {
				return 0, err
			}
			total += loss
		}
		last = total / float64(len(inputs))
	}
	return last, nil
}

// Encode maps an input to its hidden representation.
func (a *Autoencoder) Encode(input []float64) ([]float64, error) {
	if _, err := a.net.Forward(input); err != nil {
		return nil, err
	}
	return append([]float64(nil), a.net.acts[1]...), nil
}

// Reconstruct runs the full encode+decode pass.
func (a *Autoencoder) Reconstruct(input []float64) ([]float64, error) {
	out, err := a.net.Forward(input)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), out...), nil
}

// encoderWeights exposes the trained encoder parameters (flat row-major,
// stride = visible size — the same layout Network uses).
func (a *Autoencoder) encoderWeights() ([]float64, []float64) {
	return a.net.weights[0], a.net.biases[0]
}

// Pretrain greedily pretrains every hidden layer of the network as an
// autoencoder over the training inputs, in place. The final
// (hidden→output) layer keeps its random initialization; supervised Train
// fine-tunes everything afterwards.
func (n *Network) Pretrain(inputs [][]float64, epochsPerLayer int, seed int64) error {
	if len(inputs) == 0 {
		return errors.New("dnn: no pretraining inputs")
	}
	current := inputs
	for d := 0; d < len(n.weights)-1; d++ {
		visible, hidden := n.sizes[d], n.sizes[d+1]
		ae, err := NewAutoencoder(visible, hidden, n.rate, seed+int64(d))
		if err != nil {
			return fmt.Errorf("dnn: pretrain layer %d: %w", d, err)
		}
		if _, err := ae.TrainEpochs(current, epochsPerLayer); err != nil {
			return fmt.Errorf("dnn: pretrain layer %d: %w", d, err)
		}
		w, b := ae.encoderWeights()
		copy(n.weights[d], w)
		copy(n.biases[d], b)
		// Feed the encoded representations to the next layer.
		next := make([][]float64, len(current))
		for i, in := range current {
			enc, err := ae.Encode(in)
			if err != nil {
				return err
			}
			next[i] = enc
		}
		current = next
	}
	return nil
}
