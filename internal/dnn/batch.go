package dnn

import "fmt"

// Batched feed-forward evaluation. The per-VM refresh path evaluates the
// same (read-only) network on many independent input rows; doing that one
// matrix-vector product at a time re-reads every weight slab once per row.
// ForwardBatchInto instead runs a matrix-matrix forward: each layer's
// weight rows are streamed once and applied to a block of input rows held
// in registers, so the weight traffic is amortized across the whole batch.
//
// Bit-identity: each (row, neuron) pre-activation is still accumulated as
// bias first, then fan-in index j ascending — exactly the chain
// forwardLayer builds for a single row — so batched outputs are == the
// per-sample ForwardInto outputs element for element. Rows never mix:
// blocking only changes which independent accumulator chains are
// interleaved in time, not any chain's internal order.

// BatchScratch holds caller-owned activation planes for ForwardBatchInto.
// Plane d is row-major rows×sizes[d]. Like FwdScratch, it is tied to a
// topology rather than a specific network, and each concurrent caller
// needs its own scratch.
type BatchScratch struct {
	sizes []int
	rows  int
	acts  [][]float64 // acts[d] is rows*sizes[d], row-major
}

// NewBatchScratch allocates batched forward scratch for this network's
// topology, good for up to rows input rows per call.
func (n *Network) NewBatchScratch(rows int) *BatchScratch {
	if rows < 1 {
		rows = 1
	}
	s := &BatchScratch{sizes: append([]int(nil), n.sizes...), rows: rows}
	slab := make([]float64, rows*sum(n.sizes))
	s.acts = make([][]float64, len(n.sizes))
	off := 0
	for d, sz := range n.sizes {
		s.acts[d] = slab[off : off+rows*sz : off+rows*sz]
		off += rows * sz
	}
	return s
}

// Rows returns the maximum batch size the scratch supports.
func (s *BatchScratch) Rows() int { return s.rows }

// ForwardBatchInto evaluates the network on a batch of input rows stored
// in one flat row-major slab (rows = len(inputs)/inputSize) and returns
// the flat rows×outputSize output plane, owned by the scratch and
// overwritten by its next use. Row r of the result is bit-identical to
// ForwardInto(inputs row r). Like ForwardInto it reads only the network's
// weights, so concurrent calls on one network are safe provided no
// training runs concurrently and each caller uses its own scratch. The
// call performs no heap allocations.
func (n *Network) ForwardBatchInto(s *BatchScratch, inputs []float64) ([]float64, error) {
	inSize := n.sizes[0]
	if len(inputs) == 0 || len(inputs)%inSize != 0 {
		return nil, fmt.Errorf("dnn: batch inputs length %d not a positive multiple of %d", len(inputs), inSize)
	}
	rows := len(inputs) / inSize
	if rows > s.rows {
		return nil, fmt.Errorf("dnn: batch of %d rows exceeds scratch capacity %d", rows, s.rows)
	}
	if len(s.sizes) != len(n.sizes) {
		return nil, fmt.Errorf("dnn: scratch for %d layers, network has %d", len(s.sizes), len(n.sizes))
	}
	for d, sz := range n.sizes {
		if s.sizes[d] != sz {
			return nil, fmt.Errorf("dnn: scratch topology %v, network %v", s.sizes, n.sizes)
		}
	}
	copy(s.acts[0][:rows*inSize], inputs)
	for d := 0; d < len(n.weights); d++ {
		forwardBatchLayer(n.weights[d], n.biases[d], s.acts[d], s.acts[d+1], n.sizes[d], n.sizes[d+1], rows)
	}
	outSize := n.sizes[len(n.sizes)-1]
	return s.acts[len(s.acts)-1][:rows*outSize], nil
}

// ForwardBatch is the convenience entry point over a network-owned batch
// scratch, grown on demand. Not safe for concurrent use (use
// ForwardBatchInto with per-caller scratch instead).
func (n *Network) ForwardBatch(inputs []float64) ([]float64, error) {
	inSize := n.sizes[0]
	if len(inputs) == 0 || len(inputs)%inSize != 0 {
		return nil, fmt.Errorf("dnn: batch inputs length %d not a positive multiple of %d", len(inputs), inSize)
	}
	rows := len(inputs) / inSize
	if n.batch == nil || n.batch.rows < rows {
		n.batch = n.NewBatchScratch(rows)
	}
	return n.ForwardBatchInto(n.batch, inputs)
}

// forwardBatchLayer applies one dense layer to a row-major rows×in
// activation plane, producing the rows×out plane. The blocked pass holds
// four input rows × two output neurons (eight accumulators) in registers
// and streams each pair of weight rows exactly once per four-row block, so
// at Table II widths the whole weight matrix stays cache-resident while
// the batch flows through. Leftover rows (batch % 4) fall back to the
// shared single-row forwardLayer kernel, keeping one source of truth for
// the layer numerics.
func forwardBatchLayer(w, b, prev, cur []float64, in, out, rows int) {
	r := 0
	for ; r+4 <= rows; r += 4 {
		p0 := prev[(r+0)*in : (r+1)*in : (r+1)*in]
		p1 := prev[(r+1)*in : (r+2)*in : (r+2)*in]
		p2 := prev[(r+2)*in : (r+3)*in : (r+3)*in]
		p3 := prev[(r+3)*in : (r+4)*in : (r+4)*in]
		c0 := cur[(r+0)*out : (r+1)*out : (r+1)*out]
		c1 := cur[(r+1)*out : (r+2)*out : (r+2)*out]
		c2 := cur[(r+2)*out : (r+3)*out : (r+3)*out]
		c3 := cur[(r+3)*out : (r+4)*out : (r+4)*out]
		i := 0
		for ; i+2 <= out; i += 2 {
			w0 := w[(i+0)*in : (i+0)*in+in : (i+0)*in+in]
			w1 := w[(i+1)*in : (i+1)*in+in : (i+1)*in+in]
			s00, s01, s02, s03 := b[i], b[i], b[i], b[i]
			s10, s11, s12, s13 := b[i+1], b[i+1], b[i+1], b[i+1]
			for j := 0; j < in; j++ {
				wa, wb := w0[j], w1[j]
				g0, g1, g2, g3 := p0[j], p1[j], p2[j], p3[j]
				s00 += wa * g0
				s01 += wa * g1
				s02 += wa * g2
				s03 += wa * g3
				s10 += wb * g0
				s11 += wb * g1
				s12 += wb * g2
				s13 += wb * g3
			}
			c0[i], c1[i], c2[i], c3[i] = sigmoid(s00), sigmoid(s01), sigmoid(s02), sigmoid(s03)
			c0[i+1], c1[i+1], c2[i+1], c3[i+1] = sigmoid(s10), sigmoid(s11), sigmoid(s12), sigmoid(s13)
		}
		for ; i < out; i++ {
			row := w[i*in : i*in+in : i*in+in]
			s0, s1, s2, s3 := b[i], b[i], b[i], b[i]
			for j := 0; j < in; j++ {
				wj := row[j]
				s0 += wj * p0[j]
				s1 += wj * p1[j]
				s2 += wj * p2[j]
				s3 += wj * p3[j]
			}
			c0[i], c1[i], c2[i], c3[i] = sigmoid(s0), sigmoid(s1), sigmoid(s2), sigmoid(s3)
		}
	}
	for ; r < rows; r++ {
		forwardLayer(w, b, prev[r*in:(r+1)*in], cur[r*out:(r+1)*out])
	}
}
