package dnn

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestForwardBatchMatchesPerSample pins the batched kernel exactly equal
// (==, not approximately) to per-sample ForwardInto across randomized
// topologies and batch sizes 1..N, including sizes that leave a ragged
// final 4-row block and odd output widths that exercise the 1-neuron
// remainder column.
func TestForwardBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{
		{12, 50, 50, 1}, // Table II
		{1, 1},          // degenerate minimum
		{3, 7, 2},       // odd widths: 1-neuron remainder
		{5, 16, 16, 16}, // multiple of 8 widths
		{9, 31, 13, 4},  // prime-ish widths
		{2, 50, 50, 50, 3},
	}
	for _, sizes := range shapes {
		net, err := New(Config{LayerSizes: sizes, Seed: rng.Int63()})
		if err != nil {
			t.Fatalf("New(%v): %v", sizes, err)
		}
		inSize, outSize := sizes[0], sizes[len(sizes)-1]
		const maxRows = 9 // covers 4-row blocks plus every ragged remainder
		scratch := net.NewBatchScratch(maxRows)
		fwd := net.NewFwdScratch()
		inputs := make([]float64, maxRows*inSize)
		for rows := 1; rows <= maxRows; rows++ {
			for i := range inputs[:rows*inSize] {
				inputs[i] = rng.Float64()
			}
			got, err := net.ForwardBatchInto(scratch, inputs[:rows*inSize])
			if err != nil {
				t.Fatalf("ForwardBatchInto(%v, rows=%d): %v", sizes, rows, err)
			}
			if len(got) != rows*outSize {
				t.Fatalf("shape %v rows %d: got %d outputs, want %d", sizes, rows, len(got), rows*outSize)
			}
			for r := 0; r < rows; r++ {
				want, err := net.ForwardInto(fwd, inputs[r*inSize:(r+1)*inSize])
				if err != nil {
					t.Fatalf("ForwardInto: %v", err)
				}
				for i, w := range want {
					if g := got[r*outSize+i]; g != w {
						t.Fatalf("shape %v rows %d row %d out %d: batch %v != per-sample %v",
							sizes, rows, r, i, g, w)
					}
				}
			}
		}
	}
}

// TestForwardBatchMatchesForwardBatchInto checks the convenience wrapper
// grows its owned scratch and agrees with the explicit-scratch call.
func TestForwardBatchMatchesForwardBatchInto(t *testing.T) {
	net, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	scratch := net.NewBatchScratch(32)
	for _, rows := range []int{1, 5, 32} {
		inputs := make([]float64, rows*12)
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		want, err := net.ForwardBatchInto(scratch, inputs)
		if err != nil {
			t.Fatal(err)
		}
		wantCopy := append([]float64(nil), want...)
		got, err := net.ForwardBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantCopy {
			if got[i] != wantCopy[i] {
				t.Fatalf("rows %d out %d: ForwardBatch %v != ForwardBatchInto %v", rows, i, got[i], wantCopy[i])
			}
		}
	}
}

// TestForwardBatchErrors covers the validation paths.
func TestForwardBatchErrors(t *testing.T) {
	net, err := New(Config{LayerSizes: []int{4, 3, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scratch := net.NewBatchScratch(2)
	if _, err := net.ForwardBatchInto(scratch, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := net.ForwardBatchInto(scratch, make([]float64, 6)); err == nil {
		t.Fatal("non-multiple batch length accepted")
	}
	if _, err := net.ForwardBatchInto(scratch, make([]float64, 3*4)); err == nil {
		t.Fatal("batch beyond scratch capacity accepted")
	}
	other, err := New(Config{LayerSizes: []int{4, 5, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ForwardBatchInto(scratch, make([]float64, 2*4)); err == nil {
		t.Fatal("topology-mismatched scratch accepted")
	}
}

// TestForwardBatchIntoAllocs pins the batched forward allocation-free.
func TestForwardBatchIntoAllocs(t *testing.T) {
	net, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	scratch := net.NewBatchScratch(64)
	inputs := make([]float64, 64*12)
	for i := range inputs {
		inputs[i] = float64(i%12) / 12
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := net.ForwardBatchInto(scratch, inputs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ForwardBatchInto allocates %v times per call, want 0", allocs)
	}
}

// BenchmarkForwardBatchTableII compares the batched forward against the
// equivalent per-sample loop at the paper's topology.
func BenchmarkForwardBatchTableII(b *testing.B) {
	net, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for _, rows := range []int{16, 64, 256} {
		inputs := make([]float64, rows*12)
		rng := rand.New(rand.NewSource(13))
		for i := range inputs {
			inputs[i] = rng.Float64()
		}
		b.Run(fmt.Sprintf("batch-%d", rows), func(b *testing.B) {
			scratch := net.NewBatchScratch(rows)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardBatchInto(scratch, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
		b.Run(fmt.Sprintf("persample-%d", rows), func(b *testing.B) {
			fwd := net.NewFwdScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					if _, err := net.ForwardInto(fwd, inputs[r*12:(r+1)*12]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
	}
}
