// Package dnn is a from-scratch deep neural network substrate implementing
// exactly the model of the paper's Section III-A: a fully connected
// feed-forward network with sigmoid activations (Eq. 5), back-propagated
// error terms (Eqs. 6–7), and SGD weight updates (Eq. 8), trained for
// multiple epochs until a held-out validation error converges. Greedy
// layer-wise autoencoder pretraining is provided as well ("for training, it
// first computes the hidden activation[,] the reconstructed output from the
// hidden activation[,] the error gradient, and ... back-propagates").
//
// Table II fixes the paper's topology: h = 4 layers with 50 units per
// hidden layer.
package dnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config describes a network topology and training hyperparameters.
type Config struct {
	// LayerSizes lists unit counts from the input layer to the output
	// layer inclusive, e.g. {Δ, 50, 50, 1} for the paper's 4-layer net.
	LayerSizes []int

	// LearningRate is μ in Eq. 8. Zero defaults to 0.5 (sigmoid nets
	// train comfortably at this rate on [0,1]-normalized data).
	LearningRate float64

	// Seed drives the deterministic weight initialization.
	Seed int64
}

// Network is a feed-forward sigmoid MLP.
type Network struct {
	sizes   []int
	rate    float64
	weights [][][]float64 // weights[d][i][j]: layer d+1 neuron i ← layer d neuron j
	biases  [][]float64   // biases[d][i]: bias e_i of layer d+1 neuron i

	// scratch buffers reused across calls; Network is NOT safe for
	// concurrent use (clone per goroutine instead).
	acts   [][]float64
	deltas [][]float64
}

// New builds a network with deterministic small random weights.
func New(cfg Config) (*Network, error) {
	if len(cfg.LayerSizes) < 2 {
		return nil, errors.New("dnn: need at least input and output layers")
	}
	for i, s := range cfg.LayerSizes {
		if s < 1 {
			return nil, fmt.Errorf("dnn: layer %d has size %d", i, s)
		}
	}
	rate := cfg.LearningRate
	if rate <= 0 {
		rate = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{sizes: append([]int(nil), cfg.LayerSizes...), rate: rate}
	for d := 0; d < len(n.sizes)-1; d++ {
		in, out := n.sizes[d], n.sizes[d+1]
		// Xavier-style scale keeps sigmoid pre-activations in the
		// responsive region for any layer width.
		scale := math.Sqrt(6.0 / float64(in+out))
		w := make([][]float64, out)
		for i := range w {
			w[i] = make([]float64, in)
			for j := range w[i] {
				w[i][j] = (2*rng.Float64() - 1) * scale
			}
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, make([]float64, out))
	}
	n.acts = make([][]float64, len(n.sizes))
	n.deltas = make([][]float64, len(n.sizes))
	for d, s := range n.sizes {
		n.acts[d] = make([]float64, s)
		n.deltas[d] = make([]float64, s)
	}
	return n, nil
}

// NumLayers returns the number of layers including input and output
// (the paper's h).
func (n *Network) NumLayers() int { return len(n.sizes) }

// LayerSizes returns a copy of the topology.
func (n *Network) LayerSizes() []int { return append([]int(nil), n.sizes...) }

// sigmoid is F of Eq. 5.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// sigmoidPrime is F′ expressed in terms of the activation g:
// F′ = g·(1−g), as used by Eqs. 6–7.
func sigmoidPrime(g float64) float64 { return g * (1 - g) }

// Forward runs feed-forward evaluation (Eq. 5) and returns the output
// activations. The returned slice is owned by the network and overwritten
// by the next call; copy it if you need to keep it.
func (n *Network) Forward(input []float64) ([]float64, error) {
	if len(input) != n.sizes[0] {
		return nil, fmt.Errorf("dnn: input size %d, want %d", len(input), n.sizes[0])
	}
	copy(n.acts[0], input)
	for d := 0; d < len(n.weights); d++ {
		prev := n.acts[d]
		cur := n.acts[d+1]
		w := n.weights[d]
		b := n.biases[d]
		for i := range cur {
			sum := b[i]
			wi := w[i]
			for j, g := range prev {
				sum += wi[j] * g
			}
			cur[i] = sigmoid(sum)
		}
	}
	return n.acts[len(n.acts)-1], nil
}

// TrainSample performs one SGD step on a single (input, target) pair:
// feed-forward (Eq. 5), output error terms (Eq. 6), back-propagation
// (Eq. 7), and weight update (Eq. 8). It returns the pre-update squared
// error ½‖t−g‖².
func (n *Network) TrainSample(input, target []float64) (float64, error) {
	out, err := n.Forward(input)
	if err != nil {
		return 0, err
	}
	last := len(n.sizes) - 1
	if len(target) != n.sizes[last] {
		return 0, fmt.Errorf("dnn: target size %d, want %d", len(target), n.sizes[last])
	}
	var loss float64
	for i, g := range out {
		diff := target[i] - g
		loss += 0.5 * diff * diff
		n.deltas[last][i] = diff * sigmoidPrime(g) // Eq. 6
	}
	for d := last - 1; d >= 1; d-- { // Eq. 7
		w := n.weights[d] // layer d → d+1
		for i := range n.deltas[d] {
			var sum float64
			for j := range n.deltas[d+1] {
				sum += n.deltas[d+1][j] * w[j][i]
			}
			n.deltas[d][i] = sum * sigmoidPrime(n.acts[d][i])
		}
	}
	for d := 0; d < len(n.weights); d++ { // Eq. 8
		w := n.weights[d]
		b := n.biases[d]
		prev := n.acts[d]
		delta := n.deltas[d+1]
		for i := range w {
			step := n.rate * delta[i]
			wi := w[i]
			for j, g := range prev {
				wi[j] += step * g
			}
			b[i] += step
		}
	}
	return loss, nil
}

// Clone returns a deep copy sharing no state, so each goroutine in a
// parallel sweep can own its own network.
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...), rate: n.rate}
	for d := range n.weights {
		w := make([][]float64, len(n.weights[d]))
		for i := range w {
			w[i] = append([]float64(nil), n.weights[d][i]...)
		}
		c.weights = append(c.weights, w)
		c.biases = append(c.biases, append([]float64(nil), n.biases[d]...))
	}
	c.acts = make([][]float64, len(c.sizes))
	c.deltas = make([][]float64, len(c.sizes))
	for d, s := range c.sizes {
		c.acts[d] = make([]float64, s)
		c.deltas[d] = make([]float64, s)
	}
	return c
}

// Sample is one supervised training pair.
type Sample struct {
	Input  []float64
	Target []float64
}

// TrainOptions controls the epoch loop.
type TrainOptions struct {
	// MaxEpochs bounds training; zero defaults to 200.
	MaxEpochs int
	// ValidationFrac is the held-out fraction (taken from the end of the
	// sample list); zero defaults to 0.2.
	ValidationFrac float64
	// Tolerance is the relative validation-error improvement below which
	// an epoch counts as converged; zero defaults to 1e-4.
	Tolerance float64
	// Patience is how many consecutive converged epochs stop training;
	// zero defaults to 5.
	Patience int
	// Seed drives epoch shuffling.
	Seed int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 200
	}
	if o.ValidationFrac <= 0 || o.ValidationFrac >= 1 {
		o.ValidationFrac = 0.2
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	if o.Patience <= 0 {
		o.Patience = 5
	}
	return o
}

// TrainResult reports how a training run went.
type TrainResult struct {
	Epochs          int
	TrainLoss       float64 // mean per-sample loss of the final epoch
	ValidationLoss  float64 // mean held-out loss after the final epoch
	Converged       bool    // stopped by the convergence criterion
	ValidationCount int
}

// Train runs the paper's training loop: repeat epochs over the training
// set, measure the held-out validation error after each, and stop when it
// converges to a low value (or MaxEpochs).
func (n *Network) Train(samples []Sample, opts TrainOptions) (TrainResult, error) {
	opts = opts.withDefaults()
	if len(samples) == 0 {
		return TrainResult{}, errors.New("dnn: no training samples")
	}
	nVal := int(float64(len(samples)) * opts.ValidationFrac)
	if nVal >= len(samples) {
		nVal = len(samples) - 1
	}
	train := samples[:len(samples)-nVal]
	val := samples[len(samples)-nVal:]
	rng := rand.New(rand.NewSource(opts.Seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	res := TrainResult{ValidationCount: len(val)}
	prevVal := math.Inf(1)
	stalled := 0
	for epoch := 0; epoch < opts.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var trainLoss float64
		for _, idx := range order {
			s := train[idx]
			loss, err := n.TrainSample(s.Input, s.Target)
			if err != nil {
				return res, err
			}
			trainLoss += loss
		}
		res.TrainLoss = trainLoss / float64(len(train))
		res.Epochs = epoch + 1

		valLoss, err := n.Loss(val)
		if err != nil {
			return res, err
		}
		res.ValidationLoss = valLoss
		if nVal == 0 {
			valLoss = res.TrainLoss
			res.ValidationLoss = valLoss
		}
		if prevVal-valLoss < opts.Tolerance*math.Max(prevVal, 1e-12) {
			stalled++
			if stalled >= opts.Patience {
				res.Converged = true
				return res, nil
			}
		} else {
			stalled = 0
		}
		prevVal = valLoss
	}
	return res, nil
}

// Loss returns the mean ½‖t−g‖² over the samples without updating weights.
func (n *Network) Loss(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	var total float64
	for _, s := range samples {
		out, err := n.Forward(s.Input)
		if err != nil {
			return 0, err
		}
		if len(s.Target) != len(out) {
			return 0, fmt.Errorf("dnn: target size %d, want %d", len(s.Target), len(out))
		}
		for i, g := range out {
			d := s.Target[i] - g
			total += 0.5 * d * d
		}
	}
	return total / float64(len(samples)), nil
}
