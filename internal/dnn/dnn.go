// Package dnn is a from-scratch deep neural network substrate implementing
// exactly the model of the paper's Section III-A: a fully connected
// feed-forward network with sigmoid activations (Eq. 5), back-propagated
// error terms (Eqs. 6–7), and SGD weight updates (Eq. 8), trained for
// multiple epochs until a held-out validation error converges. Greedy
// layer-wise autoencoder pretraining is provided as well ("for training, it
// first computes the hidden activation[,] the reconstructed output from the
// hidden activation[,] the error gradient, and ... back-propagates").
//
// Table II fixes the paper's topology: h = 4 layers with 50 units per
// hidden layer.
//
// # Flat kernels
//
// The paper flags DNN computation as CORP's main overhead, and this
// network sits in the simulator's per-slot inner loop, so the compute core
// is written as contiguous allocation-free kernels: each layer's weights
// are one flat []float64 (row-major, stride = fan-in) carved from a single
// slab, activations/deltas/scratch are preallocated, and the hot loops are
// register-blocked so several output neurons accumulate in parallel.
// Every kernel preserves the exact per-element floating-point accumulation
// order of the original jagged implementation (ascending fan-in index),
// so results are bit-identical to the seed — equivalence_test.go pins
// this against a reconstructed jagged reference.
package dnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config describes a network topology and training hyperparameters.
type Config struct {
	// LayerSizes lists unit counts from the input layer to the output
	// layer inclusive, e.g. {Δ, 50, 50, 1} for the paper's 4-layer net.
	LayerSizes []int

	// LearningRate is μ in Eq. 8. Zero defaults to 0.5 (sigmoid nets
	// train comfortably at this rate on [0,1]-normalized data).
	LearningRate float64

	// Seed drives the deterministic weight initialization.
	Seed int64
}

// Network is a feed-forward sigmoid MLP.
type Network struct {
	sizes []int
	rate  float64

	// weights[d] is the flat row-major weight matrix of layer d → d+1:
	// weights[d][i*fanIn+j] is the weight from layer-d neuron j to
	// layer-(d+1) neuron i. All layers are views into one slab so Clone
	// and averaging are single sweeps.
	weights [][]float64
	biases  [][]float64
	wslab   []float64
	bslab   []float64

	// scratch buffers reused across calls; Network is NOT safe for
	// concurrent use (clone per goroutine instead).
	acts   [][]float64
	deltas [][]float64
	tmp    []float64 // fused-backward accumulator, sized to the widest layer

	// batch is the network-owned scratch behind ForwardBatch, grown lazily.
	batch *BatchScratch
}

// newShell allocates a network's slabs and views for the given topology
// without initializing weights.
func newShell(sizes []int, rate float64) *Network {
	n := &Network{sizes: append([]int(nil), sizes...), rate: rate}
	totalW, totalB, maxWidth := 0, 0, 0
	for d := 0; d < len(sizes)-1; d++ {
		totalW += sizes[d] * sizes[d+1]
		totalB += sizes[d+1]
	}
	for _, s := range sizes {
		if s > maxWidth {
			maxWidth = s
		}
	}
	n.wslab = make([]float64, totalW)
	n.bslab = make([]float64, totalB)
	n.weights = make([][]float64, len(sizes)-1)
	n.biases = make([][]float64, len(sizes)-1)
	wOff, bOff := 0, 0
	for d := 0; d < len(sizes)-1; d++ {
		in, out := sizes[d], sizes[d+1]
		n.weights[d] = n.wslab[wOff : wOff+in*out : wOff+in*out]
		n.biases[d] = n.bslab[bOff : bOff+out : bOff+out]
		wOff += in * out
		bOff += out
	}
	actSlab := make([]float64, 2*sum(sizes))
	n.acts = make([][]float64, len(sizes))
	n.deltas = make([][]float64, len(sizes))
	off := 0
	for d, s := range sizes {
		n.acts[d] = actSlab[off : off+s : off+s]
		n.deltas[d] = actSlab[off+s : off+2*s : off+2*s]
		off += 2 * s
	}
	n.tmp = make([]float64, maxWidth)
	return n
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// New builds a network with deterministic small random weights.
func New(cfg Config) (*Network, error) {
	if len(cfg.LayerSizes) < 2 {
		return nil, errors.New("dnn: need at least input and output layers")
	}
	for i, s := range cfg.LayerSizes {
		if s < 1 {
			return nil, fmt.Errorf("dnn: layer %d has size %d", i, s)
		}
	}
	rate := cfg.LearningRate
	if rate <= 0 {
		rate = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := newShell(cfg.LayerSizes, rate)
	for d := 0; d < len(n.sizes)-1; d++ {
		in, out := n.sizes[d], n.sizes[d+1]
		// Xavier-style scale keeps sigmoid pre-activations in the
		// responsive region for any layer width. The flat matrix is filled
		// in the same row-major RNG order as the original jagged layout,
		// so a given seed yields the identical network.
		scale := math.Sqrt(6.0 / float64(in+out))
		w := n.weights[d]
		for i := 0; i < out*in; i++ {
			w[i] = (2*rng.Float64() - 1) * scale
		}
	}
	return n, nil
}

// NumLayers returns the number of layers including input and output
// (the paper's h).
func (n *Network) NumLayers() int { return len(n.sizes) }

// LayerSizes returns a copy of the topology.
func (n *Network) LayerSizes() []int { return append([]int(nil), n.sizes...) }

// sigmoid is F of Eq. 5.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// sigmoidPrime is F′ expressed in terms of the activation g:
// F′ = g·(1−g), as used by Eqs. 6–7.
func sigmoidPrime(g float64) float64 { return g * (1 - g) }

// forward runs the feed-forward kernel into the network's own scratch.
func (n *Network) forward(input []float64) {
	forwardInto(n.weights, n.biases, n.acts, input)
}

// forwardInto is the feed-forward kernel (Eq. 5). Activations land in
// acts, which the caller owns — concurrent evaluations of one network are
// safe as long as each uses its own acts buffers (see FwdScratch).
func forwardInto(weights, biases, acts [][]float64, input []float64) {
	copy(acts[0], input)
	for d := 0; d < len(weights); d++ {
		forwardLayer(weights[d], biases[d], acts[d], acts[d+1])
	}
}

// forwardLayer applies one dense layer to a single activation row: blocked
// passes accumulate eight output neurons at a time in registers, which
// breaks the one-long dependent-add chain per neuron into independent
// pipelined chains. The per-neuron accumulation order (bias, then fan-in
// ascending) is the same as a plain nested loop. The batched kernel
// (batch.go) delegates its remainder rows here, so single-row and batched
// evaluation share one definition of the layer numerics.
func forwardLayer(w, b, prev, cur []float64) {
	in := len(prev)
	i := 0
	for ; i+8 <= len(cur); i += 8 {
		r0 := w[(i+0)*in : (i+0)*in+in : (i+0)*in+in]
		r1 := w[(i+1)*in : (i+1)*in+in : (i+1)*in+in]
		r2 := w[(i+2)*in : (i+2)*in+in : (i+2)*in+in]
		r3 := w[(i+3)*in : (i+3)*in+in : (i+3)*in+in]
		r4 := w[(i+4)*in : (i+4)*in+in : (i+4)*in+in]
		r5 := w[(i+5)*in : (i+5)*in+in : (i+5)*in+in]
		r6 := w[(i+6)*in : (i+6)*in+in : (i+6)*in+in]
		r7 := w[(i+7)*in : (i+7)*in+in : (i+7)*in+in]
		s0, s1, s2, s3 := b[i], b[i+1], b[i+2], b[i+3]
		s4, s5, s6, s7 := b[i+4], b[i+5], b[i+6], b[i+7]
		for j, g := range prev {
			s0 += r0[j] * g
			s1 += r1[j] * g
			s2 += r2[j] * g
			s3 += r3[j] * g
			s4 += r4[j] * g
			s5 += r5[j] * g
			s6 += r6[j] * g
			s7 += r7[j] * g
		}
		cur[i], cur[i+1], cur[i+2], cur[i+3] = sigmoid(s0), sigmoid(s1), sigmoid(s2), sigmoid(s3)
		cur[i+4], cur[i+5], cur[i+6], cur[i+7] = sigmoid(s4), sigmoid(s5), sigmoid(s6), sigmoid(s7)
	}
	for ; i+4 <= len(cur); i += 4 {
		r0 := w[(i+0)*in : (i+0)*in+in : (i+0)*in+in]
		r1 := w[(i+1)*in : (i+1)*in+in : (i+1)*in+in]
		r2 := w[(i+2)*in : (i+2)*in+in : (i+2)*in+in]
		r3 := w[(i+3)*in : (i+3)*in+in : (i+3)*in+in]
		s0, s1, s2, s3 := b[i], b[i+1], b[i+2], b[i+3]
		for j, g := range prev {
			s0 += r0[j] * g
			s1 += r1[j] * g
			s2 += r2[j] * g
			s3 += r3[j] * g
		}
		cur[i], cur[i+1], cur[i+2], cur[i+3] = sigmoid(s0), sigmoid(s1), sigmoid(s2), sigmoid(s3)
	}
	for ; i < len(cur); i++ {
		row := w[i*in : i*in+in : i*in+in]
		sum := b[i]
		for j, g := range prev {
			sum += row[j] * g
		}
		cur[i] = sigmoid(sum)
	}
}

// Forward runs feed-forward evaluation (Eq. 5) and returns the output
// activations. The returned slice is owned by the network and overwritten
// by the next call; copy it if you need to keep it.
func (n *Network) Forward(input []float64) ([]float64, error) {
	if len(input) != n.sizes[0] {
		return nil, fmt.Errorf("dnn: input size %d, want %d", len(input), n.sizes[0])
	}
	n.forward(input)
	return n.acts[len(n.acts)-1], nil
}

// FwdScratch holds caller-owned activation buffers for ForwardInto, so
// many goroutines can evaluate one (read-only) network concurrently — the
// intra-run prediction engine gives each per-VM predictor its own scratch.
// A scratch is tied to a topology, not a specific network: it works with
// any network whose LayerSizes match the one that created it.
type FwdScratch struct {
	sizes []int
	acts  [][]float64
}

// NewFwdScratch allocates forward-pass scratch for this network's
// topology.
func (n *Network) NewFwdScratch() *FwdScratch {
	s := &FwdScratch{sizes: append([]int(nil), n.sizes...)}
	slab := make([]float64, sum(n.sizes))
	s.acts = make([][]float64, len(n.sizes))
	off := 0
	for d, sz := range n.sizes {
		s.acts[d] = slab[off : off+sz : off+sz]
		off += sz
	}
	return s
}

// ForwardInto evaluates the network using the caller's scratch and returns
// the output activations (owned by the scratch, overwritten by its next
// use). It reads only the network's weights, so concurrent calls on one
// network are safe provided no training runs concurrently and each caller
// uses its own scratch. Numerics are bit-identical to Forward.
func (n *Network) ForwardInto(s *FwdScratch, input []float64) ([]float64, error) {
	if len(input) != n.sizes[0] {
		return nil, fmt.Errorf("dnn: input size %d, want %d", len(input), n.sizes[0])
	}
	if len(s.sizes) != len(n.sizes) {
		return nil, fmt.Errorf("dnn: scratch for %d layers, network has %d", len(s.sizes), len(n.sizes))
	}
	for d, sz := range n.sizes {
		if s.sizes[d] != sz {
			return nil, fmt.Errorf("dnn: scratch topology %v, network %v", s.sizes, n.sizes)
		}
	}
	forwardInto(n.weights, n.biases, s.acts, input)
	return s.acts[len(s.acts)-1], nil
}

// trainOne is the fused forward+backward+update kernel for one sample.
// Sizes must already be validated. For each hidden layer the Eq. 7
// back-propagation and the Eq. 8 weight update share a single blocked pass
// over the weight matrix: the error contribution is read from a weight
// immediately before the update is written, so back-propagation sees
// pre-update weights exactly as a two-pass implementation would.
func (n *Network) trainOne(input, target []float64) float64 {
	n.forward(input)
	last := len(n.sizes) - 1
	out := n.acts[last]
	var loss float64
	for i, g := range out {
		diff := target[i] - g
		loss += 0.5 * diff * diff
		n.deltas[last][i] = diff * sigmoidPrime(g) // Eq. 6
	}
	rate := n.rate
	// Hidden layers: fused Eq. 7 + Eq. 8 over weights[d], d = last-1 … 1.
	for d := last - 1; d >= 1; d-- {
		w := n.weights[d]
		b := n.biases[d]
		delta := n.deltas[d+1]
		prev := n.acts[d]
		cur := n.deltas[d]
		in := len(cur)
		tmp := n.tmp[:in]
		for i := range tmp {
			tmp[i] = 0
		}
		j := 0
		for ; j+4 <= len(delta); j += 4 {
			d0, d1, d2, d3 := delta[j], delta[j+1], delta[j+2], delta[j+3]
			s0, s1, s2, s3 := rate*d0, rate*d1, rate*d2, rate*d3
			r0 := w[(j+0)*in : (j+0)*in+in : (j+0)*in+in]
			r1 := w[(j+1)*in : (j+1)*in+in : (j+1)*in+in]
			r2 := w[(j+2)*in : (j+2)*in+in : (j+2)*in+in]
			r3 := w[(j+3)*in : (j+3)*in+in : (j+3)*in+in]
			for i, g := range prev {
				t := tmp[i]
				t += d0 * r0[i]
				r0[i] += s0 * g
				t += d1 * r1[i]
				r1[i] += s1 * g
				t += d2 * r2[i]
				r2[i] += s2 * g
				t += d3 * r3[i]
				r3[i] += s3 * g
				tmp[i] = t
			}
			b[j] += s0
			b[j+1] += s1
			b[j+2] += s2
			b[j+3] += s3
		}
		for ; j < len(delta); j++ {
			dj := delta[j]
			step := rate * dj
			row := w[j*in : j*in+in : j*in+in]
			for i, g := range prev {
				tmp[i] += dj * row[i]
				row[i] += step * g
			}
			b[j] += step
		}
		for i := range cur {
			cur[i] = tmp[i] * sigmoidPrime(prev[i])
		}
	}
	// Input layer: Eq. 8 update only (no error term propagates to inputs).
	{
		w := n.weights[0]
		b := n.biases[0]
		prev := n.acts[0]
		delta := n.deltas[1]
		in := len(prev)
		i := 0
		for ; i+4 <= len(delta); i += 4 {
			s0, s1, s2, s3 := rate*delta[i], rate*delta[i+1], rate*delta[i+2], rate*delta[i+3]
			r0 := w[(i+0)*in : (i+0)*in+in : (i+0)*in+in]
			r1 := w[(i+1)*in : (i+1)*in+in : (i+1)*in+in]
			r2 := w[(i+2)*in : (i+2)*in+in : (i+2)*in+in]
			r3 := w[(i+3)*in : (i+3)*in+in : (i+3)*in+in]
			for j, g := range prev {
				r0[j] += s0 * g
				r1[j] += s1 * g
				r2[j] += s2 * g
				r3[j] += s3 * g
			}
			b[i] += s0
			b[i+1] += s1
			b[i+2] += s2
			b[i+3] += s3
		}
		for ; i < len(delta); i++ {
			step := rate * delta[i]
			row := w[i*in : i*in+in : i*in+in]
			for j, g := range prev {
				row[j] += step * g
			}
			b[i] += step
		}
	}
	return loss
}

// TrainSample performs one SGD step on a single (input, target) pair:
// feed-forward (Eq. 5), output error terms (Eq. 6), back-propagation
// (Eq. 7), and weight update (Eq. 8). It returns the pre-update squared
// error ½‖t−g‖². The call performs no heap allocations.
func (n *Network) TrainSample(input, target []float64) (float64, error) {
	if len(input) != n.sizes[0] {
		return 0, fmt.Errorf("dnn: input size %d, want %d", len(input), n.sizes[0])
	}
	last := len(n.sizes) - 1
	if len(target) != n.sizes[last] {
		return 0, fmt.Errorf("dnn: target size %d, want %d", len(target), n.sizes[last])
	}
	return n.trainOne(input, target), nil
}

// TrainBatch runs sequential SGD steps over a batch of samples stored in
// flat row-major slabs: inputs holds count×inputSize values, targets
// count×outputSize, where count = len(inputs)/inputSize. Training order
// and numerics are identical to calling TrainSample on each row in turn;
// the batched entry point exists so hot callers (the CORP online trainer
// and its replay ring) can run several steps per call with zero
// allocations and no per-sample slice bookkeeping. It returns the summed
// pre-update loss over the batch.
func (n *Network) TrainBatch(inputs, targets []float64) (float64, error) {
	inSize := n.sizes[0]
	outSize := n.sizes[len(n.sizes)-1]
	if len(inputs) == 0 || len(inputs)%inSize != 0 {
		return 0, fmt.Errorf("dnn: batch inputs length %d not a positive multiple of %d", len(inputs), inSize)
	}
	count := len(inputs) / inSize
	if len(targets) != count*outSize {
		return 0, fmt.Errorf("dnn: batch targets length %d, want %d", len(targets), count*outSize)
	}
	var loss float64
	for s := 0; s < count; s++ {
		in := inputs[s*inSize : (s+1)*inSize]
		tg := targets[s*outSize : (s+1)*outSize]
		loss += n.trainOne(in, tg)
	}
	return loss, nil
}

// Clone returns a deep copy sharing no state, so each goroutine in a
// parallel sweep can own its own network. The flat layout makes this two
// slab copies plus fresh scratch.
func (n *Network) Clone() *Network {
	c := newShell(n.sizes, n.rate)
	copy(c.wslab, n.wslab)
	copy(c.bslab, n.bslab)
	return c
}

// Sample is one supervised training pair.
type Sample struct {
	Input  []float64
	Target []float64
}

// TrainOptions controls the epoch loop.
type TrainOptions struct {
	// MaxEpochs bounds training; zero defaults to 200.
	MaxEpochs int
	// ValidationFrac is the held-out fraction (taken from the end of the
	// sample list); zero defaults to 0.2.
	ValidationFrac float64
	// Tolerance is the relative validation-error improvement below which
	// an epoch counts as converged; zero defaults to 1e-4.
	Tolerance float64
	// Patience is how many consecutive converged epochs stop training;
	// zero defaults to 5.
	Patience int
	// Seed drives epoch shuffling.
	Seed int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 200
	}
	if o.ValidationFrac <= 0 || o.ValidationFrac >= 1 {
		o.ValidationFrac = 0.2
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	if o.Patience <= 0 {
		o.Patience = 5
	}
	return o
}

// TrainResult reports how a training run went.
type TrainResult struct {
	Epochs          int
	TrainLoss       float64 // mean per-sample loss of the final epoch
	ValidationLoss  float64 // mean held-out loss after the final epoch
	Converged       bool    // stopped by the convergence criterion
	ValidationCount int
}

// Train runs the paper's training loop: repeat epochs over the training
// set, measure the held-out validation error after each, and stop when it
// converges to a low value (or MaxEpochs).
func (n *Network) Train(samples []Sample, opts TrainOptions) (TrainResult, error) {
	opts = opts.withDefaults()
	if len(samples) == 0 {
		return TrainResult{}, errors.New("dnn: no training samples")
	}
	nVal := int(float64(len(samples)) * opts.ValidationFrac)
	if nVal >= len(samples) {
		nVal = len(samples) - 1
	}
	train := samples[:len(samples)-nVal]
	val := samples[len(samples)-nVal:]
	rng := rand.New(rand.NewSource(opts.Seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	res := TrainResult{ValidationCount: len(val)}
	prevVal := math.Inf(1)
	stalled := 0
	for epoch := 0; epoch < opts.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var trainLoss float64
		for _, idx := range order {
			s := train[idx]
			loss, err := n.TrainSample(s.Input, s.Target)
			if err != nil {
				return res, err
			}
			trainLoss += loss
		}
		res.TrainLoss = trainLoss / float64(len(train))
		res.Epochs = epoch + 1

		valLoss, err := n.Loss(val)
		if err != nil {
			return res, err
		}
		res.ValidationLoss = valLoss
		if nVal == 0 {
			valLoss = res.TrainLoss
			res.ValidationLoss = valLoss
		}
		if prevVal-valLoss < opts.Tolerance*math.Max(prevVal, 1e-12) {
			stalled++
			if stalled >= opts.Patience {
				res.Converged = true
				return res, nil
			}
		} else {
			stalled = 0
		}
		prevVal = valLoss
	}
	return res, nil
}

// Loss returns the mean ½‖t−g‖² over the samples without updating weights.
func (n *Network) Loss(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	var total float64
	for _, s := range samples {
		out, err := n.Forward(s.Input)
		if err != nil {
			return 0, err
		}
		if len(s.Target) != len(out) {
			return 0, fmt.Errorf("dnn: target size %d, want %d", len(s.Target), len(out))
		}
		for i, g := range out {
			d := s.Target[i] - g
			total += 0.5 * d * d
		}
	}
	return total / float64(len(samples)), nil
}
