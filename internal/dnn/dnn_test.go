package dnn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LayerSizes: []int{3}}); err == nil {
		t.Error("single layer should fail")
	}
	if _, err := New(Config{LayerSizes: []int{3, 0, 1}}); err == nil {
		t.Error("zero-size layer should fail")
	}
	n, err := New(Config{LayerSizes: []int{4, 50, 50, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLayers() != 4 {
		t.Errorf("NumLayers = %d, want 4 (Table II)", n.NumLayers())
	}
	if got := n.LayerSizes(); !reflect.DeepEqual(got, []int{4, 50, 50, 1}) {
		t.Errorf("LayerSizes = %v", got)
	}
}

func TestForwardShapeAndRange(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{3, 5, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.Forward([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output size %d", len(out))
	}
	for _, g := range out {
		if g <= 0 || g >= 1 {
			t.Errorf("sigmoid activation %v outside (0,1)", g)
		}
	}
	if _, err := n.Forward([]float64{1}); err == nil {
		t.Error("wrong input size should fail")
	}
}

func TestForwardDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		n, err := New(Config{LayerSizes: []int{2, 4, 1}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out, err := n.Forward([]float64{0.3, 0.7})
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), out...)
	}
	if !reflect.DeepEqual(mk(5), mk(5)) {
		t.Error("same seed should give identical outputs")
	}
	if reflect.DeepEqual(mk(5), mk(6)) {
		t.Error("different seeds should give different weights")
	}
}

func TestTrainSampleReducesLoss(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{2, 8, 1}, LearningRate: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.2, 0.9}
	target := []float64{0.8}
	first, err := n.TrainSample(in, target)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 200; i++ {
		last, err = n.TrainSample(in, target)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v, last %v", first, last)
	}
	out, _ := n.Forward(in)
	if math.Abs(out[0]-0.8) > 0.05 {
		t.Errorf("converged output %v, want ≈ 0.8", out[0])
	}
}

func TestTrainSampleWrongTargetSize(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{2, 3, 1}})
	if _, err := n.TrainSample([]float64{0, 0}, []float64{0, 0}); err == nil {
		t.Error("wrong target size should fail")
	}
}

// TestLearnsXOR: XOR is the classic non-linearly-separable task; a network
// that learns it demonstrably uses its hidden layer.
func TestLearnsXOR(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{2, 8, 8, 1}, LearningRate: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := []Sample{
		{Input: []float64{0, 0}, Target: []float64{0}},
		{Input: []float64{0, 1}, Target: []float64{1}},
		{Input: []float64{1, 0}, Target: []float64{1}},
		{Input: []float64{1, 1}, Target: []float64{0}},
	}
	rng := rand.New(rand.NewSource(1))
	for epoch := 0; epoch < 4000; epoch++ {
		i := rng.Intn(len(data))
		if _, err := n.TrainSample(data[i].Input, data[i].Target); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range data {
		out, _ := n.Forward(s.Input)
		if math.Abs(out[0]-s.Target[0]) > 0.25 {
			t.Errorf("XOR(%v) = %v, want %v", s.Input, out[0], s.Target[0])
		}
	}
}

func TestTrainLoopConvergesOnFunction(t *testing.T) {
	// Learn y = 0.5 + 0.3·sin(2πx) sampled on [0,1]. Samples are visited
	// in a scrambled order so the held-out tail is representative rather
	// than an extrapolation region.
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := float64((i*37)%200) / 200
		samples = append(samples, Sample{
			Input:  []float64{x},
			Target: []float64{0.5 + 0.3*math.Sin(2*math.Pi*x)},
		})
	}
	n, err := New(Config{LayerSizes: []int{1, 16, 16, 1}, LearningRate: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(samples, TrainOptions{MaxEpochs: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationLoss > 0.01 {
		t.Errorf("validation loss %v too high after %d epochs", res.ValidationLoss, res.Epochs)
	}
	if res.ValidationCount == 0 {
		t.Error("validation set should not be empty")
	}
}

func TestTrainEmptySamples(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}})
	if _, err := n.Train(nil, TrainOptions{}); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestLossEmptyIsZero(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}})
	loss, err := n.Loss(nil)
	if err != nil || loss != 0 {
		t.Errorf("Loss(nil) = %v, %v", loss, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{2, 4, 1}, Seed: 9})
	c := n.Clone()
	outN, _ := n.Forward([]float64{0.5, 0.5})
	want := append([]float64(nil), outN...)
	// Train the clone; the original must not move.
	for i := 0; i < 50; i++ {
		if _, err := c.TrainSample([]float64{0.5, 0.5}, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	outN2, _ := n.Forward([]float64{0.5, 0.5})
	if !reflect.DeepEqual(want, append([]float64(nil), outN2...)) {
		t.Error("training a clone mutated the original")
	}
	outC, _ := c.Forward([]float64{0.5, 0.5})
	if reflect.DeepEqual(want, append([]float64(nil), outC...)) {
		t.Error("clone did not train")
	}
}

func TestAutoencoderReconstruction(t *testing.T) {
	ae, err := NewAutoencoder(4, 8, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]float64{
		{0.9, 0.1, 0.1, 0.1},
		{0.1, 0.9, 0.1, 0.1},
		{0.1, 0.1, 0.9, 0.1},
		{0.1, 0.1, 0.1, 0.9},
	}
	loss, err := ae.TrainEpochs(inputs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("reconstruction loss %v too high", loss)
	}
	rec, err := ae.Reconstruct(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec[0]-0.9) > 0.15 {
		t.Errorf("reconstructed[0] = %v, want ≈ 0.9", rec[0])
	}
	enc, err := ae.Encode(inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 8 {
		t.Errorf("encoding size %d, want 8", len(enc))
	}
}

func TestAutoencoderEmptyInputs(t *testing.T) {
	ae, _ := NewAutoencoder(2, 2, 0.5, 0)
	if _, err := ae.TrainEpochs(nil, 5); err == nil {
		t.Error("empty inputs should fail")
	}
}

func TestPretrainImprovesStart(t *testing.T) {
	// Inputs live on a 1-D manifold; pretraining should not error and
	// should leave the network able to fine-tune.
	var inputs [][]float64
	var samples []Sample
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		in := []float64{x, 1 - x, x * x}
		inputs = append(inputs, in)
		samples = append(samples, Sample{Input: in, Target: []float64{x}})
	}
	n, err := New(Config{LayerSizes: []int{3, 10, 10, 1}, LearningRate: 1.0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Pretrain(inputs, 50, 6); err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(samples, TrainOptions{MaxEpochs: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationLoss > 0.02 {
		t.Errorf("post-pretrain fine-tune loss %v too high", res.ValidationLoss)
	}
}

func TestPretrainEmptyInputs(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{2, 2, 1}})
	if err := n.Pretrain(nil, 5, 0); err == nil {
		t.Error("empty pretraining inputs should fail")
	}
}

// Property: Forward always emits values strictly inside (0, 1) for finite
// inputs — sigmoid saturation must not overflow to exactly 0/1 NaNs.
func TestQuickForwardBounded(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{3, 6, 2}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		in := []float64{clamp01(a), clamp01(b), clamp01(c)}
		out, err := n.Forward(in)
		if err != nil {
			return false
		}
		for _, g := range out {
			if math.IsNaN(g) || g < 0 || g > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	x = math.Abs(math.Mod(x, 1))
	if math.IsNaN(x) {
		return 0.5
	}
	return x
}

func TestSigmoidPrimeMatchesDerivative(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 0.5, 2} {
		g := sigmoid(x)
		h := 1e-6
		numeric := (sigmoid(x+h) - sigmoid(x-h)) / (2 * h)
		if math.Abs(sigmoidPrime(g)-numeric) > 1e-6 {
			t.Errorf("sigmoidPrime at %v: got %v, numeric %v", x, sigmoidPrime(g), numeric)
		}
	}
}

func BenchmarkForwardTableII(b *testing.B) {
	// Table II topology: 4 layers, 50 units per hidden layer, Δ=12 inputs.
	n, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]float64, 12)
	for i := range in {
		in[i] = float64(i) / 12
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Forward(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSampleTableII(b *testing.B) {
	n, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]float64, 12)
	for i := range in {
		in[i] = float64(i) / 12
	}
	target := []float64{0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TrainSample(in, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainBatchTableII measures the batched kernel at the CORP
// online shape: 1 new sample + 5 replays per call.
func BenchmarkTrainBatchTableII(b *testing.B) {
	n, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 6
	ins := make([]float64, batch*12)
	tgts := make([]float64, batch)
	for i := range ins {
		ins[i] = float64(i%12) / 12
	}
	for i := range tgts {
		tgts[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TrainBatch(ins, tgts); err != nil {
			b.Fatal(err)
		}
	}
}
