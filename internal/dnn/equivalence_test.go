package dnn

import (
	"math"
	"math/rand"
	"testing"
)

// The flat blocked/fused kernels are required to reproduce the original
// jagged implementation bit-for-bit (the repo's figures are pinned to
// fixed seeds). jaggedNet reconstructs that seed implementation — nested
// [][]float64 weight rows, plain nested loops, two-pass backward — so the
// equivalence tests compare the production network against the exact
// numerics the repo shipped with.

type jaggedNet struct {
	sizes   []int
	rate    float64
	weights [][][]float64
	biases  [][]float64
	acts    [][]float64
	deltas  [][]float64
}

func newJagged(sizes []int, rate float64, seed int64) *jaggedNet {
	rng := rand.New(rand.NewSource(seed))
	n := &jaggedNet{sizes: sizes, rate: rate}
	n.weights = make([][][]float64, len(sizes)-1)
	n.biases = make([][]float64, len(sizes)-1)
	for d := 0; d < len(sizes)-1; d++ {
		in, out := sizes[d], sizes[d+1]
		scale := math.Sqrt(6.0 / float64(in+out))
		rows := make([][]float64, out)
		for i := range rows {
			rows[i] = make([]float64, in)
			for j := range rows[i] {
				rows[i][j] = (2*rng.Float64() - 1) * scale
			}
		}
		n.weights[d] = rows
		n.biases[d] = make([]float64, out)
	}
	n.acts = make([][]float64, len(sizes))
	n.deltas = make([][]float64, len(sizes))
	for d, s := range sizes {
		n.acts[d] = make([]float64, s)
		n.deltas[d] = make([]float64, s)
	}
	return n
}

func (n *jaggedNet) forward(input []float64) []float64 {
	copy(n.acts[0], input)
	for d := 0; d < len(n.weights); d++ {
		prev := n.acts[d]
		cur := n.acts[d+1]
		for i := range cur {
			wi := n.weights[d][i]
			sum := n.biases[d][i]
			for j, g := range prev {
				sum += wi[j] * g
			}
			cur[i] = sigmoid(sum)
		}
	}
	return n.acts[len(n.acts)-1]
}

func (n *jaggedNet) trainSample(input, target []float64) float64 {
	out := n.forward(input)
	last := len(n.sizes) - 1
	var loss float64
	for i, g := range out {
		diff := target[i] - g
		loss += 0.5 * diff * diff
		n.deltas[last][i] = diff * sigmoidPrime(g)
	}
	for d := last - 1; d >= 1; d-- {
		w := n.weights[d]
		for i := range n.deltas[d] {
			var sum float64
			for j := range n.deltas[d+1] {
				sum += n.deltas[d+1][j] * w[j][i]
			}
			n.deltas[d][i] = sum * sigmoidPrime(n.acts[d][i])
		}
	}
	for d := 0; d < len(n.weights); d++ {
		prev := n.acts[d]
		delta := n.deltas[d+1]
		for i := range n.weights[d] {
			wi := n.weights[d][i]
			step := n.rate * delta[i]
			for j, g := range prev {
				wi[j] += step * g
			}
			n.biases[d][i] += step
		}
	}
	return loss
}

// tableIIShape is the paper's predictor topology {Δ, 50, 50, 1}.
var tableIIShape = []int{12, 50, 50, 1}

// TestFlatMatchesJaggedTableII trains the flat production network and the
// jagged reference side by side for 1000 SGD steps on the Table II shape
// and demands ≤1e-12 divergence in losses, outputs, and every parameter.
// (The kernels are designed to be exactly bit-identical; the 1e-12 bound
// is the acceptance criterion's slack.)
func TestFlatMatchesJaggedTableII(t *testing.T) {
	const seed = 42
	flat, err := New(Config{LayerSizes: tableIIShape, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	jag := newJagged(tableIIShape, 0.5, seed)

	rng := rand.New(rand.NewSource(7))
	in := make([]float64, tableIIShape[0])
	target := make([]float64, 1)
	for step := 0; step < 1000; step++ {
		for i := range in {
			in[i] = rng.Float64()
		}
		target[0] = rng.Float64()
		lf, err := flat.TrainSample(in, target)
		if err != nil {
			t.Fatal(err)
		}
		lj := jag.trainSample(in, target)
		if math.Abs(lf-lj) > 1e-12 {
			t.Fatalf("step %d: loss diverged: flat %v, jagged %v", step, lf, lj)
		}
	}

	// Forward outputs after training.
	for trial := 0; trial < 10; trial++ {
		for i := range in {
			in[i] = rng.Float64()
		}
		of, err := flat.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		oj := jag.forward(in)
		for i := range of {
			if math.Abs(of[i]-oj[i]) > 1e-12 {
				t.Fatalf("forward diverged: flat %v, jagged %v", of[i], oj[i])
			}
		}
	}

	// Every weight and bias.
	for d := range flat.weights {
		in := flat.sizes[d]
		for i, row := range jag.weights[d] {
			for j, want := range row {
				if got := flat.weights[d][i*in+j]; math.Abs(got-want) > 1e-12 {
					t.Fatalf("weight [%d][%d][%d] diverged: flat %v, jagged %v", d, i, j, got, want)
				}
			}
		}
		for i, want := range jag.biases[d] {
			if got := flat.biases[d][i]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("bias [%d][%d] diverged: flat %v, jagged %v", d, i, got, want)
			}
		}
	}
}

// TestFlatMatchesJaggedOddShapes covers layer widths that exercise the
// blocked kernels' 8/4/scalar remainder paths (and a widest-layer-first
// topology for the shared tmp buffer).
func TestFlatMatchesJaggedOddShapes(t *testing.T) {
	shapes := [][]int{
		{3, 5, 2},     // all-scalar remainders
		{7, 13, 9, 4}, // 8+4+scalar mixes
		{12, 50, 3},   // wide then narrow
		{5, 17, 1},
	}
	for _, shape := range shapes {
		flat, err := New(Config{LayerSizes: shape, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		jag := newJagged(shape, 0.5, 9)
		rng := rand.New(rand.NewSource(11))
		in := make([]float64, shape[0])
		target := make([]float64, shape[len(shape)-1])
		for step := 0; step < 200; step++ {
			for i := range in {
				in[i] = rng.Float64()
			}
			for i := range target {
				target[i] = rng.Float64()
			}
			lf, err := flat.TrainSample(in, target)
			if err != nil {
				t.Fatal(err)
			}
			if lj := jag.trainSample(in, target); math.Abs(lf-lj) > 1e-12 {
				t.Fatalf("shape %v step %d: loss diverged: flat %v, jagged %v", shape, step, lf, lj)
			}
		}
	}
}

// TestTrainBatchMatchesSequentialTrainSample pins the batched kernel to
// per-sample semantics: same order, same numerics, summed loss.
func TestTrainBatchMatchesSequentialTrainSample(t *testing.T) {
	a, err := New(Config{LayerSizes: tableIIShape, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	rng := rand.New(rand.NewSource(5))
	const batch = 6
	inSize := tableIIShape[0]
	ins := make([]float64, batch*inSize)
	tgts := make([]float64, batch)
	for i := range ins {
		ins[i] = rng.Float64()
	}
	for i := range tgts {
		tgts[i] = rng.Float64()
	}

	var wantLoss float64
	for s := 0; s < batch; s++ {
		loss, err := a.TrainSample(ins[s*inSize:(s+1)*inSize], tgts[s:s+1])
		if err != nil {
			t.Fatal(err)
		}
		wantLoss += loss
	}
	gotLoss, err := b.TrainBatch(ins, tgts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotLoss-wantLoss) > 1e-12 {
		t.Fatalf("batch loss %v, sequential %v", gotLoss, wantLoss)
	}
	for i := range a.wslab {
		if a.wslab[i] != b.wslab[i] {
			t.Fatalf("weights diverge at slab index %d", i)
		}
	}
	for i := range a.bslab {
		if a.bslab[i] != b.bslab[i] {
			t.Fatalf("biases diverge at slab index %d", i)
		}
	}
}

// TestTrainBatchValidation covers the malformed-batch error paths.
func TestTrainBatchValidation(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{4, 3, 2}, Seed: 1})
	cases := []struct {
		name     string
		ins, tgt []float64
	}{
		{"empty", nil, nil},
		{"ragged inputs", make([]float64, 7), make([]float64, 2)},
		{"target mismatch", make([]float64, 8), make([]float64, 3)},
	}
	for _, c := range cases {
		if _, err := n.TrainBatch(c.ins, c.tgt); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestCloneDeterminism: a clone must train exactly like its source.
func TestCloneDeterminism(t *testing.T) {
	a, err := New(Config{LayerSizes: tableIIShape, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	rng := rand.New(rand.NewSource(19))
	in := make([]float64, tableIIShape[0])
	for step := 0; step < 100; step++ {
		for i := range in {
			in[i] = rng.Float64()
		}
		target := []float64{rng.Float64()}
		la, err := a.TrainSample(in, target)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.TrainSample(in, target)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("step %d: clone diverged: %v vs %v", step, la, lb)
		}
	}
	for i := range a.wslab {
		if a.wslab[i] != b.wslab[i] {
			t.Fatalf("clone weights diverge at %d", i)
		}
	}
}

// TestForwardReturnIsNetworkOwned documents the aliasing contract: the
// slice Forward returns is overwritten by the next call, so callers must
// copy before re-entering the network.
func TestForwardReturnIsNetworkOwned(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{2, 4, 2}, Seed: 1})
	out1, err := n.Forward([]float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), out1...)
	out2, err := n.Forward([]float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if &out1[0] != &out2[0] {
		t.Fatal("Forward no longer returns the network-owned buffer; update the docs and this test")
	}
	same := true
	for i := range out1 {
		if out1[i] != snapshot[i] {
			same = false
		}
	}
	if same {
		t.Fatal("second Forward left the first call's values intact; aliasing contract test is vacuous")
	}
}

// TestHotKernelsDoNotAllocate asserts the acceptance criterion directly:
// Forward, TrainSample, and TrainBatch are allocation-free.
func TestHotKernelsDoNotAllocate(t *testing.T) {
	n, _ := New(Config{LayerSizes: tableIIShape, Seed: 1})
	in := make([]float64, tableIIShape[0])
	for i := range in {
		in[i] = float64(i) / 12
	}
	target := []float64{0.5}
	const batch = 6
	ins := make([]float64, batch*len(in))
	tgts := make([]float64, batch)

	if avg := testing.AllocsPerRun(100, func() {
		if _, err := n.Forward(in); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Forward allocates %.1f/op", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := n.TrainSample(in, target); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("TrainSample allocates %.1f/op", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := n.TrainBatch(ins, tgts); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("TrainBatch allocates %.1f/op", avg)
	}
}
