package dnn

import (
	"errors"
	"fmt"
)

// Momentum SGD and minibatch training: classical accelerations of the
// paper's plain per-sample update (Eq. 8). The online predictors keep the
// plain rule (it is what the paper specifies); offline pretraining can opt
// into these for faster convergence.

// MomentumTrainer wraps a network with classical-momentum SGD state.
type MomentumTrainer struct {
	net      *Network
	momentum float64
	vW       [][][]float64
	vB       [][]float64

	// accumulated minibatch gradients
	gW    [][][]float64
	gB    [][]float64
	batch int
}

// NewMomentumTrainer builds a trainer over the network. Momentum must be
// in [0, 1); values outside are clamped.
func NewMomentumTrainer(net *Network, momentum float64) *MomentumTrainer {
	if momentum < 0 {
		momentum = 0
	}
	if momentum >= 1 {
		momentum = 0.99
	}
	t := &MomentumTrainer{net: net, momentum: momentum}
	t.vW, t.gW = zerosLikeWeights(net), zerosLikeWeights(net)
	t.vB, t.gB = zerosLikeBiases(net), zerosLikeBiases(net)
	return t
}

func zerosLikeWeights(n *Network) [][][]float64 {
	out := make([][][]float64, len(n.weights))
	for d := range n.weights {
		out[d] = make([][]float64, len(n.weights[d]))
		for i := range n.weights[d] {
			out[d][i] = make([]float64, len(n.weights[d][i]))
		}
	}
	return out
}

func zerosLikeBiases(n *Network) [][]float64 {
	out := make([][]float64, len(n.biases))
	for d := range n.biases {
		out[d] = make([]float64, len(n.biases[d]))
	}
	return out
}

// Accumulate computes one sample's gradient (without touching the
// weights) and folds it into the current minibatch. It returns the
// sample's pre-update loss.
func (t *MomentumTrainer) Accumulate(input, target []float64) (float64, error) {
	n := t.net
	out, err := n.Forward(input)
	if err != nil {
		return 0, err
	}
	last := len(n.sizes) - 1
	if len(target) != n.sizes[last] {
		return 0, fmt.Errorf("dnn: target size %d, want %d", len(target), n.sizes[last])
	}
	var loss float64
	for i, g := range out {
		diff := target[i] - g
		loss += 0.5 * diff * diff
		n.deltas[last][i] = diff * sigmoidPrime(g)
	}
	for d := last - 1; d >= 1; d-- {
		w := n.weights[d]
		for i := range n.deltas[d] {
			var sum float64
			for j := range n.deltas[d+1] {
				sum += n.deltas[d+1][j] * w[j][i]
			}
			n.deltas[d][i] = sum * sigmoidPrime(n.acts[d][i])
		}
	}
	for d := 0; d < len(n.weights); d++ {
		prev := n.acts[d]
		delta := n.deltas[d+1]
		for i := range t.gW[d] {
			gi := t.gW[d][i]
			for j, g := range prev {
				gi[j] += delta[i] * g
			}
			t.gB[d][i] += delta[i]
		}
	}
	t.batch++
	return loss, nil
}

// Step applies the accumulated minibatch gradient with momentum:
// v ← m·v + μ·ḡ; w ← w + v. It resets the accumulator. Calling Step with
// an empty batch is an error.
func (t *MomentumTrainer) Step() error {
	if t.batch == 0 {
		return errors.New("dnn: momentum step with empty batch")
	}
	n := t.net
	inv := 1 / float64(t.batch)
	for d := range n.weights {
		for i := range n.weights[d] {
			wi := n.weights[d][i]
			vi := t.vW[d][i]
			gi := t.gW[d][i]
			for j := range wi {
				vi[j] = t.momentum*vi[j] + n.rate*gi[j]*inv
				wi[j] += vi[j]
				gi[j] = 0
			}
			t.vB[d][i] = t.momentum*t.vB[d][i] + n.rate*t.gB[d][i]*inv
			n.biases[d][i] += t.vB[d][i]
			t.gB[d][i] = 0
		}
	}
	t.batch = 0
	return nil
}

// TrainMinibatch runs epochs of minibatch-momentum training over the
// samples in their given order and returns the mean per-sample loss of
// the final epoch. Batch sizes < 1 default to 16.
func (t *MomentumTrainer) TrainMinibatch(samples []Sample, epochs, batchSize int) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("dnn: no samples")
	}
	if epochs < 1 {
		epochs = 1
	}
	if batchSize < 1 {
		batchSize = 16
	}
	var last float64
	for e := 0; e < epochs; e++ {
		var total float64
		for i, s := range samples {
			loss, err := t.Accumulate(s.Input, s.Target)
			if err != nil {
				return 0, err
			}
			total += loss
			if t.batch >= batchSize || i == len(samples)-1 {
				if err := t.Step(); err != nil {
					return 0, err
				}
			}
		}
		last = total / float64(len(samples))
	}
	return last, nil
}
