package dnn

import (
	"errors"
	"fmt"
)

// Momentum SGD and minibatch training: classical accelerations of the
// paper's plain per-sample update (Eq. 8). The online predictors keep the
// plain rule (it is what the paper specifies); offline pretraining can opt
// into these for faster convergence.

// MomentumTrainer wraps a network with classical-momentum SGD state. Its
// velocity and gradient accumulators mirror the network's flat weight
// layout (one []float64 per layer, row-major) and its backward pass reuses
// the network's activation/delta/scratch buffers, so training allocates
// nothing per sample.
type MomentumTrainer struct {
	net      *Network
	momentum float64
	vW       [][]float64
	vB       [][]float64

	// accumulated minibatch gradients
	gW    [][]float64
	gB    [][]float64
	batch int
}

// NewMomentumTrainer builds a trainer over the network. Momentum must be
// in [0, 1); values outside are clamped.
func NewMomentumTrainer(net *Network, momentum float64) *MomentumTrainer {
	if momentum < 0 {
		momentum = 0
	}
	if momentum >= 1 {
		momentum = 0.99
	}
	t := &MomentumTrainer{net: net, momentum: momentum}
	t.vW, t.vB = flatZeros(net)
	t.gW, t.gB = flatZeros(net)
	return t
}

// flatZeros allocates zeroed parameter-shaped slabs sliced per layer.
func flatZeros(n *Network) ([][]float64, [][]float64) {
	wslab := make([]float64, len(n.wslab))
	bslab := make([]float64, len(n.bslab))
	w := make([][]float64, len(n.weights))
	b := make([][]float64, len(n.biases))
	wOff, bOff := 0, 0
	for d := range n.weights {
		w[d] = wslab[wOff : wOff+len(n.weights[d])]
		b[d] = bslab[bOff : bOff+len(n.biases[d])]
		wOff += len(n.weights[d])
		bOff += len(n.biases[d])
	}
	return w, b
}

// Accumulate computes one sample's gradient (without touching the
// weights) and folds it into the current minibatch. It returns the
// sample's pre-update loss.
func (t *MomentumTrainer) Accumulate(input, target []float64) (float64, error) {
	n := t.net
	out, err := n.Forward(input)
	if err != nil {
		return 0, err
	}
	last := len(n.sizes) - 1
	if len(target) != n.sizes[last] {
		return 0, fmt.Errorf("dnn: target size %d, want %d", len(target), n.sizes[last])
	}
	var loss float64
	for i, g := range out {
		diff := target[i] - g
		loss += 0.5 * diff * diff
		n.deltas[last][i] = diff * sigmoidPrime(g)
	}
	// Back-propagate without updating weights. Iterating rows (j) and
	// accumulating into tmp keeps the per-element addition order identical
	// to the classic i-outer/j-inner sum while reading the flat matrix
	// sequentially.
	for d := last - 1; d >= 1; d-- {
		w := n.weights[d]
		delta := n.deltas[d+1]
		cur := n.deltas[d]
		in := len(cur)
		tmp := n.tmp[:in]
		for i := range tmp {
			tmp[i] = 0
		}
		for j, dj := range delta {
			row := w[j*in : j*in+in : j*in+in]
			for i, wv := range row {
				tmp[i] += dj * wv
			}
		}
		for i := range cur {
			cur[i] = tmp[i] * sigmoidPrime(n.acts[d][i])
		}
	}
	for d := 0; d < len(n.weights); d++ {
		prev := n.acts[d]
		delta := n.deltas[d+1]
		in := len(prev)
		gw := t.gW[d]
		for i, di := range delta {
			gi := gw[i*in : i*in+in : i*in+in]
			for j, g := range prev {
				gi[j] += di * g
			}
			t.gB[d][i] += di
		}
	}
	t.batch++
	return loss, nil
}

// Step applies the accumulated minibatch gradient with momentum:
// v ← m·v + μ·ḡ; w ← w + v. It resets the accumulator. Calling Step with
// an empty batch is an error.
func (t *MomentumTrainer) Step() error {
	if t.batch == 0 {
		return errors.New("dnn: momentum step with empty batch")
	}
	n := t.net
	inv := 1 / float64(t.batch)
	for d := range n.weights {
		wi := n.weights[d]
		vi := t.vW[d]
		gi := t.gW[d]
		for j := range wi {
			vi[j] = t.momentum*vi[j] + n.rate*gi[j]*inv
			wi[j] += vi[j]
			gi[j] = 0
		}
		for i := range n.biases[d] {
			t.vB[d][i] = t.momentum*t.vB[d][i] + n.rate*t.gB[d][i]*inv
			n.biases[d][i] += t.vB[d][i]
			t.gB[d][i] = 0
		}
	}
	t.batch = 0
	return nil
}

// TrainMinibatch runs epochs of minibatch-momentum training over the
// samples in their given order and returns the mean per-sample loss of
// the final epoch. Batch sizes < 1 default to 16.
func (t *MomentumTrainer) TrainMinibatch(samples []Sample, epochs, batchSize int) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("dnn: no samples")
	}
	if epochs < 1 {
		epochs = 1
	}
	if batchSize < 1 {
		batchSize = 16
	}
	var last float64
	for e := 0; e < epochs; e++ {
		var total float64
		for i, s := range samples {
			loss, err := t.Accumulate(s.Input, s.Target)
			if err != nil {
				return 0, err
			}
			total += loss
			if t.batch >= batchSize || i == len(samples)-1 {
				if err := t.Step(); err != nil {
					return 0, err
				}
			}
		}
		last = total / float64(len(samples))
	}
	return last, nil
}
