package dnn

import (
	"math"
	"testing"
)

func TestMomentumClamping(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}, Seed: 1})
	if tr := NewMomentumTrainer(n, -0.5); tr.momentum != 0 {
		t.Errorf("negative momentum = %v", tr.momentum)
	}
	if tr := NewMomentumTrainer(n, 1.5); tr.momentum >= 1 {
		t.Errorf("momentum ≥ 1 not clamped: %v", tr.momentum)
	}
}

func TestStepEmptyBatchFails(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}, Seed: 1})
	if err := NewMomentumTrainer(n, 0.9).Step(); err == nil {
		t.Error("empty-batch step accepted")
	}
}

func TestAccumulateDoesNotMoveWeights(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 3, 1}, Seed: 2})
	before := n.weights[0][0]
	tr := NewMomentumTrainer(n, 0.9)
	if _, err := tr.Accumulate([]float64{0.4}, []float64{0.9}); err != nil {
		t.Fatal(err)
	}
	if n.weights[0][0] != before {
		t.Error("Accumulate mutated weights before Step")
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if n.weights[0][0] == before {
		t.Error("Step did not update weights")
	}
}

func TestMinibatchMomentumConverges(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{1, 16, 1}, LearningRate: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMomentumTrainer(n, 0.9)
	loss, err := tr.TrainMinibatch(sineSamples(128), 200, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("minibatch-momentum loss %v after 200 epochs", loss)
	}
}

func TestMomentumBeatsPlainSGDOnSameBudget(t *testing.T) {
	const epochs = 40
	samples := sineSamples(128)

	plain, _ := New(Config{LayerSizes: []int{1, 16, 1}, LearningRate: 0.3, Seed: 4})
	var plainLoss float64
	for e := 0; e < epochs; e++ {
		plainLoss = 0
		for _, s := range samples {
			l, err := plain.TrainSample(s.Input, s.Target)
			if err != nil {
				t.Fatal(err)
			}
			plainLoss += l
		}
		plainLoss /= float64(len(samples))
	}

	fast, _ := New(Config{LayerSizes: []int{1, 16, 1}, LearningRate: 0.3, Seed: 4})
	mLoss, err := NewMomentumTrainer(fast, 0.9).TrainMinibatch(samples, epochs, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain SGD loss %.5f, momentum loss %.5f after %d epochs", plainLoss, mLoss, epochs)
	if mLoss > plainLoss*1.5 {
		t.Errorf("momentum (%.5f) much worse than plain SGD (%.5f)", mLoss, plainLoss)
	}
}

func TestTrainMinibatchValidation(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}, Seed: 5})
	tr := NewMomentumTrainer(n, 0.5)
	if _, err := tr.TrainMinibatch(nil, 5, 8); err == nil {
		t.Error("empty samples accepted")
	}
	// Degenerate epoch/batch values are clamped, not rejected.
	if _, err := tr.TrainMinibatch(sineSamples(8), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMomentumGradientMatchesPlainStep(t *testing.T) {
	// With momentum 0 and batch size 1, one Accumulate+Step must move the
	// weights exactly as one TrainSample does.
	a, _ := New(Config{LayerSizes: []int{2, 3, 1}, LearningRate: 0.7, Seed: 6})
	b := a.Clone()
	in := []float64{0.2, 0.8}
	target := []float64{0.6}
	if _, err := a.TrainSample(in, target); err != nil {
		t.Fatal(err)
	}
	tr := NewMomentumTrainer(b, 0)
	if _, err := tr.Accumulate(in, target); err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	for d := range a.weights {
		for i := range a.weights[d] {
			if math.Abs(a.weights[d][i]-b.weights[d][i]) > 1e-12 {
				t.Fatalf("weights diverge at [%d][%d]: %v vs %v",
					d, i, a.weights[d][i], b.weights[d][i])
			}
		}
	}
}

func BenchmarkMinibatchEpoch(b *testing.B) {
	samples := sineSamples(512)
	n, _ := New(Config{LayerSizes: []int{1, 50, 50, 1}, Seed: 1})
	tr := NewMomentumTrainer(n, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainMinibatch(samples, 1, 32); err != nil {
			b.Fatal(err)
		}
	}
}
