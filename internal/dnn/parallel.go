package dnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Distributed training (the paper's stated future work: "we will further
// consider designing a distributed deep learning training system to reduce
// the computation overhead caused by DNN").
//
// TrainParallel implements synchronous data-parallel training with
// per-epoch parameter averaging: each epoch the shuffled training set is
// sharded across W workers, every worker runs SGD on its shard against a
// private replica of the network, and the replicas' parameters are
// averaged back into the master before the validation check. Results are
// deterministic for a fixed seed and worker count.

// ParallelOptions extends TrainOptions with the worker count.
type ParallelOptions struct {
	TrainOptions
	// Workers is the number of data-parallel replicas; zero defaults to
	// GOMAXPROCS capped at 8 (averaging loses statistical efficiency
	// beyond small replica counts).
	Workers int
}

func (o ParallelOptions) withDefaults() ParallelOptions {
	o.TrainOptions = o.TrainOptions.withDefaults()
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	return o
}

// TrainParallel runs the distributed training loop on the network in
// place. With Workers == 1 it degrades to the sequential loop's behaviour
// (modulo shuffling order).
func (n *Network) TrainParallel(samples []Sample, opts ParallelOptions) (TrainResult, error) {
	opts = opts.withDefaults()
	if len(samples) == 0 {
		return TrainResult{}, errors.New("dnn: no training samples")
	}
	nVal := int(float64(len(samples)) * opts.ValidationFrac)
	if nVal >= len(samples) {
		nVal = len(samples) - 1
	}
	train := samples[:len(samples)-nVal]
	val := samples[len(samples)-nVal:]
	if opts.Workers > len(train) {
		opts.Workers = len(train)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}

	replicas := make([]*Network, opts.Workers)
	res := TrainResult{ValidationCount: len(val)}
	prevVal := math.Inf(1)
	stalled := 0
	for epoch := 0; epoch < opts.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for w := range replicas {
			replicas[w] = n.Clone()
		}
		losses := make([]float64, opts.Workers)
		errs := make([]error, opts.Workers)
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Strided sharding keeps shard sizes within one sample
				// of each other for any worker count.
				for i := w; i < len(order); i += opts.Workers {
					s := train[order[i]]
					loss, err := replicas[w].TrainSample(s.Input, s.Target)
					if err != nil {
						errs[w] = err
						return
					}
					losses[w] += loss
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return res, fmt.Errorf("dnn: parallel epoch %d: %w", epoch, err)
			}
		}
		n.averageFrom(replicas)

		var trainLoss float64
		for _, l := range losses {
			trainLoss += l
		}
		res.TrainLoss = trainLoss / float64(len(train))
		res.Epochs = epoch + 1

		valLoss, err := n.Loss(val)
		if err != nil {
			return res, err
		}
		if nVal == 0 {
			valLoss = res.TrainLoss
		}
		res.ValidationLoss = valLoss
		if prevVal-valLoss < opts.Tolerance*math.Max(prevVal, 1e-12) {
			stalled++
			if stalled >= opts.Patience {
				res.Converged = true
				return res, nil
			}
		} else {
			stalled = 0
		}
		prevVal = valLoss
	}
	return res, nil
}

// averageFrom overwrites the network's parameters with the element-wise
// mean of the replicas'. The flat layout makes this two slab sweeps; the
// per-element replica summation order matches the jagged implementation,
// so averaged parameters are bit-identical.
func (n *Network) averageFrom(replicas []*Network) {
	if len(replicas) == 0 {
		return
	}
	inv := 1 / float64(len(replicas))
	for j := range n.wslab {
		var sum float64
		for _, r := range replicas {
			sum += r.wslab[j]
		}
		n.wslab[j] = sum * inv
	}
	for j := range n.bslab {
		var sum float64
		for _, r := range replicas {
			sum += r.bslab[j]
		}
		n.bslab[j] = sum * inv
	}
}
