package dnn

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sineSamples(n int) []Sample {
	var samples []Sample
	for i := 0; i < n; i++ {
		x := float64((i*37)%n) / float64(n)
		samples = append(samples, Sample{
			Input:  []float64{x},
			Target: []float64{0.5 + 0.3*math.Sin(2*math.Pi*x)},
		})
	}
	return samples
}

func TestTrainParallelConverges(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{1, 16, 16, 1}, LearningRate: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.TrainParallel(sineSamples(200), ParallelOptions{
		TrainOptions: TrainOptions{MaxEpochs: 300, Seed: 4},
		Workers:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationLoss > 0.01 {
		t.Errorf("parallel validation loss %v after %d epochs", res.ValidationLoss, res.Epochs)
	}
}

func TestTrainParallelDeterministic(t *testing.T) {
	run := func() []float64 {
		n, err := New(Config{LayerSizes: []int{1, 8, 1}, LearningRate: 1.0, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.TrainParallel(sineSamples(60), ParallelOptions{
			TrainOptions: TrainOptions{MaxEpochs: 20, Seed: 9},
			Workers:      3,
		}); err != nil {
			t.Fatal(err)
		}
		out, _ := n.Forward([]float64{0.3})
		return append([]float64(nil), out...)
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("parallel training must be deterministic for fixed seed and workers")
	}
}

func TestTrainParallelSingleWorker(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{1, 8, 1}, LearningRate: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.TrainParallel(sineSamples(80), ParallelOptions{
		TrainOptions: TrainOptions{MaxEpochs: 100, Seed: 2},
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationLoss > 0.02 {
		t.Errorf("single-worker loss %v", res.ValidationLoss)
	}
}

func TestTrainParallelEmpty(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}})
	if _, err := n.TrainParallel(nil, ParallelOptions{}); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestTrainParallelMoreWorkersThanSamples(t *testing.T) {
	n, _ := New(Config{LayerSizes: []int{1, 2, 1}, Seed: 1})
	_, err := n.TrainParallel(sineSamples(6), ParallelOptions{
		TrainOptions: TrainOptions{MaxEpochs: 3, Seed: 1},
		Workers:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAverageFrom(t *testing.T) {
	a, _ := New(Config{LayerSizes: []int{2, 2, 1}, Seed: 1})
	b := a.Clone()
	c := a.Clone()
	// Shift b's first weight by +2 and c's by −2: the average must land
	// back on a's value.
	orig := a.weights[0][0]
	b.weights[0][0] = orig + 2
	c.weights[0][0] = orig - 2
	a.averageFrom([]*Network{b, c})
	if math.Abs(a.weights[0][0]-orig) > 1e-12 {
		t.Errorf("average = %v, want %v", a.weights[0][0], orig)
	}
	// Averaging from nothing is a no-op.
	a.averageFrom(nil)
	if math.Abs(a.weights[0][0]-orig) > 1e-12 {
		t.Error("empty average mutated the network")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n, err := New(Config{LayerSizes: []int{3, 5, 2}, LearningRate: 0.7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Train a little so the weights are non-trivial.
	for i := 0; i < 50; i++ {
		if _, err := n.TrainSample([]float64{0.1, 0.5, 0.9}, []float64{0.2, 0.8}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, _ := n.Forward([]float64{0.3, 0.3, 0.3})
	want := append([]float64(nil), wantOut...)
	gotOut, err := loaded.Forward([]float64{0.3, 0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, append([]float64(nil), gotOut...)) {
		t.Error("loaded network diverges from saved one")
	}
	// Loaded network must be trainable (scratch buffers intact).
	if _, err := loaded.TrainSample([]float64{0, 0, 0}, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"{not json",
		`{"sizes":[3],"rate":0.5,"weights":[],"biases":[]}`,
		`{"sizes":[2,1],"rate":0,"weights":[[[0.1,0.2]]],"biases":[[0]]}`,
		`{"sizes":[2,1],"rate":0.5,"weights":[],"biases":[]}`,
		`{"sizes":[2,1],"rate":0.5,"weights":[[[0.1]]],"biases":[[0]]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func BenchmarkTrainEpochSequential(b *testing.B) {
	samples := sineSamples(512)
	n, err := New(Config{LayerSizes: []int{1, 50, 50, 1}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Train(samples, TrainOptions{MaxEpochs: 1, Patience: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochParallel4(b *testing.B) {
	samples := sineSamples(512)
	n, err := New(Config{LayerSizes: []int{1, 50, 50, 1}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TrainParallel(samples, ParallelOptions{
			TrainOptions: TrainOptions{MaxEpochs: 1, Patience: 100, Seed: int64(i)},
			Workers:      4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
