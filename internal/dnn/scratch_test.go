package dnn

import (
	"sync"
	"testing"
)

// TestForwardIntoMatchesForward pins bit-identity between the shared-
// scratch Forward and the caller-scratch ForwardInto across many inputs.
func TestForwardIntoMatchesForward(t *testing.T) {
	net, err := New(Config{LayerSizes: []int{12, 50, 50, 1}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := net.NewFwdScratch()
	in := make([]float64, 12)
	for trial := 0; trial < 25; trial++ {
		for i := range in {
			in[i] = float64((trial*31+i*7)%97) / 97
		}
		want, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		wantY := want[0]
		got, err := net.ForwardInto(s, in)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != wantY {
			t.Fatalf("trial %d: ForwardInto %v != Forward %v", trial, got[0], wantY)
		}
	}
}

// TestForwardIntoConcurrent evaluates one network from many goroutines,
// each with its own scratch — the engine's Refresh pattern. Run under
// -race this pins the read-only weight sharing.
func TestForwardIntoConcurrent(t *testing.T) {
	net, err := New(Config{LayerSizes: []int{8, 20, 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 8)
	for i := range in {
		in[i] = float64(i) / 8
	}
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	wantY := want[0]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := net.NewFwdScratch()
			for i := 0; i < 50; i++ {
				out, err := net.ForwardInto(s, in)
				if err != nil {
					t.Error(err)
					return
				}
				if out[0] != wantY {
					t.Errorf("concurrent ForwardInto %v != %v", out[0], wantY)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestForwardIntoValidates rejects mismatched inputs and scratch.
func TestForwardIntoValidates(t *testing.T) {
	a, _ := New(Config{LayerSizes: []int{4, 6, 1}, Seed: 1})
	b, _ := New(Config{LayerSizes: []int{4, 7, 1}, Seed: 1})
	s := a.NewFwdScratch()
	if _, err := a.ForwardInto(s, make([]float64, 3)); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := b.ForwardInto(s, make([]float64, 4)); err == nil {
		t.Error("mismatched scratch topology accepted")
	}
	// Same-topology sibling networks share a scratch fine.
	c, _ := New(Config{LayerSizes: []int{4, 6, 1}, Seed: 9})
	if _, err := c.ForwardInto(s, make([]float64, 4)); err != nil {
		t.Errorf("same-topology scratch rejected: %v", err)
	}
}
