package dnn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: a trained network can be saved after offline training
// on historical traces and loaded by the controller at deployment, so the
// prediction path never pays the training cost (the operational split the
// paper's overhead discussion assumes).

// networkJSON is the on-disk shape. It keeps the original nested
// row-per-neuron weight layout so files written by earlier versions load
// unchanged; the flat in-memory representation is packed/unpacked at this
// boundary only.
type networkJSON struct {
	Sizes   []int         `json:"sizes"`
	Rate    float64       `json:"rate"`
	Weights [][][]float64 `json:"weights"`
	Biases  [][]float64   `json:"biases"`
}

// Save writes the network's parameters as JSON.
func (n *Network) Save(w io.Writer) error {
	weights := make([][][]float64, len(n.weights))
	for d := range n.weights {
		in, out := n.sizes[d], n.sizes[d+1]
		rows := make([][]float64, out)
		for i := 0; i < out; i++ {
			rows[i] = n.weights[d][i*in : (i+1)*in]
		}
		weights[d] = rows
	}
	out := networkJSON{
		Sizes:   n.sizes,
		Rate:    n.rate,
		Weights: weights,
		Biases:  n.biases,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a network saved with Save, validating its shape.
func Load(r io.Reader) (*Network, error) {
	return LoadFrom(json.NewDecoder(r))
}

// LoadFrom decodes one network from an existing decoder, allowing several
// networks to be streamed from one file.
func LoadFrom(dec *json.Decoder) (*Network, error) {
	var in networkJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dnn: load: %w", err)
	}
	if len(in.Sizes) < 2 {
		return nil, fmt.Errorf("dnn: load: %d layers", len(in.Sizes))
	}
	if in.Rate <= 0 {
		return nil, fmt.Errorf("dnn: load: rate %v", in.Rate)
	}
	if len(in.Weights) != len(in.Sizes)-1 || len(in.Biases) != len(in.Sizes)-1 {
		return nil, fmt.Errorf("dnn: load: %d weight layers for %d sizes", len(in.Weights), len(in.Sizes))
	}
	for d := 0; d < len(in.Sizes)-1; d++ {
		if len(in.Weights[d]) != in.Sizes[d+1] || len(in.Biases[d]) != in.Sizes[d+1] {
			return nil, fmt.Errorf("dnn: load: layer %d has %d rows, want %d", d, len(in.Weights[d]), in.Sizes[d+1])
		}
		for i, row := range in.Weights[d] {
			if len(row) != in.Sizes[d] {
				return nil, fmt.Errorf("dnn: load: layer %d row %d has %d cols, want %d", d, i, len(row), in.Sizes[d])
			}
		}
	}
	n := newShell(in.Sizes, in.Rate)
	for d := range in.Weights {
		size := in.Sizes[d]
		for i, row := range in.Weights[d] {
			copy(n.weights[d][i*size:(i+1)*size], row)
		}
		copy(n.biases[d], in.Biases[d])
	}
	return n, nil
}
