package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// Ablation identifies one CORP design choice switched off.
type Ablation int

// The ablations DESIGN.md calls out.
const (
	// AblationFull is unmodified CORP (the reference point).
	AblationFull Ablation = iota
	// AblationNoHMM removes the peak/valley fluctuation correction.
	AblationNoHMM
	// AblationNoPacking places every job as a singleton entity.
	AblationNoPacking
	// AblationNoCI removes the confidence-interval conservatism.
	AblationNoCI
	// AblationETSPredictor replaces the DNN+HMM pipeline with RCCR's ETS
	// predictor while keeping CORP's packing and placement.
	AblationETSPredictor
)

// String names the ablation.
func (a Ablation) String() string {
	switch a {
	case AblationFull:
		return "CORP-full"
	case AblationNoHMM:
		return "CORP-noHMM"
	case AblationNoPacking:
		return "CORP-noPacking"
	case AblationNoCI:
		return "CORP-noCI"
	case AblationETSPredictor:
		return "CORP-etsPredictor"
	default:
		return fmt.Sprintf("Ablation(%d)", int(a))
	}
}

// Ablations lists all variants including the full system.
func Ablations() []Ablation {
	return []Ablation{AblationFull, AblationNoHMM, AblationNoPacking, AblationNoCI, AblationETSPredictor}
}

// ablationConfig builds the simulation config for one CORP variant.
func ablationConfig(o Options, a Ablation, jobs int) sim.Config {
	var cfg sim.Config
	switch a {
	case AblationETSPredictor:
		// RCCR's predictor inside CORP's placement machinery is closest
		// to running the RCCR scheme with CORP's allocation margin; the
		// scheduler seam keeps predictors per scheme, so this variant is
		// realized as the RCCR scheme with CORP-style sizing.
		cfg = o.hotConfig(scheduler.RCCR, jobs)
	default:
		// The hot configuration (contended pools) is where packing and
		// the gate earn their keep; a cold cluster hides them.
		cfg = o.hotConfig(scheduler.CORP, jobs)
		switch a {
		case AblationNoHMM:
			cfg.Scheduler.Corp.DisableHMM = true
		case AblationNoPacking:
			cfg.Scheduler.DisablePacking = true
		case AblationNoCI:
			cfg.Scheduler.Corp.DisableCI = true
		}
	}
	return cfg
}

// RunAblation executes one CORP variant and returns its result.
func RunAblation(o Options, a Ablation, jobs int) (*sim.Result, error) {
	r, err := sim.Run(ablationConfig(o, a, jobs))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation %v: %w", a, err)
	}
	return r, nil
}

// AblationStudy runs every variant and reports utilization, SLO violation
// rate and prediction error rate side by side.
func AblationStudy(o Options) (*Figure, error) {
	jobs := 300
	if o.Quick {
		jobs = 120
	}
	f := &Figure{
		ID:     "ablations",
		Title:  "CORP ablation study (" + o.Profile.String() + ")",
		XLabel: "metric index (0=overall util, 1=SLO rate, 2=pred error rate)",
		YLabel: "value",
	}
	cfgs := make([]sim.Config, len(Ablations()))
	for i, a := range Ablations() {
		cfgs[i] = ablationConfig(o, a, jobs)
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablations: %w", err)
	}
	for i, a := range Ablations() {
		r := results[i]
		s := &metrics.Series{Label: a.String()}
		s.Append(0, r.Overall)
		s.Append(1, r.SLORate)
		s.Append(2, r.PredictionErrorRate)
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: opp=%d fresh=%d never=%d",
			a, r.PlacedOpportunistic, r.PlacedFresh, r.NeverPlaced))
	}
	return f, nil
}
