package experiments

import (
	"testing"

	"repro/internal/cluster"
)

// TestFigureBatchEquivalence pins this tentpole's contract at figure
// granularity: every series is bit-identical whether CORP's refresh runs
// the batched gather → ForwardBatch → scatter pipeline (the default) or
// the per-VM forward path, with the two-tier forecaster off. The cluster
// profile covers the fleet-scale CORP runs where batching actually
// engages; it is wired into `make check-perf` alongside the core and
// workload-cache gates.
func TestFigureBatchEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure equivalence sweep is slow; run without -short")
	}
	batched, err := runFigureSet(Options{Profile: cluster.ProfileCluster, Seed: 11, Quick: true})
	if err != nil {
		t.Fatalf("batched run: %v", err)
	}
	pervm, err := runFigureSet(Options{Profile: cluster.ProfileCluster, Seed: 11, Quick: true, DisableBatchedRefresh: true})
	if err != nil {
		t.Fatalf("per-VM run: %v", err)
	}
	if len(batched) != len(pervm) {
		t.Fatalf("%d figures batched vs %d per-VM", len(batched), len(pervm))
	}
	for i := range batched {
		compareFigures(t, "cluster", batched[i], pervm[i])
	}
	t.Logf("%d figures identical across refresh paths", len(batched))
}
