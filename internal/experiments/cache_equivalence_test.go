package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestWorkloadCacheEquivalence pins the snapshot cache's core contract:
// every figure series — both profiles, quick mode, including the faulted
// extension figure — is bit-identical whether runs share cached snapshots
// (the default) or regenerate their traces privately (-workload-cache=off).
// It is the acceptance gate wired into `make check-perf`.
func TestWorkloadCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure equivalence sweep is slow; run without -short")
	}
	prev := workload.Default.Enabled()
	defer workload.Default.SetEnabled(prev)

	for _, profile := range []cluster.Profile{cluster.ProfileCluster, cluster.ProfileEC2} {
		o := Options{Profile: profile, Seed: 11, Quick: true}

		workload.Default.SetEnabled(true)
		workload.Default.Reset()
		cached, err := runFigureSet(o)
		if err != nil {
			t.Fatalf("%s cached run: %v", profile, err)
		}
		st := workload.Default.Stats()
		if st.Hits == 0 {
			t.Errorf("%s: cache recorded no hits across a full figure sweep", profile)
		}
		if st.Misses == 0 {
			t.Errorf("%s: cache recorded no misses (nothing was built?)", profile)
		}

		workload.Default.SetEnabled(false)
		uncached, err := runFigureSet(o)
		if err != nil {
			t.Fatalf("%s uncached run: %v", profile, err)
		}

		if len(cached) != len(uncached) {
			t.Fatalf("%s: %d figures cached vs %d uncached", profile, len(cached), len(uncached))
		}
		for i := range cached {
			compareFigures(t, profile.String(), cached[i], uncached[i])
		}
		t.Logf("%s: %d figures identical; cache stats %+v", profile, len(cached), st)
	}
}

// runFigureSet runs every figure for the profile plus the faulted extension
// figure, in a fixed order.
func runFigureSet(o Options) ([]*Figure, error) { return FigureSet(o) }

// wallClockFigures measure real scheduler decision wall time (the paper's
// overhead Figs. 10/14), so their Y values differ between any two runs of
// the same binary — cache or no cache. For these the test pins structure
// (series labels, point counts, X values) and leaves Y alone; every other
// figure is deterministic and compared bitwise.
var wallClockFigures = map[string]bool{"fig10": true, "fig14": true}

// compareFigures asserts two figures carry exactly equal series: same
// labels, same point counts, and float64-bitwise-equal (==) X and Y values
// (X only for the wall-clock overhead figures).
func compareFigures(t *testing.T, profile string, a, b *Figure) {
	t.Helper()
	if a.ID != b.ID {
		t.Fatalf("%s: figure order differs: %s vs %s", profile, a.ID, b.ID)
	}
	if len(a.Series) != len(b.Series) {
		t.Errorf("%s %s: %d series cached vs %d uncached", profile, a.ID, len(a.Series), len(b.Series))
		return
	}
	for si, sa := range a.Series {
		sb := b.Series[si]
		if sa.Label != sb.Label {
			t.Errorf("%s %s: series %d label %q vs %q", profile, a.ID, si, sa.Label, sb.Label)
			continue
		}
		if len(sa.X) != len(sb.X) || len(sa.Y) != len(sb.Y) {
			t.Errorf("%s %s %s: point counts differ (%d/%d vs %d/%d)",
				profile, a.ID, sa.Label, len(sa.X), len(sa.Y), len(sb.X), len(sb.Y))
			continue
		}
		compareY := !wallClockFigures[a.ID]
		for i := range sa.X {
			if sa.X[i] != sb.X[i] || (compareY && sa.Y[i] != sb.Y[i]) {
				t.Errorf("%s %s %s: point %d differs: (%v,%v) cached vs (%v,%v) uncached",
					profile, a.ID, sa.Label, i, sa.X[i], sa.Y[i], sb.X[i], sb.Y[i])
				break
			}
		}
	}
}
