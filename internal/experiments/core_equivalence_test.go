package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestFigureCoreEquivalence pins the tentpole contract at figure
// granularity: every series — both profiles, quick mode, including the
// faulted extension figure — is bit-identical whether the event-queue core
// (the default) or the reference slot loop drives the runs. Together with
// the workload-cache gate it is wired into `make check-perf`.
func TestFigureCoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure equivalence sweep is slow; run without -short")
	}
	for _, profile := range []cluster.Profile{cluster.ProfileCluster, cluster.ProfileEC2} {
		event, err := runFigureSet(Options{Profile: profile, Seed: 11, Quick: true, Core: sim.CoreEvent})
		if err != nil {
			t.Fatalf("%s event run: %v", profile, err)
		}
		slot, err := runFigureSet(Options{Profile: profile, Seed: 11, Quick: true, Core: sim.CoreSlot})
		if err != nil {
			t.Fatalf("%s slot run: %v", profile, err)
		}
		if len(event) != len(slot) {
			t.Fatalf("%s: %d figures event vs %d slot", profile, len(event), len(slot))
		}
		for i := range event {
			compareFigures(t, profile.String(), event[i], slot[i])
		}
		t.Logf("%s: %d figures identical across cores", profile, len(event))
	}
}
