// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section IV). Each runner executes the required
// parameter sweep through the simulator and returns labeled series shaped
// like the paper's plots; cmd/corpbench prints them and bench_test.go wraps
// them in testing.B benchmarks.
//
// Figure index (see DESIGN.md for the full mapping):
//
//	Fig. 6  — prediction error rate vs number of jobs (cluster)
//	Fig. 7  — per-resource utilization vs number of jobs (cluster)
//	Fig. 8  — overall utilization vs SLO violation rate (cluster)
//	Fig. 9  — SLO violation rate vs confidence level (cluster)
//	Fig. 10 — scheduling overhead for 300 jobs (cluster)
//	Fig. 11 — per-resource utilization vs number of jobs (EC2)
//	Fig. 12 — overall utilization vs SLO violation rate (EC2)
//	Fig. 13 — SLO violation rate vs confidence level (EC2)
//	Fig. 14 — scheduling overhead for 300 jobs (EC2)
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// Options tunes a whole experiment run.
type Options struct {
	// Profile selects the testbed. Figures 6–10 use the cluster profile,
	// 11–14 use EC2.
	Profile cluster.Profile
	// Seed drives all workload generation.
	Seed int64
	// Quick shrinks the cluster and the sweep for fast test/bench runs;
	// full runs reproduce the paper's scale (Table II).
	Quick bool
	// Workers sets each run's intra-run prediction-engine worker count
	// (sim.Config.Workers): 0 claims from the shared budget, 1 is serial.
	// Figures are identical at any value; only wall time changes.
	Workers int
	// Core selects the simulator core (sim.Config.Core). The default
	// event core and the reference slot loop produce bit-identical
	// figures — pinned by the core-equivalence test.
	Core sim.Core
	// ForecastTier enables CORP's two-tier predictor ("auto"); "" or
	// "off" keeps the single-tier pipeline. Figures are pinned
	// bit-identical with the tier off.
	ForecastTier string
	// DisableBatchedRefresh forces the per-VM refresh path (ablation /
	// equivalence testing; the batched path is pinned bit-identical).
	DisableBatchedRefresh bool
	// RunBatch, when non-nil, executes a batch of independent simulation
	// configs and returns results positionally (results[i] for cfgs[i],
	// nil on failure, errors joined) — the sim.RunMany contract. The farm
	// dispatcher injects its distributed executor here; nil runs batches
	// in-process via sim.RunManyProgress. Because every runner routes all
	// simulations through this one seam and per-config runs are
	// deterministic, any conforming executor yields bit-identical figures.
	RunBatch func(cfgs []sim.Config) ([]*sim.Result, error)
	// Progress, when non-nil (and RunBatch is nil), observes per-run
	// completion of each in-process batch — the sim.RunManyProgress hook.
	// Front-ends use it for sweep progress/ETA reporting.
	Progress sim.ProgressFunc
}

// runBatch executes one batch of simulation configs through the configured
// executor (RunBatch) or in-process.
func (o Options) runBatch(cfgs []sim.Config) ([]*sim.Result, error) {
	if o.RunBatch != nil {
		return o.RunBatch(cfgs)
	}
	return sim.RunManyProgress(cfgs, 0, o.Progress)
}

// jobCounts returns the Fig. 6/7/11 x-axis: 50–300 jobs step 50 (paper),
// or a 3-point subset in quick mode.
func (o Options) jobCounts() []int {
	if o.Quick {
		return []int{50, 150, 300}
	}
	return []int{50, 100, 150, 200, 250, 300}
}

// clusterSize returns the simulated testbed size.
func (o Options) clusterSize() (pms, vms int) {
	if o.Profile == cluster.ProfileEC2 {
		// 30 nodes, one VM each (Section IV).
		return 30, 30
	}
	if o.Quick {
		return 20, 60
	}
	// 50 servers, 200 VMs (Table II midpoint).
	return 50, 200
}

// seeds returns the replication seeds for averaged experiments (the SLO
// figures count rare events, so single runs are noisy). Seeds are derived
// with a splitmix64 finalizer per replication stream: the old additive
// scheme (Seed, Seed+101, Seed+202) silently reused workloads whenever a
// caller swept base seeds 101 apart.
func (o Options) seeds() []int64 {
	n := 3
	if o.Quick {
		n = 2
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = deriveSeed(o.Seed, i)
	}
	return out
}

// deriveSeed maps (base seed, replication stream) onto a well-mixed
// non-negative seed. splitmix64 is a bijection on uint64, so distinct
// (base, stream) pairs collide only if splitmix64(b1)+s1 == splitmix64(b2)+s2
// — vanishingly unlikely for the small stream indices used here, and
// impossible for equal bases.
func deriveSeed(base int64, stream int) int64 {
	v := splitmix64(splitmix64(uint64(base)) + uint64(stream))
	return int64(v &^ (1 << 63))
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hotConfig is the contended variant used by the SLO figures (8/9/12/13):
// a smaller cluster under sustained arrivals, busier residents, and a
// tighter SLO threshold, so opportunistic risk actually surfaces as
// violations.
func (o Options) hotConfig(sc scheduler.Scheme, jobs int) sim.Config {
	cfg := o.baseConfig(sc, jobs)
	if o.Profile != cluster.ProfileEC2 {
		if o.Quick {
			cfg.NumPMs, cfg.NumVMs = 10, 20
		} else {
			cfg.NumPMs, cfg.NumVMs = 25, 50
		}
	}
	cfg.Residents.MeanUseShare = 0.5
	cfg.Residents.Fluctuation = 0.7
	cfg.Residents.JumpProb = 0.75
	cfg.Jobs.MeanDuration = 10
	cfg.Jobs.SLOFactor = 1.25
	cfg.ArrivalSpan = 120
	cfg.Drain = 120
	return cfg
}

// baseConfig assembles the shared simulation config for a scheme.
func (o Options) baseConfig(sc scheduler.Scheme, jobs int) sim.Config {
	pms, vms := o.clusterSize()
	cfg := sim.Config{
		Profile: o.Profile,
		NumPMs:  pms,
		NumVMs:  vms,
		NumJobs: jobs,
		Seed:    o.Seed,
		Scheduler: scheduler.Config{
			Scheme: sc,
			Seed:   o.Seed,
		},
		Workers: o.Workers,
		Core:    o.Core,
	}
	// Fleet runs feed the shared DNN from every VM each slot; a light
	// replay factor keeps accuracy without quadratic training cost.
	cfg.Scheduler.Corp.ReplaySteps = 2
	cfg.Scheduler.Corp.TierEnabled = o.ForecastTier == "auto"
	cfg.Scheduler.DisableBatchedRefresh = o.DisableBatchedRefresh
	return cfg
}

// Figure is one reproduced table or figure: a set of labeled series plus
// free-form notes recorded during the run.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []*metrics.Series
	Notes  []string
}

// SeriesByLabel returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *metrics.Series {
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// String renders the figure as aligned text rows, one series per line.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  x = %s, y = %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-16s", s.Label)
		for i := range s.X {
			fmt.Fprintf(&b, " (%.3g, %.4g)", s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CheckOrdering verifies that the series' mean Y values are ordered as the
// labels list (descending). It returns an error naming the first
// violation; the experiments' self-checks and EXPERIMENTS.md use it.
func (f *Figure) CheckOrdering(descending bool, labels ...string) error {
	var prev *metrics.Series
	for _, label := range labels {
		s := f.SeriesByLabel(label)
		if s == nil {
			return fmt.Errorf("%s: series %q missing", f.ID, label)
		}
		if prev != nil {
			if descending && s.MeanY() > prev.MeanY() {
				return fmt.Errorf("%s: %q (%.4f) should be below %q (%.4f)",
					f.ID, s.Label, s.MeanY(), prev.Label, prev.MeanY())
			}
			if !descending && s.MeanY() < prev.MeanY() {
				return fmt.Errorf("%s: %q (%.4f) should be above %q (%.4f)",
					f.ID, s.Label, s.MeanY(), prev.Label, prev.MeanY())
			}
		}
		prev = s
	}
	return nil
}

// schemeOrder is the paper's comparison order.
var schemeOrder = []scheduler.Scheme{
	scheduler.CORP, scheduler.RCCR, scheduler.CloudScale, scheduler.DRA,
}

// runAll executes one simulation per scheme (concurrently) with a
// per-scheme config hook.
func runAll(o Options, jobs int, mutate func(*sim.Config)) (map[scheduler.Scheme]*sim.Result, error) {
	cfgs := make([]sim.Config, len(schemeOrder))
	for i, sc := range schemeOrder {
		cfg := o.baseConfig(sc, jobs)
		if mutate != nil {
			mutate(&cfg)
		}
		cfgs[i] = cfg
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %d jobs: %w", jobs, err)
	}
	out := make(map[scheduler.Scheme]*sim.Result, len(schemeOrder))
	for i, sc := range schemeOrder {
		out[sc] = results[i]
	}
	return out, nil
}

// FigureSet runs every figure for the options' profile plus the
// fault-tolerance extension, in a fixed order — the per-profile campaign
// unit shared by the cache-, core-, and farm-equivalence suites.
func FigureSet(o Options) ([]*Figure, error) {
	figs, err := AllFigures(o)
	if err != nil {
		return nil, err
	}
	faulted, err := ExtensionFaultTolerance(o)
	if err != nil {
		return nil, err
	}
	return append(figs, faulted), nil
}

// Campaign runs the full two-profile figure campaign: the cluster-profile
// figure set followed by the EC2 one. This is the workload the corpfarm
// dispatcher distributes; with a conforming Options.RunBatch executor its
// output is bit-identical to the in-process run.
func Campaign(o Options) ([]*Figure, error) {
	var out []*Figure
	for _, p := range []cluster.Profile{cluster.ProfileCluster, cluster.ProfileEC2} {
		o.Profile = p
		figs, err := FigureSet(o)
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign %s: %w", p, err)
		}
		out = append(out, figs...)
	}
	return out, nil
}

// sortSeriesByX sorts every series' points by X (sweeps may fill them out
// of order).
func sortSeriesByX(f *Figure) {
	for _, s := range f.Series {
		idx := make([]int, len(s.X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
		xs := make([]float64, len(idx))
		ys := make([]float64, len(idx))
		for i, j := range idx {
			xs[i] = s.X[j]
			ys[i] = s.Y[j]
		}
		s.X, s.Y = xs, ys
	}
}
