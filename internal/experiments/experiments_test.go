package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

func TestTableII(t *testing.T) {
	f := TableII()
	if f.ID != "tableII" || len(f.Series) == 0 {
		t.Fatalf("TableII = %+v", f)
	}
	if s := f.SeriesByLabel("P_th"); s == nil || s.Y[0] != 0.95 {
		t.Error("P_th entry wrong")
	}
	if f.SeriesByLabel("nope") != nil {
		t.Error("unknown label should be nil")
	}
}

func TestFigureStringAndOrdering(t *testing.T) {
	f := &Figure{ID: "x", Title: "demo", XLabel: "a", YLabel: "b"}
	s1 := &metrics.Series{Label: "hi"}
	s1.Append(1, 0.9)
	s2 := &metrics.Series{Label: "lo"}
	s2.Append(1, 0.4)
	f.Series = append(f.Series, s1, s2)
	f.Notes = append(f.Notes, "a note")
	out := f.String()
	for _, want := range []string{"x: demo", "hi", "lo", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	if err := f.CheckOrdering(true, "hi", "lo"); err != nil {
		t.Errorf("descending ordering should pass: %v", err)
	}
	if err := f.CheckOrdering(true, "lo", "hi"); err == nil {
		t.Error("wrong ordering should fail")
	}
	if err := f.CheckOrdering(false, "lo", "hi"); err != nil {
		t.Errorf("ascending ordering should pass: %v", err)
	}
	if err := f.CheckOrdering(true, "missing"); err == nil {
		t.Error("missing series should fail")
	}
}

func TestSortSeriesByX(t *testing.T) {
	s := &metrics.Series{Label: "s", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}}
	f := &Figure{Series: []*metrics.Series{s}}
	sortSeriesByX(f)
	if s.X[0] != 1 || s.Y[0] != 10 || s.X[2] != 3 || s.Y[2] != 30 {
		t.Errorf("sorted = %v / %v", s.X, s.Y)
	}
}

func TestOptionsShapes(t *testing.T) {
	quick := Options{Quick: true}
	if got := quick.jobCounts(); len(got) != 3 {
		t.Errorf("quick jobCounts = %v", got)
	}
	full := Options{}
	if got := full.jobCounts(); len(got) != 6 || got[5] != 300 {
		t.Errorf("full jobCounts = %v", got)
	}
	pms, vms := full.clusterSize()
	if pms != 50 || vms != 200 {
		t.Errorf("full cluster = %d/%d", pms, vms)
	}
	ec2 := Options{Profile: cluster.ProfileEC2}
	pms, vms = ec2.clusterSize()
	if pms != 30 || vms != 30 {
		t.Errorf("ec2 cluster = %d/%d", pms, vms)
	}
	if len(quick.seeds()) != 2 || len(full.seeds()) != 3 {
		t.Error("seed replication counts wrong")
	}
	if len(riskLevels(true)) != 3 || len(riskLevels(false)) != 6 {
		t.Error("risk level counts wrong")
	}
	if len(confidenceLevels(true)) != 3 || len(confidenceLevels(false)) != 5 {
		t.Error("confidence level counts wrong")
	}
}

// TestQuickFig06Shape runs the real Fig. 6 harness in quick mode and
// asserts the paper's ordering (the headline claim of the reproduction).
func TestQuickFig06Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	f, err := Fig06PredictionError(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	if err := f.CheckOrdering(false, "CORP", "RCCR", "CloudScale", "DRA"); err != nil {
		t.Errorf("Fig. 6 ordering: %v", err)
	}
}

// TestQuickFig07Shape asserts the utilization ordering per Fig. 7.
func TestQuickFig07Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	f, err := Fig07Utilization(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	if err := f.CheckOrdering(true, "CORP/overall", "RCCR/overall", "CloudScale/overall", "DRA/overall"); err != nil {
		t.Errorf("Fig. 7 ordering: %v", err)
	}
	// Storage utilization below CPU for the paper's Fig. 11 note.
	corpCPU := f.SeriesByLabel("CORP/CPU")
	corpSTO := f.SeriesByLabel("CORP/STO")
	if corpCPU.MeanY() <= corpSTO.MeanY() {
		t.Errorf("storage utilization %0.3f should sit below CPU %0.3f",
			corpSTO.MeanY(), corpCPU.MeanY())
	}
}

// TestQuickFig10Shape asserts CORP's overhead is the highest (Fig. 10).
func TestQuickFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	f, err := Fig10Overhead(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	corp := f.SeriesByLabel("CORP")
	for _, other := range []string{"RCCR", "CloudScale", "DRA"} {
		if s := f.SeriesByLabel(other); s.Y[0] >= corp.Y[0] {
			t.Errorf("%s latency %.1f should be below CORP %.1f", other, s.Y[0], corp.Y[0])
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	f := TableII()
	var b strings.Builder
	if err := f.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"## tableII", "| series |", "| P_th |", "0.95"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	var rb strings.Builder
	if err := WriteMarkdownReport(&rb, "demo", []*Figure{f}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rb.String(), "# demo") {
		t.Error("report header missing")
	}
	// Empty figure renders a placeholder.
	var eb strings.Builder
	if err := (&Figure{ID: "e", Title: "t"}).WriteMarkdown(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "no data") {
		t.Error("empty figure placeholder missing")
	}
}

// TestQuickExtensionMixed exercises the mixed-workload extension runner.
func TestQuickExtensionMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	f, err := ExtensionMixedWorkload(Options{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	if s := f.SeriesByLabel("cluster util"); s == nil || s.Len() != 2 {
		t.Fatalf("cluster util series missing or wrong length")
	}
	// Long jobs add served demand: cluster utilization must not drop.
	s := f.SeriesByLabel("cluster util")
	if s.Y[1] < s.Y[0]-0.01 {
		t.Errorf("cluster utilization fell with long jobs: %v", s.Y)
	}
}
