package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// Extension experiments beyond the paper's figures: the design-space
// studies DESIGN.md lists under ablations/extensions.

// ExtensionPlacementStrategies compares CORP's Eq. 22 most-matched
// placement against first-fit, worst-fit and random selection on a
// heterogeneous, contended cluster — the regime where the "most matched
// VM" choice pays off by keeping large slack blocks intact.
func ExtensionPlacementStrategies(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "ext-strategies",
		Title:  "Extension: CORP placement strategies (heterogeneous, " + o.Profile.String() + ")",
		XLabel: "metric index (0=overall util, 1=SLO rate, 2=placed opportunistically)",
		YLabel: "value",
	}
	jobs := 300
	if o.Quick {
		jobs = 150
	}
	// One batch covers the whole strategy × seed grid; results come back
	// positionally, so the per-strategy seed-order float accumulation is
	// unchanged from the old one-run-at-a-time loop.
	strategies := []string{"most-matched", "first-fit", "worst-fit", "random"}
	var cfgs []sim.Config
	for _, name := range strategies {
		for _, seed := range o.seeds() {
			cfg := o.hotConfig(scheduler.CORP, jobs)
			cfg.Heterogeneous = true
			cfg.Seed = seed
			cfg.Scheduler.Seed = seed
			cfg.Scheduler.CorpPlacement = name
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: strategies: %w", err)
	}
	n := float64(len(o.seeds()))
	for si, name := range strategies {
		var util, slo, opp float64
		for _, r := range results[si*len(o.seeds()) : (si+1)*len(o.seeds())] {
			util += r.Overall / n
			slo += r.SLORate / n
			opp += float64(r.PlacedOpportunistic) / n
		}
		s := &metrics.Series{Label: name}
		s.Append(0, util)
		s.Append(1, slo)
		s.Append(2, opp)
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// ExtensionPackK compares pairwise packing (the paper) against singleton
// and k = 3 entities under contention.
func ExtensionPackK(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "ext-packk",
		Title:  "Extension: entity size k in CORP packing (" + o.Profile.String() + ")",
		XLabel: "metric index (0=overall util, 1=SLO rate, 2=placed opportunistically)",
		YLabel: "value",
	}
	jobs := 300
	if o.Quick {
		jobs = 150
	}
	ks := []int{1, 2, 3}
	var cfgs []sim.Config
	for _, k := range ks {
		for _, seed := range o.seeds() {
			cfg := o.hotConfig(scheduler.CORP, jobs)
			cfg.Seed = seed
			cfg.Scheduler.Seed = seed
			cfg.Scheduler.CorpPackK = k
			if k == 1 {
				cfg.Scheduler.DisablePacking = true
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: packK: %w", err)
	}
	n := float64(len(o.seeds()))
	for ki, k := range ks {
		var util, slo, opp float64
		for _, r := range results[ki*len(o.seeds()) : (ki+1)*len(o.seeds())] {
			util += r.Overall / n
			slo += r.SLORate / n
			opp += float64(r.PlacedOpportunistic) / n
		}
		s := &metrics.Series{Label: fmt.Sprintf("k=%d", k)}
		s.Append(0, util)
		s.Append(1, slo)
		s.Append(2, opp)
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// ExtensionMixedWorkload measures the cooperative mixed-workload mode: the
// same short-job population with increasing long-lived service load.
func ExtensionMixedWorkload(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "ext-mixed",
		Title:  "Extension: cooperative long-lived + short-lived workload (" + o.Profile.String() + ")",
		XLabel: "long-lived jobs",
		YLabel: "value",
	}
	jobs := 200
	if o.Quick {
		jobs = 100
	}
	util := &metrics.Series{Label: "short-job util"}
	cluster := &metrics.Series{Label: "cluster util"}
	slo := &metrics.Series{Label: "SLO rate"}
	opp := &metrics.Series{Label: "opportunistic share"}
	f.Series = append(f.Series, util, cluster, slo, opp)
	counts := []int{0, 10, 25, 50}
	if o.Quick {
		counts = []int{0, 20}
	}
	cfgs := make([]sim.Config, len(counts))
	for i, long := range counts {
		cfgs[i] = o.baseConfig(scheduler.CORP, jobs)
		cfgs[i].LongJobs = long
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: mixed: %w", err)
	}
	for i, long := range counts {
		r := results[i]
		x := float64(long)
		util.Append(x, r.Overall)
		cluster.Append(x, r.ClusterOverall)
		slo.Append(x, r.SLORate)
		placed := r.PlacedOpportunistic + r.PlacedFresh
		if placed > 0 {
			opp.Append(x, float64(r.PlacedOpportunistic)/float64(placed))
		} else {
			opp.Append(x, 0)
		}
		f.Notes = append(f.Notes, fmt.Sprintf("long=%d: placed %d/%d long jobs",
			long, r.LongPlaced, long))
	}
	return f, nil
}

// ExtensionOracleGap measures how much headroom remains between CORP and a
// perfect-foresight oracle sharing CORP's packing and placement — the
// tightest upper bound on what better prediction could buy.
func ExtensionOracleGap(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "ext-oracle",
		Title:  "Extension: CORP vs perfect-foresight oracle (" + o.Profile.String() + ")",
		XLabel: "metric index (0=overall util, 1=SLO rate, 2=pred error rate)",
		YLabel: "value",
	}
	jobs := 300
	if o.Quick {
		jobs = 150
	}
	schemes := []scheduler.Scheme{scheduler.Oracle, scheduler.CORP, scheduler.RCCR}
	var cfgs []sim.Config
	for _, sc := range schemes {
		for _, seed := range o.seeds() {
			cfg := o.hotConfig(sc, jobs)
			cfg.Seed = seed
			cfg.Scheduler.Seed = seed
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: oracle gap: %w", err)
	}
	n := float64(len(o.seeds()))
	for si, sc := range schemes {
		var util, slo, errRate float64
		for _, r := range results[si*len(o.seeds()) : (si+1)*len(o.seeds())] {
			util += r.Overall / n
			slo += r.SLORate / n
			errRate += r.PredictionErrorRate / n
		}
		s := &metrics.Series{Label: sc.String()}
		s.Append(0, util)
		s.Append(1, slo)
		s.Append(2, errRate)
		f.Series = append(f.Series, s)
	}
	return f, nil
}
