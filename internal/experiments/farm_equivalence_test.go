package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/workload"
)

// startFarm stands up a dispatcher with n in-process workers over real
// HTTP and returns it plus a stop function that asserts clean shutdown.
func startFarm(t *testing.T, cfg farm.Config, n int) (*farm.Dispatcher, func()) {
	t.Helper()
	d := farm.NewDispatcher(cfg)
	srv := httptest.NewServer(d.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		w := &farm.Worker{
			BaseURL: srv.URL, ID: fmt.Sprintf("w%d", i),
			Poll: 10 * time.Millisecond, Heartbeat: 50 * time.Millisecond,
			Client: srv.Client(),
		}
		go func() { done <- w.Serve(ctx) }()
	}
	return d, func() {
		d.Shutdown()
		for i := 0; i < n; i++ {
			if err := <-done; err != nil {
				t.Errorf("worker exit: %v", err)
			}
		}
		cancel()
		srv.Close()
	}
}

// TestFarmCampaignEquivalence is the farm's acceptance gate: the full
// two-profile figure campaign (including the faulted extension figure)
// merged from 1, 2, and 4 local workers over real HTTP is bit-identical
// to the single-process sim.RunMany result. Only the wall-clock overhead
// figures (fig10/fig14) have their Y values exempted — they measure real
// scheduler wall time and differ between any two runs of the same binary,
// distributed or not (same exemption as the cache/core equivalence
// suites).
func TestFarmCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign equivalence sweep is slow; run without -short")
	}
	o := Options{Seed: 11, Quick: true}
	want, err := Campaign(o)
	if err != nil {
		t.Fatalf("in-process campaign: %v", err)
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			d, stop := startFarm(t, farm.Config{}, n)
			defer stop()
			fo := o
			fo.RunBatch = d.RunBatch
			got, err := Campaign(fo)
			if err != nil {
				t.Fatalf("farm campaign: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d figures from farm vs %d in-process", len(got), len(want))
			}
			for i := range want {
				compareFigures(t, fmt.Sprintf("farm-w%d", n), got[i], want[i])
			}
			c := d.Counters()
			if c.Failed != 0 || c.Retries != 0 {
				t.Errorf("healthy campaign saw failures/retries: %+v", c)
			}
			if c.DedupHits == 0 || c.Jobs >= c.Submitted {
				t.Errorf("campaign dedup missing (fig06/fig07 share configs): %+v", c)
			}
			t.Logf("workers=%d: %d figures identical; counters %+v", n, len(got), c)
		})
	}
}

// TestFarmWorkerKillRetry: a worker that pulls a job mid-campaign and is
// killed (no submit, no heartbeat — exactly what the dispatcher sees when
// a corpfarmd process dies) must not lose the campaign: its lease expires,
// the job is retried on a healthy worker, and the merged figure is still
// bit-identical to the in-process run.
func TestFarmWorkerKillRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow; run without -short")
	}
	o := Options{Seed: 11, Quick: true}
	want, err := Fig06PredictionError(o)
	if err != nil {
		t.Fatal(err)
	}

	d := farm.NewDispatcher(farm.Config{Lease: 300 * time.Millisecond, MaxAttempts: 3})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Run the campaign driver in the background; the first batch enqueues
	// before any worker exists.
	type out struct {
		fig *Figure
		err error
	}
	resCh := make(chan out, 1)
	go func() {
		fo := o
		fo.RunBatch = d.RunBatch
		fig, err := Fig06PredictionError(fo)
		resCh <- out{fig, err}
	}()

	// The doomed worker pulls one real campaign job and dies with it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok, _ := d.Pull("doomed"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never enqueued a job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A healthy worker drains the rest — including the abandoned job once
	// its lease expires.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	w := &farm.Worker{
		BaseURL: srv.URL, ID: "healthy",
		Poll: 10 * time.Millisecond, Heartbeat: 50 * time.Millisecond,
		Client: srv.Client(),
	}
	go func() { done <- w.Serve(ctx) }()

	r := <-resCh
	if r.err != nil {
		t.Fatalf("campaign with killed worker: %v", r.err)
	}
	compareFigures(t, "kill-retry", r.fig, want)
	c := d.Counters()
	if c.Retries == 0 {
		t.Error("abandoned lease was never retried")
	}
	if c.Failed != 0 {
		t.Errorf("retry should have rescued the job: %+v", c)
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Errorf("healthy worker exit: %v", err)
	}
}

// TestFarmDedupCounters pins the content-addressed dedup contract: Fig. 6
// and Fig. 7 sweep byte-identical configs, so the dispatcher must enqueue
// their shared work once, and the worker-side snapshot cache must build
// each distinct workload (Params.Key) exactly once per process.
func TestFarmDedupCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow; run without -short")
	}
	if !workload.Default.Enabled() {
		t.Skip("workload cache disabled")
	}
	workload.Default.Reset()
	base := workload.Default.Stats()

	d, stop := startFarm(t, farm.Config{}, 2)
	defer stop()
	o := Options{Seed: 23, Quick: true, RunBatch: d.RunBatch}
	if _, err := Fig06PredictionError(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig07Utilization(o); err != nil {
		t.Fatal(err)
	}

	c := d.Counters()
	// Quick mode: 3 job counts × 4 schemes per figure; Fig. 7 repeats
	// Fig. 6's configs exactly.
	if c.Submitted != 24 || c.Jobs != 12 || c.DedupHits != 12 {
		t.Errorf("dedup accounting wrong: %+v", c)
	}
	if c.Completed != 12 {
		t.Errorf("deduped jobs ran more than once: %+v", c)
	}
	// One workload per job count (seed folds the count in; schemes share).
	if c.DistinctWorkloads != 3 {
		t.Errorf("DistinctWorkloads = %d, want 3", c.DistinctWorkloads)
	}
	st := workload.Default.Stats()
	if builds := st.Misses - base.Misses; builds != uint64(c.DistinctWorkloads) {
		t.Errorf("snapshot builds = %d, want one per distinct workload (%d)",
			builds, c.DistinctWorkloads)
	}
	if st.Hits == base.Hits {
		t.Error("shared workloads recorded no cache hits")
	}
}
