package experiments

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// failureRates is the ext-faults x-axis: the per-VM per-slot crash
// probability (PM crashes and demand surges scale along with it).
func failureRates(quick bool) []float64 {
	if quick {
		return []float64{0, 0.004}
	}
	return []float64{0, 0.0005, 0.002, 0.005}
}

// faultProfile builds the fault configuration for one sweep point: VM
// crashes at the given rate, whole-PM crashes an order of magnitude
// rarer, and resident demand surges twice as frequent as crashes (a
// demand shock is more common than a dead machine).
func faultProfile(rate float64, seed int64) faults.Config {
	return faults.Config{
		Seed:        seed,
		VMCrashProb: rate,
		PMCrashProb: rate / 10,
		SurgeProb:   rate * 2,
		DelayProb:   rate * 5,
	}
}

// faultsClock returns the deterministic clock the ext-faults runs inject
// so the overhead metric — and with it the whole figure — is bit-for-bit
// reproducible for a fixed seed. Each config needs its own instance.
func faultsClock() sim.Clock { return &sim.VirtualClock{StepMicros: 150} }

// ExtensionFaultTolerance sweeps the failure rate and reports each
// scheme's SLO violation rate ("<scheme>/slo") and overall utilization
// ("<scheme>/util"), averaged over the replication seeds. At rate 0 the
// injector is disabled and every number reproduces the fault-free run
// exactly. Expected shape: SLO damage grows with the failure rate for all
// schemes while the paper's ordering (CORP lowest) is preserved;
// utilization degrades only mildly because evicted jobs are requeued and
// retried with backoff.
func ExtensionFaultTolerance(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "ext-faults",
		Title:  "Extension: SLO violations and utilization under fault injection (" + o.Profile.String() + ")",
		XLabel: "per-VM per-slot crash probability",
		YLabel: "value",
	}
	jobs := 300
	if o.Quick {
		jobs = 120
	}
	sloSeries := make(map[scheduler.Scheme]*metrics.Series, len(schemeOrder))
	utilSeries := make(map[scheduler.Scheme]*metrics.Series, len(schemeOrder))
	for _, sc := range schemeOrder {
		sloSeries[sc] = &metrics.Series{Label: sc.String() + "/slo"}
		utilSeries[sc] = &metrics.Series{Label: sc.String() + "/util"}
		f.Series = append(f.Series, sloSeries[sc], utilSeries[sc])
	}
	for _, rate := range failureRates(o.Quick) {
		var cfgs []sim.Config
		var order []scheduler.Scheme
		for _, seed := range o.seeds() {
			for _, sc := range schemeOrder {
				cfg := o.baseConfig(sc, jobs)
				cfg.Seed = seed
				cfg.Scheduler.Seed = seed
				cfg.Faults = faultProfile(rate, seed)
				cfg.Clock = faultsClock()
				cfgs = append(cfgs, cfg)
				order = append(order, sc)
			}
		}
		results, err := o.runBatch(cfgs)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults rate %g: %w", rate, err)
		}
		n := float64(len(o.seeds()))
		slo := map[scheduler.Scheme]float64{}
		util := map[scheduler.Scheme]float64{}
		var rec metrics.RecoveryStats // pooled over schemes and seeds
		for i, r := range results {
			slo[order[i]] += r.SLORate / n
			util[order[i]] += r.Overall / n
			rec.VMCrashes += r.Recovery.VMCrashes
			rec.Evictions += r.Recovery.Evictions
			rec.Retries += r.Recovery.Retries
			rec.RetriesExhausted += r.Recovery.RetriesExhausted
			rec.Replaced += r.Recovery.Replaced
			rec.ReplaceSlots += r.Recovery.ReplaceSlots
			rec.ViolationsFailure += r.Recovery.ViolationsFailure
			rec.ViolationsStarvation += r.Recovery.ViolationsStarvation
		}
		for _, sc := range schemeOrder {
			sloSeries[sc].Append(rate, slo[sc])
			utilSeries[sc].Append(rate, util[sc])
		}
		f.Notes = append(f.Notes, fmt.Sprintf(
			"rate=%g: %d VM crashes, %d evictions, %d retries (%d exhausted), %d replaced (mean %.1f slots), violations failure/starvation %d/%d",
			rate, rec.VMCrashes, rec.Evictions, rec.Retries, rec.RetriesExhausted,
			rec.Replaced, rec.MeanTimeToReplace(),
			rec.ViolationsFailure, rec.ViolationsStarvation))
	}
	sortSeriesByX(f)
	return f, nil
}
