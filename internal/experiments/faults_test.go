package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestDeriveSeedNoCollisions is the regression test for the additive
// replication seeds: under the old scheme (Seed, Seed+101, Seed+202) any
// two base seeds 101 apart silently reran the same workloads. The
// splitmix64 derivation must keep every (base, stream) pair distinct.
func TestDeriveSeedNoCollisions(t *testing.T) {
	bases := []int64{1, 102, 203, 304, 405} // 101 apart: the old failure mode
	const streams = 4
	seen := map[int64][2]int64{}
	for _, b := range bases {
		for s := 0; s < streams; s++ {
			d := deriveSeed(b, s)
			if d < 0 {
				t.Errorf("deriveSeed(%d, %d) = %d negative", b, s, d)
			}
			if prev, ok := seen[d]; ok {
				t.Errorf("collision: (%d,%d) and (%d,%d) both derive %d",
					prev[0], prev[1], b, s, d)
			}
			seen[d] = [2]int64{b, int64(s)}
		}
	}
	// Derivation is deterministic.
	if deriveSeed(7, 1) != deriveSeed(7, 1) {
		t.Error("deriveSeed not deterministic")
	}
}

func TestSeedsUseDerivation(t *testing.T) {
	a := Options{Seed: 1}.seeds()
	b := Options{Seed: 102}.seeds()
	for _, x := range a {
		for _, y := range b {
			if x == y {
				t.Errorf("bases 1 and 102 share replication seed %d", x)
			}
		}
	}
	// Same base twice → identical streams (experiments stay reproducible).
	if !reflect.DeepEqual(a, Options{Seed: 1}.seeds()) {
		t.Error("seeds() not deterministic")
	}
}

func TestFaultProfileShape(t *testing.T) {
	p := faultProfile(0.01, 5)
	if p.VMCrashProb != 0.01 || p.PMCrashProb != 0.001 ||
		p.SurgeProb != 0.02 || p.DelayProb != 0.05 || p.Seed != 5 {
		t.Errorf("profile = %+v", p)
	}
	if !p.Enabled() {
		t.Error("nonzero rate must enable injection")
	}
	if faultProfile(0, 5).Enabled() {
		t.Error("rate 0 must disable injection entirely")
	}
	if n := len(failureRates(true)); n != 2 {
		t.Errorf("quick sweep has %d points", n)
	}
	if n := len(failureRates(false)); n != 4 {
		t.Errorf("full sweep has %d points", n)
	}
	if failureRates(true)[0] != 0 || failureRates(false)[0] != 0 {
		t.Error("sweeps must include the fault-free baseline point")
	}
}

// TestQuickExtensionFaults runs the ext-faults harness in quick mode and
// checks shape, the fault-free baseline, and bit-for-bit determinism
// (the figure injects a virtual clock, so even overhead-derived state is
// reproducible).
func TestQuickExtensionFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := Options{Seed: 1, Quick: true}
	f, err := ExtensionFaultTolerance(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.String())
	if f.ID != "ext-faults" {
		t.Errorf("ID = %q", f.ID)
	}
	rates := failureRates(true)
	for _, sc := range schemeOrder {
		for _, kind := range []string{"/slo", "/util"} {
			s := f.SeriesByLabel(sc.String() + kind)
			if s == nil {
				t.Fatalf("series %s%s missing", sc, kind)
			}
			if len(s.X) != len(rates) {
				t.Errorf("%s has %d points, want %d", s.Label, len(s.X), len(rates))
			}
			for i, y := range s.Y {
				if y < 0 || y > 1.000001 {
					t.Errorf("%s point %d = %v outside [0,1]", s.Label, i, y)
				}
			}
		}
	}
	// The rate-0 point is the fault-free baseline: its pooled recovery
	// note must report zero failure activity.
	if len(f.Notes) != len(rates) {
		t.Fatalf("%d notes for %d rates", len(f.Notes), len(rates))
	}
	if !strings.HasPrefix(f.Notes[0], "rate=0: 0 VM crashes, 0 evictions") {
		t.Errorf("rate-0 note reports fault activity: %s", f.Notes[0])
	}
	// Bit-for-bit determinism: a second run reproduces every series and
	// note exactly.
	g, err := ExtensionFaultTolerance(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Series, g.Series) {
		t.Error("ext-faults series not bit-for-bit reproducible")
	}
	if !reflect.DeepEqual(f.Notes, g.Notes) {
		t.Error("ext-faults notes not bit-for-bit reproducible")
	}
}
