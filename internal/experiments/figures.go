package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// Fig06PredictionError reproduces Fig. 6: CPU prediction error rate versus
// the number of jobs, for all four schemes on the cluster profile.
// Expected shape: CORP < RCCR < CloudScale ≈< DRA, roughly flat in the
// number of jobs.
func Fig06PredictionError(o Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig06",
		Title:  "Prediction error rate of different methods (" + o.Profile.String() + ")",
		XLabel: "number of jobs",
		YLabel: "prediction error rate",
	}
	series := newSchemeSeries(f)
	for _, jobs := range o.jobCounts() {
		jobs := jobs
		// Each x point uses its own workload instance, as rerunning the
		// testbed with a different job count would.
		results, err := runAll(o, jobs, func(cfg *sim.Config) {
			cfg.Seed = o.Seed + int64(jobs)
			cfg.Scheduler.Seed = cfg.Seed
		})
		if err != nil {
			return nil, err
		}
		for sc, r := range results {
			series[sc].Append(float64(jobs), r.PredictionErrorRate)
		}
	}
	sortSeriesByX(f)
	return f, nil
}

// Fig07Utilization reproduces Fig. 7 (and Fig. 11 when Options.Profile is
// EC2): per-resource utilization versus the number of jobs. Series labels
// are "<scheme>/<kind>" plus "<scheme>/overall". Expected shape:
// CORP > RCCR > CloudScale > DRA per kind.
func Fig07Utilization(o Options) (*Figure, error) {
	id, num := "fig07", "7"
	if o.Profile.String() == "ec2" {
		id, num = "fig11", "11"
	}
	f := &Figure{
		ID:     id,
		Title:  "Fig. " + num + ": resource utilization vs number of jobs (" + o.Profile.String() + ")",
		XLabel: "number of jobs",
		YLabel: "utilization",
	}
	type key struct {
		sc   scheduler.Scheme
		kind string
	}
	series := map[key]*metrics.Series{}
	for _, sc := range schemeOrder {
		for _, k := range resource.Kinds() {
			s := &metrics.Series{Label: sc.String() + "/" + k.String()}
			series[key{sc, k.String()}] = s
			f.Series = append(f.Series, s)
		}
		s := &metrics.Series{Label: sc.String() + "/overall"}
		series[key{sc, "overall"}] = s
		f.Series = append(f.Series, s)
	}
	for _, jobs := range o.jobCounts() {
		jobs := jobs
		results, err := runAll(o, jobs, func(cfg *sim.Config) {
			cfg.Seed = o.Seed + int64(jobs)
			cfg.Scheduler.Seed = cfg.Seed
		})
		if err != nil {
			return nil, err
		}
		for sc, r := range results {
			for _, k := range resource.Kinds() {
				series[key{sc, k.String()}].Append(float64(jobs), r.Utilization[k])
			}
			series[key{sc, "overall"}].Append(float64(jobs), r.Overall)
		}
	}
	sortSeriesByX(f)
	return f, nil
}

// riskLevels are the per-scheme knobs swept to trade SLO violations for
// utilization in Figs. 8/12 ("We varied the SLO violation rate by varying
// the probability threshold P_th"). Each scheme varies its own
// conservatism parameter, staying within its design envelope: CORP its
// Eq. 21 gate and confidence level, RCCR its confidence level, CloudScale
// its padding, DRA its bulk factor.
type riskLevel struct {
	corpPth    float64 // Eq. 21 gate
	corpEta    float64 // CORP confidence level
	rccrEta    float64 // RCCR confidence level
	csPad      float64 // CloudScale predictor padding factor
	csAllocPad float64 // CloudScale allocation padding factor
	draBulk    float64 // DRA allocation bulk factor
	tightness  float64 // global allocation tightness (the operator's
	// aggressiveness setting: tighter allocations raise utilization and
	// SLO risk together, the axis the paper's Fig. 8 trades along)
}

func riskLevels(quick bool) []riskLevel {
	levels := []riskLevel{
		{0.95, 0.95, 0.95, 1.2, 1.45, 1.8, 1.00},
		{0.85, 0.90, 0.90, 0.9, 1.4, 1.74, 0.96},
		{0.70, 0.80, 0.80, 0.65, 1.35, 1.68, 0.92},
		{0.50, 0.70, 0.65, 0.45, 1.3, 1.62, 0.88},
		{0.30, 0.55, 0.50, 0.25, 1.25, 1.56, 0.84},
		{0.15, 0.40, 0.35, 0.10, 1.2, 1.5, 0.80},
	}
	if quick {
		return []riskLevel{levels[0], levels[2], levels[4]}
	}
	return levels
}

// Fig08UtilVsSLO reproduces Fig. 8 (Fig. 12 on EC2): overall utilization
// versus the achieved SLO violation rate, produced by sweeping each
// scheme's conservatism knob. Expected shape: utilization rises with the
// tolerated SLO violation rate, and at any SLO level
// CORP > RCCR > CloudScale > DRA.
func Fig08UtilVsSLO(o Options) (*Figure, error) {
	id, num := "fig08", "8"
	if o.Profile.String() == "ec2" {
		id, num = "fig12", "12"
	}
	f := &Figure{
		ID:     id,
		Title:  "Fig. " + num + ": overall utilization vs SLO violation rate (" + o.Profile.String() + ")",
		XLabel: "SLO violation rate",
		YLabel: "overall utilization",
	}
	series := newSchemeSeries(f)
	jobs := 300
	if o.Quick {
		jobs = 200
	}
	for _, lvl := range riskLevels(o.Quick) {
		lvl := lvl
		var cfgs []sim.Config
		var order []scheduler.Scheme
		for _, seed := range o.seeds() {
			for _, sc := range schemeOrder {
				cfg := o.hotConfig(sc, jobs)
				cfg.Seed = seed
				cfg.Scheduler.Seed = seed
				cfg.Scheduler.AllocTightness = lvl.tightness
				switch sc {
				case scheduler.CORP:
					cfg.Scheduler.Corp.Pth = lvl.corpPth
					cfg.Scheduler.Corp.Eta = lvl.corpEta
				case scheduler.RCCR:
					cfg.Scheduler.RCCR.Eta = lvl.rccrEta
				case scheduler.CloudScale:
					cfg.Scheduler.CloudScale.PadFactor = lvl.csPad
					cfg.Scheduler.CloudScalePad = lvl.csAllocPad
				case scheduler.DRA:
					cfg.Scheduler.DRABulk = lvl.draBulk
				}
				cfgs = append(cfgs, cfg)
				order = append(order, sc)
			}
		}
		results, err := o.runBatch(cfgs)
		if err != nil {
			return nil, err
		}
		sums := map[scheduler.Scheme][2]float64{}
		for i, r := range results {
			acc := sums[order[i]]
			acc[0] += r.SLORate
			acc[1] += r.Overall
			sums[order[i]] = acc
		}
		n := float64(len(o.seeds()))
		for sc, acc := range sums {
			series[sc].Append(acc[0]/n, acc[1]/n)
		}
	}
	sortSeriesByX(f)
	return f, nil
}

// confidenceLevels is the Fig. 9/13 x-axis: η from 50% to 90% (Table II).
func confidenceLevels(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.7, 0.9}
	}
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9}
}

// Fig09SLOVsConfidence reproduces Fig. 9 (Fig. 13 on EC2): SLO violation
// rate versus the confidence level η. Per the paper's own reading ("the
// higher the confidence level, the more conservative the prediction, and
// the less the amount of resource that will be allocated to jobs in the
// risk of SLO violations"), η drives every scheme's conservatism: CORP's
// confidence interval and Eq. 21 gate, RCCR's confidence interval, and
// CloudScale's padding (mapped onto the same [0.5, 0.9] axis). DRA has no
// prediction-conservatism mechanism at all, so its line is flat — and the
// highest, as in the paper.
func Fig09SLOVsConfidence(o Options) (*Figure, error) {
	id, num := "fig09", "9"
	if o.Profile.String() == "ec2" {
		id, num = "fig13", "13"
	}
	f := &Figure{
		ID:     id,
		Title:  "Fig. " + num + ": SLO violation rate vs confidence level (" + o.Profile.String() + ")",
		XLabel: "confidence level",
		YLabel: "SLO violation rate",
	}
	series := newSchemeSeries(f)
	jobs := 300
	if o.Quick {
		jobs = 200
	}
	// SLO violations are rare events; use an extra replication beyond
	// the default seed set.
	seeds := o.seeds()
	seeds = append(seeds, deriveSeed(o.Seed, len(seeds)))
	for _, eta := range confidenceLevels(o.Quick) {
		eta := eta
		var cfgs []sim.Config
		var order []scheduler.Scheme
		for _, seed := range seeds {
			for _, sc := range schemeOrder {
				cfg := o.hotConfig(sc, jobs)
				cfg.Seed = seed
				cfg.Scheduler.Seed = seed
				switch sc {
				case scheduler.CORP:
					cfg.Scheduler.Corp.Eta = eta
					cfg.Scheduler.Corp.Pth = eta
				case scheduler.RCCR:
					cfg.Scheduler.RCCR.Eta = eta
				case scheduler.CloudScale:
					// Map η ∈ [0.5, 0.9] onto padding ∈ [0.1, 1.0].
					cfg.Scheduler.CloudScale.PadFactor = 0.1 + (eta-0.5)/0.4*0.9
				}
				cfgs = append(cfgs, cfg)
				order = append(order, sc)
			}
		}
		results, err := o.runBatch(cfgs)
		if err != nil {
			return nil, err
		}
		sums := map[scheduler.Scheme]float64{}
		for i, r := range results {
			sums[order[i]] += r.SLORate
		}
		n := float64(len(seeds))
		for sc := range sums {
			series[sc].Append(eta, sums[sc]/n)
		}
	}
	sortSeriesByX(f)
	return f, nil
}

// Fig10Overhead reproduces Fig. 10 (Fig. 14 on EC2): the latency of
// allocating resources to 300 jobs, per scheme. The x value is the scheme
// index in comparison order; y is milliseconds. Expected shape: CORP
// slightly highest (DNN compute), all EC2 numbers above their cluster
// twins (communication).
func Fig10Overhead(o Options) (*Figure, error) {
	id, num := "fig10", "10"
	if o.Profile.String() == "ec2" {
		id, num = "fig14", "14"
	}
	f := &Figure{
		ID:     id,
		Title:  "Fig. " + num + ": overhead of allocating resources to 300 jobs (" + o.Profile.String() + ")",
		XLabel: "scheme index (CORP, RCCR, CloudScale, DRA)",
		YLabel: "latency (ms)",
	}
	jobs := 300
	if o.Quick {
		jobs = 150
	}
	results, err := runAll(o, jobs, nil)
	if err != nil {
		return nil, err
	}
	for i, sc := range schemeOrder {
		s := &metrics.Series{Label: sc.String()}
		s.Append(float64(i), results[sc].Overhead.TotalMillis())
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: compute %.1fms, comm %.1fms, %d ops",
			sc, results[sc].Overhead.ComputeMicros/1000,
			results[sc].Overhead.CommMicros/1000, results[sc].Overhead.Operations))
	}
	return f, nil
}

// TableII returns the paper's parameter settings as implemented, for the
// corpbench "tableII" target and the README.
func TableII() *Figure {
	f := &Figure{
		ID:     "tableII",
		Title:  "Table II: parameter settings",
		XLabel: "parameter",
		YLabel: "value",
	}
	add := func(label string, v float64) {
		s := &metrics.Series{Label: label}
		s.Append(0, v)
		f.Series = append(f.Series, s)
	}
	add("servers (N_p) min", 30)
	add("servers (N_p) max", 50)
	add("VMs (N_v) min", 100)
	add("VMs (N_v) max", 400)
	add("jobs |J| min", 50)
	add("jobs |J| max", 300)
	add("resource types l", 3)
	add("P_th", 0.95)
	add("DNN layers h", 4)
	add("DNN units per layer", 50)
	add("HMM states H", 3)
	add("significance min", 0.05)
	add("significance max", 0.30)
	add("confidence min", 0.50)
	add("confidence max", 0.90)
	return f
}

// newSchemeSeries registers one series per scheme on the figure and
// returns them keyed by scheme.
func newSchemeSeries(f *Figure) map[scheduler.Scheme]*metrics.Series {
	out := make(map[scheduler.Scheme]*metrics.Series, len(schemeOrder))
	for _, sc := range schemeOrder {
		s := &metrics.Series{Label: sc.String()}
		out[sc] = s
		f.Series = append(f.Series, s)
	}
	return out
}

// AllFigures runs every figure for the given profile in paper order.
func AllFigures(o Options) ([]*Figure, error) {
	runners := []func(Options) (*Figure, error){
		Fig06PredictionError,
		Fig07Utilization,
		Fig08UtilVsSLO,
		Fig09SLOVsConfidence,
		Fig10Overhead,
	}
	if o.Profile.String() == "ec2" {
		// EC2 reproduces Figs. 11–14 (no Fig. 6 twin in the paper).
		runners = runners[1:]
	}
	var figs []*Figure
	for _, run := range runners {
		f, err := run(o)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
