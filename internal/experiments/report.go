package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Markdown report rendering: corpbench -md writes the regenerated figures
// as a self-contained report (the format EXPERIMENTS.md quotes from).

// WriteMarkdown renders one figure as a Markdown section with one table
// row per series.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "x = %s, y = %s\n\n", f.XLabel, f.YLabel); err != nil {
		return err
	}
	// Collect the union of x values in first-seen order so series with
	// identical sweeps share columns.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	if len(xs) == 0 {
		_, err := fmt.Fprintln(w, "_(no data)_")
		return err
	}
	var b strings.Builder
	b.WriteString("| series |")
	for _, x := range xs {
		fmt.Fprintf(&b, " x=%.4g |", x)
	}
	b.WriteString("\n|---|")
	for range xs {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "| %s |", s.Label)
		byX := map[float64]float64{}
		has := map[float64]bool{}
		for i, x := range s.X {
			byX[x] = s.Y[i]
			has[x] = true
		}
		for _, x := range xs {
			if has[x] {
				fmt.Fprintf(&b, " %.4g |", byX[x])
			} else {
				b.WriteString(" — |")
			}
		}
		b.WriteString("\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdownReport renders several figures under a title header.
func WriteMarkdownReport(w io.Writer, title string, figs []*Figure) error {
	if _, err := fmt.Fprintf(w, "# %s\n\n", title); err != nil {
		return err
	}
	for _, f := range figs {
		if err := f.WriteMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}
