package farm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// jobState is the lifecycle of a queued job.
type jobState int

const (
	statePending jobState = iota
	stateLeased
	stateDone
	stateFailed
)

// farmJob is the dispatcher's record of one distinct work unit. A job may
// back many config positions across many batches (dedup); it runs once.
type farmJob struct {
	id          int64
	key         string
	workloadKey string
	spec        RunSpec

	state    jobState
	attempts int       // leases handed out
	worker   string    // current lease holder
	deadline time.Time // current lease deadline

	result *sim.Result
	err    error
	done   chan struct{} // closed exactly once, on done/failed
}

// Counters is the dispatcher's cumulative accounting, exported through
// the status endpoint, corpfarm's summary, and the perf snapshot.
type Counters struct {
	// Submitted counts config positions submitted across all batches;
	// Jobs counts the distinct work units enqueued. Their difference is
	// DedupHits: positions served by an already-enqueued (or finished)
	// job instead of a new execution.
	Submitted int64 `json:"submitted"`
	Jobs      int64 `json:"jobs"`
	DedupHits int64 `json:"dedup_hits"`
	// DistinctWorkloads counts unique workload content addresses across
	// all jobs — the number of traces the campaign needs generated at
	// all; each worker process builds each at most once via its cache.
	DistinctWorkloads int64 `json:"distinct_workloads"`
	Completed         int64 `json:"completed"`
	Failed            int64 `json:"failed"`
	// Retries counts re-enqueues: expired leases (worker died or hung)
	// plus failed attempts that had attempts left.
	Retries int64 `json:"retries"`
}

// WorkerStatus is the dispatcher's view of one worker, fed by heartbeats
// and submissions.
type WorkerStatus struct {
	ID        string         `json:"id"`
	LastSeen  time.Time      `json:"last_seen"`
	Running   int            `json:"running"`
	Completed int64          `json:"completed"`
	Cache     workload.Stats `json:"cache"`
	// BudgetInUse/BudgetLimit mirror the worker process's workpool
	// occupancy from its last heartbeat: how saturated its intra-run
	// engines are, independent of lease count.
	BudgetInUse int `json:"budget_in_use"`
	BudgetLimit int `json:"budget_limit"`
}

// Status is the progress/ETA report served by GET /v1/status.
type Status struct {
	Counters Counters       `json:"counters"`
	Pending  int            `json:"pending"`
	Leased   int            `json:"leased"`
	Workers  []WorkerStatus `json:"workers"`
	// FleetCache is the sum of every worker's snapshot-cache counters
	// from its last heartbeat: with W distinct workloads and N worker
	// processes, fleet-wide misses at most N×W proves each process built
	// each shared trace once.
	FleetCache workload.Stats `json:"fleet_cache"`
	Shutdown   bool           `json:"shutdown"`
	MeanRunMS  float64        `json:"mean_run_ms"`
	// ETASeconds estimates time to drain the queue from the mean run
	// duration and the number of live workers; -1 when unknown (nothing
	// completed yet or no workers).
	ETASeconds float64 `json:"eta_seconds"`
}

// Config tunes a Dispatcher.
type Config struct {
	// Lease is how long a worker holds a pulled job before the
	// dispatcher assumes it died and requeues. Zero defaults to 2m.
	Lease time.Duration
	// MaxAttempts caps leases per job before it fails permanently.
	// Zero defaults to 3.
	MaxAttempts int
	// Progress, when non-nil, observes per-run completion of every
	// batch executed through RunBatch (the sim.RunManyProgress hook).
	Progress sim.ProgressFunc
	// Logf, when non-nil, receives dispatcher event logs.
	Logf func(format string, args ...any)
}

// Dispatcher owns the job queue: it dedups submitted configs into
// content-addressed jobs, leases them to pulling workers, requeues
// abandoned leases, and reassembles batch results positionally.
type Dispatcher struct {
	cfg Config
	now func() time.Time // injectable for lease tests

	mu        sync.Mutex
	nextID    int64
	byKey     map[string]*farmJob
	pending   []*farmJob // FIFO
	workloads map[string]struct{}
	workers   map[string]*WorkerStatus
	counters  Counters
	shutdown  bool

	runs      int64   // completed runs with duration reports
	runMillis float64 // total reported run duration
}

// NewDispatcher builds a dispatcher with the given tuning.
func NewDispatcher(cfg Config) *Dispatcher {
	if cfg.Lease <= 0 {
		cfg.Lease = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	return &Dispatcher{
		cfg:       cfg,
		now:       time.Now,
		byKey:     make(map[string]*farmJob),
		workloads: make(map[string]struct{}),
		workers:   make(map[string]*WorkerStatus),
	}
}

func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Batch is one submitted slice of configs awaiting distributed execution.
// jobs[i] backs cfgs[i]; duplicates point at the same job.
type Batch struct {
	d    *Dispatcher
	jobs []*farmJob
}

// Submit dedups the configs into the queue and returns a Batch whose Wait
// reassembles results positionally. Configs that cannot be serialized
// (explicit jobs, foreign clocks) fail the whole batch up front — that is
// a caller bug, not a run failure.
func (d *Dispatcher) Submit(cfgs []sim.Config) (*Batch, error) {
	jobs := make([]*farmJob, len(cfgs))
	specs := make([]RunSpec, len(cfgs))
	keys := make([]string, len(cfgs))
	wkeys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		spec, err := EncodeSpec(cfg)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		jobKey, workloadKey, err := spec.Keys()
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		specs[i], keys[i], wkeys[i] = spec, jobKey, workloadKey
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.shutdown {
		return nil, errors.New("farm: dispatcher is shut down")
	}
	for i := range cfgs {
		d.counters.Submitted++
		if j, ok := d.byKey[keys[i]]; ok {
			d.counters.DedupHits++
			jobs[i] = j
			continue
		}
		d.nextID++
		j := &farmJob{
			id:          d.nextID,
			key:         keys[i],
			workloadKey: wkeys[i],
			spec:        specs[i],
			done:        make(chan struct{}),
		}
		d.byKey[keys[i]] = j
		d.pending = append(d.pending, j)
		d.counters.Jobs++
		if _, ok := d.workloads[wkeys[i]]; !ok {
			d.workloads[wkeys[i]] = struct{}{}
			d.counters.DistinctWorkloads++
		}
		jobs[i] = j
	}
	return &Batch{d: d, jobs: jobs}, nil
}

// Wait blocks until every job backing the batch is done or permanently
// failed and returns results positionally — results[i] for cfgs[i], nil
// on failure, failures joined — exactly the sim.RunMany contract. The
// progress callback (may be nil) fires serialized, in completion order.
func (b *Batch) Wait(progress sim.ProgressFunc) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(b.jobs))
	errs := make([]error, len(b.jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	done := 0
	for i, j := range b.jobs {
		wg.Add(1)
		go func(i int, j *farmJob) {
			defer wg.Done()
			<-j.done
			mu.Lock()
			defer mu.Unlock()
			results[i], errs[i] = j.result, j.err
			done++
			if progress != nil {
				progress(done, len(b.jobs))
			}
		}(i, j)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// RunBatch is Submit + Wait: a drop-in experiments.Options.RunBatch
// executor routing every sweep batch through the farm.
func (d *Dispatcher) RunBatch(cfgs []sim.Config) ([]*sim.Result, error) {
	b, err := d.Submit(cfgs)
	if err != nil {
		return nil, err
	}
	return b.Wait(d.cfg.Progress)
}

// Pull leases the oldest pending job to the worker. ok is false when the
// queue is drained (idle poll) — distinct from shutdown, which tells the
// worker to exit.
func (d *Dispatcher) Pull(workerID string) (job Job, ok, shutdown bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.touchWorker(workerID)
	if d.shutdown {
		return Job{}, false, true
	}
	d.reapExpiredLocked()
	// Skip queue entries that are no longer pending: a job can finish via
	// a stale submission (an expired-lease attempt raced its own retry)
	// while still sitting in the FIFO.
	var j *farmJob
	for j == nil {
		if len(d.pending) == 0 {
			return Job{}, false, false
		}
		j = d.pending[0]
		d.pending = d.pending[1:]
		if j.state != statePending {
			j = nil
		}
	}
	j.state = stateLeased
	j.attempts++
	j.worker = workerID
	j.deadline = d.now().Add(d.cfg.Lease)
	d.logf("lease job %d attempt %d -> %s", j.id, j.attempts, workerID)
	return Job{ID: j.id, Key: j.key, Spec: j.spec}, true, false
}

// Heartbeat extends the worker's leases and records its liveness,
// workload-cache counters, and workpool occupancy for the status report.
func (d *Dispatcher) Heartbeat(req HeartbeatRequest) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.touchWorker(req.Worker)
	w.Running = len(req.IDs)
	w.Cache = req.Cache
	w.BudgetInUse = req.BudgetInUse
	w.BudgetLimit = req.BudgetLimit
	held := make(map[int64]bool, len(req.IDs))
	for _, id := range req.IDs {
		held[id] = true
	}
	deadline := d.now().Add(d.cfg.Lease)
	for _, j := range d.byKey {
		if j.state == stateLeased && j.worker == req.Worker && held[j.id] {
			j.deadline = deadline
		}
	}
}

// SubmitResult records one run's outcome. First completion wins; a stale
// submission for an already-finished job (its lease expired and a retry
// beat it) is ignored — either copy is correct, results are deterministic.
// A failed attempt requeues until MaxAttempts, then fails the job for all
// batches waiting on it, mirroring RunMany's per-slot error containment.
func (d *Dispatcher) SubmitResult(workerID string, jobID int64, key string, result *sim.Result, runErr string, millis float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.touchWorker(workerID)
	j := d.byKey[key]
	if j == nil || j.id != jobID {
		return fmt.Errorf("farm: unknown job %d (%.16s…)", jobID, key)
	}
	if j.state == stateDone || j.state == stateFailed {
		return nil // stale duplicate; first submission won
	}
	if runErr != "" {
		if j.state != stateLeased || j.worker != workerID {
			// A failure from an expired lease; the job has already been
			// requeued (or re-leased elsewhere). Nothing to do.
			return nil
		}
		if j.attempts >= d.cfg.MaxAttempts {
			j.state = stateFailed
			j.err = fmt.Errorf("farm: job %d failed after %d attempts: %s", j.id, j.attempts, runErr)
			d.counters.Failed++
			d.logf("job %d failed permanently: %s", j.id, runErr)
			close(j.done)
			return nil
		}
		d.counters.Retries++
		j.state = statePending
		j.worker = ""
		d.pending = append(d.pending, j)
		d.logf("job %d attempt %d failed (%s); requeued", j.id, j.attempts, runErr)
		return nil
	}
	if result == nil {
		return fmt.Errorf("farm: job %d submitted with neither result nor error", jobID)
	}
	j.state = stateDone
	j.result = result
	w.Completed++
	d.counters.Completed++
	d.runs++
	d.runMillis += millis
	close(j.done)
	return nil
}

// reapExpiredLocked requeues leased jobs whose deadline passed (the
// holding worker died or hung). Jobs out of attempts fail permanently.
// Called with the lock held, on every pull — workers poll continuously,
// so expiry is detected within one poll interval without a background
// timer.
func (d *Dispatcher) reapExpiredLocked() {
	now := d.now()
	for _, j := range d.byKey {
		if j.state != stateLeased || now.Before(j.deadline) {
			continue
		}
		if j.attempts >= d.cfg.MaxAttempts {
			j.state = stateFailed
			j.err = fmt.Errorf("farm: job %d abandoned after %d attempts (lease expired on %q)", j.id, j.attempts, j.worker)
			d.counters.Failed++
			d.logf("job %d abandoned by %s; out of attempts", j.id, j.worker)
			close(j.done)
			continue
		}
		d.counters.Retries++
		d.logf("job %d lease expired on %s; requeued", j.id, j.worker)
		j.state = statePending
		j.worker = ""
		d.pending = append(d.pending, j)
	}
}

// touchWorker records worker liveness; called with the lock held.
func (d *Dispatcher) touchWorker(id string) *WorkerStatus {
	w := d.workers[id]
	if w == nil {
		w = &WorkerStatus{ID: id}
		d.workers[id] = w
	}
	w.LastSeen = d.now()
	return w
}

// Counters returns a snapshot of the cumulative accounting.
func (d *Dispatcher) Counters() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counters
}

// Status reports queue depth, per-worker state, and an ETA estimate.
func (d *Dispatcher) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reapExpiredLocked()
	st := Status{Counters: d.counters, Shutdown: d.shutdown, ETASeconds: -1}
	for _, j := range d.byKey {
		switch j.state {
		case statePending:
			st.Pending++
		case stateLeased:
			st.Leased++
		}
	}
	for _, w := range d.workers {
		st.Workers = append(st.Workers, *w)
		st.FleetCache = st.FleetCache.Add(w.Cache)
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	if d.runs > 0 {
		st.MeanRunMS = d.runMillis / float64(d.runs)
		if n := len(st.Workers); n > 0 {
			st.ETASeconds = st.MeanRunMS / 1000 * float64(st.Pending+st.Leased) / float64(n)
		}
	}
	return st
}

// Shutdown drains the farm: subsequent pulls tell workers to exit and
// subsequent submits are refused. In-flight results are still accepted.
func (d *Dispatcher) Shutdown() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shutdown = true
}
