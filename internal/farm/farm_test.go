package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// quickCfg is a tiny runnable config for protocol-level tests (the run
// function is stubbed; the config only needs distinct key material).
func quickCfg(seed int64) sim.Config {
	return sim.Config{
		NumPMs: 4, NumVMs: 8, NumJobs: 10, Seed: seed,
		Warmup: 5, ArrivalSpan: 5, Drain: 10,
		Scheduler: scheduler.Config{Scheme: scheduler.RCCR, Seed: seed},
		Workers:   1,
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cfg := quickCfg(3)
	cfg.Clock = &sim.VirtualClock{StepMicros: 150}
	spec, err := EncodeSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.VirtualClockStep != 150 || spec.Config.Clock != nil {
		t.Fatalf("virtual clock not factored out: %+v", spec)
	}
	enc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	got := back.DecodeConfig()
	vc, ok := got.Clock.(*sim.VirtualClock)
	if !ok || vc.StepMicros != 150 {
		t.Fatalf("clock not reconstructed: %#v", got.Clock)
	}
	got.Clock = nil
	cfg.Clock = nil
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("config did not round-trip:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestSpecRejectsNonSerializable(t *testing.T) {
	cfg := quickCfg(1)
	cfg.Clock = fakeClock{}
	if _, err := EncodeSpec(cfg); err == nil {
		t.Error("foreign clock must be rejected")
	}
	cfg = quickCfg(1)
	if snap, err := sim.PrepareWorkload(cfg); err == nil {
		cfg.Prepared = snap
		if _, err := EncodeSpec(cfg); err == nil {
			t.Error("prepared snapshot must be rejected")
		}
	}
}

type fakeClock struct{}

func (fakeClock) Now() float64 { return 0 }

func TestJobKeys(t *testing.T) {
	specA, _ := EncodeSpec(quickCfg(1))
	specB, _ := EncodeSpec(quickCfg(1))
	keyA, wkA, err := specA.Keys()
	if err != nil {
		t.Fatal(err)
	}
	keyB, _, _ := specB.Keys()
	if keyA != keyB {
		t.Error("identical configs must share a job key")
	}
	// A scheduler-side flag changes the job key but not the workload key:
	// same trace, different run.
	cfgC := quickCfg(1)
	cfgC.Scheduler.Scheme = scheduler.CORP
	specC, _ := EncodeSpec(cfgC)
	keyC, wkC, _ := specC.Keys()
	if keyC == keyA {
		t.Error("different scheme must change the job key")
	}
	if wkC != wkA {
		t.Error("scheme must not change the workload key")
	}
	// A different seed changes both.
	specD, _ := EncodeSpec(quickCfg(2))
	keyD, wkD, _ := specD.Keys()
	if keyD == keyA || wkD == wkA {
		t.Error("different seed must change job and workload keys")
	}
}

// TestResultJSONBitExact: the wire transport must not perturb a single
// bit of any float in sim.Result — the foundation of the farm's
// bit-identical merged figures. Go's encoding/json formats float64 with
// the shortest representation that round-trips exactly.
func TestResultJSONBitExact(t *testing.T) {
	cfg := quickCfg(11)
	cfg.Clock = &sim.VirtualClock{StepMicros: 150}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Result
	if err := json.Unmarshal(enc, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("result did not round-trip bit-exact:\n got %+v\nwant %+v", &got, want)
	}
}

// echoRun fabricates a deterministic result from the config without
// simulating — protocol tests only care about routing.
func echoRun(cfg sim.Config) (*sim.Result, error) {
	return &sim.Result{NumJobs: int(cfg.Seed), Scheme: cfg.Scheduler.Scheme.String()}, nil
}

// startWorkers runs n in-process workers against the dispatcher and
// returns a stop function that waits for their clean shutdown.
func startWorkers(t *testing.T, d *Dispatcher, n int, run func(sim.Config) (*sim.Result, error)) (stop func()) {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	done := make(chan error, n)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		w := &Worker{
			BaseURL: srv.URL, ID: fmt.Sprintf("w%d", i),
			Poll: 5 * time.Millisecond, Heartbeat: 20 * time.Millisecond,
			Run: run, Client: srv.Client(),
		}
		go func() { done <- w.Serve(ctx) }()
	}
	return func() {
		d.Shutdown()
		for i := 0; i < n; i++ {
			if err := <-done; err != nil {
				t.Errorf("worker exit: %v", err)
			}
		}
		cancel()
		srv.Close()
	}
}

func TestFarmPositionalAssemblyAndDedup(t *testing.T) {
	d := NewDispatcher(Config{})
	defer startWorkers(t, d, 3, echoRun)()

	// Sixteen positions over four distinct configs: dedup must collapse
	// them to four jobs while keeping positional results.
	var cfgs []sim.Config
	for i := 0; i < 16; i++ {
		cfgs = append(cfgs, quickCfg(int64(i%4)))
	}
	results, err := d.RunBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil || r.NumJobs != i%4 {
			t.Fatalf("result %d misplaced: %+v", i, r)
		}
	}
	c := d.Counters()
	if c.Jobs != 4 || c.DedupHits != 12 || c.Submitted != 16 {
		t.Errorf("dedup accounting wrong: %+v", c)
	}
	if c.Completed != 4 {
		t.Errorf("deduped job ran more than once: %+v", c)
	}
	// The four configs differ only in seed, so each has its own workload.
	if c.DistinctWorkloads != 4 {
		t.Errorf("DistinctWorkloads = %d, want 4", c.DistinctWorkloads)
	}

	// A second batch reuses finished jobs without re-running them.
	results2, err := d.RunBatch(cfgs[:4])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results2 {
		if r != results[i] {
			t.Errorf("batch 2 result %d not shared with batch 1", i)
		}
	}
	if c2 := d.Counters(); c2.Completed != 4 || c2.DedupHits != 16 {
		t.Errorf("cross-batch dedup wrong: %+v", c2)
	}
}

func TestFarmRetriesFailuresThenGivesUp(t *testing.T) {
	var calls atomic.Int64
	flaky := func(cfg sim.Config) (*sim.Result, error) {
		if cfg.Seed == 1 && calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		if cfg.Seed == 2 {
			panic("always broken")
		}
		return echoRun(cfg)
	}
	d := NewDispatcher(Config{MaxAttempts: 3})
	defer startWorkers(t, d, 2, flaky)()

	results, err := d.RunBatch([]sim.Config{quickCfg(0), quickCfg(1), quickCfg(2)})
	if err == nil {
		t.Fatal("permanently failing job must surface an error")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") || !strings.Contains(err.Error(), "always broken") {
		t.Errorf("error does not describe the failure: %v", err)
	}
	if results[0] == nil || results[1] == nil {
		t.Error("healthy and flaky-then-ok runs must still complete")
	}
	if results[2] != nil {
		t.Error("failed job must leave a nil slot")
	}
	c := d.Counters()
	if c.Failed != 1 || c.Completed != 2 {
		t.Errorf("completion accounting wrong: %+v", c)
	}
	// Seed 1 failed twice before succeeding; seed 2 was requeued twice
	// before its third attempt failed it permanently.
	if c.Retries != 4 {
		t.Errorf("Retries = %d, want 4", c.Retries)
	}
}

func TestFarmLeaseExpiryRequeues(t *testing.T) {
	d := NewDispatcher(Config{Lease: time.Minute, MaxAttempts: 3})
	now := time.Unix(1000, 0)
	d.now = func() time.Time { return now }

	b, err := d.Submit([]sim.Config{quickCfg(7)})
	if err != nil {
		t.Fatal(err)
	}
	job, ok, _ := d.Pull("dead-worker")
	if !ok {
		t.Fatal("expected a lease")
	}
	// The worker vanishes. Within the lease the job stays leased…
	if _, ok, _ := d.Pull("live-worker"); ok {
		t.Fatal("job double-leased inside the lease window")
	}
	// …after the deadline the next pull reaps and re-leases it.
	now = now.Add(2 * time.Minute)
	job2, ok, _ := d.Pull("live-worker")
	if !ok || job2.ID != job.ID {
		t.Fatalf("expired job not re-leased: ok=%v job=%+v", ok, job2)
	}
	if c := d.Counters(); c.Retries != 1 {
		t.Errorf("Retries = %d, want 1", c.Retries)
	}
	// Heartbeats extend leases: a beat 30s into the lease pushes the
	// deadline out, so a poll past the original deadline (but inside the
	// extended one) finds nothing to reap.
	now = now.Add(30 * time.Second)
	d.Heartbeat(HeartbeatRequest{Worker: "live-worker", IDs: []int64{job2.ID}, Cache: workload.Stats{}})
	now = now.Add(50 * time.Second)
	if _, ok, _ := d.Pull("third-worker"); ok {
		t.Fatal("heartbeat did not extend the lease")
	}
	// The late result from the dead worker is accepted (first valid
	// completion wins; either attempt's result is bit-identical).
	res, _ := echoRun(quickCfg(7))
	if err := d.SubmitResult("dead-worker", job.ID, job.Key, res, "", 1); err != nil {
		t.Fatal(err)
	}
	results, err := b.Wait(nil)
	if err != nil || results[0] == nil {
		t.Fatalf("batch did not complete: %v %v", results, err)
	}
	// The live worker's duplicate submission is ignored without error.
	if err := d.SubmitResult("live-worker", job2.ID, job2.Key, res, "", 1); err != nil {
		t.Fatal(err)
	}
	if c := d.Counters(); c.Completed != 1 {
		t.Errorf("Completed = %d, want 1", c.Completed)
	}
}

func TestFarmAbandonedJobFailsAfterMaxAttempts(t *testing.T) {
	d := NewDispatcher(Config{Lease: time.Minute, MaxAttempts: 2})
	now := time.Unix(0, 0)
	d.now = func() time.Time { return now }
	b, err := d.Submit([]sim.Config{quickCfg(9)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, _ := d.Pull("w"); !ok {
			t.Fatalf("pull %d: no lease", i)
		}
		now = now.Add(5 * time.Minute)
	}
	// Attempts exhausted: the next pull reaps it into permanent failure.
	if _, ok, _ := d.Pull("w"); ok {
		t.Fatal("job leased beyond MaxAttempts")
	}
	results, err := b.Wait(nil)
	if err == nil || !strings.Contains(err.Error(), "abandoned after 2 attempts") {
		t.Fatalf("want abandonment error, got %v", err)
	}
	if results[0] != nil {
		t.Error("abandoned job must leave a nil slot")
	}
}

func TestFarmProgressAndStatus(t *testing.T) {
	var last atomic.Int64
	d := NewDispatcher(Config{Progress: func(done, total int) {
		if total != 3 {
			t.Errorf("progress total = %d, want 3", total)
		}
		last.Store(int64(done))
	}})
	defer startWorkers(t, d, 2, echoRun)()
	if _, err := d.RunBatch([]sim.Config{quickCfg(0), quickCfg(1), quickCfg(2)}); err != nil {
		t.Fatal(err)
	}
	if last.Load() != 3 {
		t.Errorf("progress ended at %d, want 3", last.Load())
	}
	st := d.Status()
	if st.Pending != 0 || st.Leased != 0 {
		t.Errorf("drained queue reports depth: %+v", st)
	}
	if st.MeanRunMS <= 0 {
		t.Errorf("mean run duration not tracked: %+v", st)
	}
	if len(st.Workers) == 0 {
		t.Errorf("no workers tracked: %+v", st)
	}
}

// TestFarmOverHTTPRunsRealSim drives one real simulation through the full
// HTTP stack and compares it against an in-process run of the same config
// — the protocol must be invisible.
func TestFarmOverHTTPRunsRealSim(t *testing.T) {
	cfg := quickCfg(5)
	// Inject the virtual clock so the overhead metric — the one
	// wall-clock-derived field — is deterministic and comparable.
	cfg.Clock = &sim.VirtualClock{StepMicros: 150}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(Config{})
	defer startWorkers(t, d, 1, nil)()
	results, err := d.RunBatch([]sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0], want) {
		t.Fatalf("farm run differs from in-process run:\n got %+v\nwant %+v", results[0], want)
	}
}
