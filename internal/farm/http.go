package farm

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Wire types for the HTTP/JSON work-pull protocol. All endpoints are POST
// with JSON bodies except GET /v1/status.

// PullRequest asks for one job lease.
type PullRequest struct {
	Worker string `json:"worker"`
}

// PullResponse carries a leased job, an idle signal (queue drained; poll
// again), or a shutdown signal (campaign over; exit).
type PullResponse struct {
	Job      *Job `json:"job,omitempty"`
	Shutdown bool `json:"shutdown,omitempty"`
}

// SubmitRequest reports one run's outcome: exactly one of Result or Error
// is set. Millis is the run's wall time, feeding the dispatcher's ETA.
type SubmitRequest struct {
	Worker string      `json:"worker"`
	ID     int64       `json:"id"`
	Key    string      `json:"key"`
	Result *sim.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
	Millis float64     `json:"millis"`
}

// HeartbeatRequest extends the worker's leases and streams its progress:
// the job IDs still running, the worker's workload-cache counters, and
// its process-wide workpool budget occupancy (how many engine slots its
// in-flight runs have claimed, out of the process's limit).
type HeartbeatRequest struct {
	Worker      string         `json:"worker"`
	IDs         []int64        `json:"ids"`
	Cache       workload.Stats `json:"cache"`
	BudgetInUse int            `json:"budget_in_use"`
	BudgetLimit int            `json:"budget_limit"`
}

type okResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Handler serves the dispatcher's work-pull protocol:
//
//	POST /v1/pull      PullRequest      -> PullResponse
//	POST /v1/submit    SubmitRequest    -> okResponse
//	POST /v1/heartbeat HeartbeatRequest -> okResponse
//	GET  /v1/status                     -> Status
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/pull", func(w http.ResponseWriter, r *http.Request) {
		var req PullRequest
		if !readJSON(w, r, &req) {
			return
		}
		job, ok, shutdown := d.Pull(req.Worker)
		resp := PullResponse{Shutdown: shutdown}
		if ok {
			resp.Job = &job
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := d.SubmitResult(req.Worker, req.ID, req.Key, req.Result, req.Error, req.Millis); err != nil {
			writeJSON(w, okResponse{Error: err.Error()})
			return
		}
		writeJSON(w, okResponse{OK: true})
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		d.Heartbeat(req)
		writeJSON(w, okResponse{OK: true})
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Status())
	})
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
