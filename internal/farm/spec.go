// Package farm distributes a figure campaign across worker processes.
//
// The dispatcher turns batches of independent sim.Configs into a queue of
// content-addressed jobs served over an HTTP/JSON work-pull protocol;
// worker daemons (cmd/corpfarmd, or in-process farm.Worker loops) pull
// jobs, run them through sim.Run, and submit typed results. Three
// properties make the distribution invisible to the experiment layer:
//
//   - Determinism: every sim run is bit-for-bit reproducible from its
//     config, and Go's encoding/json round-trips finite float64 values
//     exactly (shortest-round-trip formatting), so a result computed on
//     any worker is byte-identical to an in-process run.
//   - Positional assembly: a batch remembers which job backs each config
//     index and reassembles results in submission order, so merged
//     figures do not depend on worker count, scheduling, or timing.
//   - Content-addressed dedup: a job's identity is the hash of its
//     workload content address (workload.Params.Key via sim.WorkloadKey)
//     plus the canonical config encoding, so identical work units across
//     a campaign — e.g. Fig. 6 and Fig. 7 sweep the same configs — are
//     enqueued, executed, and paid for once.
//
// Failed or abandoned runs are retried under a lease + deadline regime
// with RunMany's panic-containment semantics: a job that keeps failing
// surfaces as an error on its own result slot with the sweep's remaining
// runs unharmed.
package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// RunSpec is the wire form of one simulation run. It is a sim.Config with
// the two non-serializable fields factored out: Clock (an interface;
// represented by the virtual-clock step, the only clock a distributed run
// may use) and Prepared (a process-local snapshot pointer; workers rebuild
// snapshots from their own content-addressed cache instead).
type RunSpec struct {
	Config sim.Config `json:"config"`
	// VirtualClockStep carries Config.Clock when it is a *sim.VirtualClock
	// (the deterministic clock the ext-faults figure injects); zero means
	// no injected clock.
	VirtualClockStep float64 `json:"virtual_clock_step,omitempty"`
}

// EncodeSpec converts a config into its wire form. Configs that cannot be
// executed remotely are rejected: explicit job lists and pre-built
// snapshots are process-local, and any clock other than the virtual one
// would make the run's overhead metric depend on which worker ran it.
func EncodeSpec(cfg sim.Config) (RunSpec, error) {
	if cfg.ExplicitJobs != nil {
		return RunSpec{}, fmt.Errorf("farm: config with ExplicitJobs cannot be distributed")
	}
	if cfg.Prepared != nil {
		return RunSpec{}, fmt.Errorf("farm: config with a Prepared snapshot cannot be distributed")
	}
	spec := RunSpec{Config: cfg}
	switch c := cfg.Clock.(type) {
	case nil:
	case *sim.VirtualClock:
		spec.VirtualClockStep = c.StepMicros
		spec.Config.Clock = nil
	default:
		return RunSpec{}, fmt.Errorf("farm: clock %T cannot be distributed (only *sim.VirtualClock)", cfg.Clock)
	}
	return spec, nil
}

// DecodeConfig reconstructs the runnable config on the worker side. Each
// call returns a fresh virtual clock: clocks are stateful and must never
// be shared between runs.
func (s RunSpec) DecodeConfig() sim.Config {
	cfg := s.Config
	if s.VirtualClockStep != 0 {
		cfg.Clock = &sim.VirtualClock{StepMicros: s.VirtualClockStep}
	}
	return cfg
}

// Keys returns the job's content address and the workload content address
// it folds in. The job key is a SHA-256 over a version tag, the workload
// key (workload.Params.Key — the PR-5 snapshot-cache address, which pins
// every generated trace byte), and the canonical JSON encoding of the
// spec, so two configs collide exactly when they would run bit-identical
// simulations of the same workload. The workload key is also returned
// separately: the dispatcher counts distinct workloads to report how much
// snapshot generation the worker-side cache dedups.
func (s RunSpec) Keys() (jobKey, workloadKey string, err error) {
	workloadKey, err = sim.WorkloadKey(s.Config)
	if err != nil {
		return "", "", fmt.Errorf("farm: workload key: %w", err)
	}
	enc, err := json.Marshal(s)
	if err != nil {
		return "", "", fmt.Errorf("farm: encode spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("corpfarm-job-v1\n"))
	h.Write([]byte(workloadKey))
	h.Write([]byte{'\n'})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), workloadKey, nil
}

// Job is one unit of work on the wire: the queue-assigned ID, the content
// address, and the run spec.
type Job struct {
	ID   int64   `json:"id"`
	Key  string  `json:"key"`
	Spec RunSpec `json:"spec"`
}
