package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workpool"
)

// Worker is the pull → run → submit loop corpfarmd wraps (tests run it
// in-process against an httptest server). It is deliberately stateless:
// all queue state lives on the dispatcher, so a killed worker resumes
// cleanly on restart — its abandoned leases expire and are retried, and
// its first pull after the restart simply hands it fresh work.
type Worker struct {
	// BaseURL is the dispatcher's address, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// ID names this worker in leases and status reports.
	ID string
	// Slots is the number of concurrent pull→run→submit loops. Zero
	// defaults to 1; the process-wide workpool budget keeps intra-run
	// engines from oversubscribing the machine regardless.
	Slots int
	// Poll is the idle re-poll interval. Zero defaults to 500ms.
	Poll time.Duration
	// Heartbeat is the lease-extension interval. Zero defaults to 5s;
	// it must stay well under the dispatcher's lease duration.
	Heartbeat time.Duration
	// Run executes one simulation; nil defaults to sim.Run. Panics are
	// contained per attempt and submitted as run failures.
	Run func(sim.Config) (*sim.Result, error)
	// Client is the HTTP client; nil defaults to http.DefaultClient.
	Client *http.Client
	// Logf, when non-nil, receives worker event logs.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	running map[int64]bool
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Serve runs the work loops until the dispatcher signals shutdown or the
// context is canceled. It returns nil on a clean shutdown.
func (w *Worker) Serve(ctx context.Context) error {
	slots := w.Slots
	if slots <= 0 {
		slots = 1
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	beat := w.Heartbeat
	if beat <= 0 {
		beat = 5 * time.Second
	}
	run := w.Run
	if run == nil {
		run = sim.Run
	}
	w.mu.Lock()
	w.running = make(map[int64]bool)
	w.mu.Unlock()

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(beat)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				w.heartbeat()
			}
		}
	}()
	defer func() { stopHB(); hbWG.Wait() }()

	errs := make(chan error, slots)
	for s := 0; s < slots; s++ {
		go func() { errs <- w.loop(ctx, poll, run) }()
	}
	var first error
	for s := 0; s < slots; s++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loop is one slot's pull→run→submit cycle.
func (w *Worker) loop(ctx context.Context, poll time.Duration, run func(sim.Config) (*sim.Result, error)) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var resp PullResponse
		if err := w.post("/v1/pull", PullRequest{Worker: w.ID}, &resp); err != nil {
			// The dispatcher may simply not be up yet (corpfarm spawns
			// workers while binding its listener); poll through it.
			w.logf("pull: %v", err)
			if !sleepCtx(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		if resp.Shutdown {
			return nil
		}
		if resp.Job == nil {
			if !sleepCtx(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		job := *resp.Job
		w.setRunning(job.ID, true)
		start := time.Now()
		res, runErr := runContained(run, job.Spec.DecodeConfig())
		millis := float64(time.Since(start)) / float64(time.Millisecond)
		w.setRunning(job.ID, false)
		req := SubmitRequest{Worker: w.ID, ID: job.ID, Key: job.Key, Millis: millis}
		if runErr != nil {
			req.Error = runErr.Error()
		} else {
			req.Result = res
		}
		var sub okResponse
		if err := w.post("/v1/submit", req, &sub); err != nil {
			// Submission lost (dispatcher restart, network): drop the
			// result; the lease will expire and the job will be retried.
			w.logf("submit job %d: %v", job.ID, err)
		} else if sub.Error != "" {
			w.logf("submit job %d rejected: %s", job.ID, sub.Error)
		}
	}
}

// runContained mirrors RunMany's panic containment: a panicking run
// becomes a submitted failure instead of a dead worker.
func runContained(run func(sim.Config) (*sim.Result, error), cfg sim.Config) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("run panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return run(cfg)
}

func (w *Worker) setRunning(id int64, on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if on {
		w.running[id] = true
	} else {
		delete(w.running, id)
	}
}

// heartbeat extends leases for the jobs currently running and streams the
// worker's workload-cache counters (for the dispatcher's dedup
// accounting) and workpool occupancy (engine saturation).
func (w *Worker) heartbeat() {
	w.mu.Lock()
	ids := make([]int64, 0, len(w.running))
	for id := range w.running {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	var resp okResponse
	if err := w.post("/v1/heartbeat", HeartbeatRequest{
		Worker: w.ID, IDs: ids, Cache: workload.Default.Stats(),
		BudgetInUse: workpool.InUse(), BudgetLimit: workpool.Limit(),
	}, &resp); err != nil {
		w.logf("heartbeat: %v", err)
	}
}

func (w *Worker) post(path string, req, resp any) error {
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := client.Post(w.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, r.StatusCode)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// sleepCtx sleeps or returns false when the context is done.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
