// Package faults is the simulator's seeded, deterministic fault-injection
// layer. The reproduction's whole argument is that opportunistic
// placements turn prediction error into SLO violations; a fault-free
// cluster understates that risk, so this package models the three
// disturbance classes provisioning simulators need to be credible:
//
//   - crash-and-recover failures of VMs and whole PMs (every short-lived
//     job on a failed VM is killed mid-run and must be re-placed);
//   - resident demand surges that shock the allocated-but-unused pool the
//     opportunistic schemes harvest;
//   - transient scheduler/RPC delays that inflate the allocation latency
//     of Figs. 10/14.
//
// All injection is driven by one rand.Rand seeded from Config.Seed and
// advanced in a fixed order (PMs, then VMs, then surges, then delays, each
// in index order), so a run with the same seed replays the exact same
// fault schedule — bit-for-bit, on any machine.
package faults

import "math/rand"

// Config parameterizes fault injection for one run. The zero value
// disables injection entirely (Enabled reports false and the simulator
// takes its fault-free path untouched).
type Config struct {
	// Seed drives the injector's RNG; the simulator XORs the run seed in
	// so the fault schedule varies with the workload seed by default.
	Seed int64

	// VMCrashProb is the per-slot probability that an up VM crashes.
	VMCrashProb float64
	// PMCrashProb is the per-slot probability that a PM fails, taking
	// every VM it hosts down together.
	PMCrashProb float64
	// MeanDowntime is the mean repair time in slots; actual downtimes are
	// drawn uniformly from [1, 2·MeanDowntime−1]. Zero defaults to 25
	// (≈4 minutes of 10-second slots).
	MeanDowntime int

	// SurgeProb is the per-slot probability that an up VM's resident
	// enters a demand surge, shrinking the opportunistic pool there.
	SurgeProb float64
	// SurgeFactor scales resident demand during a surge (jittered ±25 %
	// per event, capped at the reservation). Zero defaults to 1.8.
	SurgeFactor float64
	// SurgeDuration is the surge length in slots. Zero defaults to 12
	// (two prediction windows).
	SurgeDuration int

	// DelayProb is the per-slot probability of a transient scheduler/RPC
	// stall charged to the run's overhead.
	DelayProb float64
	// DelayMicros is the stall cost in microseconds. Zero defaults to
	// 5000 (a control-plane hiccup, not an outage).
	DelayMicros float64

	// MaxRetries bounds how many times an evicted job is re-queued before
	// it is abandoned. Zero defaults to 3.
	MaxRetries int
	// RetryBackoff is the base re-queue delay in slots; the n-th retry of
	// a job waits RetryBackoff·2^(n−1) slots, capped at MaxBackoff. Zero
	// defaults to 2.
	RetryBackoff int
	// MaxBackoff caps the exponential backoff. Zero defaults to 16.
	MaxBackoff int
}

// Enabled reports whether the configuration injects anything at all.
func (c Config) Enabled() bool {
	return c.VMCrashProb > 0 || c.PMCrashProb > 0 || c.SurgeProb > 0 || c.DelayProb > 0
}

// WithDefaults fills the zero-valued knobs with their documented defaults.
func (c Config) WithDefaults() Config {
	if c.MeanDowntime <= 0 {
		c.MeanDowntime = 25
	}
	if c.SurgeFactor <= 0 {
		c.SurgeFactor = 1.8
	}
	if c.SurgeDuration <= 0 {
		c.SurgeDuration = 12
	}
	if c.DelayMicros <= 0 {
		c.DelayMicros = 5000
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 16
	}
	return c
}

// Backoff returns the re-queue delay in slots for a job's n-th retry
// (n counted from 1): RetryBackoff·2^(n−1), capped at MaxBackoff.
func (c Config) Backoff(retry int) int {
	if retry < 1 {
		retry = 1
	}
	d := c.RetryBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= c.MaxBackoff {
			return c.MaxBackoff
		}
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	return d
}

// SlotEvents is everything the injector decided for one slot.
type SlotEvents struct {
	// Crashed lists VMs that went down this slot, in index order.
	Crashed []int
	// Recovered lists VMs that came back up this slot, in index order.
	Recovered []int
	// PMCrashes counts whole-PM failures this slot (their VMs also
	// appear in Crashed).
	PMCrashes int
	// Surge holds the per-VM resident demand multiplier (1 when calm),
	// indexed by VM. Valid until the next Advance call.
	Surge []float64
	// DelayMicros is the transient scheduler/RPC stall to charge this
	// slot (0 when none fired).
	DelayMicros float64
}

// Injector produces the fault schedule for one simulation run. It is not
// safe for concurrent use; each run owns its injector.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	vmToPM []int

	downUntil  []int // per VM: slot at which it recovers; -1 = up
	surgeUntil []int // per VM: last slot (exclusive) of the active surge
	surgeFac   []float64

	ev SlotEvents
}

// NewInjector builds an injector over a cluster topology given as the
// VM-index → PM-index mapping. The config's zero knobs take defaults.
func NewInjector(cfg Config, vmToPM []int) *Injector {
	cfg = cfg.WithDefaults()
	in := &Injector{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0xfa17)),
		vmToPM:     append([]int(nil), vmToPM...),
		downUntil:  make([]int, len(vmToPM)),
		surgeUntil: make([]int, len(vmToPM)),
		surgeFac:   make([]float64, len(vmToPM)),
	}
	for v := range in.downUntil {
		in.downUntil[v] = -1
		in.surgeFac[v] = 1
	}
	in.ev.Surge = in.surgeFac
	return in
}

// Config returns the injector's effective (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Down reports whether VM v is currently failed.
func (in *Injector) Down(v int) bool { return in.downUntil[v] >= 0 }

// numPMs returns the PM count implied by the topology.
func (in *Injector) numPMs() int {
	n := 0
	for _, pm := range in.vmToPM {
		if pm+1 > n {
			n = pm + 1
		}
	}
	return n
}

// Advance rolls the injector to slot t and returns the slot's events. It
// must be called once per slot with strictly increasing t. The returned
// SlotEvents (including Surge) is only valid until the next call.
func (in *Injector) Advance(t int) SlotEvents {
	in.ev.Crashed = in.ev.Crashed[:0]
	in.ev.Recovered = in.ev.Recovered[:0]
	in.ev.PMCrashes = 0
	in.ev.DelayMicros = 0

	// 1. Repairs complete first so a slot's crash draws see the VM up.
	for v := range in.downUntil {
		if in.downUntil[v] >= 0 && in.downUntil[v] <= t {
			in.downUntil[v] = -1
			in.ev.Recovered = append(in.ev.Recovered, v)
		}
	}

	// 2. Whole-PM failures take every hosted VM down together.
	if in.cfg.PMCrashProb > 0 {
		for pm := 0; pm < in.numPMs(); pm++ {
			if in.rng.Float64() >= in.cfg.PMCrashProb {
				continue
			}
			in.ev.PMCrashes++
			dt := in.downtime()
			for v, host := range in.vmToPM {
				if host == pm && in.downUntil[v] < 0 {
					in.crash(v, t+dt)
				}
			}
		}
	}

	// 3. Independent single-VM crashes.
	if in.cfg.VMCrashProb > 0 {
		for v := range in.vmToPM {
			if in.downUntil[v] >= 0 {
				continue
			}
			if in.rng.Float64() < in.cfg.VMCrashProb {
				in.crash(v, t+in.downtime())
			}
		}
	}

	// 4. Resident demand surges on up VMs.
	if in.cfg.SurgeProb > 0 {
		for v := range in.vmToPM {
			if in.surgeUntil[v] > t {
				continue // surge still running
			}
			in.surgeFac[v] = 1
			if in.downUntil[v] >= 0 {
				continue
			}
			if in.rng.Float64() < in.cfg.SurgeProb {
				in.surgeUntil[v] = t + in.cfg.SurgeDuration
				in.surgeFac[v] = in.cfg.SurgeFactor * (0.75 + 0.5*in.rng.Float64())
			}
		}
	}

	// 5. Transient control-plane stall.
	if in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
		in.ev.DelayMicros = in.cfg.DelayMicros
	}
	return in.ev
}

// crash marks VM v down until the given slot and clears any surge there.
func (in *Injector) crash(v, until int) {
	in.downUntil[v] = until
	in.surgeUntil[v] = 0
	in.surgeFac[v] = 1
	in.ev.Crashed = append(in.ev.Crashed, v)
}

// downtime draws a repair time uniformly from [1, 2·MeanDowntime−1], so
// the mean equals MeanDowntime.
func (in *Injector) downtime() int {
	span := 2*in.cfg.MeanDowntime - 1
	if span <= 1 {
		return 1
	}
	return 1 + in.rng.Intn(span)
}
