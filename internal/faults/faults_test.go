package faults

import (
	"reflect"
	"testing"
)

// topo builds a 2-PM × 4-VM topology (VMs 0,1 on PM 0; VMs 2,3 on PM 1).
func topo() []int { return []int{0, 0, 1, 1} }

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	cases := []Config{
		{VMCrashProb: 0.01},
		{PMCrashProb: 0.01},
		{SurgeProb: 0.01},
		{DelayProb: 0.01},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: %+v should be enabled", i, c)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.MeanDowntime != 25 || d.SurgeFactor != 1.8 || d.SurgeDuration != 12 ||
		d.DelayMicros != 5000 || d.MaxRetries != 3 || d.RetryBackoff != 2 || d.MaxBackoff != 16 {
		t.Errorf("defaults wrong: %+v", d)
	}
	// Explicit values survive.
	c := Config{MeanDowntime: 5, MaxRetries: 1}.WithDefaults()
	if c.MeanDowntime != 5 || c.MaxRetries != 1 {
		t.Errorf("explicit knobs overwritten: %+v", c)
	}
}

func TestBackoffExponentialAndCapped(t *testing.T) {
	c := Config{}.WithDefaults() // base 2, cap 16
	want := []int{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := c.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	if got := c.Backoff(0); got != 2 {
		t.Errorf("Backoff(0) = %d, want clamp to first retry", got)
	}
}

func TestAdvanceDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, VMCrashProb: 0.2, PMCrashProb: 0.05,
		SurgeProb: 0.3, DelayProb: 0.4, MeanDowntime: 4}
	type snap struct {
		Crashed, Recovered []int
		PMCrashes          int
		Surge              []float64
		DelayMicros        float64
	}
	record := func() []snap {
		in := NewInjector(cfg, topo())
		var out []snap
		for s := 0; s < 200; s++ {
			ev := in.Advance(s)
			out = append(out, snap{
				Crashed:     append([]int(nil), ev.Crashed...),
				Recovered:   append([]int(nil), ev.Recovered...),
				PMCrashes:   ev.PMCrashes,
				Surge:       append([]float64(nil), ev.Surge...),
				DelayMicros: ev.DelayMicros,
			})
		}
		return out
	}
	a, b := record(), record()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different fault schedules")
	}
	// Different seed → different schedule (with these rates, over 200
	// slots, a collision would be astronomically unlikely).
	cfg.Seed = 8
	if reflect.DeepEqual(a, record()) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	// The schedule actually contains events of every class.
	var crashes, recoveries, surges, delays int
	for _, s := range a {
		crashes += len(s.Crashed)
		recoveries += len(s.Recovered)
		if s.DelayMicros > 0 {
			delays++
		}
		for _, f := range s.Surge {
			if f != 1 {
				surges++
			}
		}
	}
	if crashes == 0 || recoveries == 0 || surges == 0 || delays == 0 {
		t.Errorf("schedule missing event classes: crashes=%d recoveries=%d surges=%d delays=%d",
			crashes, recoveries, surges, delays)
	}
}

func TestDownAndRecovery(t *testing.T) {
	// Force an immediate crash of everything, then let repairs land.
	cfg := Config{Seed: 1, VMCrashProb: 1, MeanDowntime: 3}
	in := NewInjector(cfg, topo())
	ev := in.Advance(0)
	if len(ev.Crashed) != len(topo()) {
		t.Fatalf("crashed %v, want all VMs", ev.Crashed)
	}
	for v := range topo() {
		if !in.Down(v) {
			t.Errorf("VM %d should be down", v)
		}
	}
	// Downtimes are in [1, 2·3−1]; by slot 5 every VM has recovered at
	// least once (and with prob 1 it crashes again the same slot).
	recovered := map[int]bool{}
	for s := 1; s <= 5; s++ {
		for _, v := range in.Advance(s).Recovered {
			recovered[v] = true
		}
	}
	if len(recovered) != len(topo()) {
		t.Errorf("only %d of %d VMs recovered within the downtime bound", len(recovered), len(topo()))
	}
}

func TestPMCrashTakesHostedVMsDown(t *testing.T) {
	cfg := Config{Seed: 1, PMCrashProb: 1, MeanDowntime: 100}
	in := NewInjector(cfg, topo())
	ev := in.Advance(0)
	if ev.PMCrashes != 2 {
		t.Fatalf("PMCrashes = %d, want 2", ev.PMCrashes)
	}
	if len(ev.Crashed) != 4 {
		t.Fatalf("crashed %v, want all hosted VMs", ev.Crashed)
	}
	// Crashed VMs are reported in index order (PM 0's VMs before PM 1's).
	for i := 1; i < len(ev.Crashed); i++ {
		if ev.Crashed[i-1] >= ev.Crashed[i] {
			t.Errorf("crash order not ascending: %v", ev.Crashed)
		}
	}
}

func TestSurgeLifecycle(t *testing.T) {
	cfg := Config{Seed: 3, SurgeProb: 1, SurgeDuration: 2, SurgeFactor: 2}
	in := NewInjector(cfg, topo())
	ev := in.Advance(0)
	for v, f := range ev.Surge {
		// Jitter keeps the factor within ±25 % of SurgeFactor.
		if f < 2*0.75 || f > 2*1.25 {
			t.Errorf("VM %d surge factor %v out of jitter band", v, f)
		}
	}
	first := append([]float64(nil), ev.Surge...)
	// Slot 1: surges still running, factors unchanged.
	ev = in.Advance(1)
	for v, f := range ev.Surge {
		if f != first[v] {
			t.Errorf("VM %d surge factor changed mid-surge: %v → %v", v, first[v], f)
		}
	}
	// Slot 2: old surges expire; with prob 1 fresh ones start (new draws).
	ev = in.Advance(2)
	same := 0
	for v, f := range ev.Surge {
		if f == first[v] {
			same++
		}
	}
	if same == len(first) {
		t.Error("surge factors not redrawn after expiry")
	}
}

func TestCrashClearsSurge(t *testing.T) {
	cfg := Config{Seed: 5, SurgeProb: 1, SurgeDuration: 100, VMCrashProb: 1, MeanDowntime: 50}
	in := NewInjector(cfg, topo())
	ev := in.Advance(0)
	for v, f := range ev.Surge {
		if in.Down(v) && f != 1 {
			t.Errorf("down VM %d still surging with factor %v", v, f)
		}
	}
}
