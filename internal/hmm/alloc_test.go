package hmm

import (
	"math"
	"testing"
)

// Allocation-regression tests: once the scratch is warm, the HMM kernels
// and the symbolizer hot path must not touch the heap. These pin the
// tentpole property of the flattening; the perf suite gates ns/op.

// allocSeries mirrors the predictor's history shape: 120 slots of a noisy
// sine, symbolized over window 6.
func allocSeries() []float64 {
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 50 + 18*math.Sin(float64(i)/5) + float64(i%7)
	}
	return vals
}

func allocObs(t testing.TB, vals []float64) []Symbol {
	means := WindowMeans(vals, 6)
	sym, err := NewSymbolizer(means)
	if err != nil {
		t.Fatalf("NewSymbolizer: %v", err)
	}
	obs := sym.ObserveLevels(vals, 6)
	if len(obs) < 5 {
		t.Fatalf("short obs: %d", len(obs))
	}
	return obs
}

func TestForwardDoesNotAllocate(t *testing.T) {
	model := NewPaperModel(1)
	obs := allocObs(t, allocSeries())
	if _, _, _, err := model.Forward(obs); err != nil {
		t.Fatalf("warm-up Forward: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, _, err := model.Forward(obs); err != nil {
			t.Fatalf("Forward: %v", err)
		}
	}); n != 0 {
		t.Fatalf("Forward allocates %v times per run, want 0", n)
	}
}

func TestBackwardAndGammaDoNotAllocate(t *testing.T) {
	model := NewPaperModel(1)
	obs := allocObs(t, allocSeries())
	_, scale, _, err := model.Forward(obs)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := model.Backward(obs, scale); err != nil {
			t.Fatalf("Backward: %v", err)
		}
	}); n != 0 {
		t.Fatalf("Backward allocates %v times per run, want 0", n)
	}
	if _, err := model.Gamma(obs); err != nil {
		t.Fatalf("warm-up Gamma: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := model.Gamma(obs); err != nil {
			t.Fatalf("Gamma: %v", err)
		}
	}); n != 0 {
		t.Fatalf("Gamma allocates %v times per run, want 0", n)
	}
}

func TestViterbiDoesNotAllocate(t *testing.T) {
	model := NewPaperModel(1)
	obs := allocObs(t, allocSeries())
	if _, _, err := model.Viterbi(obs); err != nil {
		t.Fatalf("warm-up Viterbi: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, err := model.Viterbi(obs); err != nil {
			t.Fatalf("Viterbi: %v", err)
		}
	}); n != 0 {
		t.Fatalf("Viterbi allocates %v times per run, want 0", n)
	}
}

func TestBaumWelchDoesNotAllocate(t *testing.T) {
	model := NewPaperModel(1)
	obs := allocObs(t, allocSeries())
	if _, _, err := model.BaumWelch(obs, 5, 1e-5); err != nil {
		t.Fatalf("warm-up BaumWelch: %v", err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, _, err := model.BaumWelch(obs, 5, 1e-5); err != nil {
			t.Fatalf("BaumWelch: %v", err)
		}
	}); n != 0 {
		t.Fatalf("BaumWelch allocates %v times per run, want 0", n)
	}
}

func TestPredictNextSymbolDoesNotAllocate(t *testing.T) {
	model := NewPaperModel(1)
	if _, _, err := model.PredictNextSymbol(NormalProvisioning); err != nil {
		t.Fatalf("warm-up PredictNextSymbol: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, err := model.PredictNextSymbol(NormalProvisioning); err != nil {
			t.Fatalf("PredictNextSymbol: %v", err)
		}
	}); n != 0 {
		t.Fatalf("PredictNextSymbol allocates %v times per run, want 0", n)
	}
}

func TestSymbolizerHotPathDoesNotAllocate(t *testing.T) {
	vals := allocSeries()
	means := make([]float64, 0, 32)
	obs := make([]Symbol, 0, 32)
	if n := testing.AllocsPerRun(100, func() {
		means = AppendWindowMeans(means[:0], vals, 6)
		sym, err := MakeSymbolizer(means)
		if err != nil {
			t.Fatalf("MakeSymbolizer: %v", err)
		}
		obs = sym.AppendObserveLevels(obs[:0], vals, 6)
		if len(obs) != 20 {
			t.Fatalf("obs length %d, want 20", len(obs))
		}
	}); n != 0 {
		t.Fatalf("symbolizer path allocates %v times per run, want 0", n)
	}
}

func TestAppendObserveDoesNotAllocate(t *testing.T) {
	vals := allocSeries()
	sym, err := MakeSymbolizer(vals)
	if err != nil {
		t.Fatalf("MakeSymbolizer: %v", err)
	}
	obs := make([]Symbol, 0, 32)
	if n := testing.AllocsPerRun(100, func() {
		obs = sym.AppendObserve(obs[:0], vals, 6)
	}); n != 0 {
		t.Fatalf("AppendObserve allocates %v times per run, want 0", n)
	}
}
