package hmm

import (
	"math"
	"math/rand"
	"testing"
)

// This suite pins the flat scratch-based kernels to the original jagged
// implementation (reproduced below verbatim, modulo receiver plumbing).
// Every comparison is for exact equality — the flat kernels preserve the
// jagged accumulation order bit for bit — so fixed-seed figures cannot
// drift. It mirrors dnn/equivalence_test.go from the DNN flattening.

// jaggedModel is the seed implementation's state: per-row allocated
// parameters, fresh matrices on every call.
type jaggedModel struct {
	H, M int
	A    [][]float64
	B    [][]float64
	Pi   []float64
}

func jaggedFrom(m *Model) *jaggedModel {
	j := &jaggedModel{H: m.H, M: m.M, Pi: append([]float64(nil), m.Pi...)}
	j.A = make([][]float64, len(m.A))
	for i, row := range m.A {
		j.A[i] = append([]float64(nil), row...)
	}
	j.B = make([][]float64, len(m.B))
	for i, row := range m.B {
		j.B[i] = append([]float64(nil), row...)
	}
	return j
}

func (m *jaggedModel) forward(obs []Symbol) (alpha [][]float64, scale []float64, logProb float64) {
	T := len(obs)
	alpha = make([][]float64, T)
	scale = make([]float64, T)
	alpha[0] = make([]float64, m.H)
	for i := 0; i < m.H; i++ {
		alpha[0][i] = m.Pi[i] * m.B[i][obs[0]]
		scale[0] += alpha[0][i]
	}
	if scale[0] == 0 {
		scale[0] = math.SmallestNonzeroFloat64
	}
	for i := range alpha[0] {
		alpha[0][i] /= scale[0]
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, m.H)
		for j := 0; j < m.H; j++ {
			var sum float64
			for i := 0; i < m.H; i++ {
				sum += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = sum * m.B[j][obs[t]]
			scale[t] += alpha[t][j]
		}
		if scale[t] == 0 {
			scale[t] = math.SmallestNonzeroFloat64
		}
		for j := range alpha[t] {
			alpha[t][j] /= scale[t]
		}
	}
	for _, c := range scale {
		logProb += math.Log(c)
	}
	return alpha, scale, logProb
}

func (m *jaggedModel) backward(obs []Symbol, scale []float64) [][]float64 {
	T := len(obs)
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, m.H)
	for i := range beta[T-1] {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, m.H)
		for i := 0; i < m.H; i++ {
			var sum float64
			for j := 0; j < m.H; j++ {
				sum += m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = sum / scale[t]
		}
	}
	return beta
}

func (m *jaggedModel) gammaMat(obs []Symbol) [][]float64 {
	alpha, scale, _ := m.forward(obs)
	beta := m.backward(obs, scale)
	T := len(obs)
	gamma := make([][]float64, T)
	for t := 0; t < T; t++ {
		gamma[t] = make([]float64, m.H)
		var norm float64
		for i := 0; i < m.H; i++ {
			gamma[t][i] = alpha[t][i] * beta[t][i]
			norm += gamma[t][i]
		}
		if norm > 0 {
			for i := range gamma[t] {
				gamma[t][i] /= norm
			}
		}
	}
	return gamma
}

func jaggedLogMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, p := range row {
			out[i][j] = safeLog(p)
		}
	}
	return out
}

func (m *jaggedModel) viterbi(obs []Symbol) ([]State, float64) {
	T := len(obs)
	logA := jaggedLogMatrix(m.A)
	logB := jaggedLogMatrix(m.B)
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, m.H)
	psi[0] = make([]int, m.H)
	for i := 0; i < m.H; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + logB[i][obs[0]]
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, m.H)
		psi[t] = make([]int, m.H)
		for j := 0; j < m.H; j++ {
			best, bestI := math.Inf(-1), 0
			for i := 0; i < m.H; i++ {
				v := delta[t-1][i] + logA[i][j]
				if v > best {
					best, bestI = v, i
				}
			}
			delta[t][j] = best + logB[j][obs[t]]
			psi[t][j] = bestI
		}
	}
	best, bestI := math.Inf(-1), 0
	for i := 0; i < m.H; i++ {
		if delta[T-1][i] > best {
			best, bestI = delta[T-1][i], i
		}
	}
	path := make([]State, T)
	path[T-1] = State(bestI)
	for t := T - 2; t >= 0; t-- {
		path[t] = State(psi[t+1][path[t+1]])
	}
	return path, best
}

func (m *jaggedModel) renormalize() {
	const floor = 1e-9
	fix := func(row []float64) {
		var sum float64
		for i := range row {
			if row[i] < floor {
				row[i] = floor
			}
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	for i := range m.A {
		fix(m.A[i])
	}
	for i := range m.B {
		fix(m.B[i])
	}
	fix(m.Pi)
}

func (m *jaggedModel) baumWelch(obs []Symbol, maxIters int, tol float64) (float64, int) {
	if maxIters <= 0 {
		maxIters = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	T := len(obs)
	prevLog := math.Inf(-1)
	var logProb float64
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		alpha, scale, lp := m.forward(obs)
		logProb = lp
		beta := m.backward(obs, scale)
		gamma := make([][]float64, T)
		xi := make([][][]float64, T-1)
		for t := 0; t < T; t++ {
			gamma[t] = make([]float64, m.H)
			if t < T-1 {
				xi[t] = make([][]float64, m.H)
				var norm float64
				for i := 0; i < m.H; i++ {
					xi[t][i] = make([]float64, m.H)
					for j := 0; j < m.H; j++ {
						xi[t][i][j] = alpha[t][i] * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
						norm += xi[t][i][j]
					}
				}
				if norm > 0 {
					for i := 0; i < m.H; i++ {
						for j := 0; j < m.H; j++ {
							xi[t][i][j] /= norm
							gamma[t][i] += xi[t][i][j]
						}
					}
				}
			} else {
				var norm float64
				for i := 0; i < m.H; i++ {
					gamma[t][i] = alpha[t][i] * beta[t][i]
					norm += gamma[t][i]
				}
				if norm > 0 {
					for i := range gamma[t] {
						gamma[t][i] /= norm
					}
				}
			}
		}
		for i := 0; i < m.H; i++ {
			m.Pi[i] = gamma[0][i]
		}
		for i := 0; i < m.H; i++ {
			var denom float64
			for t := 0; t < T-1; t++ {
				denom += gamma[t][i]
			}
			for j := 0; j < m.H; j++ {
				var num float64
				for t := 0; t < T-1; t++ {
					num += xi[t][i][j]
				}
				if denom > 0 {
					m.A[i][j] = num / denom
				}
			}
		}
		for j := 0; j < m.H; j++ {
			var denom float64
			for t := 0; t < T; t++ {
				denom += gamma[t][j]
			}
			for k := 0; k < m.M; k++ {
				var num float64
				for t := 0; t < T; t++ {
					if int(obs[t]) == k {
						num += gamma[t][j]
					}
				}
				if denom > 0 {
					m.B[j][k] = num / denom
				}
			}
		}
		m.renormalize()
		if logProb-prevLog < tol && iter > 0 {
			break
		}
		prevLog = logProb
	}
	return logProb, iters
}

func (m *jaggedModel) predictNextSymbol(lastState State) (Symbol, []float64) {
	dist := make([]float64, m.M)
	for j := 0; j < m.H; j++ {
		p := m.A[lastState][j]
		for k := 0; k < m.M; k++ {
			dist[k] += p * m.B[j][k]
		}
	}
	best := 0
	for k := 1; k < m.M; k++ {
		if dist[k] > dist[best] {
			best = k
		}
	}
	return Symbol(best), dist
}

// randomCase draws a random model and observation sequence.
func randomCase(rng *rand.Rand) (*Model, []Symbol) {
	h := 2 + rng.Intn(3)
	mm := 2 + rng.Intn(3)
	model, err := New(h, mm, rng.Int63())
	if err != nil {
		panic(err)
	}
	T := 1 + rng.Intn(40)
	obs := make([]Symbol, T)
	for t := range obs {
		obs[t] = Symbol(rng.Intn(mm))
	}
	return model, obs
}

func TestFlatForwardBackwardMatchesJagged(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		model, obs := randomCase(rng)
		ref := jaggedFrom(model)

		alpha, scale, lp, err := model.Forward(obs)
		if err != nil {
			t.Fatalf("trial %d: Forward: %v", trial, err)
		}
		wantAlpha, wantScale, wantLP := ref.forward(obs)
		if lp != wantLP {
			t.Fatalf("trial %d: logProb %v != %v", trial, lp, wantLP)
		}
		for tt := range wantAlpha {
			if scale[tt] != wantScale[tt] {
				t.Fatalf("trial %d: scale[%d] %v != %v", trial, tt, scale[tt], wantScale[tt])
			}
			for i := range wantAlpha[tt] {
				if alpha[tt][i] != wantAlpha[tt][i] {
					t.Fatalf("trial %d: alpha[%d][%d] %v != %v", trial, tt, i, alpha[tt][i], wantAlpha[tt][i])
				}
			}
		}

		beta, err := model.Backward(obs, scale)
		if err != nil {
			t.Fatalf("trial %d: Backward: %v", trial, err)
		}
		wantBeta := ref.backward(obs, wantScale)
		for tt := range wantBeta {
			for i := range wantBeta[tt] {
				if beta[tt][i] != wantBeta[tt][i] {
					t.Fatalf("trial %d: beta[%d][%d] %v != %v", trial, tt, i, beta[tt][i], wantBeta[tt][i])
				}
			}
		}
	}
}

func TestFlatGammaMatchesJagged(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		model, obs := randomCase(rng)
		ref := jaggedFrom(model)
		gamma, err := model.Gamma(obs)
		if err != nil {
			t.Fatalf("trial %d: Gamma: %v", trial, err)
		}
		want := ref.gammaMat(obs)
		for tt := range want {
			for i := range want[tt] {
				if gamma[tt][i] != want[tt][i] {
					t.Fatalf("trial %d: gamma[%d][%d] %v != %v", trial, tt, i, gamma[tt][i], want[tt][i])
				}
			}
		}
	}
}

func TestFlatViterbiMatchesJagged(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		model, obs := randomCase(rng)
		ref := jaggedFrom(model)
		path, logP, err := model.Viterbi(obs)
		if err != nil {
			t.Fatalf("trial %d: Viterbi: %v", trial, err)
		}
		wantPath, wantLogP := ref.viterbi(obs)
		if logP != wantLogP {
			t.Fatalf("trial %d: logP %v != %v", trial, logP, wantLogP)
		}
		for tt := range wantPath {
			if path[tt] != wantPath[tt] {
				t.Fatalf("trial %d: path[%d] %v != %v", trial, tt, path[tt], wantPath[tt])
			}
		}
	}
}

func TestFlatBaumWelchMatchesJagged(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		model, obs := randomCase(rng)
		if len(obs) < 2 {
			obs = append(obs, obs[0])
		}
		ref := jaggedFrom(model)

		lp, iters, err := model.BaumWelch(obs, 5, 1e-5)
		if err != nil {
			t.Fatalf("trial %d: BaumWelch: %v", trial, err)
		}
		wantLP, wantIters := ref.baumWelch(obs, 5, 1e-5)
		if lp != wantLP || iters != wantIters {
			t.Fatalf("trial %d: (logProb, iters) = (%v, %d), want (%v, %d)", trial, lp, iters, wantLP, wantIters)
		}
		for i := range ref.A {
			for j := range ref.A[i] {
				if model.A[i][j] != ref.A[i][j] {
					t.Fatalf("trial %d: A[%d][%d] %v != %v", trial, i, j, model.A[i][j], ref.A[i][j])
				}
			}
		}
		for i := range ref.B {
			for k := range ref.B[i] {
				if model.B[i][k] != ref.B[i][k] {
					t.Fatalf("trial %d: B[%d][%d] %v != %v", trial, i, k, model.B[i][k], ref.B[i][k])
				}
			}
		}
		for i := range ref.Pi {
			if model.Pi[i] != ref.Pi[i] {
				t.Fatalf("trial %d: Pi[%d] %v != %v", trial, i, model.Pi[i], ref.Pi[i])
			}
		}
	}
}

func TestFlatPredictNextSymbolMatchesJagged(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 200; trial++ {
		model, _ := randomCase(rng)
		ref := jaggedFrom(model)
		for s := 0; s < model.H; s++ {
			sym, dist, err := model.PredictNextSymbol(State(s))
			if err != nil {
				t.Fatalf("trial %d: PredictNextSymbol: %v", trial, err)
			}
			wantSym, wantDist := ref.predictNextSymbol(State(s))
			if sym != wantSym {
				t.Fatalf("trial %d state %d: symbol %v != %v", trial, s, sym, wantSym)
			}
			for k := range wantDist {
				if dist[k] != wantDist[k] {
					t.Fatalf("trial %d state %d: dist[%d] %v != %v", trial, s, k, dist[k], wantDist[k])
				}
			}
		}
	}
}

// TestScratchReuseAcrossLengths interleaves kernel calls with growing and
// shrinking sequence lengths on one model, checking no stale scratch
// content leaks into results.
func TestScratchReuseAcrossLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	model := NewPaperModel(7)
	lengths := []int{40, 3, 17, 1, 25, 2, 40, 8}
	for round, T := range lengths {
		obs := make([]Symbol, T)
		for i := range obs {
			obs[i] = Symbol(rng.Intn(model.M))
		}
		ref := jaggedFrom(model)

		alpha, scale, lp, err := model.Forward(obs)
		if err != nil {
			t.Fatalf("round %d: Forward: %v", round, err)
		}
		wantAlpha, wantScale, wantLP := ref.forward(obs)
		if lp != wantLP {
			t.Fatalf("round %d (T=%d): logProb %v != %v", round, T, lp, wantLP)
		}
		if len(alpha) != T || len(scale) != T {
			t.Fatalf("round %d: got %d alpha rows, %d scales, want %d", round, len(alpha), len(scale), T)
		}
		for tt := range wantAlpha {
			for i := range wantAlpha[tt] {
				if alpha[tt][i] != wantAlpha[tt][i] {
					t.Fatalf("round %d (T=%d): alpha[%d][%d] mismatch", round, T, tt, i)
				}
			}
			if scale[tt] != wantScale[tt] {
				t.Fatalf("round %d (T=%d): scale[%d] mismatch", round, T, tt)
			}
		}

		path, logP, err := model.Viterbi(obs)
		if err != nil {
			t.Fatalf("round %d: Viterbi: %v", round, err)
		}
		wantPath, wantLogP := ref.viterbi(obs)
		if logP != wantLogP || len(path) != T {
			t.Fatalf("round %d (T=%d): viterbi logP %v != %v (len %d)", round, T, logP, wantLogP, len(path))
		}
		for tt := range wantPath {
			if path[tt] != wantPath[tt] {
				t.Fatalf("round %d (T=%d): path[%d] mismatch", round, T, tt)
			}
		}

		if T >= 2 && round%2 == 1 {
			lp2, iters, err := model.BaumWelch(obs, 3, 1e-5)
			if err != nil {
				t.Fatalf("round %d: BaumWelch: %v", round, err)
			}
			wantLP2, wantIters := ref.baumWelch(obs, 3, 1e-5)
			if lp2 != wantLP2 || iters != wantIters {
				t.Fatalf("round %d (T=%d): BW (%v,%d) != (%v,%d)", round, T, lp2, iters, wantLP2, wantIters)
			}
			for i := range ref.A {
				for j := range ref.A[i] {
					if model.A[i][j] != ref.A[i][j] {
						t.Fatalf("round %d: post-BW A[%d][%d] mismatch", round, i, j)
					}
				}
			}
		}
	}
}

// TestIntoVariantsMatchModelOwnedScratch runs the *Into kernels on a
// caller-supplied scratch against the model-owned path.
func TestIntoVariantsMatchModelOwnedScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		model, obs := randomCase(rng)
		clone := jaggedFrom(model)
		other := &Model{H: model.H, M: model.M, A: clone.A, B: clone.B, Pi: clone.Pi}
		scr := NewScratch()

		path1, lp1, err1 := model.Viterbi(obs)
		path2, lp2, err2 := other.ViterbiInto(scr, obs)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: err mismatch %v vs %v", trial, err1, err2)
		}
		if lp1 != lp2 {
			t.Fatalf("trial %d: viterbi logP %v != %v", trial, lp1, lp2)
		}
		for i := range path1 {
			if path1[i] != path2[i] {
				t.Fatalf("trial %d: path[%d] mismatch", trial, i)
			}
		}

		_, _, lpA, _ := model.Forward(obs)
		_, _, lpB, _ := other.ForwardInto(scr, obs)
		if lpA != lpB {
			t.Fatalf("trial %d: forward logProb %v != %v", trial, lpA, lpB)
		}
	}
}
