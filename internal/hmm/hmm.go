// Package hmm implements the hidden Markov model substrate of the paper's
// Section III-A-1b: an H = 3 state model (over-provisioning OP,
// normal-provisioning NP, under-provisioning UP) emitting M = 3 observation
// symbols (peak, center, valley of the unused-resource fluctuation), with
// scaled forward–backward (Eqs. 12–15), Viterbi decoding (Eq. 16),
// Baum–Welch parameter re-estimation, and next-observation prediction
// (Eq. 17).
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Symbol is an observation symbol. The paper's symbols 1, 2, 3 map to
// Peak, Center, Valley.
type Symbol int

// Observation symbols (paper Section III-A-1b).
const (
	Peak Symbol = iota
	Center
	Valley

	// NumSymbols is M = 3 (Table II).
	NumSymbols = 3
)

// String names the symbol.
func (s Symbol) String() string {
	switch s {
	case Peak:
		return "peak"
	case Center:
		return "center"
	case Valley:
		return "valley"
	default:
		return fmt.Sprintf("Symbol(%d)", int(s))
	}
}

// State is a hidden provisioning state.
type State int

// Hidden states (paper Fig. 3).
const (
	OverProvisioning State = iota
	NormalProvisioning
	UnderProvisioning

	// NumStates is H = 3 (Table II).
	NumStates = 3
)

// String names the state.
func (s State) String() string {
	switch s {
	case OverProvisioning:
		return "OP"
	case NormalProvisioning:
		return "NP"
	case UnderProvisioning:
		return "UP"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Model is a discrete HMM λ = (A, B, π) (Eqs. 9–11).
type Model struct {
	H, M int
	A    [][]float64 // A[i][j] = P(q_{t+1}=S_j | q_t=S_i)
	B    [][]float64 // B[j][k] = P(O_t=k | q_t=S_j)
	Pi   []float64   // Pi[i] = P(q_1=S_i)
}

// New returns a model with slightly-perturbed uniform parameters; the
// perturbation (deterministic in seed) breaks the symmetry Baum–Welch
// cannot escape from exactly uniform starts.
func New(h, m int, seed int64) (*Model, error) {
	if h < 1 || m < 1 {
		return nil, fmt.Errorf("hmm: invalid sizes H=%d M=%d", h, m)
	}
	rng := rand.New(rand.NewSource(seed))
	model := &Model{H: h, M: m}
	model.A = randomStochastic(rng, h, h)
	model.B = randomStochastic(rng, h, m)
	model.Pi = randomStochastic(rng, 1, h)[0]
	return model, nil
}

// NewPaperModel returns the paper's 3×3 model (H = 3 states, M = 3
// symbols, Table II).
func NewPaperModel(seed int64) *Model {
	m, err := New(NumStates, NumSymbols, seed)
	if err != nil {
		panic("hmm: paper model construction cannot fail: " + err.Error())
	}
	return m
}

func randomStochastic(rng *rand.Rand, rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
		var sum float64
		for j := range out[i] {
			out[i][j] = 1 + 0.2*rng.Float64()
			sum += out[i][j]
		}
		for j := range out[i] {
			out[i][j] /= sum
		}
	}
	return out
}

// Validate checks that all parameter rows are stochastic.
func (m *Model) Validate() error {
	if len(m.A) != m.H || len(m.B) != m.H || len(m.Pi) != m.H {
		return errors.New("hmm: parameter shapes do not match H")
	}
	check := func(row []float64, what string) error {
		var sum float64
		for _, p := range row {
			if p < -1e-12 || math.IsNaN(p) {
				return fmt.Errorf("hmm: %s has invalid probability %v", what, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("hmm: %s sums to %v", what, sum)
		}
		return nil
	}
	for i, row := range m.A {
		if len(row) != m.H {
			return fmt.Errorf("hmm: A row %d has %d cols", i, len(row))
		}
		if err := check(row, fmt.Sprintf("A[%d]", i)); err != nil {
			return err
		}
	}
	for i, row := range m.B {
		if len(row) != m.M {
			return fmt.Errorf("hmm: B row %d has %d cols", i, len(row))
		}
		if err := check(row, fmt.Sprintf("B[%d]", i)); err != nil {
			return err
		}
	}
	return check(m.Pi, "Pi")
}

func (m *Model) checkObs(obs []Symbol) error {
	if len(obs) == 0 {
		return errors.New("hmm: empty observation sequence")
	}
	for t, o := range obs {
		if int(o) < 0 || int(o) >= m.M {
			return fmt.Errorf("hmm: observation %d at t=%d outside [0,%d)", o, t, m.M)
		}
	}
	return nil
}

// Forward computes the scaled forward variables α̂ (Eq. 14) and returns
// them with the per-step scale factors and the sequence log-likelihood
// log P(O|λ).
func (m *Model) Forward(obs []Symbol) (alpha [][]float64, scale []float64, logProb float64, err error) {
	if err := m.checkObs(obs); err != nil {
		return nil, nil, 0, err
	}
	T := len(obs)
	alpha = make([][]float64, T)
	scale = make([]float64, T)
	alpha[0] = make([]float64, m.H)
	for i := 0; i < m.H; i++ {
		alpha[0][i] = m.Pi[i] * m.B[i][obs[0]]
		scale[0] += alpha[0][i]
	}
	if scale[0] == 0 {
		scale[0] = math.SmallestNonzeroFloat64
	}
	for i := range alpha[0] {
		alpha[0][i] /= scale[0]
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, m.H)
		for j := 0; j < m.H; j++ {
			var sum float64
			for i := 0; i < m.H; i++ {
				sum += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = sum * m.B[j][obs[t]]
			scale[t] += alpha[t][j]
		}
		if scale[t] == 0 {
			scale[t] = math.SmallestNonzeroFloat64
		}
		for j := range alpha[t] {
			alpha[t][j] /= scale[t]
		}
	}
	for _, c := range scale {
		logProb += math.Log(c)
	}
	return alpha, scale, logProb, nil
}

// Backward computes the scaled backward variables β̂ (Eq. 15) using the
// scale factors produced by Forward on the same sequence.
func (m *Model) Backward(obs []Symbol, scale []float64) ([][]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	T := len(obs)
	if len(scale) != T {
		return nil, fmt.Errorf("hmm: scale length %d, want %d", len(scale), T)
	}
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, m.H)
	for i := range beta[T-1] {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, m.H)
		for i := 0; i < m.H; i++ {
			var sum float64
			for j := 0; j < m.H; j++ {
				sum += m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = sum / scale[t]
		}
	}
	return beta, nil
}

// Gamma computes γ_t(i) = P(q_t = S_i | O, λ) (Eqs. 12–13) for all t.
func (m *Model) Gamma(obs []Symbol) ([][]float64, error) {
	alpha, scale, _, err := m.Forward(obs)
	if err != nil {
		return nil, err
	}
	beta, err := m.Backward(obs, scale)
	if err != nil {
		return nil, err
	}
	T := len(obs)
	gamma := make([][]float64, T)
	for t := 0; t < T; t++ {
		gamma[t] = make([]float64, m.H)
		var norm float64
		for i := 0; i < m.H; i++ {
			gamma[t][i] = alpha[t][i] * beta[t][i]
			norm += gamma[t][i]
		}
		if norm > 0 {
			for i := range gamma[t] {
				gamma[t][i] /= norm
			}
		}
	}
	return gamma, nil
}

// MostLikelyStates solves Eq. 16: the individually most likely state at
// each time, argmax_i γ_t(i).
func (m *Model) MostLikelyStates(obs []Symbol) ([]State, error) {
	gamma, err := m.Gamma(obs)
	if err != nil {
		return nil, err
	}
	path := make([]State, len(obs))
	for t, g := range gamma {
		best := 0
		for i := 1; i < m.H; i++ {
			if g[i] > g[best] {
				best = i
			}
		}
		path[t] = State(best)
	}
	return path, nil
}

// Viterbi returns the single best state sequence Q* maximizing P(Q, O|λ)
// and its log probability. The paper uses Viterbi "to find the single best
// state sequence (path)".
func (m *Model) Viterbi(obs []Symbol) ([]State, float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, 0, err
	}
	T := len(obs)
	logA := logMatrix(m.A)
	logB := logMatrix(m.B)
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, m.H)
	psi[0] = make([]int, m.H)
	for i := 0; i < m.H; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + logB[i][obs[0]]
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, m.H)
		psi[t] = make([]int, m.H)
		for j := 0; j < m.H; j++ {
			best, bestI := math.Inf(-1), 0
			for i := 0; i < m.H; i++ {
				v := delta[t-1][i] + logA[i][j]
				if v > best {
					best, bestI = v, i
				}
			}
			delta[t][j] = best + logB[j][obs[t]]
			psi[t][j] = bestI
		}
	}
	best, bestI := math.Inf(-1), 0
	for i := 0; i < m.H; i++ {
		if delta[T-1][i] > best {
			best, bestI = delta[T-1][i], i
		}
	}
	path := make([]State, T)
	path[T-1] = State(bestI)
	for t := T - 2; t >= 0; t-- {
		path[t] = State(psi[t+1][path[t+1]])
	}
	return path, best, nil
}

func safeLog(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

func logMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, p := range row {
			out[i][j] = safeLog(p)
		}
	}
	return out
}

// BaumWelch re-estimates (A, B, π) from the observation sequence using the
// method of Stamp's tutorial (the paper's reference [30]): iterate
// expectation (γ, ξ) and maximization until the log-likelihood improvement
// drops below tol or maxIters is reached. It returns the final
// log-likelihood and the number of iterations run.
func (m *Model) BaumWelch(obs []Symbol, maxIters int, tol float64) (float64, int, error) {
	if err := m.checkObs(obs); err != nil {
		return 0, 0, err
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	T := len(obs)
	prevLog := math.Inf(-1)
	var logProb float64
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		alpha, scale, lp, err := m.Forward(obs)
		if err != nil {
			return 0, iters, err
		}
		logProb = lp
		beta, err := m.Backward(obs, scale)
		if err != nil {
			return 0, iters, err
		}
		// γ and ξ accumulators.
		gamma := make([][]float64, T)
		xi := make([][][]float64, T-1)
		for t := 0; t < T; t++ {
			gamma[t] = make([]float64, m.H)
			if t < T-1 {
				xi[t] = make([][]float64, m.H)
				var norm float64
				for i := 0; i < m.H; i++ {
					xi[t][i] = make([]float64, m.H)
					for j := 0; j < m.H; j++ {
						xi[t][i][j] = alpha[t][i] * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
						norm += xi[t][i][j]
					}
				}
				if norm > 0 {
					for i := 0; i < m.H; i++ {
						for j := 0; j < m.H; j++ {
							xi[t][i][j] /= norm
							gamma[t][i] += xi[t][i][j]
						}
					}
				}
			} else {
				var norm float64
				for i := 0; i < m.H; i++ {
					gamma[t][i] = alpha[t][i] * beta[t][i]
					norm += gamma[t][i]
				}
				if norm > 0 {
					for i := range gamma[t] {
						gamma[t][i] /= norm
					}
				}
			}
		}
		// M-step.
		for i := 0; i < m.H; i++ {
			m.Pi[i] = gamma[0][i]
		}
		for i := 0; i < m.H; i++ {
			var denom float64
			for t := 0; t < T-1; t++ {
				denom += gamma[t][i]
			}
			for j := 0; j < m.H; j++ {
				var num float64
				for t := 0; t < T-1; t++ {
					num += xi[t][i][j]
				}
				if denom > 0 {
					m.A[i][j] = num / denom
				}
			}
		}
		for j := 0; j < m.H; j++ {
			var denom float64
			for t := 0; t < T; t++ {
				denom += gamma[t][j]
			}
			for k := 0; k < m.M; k++ {
				var num float64
				for t := 0; t < T; t++ {
					if int(obs[t]) == k {
						num += gamma[t][j]
					}
				}
				if denom > 0 {
					m.B[j][k] = num / denom
				}
			}
		}
		m.renormalize()
		if logProb-prevLog < tol && iter > 0 {
			break
		}
		prevLog = logProb
	}
	return logProb, iters, nil
}

// renormalize nudges every row back to exactly stochastic after float
// drift, flooring probabilities at a tiny epsilon so no transition or
// emission becomes impossible (which would wedge Viterbi on unseen data).
func (m *Model) renormalize() {
	const floor = 1e-9
	fix := func(row []float64) {
		var sum float64
		for i := range row {
			if row[i] < floor {
				row[i] = floor
			}
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	for i := range m.A {
		fix(m.A[i])
	}
	for i := range m.B {
		fix(m.B[i])
	}
	fix(m.Pi)
}

// PredictNextSymbol implements Eq. 17: given the final Viterbi state q*_T,
// the distribution of the next observation is
// E[P_{T+1}(k)] = Σ_j P(q_{T+1}=S_j | q_T=q*_T) · b_j(k); the predicted
// symbol is the argmax. It returns the symbol and the full distribution.
func (m *Model) PredictNextSymbol(lastState State) (Symbol, []float64, error) {
	if int(lastState) < 0 || int(lastState) >= m.H {
		return 0, nil, fmt.Errorf("hmm: state %d outside [0,%d)", lastState, m.H)
	}
	dist := make([]float64, m.M)
	for j := 0; j < m.H; j++ {
		p := m.A[lastState][j]
		for k := 0; k < m.M; k++ {
			dist[k] += p * m.B[j][k]
		}
	}
	best := 0
	for k := 1; k < m.M; k++ {
		if dist[k] > dist[best] {
			best = k
		}
	}
	return Symbol(best), dist, nil
}

// PredictNext fits nothing; it decodes the observation sequence with
// Viterbi and applies Eq. 17 from the final state. It is the one-call
// prediction path the CORP predictor uses each window.
func (m *Model) PredictNext(obs []Symbol) (Symbol, error) {
	path, _, err := m.Viterbi(obs)
	if err != nil {
		return 0, err
	}
	sym, _, err := m.PredictNextSymbol(path[len(path)-1])
	return sym, err
}
