// Package hmm implements the hidden Markov model substrate of the paper's
// Section III-A-1b: an H = 3 state model (over-provisioning OP,
// normal-provisioning NP, under-provisioning UP) emitting M = 3 observation
// symbols (peak, center, valley of the unused-resource fluctuation), with
// scaled forward–backward (Eqs. 12–15), Viterbi decoding (Eq. 16),
// Baum–Welch parameter re-estimation, and next-observation prediction
// (Eq. 17).
//
// The kernels run over contiguous row-major slabs held in a reusable
// Scratch, so in steady state (once the scratch has grown to the longest
// observation sequence seen) Forward, Backward, Gamma, Viterbi, BaumWelch
// and PredictNextSymbol perform no heap allocations. Every kernel
// preserves the floating-point accumulation order of the original jagged
// implementation exactly — see equivalence_test.go — so all figures pinned
// to fixed seeds are bit-identical to the seed code.
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Symbol is an observation symbol. The paper's symbols 1, 2, 3 map to
// Peak, Center, Valley.
type Symbol int

// Observation symbols (paper Section III-A-1b).
const (
	Peak Symbol = iota
	Center
	Valley

	// NumSymbols is M = 3 (Table II).
	NumSymbols = 3
)

// String names the symbol.
func (s Symbol) String() string {
	switch s {
	case Peak:
		return "peak"
	case Center:
		return "center"
	case Valley:
		return "valley"
	default:
		return fmt.Sprintf("Symbol(%d)", int(s))
	}
}

// State is a hidden provisioning state.
type State int

// Hidden states (paper Fig. 3).
const (
	OverProvisioning State = iota
	NormalProvisioning
	UnderProvisioning

	// NumStates is H = 3 (Table II).
	NumStates = 3
)

// String names the state.
func (s State) String() string {
	switch s {
	case OverProvisioning:
		return "OP"
	case NormalProvisioning:
		return "NP"
	case UnderProvisioning:
		return "UP"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Model is a discrete HMM λ = (A, B, π) (Eqs. 9–11). The exported
// parameter rows stay addressable as jagged slices for construction,
// inspection and persistence; models built by New and LoadModel back them
// with one contiguous slab per matrix. The compute kernels pack the
// parameters into flat row-major scratch slabs at entry, so direct struct
// literals (handy in tests) run through the same code path.
//
// Model methods reuse a model-owned Scratch and are therefore not safe for
// concurrent use; concurrent readers of a shared, read-only model must use
// the *Into variants with caller-supplied scratch.
type Model struct {
	H, M int
	A    [][]float64 // A[i][j] = P(q_{t+1}=S_j | q_t=S_i)
	B    [][]float64 // B[j][k] = P(O_t=k | q_t=S_j)
	Pi   []float64   // Pi[i] = P(q_1=S_i)

	scr *Scratch // lazily created; backs the non-Into convenience methods
}

// New returns a model with slightly-perturbed uniform parameters; the
// perturbation (deterministic in seed) breaks the symmetry Baum–Welch
// cannot escape from exactly uniform starts.
func New(h, m int, seed int64) (*Model, error) {
	if h < 1 || m < 1 {
		return nil, fmt.Errorf("hmm: invalid sizes H=%d M=%d", h, m)
	}
	rng := rand.New(rand.NewSource(seed))
	model := &Model{H: h, M: m}
	model.A = randomStochastic(rng, h, h)
	model.B = randomStochastic(rng, h, m)
	model.Pi = randomStochastic(rng, 1, h)[0]
	return model, nil
}

// NewPaperModel returns the paper's 3×3 model (H = 3 states, M = 3
// symbols, Table II).
func NewPaperModel(seed int64) *Model {
	m, err := New(NumStates, NumSymbols, seed)
	if err != nil {
		panic("hmm: paper model construction cannot fail: " + err.Error())
	}
	return m
}

// randomStochastic draws rows×cols stochastic rows backed by a single
// contiguous slab. The RNG consumption order matches the seed
// implementation (row-major), so fixed-seed models are unchanged.
func randomStochastic(rng *rand.Rand, rows, cols int) [][]float64 {
	slab := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = slab[i*cols : (i+1)*cols : (i+1)*cols]
		var sum float64
		for j := range out[i] {
			out[i][j] = 1 + 0.2*rng.Float64()
			sum += out[i][j]
		}
		for j := range out[i] {
			out[i][j] /= sum
		}
	}
	return out
}

// Validate checks that all parameter rows are stochastic.
func (m *Model) Validate() error {
	if len(m.A) != m.H || len(m.B) != m.H || len(m.Pi) != m.H {
		return errors.New("hmm: parameter shapes do not match H")
	}
	check := func(row []float64, what string) error {
		var sum float64
		for _, p := range row {
			if p < -1e-12 || math.IsNaN(p) {
				return fmt.Errorf("hmm: %s has invalid probability %v", what, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("hmm: %s sums to %v", what, sum)
		}
		return nil
	}
	for i, row := range m.A {
		if len(row) != m.H {
			return fmt.Errorf("hmm: A row %d has %d cols", i, len(row))
		}
		if err := check(row, fmt.Sprintf("A[%d]", i)); err != nil {
			return err
		}
	}
	for i, row := range m.B {
		if len(row) != m.M {
			return fmt.Errorf("hmm: B row %d has %d cols", i, len(row))
		}
		if err := check(row, fmt.Sprintf("B[%d]", i)); err != nil {
			return err
		}
	}
	return check(m.Pi, "Pi")
}

func (m *Model) checkObs(obs []Symbol) error {
	if len(obs) == 0 {
		return errors.New("hmm: empty observation sequence")
	}
	for t, o := range obs {
		if int(o) < 0 || int(o) >= m.M {
			return fmt.Errorf("hmm: observation %d at t=%d outside [0,%d)", o, t, m.M)
		}
	}
	return nil
}

// Scratch holds every buffer the HMM kernels need: flat row-major
// parameter slabs packed at kernel entry, the α/β/γ/ξ recursion slabs,
// the Viterbi trellis, and the row-header views the jagged-shaped return
// values alias into. A zero Scratch is ready to use; buffers grow to the
// largest (H, M, T) seen and are reused thereafter, at which point every
// kernel is allocation-free.
//
// Slices returned by kernels running on a Scratch alias its buffers: they
// are valid until the next kernel call on the same Scratch.
type Scratch struct {
	a, b []float64 // packed parameters: H×H and H×M row-major
	pi   []float64

	logA, logB []float64 // per-call logs for Viterbi

	alpha, beta []float64 // T×H row-major
	scale       []float64 // T
	gamma       []float64 // T×H
	xi          []float64 // (T-1)×H×H

	delta []float64 // Viterbi trellis, T×H
	psi   []int32   // backpointers, T×H
	path  []State   // T
	dist  []float64 // M

	// Reused row-header views for the jagged-shaped public returns.
	alphaRows, betaRows, gammaRows [][]float64
}

// NewScratch returns an empty scratch; kernels size it on first use.
func NewScratch() *Scratch { return &Scratch{} }

// scratch returns the model-owned scratch, creating it lazily so direct
// struct literals work.
func (m *Model) scratch() *Scratch {
	if m.scr == nil {
		m.scr = &Scratch{}
	}
	return m.scr
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growI(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// pack copies the model parameters into the flat slabs. The copies are
// exact, so the flat kernels see precisely the values the jagged code read
// through the row pointers.
func (s *Scratch) pack(m *Model) {
	h, mm := m.H, m.M
	s.a = growF(s.a, h*h)
	s.b = growF(s.b, h*mm)
	s.pi = growF(s.pi, h)
	for i := 0; i < h; i++ {
		copy(s.a[i*h:(i+1)*h], m.A[i])
		copy(s.b[i*mm:(i+1)*mm], m.B[i])
	}
	copy(s.pi, m.Pi)
}

// rows re-slices dst into T row views of the flat T×H slab. With dst
// capacity ≥ T this performs no allocation.
func rows(dst [][]float64, flat []float64, tLen, h int) [][]float64 {
	dst = dst[:0]
	for t := 0; t < tLen; t++ {
		dst = append(dst, flat[t*h:(t+1)*h])
	}
	return dst
}

// forwardInto runs the scaled forward pass (Eq. 14) on packed parameters.
// Callers must have validated obs and packed s.
func (m *Model) forwardInto(s *Scratch, obs []Symbol) (logProb float64) {
	h := m.H
	mm := m.M
	T := len(obs)
	s.alpha = growF(s.alpha, T*h)
	s.scale = growF(s.scale, T)
	a, b, pi := s.a, s.b, s.pi
	alpha, scale := s.alpha, s.scale

	var sc float64
	o0 := int(obs[0])
	for i := 0; i < h; i++ {
		v := pi[i] * b[i*mm+o0]
		alpha[i] = v
		sc += v
	}
	if sc == 0 {
		sc = math.SmallestNonzeroFloat64
	}
	scale[0] = sc
	for i := 0; i < h; i++ {
		alpha[i] /= sc
	}
	for t := 1; t < T; t++ {
		prev := (t - 1) * h
		base := t * h
		ot := int(obs[t])
		sc = 0
		for j := 0; j < h; j++ {
			var sum float64
			for i := 0; i < h; i++ {
				sum += alpha[prev+i] * a[i*h+j]
			}
			v := sum * b[j*mm+ot]
			alpha[base+j] = v
			sc += v
		}
		if sc == 0 {
			sc = math.SmallestNonzeroFloat64
		}
		scale[t] = sc
		for j := 0; j < h; j++ {
			alpha[base+j] /= sc
		}
	}
	for t := 0; t < T; t++ {
		logProb += math.Log(scale[t])
	}
	return logProb
}

// backwardInto runs the scaled backward pass (Eq. 15) using s.scale from a
// forward pass over the same obs.
func (m *Model) backwardInto(s *Scratch, obs []Symbol, scale []float64) {
	h := m.H
	mm := m.M
	T := len(obs)
	s.beta = growF(s.beta, T*h)
	a, b := s.a, s.b
	beta := s.beta

	last := (T - 1) * h
	for i := 0; i < h; i++ {
		beta[last+i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		base := t * h
		next := (t + 1) * h
		on := int(obs[t+1])
		for i := 0; i < h; i++ {
			var sum float64
			for j := 0; j < h; j++ {
				sum += a[i*h+j] * b[j*mm+on] * beta[next+j]
			}
			beta[base+i] = sum / scale[t]
		}
	}
}

// Forward computes the scaled forward variables α̂ (Eq. 14) and returns
// them with the per-step scale factors and the sequence log-likelihood
// log P(O|λ). The returned slices alias the model-owned scratch and are
// overwritten by the next kernel call on this model.
func (m *Model) Forward(obs []Symbol) (alpha [][]float64, scale []float64, logProb float64, err error) {
	return m.ForwardInto(m.scratch(), obs)
}

// ForwardInto is Forward running on caller-supplied scratch, for callers
// that share one read-only model across goroutines. The returned slices
// alias s.
func (m *Model) ForwardInto(s *Scratch, obs []Symbol) (alpha [][]float64, scale []float64, logProb float64, err error) {
	if err := m.checkObs(obs); err != nil {
		return nil, nil, 0, err
	}
	s.pack(m)
	logProb = m.forwardInto(s, obs)
	s.alphaRows = rows(s.alphaRows, s.alpha, len(obs), m.H)
	return s.alphaRows, s.scale[:len(obs)], logProb, nil
}

// Backward computes the scaled backward variables β̂ (Eq. 15) using the
// scale factors produced by Forward on the same sequence. The returned
// rows alias the model-owned scratch (see Forward); Backward and Forward
// use distinct buffers, so a Forward/Backward pair over one sequence may
// consume both results together.
func (m *Model) Backward(obs []Symbol, scale []float64) ([][]float64, error) {
	return m.BackwardInto(m.scratch(), obs, scale)
}

// BackwardInto is Backward running on caller-supplied scratch.
func (m *Model) BackwardInto(s *Scratch, obs []Symbol, scale []float64) ([][]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	T := len(obs)
	if len(scale) != T {
		return nil, fmt.Errorf("hmm: scale length %d, want %d", len(scale), T)
	}
	s.pack(m)
	m.backwardInto(s, obs, scale)
	s.betaRows = rows(s.betaRows, s.beta, T, m.H)
	return s.betaRows, nil
}

// Gamma computes γ_t(i) = P(q_t = S_i | O, λ) (Eqs. 12–13) for all t. The
// returned rows alias the model-owned scratch (see Forward).
func (m *Model) Gamma(obs []Symbol) ([][]float64, error) {
	return m.GammaInto(m.scratch(), obs)
}

// GammaInto is Gamma running on caller-supplied scratch.
func (m *Model) GammaInto(s *Scratch, obs []Symbol) ([][]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	s.pack(m)
	T := len(obs)
	h := m.H
	m.forwardInto(s, obs)
	m.backwardInto(s, obs, s.scale[:T])
	s.gamma = growF(s.gamma, T*h)
	alpha, beta, gamma := s.alpha, s.beta, s.gamma
	for t := 0; t < T; t++ {
		base := t * h
		var norm float64
		for i := 0; i < h; i++ {
			g := alpha[base+i] * beta[base+i]
			gamma[base+i] = g
			norm += g
		}
		if norm > 0 {
			for i := 0; i < h; i++ {
				gamma[base+i] /= norm
			}
		}
	}
	s.gammaRows = rows(s.gammaRows, s.gamma, T, h)
	return s.gammaRows, nil
}

// MostLikelyStates solves Eq. 16: the individually most likely state at
// each time, argmax_i γ_t(i). The returned path aliases the model-owned
// scratch and is overwritten by the next Viterbi or MostLikelyStates call.
func (m *Model) MostLikelyStates(obs []Symbol) ([]State, error) {
	s := m.scratch()
	gamma, err := m.GammaInto(s, obs)
	if err != nil {
		return nil, err
	}
	if cap(s.path) < len(obs) {
		s.path = make([]State, len(obs))
	}
	path := s.path[:len(obs)]
	for t, g := range gamma {
		best := 0
		for i := 1; i < m.H; i++ {
			if g[i] > g[best] {
				best = i
			}
		}
		path[t] = State(best)
	}
	return path, nil
}

// Viterbi returns the single best state sequence Q* maximizing P(Q, O|λ)
// and its log probability. The paper uses Viterbi "to find the single best
// state sequence (path)". The returned path aliases the model-owned
// scratch and is overwritten by the next kernel call on this model.
func (m *Model) Viterbi(obs []Symbol) ([]State, float64, error) {
	return m.ViterbiInto(m.scratch(), obs)
}

// ViterbiInto is Viterbi running on caller-supplied scratch.
func (m *Model) ViterbiInto(s *Scratch, obs []Symbol) ([]State, float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, 0, err
	}
	s.pack(m)
	h := m.H
	mm := m.M
	T := len(obs)
	s.logA = growF(s.logA, h*h)
	s.logB = growF(s.logB, h*mm)
	for i, p := range s.a[:h*h] {
		s.logA[i] = safeLog(p)
	}
	for i, p := range s.b[:h*mm] {
		s.logB[i] = safeLog(p)
	}
	s.delta = growF(s.delta, T*h)
	s.psi = growI(s.psi, T*h)
	if cap(s.path) < T {
		s.path = make([]State, T)
	}
	logA, logB := s.logA, s.logB
	delta, psi := s.delta, s.psi

	o0 := int(obs[0])
	for i := 0; i < h; i++ {
		delta[i] = safeLog(s.pi[i]) + logB[i*mm+o0]
	}
	for t := 1; t < T; t++ {
		prev := (t - 1) * h
		base := t * h
		ot := int(obs[t])
		for j := 0; j < h; j++ {
			best, bestI := math.Inf(-1), 0
			for i := 0; i < h; i++ {
				v := delta[prev+i] + logA[i*h+j]
				if v > best {
					best, bestI = v, i
				}
			}
			delta[base+j] = best + logB[j*mm+ot]
			psi[base+j] = int32(bestI)
		}
	}
	last := (T - 1) * h
	best, bestI := math.Inf(-1), 0
	for i := 0; i < h; i++ {
		if delta[last+i] > best {
			best, bestI = delta[last+i], i
		}
	}
	path := s.path[:T]
	path[T-1] = State(bestI)
	for t := T - 2; t >= 0; t-- {
		path[t] = State(psi[(t+1)*h+int(path[t+1])])
	}
	return path, best, nil
}

func safeLog(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// BaumWelch re-estimates (A, B, π) from the observation sequence using the
// method of Stamp's tutorial (the paper's reference [30]): iterate
// expectation (γ, ξ) and maximization until the log-likelihood improvement
// drops below tol or maxIters is reached. It returns the final
// log-likelihood and the number of iterations run.
func (m *Model) BaumWelch(obs []Symbol, maxIters int, tol float64) (float64, int, error) {
	return m.BaumWelchInto(m.scratch(), obs, maxIters, tol)
}

// BaumWelchInto is BaumWelch running on caller-supplied scratch.
func (m *Model) BaumWelchInto(s *Scratch, obs []Symbol, maxIters int, tol float64) (float64, int, error) {
	if err := m.checkObs(obs); err != nil {
		return 0, 0, err
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	h := m.H
	mm := m.M
	T := len(obs)
	s.gamma = growF(s.gamma, T*h)
	if T > 1 {
		s.xi = growF(s.xi, (T-1)*h*h)
	}
	prevLog := math.Inf(-1)
	var logProb float64
	iters := 0
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		// E-step on the current parameters.
		s.pack(m)
		logProb = m.forwardInto(s, obs)
		m.backwardInto(s, obs, s.scale[:T])
		a, b := s.a, s.b
		alpha, beta, gamma, xi := s.alpha, s.beta, s.gamma, s.xi
		for t := 0; t < T; t++ {
			base := t * h
			for i := 0; i < h; i++ {
				gamma[base+i] = 0
			}
			if t < T-1 {
				xbase := t * h * h
				next := (t + 1) * h
				on := int(obs[t+1])
				var norm float64
				for i := 0; i < h; i++ {
					for j := 0; j < h; j++ {
						v := alpha[base+i] * a[i*h+j] * b[j*mm+on] * beta[next+j]
						xi[xbase+i*h+j] = v
						norm += v
					}
				}
				if norm > 0 {
					for i := 0; i < h; i++ {
						for j := 0; j < h; j++ {
							x := xi[xbase+i*h+j] / norm
							xi[xbase+i*h+j] = x
							gamma[base+i] += x
						}
					}
				}
			} else {
				var norm float64
				for i := 0; i < h; i++ {
					g := alpha[base+i] * beta[base+i]
					gamma[base+i] = g
					norm += g
				}
				if norm > 0 {
					for i := 0; i < h; i++ {
						gamma[base+i] /= norm
					}
				}
			}
		}
		// M-step.
		for i := 0; i < h; i++ {
			m.Pi[i] = gamma[i]
		}
		for i := 0; i < h; i++ {
			var denom float64
			for t := 0; t < T-1; t++ {
				denom += gamma[t*h+i]
			}
			for j := 0; j < h; j++ {
				var num float64
				for t := 0; t < T-1; t++ {
					num += xi[t*h*h+i*h+j]
				}
				if denom > 0 {
					m.A[i][j] = num / denom
				}
			}
		}
		for j := 0; j < h; j++ {
			var denom float64
			for t := 0; t < T; t++ {
				denom += gamma[t*h+j]
			}
			for k := 0; k < mm; k++ {
				var num float64
				for t := 0; t < T; t++ {
					if int(obs[t]) == k {
						num += gamma[t*h+j]
					}
				}
				if denom > 0 {
					m.B[j][k] = num / denom
				}
			}
		}
		m.renormalize()
		if logProb-prevLog < tol && iter > 0 {
			break
		}
		prevLog = logProb
	}
	return logProb, iters, nil
}

// renormalize nudges every row back to exactly stochastic after float
// drift, flooring probabilities at a tiny epsilon so no transition or
// emission becomes impossible (which would wedge Viterbi on unseen data).
func (m *Model) renormalize() {
	const floor = 1e-9
	fix := func(row []float64) {
		var sum float64
		for i := range row {
			if row[i] < floor {
				row[i] = floor
			}
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	for i := range m.A {
		fix(m.A[i])
	}
	for i := range m.B {
		fix(m.B[i])
	}
	fix(m.Pi)
}

// PredictNextSymbol implements Eq. 17: given the final Viterbi state q*_T,
// the distribution of the next observation is
// E[P_{T+1}(k)] = Σ_j P(q_{T+1}=S_j | q_T=q*_T) · b_j(k); the predicted
// symbol is the argmax. It returns the symbol and the full distribution.
// The distribution aliases the model-owned scratch and is overwritten by
// the next PredictNextSymbol call on this model.
func (m *Model) PredictNextSymbol(lastState State) (Symbol, []float64, error) {
	return m.PredictNextSymbolInto(m.scratch(), lastState)
}

// PredictNextSymbolInto is PredictNextSymbol on caller-supplied scratch.
func (m *Model) PredictNextSymbolInto(s *Scratch, lastState State) (Symbol, []float64, error) {
	if int(lastState) < 0 || int(lastState) >= m.H {
		return 0, nil, fmt.Errorf("hmm: state %d outside [0,%d)", lastState, m.H)
	}
	s.dist = growF(s.dist, m.M)
	dist := s.dist
	for k := 0; k < m.M; k++ {
		dist[k] = 0
	}
	for j := 0; j < m.H; j++ {
		p := m.A[lastState][j]
		for k := 0; k < m.M; k++ {
			dist[k] += p * m.B[j][k]
		}
	}
	best := 0
	for k := 1; k < m.M; k++ {
		if dist[k] > dist[best] {
			best = k
		}
	}
	return Symbol(best), dist, nil
}

// PredictNext fits nothing; it decodes the observation sequence with
// Viterbi and applies Eq. 17 from the final state. It is the one-call
// prediction path the CORP predictor uses each window.
func (m *Model) PredictNext(obs []Symbol) (Symbol, error) {
	path, _, err := m.Viterbi(obs)
	if err != nil {
		return 0, err
	}
	sym, _, err := m.PredictNextSymbol(path[len(path)-1])
	return sym, err
}
