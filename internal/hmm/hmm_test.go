package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymbolAndStateStrings(t *testing.T) {
	if Peak.String() != "peak" || Center.String() != "center" || Valley.String() != "valley" {
		t.Error("symbol names wrong")
	}
	if Symbol(9).String() != "Symbol(9)" {
		t.Error("unknown symbol name wrong")
	}
	if OverProvisioning.String() != "OP" || NormalProvisioning.String() != "NP" || UnderProvisioning.String() != "UP" {
		t.Error("state names wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1); err == nil {
		t.Error("zero states should fail")
	}
	if _, err := New(3, 0, 1); err == nil {
		t.Error("zero symbols should fail")
	}
	m, err := New(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("fresh model invalid: %v", err)
	}
}

func TestNewPaperModel(t *testing.T) {
	m := NewPaperModel(1)
	if m.H != NumStates || m.M != NumSymbols {
		t.Errorf("paper model is %dx%d, want 3x3", m.H, m.M)
	}
}

func TestValidateCatchesBadRows(t *testing.T) {
	m := NewPaperModel(1)
	m.A[0][0] = 2
	if err := m.Validate(); err == nil {
		t.Error("non-stochastic A should fail validation")
	}
}

func TestForwardRejectsBadObs(t *testing.T) {
	m := NewPaperModel(1)
	if _, _, _, err := m.Forward(nil); err == nil {
		t.Error("empty obs should fail")
	}
	if _, _, _, err := m.Forward([]Symbol{0, 5}); err == nil {
		t.Error("out-of-range symbol should fail")
	}
}

// knownModel builds a small HMM with hand-picked parameters for exact
// likelihood checks.
func knownModel() *Model {
	return &Model{
		H: 2, M: 2,
		A:  [][]float64{{0.7, 0.3}, {0.4, 0.6}},
		B:  [][]float64{{0.9, 0.1}, {0.2, 0.8}},
		Pi: []float64{0.8, 0.2},
	}
}

func TestForwardLikelihoodMatchesBruteForce(t *testing.T) {
	m := knownModel()
	obs := []Symbol{0, 1, 0}
	_, _, logProb, err := m.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over all 2³ state paths.
	var total float64
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			for s2 := 0; s2 < 2; s2++ {
				p := m.Pi[s0] * m.B[s0][obs[0]] *
					m.A[s0][s1] * m.B[s1][obs[1]] *
					m.A[s1][s2] * m.B[s2][obs[2]]
				total += p
			}
		}
	}
	if math.Abs(math.Exp(logProb)-total) > 1e-12 {
		t.Errorf("forward P = %v, brute force %v", math.Exp(logProb), total)
	}
}

func TestGammaRowsSumToOne(t *testing.T) {
	m := knownModel()
	obs := []Symbol{0, 0, 1, 1, 0}
	gamma, err := m.Gamma(obs)
	if err != nil {
		t.Fatal(err)
	}
	for tIdx, row := range gamma {
		var sum float64
		for _, p := range row {
			if p < 0 {
				t.Errorf("gamma[%d] has negative prob", tIdx)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("gamma[%d] sums to %v", tIdx, sum)
		}
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	m := knownModel()
	obs := []Symbol{0, 1, 1, 0}
	path, logP, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force best path.
	best := math.Inf(-1)
	var bestPath []State
	var rec func(prefix []State, logp float64)
	rec = func(prefix []State, logp float64) {
		tIdx := len(prefix)
		if tIdx == len(obs) {
			if logp > best {
				best = logp
				bestPath = append([]State(nil), prefix...)
			}
			return
		}
		for s := 0; s < m.H; s++ {
			var step float64
			if tIdx == 0 {
				step = math.Log(m.Pi[s]) + math.Log(m.B[s][obs[0]])
			} else {
				step = math.Log(m.A[prefix[tIdx-1]][s]) + math.Log(m.B[s][obs[tIdx]])
			}
			rec(append(prefix, State(s)), logp+step)
		}
	}
	rec(nil, 0)
	if math.Abs(logP-best) > 1e-9 {
		t.Errorf("Viterbi logP = %v, brute force %v", logP, best)
	}
	for i := range path {
		if path[i] != bestPath[i] {
			t.Errorf("Viterbi path %v, brute force %v", path, bestPath)
			break
		}
	}
}

func TestMostLikelyStatesDecodesCleanSignal(t *testing.T) {
	// Near-deterministic emissions: symbol ≈ state.
	m := &Model{
		H: 2, M: 2,
		A:  [][]float64{{0.9, 0.1}, {0.1, 0.9}},
		B:  [][]float64{{0.95, 0.05}, {0.05, 0.95}},
		Pi: []float64{0.5, 0.5},
	}
	obs := []Symbol{0, 0, 0, 1, 1, 1, 0, 0}
	states, err := m.MostLikelyStates(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range states {
		if int(s) != int(obs[i]) {
			t.Errorf("t=%d decoded %v for symbol %v", i, s, obs[i])
		}
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	// Generate observations from a known sticky model, then fit a fresh
	// one and check likelihood improves monotonically overall.
	gen := &Model{
		H: 2, M: 2,
		A:  [][]float64{{0.85, 0.15}, {0.2, 0.8}},
		B:  [][]float64{{0.9, 0.1}, {0.15, 0.85}},
		Pi: []float64{0.6, 0.4},
	}
	rng := rand.New(rand.NewSource(3))
	obs := sampleSequence(gen, rng, 400)

	m, err := New(2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, _, before, err := m.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	after, iters, err := m.BaumWelch(obs, 100, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("Baum–Welch did not improve: %v → %v", before, after)
	}
	if iters < 2 {
		t.Errorf("suspiciously few iterations: %d", iters)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("model invalid after Baum–Welch: %v", err)
	}
}

func TestBaumWelchRecoversStickyStructure(t *testing.T) {
	gen := &Model{
		H: 2, M: 2,
		A:  [][]float64{{0.9, 0.1}, {0.1, 0.9}},
		B:  [][]float64{{0.95, 0.05}, {0.05, 0.95}},
		Pi: []float64{0.5, 0.5},
	}
	rng := rand.New(rand.NewSource(11))
	obs := sampleSequence(gen, rng, 2000)
	m, err := New(2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.BaumWelch(obs, 200, 1e-8); err != nil {
		t.Fatal(err)
	}
	// Self-transitions should be learned as sticky (>0.7) in both states
	// (up to state relabeling, diagonal or anti-diagonal dominance).
	diag := m.A[0][0] + m.A[1][1]
	anti := m.A[0][1] + m.A[1][0]
	if diag < anti {
		t.Errorf("expected sticky chain, got A=%v", m.A)
	}
	if math.Max(m.A[0][0], m.A[0][1]) < 0.7 {
		t.Errorf("state 0 transitions too uniform: %v", m.A[0])
	}
}

func sampleSequence(m *Model, rng *rand.Rand, n int) []Symbol {
	obs := make([]Symbol, n)
	state := sampleIdx(m.Pi, rng)
	for t := 0; t < n; t++ {
		obs[t] = Symbol(sampleIdx(m.B[state], rng))
		state = sampleIdx(m.A[state], rng)
	}
	return obs
}

func sampleIdx(dist []float64, rng *rand.Rand) int {
	u := rng.Float64()
	for i, p := range dist {
		if u < p {
			return i
		}
		u -= p
	}
	return len(dist) - 1
}

func TestPredictNextSymbolDistribution(t *testing.T) {
	m := knownModel()
	sym, dist, err := m.PredictNextSymbol(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("next-symbol distribution sums to %v", sum)
	}
	// From state 0: 0.7·B[0] + 0.3·B[1] = (0.69, 0.31) → symbol 0.
	if sym != Symbol(0) {
		t.Errorf("predicted %v, want 0", sym)
	}
	if math.Abs(dist[0]-0.69) > 1e-9 {
		t.Errorf("dist[0] = %v, want 0.69", dist[0])
	}
	if _, _, err := m.PredictNextSymbol(State(5)); err == nil {
		t.Error("out-of-range state should fail")
	}
}

func TestPredictNextEndToEnd(t *testing.T) {
	// Alternating observations with a learned model: after a long
	// alternating history the next symbol should flip.
	m := NewPaperModel(2)
	obs := make([]Symbol, 60)
	for i := range obs {
		if i%2 == 0 {
			obs[i] = Peak
		} else {
			obs[i] = Valley
		}
	}
	if _, _, err := m.BaumWelch(obs, 100, 1e-8); err != nil {
		t.Fatal(err)
	}
	next, err := m.PredictNext(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Sequence ends with Valley (index 59) → next should be Peak.
	if next != Peak {
		t.Errorf("predicted %v after ...Peak,Valley alternation, want Peak", next)
	}
}

// Property: forward log-likelihood never increases when an impossible
// symbol streak replaces a typical one under a near-deterministic model;
// and γ stays a distribution for random models and sequences.
func TestQuickGammaIsDistribution(t *testing.T) {
	f := func(seed int64, rawObs []uint8) bool {
		if len(rawObs) == 0 {
			return true
		}
		if len(rawObs) > 50 {
			rawObs = rawObs[:50]
		}
		m := NewPaperModel(seed)
		obs := make([]Symbol, len(rawObs))
		for i, o := range rawObs {
			obs[i] = Symbol(int(o) % m.M)
		}
		gamma, err := m.Gamma(obs)
		if err != nil {
			return false
		}
		for _, row := range gamma {
			var sum float64
			for _, p := range row {
				if p < -1e-12 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymbolizerThresholds(t *testing.T) {
	s, err := NewSymbolizer([]float64{0, 5, 10, 15, 20}) // min 0, mean 10, max 20
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := s.Thresholds()
	if t1 != 5 || t2 != 15 {
		t.Errorf("thresholds = (%v, %v), want (5, 15)", t1, t2)
	}
	if s.Symbol(3) != Valley {
		t.Error("small delta should be valley")
	}
	if s.Symbol(5) != Valley {
		t.Error("delta == t1 should be valley (inclusive)")
	}
	if s.Symbol(10) != Center {
		t.Error("middle delta should be center")
	}
	if s.Symbol(15) != Peak {
		t.Error("delta == t2 should be peak")
	}
	if s.Symbol(19) != Peak {
		t.Error("large delta should be peak")
	}
}

func TestNewSymbolizerEmpty(t *testing.T) {
	if _, err := NewSymbolizer(nil); err == nil {
		t.Error("empty history should fail")
	}
}

func TestSymbolizerObserve(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 10, Max: 20} // t1=5, t2=15
	// Windows of 3: [1,2,3]→Δ2 valley; [1,10,2]→Δ9 center; [0,20,1]→Δ20 peak.
	series := []float64{1, 2, 3, 1, 10, 2, 0, 20, 1}
	obs := s.Observe(series, 3)
	want := []Symbol{Valley, Center, Peak}
	if len(obs) != len(want) {
		t.Fatalf("obs = %v", obs)
	}
	for i := range want {
		if obs[i] != want[i] {
			t.Errorf("obs[%d] = %v, want %v", i, obs[i], want[i])
		}
	}
	if s.Observe([]float64{1}, 3) != nil {
		t.Error("short series should yield nil")
	}
	// windowLen < 2 is raised to 2.
	if got := s.Observe([]float64{1, 2, 3, 4}, 0); len(got) != 2 {
		t.Errorf("raised window len should give 2 obs, got %v", got)
	}
}

func TestCorrectionMagnitudeConservative(t *testing.T) {
	// up = max−mean = 4, down = mean−min = 6 → min is 4.
	s := &Symbolizer{Min: 0, Mean: 6, Max: 10}
	if got := s.CorrectionMagnitude(); got != 4 {
		t.Errorf("magnitude = %v, want 4", got)
	}
	// Symmetric case.
	s2 := &Symbolizer{Min: 0, Mean: 5, Max: 10}
	if got := s2.CorrectionMagnitude(); got != 5 {
		t.Errorf("magnitude = %v, want 5", got)
	}
}

func TestCorrectAdjustsByMagnitude(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 6, Max: 10} // magnitude 4
	if got := s.Correct(10, Valley); got != 6 {
		t.Errorf("valley correction = %v, want 6", got)
	}
	if got := s.Correct(10, Peak); got != 14 {
		t.Errorf("peak correction = %v, want 14", got)
	}
	if got := s.Correct(10, Center); got != 10 {
		t.Errorf("center correction = %v, want 10", got)
	}
	// Floors at zero.
	if got := s.Correct(2, Valley); got != 0 {
		t.Errorf("floored correction = %v, want 0", got)
	}
}

// Property: Correct never returns a negative value and is monotone in its
// input for a fixed symbol.
func TestQuickCorrectMonotone(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 5, Max: 12}
	f := func(a, b float64, rawSym uint8) bool {
		sym := Symbol(int(rawSym) % 3)
		x := math.Abs(math.Mod(a, 1000))
		y := math.Abs(math.Mod(b, 1000))
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		lo, hi := math.Min(x, y), math.Max(x, y)
		cLo, cHi := s.Correct(lo, sym), s.Correct(hi, sym)
		return cLo >= 0 && cHi >= 0 && cHi >= cLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkViterbi60(b *testing.B) {
	m := NewPaperModel(1)
	obs := make([]Symbol, 60)
	for i := range obs {
		obs[i] = Symbol(i % 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Viterbi(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaumWelch200(b *testing.B) {
	gen := NewPaperModel(4)
	rng := rand.New(rand.NewSource(9))
	obs := sampleSequence(gen, rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewPaperModel(int64(i))
		if _, _, err := m.BaumWelch(obs, 20, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}
