package hmm

import (
	"errors"

	"repro/internal/stats"
)

// Symbolizer categorizes unused-resource fluctuations into the paper's
// peak/center/valley observation symbols.
//
// Given historical unused amounts with minimum minᵣ, mean mᵣ and maximum
// maxᵣ, the interval [minᵣ, maxᵣ] splits at
//
//	t₁ = minᵣ + ½(mᵣ − minᵣ)   and   t₂ = mᵣ + ½(maxᵣ − mᵣ).
//
// For each observation window the paper takes Δⱼ, the difference between
// the window's maximum and minimum unused amount; Δⱼ ≤ t₁ → valley,
// Δⱼ < t₂ → center, otherwise peak.
type Symbolizer struct {
	Min, Mean, Max float64
}

var errEmptyHistory = errors.New("hmm: empty history")

// NewSymbolizer derives thresholds from historical unused-resource samples.
func NewSymbolizer(history []float64) (*Symbolizer, error) {
	s, err := MakeSymbolizer(history)
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// MakeSymbolizer is NewSymbolizer returning the Symbolizer by value, so
// hot paths that rebuild thresholds every prediction keep it on the stack.
func MakeSymbolizer(history []float64) (Symbolizer, error) {
	if len(history) == 0 {
		return Symbolizer{}, errEmptyHistory
	}
	lo, hi, err := stats.MinMax(history)
	if err != nil {
		return Symbolizer{}, err
	}
	return Symbolizer{Min: lo, Mean: stats.Mean(history), Max: hi}, nil
}

// Thresholds returns (t₁, t₂).
func (s *Symbolizer) Thresholds() (t1, t2 float64) {
	t1 = s.Min + 0.5*(s.Mean-s.Min)
	t2 = s.Mean + 0.5*(s.Max-s.Mean)
	return t1, t2
}

// Symbol categorizes one window range Δ.
func (s *Symbolizer) Symbol(delta float64) Symbol {
	t1, t2 := s.Thresholds()
	switch {
	case delta <= t1:
		return Valley
	case delta < t2:
		return Center
	default:
		return Peak
	}
}

// Observe builds the observation sequence for a series of unused-resource
// samples: consecutive windows of the given length (the paper's L−1
// subwindows between observation slots) are reduced to Δⱼ = max−min and
// symbolized. A windowLen < 2 is raised to 2; a series shorter than one
// window yields nil.
func (s *Symbolizer) Observe(series []float64, windowLen int) []Symbol {
	return s.AppendObserve(nil, series, windowLen)
}

// AppendObserve is Observe writing into dst (usually a reused scratch
// slice re-sliced to length 0); it allocates only when dst lacks capacity.
func (s *Symbolizer) AppendObserve(dst []Symbol, series []float64, windowLen int) []Symbol {
	if windowLen < 2 {
		windowLen = 2
	}
	if len(series) < windowLen {
		return dst
	}
	for start := 0; start+windowLen <= len(series); start += windowLen {
		win := series[start : start+windowLen]
		lo, hi, err := stats.MinMax(win)
		if err != nil {
			continue
		}
		dst = append(dst, s.Symbol(hi-lo))
	}
	return dst
}

// ObserveLevels builds the observation sequence from window *levels*
// rather than window ranges: each consecutive window of windowLen slots is
// reduced to its mean and symbolized against the level thresholds
// (mean ≤ t₁ → valley, < t₂ → center, else peak).
//
// The paper's text symbolizes the window range Δⱼ against thresholds
// derived from the level distribution, which mixes units: a range can be
// "valley" while the level sits at a peak, and the subsequent correction
// (lowering the estimate on valley) then points the wrong way. Level
// symbolization preserves the paper's intent — detect whether the unused
// amount is about to sit low or high and shift the estimate accordingly —
// with consistent units. The CORP predictor uses this variant; Observe
// remains available as the paper-literal reading.
func (s *Symbolizer) ObserveLevels(series []float64, windowLen int) []Symbol {
	return s.AppendObserveLevels(nil, series, windowLen)
}

// AppendObserveLevels is ObserveLevels writing into dst (usually a reused
// scratch slice re-sliced to length 0); it allocates only when dst lacks
// capacity.
func (s *Symbolizer) AppendObserveLevels(dst []Symbol, series []float64, windowLen int) []Symbol {
	if windowLen < 1 {
		windowLen = 1
	}
	if len(series) < windowLen {
		return dst
	}
	for start := 0; start+windowLen <= len(series); start += windowLen {
		win := series[start : start+windowLen]
		dst = append(dst, s.SymbolForLevel(stats.Mean(win)))
	}
	return dst
}

// SymbolForLevel categorizes an unused-resource level (not a range).
func (s *Symbolizer) SymbolForLevel(level float64) Symbol {
	t1, t2 := s.Thresholds()
	switch {
	case level <= t1:
		return Valley
	case level < t2:
		return Center
	default:
		return Peak
	}
}

// WindowMeans reduces a series to consecutive window means; NewSymbolizer
// over this reduced series yields thresholds and a correction magnitude in
// window-mean units, matching what the predictor actually estimates.
func WindowMeans(series []float64, windowLen int) []float64 {
	return AppendWindowMeans(nil, series, windowLen)
}

// AppendWindowMeans is WindowMeans writing into dst (usually a reused
// scratch slice re-sliced to length 0); it allocates only when dst lacks
// capacity.
func AppendWindowMeans(dst []float64, series []float64, windowLen int) []float64 {
	if windowLen < 1 {
		windowLen = 1
	}
	for start := 0; start+windowLen <= len(series); start += windowLen {
		dst = append(dst, stats.Mean(series[start:start+windowLen]))
	}
	return dst
}

// CorrectionMagnitude returns the paper's peak/valley adjustment step
// min(h−m, m−l) where h, m, l are the highest, average and lowest unused
// amounts within the calibration period. The min makes the correction
// "more conservative for ensuring sufficient resource being able to [be]
// allocated to jobs".
func (s *Symbolizer) CorrectionMagnitude() float64 {
	up := s.Max - s.Mean
	down := s.Mean - s.Min
	if up < down {
		return up
	}
	return down
}

// CorrectToward applies a band-bounded variant of the paper's correction:
// when the HMM predicts the next window sits in the valley (peak) band, the
// estimate is moved down (up) by at most the correction magnitude, but
// never past the band edge t₁ (t₂). The paper's unconditional shift assumes
// the base predictor sits near the historical mean ("the predicted amount
// may be close to m_cpu"); when the DNN already tracks the regime, an
// unconditional shift overshoots, so the band edge bounds it. The CORP
// predictor uses this variant; Correct remains the paper-literal rule.
func (s *Symbolizer) CorrectToward(predicted float64, next Symbol) float64 {
	step := s.CorrectionMagnitude()
	t1, t2 := s.Thresholds()
	switch next {
	case Valley:
		if predicted > t1 {
			moved := predicted - step
			if moved < t1 {
				moved = t1
			}
			predicted = moved
		}
	case Peak:
		if predicted < t2 {
			moved := predicted + step
			if moved > t2 {
				moved = t2
			}
			predicted = moved
		}
	}
	if predicted < 0 {
		return 0
	}
	return predicted
}

// Correct applies the paper's prediction-error correction: Valley reduces
// the DNN estimate by the correction magnitude, Peak raises it, Center
// leaves it untouched. The result is floored at zero (a negative unused
// amount cannot be allocated).
func (s *Symbolizer) Correct(predicted float64, next Symbol) float64 {
	step := s.CorrectionMagnitude()
	switch next {
	case Valley:
		predicted -= step
	case Peak:
		predicted += step
	}
	if predicted < 0 {
		return 0
	}
	return predicted
}
