package hmm

import (
	"math"
	"testing"
)

// Edge cases for the symbolizer: degenerate (constant) histories, series
// shorter than one window, and near-zero correction magnitudes.

func TestSymbolizerConstantHistory(t *testing.T) {
	hist := []float64{42, 42, 42, 42, 42}
	sym, err := NewSymbolizer(hist)
	if err != nil {
		t.Fatalf("NewSymbolizer: %v", err)
	}
	t1, t2 := sym.Thresholds()
	if t1 != 42 || t2 != 42 {
		t.Fatalf("degenerate thresholds (%v, %v), want (42, 42)", t1, t2)
	}
	// The level sits exactly on the collapsed band: ≤ t1 → valley.
	if got := sym.SymbolForLevel(42); got != Valley {
		t.Fatalf("SymbolForLevel(42) = %v, want Valley", got)
	}
	if got := sym.SymbolForLevel(43); got != Peak {
		t.Fatalf("SymbolForLevel(43) = %v, want Peak", got)
	}
	if mag := sym.CorrectionMagnitude(); mag != 0 {
		t.Fatalf("CorrectionMagnitude = %v, want 0 for constant history", mag)
	}
	// Zero magnitude and collapsed band edges: corrections are no-ops
	// (modulo the zero floor).
	for _, next := range []Symbol{Peak, Center, Valley} {
		if got := sym.Correct(50, next); got != 50 {
			t.Fatalf("Correct(50, %v) = %v, want 50", next, got)
		}
		if got := sym.CorrectToward(30, next); got != 30 {
			t.Fatalf("CorrectToward(30, %v) = %v, want 30", next, got)
		}
	}
	if got := sym.Correct(-1, Center); got != 0 {
		t.Fatalf("Correct floors at zero, got %v", got)
	}
}

func TestObserveShorterThanWindow(t *testing.T) {
	sym := &Symbolizer{Min: 0, Mean: 5, Max: 10}
	short := []float64{1, 2, 3}
	if obs := sym.ObserveLevels(short, 6); obs != nil {
		t.Fatalf("ObserveLevels on short series = %v, want nil", obs)
	}
	if obs := sym.Observe(short, 6); obs != nil {
		t.Fatalf("Observe on short series = %v, want nil", obs)
	}
	if means := WindowMeans(short, 6); means != nil {
		t.Fatalf("WindowMeans on short series = %v, want nil", means)
	}
	// Append variants must leave dst untouched.
	dst := make([]Symbol, 0, 4)
	if got := sym.AppendObserveLevels(dst, short, 6); len(got) != 0 {
		t.Fatalf("AppendObserveLevels appended %d symbols to short series", len(got))
	}
	if got := sym.AppendObserve(dst, short, 6); len(got) != 0 {
		t.Fatalf("AppendObserve appended %d symbols to short series", len(got))
	}
	fdst := make([]float64, 0, 4)
	if got := AppendWindowMeans(fdst, short, 6); len(got) != 0 {
		t.Fatalf("AppendWindowMeans appended %d means to short series", len(got))
	}
	// Empty series behaves the same way.
	if obs := sym.ObserveLevels(nil, 6); obs != nil {
		t.Fatalf("ObserveLevels(nil) = %v, want nil", obs)
	}
}

func TestCorrectTowardNearZeroMagnitude(t *testing.T) {
	// Nearly-degenerate low side: the conservative min(h−m, m−l) picks the
	// tiny side, so corrections barely move the estimate.
	sym := &Symbolizer{Min: 10, Mean: 10 + 1e-12, Max: 50}
	eps := sym.Mean - sym.Min // ~1e-12 after rounding
	if mag := sym.CorrectionMagnitude(); mag != eps {
		t.Fatalf("CorrectionMagnitude = %v, want %v", mag, eps)
	}
	t1, _ := sym.Thresholds()
	pred := 25.0
	// Allow one ulp of slack at magnitude ~25 on top of the tiny step.
	slack := 2 * eps
	down := sym.CorrectToward(pred, Valley)
	if down > pred || pred-down > slack {
		t.Fatalf("CorrectToward valley moved %v -> %v, want shift within %v", pred, down, slack)
	}
	if down < t1 {
		t.Fatalf("CorrectToward valley crossed band edge: %v < t1=%v", down, t1)
	}
	up := sym.CorrectToward(pred, Peak)
	if up < pred || up-pred > slack {
		t.Fatalf("CorrectToward peak moved %v -> %v, want shift within %v", pred, up, slack)
	}
	if got := sym.CorrectToward(pred, Center); got != pred {
		t.Fatalf("CorrectToward center = %v, want %v untouched", got, pred)
	}
	// The paper-literal rule shifts by the same tiny step, unbounded.
	if got := sym.Correct(pred, Valley); math.Abs(got-(pred-eps)) > 1e-15 {
		t.Fatalf("Correct valley = %v, want %v", got, pred-eps)
	}
}
