package hmm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymbolForLevel(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 10, Max: 20} // t1=5, t2=15
	cases := []struct {
		level float64
		want  Symbol
	}{{0, Valley}, {5, Valley}, {5.1, Center}, {14.9, Center}, {15, Peak}, {25, Peak}}
	for _, c := range cases {
		if got := s.SymbolForLevel(c.level); got != c.want {
			t.Errorf("SymbolForLevel(%v) = %v, want %v", c.level, got, c.want)
		}
	}
}

func TestObserveLevels(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 10, Max: 20}
	// Window means: 2 (valley), 10 (center), 18 (peak).
	series := []float64{1, 2, 3, 9, 10, 11, 17, 18, 19}
	obs := s.ObserveLevels(series, 3)
	want := []Symbol{Valley, Center, Peak}
	if len(obs) != len(want) {
		t.Fatalf("obs = %v", obs)
	}
	for i := range want {
		if obs[i] != want[i] {
			t.Errorf("obs[%d] = %v, want %v", i, obs[i], want[i])
		}
	}
	if s.ObserveLevels([]float64{1}, 3) != nil {
		t.Error("short series should yield nil")
	}
	// windowLen < 1 is raised to 1.
	if got := s.ObserveLevels([]float64{1, 18}, 0); len(got) != 2 {
		t.Errorf("raised window len should give 2 obs, got %v", got)
	}
}

func TestWindowMeans(t *testing.T) {
	got := WindowMeans([]float64{1, 3, 5, 7, 9}, 2)
	want := []float64{2, 6} // last partial window dropped
	if len(got) != len(want) {
		t.Fatalf("WindowMeans = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("WindowMeans[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := WindowMeans([]float64{4}, 0); len(got) != 1 || got[0] != 4 {
		t.Errorf("windowLen raised to 1 should give identity, got %v", got)
	}
	if WindowMeans(nil, 3) != nil {
		t.Error("empty series should yield nil")
	}
}

func TestCorrectTowardBounds(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 6, Max: 10} // t1=3, t2=8, step=4
	// Valley: 10 → max(3, 10−4) = 6.
	if got := s.CorrectToward(10, Valley); got != 6 {
		t.Errorf("valley 10 → %v, want 6", got)
	}
	// Valley: 5 → max(3, 5−4) = 3 (band edge bounds the move).
	if got := s.CorrectToward(5, Valley); got != 3 {
		t.Errorf("valley 5 → %v, want 3", got)
	}
	// Valley with estimate already in band: unchanged.
	if got := s.CorrectToward(2, Valley); got != 2 {
		t.Errorf("valley 2 → %v, want 2 (already in band)", got)
	}
	// Peak: 5 → min(8, 5+4) = 8 (edge bound).
	if got := s.CorrectToward(5, Peak); got != 8 {
		t.Errorf("peak 5 → %v, want 8", got)
	}
	// Peak: 1 → 1+4 = 5.
	if got := s.CorrectToward(1, Peak); got != 5 {
		t.Errorf("peak 1 → %v, want 5", got)
	}
	// Peak already above band: unchanged.
	if got := s.CorrectToward(9, Peak); got != 9 {
		t.Errorf("peak 9 → %v, want 9", got)
	}
	// Center: never moves.
	if got := s.CorrectToward(7, Center); got != 7 {
		t.Errorf("center 7 → %v, want 7", got)
	}
}

// Property: CorrectToward never moves an estimate past the band edge it is
// heading toward, moves only in the symbol's direction, and never returns
// a negative value.
func TestQuickCorrectTowardBounded(t *testing.T) {
	s := &Symbolizer{Min: 0, Mean: 5, Max: 12}
	t1, t2 := s.Thresholds()
	f := func(raw float64, rawSym uint8) bool {
		sym := Symbol(int(rawSym) % 3)
		x := math.Abs(math.Mod(raw, 100))
		if math.IsNaN(x) {
			return true
		}
		got := s.CorrectToward(x, sym)
		if got < 0 {
			return false
		}
		switch sym {
		case Valley:
			// Moves down, never past t1 when starting above it.
			if got > x {
				return false
			}
			if x > t1 && got < t1 {
				return false
			}
		case Peak:
			if got < x {
				return false
			}
			if x < t2 && got > t2 {
				return false
			}
		default:
			if got != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
