package hmm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Multi-sequence training, sampling and persistence. The per-VM predictors
// train on their own observation streams; offline calibration (cmd tools,
// experiments) benefits from pooling many VMs' sequences into one model
// and from saving the result.

// BaumWelchMulti re-estimates the model from several independent
// observation sequences, following Rabiner's multi-sequence extension:
// per-sequence expected counts are accumulated and normalized jointly. It
// returns the total log-likelihood and iteration count.
func (m *Model) BaumWelchMulti(seqs [][]Symbol, maxIters int, tol float64) (float64, int, error) {
	if len(seqs) == 0 {
		return 0, 0, errors.New("hmm: no sequences")
	}
	for i, obs := range seqs {
		if err := m.checkObs(obs); err != nil {
			return 0, 0, fmt.Errorf("hmm: sequence %d: %w", i, err)
		}
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	prevLog := math.Inf(-1)
	var logProb float64
	iters := 0
	// Accumulators across sequences and per-t scratch, reused each
	// iteration (zeroed below); hoisting them out of the loops does not
	// change any accumulation order.
	piAcc := make([]float64, m.H)
	aNum := make([][]float64, m.H)
	aDen := make([]float64, m.H)
	bNum := make([][]float64, m.H)
	bDen := make([]float64, m.H)
	for i := 0; i < m.H; i++ {
		aNum[i] = make([]float64, m.H)
		bNum[i] = make([]float64, m.M)
	}
	gamma := make([]float64, m.H)
	xi := make([][]float64, m.H)
	for i := range xi {
		xi[i] = make([]float64, m.H)
	}
	for iter := 0; iter < maxIters; iter++ {
		iters = iter + 1
		for i := 0; i < m.H; i++ {
			piAcc[i] = 0
			aDen[i] = 0
			bDen[i] = 0
			for j := 0; j < m.H; j++ {
				aNum[i][j] = 0
			}
			for k := 0; k < m.M; k++ {
				bNum[i][k] = 0
			}
		}
		logProb = 0
		for _, obs := range seqs {
			alpha, scale, lp, err := m.Forward(obs)
			if err != nil {
				return 0, iters, err
			}
			logProb += lp
			beta, err := m.Backward(obs, scale)
			if err != nil {
				return 0, iters, err
			}
			T := len(obs)
			for t := 0; t < T; t++ {
				// γ_t(i) normalized.
				var norm float64
				for i := 0; i < m.H; i++ {
					gamma[i] = alpha[t][i] * beta[t][i]
					norm += gamma[i]
				}
				if norm > 0 {
					for i := range gamma {
						gamma[i] /= norm
					}
				}
				if t == 0 {
					for i := 0; i < m.H; i++ {
						piAcc[i] += gamma[i]
					}
				}
				for i := 0; i < m.H; i++ {
					bNum[i][obs[t]] += gamma[i]
					bDen[i] += gamma[i]
					if t < T-1 {
						aDen[i] += gamma[i]
					}
				}
				// ξ_t(i,j) normalized.
				if t < T-1 {
					var xnorm float64
					for i := 0; i < m.H; i++ {
						for j := 0; j < m.H; j++ {
							xi[i][j] = alpha[t][i] * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
							xnorm += xi[i][j]
						}
					}
					if xnorm > 0 {
						for i := 0; i < m.H; i++ {
							for j := 0; j < m.H; j++ {
								aNum[i][j] += xi[i][j] / xnorm
							}
						}
					}
				}
			}
		}
		// M-step.
		var piNorm float64
		for _, p := range piAcc {
			piNorm += p
		}
		for i := 0; i < m.H; i++ {
			if piNorm > 0 {
				m.Pi[i] = piAcc[i] / piNorm
			}
			for j := 0; j < m.H; j++ {
				if aDen[i] > 0 {
					m.A[i][j] = aNum[i][j] / aDen[i]
				}
			}
			for k := 0; k < m.M; k++ {
				if bDen[i] > 0 {
					m.B[i][k] = bNum[i][k] / bDen[i]
				}
			}
		}
		m.renormalize()
		if logProb-prevLog < tol && iter > 0 {
			break
		}
		prevLog = logProb
	}
	return logProb, iters, nil
}

// Sample generates an observation sequence of length n from the model,
// returning the hidden state path alongside.
func (m *Model) Sample(rng *rand.Rand, n int) (obs []Symbol, states []State) {
	if n <= 0 {
		return nil, nil
	}
	obs = make([]Symbol, n)
	states = make([]State, n)
	state := sampleIndex(m.Pi, rng)
	for t := 0; t < n; t++ {
		states[t] = State(state)
		obs[t] = Symbol(sampleIndex(m.B[state], rng))
		state = sampleIndex(m.A[state], rng)
	}
	return obs, states
}

func sampleIndex(dist []float64, rng *rand.Rand) int {
	u := rng.Float64()
	for i, p := range dist {
		if u < p {
			return i
		}
		u -= p
	}
	return len(dist) - 1
}

// modelJSON is the persistence shape.
type modelJSON struct {
	H  int         `json:"h"`
	M  int         `json:"m"`
	A  [][]float64 `json:"a"`
	B  [][]float64 `json:"b"`
	Pi []float64   `json:"pi"`
}

// Save writes the model parameters as JSON.
func (m *Model) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(modelJSON{H: m.H, M: m.M, A: m.A, B: m.B, Pi: m.Pi})
}

// LoadModel reads a model saved with Save and validates it.
func LoadModel(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("hmm: load: %w", err)
	}
	m := &Model{H: in.H, M: in.M, A: in.A, B: in.B, Pi: in.Pi}
	if m.H < 1 || m.M < 1 {
		return nil, fmt.Errorf("hmm: load: invalid sizes H=%d M=%d", m.H, m.M)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("hmm: load: %w", err)
	}
	return m, nil
}
