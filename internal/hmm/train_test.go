package hmm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func stickyGen() *Model {
	return &Model{
		H: 2, M: 2,
		A:  [][]float64{{0.9, 0.1}, {0.15, 0.85}},
		B:  [][]float64{{0.9, 0.1}, {0.1, 0.9}},
		Pi: []float64{0.5, 0.5},
	}
}

func TestSample(t *testing.T) {
	gen := stickyGen()
	rng := rand.New(rand.NewSource(1))
	obs, states := gen.Sample(rng, 500)
	if len(obs) != 500 || len(states) != 500 {
		t.Fatalf("lengths %d/%d", len(obs), len(states))
	}
	// Emissions should mostly match states under 0.9 emission fidelity.
	match := 0
	for i := range obs {
		if int(obs[i]) == int(states[i]) {
			match++
		}
	}
	if frac := float64(match) / 500; frac < 0.8 {
		t.Errorf("emission fidelity %.2f, want ≈ 0.9", frac)
	}
	// Stickiness: state changes should be rare.
	changes := 0
	for i := 1; i < len(states); i++ {
		if states[i] != states[i-1] {
			changes++
		}
	}
	if frac := float64(changes) / 499; frac > 0.25 {
		t.Errorf("state change rate %.2f too high for sticky chain", frac)
	}
	if o, s := gen.Sample(rng, 0); o != nil || s != nil {
		t.Error("n=0 should return nils")
	}
}

func TestBaumWelchMultiImproves(t *testing.T) {
	gen := stickyGen()
	rng := rand.New(rand.NewSource(2))
	var seqs [][]Symbol
	for i := 0; i < 5; i++ {
		obs, _ := gen.Sample(rng, 200)
		seqs = append(seqs, obs)
	}
	m, err := New(2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	var before float64
	for _, obs := range seqs {
		_, _, lp, err := m.Forward(obs)
		if err != nil {
			t.Fatal(err)
		}
		before += lp
	}
	after, iters, err := m.BaumWelchMulti(seqs, 100, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("multi-sequence training did not improve: %v → %v", before, after)
	}
	if iters < 2 {
		t.Errorf("iters = %d", iters)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("model invalid after training: %v", err)
	}
	// Recovered chain should be sticky (diagonal dominant up to
	// relabeling).
	diag := m.A[0][0] + m.A[1][1]
	anti := m.A[0][1] + m.A[1][0]
	if diag < anti {
		t.Errorf("expected sticky recovery, A = %v", m.A)
	}
}

func TestBaumWelchMultiValidation(t *testing.T) {
	m := NewPaperModel(1)
	if _, _, err := m.BaumWelchMulti(nil, 10, 1e-6); err == nil {
		t.Error("no sequences should fail")
	}
	if _, _, err := m.BaumWelchMulti([][]Symbol{{0, 5}}, 10, 1e-6); err == nil {
		t.Error("out-of-range symbol should fail")
	}
}

func TestBaumWelchMultiMatchesSingleOnOneSequence(t *testing.T) {
	gen := stickyGen()
	rng := rand.New(rand.NewSource(3))
	obs, _ := gen.Sample(rng, 300)

	single, _ := New(2, 2, 9)
	multi, _ := New(2, 2, 9)
	lpSingle, _, err := single.BaumWelch(obs, 30, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	lpMulti, _, err := multi.BaumWelchMulti([][]Symbol{obs}, 30, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpSingle-lpMulti) > 1e-6*math.Abs(lpSingle) {
		t.Errorf("single %v vs multi %v log-likelihood", lpSingle, lpMulti)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(single.A[i][j]-multi.A[i][j]) > 1e-6 {
				t.Errorf("A[%d][%d]: single %v, multi %v", i, j, single.A[i][j], multi.A[i][j])
			}
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := NewPaperModel(4)
	obs := make([]Symbol, 60)
	for i := range obs {
		obs[i] = Symbol(i % 3)
	}
	if _, _, err := m.BaumWelch(obs, 20, 1e-6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.H != m.H || loaded.M != m.M {
		t.Fatalf("shape mismatch: %dx%d", loaded.H, loaded.M)
	}
	wantPath, wantLP, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	gotPath, gotLP, err := loaded.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wantLP-gotLP) > 1e-12 {
		t.Errorf("Viterbi logP: %v vs %v", wantLP, gotLP)
	}
	for i := range wantPath {
		if wantPath[i] != gotPath[i] {
			t.Fatal("Viterbi paths diverge after round trip")
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	cases := []string{
		"{bad json",
		`{"h":0,"m":3,"a":[],"b":[],"pi":[]}`,
		`{"h":2,"m":2,"a":[[0.5,0.5]],"b":[[0.5,0.5],[0.5,0.5]],"pi":[0.5,0.5]}`,
		`{"h":2,"m":2,"a":[[0.9,0.9],[0.5,0.5]],"b":[[0.5,0.5],[0.5,0.5]],"pi":[0.5,0.5]}`,
	}
	for i, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func BenchmarkBaumWelchMulti(b *testing.B) {
	gen := stickyGen()
	rng := rand.New(rand.NewSource(5))
	var seqs [][]Symbol
	for i := 0; i < 8; i++ {
		obs, _ := gen.Sample(rng, 100)
		seqs = append(seqs, obs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := New(2, 2, int64(i))
		if _, _, err := m.BaumWelchMulti(seqs, 10, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}
