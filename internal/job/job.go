// Package job models cloud jobs: their multi-resource demands over time,
// their reserved allocations, and their SLO (a response-time threshold, as
// in the paper's Section IV: "SLO is specified by using a threshold on the
// response time of a job, and the threshold is set based on the execution
// time of a task in the trace").
//
// Two job populations appear in the reproduction, both using this type:
//
//   - Resident (tenant) jobs hold reserved allocations r on VMs and use
//     d(t) ≤ r of it each slot. Their allocated-but-unused resource
//     r − d(t) is what CORP predicts and reallocates.
//   - Short-lived jobs arrive over time (the paper's |J| = 50–300 jobs,
//     runtimes of seconds to minutes, timeout ≤ 5 minutes) and are placed
//     opportunistically onto that unused resource.
package job

import (
	"fmt"

	"repro/internal/resource"
)

// ID uniquely identifies a job within one simulation.
type ID int

// Class describes a job's resource intensity; the packing strategy pairs
// jobs of complementary classes (paper Fig. 1: "CPU-high and MEM-low,
// CPU-low and MEM-high").
type Class int

// Job intensity classes.
const (
	Balanced Class = iota
	CPUIntensive
	MemIntensive
	StorageIntensive
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case Balanced:
		return "balanced"
	case CPUIntensive:
		return "cpu-intensive"
	case MemIntensive:
		return "mem-intensive"
	case StorageIntensive:
		return "storage-intensive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Job is an immutable job specification. Runtime state (placement,
// progress, completion) lives in the simulator, not here, so specs can be
// shared freely across schedulers being compared on identical workloads.
type Job struct {
	ID      ID
	Class   Class
	Arrival int // slot index at which the job is submitted

	// Duration is the nominal execution time in slots when the job
	// receives its full demand every slot.
	Duration int

	// Request is the reserved allocation r_i for resident jobs. For
	// arriving short-lived jobs it is the peak demand, used as the
	// amount a non-opportunistic scheduler would reserve.
	Request resource.Vector

	// Usage holds the actual per-slot demand d_{i,t}; Usage[k] is the
	// demand during the job's k-th slot of execution. len(Usage) ≥
	// Duration; the series wraps around if a starved job runs long.
	Usage []resource.Vector

	// SLOFactor scales Duration into the response-time threshold:
	// threshold = ⌈SLOFactor · Duration⌉ slots. The paper sets the
	// threshold "based on the execution time of a task in the trace".
	SLOFactor float64
}

// Validate reports the first structural problem with the spec, or nil.
func (j *Job) Validate() error {
	switch {
	case j.Duration <= 0:
		return fmt.Errorf("job %d: non-positive duration %d", j.ID, j.Duration)
	case len(j.Usage) == 0:
		return fmt.Errorf("job %d: empty usage series", j.ID)
	case j.Arrival < 0:
		return fmt.Errorf("job %d: negative arrival %d", j.ID, j.Arrival)
	case j.SLOFactor <= 0:
		return fmt.Errorf("job %d: non-positive SLO factor %v", j.ID, j.SLOFactor)
	}
	for k, u := range j.Usage {
		if !u.NonNegative() {
			return fmt.Errorf("job %d: negative usage at slot %d: %v", j.ID, k, u)
		}
	}
	if !j.Request.NonNegative() {
		return fmt.Errorf("job %d: negative request %v", j.ID, j.Request)
	}
	return nil
}

// DemandAt returns the job's demand in its k-th slot of execution
// (k counted from 0). Indices past the series wrap around so a starved job
// that runs longer than its nominal duration keeps demanding resources.
func (j *Job) DemandAt(k int) resource.Vector {
	if len(j.Usage) == 0 {
		return resource.Vector{}
	}
	if k < 0 {
		k = 0
	}
	return j.Usage[k%len(j.Usage)]
}

// PeakDemand returns the element-wise maximum demand across the series.
func (j *Job) PeakDemand() resource.Vector {
	return resource.MaxAcross(j.Usage)
}

// MeanDemand returns the element-wise mean demand across the series.
func (j *Job) MeanDemand() resource.Vector {
	if len(j.Usage) == 0 {
		return resource.Vector{}
	}
	return resource.SumAcross(j.Usage).Scale(1 / float64(len(j.Usage)))
}

// UnusedAt returns the allocated-but-unused amount r − d(k) for a resident
// job, clamped at zero per kind (usage above the reservation is throttled,
// not borrowed).
func (j *Job) UnusedAt(k int) resource.Vector {
	return j.Request.Sub(j.DemandAt(k)).ClampNonNegative()
}

// SLOThreshold returns the response-time threshold in slots.
func (j *Job) SLOThreshold() int {
	t := int(j.SLOFactor*float64(j.Duration) + 0.999999)
	if t < j.Duration {
		t = j.Duration
	}
	return t
}

// Dominant returns the job's dominant resource kind given reference
// capacities (Section III-B: "the one that requires the most amount of
// resource"), based on peak demand.
func (j *Job) Dominant(reference resource.Vector) resource.Kind {
	return j.PeakDemand().Dominant(reference)
}

// Runtime is the mutable execution state of one job inside a simulation.
type Runtime struct {
	Spec *Job

	// Arrival is the job's arrival slot within this run's timeline. It
	// starts as Spec.Arrival plus any run-local offset (e.g. the
	// simulator's warmup shift) — run-local adjustments live here so the
	// shared spec stays immutable across runs.
	Arrival int

	// VM is the index of the hosting VM, or -1 while unplaced.
	VM int

	// Allocated is the amount currently granted to the job.
	Allocated resource.Vector

	// Progress accumulates fractional slots of completed work; the job
	// finishes when Progress ≥ Duration.
	Progress float64

	// Started and Finished are slot indices; -1 means not yet.
	Started  int
	Finished int

	// Slots counts how many slots the job has been running.
	Slots int

	// Entity groups jobs packed together (Section III-B); jobs in the
	// same entity share a VM. Zero means unpacked.
	Entity int

	// Evictions counts how many times a VM failure killed this job
	// mid-run; Retries counts the re-queues scheduled afterwards.
	Evictions int
	Retries   int

	// EvictedAt is the slot of the last eviction while the job awaits
	// re-placement, or -1. The simulator uses it for the
	// time-to-replace recovery metric.
	EvictedAt int
}

// NewRuntime returns a fresh runtime for the spec, unplaced and unstarted,
// arriving at the spec's own arrival slot.
func NewRuntime(spec *Job) *Runtime {
	return NewRuntimeAt(spec, spec.Arrival)
}

// NewRuntimeAt returns a fresh runtime for the spec arriving at the given
// run-local slot. Use this to apply timeline offsets (warmup shifts)
// without writing through the shared, immutable spec.
func NewRuntimeAt(spec *Job, arrival int) *Runtime {
	return &Runtime{Spec: spec, Arrival: arrival, VM: -1, Started: -1, Finished: -1, EvictedAt: -1}
}

// Evict resets the runtime after its hosting VM failed at the given slot:
// the placement and all progress are lost, and the job must be re-placed
// and re-run from the start. The lost time still counts against the job's
// response-time SLO, which is how failures become SLO damage.
func (r *Runtime) Evict(slot int) {
	r.VM = -1
	r.Allocated = resource.Vector{}
	r.Progress = 0
	r.Slots = 0
	r.Entity = 0
	r.Evictions++
	r.EvictedAt = slot
}

// Running reports whether the job has started and not finished.
func (r *Runtime) Running() bool {
	return r.Started >= 0 && r.Finished < 0
}

// Done reports whether the job has finished.
func (r *Runtime) Done() bool { return r.Finished >= 0 }

// ResponseTime returns finish − arrival in slots, or -1 if unfinished.
// A job that finishes in the slot it arrives has response time 1 (it
// occupied one scheduling slot).
func (r *Runtime) ResponseTime() int {
	if r.Finished < 0 {
		return -1
	}
	return r.Finished - r.Arrival + 1
}

// SLOViolated reports whether a finished job exceeded its response-time
// threshold. Unfinished jobs report false; the simulator accounts for
// still-running jobs past deadline separately.
func (r *Runtime) SLOViolated() bool {
	rt := r.ResponseTime()
	return rt >= 0 && rt > r.Spec.SLOThreshold()
}

// Advance simulates one slot of execution given the allocation that was in
// force. Progress for the slot is min over resource kinds of
// granted/demanded, capped at 1 — a starved job (granted < demanded on any
// kind) makes proportionally slower progress, which is how resource
// unavailability turns into response-time (and hence SLO) damage.
// It returns the progress made this slot.
func (r *Runtime) Advance(granted resource.Vector) float64 {
	return r.AdvanceWith(granted, r.Spec.DemandAt(r.Slots))
}

// AdvanceWith is Advance for callers that already hold this slot's demand
// (it must equal Spec.DemandAt(r.Slots)); the simulator's execute path
// looks the demand up once per job-slot and reuses it for grant scaling
// and advancement.
func (r *Runtime) AdvanceWith(granted, demand resource.Vector) float64 {
	rate := ProgressRate(granted, demand)
	r.Progress += rate
	r.Slots++
	return rate
}

// ProgressRate is the slot progress Advance applies for the given grant:
// min over resource kinds of granted/demanded, capped at 1 and floored at
// 0, with zero-demand kinds imposing no constraint. The fully-granted fast
// path is exact, not approximate: when granted equals demand bitwise,
// every positive kind divides to exactly 1.0 (x/x == 1 for any finite
// positive x) and non-positive kinds are skipped, so the loop would return
// exactly 1.
func ProgressRate(granted, demand resource.Vector) float64 {
	if granted == demand {
		return 1
	}
	rate := 1.0
	for _, k := range resource.Kinds() {
		d := demand.At(k)
		if d <= 0 {
			continue
		}
		g := granted.At(k) / d
		if g < rate {
			rate = g
		}
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}
