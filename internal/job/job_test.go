package job

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func spec() *Job {
	return &Job{
		ID:       1,
		Class:    CPUIntensive,
		Arrival:  5,
		Duration: 4,
		Request:  resource.New(8, 2, 10),
		Usage: []resource.Vector{
			resource.New(4, 1, 2),
			resource.New(6, 1, 2),
			resource.New(8, 2, 2),
			resource.New(2, 1, 2),
		},
		SLOFactor: 1.5,
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Balanced: "balanced", CPUIntensive: "cpu-intensive",
		MemIntensive: "mem-intensive", StorageIntensive: "storage-intensive",
		Class(9): "Class(9)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestValidateOK(t *testing.T) {
	if err := spec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Job)
	}{
		{"zero duration", func(j *Job) { j.Duration = 0 }},
		{"empty usage", func(j *Job) { j.Usage = nil }},
		{"negative arrival", func(j *Job) { j.Arrival = -1 }},
		{"zero SLO factor", func(j *Job) { j.SLOFactor = 0 }},
		{"negative usage", func(j *Job) { j.Usage[1] = resource.New(-1, 0, 0) }},
		{"negative request", func(j *Job) { j.Request = resource.New(-1, 0, 0) }},
	}
	for _, m := range mutations {
		j := spec()
		m.mut(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestDemandAtWrapsAndClamps(t *testing.T) {
	j := spec()
	if got := j.DemandAt(0); got != resource.New(4, 1, 2) {
		t.Errorf("DemandAt(0) = %v", got)
	}
	// Wraps: slot 4 == slot 0.
	if j.DemandAt(4) != j.DemandAt(0) {
		t.Error("DemandAt should wrap past the series")
	}
	// Negative clamps to 0.
	if j.DemandAt(-3) != j.DemandAt(0) {
		t.Error("negative index should clamp to 0")
	}
	empty := &Job{}
	if !empty.DemandAt(0).IsZero() {
		t.Error("empty usage should demand zero")
	}
}

func TestPeakAndMeanDemand(t *testing.T) {
	j := spec()
	if got := j.PeakDemand(); got != resource.New(8, 2, 2) {
		t.Errorf("PeakDemand = %v", got)
	}
	mean := j.MeanDemand()
	if math.Abs(mean.At(resource.CPU)-5) > 1e-12 {
		t.Errorf("mean CPU = %v, want 5", mean.At(resource.CPU))
	}
	if !(&Job{}).MeanDemand().IsZero() {
		t.Error("empty mean should be zero")
	}
}

func TestUnusedAt(t *testing.T) {
	j := spec()
	// Slot 0: request <8,2,10> − usage <4,1,2> = <4,1,8>.
	if got := j.UnusedAt(0); got != resource.New(4, 1, 8) {
		t.Errorf("UnusedAt(0) = %v", got)
	}
	// Usage above request clamps to zero, never negative.
	j.Request = resource.New(3, 0, 0)
	u := j.UnusedAt(2) // usage <8,2,2>
	if !u.NonNegative() {
		t.Errorf("UnusedAt must be non-negative, got %v", u)
	}
}

func TestSLOThreshold(t *testing.T) {
	j := spec() // duration 4, factor 1.5 → 6
	if got := j.SLOThreshold(); got != 6 {
		t.Errorf("SLOThreshold = %d, want 6", got)
	}
	// Factor below 1 is floored at the duration itself.
	j.SLOFactor = 0.5
	if got := j.SLOThreshold(); got != 4 {
		t.Errorf("SLOThreshold floor = %d, want 4", got)
	}
	// Fractional products round up.
	j.SLOFactor = 1.1 // 4.4 → 5
	if got := j.SLOThreshold(); got != 5 {
		t.Errorf("SLOThreshold ceil = %d, want 5", got)
	}
}

func TestDominant(t *testing.T) {
	j := spec()
	ref := resource.New(16, 4, 100)
	// Peak <8,2,2>: CPU share 0.5, MEM share 0.5, STO 0.02 → CPU wins ties
	// by order; verify it's one of the two leaders.
	d := j.Dominant(ref)
	if d != resource.CPU && d != resource.Memory {
		t.Errorf("Dominant = %v", d)
	}
}

func TestRuntimeLifecycle(t *testing.T) {
	j := spec()
	r := NewRuntime(j)
	if r.Running() || r.Done() {
		t.Error("fresh runtime should be neither running nor done")
	}
	if r.VM != -1 {
		t.Error("fresh runtime should be unplaced")
	}
	if r.ResponseTime() != -1 {
		t.Error("unfinished response time should be -1")
	}
	r.Started = 5
	if !r.Running() {
		t.Error("started runtime should be running")
	}
	r.Finished = 10
	if !r.Done() || r.Running() {
		t.Error("finished runtime state wrong")
	}
	// Response time = 10 − 5 + 1 = 6 = threshold → not violated.
	if r.ResponseTime() != 6 {
		t.Errorf("ResponseTime = %d, want 6", r.ResponseTime())
	}
	if r.SLOViolated() {
		t.Error("response time equal to threshold is not a violation")
	}
	r.Finished = 11 // response 7 > 6 → violation
	if !r.SLOViolated() {
		t.Error("late finish should violate SLO")
	}
}

func TestAdvanceFullAllocation(t *testing.T) {
	j := spec()
	r := NewRuntime(j)
	r.Started = j.Arrival
	for k := 0; k < j.Duration; k++ {
		rate := r.Advance(j.DemandAt(k))
		if rate != 1 {
			t.Fatalf("slot %d: rate = %v, want 1", k, rate)
		}
	}
	if r.Progress < float64(j.Duration)-1e-9 {
		t.Errorf("Progress = %v, want %d", r.Progress, j.Duration)
	}
}

func TestAdvanceStarved(t *testing.T) {
	j := spec()
	r := NewRuntime(j)
	// Grant half the CPU demanded in slot 0 (<4,1,2> demanded).
	rate := r.Advance(resource.New(2, 1, 2))
	if math.Abs(rate-0.5) > 1e-12 {
		t.Errorf("starved rate = %v, want 0.5", rate)
	}
	// Grant nothing: no progress, but the slot still elapses.
	rate = r.Advance(resource.Vector{})
	if rate != 0 {
		t.Errorf("zero-grant rate = %v, want 0", rate)
	}
	if r.Slots != 2 {
		t.Errorf("Slots = %d, want 2", r.Slots)
	}
}

func TestAdvanceZeroDemandKindIgnored(t *testing.T) {
	j := &Job{
		ID: 2, Duration: 1, SLOFactor: 1,
		Usage: []resource.Vector{resource.New(4, 0, 0)},
	}
	r := NewRuntime(j)
	// MEM/storage demand is zero; granting zero of them must not starve.
	if rate := r.Advance(resource.New(4, 0, 0)); rate != 1 {
		t.Errorf("rate = %v, want 1", rate)
	}
}

// Property: Advance rate is always within [0, 1] and Progress is
// monotone non-decreasing.
func TestQuickAdvanceRateBounded(t *testing.T) {
	f := func(grantCPU, grantMem, grantSto float64) bool {
		g := resource.New(
			math.Abs(math.Mod(grantCPU, 100)),
			math.Abs(math.Mod(grantMem, 100)),
			math.Abs(math.Mod(grantSto, 100)),
		)
		j := spec()
		r := NewRuntime(j)
		before := r.Progress
		rate := r.Advance(g)
		return rate >= 0 && rate <= 1 && r.Progress >= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UnusedAt is non-negative and bounded by Request per kind.
func TestQuickUnusedBounds(t *testing.T) {
	f := func(k int) bool {
		j := spec()
		u := j.UnusedAt(k % 100)
		if !u.NonNegative() {
			return false
		}
		return u.FitsIn(j.Request)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
