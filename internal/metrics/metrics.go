// Package metrics implements the paper's evaluation metrics:
//
//   - per-resource utilization U_{j,t} (Eq. 1),
//   - weighted overall utilization U_{a,t} (Eq. 2),
//   - per-resource wastage ratio w_{j,t} (Eq. 3),
//   - weighted overall wastage ratio w_{a,t} (Eq. 4),
//   - the prediction error rate of Fig. 6 (the fraction of jobs whose
//     prediction error falls outside [0, ε)),
//   - the SLO violation rate, and
//   - time-keeping for the scheduling-overhead figures (Figs. 10/14).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/resource"
)

// Utilization computes Eq. 1 for kind j at one slot:
// U_{j,t} = Σᵢ d_{ij,t} / Σᵢ r_{ij,t}. A zero denominator yields 0.
func Utilization(allocated, demand []resource.Vector, j resource.Kind) float64 {
	var num, den float64
	for i := range allocated {
		den += allocated[i].At(j)
	}
	for i := range demand {
		num += demand[i].At(j)
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// OverallUtilization computes Eq. 2: the ω-weighted overall utilization
// across kinds at one slot.
func OverallUtilization(allocated, demand []resource.Vector, w resource.Weights) float64 {
	num := resource.SumAcross(demand).Weighted(w)
	den := resource.SumAcross(allocated).Weighted(w)
	if den <= 0 {
		return 0
	}
	return num / den
}

// WastageRatio computes Eq. 3: w_{j,t} = Σᵢ(r−d) / Σᵢ r for kind j.
func WastageRatio(allocated, demand []resource.Vector, j resource.Kind) float64 {
	u := Utilization(allocated, demand, j)
	return 1 - u
}

// OverallWastageRatio computes Eq. 4, the ω-weighted overall wastage.
func OverallWastageRatio(allocated, demand []resource.Vector, w resource.Weights) float64 {
	return 1 - OverallUtilization(allocated, demand, w)
}

// UtilizationCollector accumulates allocation/demand mass over an entire
// run so per-kind and overall utilization can be reported across all slots
// (the time-average of Eqs. 1–2 with slot sums pooled).
type UtilizationCollector struct {
	Allocated resource.Vector
	Demand    resource.Vector
	Slots     int
}

// Observe adds one slot's per-job totals.
func (c *UtilizationCollector) Observe(allocated, demand resource.Vector) {
	c.Allocated = c.Allocated.Add(allocated)
	c.Demand = c.Demand.Add(demand)
	c.Slots++
}

// Utilization returns the pooled utilization for kind j.
func (c *UtilizationCollector) Utilization(j resource.Kind) float64 {
	den := c.Allocated.At(j)
	if den <= 0 {
		return 0
	}
	return c.Demand.At(j) / den
}

// Overall returns the pooled ω-weighted utilization.
func (c *UtilizationCollector) Overall(w resource.Weights) float64 {
	den := c.Allocated.Weighted(w)
	if den <= 0 {
		return 0
	}
	return c.Demand.Weighted(w) / den
}

// PredictionOutcome records one job's prediction quality: the signed error
// actual − predicted, evaluated against the tolerance ε of Eq. 21.
type PredictionOutcome struct {
	JobID int
	Error float64
}

// PredictionErrorRate returns the fraction of jobs whose error falls
// OUTSIDE [0, ε) — the complement of the paper's "ratio of the correctly
// predicted jobs", so lower is better, matching Fig. 6's ordering
// CORP < RCCR < CloudScale < DRA.
func PredictionErrorRate(outcomes []PredictionOutcome, epsilon float64) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	bad := 0
	for _, o := range outcomes {
		if o.Error < 0 || o.Error >= epsilon {
			bad++
		}
	}
	return float64(bad) / float64(len(outcomes))
}

// SLOStats tallies finished jobs against their response-time thresholds.
type SLOStats struct {
	Finished   int
	Violated   int
	Unfinished int
}

// ViolationRate returns violations / (finished + unfinished); an
// unfinished job at the end of a run counts as violated — it certainly
// missed its deadline.
func (s SLOStats) ViolationRate() float64 {
	total := s.Finished + s.Unfinished
	if total == 0 {
		return 0
	}
	return float64(s.Violated+s.Unfinished) / float64(total)
}

// RecoveryStats aggregates fault-injection and recovery accounting for one
// run: what failed, what was killed, and how the system healed. The zero
// value is what a fault-free run reports.
type RecoveryStats struct {
	// VMCrashes and PMCrashes count failure events; VMRecoveries counts
	// repairs that completed within the run.
	VMCrashes    int
	PMCrashes    int
	VMRecoveries int

	// Evictions counts short-lived jobs killed mid-run by a VM failure.
	// Retries counts the re-queues scheduled for them; RetriesExhausted
	// counts jobs abandoned after their retry budget ran out.
	Evictions        int
	Retries          int
	RetriesExhausted int

	// Replaced counts evicted jobs that were placed again; ReplaceSlots
	// sums their eviction-to-replacement gaps (backoff plus queueing).
	Replaced     int
	ReplaceSlots int

	// SurgeSlots counts (VM, slot) pairs spent under a resident demand
	// surge; Delays and InjectedDelayMicros tally transient
	// scheduler/RPC stalls charged to the overhead metric.
	Delays              int
	InjectedDelayMicros float64
	SurgeSlots          int

	// SLO violation attribution: ViolationsFailure counts violated or
	// unfinished jobs that were evicted at least once (failure damage);
	// ViolationsStarvation counts the rest (opportunistic starvation,
	// the paper's fault-free mechanism).
	ViolationsFailure    int
	ViolationsStarvation int
}

// MeanTimeToReplace returns the average slots from eviction to
// re-placement over replaced jobs (0 when none were replaced).
func (r RecoveryStats) MeanTimeToReplace() float64 {
	if r.Replaced == 0 {
		return 0
	}
	return float64(r.ReplaceSlots) / float64(r.Replaced)
}

// Series is a labeled (x, y) series, the unit every figure harness emits.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// String renders the series as "label: (x→y) ..." for harness output.
func (s *Series) String() string {
	out := s.Label + ":"
	for i := range s.X {
		out += fmt.Sprintf(" (%.4g→%.4g)", s.X[i], s.Y[i])
	}
	return out
}

// Monotone reports whether Y is non-decreasing (+1), non-increasing (−1),
// or neither (0) — used by experiment self-checks asserting figure shape.
func (s *Series) Monotone() int {
	inc, dec := true, true
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1]-1e-12 {
			inc = false
		}
		if s.Y[i] > s.Y[i-1]+1e-12 {
			dec = false
		}
	}
	switch {
	case inc && !dec:
		return 1
	case dec && !inc:
		return -1
	case inc && dec:
		return 1 // constant counts as non-decreasing
	default:
		return 0
	}
}

// MeanY returns the mean of the Y values.
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// DominatesEverywhere reports whether s.Y[i] ≥ o.Y[i] at every shared
// index (within slack), used to assert orderings like CORP > RCCR.
func (s *Series) DominatesEverywhere(o *Series, slack float64) bool {
	n := len(s.Y)
	if len(o.Y) < n {
		n = len(o.Y)
	}
	for i := 0; i < n; i++ {
		if s.Y[i] < o.Y[i]-slack {
			return false
		}
	}
	return n > 0
}

// LatencyTracker accumulates scheduling overhead: real compute time spent
// in scheduler decisions plus simulated communication latency, in
// microseconds. Figs. 10/14 report this as "the latency for allocating
// resource to 300 jobs".
type LatencyTracker struct {
	ComputeMicros float64
	CommMicros    float64
	Operations    int
}

// AddCompute records real decision-making time.
func (l *LatencyTracker) AddCompute(micros float64) {
	l.ComputeMicros += micros
}

// AddComm records one communication round-trip of the given cost.
func (l *LatencyTracker) AddComm(micros float64) {
	l.CommMicros += micros
	l.Operations++
}

// AddCommRepeat records n identical communication round-trips. The
// accumulator is advanced by n repeated additions, not by `+= n*micros`:
// float addition is not associative, so a single fused add would drift
// from n individual AddComm calls once the accumulator holds unrelated
// values (e.g. fault DelayMicros). Callers rely on this being bit-identical
// to a loop of AddComm.
func (l *LatencyTracker) AddCommRepeat(n int, micros float64) {
	for i := 0; i < n; i++ {
		l.CommMicros += micros
	}
	l.Operations += n
}

// TotalMicros returns compute + communication latency.
func (l *LatencyTracker) TotalMicros() float64 {
	return l.ComputeMicros + l.CommMicros
}

// TotalMillis returns the total in milliseconds.
func (l *LatencyTracker) TotalMillis() float64 {
	return l.TotalMicros() / 1000
}

// JainFairness computes Jain's fairness index (Σx)²/(n·Σx²) over the
// per-job service ratios: 1.0 means every job received the same fraction
// of its demand, 1/n means one job got everything. Empty or all-zero
// inputs return 0.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// PercentileInt returns the p-th percentile of integer samples (nearest
// rank); ok is false when empty.
func PercentileInt(xs []int, p float64) (int, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	if p <= 0 {
		return sorted[0], true
	}
	if p >= 100 {
		return sorted[len(sorted)-1], true
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank], true
}

// RelativeGap returns (a−b)/b, guarding the zero denominator; handy for
// EXPERIMENTS.md paper-vs-measured factors.
func RelativeGap(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (a - b) / b
}
