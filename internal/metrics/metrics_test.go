package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func TestUtilizationEq1(t *testing.T) {
	allocated := []resource.Vector{resource.New(10, 4, 2), resource.New(10, 4, 2)}
	demand := []resource.Vector{resource.New(5, 2, 1), resource.New(5, 2, 1)}
	if got := Utilization(allocated, demand, resource.CPU); got != 0.5 {
		t.Errorf("CPU utilization = %v, want 0.5", got)
	}
	if got := Utilization(nil, nil, resource.CPU); got != 0 {
		t.Errorf("empty utilization = %v, want 0", got)
	}
}

func TestOverallUtilizationEq2(t *testing.T) {
	allocated := []resource.Vector{resource.New(10, 10, 10)}
	demand := []resource.Vector{resource.New(5, 10, 0)}
	w := resource.DefaultWeights() // 0.4/0.4/0.2
	// num = 0.4·5 + 0.4·10 + 0.2·0 = 6; den = 10 → 0.6.
	if got := OverallUtilization(allocated, demand, w); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("overall = %v, want 0.6", got)
	}
}

func TestWastageComplementsUtilization(t *testing.T) {
	allocated := []resource.Vector{resource.New(8, 8, 8)}
	demand := []resource.Vector{resource.New(6, 2, 8)}
	for _, k := range resource.Kinds() {
		u := Utilization(allocated, demand, k)
		wst := WastageRatio(allocated, demand, k)
		if math.Abs(u+wst-1) > 1e-12 {
			t.Errorf("kind %v: U + w = %v, want 1", k, u+wst)
		}
	}
	w := resource.DefaultWeights()
	if math.Abs(OverallUtilization(allocated, demand, w)+OverallWastageRatio(allocated, demand, w)-1) > 1e-12 {
		t.Error("overall wastage does not complement overall utilization")
	}
}

func TestUtilizationCollector(t *testing.T) {
	var c UtilizationCollector
	c.Observe(resource.New(10, 10, 10), resource.New(5, 5, 5))
	c.Observe(resource.New(10, 10, 10), resource.New(10, 5, 0))
	if c.Slots != 2 {
		t.Errorf("Slots = %d", c.Slots)
	}
	if got := c.Utilization(resource.CPU); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("pooled CPU utilization = %v, want 0.75", got)
	}
	overall := c.Overall(resource.DefaultWeights())
	// demand weighted: 0.4·15 + 0.4·10 + 0.2·5 = 11; alloc: 0.4·20+0.4·20+0.2·20 = 20.
	if math.Abs(overall-0.55) > 1e-12 {
		t.Errorf("pooled overall = %v, want 0.55", overall)
	}
	var empty UtilizationCollector
	if empty.Utilization(resource.CPU) != 0 || empty.Overall(resource.DefaultWeights()) != 0 {
		t.Error("empty collector should report zero")
	}
}

func TestPredictionErrorRate(t *testing.T) {
	outcomes := []PredictionOutcome{
		{JobID: 0, Error: 0.0},  // in [0, ε) → correct
		{JobID: 1, Error: 0.05}, // correct
		{JobID: 2, Error: -0.1}, // negative → wrong (overestimate)
		{JobID: 3, Error: 0.2},  // ≥ ε → wrong
	}
	if got := PredictionErrorRate(outcomes, 0.1); got != 0.5 {
		t.Errorf("error rate = %v, want 0.5", got)
	}
	if PredictionErrorRate(nil, 0.1) != 0 {
		t.Error("empty outcomes should be 0")
	}
}

func TestSLOStats(t *testing.T) {
	s := SLOStats{Finished: 8, Violated: 2, Unfinished: 2}
	// (2 + 2) / (8 + 2) = 0.4.
	if got := s.ViolationRate(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("violation rate = %v, want 0.4", got)
	}
	if (SLOStats{}).ViolationRate() != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "CORP"
	s.Append(50, 0.6)
	s.Append(100, 0.7)
	s.Append(150, 0.8)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Monotone() != 1 {
		t.Errorf("Monotone = %d, want 1", s.Monotone())
	}
	if math.Abs(s.MeanY()-0.7) > 1e-12 {
		t.Errorf("MeanY = %v", s.MeanY())
	}
	if !strings.HasPrefix(s.String(), "CORP:") {
		t.Errorf("String = %q", s.String())
	}
	var d Series
	d.Append(50, 0.9)
	d.Append(100, 0.2)
	d.Append(150, 0.95)
	if d.Monotone() != 0 {
		t.Errorf("non-monotone series misclassified: %d", d.Monotone())
	}
	var dec Series
	dec.Append(1, 3)
	dec.Append(2, 2)
	if dec.Monotone() != -1 {
		t.Errorf("decreasing series misclassified: %d", dec.Monotone())
	}
	var flat Series
	flat.Append(1, 2)
	flat.Append(2, 2)
	if flat.Monotone() != 1 {
		t.Error("constant series should count as non-decreasing")
	}
	if (&Series{}).MeanY() != 0 {
		t.Error("empty MeanY should be 0")
	}
}

func TestDominatesEverywhere(t *testing.T) {
	a := &Series{Y: []float64{0.8, 0.9, 0.95}}
	b := &Series{Y: []float64{0.7, 0.85, 0.9}}
	if !a.DominatesEverywhere(b, 0) {
		t.Error("a should dominate b")
	}
	if b.DominatesEverywhere(a, 0) {
		t.Error("b should not dominate a")
	}
	// Slack forgives small inversions.
	c := &Series{Y: []float64{0.69, 0.9, 0.99}}
	if !c.DominatesEverywhere(b, 0.02) {
		t.Error("slack should forgive a 0.01 inversion")
	}
	if (&Series{}).DominatesEverywhere(&Series{}, 0) {
		t.Error("empty series should not dominate")
	}
}

func TestLatencyTracker(t *testing.T) {
	var l LatencyTracker
	l.AddCompute(500)
	l.AddComm(250)
	l.AddComm(250)
	if l.Operations != 2 {
		t.Errorf("Operations = %d", l.Operations)
	}
	if l.TotalMicros() != 1000 {
		t.Errorf("TotalMicros = %v", l.TotalMicros())
	}
	if l.TotalMillis() != 1 {
		t.Errorf("TotalMillis = %v", l.TotalMillis())
	}
}

func TestRelativeGap(t *testing.T) {
	if got := RelativeGap(12, 10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("gap = %v", got)
	}
	if RelativeGap(0, 0) != 0 {
		t.Error("0/0 gap should be 0")
	}
	if !math.IsInf(RelativeGap(1, 0), 1) {
		t.Error("x/0 gap should be +Inf")
	}
}

// Property: utilization is always in [0, 1] when demand ≤ allocated
// element-wise, and wastage complements it.
func TestQuickUtilizationBounds(t *testing.T) {
	f := func(alloc resource.Vector, fracRaw float64) bool {
		alloc = alloc.ClampNonNegative()
		for i := range alloc {
			if math.IsInf(alloc[i], 0) || math.IsNaN(alloc[i]) {
				return true
			}
		}
		frac := math.Abs(math.Mod(fracRaw, 1))
		if math.IsNaN(frac) {
			frac = 0.5
		}
		demand := alloc.Scale(frac)
		a := []resource.Vector{alloc}
		d := []resource.Vector{demand}
		for _, k := range resource.Kinds() {
			u := Utilization(a, d, k)
			if u < 0 || u > 1+1e-9 {
				return false
			}
		}
		overall := OverallUtilization(a, d, resource.DefaultWeights())
		return overall >= 0 && overall <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PredictionErrorRate is within [0, 1] and monotone
// non-increasing in ε.
func TestQuickErrorRateMonotoneInEpsilon(t *testing.T) {
	f := func(errs []float64, e1, e2 float64) bool {
		outcomes := make([]PredictionOutcome, len(errs))
		for i, e := range errs {
			if math.IsNaN(e) {
				e = 0
			}
			outcomes[i] = PredictionOutcome{JobID: i, Error: math.Mod(e, 10)}
		}
		a := math.Abs(math.Mod(e1, 5))
		b := math.Abs(math.Mod(e2, 5))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		rLo := PredictionErrorRate(outcomes, lo)
		rHi := PredictionErrorRate(outcomes, hi)
		return rLo >= 0 && rLo <= 1 && rHi >= 0 && rHi <= 1 && rHi <= rLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainFairness(t *testing.T) {
	if JainFairness(nil) != 0 {
		t.Error("empty should be 0")
	}
	if JainFairness([]float64{0, 0}) != 0 {
		t.Error("all-zero should be 0")
	}
	if got := JainFairness([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares fairness = %v, want 1", got)
	}
	// One job gets everything: 1/n.
	if got := JainFairness([]float64{4, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("monopoly fairness = %v, want 0.25", got)
	}
}

func TestPercentileInt(t *testing.T) {
	if _, ok := PercentileInt(nil, 50); ok {
		t.Error("empty should not be ok")
	}
	xs := []int{5, 1, 9, 3, 7}
	if p, _ := PercentileInt(xs, 0); p != 1 {
		t.Errorf("p0 = %d", p)
	}
	if p, _ := PercentileInt(xs, 100); p != 9 {
		t.Errorf("p100 = %d", p)
	}
	if p, _ := PercentileInt(xs, 50); p != 5 {
		t.Errorf("p50 = %d", p)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("PercentileInt mutated input")
	}
}

// Property: Jain's index lies in [1/n, 1] for non-negative non-zero input.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, x := range raw {
			xs[i] = math.Abs(math.Mod(x, 100))
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
			if xs[i] > 0 {
				nonzero = true
			}
		}
		got := JainFairness(xs)
		if !nonzero {
			return got == 0
		}
		n := float64(len(xs))
		return got >= 1/n-1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecoveryStatsMeanTimeToReplace(t *testing.T) {
	var r RecoveryStats
	if r.MeanTimeToReplace() != 0 {
		t.Error("zero replacements should report 0, not NaN")
	}
	r.Replaced = 4
	r.ReplaceSlots = 10
	if got := r.MeanTimeToReplace(); got != 2.5 {
		t.Errorf("MeanTimeToReplace = %v, want 2.5", got)
	}
	// The zero value is the fault-free report.
	if (RecoveryStats{}) != *new(RecoveryStats) {
		t.Error("RecoveryStats must stay comparable")
	}
}

// TestAddCommRepeatBitIdentical pins AddCommRepeat == a loop of AddComm
// even when the accumulator already holds an unrelated value (a fault
// delay), where a fused `+= n*micros` would drift: float addition is not
// associative, so the repeated-add sequence is the contract.
func TestAddCommRepeatBitIdentical(t *testing.T) {
	for _, contaminant := range []float64{0, 0.1, 5000.3, 1e12 + 0.7} {
		for _, n := range []int{0, 1, 7, 1000} {
			micros := 125.00000000000003
			var loop, batch LatencyTracker
			loop.AddComm(contaminant)
			batch.AddComm(contaminant)
			for i := 0; i < n; i++ {
				loop.AddComm(micros)
			}
			batch.AddCommRepeat(n, micros)
			if loop != batch {
				t.Fatalf("contaminant %v n %d: loop %+v != batch %+v", contaminant, n, loop, batch)
			}
			// The fused form must be detectably different somewhere, or
			// this test pins nothing; 1e12+0.7 with n=1000 drifts.
			_ = batch
		}
	}
	// Confirm the repeated-add contract is not vacuous: for at least one
	// accumulator state the fused multiply-add differs from the loop.
	var loop LatencyTracker
	loop.AddComm(1e12 + 0.7)
	for i := 0; i < 1000; i++ {
		loop.AddComm(125.00000000000003)
	}
	fused := 1e12 + 0.7 + 1000*125.00000000000003
	if loop.CommMicros == fused {
		t.Log("fused and repeated adds coincide for this input; contract still holds")
	}
}
