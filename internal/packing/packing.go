// Package packing implements Section III-B of the paper: complementary job
// packing and most-matched VM selection.
//
// Packing pairs jobs whose dominant resources differ (e.g. a CPU-intensive
// job with a storage-intensive one) so a single VM's multi-resource slack
// is consumed evenly instead of fragmenting (paper Figs. 1 and 4). The
// complementary partner of a job is the one maximizing the demand
// deviation
//
//	DV(j,i) = Σₖ ((d_jk − avg_k)² + (d_ik − avg_k)²),  avg_k = (d_jk+d_ik)/2.
//
// Placement picks, among VMs whose available resources satisfy the entity,
// the one with the smallest unused resource volume (Eq. 22):
//
//	volumeⱼ = Σₖ r̂_jk / C′ₖ,
//
// where C′ is the per-kind maximum capacity across all VMs — the "most
// matched" VM, leaving big slack blocks intact for later entities.
package packing

import (
	"repro/internal/job"
	"repro/internal/resource"
)

// Deviation computes DV(j,i) for two demand vectors. It expands to
// Σₖ (d_jk − d_ik)²/2: the more complementary two jobs are per kind, the
// larger the deviation.
func Deviation(a, b resource.Vector) float64 {
	var dv float64
	for k := range a {
		avg := (a[k] + b[k]) / 2
		da := a[k] - avg
		db := b[k] - avg
		dv += da*da + db*db
	}
	return dv
}

// Entity is a set of jobs allocated together on one VM (one job, or a
// complementary pair).
type Entity struct {
	Jobs []*job.Job
	// Demand is the summed per-kind peak demand of the members — what a
	// VM must satisfy to host the entity.
	Demand resource.Vector
}

// NewEntity builds an entity over the given jobs.
func NewEntity(jobs ...*job.Job) Entity {
	e := Entity{Jobs: jobs}
	for _, j := range jobs {
		e.Demand = e.Demand.Add(j.PeakDemand())
	}
	return e
}

// Pack groups the jobs into entities following the paper's algorithm:
// fetch each job in list order, search the remaining jobs for the
// highest-deviation partner among those with a different dominant resource
// (normalized by reference capacities), pair them, and continue. Jobs with
// no complementary partner form singleton entities. The input slice is not
// modified.
func Pack(jobs []*job.Job, reference resource.Vector) []Entity {
	used := make([]bool, len(jobs))
	dominant := make([]resource.Kind, len(jobs))
	peaks := make([]resource.Vector, len(jobs))
	for i, j := range jobs {
		peaks[i] = j.PeakDemand()
		dominant[i] = peaks[i].Dominant(reference)
	}
	var entities []Entity
	for i, j := range jobs {
		if used[i] {
			continue
		}
		used[i] = true
		best := -1
		bestDV := -1.0
		for cand := i + 1; cand < len(jobs); cand++ {
			if used[cand] || dominant[cand] == dominant[i] {
				continue
			}
			if dv := Deviation(peaks[i], peaks[cand]); dv > bestDV {
				bestDV = dv
				best = cand
			}
		}
		if best >= 0 {
			used[best] = true
			entities = append(entities, NewEntity(j, jobs[best]))
		} else {
			entities = append(entities, NewEntity(j))
		}
	}
	return entities
}

// Candidate is one VM a placer may choose: its ID and the resources
// available to the entity there (predicted unlocked unused, or unallocated
// headroom, depending on which pool the scheduler is placing from).
type Candidate struct {
	VM        int
	Available resource.Vector
}

// Place selects the most-matched VM for the demand: among candidates whose
// Available satisfies it, the one with the smallest volume (Eq. 22), with
// the lower VM ID breaking exact ties deterministically. ok is false when
// no candidate fits. maxCapacity is C′ of Eq. 22.
func Place(demand resource.Vector, candidates []Candidate, maxCapacity resource.Vector) (vm int, ok bool) {
	bestVM := -1
	bestVol := 0.0
	for _, c := range candidates {
		if !demand.FitsIn(c.Available) {
			continue
		}
		vol := c.Available.Volume(maxCapacity)
		if bestVM < 0 || vol < bestVol || (vol == bestVol && c.VM < bestVM) {
			bestVM = c.VM
			bestVol = vol
		}
	}
	if bestVM < 0 {
		return 0, false
	}
	return bestVM, true
}
