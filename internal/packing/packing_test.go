package packing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/resource"
)

func mkJob(id int, cpu, mem, sto float64) *job.Job {
	return &job.Job{
		ID:        job.ID(id),
		Duration:  2,
		SLOFactor: 2,
		Usage: []resource.Vector{
			resource.New(cpu, mem, sto),
			resource.New(cpu, mem, sto),
		},
		Request: resource.New(cpu, mem, sto),
	}
}

func TestDeviationFormula(t *testing.T) {
	a := resource.New(4, 0, 0)
	b := resource.New(0, 4, 0)
	// Per kind: CPU (4−2)²+(0−2)² = 8; MEM same = 8; STO 0 → 16.
	if got := Deviation(a, b); math.Abs(got-16) > 1e-12 {
		t.Errorf("Deviation = %v, want 16", got)
	}
	// Equivalently Σ(dj−di)²/2.
	want := (16.0 + 16.0) / 2
	if got := Deviation(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("closed form mismatch: %v vs %v", got, want)
	}
	if Deviation(a, a) != 0 {
		t.Error("identical demands should deviate by 0")
	}
}

// Property: Deviation is symmetric and non-negative.
func TestQuickDeviationSymmetric(t *testing.T) {
	f := func(a, b resource.Vector) bool {
		da := Deviation(a, b)
		db := Deviation(b, a)
		if math.IsNaN(da) || math.IsInf(da, 0) {
			return true
		}
		return da >= 0 && math.Abs(da-db) < 1e-9*(1+math.Abs(da))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewEntitySumsDemand(t *testing.T) {
	e := NewEntity(mkJob(1, 3, 1, 0), mkJob(2, 1, 5, 2))
	if e.Demand != resource.New(4, 6, 2) {
		t.Errorf("Demand = %v", e.Demand)
	}
	if len(e.Jobs) != 2 {
		t.Errorf("Jobs = %d", len(e.Jobs))
	}
}

func TestPackPairsComplementaryJobs(t *testing.T) {
	ref := resource.New(10, 10, 10)
	cpuJob := mkJob(0, 8, 1, 1)  // CPU dominant
	memJob := mkJob(1, 1, 8, 1)  // MEM dominant
	cpuJob2 := mkJob(2, 7, 1, 1) // CPU dominant
	stoJob := mkJob(3, 1, 1, 8)  // storage dominant
	entities := Pack([]*job.Job{cpuJob, memJob, cpuJob2, stoJob}, ref)
	if len(entities) != 2 {
		t.Fatalf("got %d entities, want 2 pairs", len(entities))
	}
	for _, e := range entities {
		if len(e.Jobs) != 2 {
			t.Fatalf("entity has %d jobs, want 2: %+v", len(e.Jobs), e)
		}
		d0 := e.Jobs[0].Dominant(ref)
		d1 := e.Jobs[1].Dominant(ref)
		if d0 == d1 {
			t.Errorf("packed jobs share dominant resource %v", d0)
		}
	}
}

func TestPackChoosesHighestDeviationPartner(t *testing.T) {
	ref := resource.New(10, 10, 10)
	anchor := mkJob(0, 9, 1, 1) // CPU dominant
	weak := mkJob(1, 4, 5, 1)   // MEM dominant, small deviation
	strong := mkJob(2, 1, 9, 1) // MEM dominant, large deviation
	entities := Pack([]*job.Job{anchor, weak, strong}, ref)
	// Anchor must pair with strong; weak is a singleton.
	if len(entities) != 2 {
		t.Fatalf("got %d entities", len(entities))
	}
	first := entities[0]
	if len(first.Jobs) != 2 || first.Jobs[0].ID != 0 || first.Jobs[1].ID != 2 {
		t.Errorf("anchor paired with %v, want job 2", first.Jobs)
	}
	if len(entities[1].Jobs) != 1 || entities[1].Jobs[0].ID != 1 {
		t.Errorf("leftover entity wrong: %v", entities[1].Jobs)
	}
}

func TestPackAllSameDominantYieldsSingletons(t *testing.T) {
	ref := resource.New(10, 10, 10)
	jobs := []*job.Job{mkJob(0, 8, 1, 1), mkJob(1, 7, 2, 1), mkJob(2, 9, 1, 1)}
	entities := Pack(jobs, ref)
	if len(entities) != 3 {
		t.Fatalf("got %d entities, want 3 singletons", len(entities))
	}
	for i, e := range entities {
		if len(e.Jobs) != 1 {
			t.Errorf("entity %d has %d jobs", i, len(e.Jobs))
		}
	}
}

func TestPackEmptyAndSingle(t *testing.T) {
	if got := Pack(nil, resource.Uniform(1)); got != nil {
		t.Errorf("Pack(nil) = %v", got)
	}
	one := Pack([]*job.Job{mkJob(0, 1, 1, 1)}, resource.Uniform(1))
	if len(one) != 1 || len(one[0].Jobs) != 1 {
		t.Errorf("single job should be one singleton entity: %v", one)
	}
}

// Property: Pack preserves every job exactly once.
func TestQuickPackPartition(t *testing.T) {
	ref := resource.New(10, 10, 10)
	f := func(raw []uint8) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		jobs := make([]*job.Job, len(raw))
		for i, r := range raw {
			jobs[i] = mkJob(i, float64(r%10)+0.5, float64((r/10)%10)+0.5, float64((r/3)%10)+0.5)
		}
		seen := map[job.ID]int{}
		for _, e := range Pack(jobs, ref) {
			if len(e.Jobs) < 1 || len(e.Jobs) > 2 {
				return false
			}
			for _, j := range e.Jobs {
				seen[j.ID]++
			}
		}
		if len(seen) != len(jobs) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPlacePaperExample reproduces the worked example of Section III-B:
// C′=<25,2,30>; VM unused amounts <5,0,20>, <10,1,10>, <20,2,30>,
// <10,1,8.5> (volumes 0.867, 1.233, 2.8, 1.183). Entity (job3, job4)
// cannot fit on VM1/VM4 and picks VM2 (1.233 < 2.8); entity (job5, job6)
// cannot fit on VM1 and picks VM4 (1.183 < 1.233 < 2.8).
func TestPlacePaperExample(t *testing.T) {
	cprime := resource.New(25, 2, 30)
	candidates := []Candidate{
		{VM: 1, Available: resource.New(5, 0, 20)},
		{VM: 2, Available: resource.New(10, 1, 10)},
		{VM: 3, Available: resource.New(20, 2, 30)},
		{VM: 4, Available: resource.New(10, 1, 8.5)},
	}
	// Entity (job3, job4): needs more than VM1 and VM4 can give; VM2 and
	// VM3 both fit.
	demand34 := resource.New(9, 1, 10)
	vm, ok := Place(demand34, candidates, cprime)
	if !ok || vm != 2 {
		t.Errorf("entity (3,4) placed on VM %d (ok=%v), want VM 2", vm, ok)
	}
	// Entity (job5, job6): fits on VM2, VM3 and VM4; VM4 has the smallest
	// volume.
	demand56 := resource.New(9, 1, 8)
	vm, ok = Place(demand56, candidates, cprime)
	if !ok || vm != 4 {
		t.Errorf("entity (5,6) placed on VM %d (ok=%v), want VM 4", vm, ok)
	}
}

func TestPlaceNoFit(t *testing.T) {
	candidates := []Candidate{{VM: 1, Available: resource.New(1, 1, 1)}}
	if _, ok := Place(resource.New(2, 0, 0), candidates, resource.Uniform(10)); ok {
		t.Error("oversized demand should not place")
	}
	if _, ok := Place(resource.New(1, 0, 0), nil, resource.Uniform(10)); ok {
		t.Error("no candidates should not place")
	}
}

func TestPlaceTieBreaksByVMID(t *testing.T) {
	candidates := []Candidate{
		{VM: 7, Available: resource.New(2, 2, 2)},
		{VM: 3, Available: resource.New(2, 2, 2)},
	}
	vm, ok := Place(resource.New(1, 1, 1), candidates, resource.Uniform(10))
	if !ok || vm != 3 {
		t.Errorf("tie should break to lower VM ID, got %d", vm)
	}
}

// Property: Place only returns candidates that actually fit, and the
// returned VM's volume is minimal among fitting candidates.
func TestQuickPlaceOptimal(t *testing.T) {
	cprime := resource.New(10, 10, 10)
	f := func(raw []uint8, d uint8) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		var candidates []Candidate
		for i, r := range raw {
			candidates = append(candidates, Candidate{
				VM:        i,
				Available: resource.New(float64(r%11), float64((r/2)%11), float64((r/4)%11)),
			})
		}
		demand := resource.Uniform(float64(d % 11))
		vm, ok := Place(demand, candidates, cprime)
		minVol := math.Inf(1)
		anyFit := false
		for _, c := range candidates {
			if demand.FitsIn(c.Available) {
				anyFit = true
				if v := c.Available.Volume(cprime); v < minVol {
					minVol = v
				}
			}
		}
		if ok != anyFit {
			return false
		}
		if !ok {
			return true
		}
		return demand.FitsIn(candidates[vm].Available) &&
			candidates[vm].Available.Volume(cprime) <= minVol+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPack100Jobs(b *testing.B) {
	ref := resource.New(10, 10, 10)
	jobs := make([]*job.Job, 100)
	for i := range jobs {
		jobs[i] = mkJob(i, float64(i%9)+1, float64((i*3)%9)+1, float64((i*7)%9)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(jobs, ref)
	}
}

func BenchmarkPlace200Candidates(b *testing.B) {
	cprime := resource.New(25, 2, 30)
	candidates := make([]Candidate, 200)
	for i := range candidates {
		candidates[i] = Candidate{VM: i, Available: resource.New(float64(i%20), float64(i%3), float64(i%25))}
	}
	demand := resource.New(5, 1, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Place(demand, candidates, cprime)
	}
}
