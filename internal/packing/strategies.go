package packing

import (
	"math/rand"

	"repro/internal/job"
	"repro/internal/resource"
)

// Extensions beyond the paper's pairwise packing and most-matched
// placement: k-way entities and alternative placement strategies, used by
// the ablation benches to quantify how much each of the paper's choices
// contributes.

// PackK generalizes Pack to entities of up to k jobs: each anchor greedily
// absorbs the highest-deviation partner with a dominant resource not yet
// in the entity, until k members or no candidate remains. PackK(jobs, ref,
// 2) matches Pack. k < 2 yields singletons.
func PackK(jobs []*job.Job, reference resource.Vector, k int) []Entity {
	if k < 2 {
		var out []Entity
		for _, j := range jobs {
			out = append(out, NewEntity(j))
		}
		return out
	}
	used := make([]bool, len(jobs))
	dominant := make([]resource.Kind, len(jobs))
	peaks := make([]resource.Vector, len(jobs))
	for i, j := range jobs {
		peaks[i] = j.PeakDemand()
		dominant[i] = peaks[i].Dominant(reference)
	}
	var entities []Entity
	for i, j := range jobs {
		if used[i] {
			continue
		}
		used[i] = true
		members := []*job.Job{j}
		have := map[resource.Kind]bool{dominant[i]: true}
		sum := peaks[i]
		for len(members) < k {
			best := -1
			bestDV := -1.0
			for cand := range jobs {
				if used[cand] || have[dominant[cand]] {
					continue
				}
				if dv := Deviation(sum, peaks[cand]); dv > bestDV {
					bestDV = dv
					best = cand
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			members = append(members, jobs[best])
			have[dominant[best]] = true
			sum = sum.Add(peaks[best])
		}
		entities = append(entities, NewEntity(members...))
	}
	return entities
}

// Strategy selects a VM for a demand among candidates. Implementations
// must not mutate the candidate slice.
type Strategy interface {
	// Name identifies the strategy.
	Name() string
	// Choose returns the chosen candidate's VM; ok is false when nothing
	// fits.
	Choose(demand resource.Vector, candidates []Candidate, maxCapacity resource.Vector) (vm int, ok bool)
}

// MostMatched is the paper's Eq. 22 strategy (smallest adequate volume).
type MostMatched struct{}

// Name implements Strategy.
func (MostMatched) Name() string { return "most-matched" }

// Choose implements Strategy.
func (MostMatched) Choose(demand resource.Vector, candidates []Candidate, maxCapacity resource.Vector) (int, bool) {
	return Place(demand, candidates, maxCapacity)
}

// FirstFit picks the first candidate (by slice order) that satisfies the
// demand — the classic baseline bin-packing heuristic.
type FirstFit struct{}

// Name implements Strategy.
func (FirstFit) Name() string { return "first-fit" }

// Choose implements Strategy.
func (FirstFit) Choose(demand resource.Vector, candidates []Candidate, _ resource.Vector) (int, bool) {
	for _, c := range candidates {
		if demand.FitsIn(c.Available) {
			return c.VM, true
		}
	}
	return 0, false
}

// WorstFit picks the fitting candidate with the LARGEST volume, spreading
// load — the opposite of most-matched.
type WorstFit struct{}

// Name implements Strategy.
func (WorstFit) Name() string { return "worst-fit" }

// Choose implements Strategy.
func (WorstFit) Choose(demand resource.Vector, candidates []Candidate, maxCapacity resource.Vector) (int, bool) {
	bestVM := -1
	bestVol := -1.0
	for _, c := range candidates {
		if !demand.FitsIn(c.Available) {
			continue
		}
		vol := c.Available.Volume(maxCapacity)
		if bestVM < 0 || vol > bestVol || (vol == bestVol && c.VM < bestVM) {
			bestVM = c.VM
			bestVol = vol
		}
	}
	if bestVM < 0 {
		return 0, false
	}
	return bestVM, true
}

// RandomFit picks a uniformly random fitting candidate — the baselines'
// placement rule in the paper's evaluation.
type RandomFit struct {
	Rng *rand.Rand
}

// Name implements Strategy.
func (RandomFit) Name() string { return "random-fit" }

// Choose implements Strategy.
func (r RandomFit) Choose(demand resource.Vector, candidates []Candidate, _ resource.Vector) (int, bool) {
	var fits []int
	for _, c := range candidates {
		if demand.FitsIn(c.Available) {
			fits = append(fits, c.VM)
		}
	}
	if len(fits) == 0 {
		return 0, false
	}
	if r.Rng == nil {
		return fits[0], true
	}
	return fits[r.Rng.Intn(len(fits))], true
}
