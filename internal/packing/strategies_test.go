package packing

import (
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/resource"
)

func TestPackKSingletons(t *testing.T) {
	jobs := []*job.Job{mkJob(0, 8, 1, 1), mkJob(1, 1, 8, 1)}
	out := PackK(jobs, resource.Uniform(10), 1)
	if len(out) != 2 {
		t.Fatalf("k=1 should yield singletons, got %d entities", len(out))
	}
}

func TestPackKMatchesPackForPairs(t *testing.T) {
	ref := resource.New(10, 10, 10)
	jobs := []*job.Job{
		mkJob(0, 8, 1, 1), mkJob(1, 1, 8, 1), mkJob(2, 7, 1, 1), mkJob(3, 1, 1, 8),
	}
	a := Pack(jobs, ref)
	b := PackK(jobs, ref, 2)
	if len(a) != len(b) {
		t.Fatalf("Pack %d entities vs PackK %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Jobs) != len(b[i].Jobs) {
			t.Fatalf("entity %d sizes differ", i)
		}
		for j := range a[i].Jobs {
			if a[i].Jobs[j].ID != b[i].Jobs[j].ID {
				t.Errorf("entity %d member %d: %d vs %d", i, j, a[i].Jobs[j].ID, b[i].Jobs[j].ID)
			}
		}
	}
}

func TestPackKTriples(t *testing.T) {
	ref := resource.New(10, 10, 10)
	jobs := []*job.Job{
		mkJob(0, 8, 1, 1), // CPU
		mkJob(1, 1, 8, 1), // MEM
		mkJob(2, 1, 1, 8), // STO
	}
	out := PackK(jobs, ref, 3)
	if len(out) != 1 {
		t.Fatalf("three complementary jobs should form one entity, got %d", len(out))
	}
	if len(out[0].Jobs) != 3 {
		t.Errorf("entity has %d members", len(out[0].Jobs))
	}
	// A fourth CPU job cannot join (dominant already present).
	jobs = append(jobs, mkJob(3, 7, 1, 1))
	out = PackK(jobs, ref, 3)
	if len(out) != 2 {
		t.Fatalf("got %d entities, want 2", len(out))
	}
}

// Property: PackK preserves every job exactly once and respects k.
func TestPackKPartition(t *testing.T) {
	ref := resource.New(10, 10, 10)
	var jobs []*job.Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, mkJob(i, float64(i%9)+0.5, float64((i*3)%9)+0.5, float64((i*7)%9)+0.5))
	}
	for _, k := range []int{1, 2, 3} {
		seen := map[job.ID]int{}
		for _, e := range PackK(jobs, ref, k) {
			if len(e.Jobs) < 1 || (k >= 2 && len(e.Jobs) > k) || (k < 2 && len(e.Jobs) != 1) {
				t.Fatalf("k=%d: entity size %d", k, len(e.Jobs))
			}
			for _, j := range e.Jobs {
				seen[j.ID]++
			}
		}
		if len(seen) != len(jobs) {
			t.Fatalf("k=%d: %d jobs seen of %d", k, len(seen), len(jobs))
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("k=%d: job %d appears %d times", k, id, c)
			}
		}
	}
}

func strategyCandidates() []Candidate {
	return []Candidate{
		{VM: 0, Available: resource.New(2, 2, 2)},
		{VM: 1, Available: resource.New(9, 9, 9)},
		{VM: 2, Available: resource.New(4, 4, 4)},
	}
}

func TestMostMatchedStrategy(t *testing.T) {
	vm, ok := MostMatched{}.Choose(resource.Uniform(1), strategyCandidates(), resource.Uniform(10))
	if !ok || vm != 0 {
		t.Errorf("most-matched chose %d (ok=%v), want 0", vm, ok)
	}
	if (MostMatched{}).Name() != "most-matched" {
		t.Error("name wrong")
	}
}

func TestFirstFitStrategy(t *testing.T) {
	// Demand 3: VM0 (2) fails; VM1 fits first in order.
	vm, ok := FirstFit{}.Choose(resource.Uniform(3), strategyCandidates(), resource.Uniform(10))
	if !ok || vm != 1 {
		t.Errorf("first-fit chose %d, want 1", vm)
	}
	if _, ok := (FirstFit{}).Choose(resource.Uniform(99), strategyCandidates(), resource.Uniform(10)); ok {
		t.Error("oversized demand should not fit")
	}
}

func TestWorstFitStrategy(t *testing.T) {
	vm, ok := WorstFit{}.Choose(resource.Uniform(1), strategyCandidates(), resource.Uniform(10))
	if !ok || vm != 1 {
		t.Errorf("worst-fit chose %d, want the biggest pool (1)", vm)
	}
	if _, ok := (WorstFit{}).Choose(resource.Uniform(99), strategyCandidates(), resource.Uniform(10)); ok {
		t.Error("oversized demand should not fit")
	}
}

func TestRandomFitStrategy(t *testing.T) {
	r := RandomFit{Rng: rand.New(rand.NewSource(1))}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		vm, ok := r.Choose(resource.Uniform(1), strategyCandidates(), resource.Uniform(10))
		if !ok {
			t.Fatal("should fit")
		}
		counts[vm]++
	}
	for _, vm := range []int{0, 1, 2} {
		if counts[vm] < 50 {
			t.Errorf("VM %d chosen only %d/300 times; not uniform", vm, counts[vm])
		}
	}
	// Nil RNG degrades to first fit.
	vm, ok := (RandomFit{}).Choose(resource.Uniform(1), strategyCandidates(), resource.Uniform(10))
	if !ok || vm != 0 {
		t.Errorf("nil-rng random fit chose %d", vm)
	}
}

// Property: every strategy returns only candidates that fit.
func TestStrategiesOnlyReturnFits(t *testing.T) {
	strategies := []Strategy{MostMatched{}, FirstFit{}, WorstFit{}, RandomFit{Rng: rand.New(rand.NewSource(2))}}
	ref := resource.Uniform(10)
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var candidates []Candidate
		for i := 0; i < 6; i++ {
			candidates = append(candidates, Candidate{
				VM:        i,
				Available: resource.New(rng.Float64()*8, rng.Float64()*8, rng.Float64()*8),
			})
		}
		demand := resource.Uniform(rng.Float64() * 8)
		for _, s := range strategies {
			vm, ok := s.Choose(demand, candidates, ref)
			if !ok {
				continue
			}
			if !demand.FitsIn(candidates[vm].Available) {
				t.Fatalf("%s returned VM %d that does not fit", s.Name(), vm)
			}
		}
	}
}
