// Package perf is the repo's performance-trajectory harness: it runs the
// hot-path microbenchmarks (DNN kernels, the CORP observe path, one quick
// end-to-end figure) through testing.Benchmark, snapshots the results as
// JSON (the BENCH_<date>.json artifacts committed at the repo root), and
// diffs two snapshots so CI can fail on kernel regressions. cmd/corpbench
// exposes it via -json and -bench-diff; `make bench` / `make bench-diff`
// wrap both.
package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dnn"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/hmm"
	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Snapshot is one BENCH_<date>.json file.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// MaxProcs records GOMAXPROCS at capture time: the scale/* and
	// engine/* -wmax entries are only meaningful relative to it (on a
	// single-core machine they necessarily match the -w1 entries).
	MaxProcs int      `json:"max_procs,omitempty"`
	Results  []Result `json:"results"`
	// WorkloadCache records the process-wide snapshot cache's counters
	// over the suite run (reset at suite start), so sharing regressions —
	// a sweep that stops hitting — are visible in the committed JSON.
	WorkloadCache *workload.Stats `json:"workload_cache,omitempty"`
	// Tier records the two-tier forecaster's counters over the
	// engine/refresh20k-tier bench (full suite only): how many per-kind
	// forecasts the cheap first tier served versus escalated to the DNN.
	// A snapshot whose hit share collapses means the tier stopped
	// engaging and the tier bench is timing the full DNN path.
	Tier *TierStats `json:"tier,omitempty"`
	// Farm records the corpfarm dispatcher's counters over the
	// farm/campaign-quick-w2 bench (full suite only). A snapshot whose
	// dedup hits collapse means the content-addressed job keys stopped
	// matching and the farm re-ran identical work.
	Farm *FarmStats `json:"farm,omitempty"`
}

// TierStats is the two-tier forecaster's hit/escalation tally.
type TierStats struct {
	Hits        int `json:"hits"`
	Escalations int `json:"escalations"`
}

// FarmStats is the farm dispatcher's work-accounting tally over one
// distributed quick campaign.
type FarmStats struct {
	Jobs      int64 `json:"jobs"`
	DedupHits int64 `json:"dedup_hits"`
	Retries   int64 `json:"retries"`
}

// nsGates mark the benches whose ns/op regressions fail Diff, each prefix
// with its own tolerance multiplier over Diff's base tol: the DNN and HMM
// compute kernels and the trace generators at the base tolerance; the
// isolated slot-observe benches at 2× — they walk a 20000-VM fleet per op,
// so box weather moves them more than a µs kernel, while the regression
// they guard (the table fast path silently degrading to recomputation) is
// a 13× cliff no tolerance hides; the span-fastforward A/B pair likewise
// at 2× (the off entry keeps the escape hatch honest); the scale/* end-to-
// end single runs at a wider band — they are the tentpole numbers this
// repo's perf work protects, but a whole end-to-end simulation on a shared
// box needs headroom for cache/GC weather a microbench doesn't see (the
// band tightened from 3.5× as the runs got shorter). Other end-to-end
// benches (figure runs, farm campaigns) are recorded but not gated.
var nsGates = []struct {
	prefix string
	tolMul float64
}{
	{"dnn/", 1},
	{"hmm/", 1},
	{"trace/", 1},
	{"sim/slot-observe-", 2},
	{"sim/span-fastforward-", 2},
	{"scale/", 3},
}

// nsGateTol returns the gate tolerance for name, or 0 if ungated.
func nsGateTol(name string, base float64) float64 {
	for _, g := range nsGates {
		if strings.HasPrefix(name, g.prefix) {
			return base * g.tolMul
		}
	}
	return 0
}

// allocExemptPrefixes are excluded from the allocs/op-growth gate: the
// end-to-end runs and the pooled engine benches have timing-dependent
// allocation counts (goroutine scheduling, map growth), so only the
// deterministic micro-benches are held to "allocs never grow". The cold
// quick-run bench regenerates its workload every op (that is its point),
// so only the warm (snapshot-sharing) path is alloc-gated.
// sim/*-wmax runs shard across goroutines, so their alloc counts are
// timing-dependent too, as are the farm/* end-to-end campaigns (HTTP
// server, worker goroutines, JSON transport).
var allocExemptPrefixes = []string{"figure/", "scale/", "engine/", "sim/run-quick-cold", "sim/event-core-wmax", "farm/"}

// allocSlack is the permitted allocs/op growth for an alloc-gated bench:
// 0.1% of the old count, rounded down. Allocation-free kernels (and
// anything under 1000 allocs/op) keep an exact never-grow gate, but an
// end-to-end bench with thousands of allocs/op can flutter by ±1 from
// one-time setup allocations amortized over a run-dependent b.N — that
// flutter is not a regression.
func allocSlack(base int64) int64 { return base / 1000 }

func hasAnyPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// tableIINet builds the paper's Table II predictor network {Δ, 50, 50, 1}.
func tableIINet(seed int64) (*dnn.Network, []float64, []float64) {
	net, err := dnn.New(dnn.Config{LayerSizes: []int{12, 50, 50, 1}, Seed: seed})
	if err != nil {
		panic(err)
	}
	in := make([]float64, 12)
	for i := range in {
		in[i] = float64(i) / 12
	}
	return net, in, []float64{0.5}
}

// Suite runs every tracked benchmark and returns a snapshot (Date is left
// for the caller to stamp). quick keeps the kernel and engine
// micro-benches — they are sub-second — but skips the end-to-end benches
// (the figure run and the scale-profile single runs), which dominate wall
// time.
func Suite(quick bool) (snap Snapshot) { return SuiteFiltered(quick, "") }

// SuiteFiltered is Suite restricted to benches whose name contains any of
// the comma-separated filter terms (empty runs everything). Shared setup —
// workload preparation for the core and scale bench groups — is skipped
// when no bench in the group matches, so e.g. `corpbench -bench-filter
// scale/sim-scale5k` pays only the scale profile's own preparation; that
// is what makes profiling a single bench (`make profile-scale`) practical,
// and `-bench-filter scale/,sim/span` compares two groups in one run.
func SuiteFiltered(quick bool, filter string) (snap Snapshot) {
	snap = Snapshot{GoVersion: runtime.Version(), GOARCH: runtime.GOARCH, MaxProcs: runtime.GOMAXPROCS(0)}
	// Track snapshot-cache effectiveness over this suite run only; the
	// deferred capture lands on the named return after the last bench.
	workload.Default.Reset()
	defer func() {
		st := workload.Default.Stats()
		snap.WorkloadCache = &st
	}()
	var terms []string
	for _, f := range strings.Split(filter, ",") {
		if f = strings.TrimSpace(f); f != "" {
			terms = append(terms, f)
		}
	}
	matchesAny := func(names ...string) bool {
		if len(terms) == 0 {
			return true
		}
		for _, n := range names {
			for _, f := range terms {
				if strings.Contains(n, f) {
					return true
				}
			}
		}
		return false
	}
	add := func(name string, fn func(b *testing.B)) {
		if !matchesAny(name) {
			return
		}
		// Micro-benches (everything but the end-to-end figure and scale
		// runs) take best-of-3: scheduling noise on shared machines is
		// one-sided, so the min is the robust estimator and keeps the
		// 10% Diff gate from tripping on a noisy-neighbor sample.
		reps := 3
		// The 20k-fleet refresh trio pays a multi-second fleet build and
		// warmup per rep; like the end-to-end benches it runs once.
		if strings.HasPrefix(name, "figure/") || strings.HasPrefix(name, "scale/") ||
			strings.HasPrefix(name, "farm/") || strings.HasPrefix(name, "engine/refresh20k") {
			reps = 1
		}
		var best testing.BenchmarkResult
		for i := 0; i < reps; i++ {
			r := testing.Benchmark(fn)
			if i == 0 || r.T.Nanoseconds()*int64(best.N) < best.T.Nanoseconds()*int64(r.N) {
				best = r
			}
		}
		snap.Results = append(snap.Results, Result{
			Name:        name,
			NsPerOp:     float64(best.T.Nanoseconds()) / float64(best.N),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			Iterations:  best.N,
		})
	}

	add("dnn/forward-tableII", func(b *testing.B) {
		net, in, _ := tableIINet(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.Forward(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dnn/forward-batch-tableII", func(b *testing.B) {
		// One 256-row batched forward over the Table II shape: the batched
		// refresh engine's kernel. ns/op is per batch (÷256 for per-row);
		// the win over 256 single-row Forwards is modest on this shape —
		// the sigmoid evaluations dominate — but the kernel must stay
		// allocation-free and never regress.
		net, in, _ := tableIINet(1)
		const rows = 256
		ins := make([]float64, rows*len(in))
		for r := 0; r < rows; r++ {
			copy(ins[r*len(in):], in)
		}
		scratch := net.NewBatchScratch(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.ForwardBatchInto(scratch, ins); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dnn/train-sample-tableII", func(b *testing.B) {
		net, in, target := tableIINet(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.TrainSample(in, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dnn/train-batch-tableII", func(b *testing.B) {
		// A 6-sample batch, the CORP online shape (1 new + 5 replays).
		net, in, _ := tableIINet(1)
		const batch = 6
		ins := make([]float64, batch*len(in))
		tgts := make([]float64, batch)
		for s := 0; s < batch; s++ {
			copy(ins[s*len(in):], in)
			tgts[s] = 0.5
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.TrainBatch(ins, tgts); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("predict/corp-observe", func(b *testing.B) {
		brain, err := predict.NewCorpBrain(predict.CorpConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		capacity := resource.Vector{8, 16, 100}
		p := predict.NewCorpPredictor(brain, capacity, 1)
		// Warm the history past the cold-start threshold so every
		// iteration exercises the full train path.
		for i := 0; i < 32; i++ {
			p.Observe(resource.Vector{4, 8, 50})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Observe(resource.Vector{4, 8, 50})
		}
	})
	add("predict/corp-refresh", func(b *testing.B) {
		brain, err := predict.NewCorpBrain(predict.CorpConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		capacity := resource.Vector{8, 16, 100}
		p := predict.NewCorpPredictor(brain, capacity, 1)
		var outcomes []predict.ErrorSample
		// Warm past cold start and through one full history window so the
		// HMM correction path is live and all scratch is at capacity.
		for i := 0; i < 128; i++ {
			p.Observe(refreshVector(i))
			p.Predict()
			outcomes = p.AppendOutcomes(outcomes[:0])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Observe(refreshVector(i))
			p.Predict()
			outcomes = p.AppendOutcomes(outcomes[:0])
		}
	})
	add("predict/two-tier-refresh", func(b *testing.B) {
		// The corp-refresh shape with the two-tier forecaster enabled and
		// slow-moving telemetry, so the cheap first tier serves in steady
		// state: the per-VM refresh cost this PR's tier exists to cut.
		brain, err := predict.NewCorpBrain(predict.CorpConfig{Seed: 1, TierEnabled: true})
		if err != nil {
			b.Fatal(err)
		}
		capacity := resource.Vector{8, 16, 100}
		p := predict.NewCorpPredictor(brain, capacity, 1)
		var outcomes []predict.ErrorSample
		for i := 0; i < 128; i++ {
			p.Observe(tierVector(i))
			p.Predict()
			outcomes = p.AppendOutcomes(outcomes[:0])
		}
		if hits, _ := p.TierCounters(); hits == 0 {
			b.Fatal("two-tier bench: tier never served during warmup")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Observe(tierVector(i))
			p.Predict()
			outcomes = p.AppendOutcomes(outcomes[:0])
		}
	})
	add("baseline/refresh", func(b *testing.B) {
		capacity := resource.Vector{8, 16, 100}
		preds := []predict.Predictor{
			predict.NewRCCRPredictor(predict.RCCRConfig{}, capacity),
			predict.NewCloudScalePredictor(predict.CloudScaleConfig{}, capacity),
			predict.NewDRAPredictor(predict.DRAConfig{}, capacity),
		}
		var outcomes []predict.ErrorSample
		for i := 0; i < 128; i++ {
			for _, p := range preds {
				p.Observe(refreshVector(i))
				p.Predict()
				outcomes = p.(predict.OutcomeAppender).AppendOutcomes(outcomes[:0])
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range preds {
				p.Observe(refreshVector(i))
				p.Predict()
				outcomes = p.(predict.OutcomeAppender).AppendOutcomes(outcomes[:0])
			}
		}
	})
	add("hmm/viterbi", func(b *testing.B) {
		m := hmm.NewPaperModel(1)
		obs := correctObs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := m.Viterbi(obs); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("hmm/baumwelch", func(b *testing.B) {
		m := hmm.NewPaperModel(1)
		obs := correctObs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The hmmCorrect refit shape: 5 EM iterations, warm-started
			// from the previous parameters.
			if _, _, err := m.BaumWelch(obs, 5, 1e-5); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("hmm/correct", func(b *testing.B) {
		bench := newCorrectBench()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bench.step(i)
		}
	})
	// Workload-generation benches: the redundant cost the snapshot cache
	// exists to eliminate. trace/* are ns-gated; workload/snapshot-build
	// is the cache's miss cost (residents + short jobs + long-job guard,
	// history stays lazy) at the quick-figure shape.
	add("trace/generate-residents", func(b *testing.B) {
		caps := make([]resource.Vector, 200)
		for i := range caps {
			caps[i] = resource.Vector{4, 16, 180}
		}
		cfg := trace.ResidentConfig{Seed: 1, Horizon: 300, ReservedShare: 0.6}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := trace.GenerateResidents(cfg, caps, job.ID(1_000_000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("trace/generate-shortjobs", func(b *testing.B) {
		cfg := trace.Config{Seed: 1, NumJobs: 300, ArrivalSpan: 60}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := trace.GenerateShortJobs(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("workload/snapshot-build", func(b *testing.B) {
		p := quickWorkloadParams()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := workload.Build(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Quick-figure-shaped single runs, cold (workload regenerated inside
	// every run, the -workload-cache=off path) vs warm (a shared prepared
	// snapshot, what every run after the first costs inside a sweep).
	// DRA keeps the scheduler side cheap so the generation share — the
	// cost the cache removes — is visible in the cold/warm ratio.
	add("sim/run-quick-cold", func(b *testing.B) {
		prev := workload.Default.Enabled()
		workload.Default.SetEnabled(false)
		defer workload.Default.SetEnabled(prev)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(quickRunConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("sim/run-quick-warm", func(b *testing.B) {
		snapshot, err := sim.PrepareWorkload(quickRunConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := quickRunConfig()
		cfg.Prepared = snapshot
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Core-comparison benches: the same warm quick run driven by the
	// event-queue core (the default) and the reference slot loop. Results
	// are bit-identical (the core-equivalence tests), so the ratio is the
	// event core's net cost/savings on a dense little world; the wmax
	// entry adds the sharded executor on top.
	if matchesAny("sim/event-core-w1", "sim/event-core-wmax", "sim/slot-core-w1") {
		snapshot, err := sim.PrepareWorkload(quickRunConfig())
		if err != nil {
			panic(fmt.Sprintf("perf: prepare core bench workload: %v", err))
		}
		coreBench := func(core sim.Core, workers int) func(b *testing.B) {
			return func(b *testing.B) {
				cfg := quickRunConfig()
				cfg.Prepared = snapshot
				cfg.Core = core
				cfg.Workers = workers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		add("sim/event-core-w1", coreBench(sim.CoreEvent, 1))
		add("sim/event-core-wmax", coreBench(sim.CoreEvent, runtime.GOMAXPROCS(0)))
		add("sim/slot-core-w1", coreBench(sim.CoreSlot, 1))
	}
	// Quiescent-span fast-forward A/B: the same quiet-heavy run — a short
	// arrival burst, then a drain hundreds of slots long with nothing in
	// flight — with the fast-forward on (default) and forced off. Results
	// are bit-identical (TestSpanFastForwardEquivalence); the ratio is the
	// time-axis win on event-sparse stretches, the regime the fast-forward
	// exists for. Both are ns-gated so neither the fast path nor the
	// escape-hatch slow path silently regresses.
	if matchesAny("sim/span-fastforward-on", "sim/span-fastforward-off") {
		snapshot, err := sim.PrepareWorkload(spanBenchConfig(false))
		if err != nil {
			panic(fmt.Sprintf("perf: prepare span bench workload: %v", err))
		}
		spanBench := func(disable bool) func(b *testing.B) {
			return func(b *testing.B) {
				cfg := spanBenchConfig(disable)
				cfg.Prepared = snapshot
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		add("sim/span-fastforward-on", spanBench(false))
		add("sim/span-fastforward-off", spanBench(true))
	}
	// Isolated telemetry-phase benches over the 20000-VM scale fleet:
	// the periodic-table fast path versus the per-VM recomputation it
	// replaces on quiet slots (identical outputs — the table-equivalence
	// tests). Both are ns- and alloc-gated: the fast path is the per-slot
	// floor of the scale/sim-scale5k-* runs and must stay allocation-free.
	if matchesAny("sim/slot-observe-tables-20k", "sim/slot-observe-recompute-20k") {
		snapshot, err := workload.Build(observeBenchParams())
		if err != nil {
			panic(fmt.Sprintf("perf: build observe bench workload: %v", err))
		}
		observeBench := func(disableTables bool) func(b *testing.B) {
			return func(b *testing.B) {
				ob, err := sim.NewObserveBench(snapshot, disableTables)
				if err != nil {
					b.Fatal(err)
				}
				if !disableTables && !ob.UsingTables() {
					b.Fatal("observe bench: tables unavailable")
				}
				// One warm pass builds the lazy tables off the timer.
				ob.Run(1)
				b.ReportAllocs()
				b.ResetTimer()
				sink := 0.0
				for i := 0; i < b.N; i++ {
					sink += ob.Run(1)
				}
				_ = sink
			}
		}
		add("sim/slot-observe-tables-20k", observeBench(false))
		add("sim/slot-observe-recompute-20k", observeBench(true))
	}
	// Engine micro-benches: one slot's Observe fan-out and one window's
	// Refresh pass over a 200-VM CORP fleet, serial vs all cores. The
	// fleet shapes mirror the scale profile so the scale/* end-to-end
	// entries decompose into these.
	for _, eng := range []struct {
		suffix  string
		workers int
	}{{"w1", 1}, {"wmax", runtime.GOMAXPROCS(0)}} {
		eng := eng
		add("engine/observe-fleet200-"+eng.suffix, func(b *testing.B) {
			bo, _, unused := engineFleet(b, eng.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bo.ObserveAll(unused, nil)
			}
		})
		add("engine/refresh-fleet200-"+eng.suffix, func(b *testing.B) {
			bo, sched, unused := engineFleet(b, eng.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Each Refresh needs fresh observations or the dirty-skip
				// makes later iterations free; feed them off the timer.
				b.StopTimer()
				bo.ObserveAll(unused, nil)
				b.StartTimer()
				sched.Refresh()
			}
		})
		// One slot's Observe fan-out at the scale profile's fleet size
		// (20000 VMs) with RCCR's cheap predictors: the per-slot telemetry
		// floor of the scale/sim-scale5k-* end-to-end runs.
		add("engine/scale-observe20k-"+eng.suffix, func(b *testing.B) {
			bo, _, unused := scaleFleet(b, eng.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bo.ObserveAll(unused, nil)
			}
		})
	}
	if !quick {
		add("figure/fig06-quick", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig06PredictionError(experiments.Options{
					Profile: cluster.ProfileCluster, Seed: 1, Quick: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Scale-profile single runs: the tentpole's headline number. The
		// w1/wmax pair shows the intra-run engine's wall-time speedup at
		// this snapshot's MaxProcs (identical figures by construction —
		// see TestRunWorkerCountEquivalence).
		for _, eng := range []struct {
			suffix  string
			workers int
		}{{"w1", 1}, {"wmax", runtime.GOMAXPROCS(0)}} {
			eng := eng
			add("scale/sim-200vm-corp-"+eng.suffix, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sim.Run(scaleConfig(eng.workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// The event core's headline workload: the scale testbed profile
		// (5000 PMs / 20000 VMs) under a 350k-job burst that holds over
		// 100k short jobs in flight at peak (see EXPERIMENTS.md). The
		// workload is prepared once outside the timer — generation is not
		// what these entries track.
		if matchesAny("scale/sim-scale5k-rccr-w1", "scale/sim-scale5k-rccr-wmax") {
			snapshot, err := sim.PrepareWorkload(scaleProfileConfig(1))
			if err != nil {
				panic(fmt.Sprintf("perf: prepare scale-profile workload: %v", err))
			}
			for _, eng := range []struct {
				suffix  string
				workers int
			}{{"w1", 1}, {"wmax", runtime.GOMAXPROCS(0)}} {
				eng := eng
				add("scale/sim-scale5k-rccr-"+eng.suffix, func(b *testing.B) {
					cfg := scaleProfileConfig(eng.workers)
					cfg.Prepared = snapshot
					for i := 0; i < b.N; i++ {
						if _, err := sim.Run(cfg); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
		// One window's CORP Refresh over the full 20000-VM scale fleet:
		// the per-VM forward baseline, the batched gather → ForwardBatch →
		// scatter pipeline (identical predictions — the equivalence tests),
		// and the batched pipeline with the two-tier forecaster serving the
		// (flat) fleet. The tier entry is the headline: first-tier hits
		// skip the DNN+HMM work entirely, so its ratio to the per-VM entry
		// is the realizable refresh speedup on calm fleets.
		add("engine/refresh20k-pervm-w1", refresh20kBench(true, false, nil, nil))
		add("engine/refresh20k-batched-w1", refresh20kBench(false, false, nil, nil))
		var tierHits, tierEscal int
		add("engine/refresh20k-tier-w1", refresh20kBench(false, true, &tierHits, &tierEscal))
		if tierHits+tierEscal > 0 {
			snap.Tier = &TierStats{Hits: tierHits, Escalations: tierEscal}
		}
		// The full two-profile quick campaign distributed through a real
		// corpfarm dispatcher over HTTP with 1 and 2 local workers: the
		// farm's end-to-end overhead (job serialization, work-pull round
		// trips, JSON result transport, positional assembly) relative to
		// the in-process figure runs. On a multi-core host the w2/w1
		// ratio is the farm's scaling; counters from the w2 run land in
		// Snapshot.Farm so dedup regressions show up in the committed
		// JSON. These run LAST: a campaign churns hundreds of MB of heap
		// through the HTTP/JSON transport, and the GC pacing that leaves
		// behind would perturb the µs- and ms-scale entries above.
		add("farm/campaign-quick-w1", farmCampaignBench(1, nil))
		add("farm/campaign-quick-w2", farmCampaignBench(2, &snap.Farm))
	}
	return snap
}

// farmCampaignBench distributes the full two-profile quick campaign
// through a corpfarm dispatcher over loopback HTTP with n in-process
// workers; stats, when non-nil, receives the last iteration's dispatcher
// counters.
func farmCampaignBench(n int, stats **FarmStats) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := farm.NewDispatcher(farm.Config{})
			srv := httptest.NewServer(d.Handler())
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, n)
			for w := 0; w < n; w++ {
				worker := &farm.Worker{
					BaseURL: srv.URL, ID: fmt.Sprintf("bench-%d", w),
					Poll: 5 * time.Millisecond, Client: srv.Client(),
				}
				go func() { done <- worker.Serve(ctx) }()
			}
			_, err := experiments.Campaign(experiments.Options{
				Seed: 1, Quick: true, RunBatch: d.RunBatch,
			})
			d.Shutdown()
			for w := 0; w < n; w++ {
				if werr := <-done; werr != nil && err == nil {
					err = werr
				}
			}
			cancel()
			srv.Close()
			if err != nil {
				b.Fatal(err)
			}
			if stats != nil {
				c := d.Counters()
				*stats = &FarmStats{Jobs: c.Jobs, DedupHits: c.DedupHits, Retries: c.Retries}
			}
		}
	}
}

// refresh20kBench builds the 20000-VM CORP fleet, warms it through enough
// observe/refresh cycles that training is live (and, with the tier on,
// that the shadow forecasts have matured and the tier serves), then times
// Refresh alone; each iteration's observations are fed off the timer.
// The counter pointers, when non-nil, receive the fleet's tier tallies
// after the timed loop.
func refresh20kBench(disableBatched, tier bool, hits, escal *int) func(b *testing.B) {
	return func(b *testing.B) {
		cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileScale})
		if err != nil {
			b.Fatal(err)
		}
		scfg := scheduler.Config{Scheme: scheduler.CORP, Seed: 1, Workers: 1, DisableBatchedRefresh: disableBatched}
		// One replay step keeps the (off-timer) per-slot training cost down
		// without changing what Refresh itself does.
		scfg.Corp.ReplaySteps = 1
		scfg.Corp.TierEnabled = tier
		sched, err := scheduler.New(scfg, cl)
		if err != nil {
			b.Fatal(err)
		}
		bo, ok := sched.(scheduler.BatchObserver)
		if !ok {
			b.Fatal("CORP scheduler does not implement BatchObserver")
		}
		unused := make([]resource.Vector, len(cl.VMs))
		for v := range unused {
			c := cl.VMs[v].Capacity
			f := 0.3 + 0.4*float64(v%7)/7
			unused[v] = resource.Vector{c[0] * f, c[1] * f * 0.9, c[2] * f * 0.7}
		}
		// Warm past cold start (Δ + window slots) and through enough
		// refresh cycles that the tier's shadow forecasts mature: the
		// telemetry is constant per VM, so persistence is exact and a
		// trusted tier serves the whole fleet.
		for i := 0; i < 48; i++ {
			bo.ObserveAll(unused, nil)
			if i%6 == 5 {
				sched.Refresh()
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bo.ObserveAll(unused, nil)
			b.StartTimer()
			sched.Refresh()
		}
		b.StopTimer()
		if tc, ok := sched.(interface{ TierCounters() (int, int) }); ok && hits != nil && escal != nil {
			*hits, *escal = tc.TierCounters()
			if tier && *hits == 0 {
				b.Fatal("refresh20k tier bench: tier never served")
			}
		}
	}
}

// quickRunConfig is the quick-figure-shaped single run (20 PMs / 60 VMs /
// 300 jobs) the sim/run-quick-* benches time.
func quickRunConfig() sim.Config {
	return sim.Config{
		NumPMs: 20, NumVMs: 60, NumJobs: 300, Seed: 1,
		Scheduler: scheduler.Config{Scheme: scheduler.DRA, Seed: 1},
		Clock:     &sim.VirtualClock{StepMicros: 50},
		Workers:   1,
	}
}

// quickWorkloadParams is the workload the quick run generates, expressed
// directly as cache params for the snapshot-build bench.
func quickWorkloadParams() workload.Params {
	caps := make([]resource.Vector, 60)
	for i := range caps {
		caps[i] = resource.Vector{4, 16, 180}
	}
	return workload.Params{
		VMCaps:    caps,
		Residents: trace.ResidentConfig{Seed: 1, Horizon: 300, ReservedShare: 0.6},
		Jobs:      trace.Config{Seed: 1, NumJobs: 300, ArrivalSpan: 60, VMCapacity: resource.Vector{4, 16, 180}},
	}
}

// spanBenchConfig is the sim/span-fastforward-* run: a 200-VM fleet whose
// 150 short jobs all arrive inside 10 slots and finish early, leaving a
// 400-slot drain where the event queue holds nothing but telemetry and
// refresh ticks — maximal quiescent-span surface.
func spanBenchConfig(disable bool) sim.Config {
	return sim.Config{
		NumPMs: 50, NumVMs: 200, NumJobs: 150, Seed: 1,
		Warmup: 20, ArrivalSpan: 10, Drain: 400,
		Scheduler:              scheduler.Config{Scheme: scheduler.RCCR, Seed: 1},
		Clock:                  &sim.VirtualClock{StepMicros: 50},
		Workers:                1,
		DisableSpanFastForward: disable,
	}
}

// scaleConfig is the ≥200-VM single-run profile the scale/* benches time.
func scaleConfig(workers int) sim.Config {
	return sim.Config{
		NumPMs: 50, NumVMs: 200, NumJobs: 200, Seed: 1,
		Warmup: 60, ArrivalSpan: 40, Drain: 80,
		Scheduler: scheduler.Config{Scheme: scheduler.CORP, Seed: 1},
		Clock:     &sim.VirtualClock{StepMicros: 50},
		Workers:   workers,
	}
}

// scaleProfileConfig is the scale-testbed single run the
// scale/sim-scale5k-* benches time: the ProfileScale world (5000 PMs /
// 20000 VMs) under a 350k-job RCCR burst. Jobs are deliberately small
// (VMCapacity-scaled well below the real VM carve) and long
// (MeanDuration at the 30-slot short-job cap, arriving over 60 slots),
// so at peak well over 100k short jobs are in flight — the regime the
// event core's sharded executor is for; TestScaleProfileConcurrency
// measures the peak. RCCR keeps the per-VM predictors cheap; CORP's
// per-VM DNNs at 20000 VMs would measure the predictor fleet, not the
// simulator core.
func scaleProfileConfig(workers int) sim.Config {
	cfg := sim.Config{
		Profile: cluster.ProfileScale,
		NumJobs: 350_000, Seed: 1,
		Warmup: 30, ArrivalSpan: 60, Drain: 90,
		Scheduler: scheduler.Config{Scheme: scheduler.RCCR, Seed: 1},
		Clock:     &sim.VirtualClock{StepMicros: 50},
		Workers:   workers,
	}
	cfg.Jobs.MeanDuration = 30
	cfg.Jobs.VMCapacity = resource.Vector{0.5, 2, 8}
	return cfg
}

// observeBenchParams is the sim/slot-observe-* fleet: the scale profile's
// 20000 VM capacities with the default resident generator and no short or
// long jobs (the telemetry phase never touches them).
func observeBenchParams() workload.Params {
	cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileScale})
	if err != nil {
		panic(fmt.Sprintf("perf: observe bench cluster: %v", err))
	}
	caps := make([]resource.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		caps[i] = vm.Capacity
	}
	return workload.Params{
		VMCaps:    caps,
		Residents: trace.ResidentConfig{Seed: 1, Horizon: 240, ReservedShare: 0.6},
	}
}

// scaleFleet builds the scale profile's 20000-VM RCCR scheduler plus one
// plausible unused-telemetry slot for the engine/scale-observe20k bench.
func scaleFleet(b *testing.B, workers int) (scheduler.BatchObserver, scheduler.Scheduler, []resource.Vector) {
	b.Helper()
	cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileScale})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := scheduler.New(scheduler.Config{Scheme: scheduler.RCCR, Seed: 1, Workers: workers}, cl)
	if err != nil {
		b.Fatal(err)
	}
	bo, ok := sched.(scheduler.BatchObserver)
	if !ok {
		b.Fatal("RCCR scheduler does not implement BatchObserver")
	}
	unused := make([]resource.Vector, len(cl.VMs))
	for v := range unused {
		c := cl.VMs[v].Capacity
		f := 0.3 + 0.4*float64(v%7)/7
		unused[v] = resource.Vector{c[0] * f, c[1] * f * 0.9, c[2] * f * 0.7}
	}
	return bo, sched, unused
}

// engineFleet builds a 200-VM CORP scheduler with a warmed predictor
// fleet plus a plausible unused-telemetry slot for the engine benches.
func engineFleet(b *testing.B, workers int) (scheduler.BatchObserver, scheduler.Scheduler, []resource.Vector) {
	b.Helper()
	cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileCluster, NumPMs: 50, NumVMs: 200})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := scheduler.New(scheduler.Config{Scheme: scheduler.CORP, Seed: 1, Workers: workers}, cl)
	if err != nil {
		b.Fatal(err)
	}
	bo, ok := sched.(scheduler.BatchObserver)
	if !ok {
		b.Fatal("CORP scheduler does not implement BatchObserver")
	}
	unused := make([]resource.Vector, len(cl.VMs))
	for v := range unused {
		c := cl.VMs[v].Capacity
		f := 0.3 + 0.4*float64(v%7)/7
		unused[v] = resource.Vector{c[0] * f, c[1] * f * 0.9, c[2] * f * 0.7}
	}
	// Warm the fleet past the cold-start threshold so every timed
	// iteration exercises the full train/predict path.
	for i := 0; i < 32; i++ {
		bo.ObserveAll(unused, nil)
	}
	return bo, sched, unused
}

// refreshVector is a deterministic, non-constant unused-telemetry slot for
// the per-VM refresh benches: enough variation that the symbolizer
// thresholds are non-degenerate and every correction branch stays live.
func refreshVector(i int) resource.Vector {
	f := 0.35 + 0.25*math.Sin(float64(i)/5) + 0.05*float64(i%7)
	return resource.Vector{8 * f, 16 * f * 0.9, 100 * f * 0.7}
}

// tierVector is slow-moving unused telemetry for the two-tier bench:
// enough drift that history stays non-degenerate, little enough that the
// first tier's persistence forecast stays inside its trust threshold.
func tierVector(i int) resource.Vector {
	f := 0.5 + 0.02*math.Sin(float64(i)/40)
	return resource.Vector{8 * f, 16 * f * 0.9, 100 * f * 0.7}
}

// correctSeries is the hmmCorrect input shape: a full default-length
// history (120 slots) of fluctuating unused amounts.
func correctSeries() []float64 {
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 50 + 18*math.Sin(float64(i)/5) + float64(i%7)
	}
	return vals
}

// correctObs symbolizes correctSeries the way hmmCorrect does (window
// means, level thresholds, window 6 → 20 observations).
func correctObs() []hmm.Symbol {
	vals := correctSeries()
	means := hmm.WindowMeans(vals, 6)
	sym, err := hmm.NewSymbolizer(means)
	if err != nil {
		panic(err)
	}
	return sym.ObserveLevels(vals, 6)
}

// correctBench replicates the CorpPredictor.hmmCorrect sequence at the hmm
// package level: symbolize the history into reused scratch, refit every
// 8th call, Viterbi, and the Eq. 17 next-symbol correction.
type correctBench struct {
	vals  []float64
	means []float64
	obs   []hmm.Symbol
	model *hmm.Model
	yhat  float64
}

func newCorrectBench() *correctBench {
	return &correctBench{vals: correctSeries(), model: hmm.NewPaperModel(1), yhat: 55}
}

func (c *correctBench) step(i int) {
	c.means = hmm.AppendWindowMeans(c.means[:0], c.vals, 6)
	sym, err := hmm.MakeSymbolizer(c.means)
	if err != nil {
		panic(err)
	}
	c.obs = sym.AppendObserveLevels(c.obs[:0], c.vals, 6)
	obs := c.obs
	if i%8 == 1 {
		if _, _, err := c.model.BaumWelch(obs, 5, 1e-5); err != nil {
			panic(err)
		}
	}
	path, _, err := c.model.Viterbi(obs)
	if err != nil {
		panic(err)
	}
	next, dist, err := c.model.PredictNextSymbol(path[len(path)-1])
	if err != nil {
		panic(err)
	}
	if dist[next] >= 0.5 {
		c.yhat = sym.CorrectToward(c.yhat, next)
	}
}

// WriteJSON writes the snapshot with stable formatting.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("perf: read snapshot: %w", err)
	}
	return s, nil
}

// Diff compares two snapshots and returns a human-readable report plus an
// error if any ns-gated bench (see nsGates: kernels and trace generators
// at tol — fractional, e.g. 0.10 for 10% — slot-observe at tol, the
// scale/* single runs at a widened band) regressed in ns/op, or if any
// bench outside the exempt prefixes (end-to-end figure/scale runs and the
// engine benches, whose pool alloc counts are timing-dependent) grew its
// allocs/op beyond allocSlack. Benches present in only one snapshot are
// reported but never fail the diff.
func Diff(old, new Snapshot, tol float64) (string, error) {
	if tol <= 0 {
		tol = 0.10
	}
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	names := make([]string, 0, len(new.Results))
	for _, r := range new.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	newBy := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newBy[r.Name] = r
	}

	var sb strings.Builder
	var failures []string
	fmt.Fprintf(&sb, "%-28s %14s %14s %8s\n", "bench", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nr := newBy[name]
		or, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(&sb, "%-28s %14s %14.1f %8s\n", name, "-", nr.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		}
		fmt.Fprintf(&sb, "%-28s %14.1f %14.1f %+7.1f%%\n", name, or.NsPerOp, nr.NsPerOp, delta*100)
		if gateTol := nsGateTol(name, tol); gateTol > 0 && delta > gateTol {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (> %.0f%%)", name, delta*100, gateTol*100))
		}
		if !hasAnyPrefix(name, allocExemptPrefixes) && nr.AllocsPerOp > or.AllocsPerOp+allocSlack(or.AllocsPerOp) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op grew %d → %d", name, or.AllocsPerOp, nr.AllocsPerOp))
		}
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			fmt.Fprintf(&sb, "%-28s %14.1f %14s %8s\n", name, oldBy[name].NsPerOp, "-", "gone")
		}
	}
	if old.Tier != nil || new.Tier != nil {
		fmtTier := func(t *TierStats) string {
			if t == nil {
				return "-"
			}
			total := t.Hits + t.Escalations
			if total == 0 {
				return "0 decisions"
			}
			return fmt.Sprintf("%d served / %d escalated (%.1f%% first-tier)",
				t.Hits, t.Escalations, 100*float64(t.Hits)/float64(total))
		}
		fmt.Fprintf(&sb, "two-tier forecaster: old %s, new %s\n", fmtTier(old.Tier), fmtTier(new.Tier))
	}
	if old.Farm != nil || new.Farm != nil {
		fmtFarm := func(f *FarmStats) string {
			if f == nil {
				return "-"
			}
			return fmt.Sprintf("%d jobs / %d dedup hits / %d retries", f.Jobs, f.DedupHits, f.Retries)
		}
		fmt.Fprintf(&sb, "farm campaign: old %s, new %s\n", fmtFarm(old.Farm), fmtFarm(new.Farm))
	}
	if len(failures) > 0 {
		return sb.String(), fmt.Errorf("perf: kernel regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return sb.String(), nil
}
