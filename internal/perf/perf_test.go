package perf

import (
	"bytes"
	"strings"
	"testing"
)

func snap(results ...Result) Snapshot {
	return Snapshot{Date: "2026-08-06", GoVersion: "go1.24.0", GOARCH: "amd64", Results: results}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snap(
		Result{Name: "dnn/forward-tableII", NsPerOp: 2500.5, Iterations: 100000},
		Result{Name: "predict/corp-observe", NsPerOp: 80000, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 1000},
	)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != s.Date || got.GoVersion != s.GoVersion || len(got.Results) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if got.Results[0] != s.Results[0] {
		t.Errorf("result 0 = %+v, want %+v", got.Results[0], s.Results[0])
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	old := snap(Result{Name: "dnn/train-sample-tableII", NsPerOp: 5000})
	new := snap(Result{Name: "dnn/train-sample-tableII", NsPerOp: 5400}) // +8%
	report, err := Diff(old, new, 0.10)
	if err != nil {
		t.Fatalf("8%% regression failed the 10%% gate: %v\n%s", err, report)
	}
	if !strings.Contains(report, "dnn/train-sample-tableII") {
		t.Errorf("report missing bench name:\n%s", report)
	}
}

func TestDiffFailsOnKernelRegression(t *testing.T) {
	old := snap(Result{Name: "dnn/train-sample-tableII", NsPerOp: 5000})
	new := snap(Result{Name: "dnn/train-sample-tableII", NsPerOp: 6000}) // +20%
	if _, err := Diff(old, new, 0.10); err == nil {
		t.Error("20% kernel regression passed the 10% gate")
	}
}

func TestDiffFailsOnKernelAllocGrowth(t *testing.T) {
	old := snap(Result{Name: "dnn/forward-tableII", NsPerOp: 2500, AllocsPerOp: 0})
	new := snap(Result{Name: "dnn/forward-tableII", NsPerOp: 2500, AllocsPerOp: 2})
	if _, err := Diff(old, new, 0.10); err == nil {
		t.Error("alloc growth in a kernel passed the gate")
	}
}

func TestDiffFailsOnHmmRegression(t *testing.T) {
	old := snap(Result{Name: "hmm/baumwelch", NsPerOp: 5000})
	new := snap(Result{Name: "hmm/baumwelch", NsPerOp: 6000}) // +20%
	if _, err := Diff(old, new, 0.10); err == nil {
		t.Error("20% hmm kernel regression passed the 10% gate")
	}
}

func TestDiffFailsOnPredictorAllocGrowth(t *testing.T) {
	// Predictor-level benches are not ns-gated (too noisy) but any allocs
	// growth is deterministic and must fail.
	old := snap(Result{Name: "predict/corp-refresh", NsPerOp: 100000, AllocsPerOp: 0})
	new := snap(Result{Name: "predict/corp-refresh", NsPerOp: 100000, AllocsPerOp: 5})
	if _, err := Diff(old, new, 0.10); err == nil {
		t.Error("alloc growth in predict/corp-refresh passed the gate")
	}
	old = snap(Result{Name: "baseline/refresh", NsPerOp: 10000, AllocsPerOp: 0})
	new = snap(Result{Name: "baseline/refresh", NsPerOp: 10000, AllocsPerOp: 3})
	if _, err := Diff(old, new, 0.10); err == nil {
		t.Error("alloc growth in baseline/refresh passed the gate")
	}
}

func TestDiffExemptsPoolAllocNoise(t *testing.T) {
	// Engine benches run goroutine pools whose alloc counts are
	// timing-dependent; they are recorded but not alloc-gated.
	old := snap(Result{Name: "engine/refresh-fleet200-w1", NsPerOp: 5e6, AllocsPerOp: 50000})
	new := snap(Result{Name: "engine/refresh-fleet200-w1", NsPerOp: 5e6, AllocsPerOp: 51000})
	if _, err := Diff(old, new, 0.10); err != nil {
		t.Errorf("engine alloc noise failed the diff: %v", err)
	}
}

func TestDiffIgnoresNonKernelRegression(t *testing.T) {
	// End-to-end figure benches are recorded but too noisy to gate.
	old := snap(Result{Name: "figure/fig06-quick", NsPerOp: 1e9})
	new := snap(Result{Name: "figure/fig06-quick", NsPerOp: 2e9})
	if _, err := Diff(old, new, 0.10); err != nil {
		t.Errorf("non-kernel regression failed the diff: %v", err)
	}
}

func TestDiffReportsNewAndGoneBenches(t *testing.T) {
	old := snap(Result{Name: "dnn/gone", NsPerOp: 100})
	new := snap(Result{Name: "dnn/fresh", NsPerOp: 100})
	report, err := Diff(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Errorf("report missing new/gone markers:\n%s", report)
	}
}

// TestSuiteQuickRunsKernels smoke-tests the harness itself: the quick
// suite must produce the kernel benches with allocation-free results.
func TestSuiteQuickRunsKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	s := Suite(true)
	want := map[string]bool{
		"dnn/forward-tableII":      false,
		"dnn/train-sample-tableII": false,
		"dnn/train-batch-tableII":  false,
		"predict/corp-observe":     false,
		"predict/corp-refresh":     false,
		"baseline/refresh":         false,
		"hmm/viterbi":              false,
		"hmm/baumwelch":            false,
		"hmm/correct":              false,
	}
	for _, r := range s.Results {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if (strings.HasPrefix(r.Name, "dnn/") || strings.HasPrefix(r.Name, "hmm/")) && r.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d/op", r.Name, r.AllocsPerOp)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s ns/op = %v", r.Name, r.NsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("suite missing %s", name)
		}
	}
}
