package perf

import (
	"os"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestScaleProfileConcurrency measures the scale-profile scenario's shape:
// peak short jobs in flight (running + queued) must clear 100k, the regime
// the profile exists to exercise. The full 20000-VM run takes minutes, so
// the test only runs when CORP_SCALE=1 is set; its measured numbers are
// recorded in EXPERIMENTS.md next to the scale/sim-scale5k-* bench entries.
func TestScaleProfileConcurrency(t *testing.T) {
	if os.Getenv("CORP_SCALE") == "" {
		t.Skip("set CORP_SCALE=1 to run the minutes-long scale-profile measurement")
	}
	cfg := scaleProfileConfig(1)
	cfg.RecordTimeline = true
	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	peak, peakSlot := 0, 0
	for _, p := range res.Timeline {
		if inFlight := p.RunningShort + p.Queued; inFlight > peak {
			peak, peakSlot = inFlight, p.Slot
		}
	}
	t.Logf("scale profile: %d jobs over %d slots in %.1fs; peak in-flight %d (slot %d), placed opp %d fresh %d, never %d",
		res.NumJobs, res.Slots, wall.Seconds(), peak, peakSlot,
		res.PlacedOpportunistic, res.PlacedFresh, res.NeverPlaced)
	if peak < 100_000 {
		t.Errorf("peak in-flight short jobs = %d, want >= 100000", peak)
	}
}
