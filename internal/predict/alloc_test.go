package predict

import (
	"math"
	"testing"

	"repro/internal/resource"
)

// Steady-state allocation tests for the per-VM refresh hot path: once the
// history and scratch are warm, the full Predict pipeline — DNN forward,
// hmmCorrect (symbolize, periodic Baum–Welch, Viterbi, Eq. 17), CI
// adjustment — and the baselines' Predict must stay off the heap.

// fluctVector varies enough that the symbolizer thresholds stay
// non-degenerate and all hmmCorrect branches remain live.
func fluctVector(i int) resource.Vector {
	f := 0.35 + 0.25*math.Sin(float64(i)/5) + 0.05*float64(i%7)
	return resource.Vector{8 * f, 16 * f * 0.9, 100 * f * 0.7}
}

func TestHMMCorrectPathDoesNotAllocate(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 1)
	// Warm through several HMMRefit periods so BaumWelch scratch is grown.
	i := 0
	for ; i < 160; i++ {
		p.Observe(fluctVector(i))
		p.Predict()
	}
	var out []ErrorSample
	if avg := testing.AllocsPerRun(64, func() {
		p.Observe(fluctVector(i))
		p.Predict()
		out = p.AppendOutcomes(out[:0])
		i++
	}); avg != 0 {
		t.Errorf("CORP observe+predict+drain allocates %.2f/op after warmup", avg)
	}
}

// TestHMMCorrectDirectDoesNotAllocate exercises hmmCorrect itself (the
// satellite's named target) including the refit iteration.
func TestHMMCorrectDirectDoesNotAllocate(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 1)
	for i := 0; i < 160; i++ {
		p.Observe(fluctVector(i))
		p.Predict()
	}
	vals := p.track.histValues(resource.CPU)
	if len(vals) < p.cfg.InputSlots*p.cfg.Window {
		t.Fatalf("history not warm: %d values", len(vals))
	}
	if avg := testing.AllocsPerRun(64, func() {
		p.predictions++ // cycle through refit and non-refit calls
		p.hmmCorrect(resource.CPU, vals, 3.5)
	}); avg != 0 {
		t.Errorf("hmmCorrect allocates %.2f/op after warmup", avg)
	}
}

// TestSplitPredictPathDoesNotAllocate pins the engine-facing split —
// PredictPrepare, ForwardBatchKind, PredictFinish — allocation-free once
// warm, matching the serial Predict guarantee above.
func TestSplitPredictPathDoesNotAllocate(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 1)
	rows := [resource.NumKinds][]float64{
		make([]float64, brain.InputSlots()),
		make([]float64, brain.InputSlots()),
		make([]float64, brain.InputSlots()),
	}
	split := func(i int) {
		p.Observe(fluctVector(i))
		need := p.PredictPrepare(&rows)
		var outs [resource.NumKinds]float64
		for _, k := range resource.Kinds() {
			if !need[k] {
				continue
			}
			out, err := brain.ForwardBatchKind(k, rows[k])
			if err != nil {
				t.Fatal(err)
			}
			outs[k] = out[0]
		}
		p.PredictFinish(&outs)
	}
	i := 0
	for ; i < 160; i++ {
		split(i)
	}
	var out []ErrorSample
	if avg := testing.AllocsPerRun(64, func() {
		split(i)
		out = p.AppendOutcomes(out[:0])
		i++
	}); avg != 0 {
		t.Errorf("split observe+predict+drain allocates %.2f/op after warmup", avg)
	}
}

// TestTierPredictPathDoesNotAllocate pins the two-tier pipeline — shadow
// scoring, the persistence+ridge forecast, and both the tier-served and
// escalated branches — allocation-free once warm.
func TestTierPredictPathDoesNotAllocate(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1, TierEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 1)
	i := 0
	for ; i < 160; i++ {
		p.Observe(fluctVector(i))
		p.Predict()
	}
	var out []ErrorSample
	if avg := testing.AllocsPerRun(64, func() {
		p.Observe(fluctVector(i))
		p.Predict()
		out = p.AppendOutcomes(out[:0])
		i++
	}); avg != 0 {
		t.Errorf("tiered observe+predict+drain allocates %.2f/op after warmup", avg)
	}
	if hits, escal := p.TierCounters(); hits+escal == 0 {
		t.Error("tier enabled but no tier decisions recorded")
	}
}

func TestBaselinePredictDoesNotAllocate(t *testing.T) {
	capacity := resource.Vector{8, 16, 100}
	rccr := NewRCCRPredictor(RCCRConfig{}, capacity)
	cs := NewCloudScalePredictor(CloudScaleConfig{}, capacity)
	dra := NewDRAPredictor(DRAConfig{}, capacity)
	preds := []Predictor{rccr, cs, dra}
	i := 0
	for ; i < 160; i++ {
		v := fluctVector(i)
		for _, p := range preds {
			p.Observe(v)
			p.Predict()
		}
	}
	var out []ErrorSample
	for _, p := range preds {
		p := p
		oa := p.(OutcomeAppender)
		if avg := testing.AllocsPerRun(64, func() {
			p.Observe(fluctVector(i))
			p.Predict()
			out = oa.AppendOutcomes(out[:0])
			i++
		}); avg != 0 {
			t.Errorf("%s observe+predict+drain allocates %.2f/op after warmup", p.Name(), avg)
		}
	}
}
