package predict

import (
	"repro/internal/resource"
	"repro/internal/stats"
)

// RCCRConfig parameterizes the RCCR baseline predictor.
type RCCRConfig struct {
	// Window is L; zero defaults to 6.
	Window int
	// Alpha and Beta are the Holt smoothing parameters; zeros default to
	// 0.5 / 0.1.
	Alpha, Beta float64
	// Eta is the confidence level for the lower-bound adjustment; zero
	// defaults to 0.80.
	Eta float64
	// RefreshEvery is how many Predict calls share one forecast. RCCR
	// targets long-term availability SLOs, so it forecasts a long window
	// and commits to it (the paper's critique: "uses a time series
	// forecasting method ... for long-running service jobs ... not
	// suitable for short-lived jobs"). Zero defaults to 3.
	RefreshEvery int
	// HistoryLen bounds history; zero defaults to 120.
	HistoryLen int
}

func (c RCCRConfig) withDefaults() RCCRConfig {
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.Beta <= 0 {
		c.Beta = 0.1
	}
	if c.Eta <= 0 {
		c.Eta = 0.80
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 3
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 120
	}
	return c
}

// RCCRPredictor reimplements the paper's RCCR baseline: exponential
// smoothing (ETS) time-series forecasting of the unused resource, with the
// lower bound of the confidence interval taken as the prediction. No
// fluctuation handling, no preemption gate (its opportunism is ungated).
type RCCRPredictor struct {
	cfg    RCCRConfig
	track  *tracker
	holt   [resource.NumKinds]*stats.HoltETS
	calls  int
	cached resource.Vector
}

// NewRCCRPredictor builds an RCCR predictor for one VM.
func NewRCCRPredictor(cfg RCCRConfig, capacity resource.Vector) *RCCRPredictor {
	cfg = cfg.withDefaults()
	p := &RCCRPredictor{cfg: cfg, track: newTracker(cfg.Window, cfg.HistoryLen, capacity)}
	for k := range p.holt {
		p.holt[k] = stats.NewHoltETS(cfg.Alpha, cfg.Beta)
	}
	return p
}

// Name implements Predictor.
func (p *RCCRPredictor) Name() string { return "RCCR" }

// Observe implements Predictor.
func (p *RCCRPredictor) Observe(actual resource.Vector) {
	p.track.observe(actual)
	for k := range p.holt {
		p.holt[k].Observe(actual[k])
	}
}

// Predict implements Predictor: Holt forecast over the long horizon it
// commits to, minus the confidence-interval margin (the paper: "chose the
// lower bound of the confidence interval as the predicted value"). The
// forecast refreshes only every RefreshEvery-th call.
func (p *RCCRPredictor) Predict() Prediction {
	if p.calls%p.cfg.RefreshEvery == 0 {
		var out resource.Vector
		z := stats.ZForConfidence(p.cfg.Eta)
		horizon := (p.cfg.RefreshEvery*p.cfg.Window + 1) / 2
		for _, k := range resource.Kinds() {
			var yhat float64
			if p.holt[k].Ready() {
				yhat = p.holt[k].Forecast(horizon)
			} else {
				yhat = stats.Mean(p.track.histValues(k))
			}
			yhat -= p.track.errStdDev(k) * z
			if yhat < 0 {
				yhat = 0
			}
			out[k] = yhat
		}
		p.cached = p.track.clampToCapacity(out)
	}
	p.calls++
	p.track.recordPrediction(p.cached)
	return Prediction{Unused: p.cached, Unlocked: true}
}

// DrainOutcomes implements Predictor.
func (p *RCCRPredictor) DrainOutcomes() []ErrorSample {
	return p.track.drainOutcomes()
}

// AppendOutcomes implements OutcomeAppender.
func (p *RCCRPredictor) AppendOutcomes(dst []ErrorSample) []ErrorSample {
	return p.track.appendOutcomes(dst)
}

// CloudScaleConfig parameterizes the CloudScale baseline predictor.
type CloudScaleConfig struct {
	// Window is L; zero defaults to 6.
	Window int
	// SignatureLen is how much history the periodogram inspects; zero
	// defaults to 32 slots (the direct DFT is quadratic in this).
	SignatureLen int
	// SignatureShare is the spectral-energy share a dominant period must
	// carry; zero defaults to 0.5 (PRESS's threshold).
	SignatureShare float64
	// MarkovBins quantizes usage for the Markov fallback; zero defaults
	// to 8.
	MarkovBins int
	// PadFactor scales the adaptive padding; zero defaults to 0.5.
	// The Fig. 8 risk sweep varies it.
	PadFactor float64
	// HistoryLen bounds history; zero defaults to 120.
	HistoryLen int
}

func (c CloudScaleConfig) withDefaults() CloudScaleConfig {
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.SignatureLen <= 0 {
		c.SignatureLen = 32
	}
	if c.SignatureShare <= 0 {
		c.SignatureShare = 0.5
	}
	if c.MarkovBins <= 0 {
		c.MarkovBins = 8
	}
	if c.PadFactor <= 0 {
		c.PadFactor = 0.5
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 120
	}
	return c
}

// CloudScalePredictor reimplements the CloudScale baseline: PRESS-style
// signature prediction when the history has a dominant period, a
// discrete-time Markov chain otherwise, plus adaptive padding driven by
// recent burstiness and recent prediction errors. Short-lived workloads
// rarely expose a signature, so the Markov path dominates — the paper's
// explanation for CloudScale's weaker accuracy here.
type CloudScalePredictor struct {
	cfg    CloudScaleConfig
	track  *tracker
	chains [resource.NumKinds]*stats.MarkovChain
	errEW  [resource.NumKinds]*stats.EWMA

	// Signature detection is quadratic, and CloudScale's premise is that
	// patterns are stable, so the detected (period, ok) pair is cached
	// and recomputed only every sigRefresh-th Predict.
	calls     int
	sigPeriod [resource.NumKinds]int
	sigOK     [resource.NumKinds]bool

	// spec holds the spectrum and signature buffers the detection and
	// replay paths reuse across Predict calls.
	spec stats.PeriodScratch
}

// sigRefresh is how many Predict calls reuse one signature detection.
const sigRefresh = 4

// NewCloudScalePredictor builds a CloudScale predictor for one VM.
func NewCloudScalePredictor(cfg CloudScaleConfig, capacity resource.Vector) *CloudScalePredictor {
	cfg = cfg.withDefaults()
	p := &CloudScalePredictor{cfg: cfg, track: newTracker(cfg.Window, cfg.HistoryLen, capacity)}
	for k := range p.chains {
		hi := capacity[k]
		if hi <= 0 {
			hi = 1
		}
		p.chains[k] = stats.NewMarkovChain(cfg.MarkovBins, 0, hi)
		p.errEW[k] = stats.NewEWMA(0.3)
	}
	return p
}

// Name implements Predictor.
func (p *CloudScalePredictor) Name() string { return "CloudScale" }

// Observe implements Predictor.
func (p *CloudScalePredictor) Observe(actual resource.Vector) {
	before := len(p.track.matured)
	p.track.observe(actual)
	for k := range p.chains {
		p.chains[k].Observe(actual[k])
	}
	// Fold the errors that matured in this very slot into the padding
	// EWMA (earlier ones were already folded). Underestimates feed zero
	// so the padding decays after a run of safe windows instead of
	// ratcheting up forever.
	for _, s := range p.track.matured[before:] {
		if s.Error < 0 { // overestimate: predicted more unused than real
			p.errEW[s.Kind].Observe(-s.Error)
		} else {
			p.errEW[s.Kind].Observe(0)
		}
	}
}

// Predict implements Predictor.
func (p *CloudScalePredictor) Predict() Prediction {
	refreshSig := p.calls%sigRefresh == 0
	p.calls++
	var out resource.Vector
	for _, k := range resource.Kinds() {
		vals := p.track.histValues(k)
		var yhat float64
		sig := vals
		if len(sig) > p.cfg.SignatureLen {
			sig = sig[len(sig)-p.cfg.SignatureLen:]
		}
		yhat = p.chains[k].Predict((p.cfg.Window + 1) / 2)
		if refreshSig {
			p.sigPeriod[k], p.sigOK[k] = p.spec.DominantPeriod(sig, p.cfg.SignatureShare)
		}
		if p.sigOK[k] {
			if m, ok := p.spec.SignatureMean(sig, p.sigPeriod[k], p.cfg.Window); ok {
				yhat = m
			}
		}
		// Adaptive padding: the larger of the recent burst magnitude and
		// the recent overestimation error, scaled by PadFactor, subtracted
		// to stay conservative.
		pad := p.burst(vals)
		if e := p.errEW[k].Value(); e > pad {
			pad = e
		}
		yhat -= p.cfg.PadFactor * pad
		if yhat < 0 {
			yhat = 0
		}
		out[k] = yhat
	}
	out = p.track.clampToCapacity(out)
	p.track.recordPrediction(out)
	return Prediction{Unused: out, Unlocked: true}
}

// burst returns half the recent downside deviation (mean − min over the
// last 2L slots): for unused-resource forecasting the risk CloudScale pads
// against is the unused amount dipping below the forecast.
func (p *CloudScalePredictor) burst(vals []float64) float64 {
	n := 2 * p.cfg.Window
	if len(vals) > n {
		vals = vals[len(vals)-n:]
	}
	if len(vals) == 0 {
		return 0
	}
	lo, _, err := stats.MinMax(vals)
	if err != nil {
		return 0
	}
	return (stats.Mean(vals) - lo) / 2
}

// DrainOutcomes implements Predictor.
func (p *CloudScalePredictor) DrainOutcomes() []ErrorSample {
	return p.track.drainOutcomes()
}

// AppendOutcomes implements OutcomeAppender.
func (p *CloudScalePredictor) AppendOutcomes(dst []ErrorSample) []ErrorSample {
	return p.track.appendOutcomes(dst)
}

// DRAConfig parameterizes the DRA baseline estimator.
type DRAConfig struct {
	// Window is L; zero defaults to 6.
	Window int
	// AvgLen is the run-time estimator's averaging window; zero defaults
	// to 12 slots.
	AvgLen int
	// RefreshEvery is how many Predict calls share one periodic
	// estimate; DRA's run-time software only estimates "periodically",
	// so intermediate windows reuse a stale value. Zero defaults to 4.
	RefreshEvery int
	// HistoryLen bounds history; zero defaults to 120.
	HistoryLen int
}

func (c DRAConfig) withDefaults() DRAConfig {
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.AvgLen <= 0 {
		c.AvgLen = 12
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 4
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 120
	}
	return c
}

// DRAPredictor reimplements DRA's run-time estimator: a plain windowed
// average of recent unused amounts. No fluctuation handling, no confidence
// interval, and never unlocked — DRA is demand-based and does not
// reallocate allocated-but-unused resources opportunistically.
type DRAPredictor struct {
	cfg    DRAConfig
	track  *tracker
	calls  int
	cached resource.Vector
}

// NewDRAPredictor builds a DRA estimator for one VM.
func NewDRAPredictor(cfg DRAConfig, capacity resource.Vector) *DRAPredictor {
	cfg = cfg.withDefaults()
	return &DRAPredictor{cfg: cfg, track: newTracker(cfg.Window, cfg.HistoryLen, capacity)}
}

// Name implements Predictor.
func (p *DRAPredictor) Name() string { return "DRA" }

// Observe implements Predictor.
func (p *DRAPredictor) Observe(actual resource.Vector) {
	p.track.observe(actual)
}

// Predict implements Predictor: a windowed mean, refreshed only every
// RefreshEvery-th call (stale in between).
func (p *DRAPredictor) Predict() Prediction {
	if p.calls%p.cfg.RefreshEvery == 0 {
		p.cached = p.track.clampToCapacity(p.track.recentMean(p.cfg.AvgLen))
	}
	p.calls++
	p.track.recordPrediction(p.cached)
	return Prediction{Unused: p.cached, Unlocked: false}
}

// DrainOutcomes implements Predictor.
func (p *DRAPredictor) DrainOutcomes() []ErrorSample {
	return p.track.drainOutcomes()
}

// AppendOutcomes implements OutcomeAppender.
func (p *DRAPredictor) AppendOutcomes(dst []ErrorSample) []ErrorSample {
	return p.track.appendOutcomes(dst)
}

// OraclePredictor returns the true future mean unused resource — an upper
// bound no real scheme can reach. The simulator wires the actual per-slot
// series in via SetFuture; the experiment harness uses the oracle to
// measure how much headroom remains above CORP.
type OraclePredictor struct {
	track  *tracker
	future []resource.Vector
	window int
}

// NewOraclePredictor builds an oracle for one VM.
func NewOraclePredictor(window int, capacity resource.Vector) *OraclePredictor {
	if window < 1 {
		window = 6
	}
	return &OraclePredictor{track: newTracker(window, 120, capacity), window: window}
}

// SetFuture provides the full actual unused series, indexed by slot.
func (p *OraclePredictor) SetFuture(series []resource.Vector) {
	p.future = series
}

// Name implements Predictor.
func (p *OraclePredictor) Name() string { return "Oracle" }

// Observe implements Predictor.
func (p *OraclePredictor) Observe(actual resource.Vector) {
	p.track.observe(actual)
}

// Predict implements Predictor: the exact mean of the next window, read
// from the future series (falling back to the recent mean when the series
// is exhausted or absent).
func (p *OraclePredictor) Predict() Prediction {
	slot := p.track.slot
	var out resource.Vector
	if p.future != nil && slot < len(p.future) {
		end := slot + p.window
		if end > len(p.future) {
			end = len(p.future)
		}
		n := float64(end - slot)
		for s := slot; s < end; s++ {
			out = out.Add(p.future[s])
		}
		out = out.Scale(1 / n)
	} else {
		out = p.track.recentMean(p.window)
	}
	out = p.track.clampToCapacity(out)
	p.track.recordPrediction(out)
	return Prediction{Unused: out, Unlocked: true}
}

// DrainOutcomes implements Predictor.
func (p *OraclePredictor) DrainOutcomes() []ErrorSample {
	return p.track.drainOutcomes()
}

// AppendOutcomes implements OutcomeAppender.
func (p *OraclePredictor) AppendOutcomes(dst []ErrorSample) []ErrorSample {
	return p.track.appendOutcomes(dst)
}
