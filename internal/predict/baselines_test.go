package predict

import (
	"testing"

	"repro/internal/resource"
)

// TestRCCRForecastStaleness verifies the long-horizon commitment: with
// RefreshEvery = 3, consecutive Predict calls return the same cached
// vector until the third call recomputes it.
func TestRCCRForecastStaleness(t *testing.T) {
	p := NewRCCRPredictor(RCCRConfig{}, testCap)
	// Rising series so a refresh necessarily changes the forecast.
	level := 0.5
	feed := func(n int) {
		for i := 0; i < n; i++ {
			level += 0.05
			p.Observe(resource.New(level, level*4, level*45))
		}
	}
	feed(30)
	a := p.Predict().Unused
	feed(6)
	b := p.Predict().Unused
	if a != b {
		t.Errorf("second window should reuse the stale forecast: %v vs %v", a, b)
	}
	feed(6)
	c := p.Predict().Unused
	if a != c {
		t.Errorf("third window should still be cached: %v vs %v", a, c)
	}
	feed(6)
	d := p.Predict().Unused
	if d == a {
		t.Error("fourth Predict should refresh the forecast")
	}
	if d.At(resource.CPU) <= a.At(resource.CPU) {
		t.Errorf("refreshed forecast should track the rise: %v vs %v",
			d.At(resource.CPU), a.At(resource.CPU))
	}
}

// TestDRARefreshStaleness verifies DRA's periodic estimation: the cached
// mean persists for RefreshEvery predictions.
func TestDRARefreshStaleness(t *testing.T) {
	p := NewDRAPredictor(DRAConfig{AvgLen: 4, RefreshEvery: 3}, testCap)
	for i := 0; i < 8; i++ {
		p.Observe(resource.New(1, 4, 45))
	}
	a := p.Predict().Unused
	// Level doubles; the next two predictions stay stale.
	for i := 0; i < 8; i++ {
		p.Observe(resource.New(2, 8, 90))
	}
	if got := p.Predict().Unused; got != a {
		t.Errorf("second Predict should be stale: %v vs %v", got, a)
	}
	if got := p.Predict().Unused; got != a {
		t.Errorf("third Predict should be stale: %v vs %v", got, a)
	}
	refreshed := p.Predict().Unused
	if refreshed.At(resource.CPU) <= a.At(resource.CPU) {
		t.Errorf("fourth Predict should refresh upward: %v vs %v",
			refreshed.At(resource.CPU), a.At(resource.CPU))
	}
}

// TestCloudScaleSignatureCache verifies the periodogram result is reused
// between refreshes (behavioural check: prediction stays on the signature
// path for the cached windows even after the underlying pattern breaks).
func TestCloudScaleSignatureCache(t *testing.T) {
	p := NewCloudScalePredictor(CloudScaleConfig{PadFactor: 0.01}, testCap)
	push := func(v float64) { p.Observe(resource.New(v, v*4, v*45)) }
	// Strong period-8 sine.
	for i := 0; i < 96; i++ {
		push(2 + sin8(i))
	}
	first := p.Predict()
	if first.Unused.At(resource.CPU) < 0.5 {
		t.Fatalf("sine forecast too low: %v", first.Unused)
	}
	// sigRefresh = 4: three more Predicts reuse the cached detection.
	for k := 0; k < 3; k++ {
		for i := 0; i < 6; i++ {
			push(2)
		}
		p.Predict()
	}
	if p.calls != 4 {
		t.Fatalf("calls = %d", p.calls)
	}
}

func sin8(i int) float64 {
	table := []float64{0, 0.707, 1, 0.707, 0, -0.707, -1, -0.707}
	return table[i%8]
}

// TestPredictorInterfaceCompliance pins all four implementations to the
// Predictor contract at compile time and exercises the shared surface.
func TestPredictorInterfaceCompliance(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds := []Predictor{
		NewCorpPredictor(brain, testCap, 1),
		NewRCCRPredictor(RCCRConfig{}, testCap),
		NewCloudScalePredictor(CloudScaleConfig{}, testCap),
		NewDRAPredictor(DRAConfig{}, testCap),
	}
	names := map[string]bool{}
	for _, p := range preds {
		names[p.Name()] = true
		for i := 0; i < 20; i++ {
			p.Observe(resource.New(1, 4, 45))
		}
		pred := p.Predict()
		if !pred.Unused.NonNegative() || !pred.Unused.FitsIn(testCap) {
			t.Errorf("%s: prediction %v out of range", p.Name(), pred.Unused)
		}
		if out := p.DrainOutcomes(); out == nil {
			// Nothing matured yet; legal.
			_ = out
		}
	}
	for _, want := range []string{"CORP", "RCCR", "CloudScale", "DRA"} {
		if !names[want] {
			t.Errorf("missing predictor %q", want)
		}
	}
}
