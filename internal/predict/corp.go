package predict

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dnn"
	"repro/internal/hmm"
	"repro/internal/resource"
	"repro/internal/stats"
)

// CorpConfig parameterizes the CORP predictor (paper Table II defaults).
type CorpConfig struct {
	// InputSlots is Δ, how many recent slots feed the DNN. Zero defaults
	// to 12 (two windows of history at L = 6).
	InputSlots int
	// Window is L, the prediction horizon in slots. Zero defaults to 6
	// (one minute of 10-second slots, the paper's choice).
	Window int
	// HiddenLayers and UnitsPerLayer fix the DNN topology; zero defaults
	// to 2 hidden layers of 50 units — with input and output that is the
	// paper's h = 4 layers × 50 units.
	HiddenLayers  int
	UnitsPerLayer int
	// LearningRate is μ of Eq. 8; zero defaults to 0.5.
	LearningRate float64
	// Eta is the confidence level η; zero defaults to 0.80, the upper-middle
	// of Table II’s 50–90% range.
	Eta float64
	// Epsilon is the capacity-relative prediction error tolerance ε of
	// Eq. 21; zero defaults to 0.10.
	Epsilon float64
	// Pth is the probability threshold of Eq. 21; zero defaults to 0.95
	// (Table II).
	Pth float64
	// HistoryLen bounds per-kind history; zero defaults to 120 slots.
	HistoryLen int
	// HMMRefit is how many predictions elapse between Baum–Welch refits;
	// zero defaults to 8.
	HMMRefit int
	// ReplaySteps is how many stored samples each online training step
	// replays (the multi-epoch approximation). Zero defaults to 5; fleet
	// deployments that feed the shared brain from many VMs can lower it.
	ReplaySteps int
	// Seed drives DNN initialization and HMM perturbation.
	Seed int64
	// DisableHMM and DisableCI switch off the fluctuation correction and
	// the confidence-interval adjustment; used by the ablation benches.
	DisableHMM bool
	DisableCI  bool

	// TierEnabled turns on the two-tier forecaster (tier.go): VMs whose
	// first-tier rolling error stays under TierThreshold are served by a
	// near-free persistence/ridge forecast instead of the DNN+HMM path.
	// Off by default — the single-tier pipeline is bit-identical to the
	// pre-tier implementation.
	TierEnabled bool
	// TierThreshold is the capacity-relative EWMA error below which the
	// first tier serves; zero defaults to 0.05 (half of Epsilon's default
	// tolerance, so tier-served VMs stay well inside the Eq. 21 band).
	TierThreshold float64
	// TierMinScored is how many matured shadow forecasts the tier needs
	// before it may serve; zero defaults to 4 (mirroring coldSkip).
	TierMinScored int
	// TierRidgeWindow is how many recent slots feed the first tier's
	// ridge trend; zero defaults to 2×Window (the Δ of the DNN input).
	TierRidgeWindow int
	// TierLambda is the ridge regularizer on the trend slope; zero
	// defaults to 4.0.
	TierLambda float64
}

func (c CorpConfig) withDefaults() CorpConfig {
	if c.InputSlots <= 0 {
		c.InputSlots = 12
	}
	if c.Window <= 0 {
		c.Window = 6
	}
	if c.HiddenLayers <= 0 {
		c.HiddenLayers = 2
	}
	if c.UnitsPerLayer <= 0 {
		c.UnitsPerLayer = 50
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.Eta <= 0 {
		c.Eta = 0.80
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.10
	}
	if c.Pth <= 0 {
		c.Pth = 0.95
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 120
	}
	if c.HMMRefit <= 0 {
		c.HMMRefit = 8
	}
	if c.ReplaySteps <= 0 {
		c.ReplaySteps = 5
	}
	if c.TierThreshold <= 0 {
		c.TierThreshold = 0.05
	}
	if c.TierMinScored <= 0 {
		c.TierMinScored = 4
	}
	if c.TierRidgeWindow <= 0 {
		c.TierRidgeWindow = 2 * c.Window
	}
	if c.TierLambda <= 0 {
		c.TierLambda = 4.0
	}
	return c
}

// brainKind is one resource kind's complete training state: its network,
// replay ring, batch-assembly buffers, replay RNG, and counters. Kinds
// share nothing, so the engine's shared training phase can run the kinds
// concurrently (each kind's stream still serialized in VM order) without
// changing any figure.
type brainKind struct {
	net       *dnn.Network
	rng       *rand.Rand
	replayIn  []float64 // ring slab: replayCap rows × InputSlots
	replayTgt []float64 // ring slab: replayCap targets
	replayLen int
	replayPos int
	batchIn   []float64 // (1+ReplaySteps) rows × InputSlots
	batchTgt  []float64 // (1+ReplaySteps) targets
	// fwd backs the brain's own single-sample forward; fwdBatch backs
	// ForwardBatchKind (grown on demand). Per-kind ownership keeps the
	// kinds fully independent for the engine's per-kind concurrency.
	fwd      *dnn.FwdScratch
	fwdBatch *dnn.BatchScratch
	// steps counts SGD updates; errs counts rejected online training
	// calls (malformed samples) so a broken feed cannot masquerade as a
	// trained predictor.
	steps int
	errs  int
}

// CorpBrain is the per-kind DNN shared by every VM's CORP predictor: all
// VMs feed training samples into the same networks, mirroring the paper's
// single model trained on the whole trace. Each resource kind's state is
// fully independent (own network, replay ring, RNG), so distinct kinds may
// train concurrently; within a kind, calls must stay serialized in a fixed
// VM order for reproducibility. Each incoming sample is also pushed into
// the kind's replay ring; every online step additionally replays a few
// past samples, approximating the paper's multi-epoch training loop
// without buffering the whole trace.
//
// The rings are flat row-major slabs (row stride = InputSlots) and each
// online step assembles the new sample plus its replay picks into a
// preallocated batch fed to dnn.TrainBatch, so the per-slot training path
// performs no heap allocations.
type CorpBrain struct {
	cfg   CorpConfig
	kinds [resource.NumKinds]brainKind
}

// NewCorpBrain builds the shared networks.
func NewCorpBrain(cfg CorpConfig) (*CorpBrain, error) {
	cfg = cfg.withDefaults()
	b := &CorpBrain{cfg: cfg}
	sizes := []int{cfg.InputSlots}
	for i := 0; i < cfg.HiddenLayers; i++ {
		sizes = append(sizes, cfg.UnitsPerLayer)
	}
	sizes = append(sizes, 1)
	for k := range b.kinds {
		net, err := dnn.New(dnn.Config{
			LayerSizes:   sizes,
			LearningRate: cfg.LearningRate,
			Seed:         cfg.Seed + int64(k),
		})
		if err != nil {
			return nil, fmt.Errorf("predict: corp brain: %w", err)
		}
		kk := &b.kinds[k]
		kk.net = net
		kk.rng = rand.New(rand.NewSource((cfg.Seed ^ 0x7ab) + int64(k)*0x5851F42D4C957F2D))
		kk.replayIn = make([]float64, replayCap*cfg.InputSlots)
		kk.replayTgt = make([]float64, replayCap)
		kk.batchIn = make([]float64, (1+cfg.ReplaySteps)*cfg.InputSlots)
		kk.batchTgt = make([]float64, 1+cfg.ReplaySteps)
		kk.fwd = net.NewFwdScratch()
	}
	return b, nil
}

// InputSlots returns Δ, the per-kind network's input width.
func (b *CorpBrain) InputSlots() int { return b.cfg.InputSlots }

// TrainSteps returns the number of SGD updates performed so far, summed
// over resource kinds.
func (b *CorpBrain) TrainSteps() int {
	n := 0
	for k := range b.kinds {
		n += b.kinds[k].steps
	}
	return n
}

// TrainErrors returns how many online training calls were rejected,
// summed over resource kinds.
func (b *CorpBrain) TrainErrors() int {
	n := 0
	for k := range b.kinds {
		n += b.kinds[k].errs
	}
	return n
}

// replayCap bounds the per-kind replay ring.
const replayCap = 4096

// train performs one online SGD step for kind k on the new sample plus a
// few replayed past samples, all in a single TrainBatch call. The batch is
// assembled in the order the original per-sample loop trained (new sample
// first, then each replay pick as drawn), so results are bit-identical to
// sequential TrainSample calls. Touches only kind k's state; concurrent
// calls for distinct kinds are safe.
func (b *CorpBrain) train(k resource.Kind, input []float64, target float64) error {
	in := b.cfg.InputSlots
	kk := &b.kinds[k]
	if len(input) != in {
		kk.errs++
		return fmt.Errorf("predict: train kind %v: input length %d, want %d", k, len(input), in)
	}
	copy(kk.batchIn[:in], input)
	kk.batchTgt[0] = target
	// Push the new sample into the ring (it is eligible for its own
	// replay draw, as before).
	ring := kk.replayIn
	var pos int
	if kk.replayLen < replayCap {
		pos = kk.replayLen
		kk.replayLen++
	} else {
		pos = kk.replayPos
		kk.replayPos = (kk.replayPos + 1) % replayCap
	}
	copy(ring[pos*in:(pos+1)*in], input)
	kk.replayTgt[pos] = target
	count := 1
	for i := 0; i < b.cfg.ReplaySteps && kk.replayLen > 1; i++ {
		s := kk.rng.Intn(kk.replayLen)
		copy(kk.batchIn[count*in:(count+1)*in], ring[s*in:(s+1)*in])
		kk.batchTgt[count] = kk.replayTgt[s]
		count++
	}
	if _, err := kk.net.TrainBatch(kk.batchIn[:count*in], kk.batchTgt[:count]); err != nil {
		kk.errs++
		return err
	}
	kk.steps += count
	return nil
}

// forward evaluates the kind-k network into brain-owned per-kind scratch
// via ForwardInto, so no forward path allocates per call (the network's
// Forward would reuse its training activations, which is safe serially but
// shares scratch with trainOne; the dedicated FwdScratch keeps evaluation
// and training buffers disjoint). Not safe for concurrent use on one kind;
// the engine's parallel Refresh goes through forwardInto with per-caller
// scratch.
func (b *CorpBrain) forward(k resource.Kind, input []float64) (float64, error) {
	kk := &b.kinds[k]
	out, err := kk.net.ForwardInto(kk.fwd, input)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// ForwardBatchKind evaluates the kind-k network on a flat row-major batch
// of input rows (len(inputs)/Δ rows) and returns one output per row,
// bit-identical per row to forwardInto. The scratch is brain-owned per
// kind and grown on demand, so steady-state calls perform no allocations;
// calls for distinct kinds may run concurrently (with no concurrent
// training), calls for one kind must be serialized.
func (b *CorpBrain) ForwardBatchKind(k resource.Kind, inputs []float64) ([]float64, error) {
	kk := &b.kinds[k]
	in := b.cfg.InputSlots
	if len(inputs) == 0 || len(inputs)%in != 0 {
		return nil, fmt.Errorf("predict: forward batch kind %v: inputs length %d not a positive multiple of %d", k, len(inputs), in)
	}
	rows := len(inputs) / in
	if kk.fwdBatch == nil || kk.fwdBatch.Rows() < rows {
		kk.fwdBatch = kk.net.NewBatchScratch(rows)
	}
	return kk.net.ForwardBatchInto(kk.fwdBatch, inputs)
}

// forwardInto evaluates the kind-k network into caller-owned scratch,
// bit-identical to forward. With weights read-only (no concurrent train),
// any number of goroutines may call this with distinct scratch.
func (b *CorpBrain) forwardInto(k resource.Kind, s *dnn.FwdScratch, input []float64) (float64, error) {
	out, err := b.kinds[k].net.ForwardInto(s, input)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// newFwdScratch returns forward scratch sized for the brain's networks
// (all kinds share one topology, so one scratch serves every kind).
func (b *CorpBrain) newFwdScratch() *dnn.FwdScratch {
	return b.kinds[0].net.NewFwdScratch()
}

// CorpPredictor is one VM's CORP prediction pipeline.
//
// Observe splits into two phases for the parallel engine: ObserveLocal
// touches only this predictor's state (tracker plus staged training
// samples) and may run concurrently across VMs; FlushShared feeds the
// staged sample for one kind into the shared brain and must run in a fixed
// VM order per kind. Observe performs both phases, so serial callers see
// unchanged semantics.
type CorpPredictor struct {
	cfg   CorpConfig
	brain *CorpBrain
	track *tracker

	hmms        [resource.NumKinds]*hmm.Model
	predictions int
	fwd         *dnn.FwdScratch

	// Two-tier forecaster state (tier.go) and its per-run counters.
	tier      [resource.NumKinds]tierState
	tierHits  int
	tierEscal int

	// Split-prediction state carried from PredictPrepare to
	// PredictFinish: how each kind's estimate is produced this refresh,
	// the tier's value when it serves, and the serial path's own DNN
	// input rows (the engine supplies its staging slab instead).
	mode     [resource.NumKinds]uint8
	tierVal  [resource.NumKinds]float64
	predRows [resource.NumKinds][]float64

	// Symbolization scratch for hmmCorrect, reused across kinds and
	// predictions (each call fully rewrites both before reading).
	hmmMeans []float64
	hmmObs   []hmm.Symbol

	// Staged training samples from the last ObserveLocal, one per kind,
	// waiting for FlushShared to feed them to the brain.
	stageIn  [resource.NumKinds][]float64
	stageTgt [resource.NumKinds]float64
	stageOK  [resource.NumKinds]bool

	// HMM trust tracking: each window the previous symbol prediction is
	// scored against the realized band; the correction only fires while
	// the HMM is beating chance on this VM's trace.
	symPred [resource.NumKinds]hmm.Symbol
	symHave [resource.NumKinds]bool
	symHit  [resource.NumKinds]int
	symSeen [resource.NumKinds]int
}

// NewCorpPredictor builds a predictor for a VM of the given capacity,
// sharing the brain's networks.
func NewCorpPredictor(brain *CorpBrain, capacity resource.Vector, seed int64) *CorpPredictor {
	cfg := brain.cfg
	p := &CorpPredictor{
		cfg:   cfg,
		brain: brain,
		track: newTracker(cfg.Window, cfg.HistoryLen, capacity),
		fwd:   brain.newFwdScratch(),
	}
	for k := range p.stageIn {
		p.stageIn[k] = make([]float64, cfg.InputSlots)
		p.predRows[k] = make([]float64, cfg.InputSlots)
	}
	for k := range p.hmms {
		p.hmms[k] = hmm.NewPaperModel(seed + int64(k))
	}
	return p
}

// Name implements Predictor.
func (p *CorpPredictor) Name() string { return "CORP" }

// Observe implements Predictor: it records the sample and performs one
// online SGD step per kind once enough history exists (input: the Δ slots
// preceding the last window; target: the realized mean of that window).
func (p *CorpPredictor) Observe(actual resource.Vector) {
	p.ObserveLocal(actual)
	for _, k := range resource.Kinds() {
		p.FlushShared(k)
	}
}

// ObserveLocal implements Sharded: the VM-local half of Observe. It
// records the sample in the tracker and stages one training sample per
// kind (once enough history exists) without touching the shared brain, so
// concurrent calls on distinct predictors are safe.
func (p *CorpPredictor) ObserveLocal(actual resource.Vector) {
	p.track.observe(actual)
	need := p.cfg.InputSlots + p.cfg.Window
	for _, k := range resource.Kinds() {
		p.stageOK[k] = false
		vals := p.track.histValues(k)
		if len(vals) < need {
			continue
		}
		capK := p.track.capacity[k]
		if capK <= 0 {
			continue
		}
		// Input: Δ slots ending one window ago; target: mean of the
		// window that just completed.
		inStart := len(vals) - need
		for i := 0; i < p.cfg.InputSlots; i++ {
			p.stageIn[k][i] = clamp01(vals[inStart+i] / capK)
		}
		p.stageTgt[k] = clamp01(stats.Mean(vals[len(vals)-p.cfg.Window:]) / capK)
		p.stageOK[k] = true
	}
}

// FlushShared implements Sharded: feeds the staged kind-k sample (if any)
// into the shared brain. Callers must serialize calls for the same kind in
// a fixed VM order; calls for distinct kinds may run concurrently because
// the brain's per-kind state is independent.
func (p *CorpPredictor) FlushShared(k resource.Kind) {
	if !p.stageOK[k] {
		return
	}
	p.stageOK[k] = false
	// Observe has no error channel (the Predictor interface treats
	// observation as fire-and-forget), but rejected samples are counted
	// by the brain and surfaced via TrainErrors/sim.Result so a broken
	// feed cannot silently disable learning.
	_ = p.brain.train(k, p.stageIn[k], p.stageTgt[k])
}

// TrainErrors returns how many of this predictor's training samples the
// shared brain rejected. The count is brain-wide (shared across the VMs
// feeding it), matching how TrainSteps is accounted.
func (p *CorpPredictor) TrainErrors() int { return p.brain.TrainErrors() }

// Per-kind estimate modes carried from PredictPrepare to PredictFinish.
const (
	// refreshFallback: cold start (or degenerate capacity) — the
	// historical mean stands in for the DNN estimate.
	refreshFallback uint8 = iota
	// refreshDNN: the full path; the kind needs a DNN forward.
	refreshDNN
	// refreshTier: the first-tier forecast serves (tier.go).
	refreshTier
)

// Predict implements Predictor: DNN estimate (or first-tier forecast),
// HMM peak/valley correction, confidence-interval adjustment, Eq. 21
// gate. It is PredictPrepare + per-kind forwards + PredictFinish; the
// parallel engine runs the same halves around one batched forward per
// kind instead, so both paths share every line of pipeline logic.
func (p *CorpPredictor) Predict() Prediction {
	need := p.PredictPrepare(&p.predRows)
	var outs [resource.NumKinds]float64
	for _, k := range resource.Kinds() {
		if !need[k] {
			continue
		}
		norm, err := p.brain.forwardInto(k, p.fwd, p.predRows[k])
		if err != nil {
			norm = math.NaN() // PredictFinish falls back to the mean
		}
		outs[k] = norm
	}
	return p.PredictFinish(&outs)
}

// PredictPrepare is the first half of a split prediction: it decides how
// each kind's estimate will be produced and, for kinds that need a DNN
// forward, writes the normalized Δ-slot input into rows[k] (caller-owned,
// each at least InputSlots long) and sets need[k]. The caller must run
// the forwards for the needed kinds and hand the raw normalized outputs
// to PredictFinish; kinds with need[k] false ignore their output slot.
// The batched refresh path gathers rows from many VMs into contiguous
// per-kind staging and runs one batched forward per kind.
func (p *CorpPredictor) PredictPrepare(rows *[resource.NumKinds][]float64) (need [resource.NumKinds]bool) {
	p.predictions++
	for _, k := range resource.Kinds() {
		vals := p.track.histValues(k)
		capK := p.track.capacity[k]
		if len(vals) < p.cfg.InputSlots || capK <= 0 {
			// Cold start: PredictFinish falls back to the historical mean.
			p.mode[k] = refreshFallback
			continue
		}
		if p.cfg.TierEnabled {
			ts := &p.tier[k]
			ts.score(vals, p.track.slot, p.cfg.Window, capK)
			f := tierForecast(vals, p.cfg.Window, p.cfg.TierRidgeWindow, p.cfg.TierLambda, capK)
			ts.record(p.track.slot, f)
			if ts.trusted(p.cfg.TierMinScored, p.cfg.TierThreshold) {
				p.mode[k] = refreshTier
				p.tierVal[k] = f
				p.tierHits++
				continue
			}
			p.tierEscal++
		}
		p.mode[k] = refreshDNN
		row := rows[k]
		for i := 0; i < p.cfg.InputSlots; i++ {
			row[i] = clamp01(vals[len(vals)-p.cfg.InputSlots+i] / capK)
		}
		need[k] = true
	}
	return need
}

// PredictFinish is the second half of a split prediction: given the raw
// normalized DNN outputs for the kinds PredictPrepare marked as needing a
// forward (NaN means the forward failed and the historical-mean fallback
// applies), it runs the rest of the pipeline — HMM correction for
// DNN/fallback estimates, the Eq. 19 confidence-interval adjustment, and
// the Eq. 21 gate — exactly as the single-call Predict always has.
// Tier-served kinds skip the HMM correction (the tier replaces the
// DNN+HMM estimate) but keep the CI adjustment and the gate.
func (p *CorpPredictor) PredictFinish(outs *[resource.NumKinds]float64) Prediction {
	var out resource.Vector
	unlocked := true
	z := stats.ZForConfidence(p.cfg.Eta)
	for _, k := range resource.Kinds() {
		capK := p.track.capacity[k]
		var yhat float64
		if p.mode[k] == refreshTier {
			yhat = p.tierVal[k]
		} else {
			vals := p.track.histValues(k)
			if p.mode[k] == refreshFallback {
				yhat = stats.Mean(vals)
			} else {
				norm := outs[k]
				if math.IsNaN(norm) {
					norm = clamp01(stats.Mean(vals) / capK)
				}
				yhat = norm * capK
			}
			if !p.cfg.DisableHMM {
				yhat = p.hmmCorrect(k, vals, yhat)
			}
		}
		if !p.cfg.DisableCI {
			yhat -= p.track.errStdDev(k) * z // Eq. 19 lower bound
		}
		if yhat < 0 {
			yhat = 0
		}
		out[k] = yhat
		// Eq. 21: enough evidence that errors land in [0, ε).
		frac, n := p.track.errWithin(k, p.cfg.Epsilon)
		if n < 8 || frac < p.cfg.Pth {
			unlocked = false
		}
	}
	out = p.track.clampToCapacity(out)
	p.track.recordPrediction(out)
	return Prediction{Unused: out, Unlocked: unlocked}
}

// Brain exposes the shared CORP brain so the batched refresh engine can
// run the per-kind forwards between PredictPrepare and PredictFinish.
func (p *CorpPredictor) Brain() *CorpBrain { return p.brain }

// TierCounters returns how many per-kind estimates the first tier served
// and how many escalated to the full DNN path while the tier was enabled.
// Both stay zero with TierEnabled off.
func (p *CorpPredictor) TierCounters() (hits, escalations int) {
	return p.tierHits, p.tierEscal
}

// hmmCorrect applies the Section III-A-1b fluctuation correction for one
// kind: symbolize the history, refit the HMM periodically, predict the
// next symbol (Eq. 17), and shift the estimate by min(h−m, m−l).
//
// Symbols and the correction magnitude are computed over window means (see
// hmm.ObserveLevels) so the correction operates in the same units as the
// DNN's window-mean estimate.
func (p *CorpPredictor) hmmCorrect(k resource.Kind, vals []float64, yhat float64) float64 {
	p.hmmMeans = hmm.AppendWindowMeans(p.hmmMeans[:0], vals, p.cfg.Window)
	means := p.hmmMeans
	sym, err := hmm.MakeSymbolizer(means)
	if err != nil {
		return yhat
	}
	p.hmmObs = sym.AppendObserveLevels(p.hmmObs[:0], vals, p.cfg.Window)
	obs := p.hmmObs
	if len(obs) < 5 {
		return yhat
	}
	model := p.hmms[k]
	if p.predictions%p.cfg.HMMRefit == 1 {
		// A few EM iterations on the recent observation sequence; the
		// model warm-starts from its previous parameters.
		if _, _, err := model.BaumWelch(obs, 5, 1e-5); err != nil {
			return yhat
		}
	}
	path, _, err := model.Viterbi(obs)
	if err != nil {
		return yhat
	}
	next, dist, err := model.PredictNextSymbol(path[len(path)-1])
	if err != nil {
		return yhat
	}
	// Score the previous window's symbol prediction against the realized
	// band, maintaining a running trust estimate.
	if p.symHave[k] {
		p.symSeen[k]++
		if p.symPred[k] == sym.SymbolForLevel(means[len(means)-1]) {
			p.symHit[k]++
		}
	}
	p.symPred[k] = next
	p.symHave[k] = true
	// Only correct when the Eq. 17 distribution is decisive AND the HMM
	// has demonstrated better-than-chance symbol accuracy here; a
	// hesitant or miscalibrated HMM would inject noise into an
	// already-good DNN estimate.
	if dist[next] < 0.5 {
		return yhat
	}
	if p.symSeen[k] >= 8 && float64(p.symHit[k]) < 0.55*float64(p.symSeen[k]) {
		return yhat
	}
	return sym.CorrectToward(yhat, next)
}

// DrainOutcomes implements Predictor.
func (p *CorpPredictor) DrainOutcomes() []ErrorSample {
	return p.track.drainOutcomes()
}

// AppendOutcomes implements OutcomeAppender: it appends the matured
// samples to dst and clears them while keeping the internal buffer's
// capacity for reuse.
func (p *CorpPredictor) AppendOutcomes(dst []ErrorSample) []ErrorSample {
	return p.track.appendOutcomes(dst)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Save writes the brain's per-kind networks as JSON, enabling the offline
// train → save → deploy split (pair with PretrainBrain and Load).
func (b *CorpBrain) Save(w io.Writer) error {
	for _, k := range resource.Kinds() {
		if err := b.kinds[k].net.Save(w); err != nil {
			return fmt.Errorf("predict: save kind %v: %w", k, err)
		}
	}
	return nil
}

// LoadCorpBrain reads per-kind networks written by Save into a brain with
// the given configuration. The stored topologies must match the config.
func LoadCorpBrain(cfg CorpConfig, r io.Reader) (*CorpBrain, error) {
	b, err := NewCorpBrain(cfg)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(r)
	for _, k := range resource.Kinds() {
		net, err := dnn.LoadFrom(dec)
		if err != nil {
			return nil, fmt.Errorf("predict: load kind %v: %w", k, err)
		}
		want := b.kinds[k].net.LayerSizes()
		got := net.LayerSizes()
		if len(want) != len(got) {
			return nil, fmt.Errorf("predict: kind %v topology %v, want %v", k, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				return nil, fmt.Errorf("predict: kind %v topology %v, want %v", k, got, want)
			}
		}
		b.kinds[k].net = net
	}
	return b, nil
}
