package predict

import (
	"testing"

	"repro/internal/resource"
)

// tinyCorpConfig keeps the DNN small so ring-wraparound tests that need
// thousands of training calls stay fast.
func tinyCorpConfig(seed int64) CorpConfig {
	return CorpConfig{
		InputSlots: 2, Window: 2, HiddenLayers: 1, UnitsPerLayer: 3,
		ReplaySteps: 2, Seed: seed,
	}
}

// TestBrainTrainErrorsCounted pins the satellite bugfix: a malformed
// training sample must be rejected, counted, and must not advance the
// step counter — previously the error was silently discarded.
func TestBrainTrainErrorsCounted(t *testing.T) {
	b, err := NewCorpBrain(tinyCorpConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.TrainErrors() != 0 {
		t.Fatalf("fresh brain reports %d errors", b.TrainErrors())
	}
	if err := b.train(resource.CPU, []float64{0.5}, 0.5); err == nil {
		t.Fatal("wrong-length input accepted")
	}
	if b.TrainErrors() != 1 {
		t.Fatalf("TrainErrors = %d, want 1", b.TrainErrors())
	}
	if b.TrainSteps() != 0 {
		t.Fatalf("rejected sample advanced TrainSteps to %d", b.TrainSteps())
	}
	// A valid call still works and does not disturb the error count.
	if err := b.train(resource.CPU, []float64{0.5, 0.6}, 0.5); err != nil {
		t.Fatal(err)
	}
	if b.TrainErrors() != 1 || b.TrainSteps() != 1 {
		t.Fatalf("after valid call: errors %d steps %d", b.TrainErrors(), b.TrainSteps())
	}
}

// TestPredictorTrainErrorsSurfaced checks the predictor-level accessor
// reaches the shared brain's count.
func TestPredictorTrainErrorsSurfaced(t *testing.T) {
	b, err := NewCorpBrain(tinyCorpConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(b, resource.Vector{4, 8, 40}, 1)
	_ = b.train(resource.CPU, []float64{0.5}, 0.5) // malformed on purpose
	if p.TrainErrors() != 1 {
		t.Fatalf("predictor TrainErrors = %d, want 1", p.TrainErrors())
	}
	// The healthy Observe path never produces errors.
	for i := 0; i < 50; i++ {
		p.Observe(resource.Vector{2, 4, 20})
	}
	if p.TrainErrors() != 1 {
		t.Fatalf("Observe produced training errors: %d", p.TrainErrors())
	}
}

// TestReplayRingWraparound drives the flat ring past its capacity and
// checks the bookkeeping: length saturates at replayCap, the write cursor
// cycles, and training keeps succeeding with the full step count.
func TestReplayRingWraparound(t *testing.T) {
	cfg := tinyCorpConfig(2)
	b, err := NewCorpBrain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const extra = 10
	in := []float64{0.3, 0.7}
	for i := 0; i < replayCap+extra; i++ {
		in[0] = float64(i%97) / 97
		if err := b.train(resource.CPU, in, 0.5); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if b.kinds[resource.CPU].replayLen != replayCap {
		t.Fatalf("replayLen = %d, want %d", b.kinds[resource.CPU].replayLen, replayCap)
	}
	if b.kinds[resource.CPU].replayPos != extra {
		t.Fatalf("replayPos = %d, want %d", b.kinds[resource.CPU].replayPos, extra)
	}
	// Every call trains 1 new + ReplaySteps replays once the ring has >1
	// entries (the very first call has nothing to replay).
	want := (replayCap+extra)*(1+cfg.ReplaySteps) - cfg.ReplaySteps
	if b.TrainSteps() != want {
		t.Fatalf("TrainSteps = %d, want %d", b.TrainSteps(), want)
	}
}

// TestBrainTrainDeterministic: two brains fed the same sequence must end
// up numerically identical (each kind's replay draws come from its own
// seeded RNG).
func TestBrainTrainDeterministic(t *testing.T) {
	mk := func() *CorpBrain {
		b, err := NewCorpBrain(tinyCorpConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	in := []float64{0, 0}
	for i := 0; i < 200; i++ {
		in[0] = float64(i%13) / 13
		in[1] = float64(i%7) / 7
		target := float64(i%5) / 5
		if err := a.train(resource.Memory, in, target); err != nil {
			t.Fatal(err)
		}
		if err := b.train(resource.Memory, in, target); err != nil {
			t.Fatal(err)
		}
	}
	probe := []float64{0.25, 0.75}
	ya, err := a.forward(resource.Memory, probe)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.forward(resource.Memory, probe)
	if err != nil {
		t.Fatal(err)
	}
	if ya != yb {
		t.Fatalf("diverged: %v vs %v", ya, yb)
	}
}

// TestBrainForwardNotRetained is the satellite-2 regression test at the
// predict layer: brain.forward copies the scalar out of the DNN's
// network-owned output buffer, so successive calls cannot corrupt earlier
// results.
func TestBrainForwardNotRetained(t *testing.T) {
	b, err := NewCorpBrain(tinyCorpConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	y1, err := b.forward(resource.CPU, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.forward(resource.CPU, []float64{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	y1again, err := b.forward(resource.CPU, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if y1 != y1again {
		t.Fatalf("forward result changed across interleaved calls: %v vs %v", y1, y1again)
	}
}

// TestObservePathDoesNotAllocate guards the flat-ring rewrite: once the
// history is warm, the whole Observe path (tracker + DNN batch training)
// must stay allocation-free.
func TestObservePathDoesNotAllocate(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 1)
	v := resource.Vector{4, 8, 50}
	for i := 0; i < 64; i++ {
		p.Observe(v)
	}
	if avg := testing.AllocsPerRun(50, func() { p.Observe(v) }); avg != 0 {
		t.Errorf("Observe allocates %.1f/op after warmup", avg)
	}
}
