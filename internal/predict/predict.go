// Package predict implements the paper's prediction pipeline and the three
// baseline predictors it is evaluated against.
//
// Every predictor forecasts, per VM, the amount of allocated-but-unused
// resource over the next window of L slots:
//
//   - CORP (Section III-A): a deep neural network trained online on the
//     recent unused-resource history (Eqs. 5–8), corrected for peak/valley
//     fluctuations by an HMM (Eqs. 9–17), made conservative by the lower
//     confidence-interval bound (Eqs. 18–19), and gated by the
//     probabilistic preemption criterion (Eq. 21).
//   - RCCR (Carvalho et al., SoCC'14, as reimplemented in Section IV):
//     exponential-smoothing time-series forecasting with a
//     confidence-interval lower bound.
//   - CloudScale (Shen et al., SoCC'11): PRESS-style signature detection
//     with a discrete-time Markov chain fallback and adaptive padding.
//   - DRA (Shanmuganathan et al., SIGMETRICS'13): periodic run-time
//     estimation by windowed averaging, with no fluctuation handling.
package predict

import (
	"repro/internal/resource"
	"repro/internal/stats"
)

// Prediction is one window forecast.
type Prediction struct {
	// Unused is the forecast mean unused resource over the next window.
	Unused resource.Vector
	// Unlocked reports whether the forecast passes the scheme's safety
	// gate (for CORP, Eq. 21); only unlocked predictions may back
	// opportunistic allocation.
	Unlocked bool
}

// Predictor forecasts one VM's unused resources. Implementations are not
// safe for concurrent use; create one per VM (they may share read-mostly
// state such as a common DNN brain).
type Predictor interface {
	// Name identifies the scheme ("CORP", "RCCR", "CloudScale", "DRA").
	Name() string
	// Observe feeds the actual unused vector of the current slot.
	// Predictors must be Observed exactly once per slot, in order.
	Observe(actual resource.Vector)
	// Predict forecasts the mean unused vector for the window of the
	// next L slots.
	Predict() Prediction
	// DrainOutcomes returns and clears the matured prediction errors
	// (actual − predicted, per resource kind) accumulated since the last
	// call; the experiment harness aggregates them into Fig. 6's
	// prediction error rate.
	DrainOutcomes() []ErrorSample
}

// Sharded is implemented by predictors whose Observe splits into two
// phases so a parallel engine can shard the fleet: ObserveLocal touches
// only the predictor's own state and is safe to call concurrently on
// distinct predictors, while FlushShared feeds the staged sample for one
// resource kind into shared state (e.g. the common CORP brain). For a
// given kind, FlushShared calls must be serialized in a fixed VM order so
// the shared training stream is reproducible; calls for distinct kinds may
// proceed concurrently. Observe must behave exactly like ObserveLocal
// followed by FlushShared for every kind.
type Sharded interface {
	ObserveLocal(actual resource.Vector)
	FlushShared(k resource.Kind)
}

// OutcomeAppender is implemented by predictors that can drain matured
// errors into a caller-owned buffer, letting the scheduler reuse one slice
// across the whole fleet instead of allocating per predictor. The appended
// samples are cleared from the predictor, like DrainOutcomes.
type OutcomeAppender interface {
	AppendOutcomes(dst []ErrorSample) []ErrorSample
}

// ErrorSample is one matured prediction error δ = actual − predicted for
// one resource kind (Eq. 20, evaluated at window end).
type ErrorSample struct {
	Kind  resource.Kind
	Error float64
	// Relative is the error normalized by capacity, used with a relative
	// tolerance ε.
	Relative float64
}

// pendingPred is a forecast waiting for its window to elapse.
type pendingPred struct {
	madeAt int
	value  resource.Vector
}

// tracker is the shared bookkeeping every predictor embeds: per-kind
// history windows, matured prediction errors (Eq. 20), and the pending
// prediction queue.
type tracker struct {
	window   int // L
	capacity resource.Vector
	slot     int
	hist     [resource.NumKinds]*stats.Window
	errs     [resource.NumKinds]*stats.Window
	pending  []pendingPred
	matured  []ErrorSample
	// maturedPreds counts matured predictions; the first coldSkip of
	// them are excluded from the σ̂/Eq. 21 windows (they reflect an
	// untrained model, and in a short run they would dominate the
	// confidence-interval width for its whole duration).
	maturedPreds int

	// Reused linearization buffers for the ring windows: histValues and
	// the error-statistics helpers run once per kind per slot across the
	// whole cluster, so per-call Values() allocations dominated the
	// observe path's heap traffic.
	histScratch [resource.NumKinds][]float64
	errScratch  []float64
}

// coldSkip is how many initial matured predictions are kept out of the
// error-statistics windows.
const coldSkip = 4

func newTracker(window, histLen int, capacity resource.Vector) *tracker {
	if window < 1 {
		window = 1
	}
	if histLen < 2*window {
		histLen = 2 * window
	}
	t := &tracker{window: window, capacity: capacity}
	for k := range t.hist {
		t.hist[k] = stats.NewWindow(histLen)
		t.errs[k] = stats.NewWindow(40)
	}
	return t
}

// observe records one actual sample and matures any due predictions.
func (t *tracker) observe(actual resource.Vector) {
	for k := range t.hist {
		t.hist[k].Push(actual[k])
	}
	t.slot++
	// A prediction made at slot s forecasts the mean over (s, s+L]; it
	// matures when slot reaches s+L.
	keep := t.pending[:0]
	for _, p := range t.pending {
		if t.slot-p.madeAt < t.window {
			keep = append(keep, p)
			continue
		}
		actualMean := t.recentMean(t.window)
		t.maturedPreds++
		for k := range actualMean {
			delta := actualMean[k] - p.value[k]
			if t.maturedPreds > coldSkip {
				t.errs[k].Push(delta)
			}
			rel := delta
			if t.capacity[k] > 0 {
				rel = delta / t.capacity[k]
			}
			t.matured = append(t.matured, ErrorSample{
				Kind: resource.Kind(k), Error: delta, Relative: rel,
			})
		}
	}
	t.pending = keep
}

// recentMean returns the element-wise mean of the last n observed samples
// (fewer if history is shorter). Window.TailMean folds the ring tail in the
// same oldest-first order the old full linearization did, so the result is
// bit-identical without copying the whole history per maturation.
func (t *tracker) recentMean(n int) resource.Vector {
	var out resource.Vector
	for k := range t.hist {
		out[k] = t.hist[k].TailMean(n)
	}
	return out
}

// recordPrediction queues a fresh forecast for later error measurement.
func (t *tracker) recordPrediction(v resource.Vector) {
	t.pending = append(t.pending, pendingPred{madeAt: t.slot, value: v})
}

// drainOutcomes hands the matured samples to the caller. Ownership of the
// returned slice transfers to the caller, so the internal buffer is
// dropped rather than truncated.
func (t *tracker) drainOutcomes() []ErrorSample {
	out := t.matured
	t.matured = nil
	return out
}

// appendOutcomes appends the matured samples to dst and clears them,
// keeping the internal buffer's capacity for the next window.
func (t *tracker) appendOutcomes(dst []ErrorSample) []ErrorSample {
	dst = append(dst, t.matured...)
	t.matured = t.matured[:0]
	return dst
}

// histValues returns the full per-kind history, oldest first. The slice
// is tracker-owned scratch overwritten by the next call for the same kind;
// callers must consume it before re-entering the tracker and must not
// retain it.
func (t *tracker) histValues(k resource.Kind) []float64 {
	t.histScratch[k] = t.hist[k].AppendValues(t.histScratch[k][:0])
	return t.histScratch[k]
}

// errValues linearizes kind k's matured-error window into shared scratch
// (the same ownership rules as histValues).
func (t *tracker) errValues(k resource.Kind) []float64 {
	t.errScratch = t.errs[k].AppendValues(t.errScratch[:0])
	return t.errScratch
}

// errStdDev returns σ̂ for kind k, the sample standard deviation of the
// matured prediction errors (Eq. 18).
func (t *tracker) errStdDev(k resource.Kind) float64 {
	return stats.SampleStdDev(t.errValues(k))
}

// errWithin returns the empirical P(0 ≤ δ < ε·cap_k) for kind k along with
// the sample count — the left side of Eq. 21 with a capacity-relative
// tolerance.
func (t *tracker) errWithin(k resource.Kind, epsilon float64) (float64, int) {
	vals := t.errValues(k)
	if len(vals) == 0 {
		return 0, 0
	}
	tol := epsilon * t.capacity[k]
	good := 0
	for _, d := range vals {
		if d >= 0 && d < tol {
			good++
		}
	}
	return float64(good) / float64(len(vals)), len(vals)
}

// clampToCapacity bounds a forecast to [0, capacity].
func (t *tracker) clampToCapacity(v resource.Vector) resource.Vector {
	return v.ClampTo(t.capacity)
}
