package predict

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/trace"
)

var testCap = resource.New(4, 16, 180)

func TestTrackerMaturation(t *testing.T) {
	tr := newTracker(3, 30, testCap)
	// Observe 5 slots of constant unused <2,8,90>.
	for i := 0; i < 5; i++ {
		tr.observe(resource.New(2, 8, 90))
	}
	tr.recordPrediction(resource.New(1, 8, 90)) // under-predicts CPU by 1
	if len(tr.matured) != 0 {
		t.Fatal("prediction matured too early")
	}
	tr.observe(resource.New(2, 8, 90))
	tr.observe(resource.New(2, 8, 90))
	if len(tr.matured) != 0 {
		t.Fatal("prediction matured after 2 of 3 slots")
	}
	tr.observe(resource.New(2, 8, 90))
	if len(tr.matured) != resource.NumKinds {
		t.Fatalf("matured %d samples, want %d", len(tr.matured), resource.NumKinds)
	}
	// CPU error = actual mean 2 − predicted 1 = +1.
	var cpuErr float64
	for _, s := range tr.matured {
		if s.Kind == resource.CPU {
			cpuErr = s.Error
		}
	}
	if math.Abs(cpuErr-1) > 1e-9 {
		t.Errorf("CPU error = %v, want 1", cpuErr)
	}
	out := tr.drainOutcomes()
	if len(out) != resource.NumKinds || len(tr.drainOutcomes()) != 0 {
		t.Error("drain should empty the matured list")
	}
}

func TestTrackerErrWithin(t *testing.T) {
	tr := newTracker(2, 30, testCap)
	// Manufacture error history: CPU errors {0.1, 0.2, -0.5, 0.3}.
	for _, e := range []float64{0.1, 0.2, -0.5, 0.3} {
		tr.errs[resource.CPU].Push(e)
	}
	// ε = 0.1 relative → tolerance = 0.4 cores: errors in [0, 0.4) are
	// 0.1, 0.2, 0.3 → 3/4.
	frac, n := tr.errWithin(resource.CPU, 0.1)
	if n != 4 || math.Abs(frac-0.75) > 1e-12 {
		t.Errorf("errWithin = (%v, %d), want (0.75, 4)", frac, n)
	}
	frac, n = tr.errWithin(resource.Memory, 0.1)
	if n != 0 || frac != 0 {
		t.Errorf("empty errWithin = (%v, %d)", frac, n)
	}
}

func TestCorpBrainTopologyMatchesTableII(t *testing.T) {
	b, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range b.kinds {
		if got := b.kinds[k].net.NumLayers(); got != 4 {
			t.Errorf("kind %d: %d layers, want 4 (Table II)", k, got)
		}
		sizes := b.kinds[k].net.LayerSizes()
		if sizes[1] != 50 || sizes[2] != 50 {
			t.Errorf("hidden sizes = %v, want 50 (Table II)", sizes[1:3])
		}
	}
}

func newCorp(t *testing.T, cfg CorpConfig) *CorpPredictor {
	t.Helper()
	brain, err := NewCorpBrain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewCorpPredictor(brain, testCap, 1)
}

func TestCorpColdStartSafe(t *testing.T) {
	p := newCorp(t, CorpConfig{Seed: 1})
	pred := p.Predict()
	if !pred.Unused.NonNegative() {
		t.Errorf("cold prediction %v negative", pred.Unused)
	}
	if pred.Unlocked {
		t.Error("cold predictor must not be unlocked (no error evidence)")
	}
}

// fluctuating emits a mean-reverting series with *persistent* peak/valley
// burst regimes around base — the fluctuation structure of the paper's
// short-lived jobs (bursts last for minutes, i.e. multiple windows, not
// single slots). State is carried in the rng-adjacent closure variables so
// successive calls continue the same process.
type fluctuatingProcess struct {
	rng    *rand.Rand
	level  float64
	regime int // 0 normal, +1 peak, −1 valley
}

func newFluctuating(rng *rand.Rand) *fluctuatingProcess {
	return &fluctuatingProcess{rng: rng, level: 1}
}

func (f *fluctuatingProcess) next(base, amp float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch f.regime {
		case 0:
			if f.rng.Float64() < 0.10 {
				if f.rng.Float64() < 0.5 {
					f.regime = 1
				} else {
					f.regime = -1
				}
			}
		default:
			if f.rng.Float64() < 0.08 { // mean burst length ≈ 12 slots
				f.regime = 0
			}
		}
		f.level += 0.4*(1-f.level) + 0.08*f.rng.NormFloat64()
		v := base * f.level
		switch f.regime {
		case 1:
			v *= 1 + amp
		case -1:
			v *= 1 - amp
		}
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// fluctuating is a convenience for one-shot series.
func fluctuating(rng *rand.Rand, base, amp float64, n int) []float64 {
	return newFluctuating(rng).next(base, amp, n)
}

func feedSeries(p Predictor, series []float64) {
	for _, v := range series {
		// CPU fluctuates; MEM/storage held proportional for simplicity.
		p.Observe(resource.New(v, v*4, v*45))
	}
}

func TestCorpPredictionsBoundedAndUnlockable(t *testing.T) {
	p := newCorp(t, CorpConfig{Seed: 2, Pth: 0.2, Epsilon: 0.3})
	rng := rand.New(rand.NewSource(3))
	series := fluctuating(rng, 2.0, 0.4, 60)
	feedSeries(p, series)
	unlockedSeen := false
	for i := 0; i < 30; i++ {
		pred := p.Predict()
		if !pred.Unused.NonNegative() || !pred.Unused.FitsIn(testCap) {
			t.Fatalf("prediction %v outside [0, capacity]", pred.Unused)
		}
		if pred.Unlocked {
			unlockedSeen = true
		}
		feedSeries(p, fluctuating(rng, 2.0, 0.4, 6))
	}
	if !unlockedSeen {
		t.Error("with a loose gate (Pth=0.2, ε=0.3) the predictor should unlock")
	}
}

func TestCorpCIBiasesLow(t *testing.T) {
	// With CI enabled, matured errors (actual − predicted) should skew
	// positive: the predictor under-promises.
	p := newCorp(t, CorpConfig{Seed: 4, Eta: 0.9})
	rng := rand.New(rand.NewSource(5))
	feedSeries(p, fluctuating(rng, 2.0, 0.5, 40))
	for i := 0; i < 40; i++ {
		p.Predict()
		feedSeries(p, fluctuating(rng, 2.0, 0.5, 6))
	}
	outcomes := p.DrainOutcomes()
	if len(outcomes) == 0 {
		t.Fatal("no matured outcomes")
	}
	pos := 0
	cpu := 0
	for _, o := range outcomes {
		if o.Kind != resource.CPU {
			continue
		}
		cpu++
		if o.Error >= 0 {
			pos++
		}
	}
	if cpu == 0 {
		t.Fatal("no CPU outcomes")
	}
	if frac := float64(pos) / float64(cpu); frac < 0.6 {
		t.Errorf("only %.0f%% of errors non-negative; CI bias too weak", frac*100)
	}
}

func TestCorpAblationsChangeOutput(t *testing.T) {
	mk := func(cfg CorpConfig) resource.Vector {
		p := newCorp(t, cfg)
		rng := rand.New(rand.NewSource(7))
		feedSeries(p, fluctuating(rng, 2.0, 0.6, 60))
		// Mature enough predictions that σ̂ has samples past the
		// cold-skip exclusion.
		for i := 0; i < 15; i++ {
			p.Predict()
			feedSeries(p, fluctuating(rng, 2.0, 0.6, 6))
		}
		return p.Predict().Unused
	}
	full := mk(CorpConfig{Seed: 9})
	noHMM := mk(CorpConfig{Seed: 9, DisableHMM: true})
	noCI := mk(CorpConfig{Seed: 9, DisableCI: true})
	if full == noCI {
		t.Error("disabling CI should change the prediction")
	}
	// The no-CI prediction should be at least as large (CI subtracts).
	for _, k := range resource.Kinds() {
		if noCI.At(k)+1e-9 < full.At(k) {
			t.Errorf("kind %v: no-CI %v < full %v", k, noCI.At(k), full.At(k))
		}
	}
	_ = noHMM // HMM may or may not fire on this series; just ensure it runs
}

func TestRCCRTracksRamp(t *testing.T) {
	p := NewRCCRPredictor(RCCRConfig{Eta: 0.5}, testCap)
	// Steadily rising unused CPU: forecast should rise too.
	for i := 0; i < 40; i++ {
		p.Observe(resource.New(float64(i)*0.05, 8, 90))
	}
	pred := p.Predict()
	if pred.Unused.At(resource.CPU) < 1.5 {
		t.Errorf("RCCR forecast %v did not track the ramp", pred.Unused.At(resource.CPU))
	}
	if !pred.Unlocked {
		t.Error("RCCR is always unlocked")
	}
}

func TestRCCRColdStart(t *testing.T) {
	p := NewRCCRPredictor(RCCRConfig{}, testCap)
	pred := p.Predict()
	if !pred.Unused.NonNegative() {
		t.Error("cold RCCR prediction negative")
	}
}

func TestCloudScaleSignaturePath(t *testing.T) {
	p := NewCloudScalePredictor(CloudScaleConfig{PadFactor: 0.01}, testCap)
	// Strong period-12 sine in CPU: signature should be found and the
	// forecast should be finite and in range.
	for i := 0; i < 120; i++ {
		v := 2 + math.Sin(2*math.Pi*float64(i)/12)
		p.Observe(resource.New(v, 8, 90))
	}
	pred := p.Predict()
	cpu := pred.Unused.At(resource.CPU)
	if cpu < 0.5 || cpu > 3.5 {
		t.Errorf("CloudScale sine forecast = %v, want ≈ 2", cpu)
	}
	if !pred.Unlocked {
		t.Error("CloudScale is always unlocked")
	}
}

func TestCloudScaleMarkovFallback(t *testing.T) {
	p := NewCloudScalePredictor(CloudScaleConfig{PadFactor: 0.1}, testCap)
	rng := rand.New(rand.NewSource(13))
	feedSeries(p, fluctuating(rng, 2.0, 0.5, 100))
	pred := p.Predict()
	if !pred.Unused.NonNegative() || !pred.Unused.FitsIn(testCap) {
		t.Errorf("Markov-path prediction %v out of range", pred.Unused)
	}
}

func TestCloudScalePaddingLowersForecast(t *testing.T) {
	run := func(pad float64) float64 {
		p := NewCloudScalePredictor(CloudScaleConfig{PadFactor: pad}, testCap)
		rng := rand.New(rand.NewSource(17))
		feedSeries(p, fluctuating(rng, 2.0, 0.5, 100))
		return p.Predict().Unused.At(resource.CPU)
	}
	if run(1.5) >= run(0.1) {
		t.Error("larger padding should lower the forecast")
	}
}

func TestDRAPredictsWindowMean(t *testing.T) {
	p := NewDRAPredictor(DRAConfig{AvgLen: 4}, testCap)
	for _, v := range []float64{1, 1, 1, 1, 2, 2, 2, 2} {
		p.Observe(resource.New(v, 8, 90))
	}
	pred := p.Predict()
	if math.Abs(pred.Unused.At(resource.CPU)-2) > 1e-9 {
		t.Errorf("DRA mean = %v, want 2 (last 4 samples)", pred.Unused.At(resource.CPU))
	}
	if pred.Unlocked {
		t.Error("DRA must never unlock (demand-based, not opportunistic)")
	}
}

// TestComparativeAccuracy is the Fig. 6 shape check in miniature: on
// trace-derived unused-resource series, the rate of correct predictions
// (error in [0, ε·cap)) must follow the paper's ordering
// CORP > RCCR > CloudScale ≥ DRA.
func TestComparativeAccuracy(t *testing.T) {
	const (
		nPretrain = 20
		nEval     = 8
		horizon   = 600
		warm      = 80
		window    = 6
		eps       = 0.10
	)
	all := residentUnusedSeries(t, 5, nPretrain+nEval, horizon)
	pretrain, eval := all[:nPretrain], all[nPretrain:]

	brain, err := NewCorpBrain(CorpConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for i, series := range pretrain {
		sib := NewCorpPredictor(brain, testCap, int64(i))
		for _, v := range series {
			sib.Observe(v)
		}
	}
	mks := map[string]func(i int) Predictor{
		"CORP":       func(i int) Predictor { return NewCorpPredictor(brain, testCap, int64(100+i)) },
		"RCCR":       func(i int) Predictor { return NewRCCRPredictor(RCCRConfig{}, testCap) },
		"CloudScale": func(i int) Predictor { return NewCloudScalePredictor(CloudScaleConfig{}, testCap) },
		"DRA":        func(i int) Predictor { return NewDRAPredictor(DRAConfig{}, testCap) },
	}
	rates := map[string]float64{}
	for name, mk := range mks {
		var correct, total float64
		for i, series := range eval {
			p := mk(i)
			for _, v := range series[:warm] {
				p.Observe(v)
			}
			for sIdx := warm; sIdx+window <= len(series); sIdx += window {
				p.Predict()
				for _, v := range series[sIdx : sIdx+window] {
					p.Observe(v)
				}
				for _, o := range p.DrainOutcomes() {
					if o.Kind != resource.CPU {
						continue
					}
					total++
					if o.Error >= 0 && o.Error < eps*testCap.At(resource.CPU) {
						correct++
					}
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s produced no outcomes", name)
		}
		rates[name] = correct / total
	}
	t.Logf("correct rates: CORP=%.2f RCCR=%.2f CloudScale=%.2f DRA=%.2f",
		rates["CORP"], rates["RCCR"], rates["CloudScale"], rates["DRA"])
	if !(rates["CORP"] > rates["RCCR"]) {
		t.Errorf("CORP %.2f should beat RCCR %.2f", rates["CORP"], rates["RCCR"])
	}
	if !(rates["RCCR"] > rates["CloudScale"]) {
		t.Errorf("RCCR %.2f should beat CloudScale %.2f", rates["RCCR"], rates["CloudScale"])
	}
	if rates["CloudScale"] < rates["DRA"]-0.03 {
		t.Errorf("CloudScale %.2f should not trail DRA %.2f", rates["CloudScale"], rates["DRA"])
	}
}

// residentUnusedSeries builds per-VM unused-resource series from trace
// residents, the real prediction target of the system.
func residentUnusedSeries(t *testing.T, seed int64, n, horizon int) [][]resource.Vector {
	t.Helper()
	caps := make([]resource.Vector, n)
	for i := range caps {
		caps[i] = testCap
	}
	res, err := trace.GenerateResidents(trace.ResidentConfig{Seed: seed, Horizon: horizon}, caps, job.ID(0))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]resource.Vector, n)
	for i, r := range res {
		series := make([]resource.Vector, horizon)
		for sIdx := 0; sIdx < horizon; sIdx++ {
			series[sIdx] = r.UnusedAt(sIdx)
		}
		out[i] = series
	}
	return out
}

func BenchmarkCorpPredict(b *testing.B) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := NewCorpPredictor(brain, testCap, 1)
	rng := rand.New(rand.NewSource(1))
	feedSeries(p, fluctuating(rng, 2.0, 0.5, 60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict()
	}
}

func BenchmarkCorpObserve(b *testing.B) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := NewCorpPredictor(brain, testCap, 1)
	rng := rand.New(rand.NewSource(1))
	feedSeries(p, fluctuating(rng, 2.0, 0.5, 60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(resource.New(2, 8, 90))
	}
}

func BenchmarkRCCRPredict(b *testing.B) {
	p := NewRCCRPredictor(RCCRConfig{}, testCap)
	rng := rand.New(rand.NewSource(1))
	feedSeries(p, fluctuating(rng, 2.0, 0.5, 60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict()
	}
}

func BenchmarkCloudScalePredict(b *testing.B) {
	p := NewCloudScalePredictor(CloudScaleConfig{}, testCap)
	rng := rand.New(rand.NewSource(1))
	feedSeries(p, fluctuating(rng, 2.0, 0.5, 60))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict()
	}
}
