package predict

import (
	"errors"
	"fmt"

	"repro/internal/dnn"
	"repro/internal/resource"
)

// Offline pretraining. The paper trains the DNN on historical trace data
// before deployment; PretrainBrain builds the supervised dataset from
// historical unused-resource series (per VM) and fits the per-kind
// networks with the distributed trainer — the paper's future-work
// "distributed deep learning training system" applied to its own pipeline.

// PretrainResult reports one kind's training outcome.
type PretrainResult struct {
	Kind    resource.Kind
	Epochs  int
	ValLoss float64
	Samples int
}

// BuildDataset converts historical per-VM unused-resource series into the
// per-kind supervised datasets the CORP predictor trains on: inputs are Δ
// consecutive normalized slots, targets the mean of the following window.
// Capacities index per VM; series shorter than Δ+L are skipped.
func BuildDataset(series [][]resource.Vector, capacities []resource.Vector, inputSlots, window int) ([resource.NumKinds][]dnn.Sample, error) {
	var out [resource.NumKinds][]dnn.Sample
	if len(series) == 0 {
		return out, errors.New("predict: no history series")
	}
	if len(capacities) != len(series) {
		return out, fmt.Errorf("predict: %d capacities for %d series", len(capacities), len(series))
	}
	if inputSlots < 1 || window < 1 {
		return out, fmt.Errorf("predict: invalid shape Δ=%d L=%d", inputSlots, window)
	}
	for vi, vm := range series {
		cap := capacities[vi]
		need := inputSlots + window
		if len(vm) < need {
			continue
		}
		for _, k := range resource.Kinds() {
			capK := cap.At(k)
			if capK <= 0 {
				continue
			}
			for start := 0; start+need <= len(vm); start++ {
				in := make([]float64, inputSlots)
				for i := 0; i < inputSlots; i++ {
					in[i] = clamp01(vm[start+i].At(k) / capK)
				}
				var mean float64
				for i := 0; i < window; i++ {
					mean += vm[start+inputSlots+i].At(k)
				}
				mean /= float64(window)
				out[k] = append(out[k], dnn.Sample{
					Input:  in,
					Target: []float64{clamp01(mean / capK)},
				})
			}
		}
	}
	for _, k := range resource.Kinds() {
		if len(out[k]) == 0 {
			return out, errors.New("predict: history too short for the configured window")
		}
	}
	return out, nil
}

// PretrainBrain fits the brain's per-kind networks on historical series
// using data-parallel training. Capacities must parallel the series. It
// returns one result per kind.
func PretrainBrain(brain *CorpBrain, series [][]resource.Vector, capacities []resource.Vector, opts dnn.ParallelOptions) ([]PretrainResult, error) {
	datasets, err := BuildDataset(series, capacities, brain.cfg.InputSlots, brain.cfg.Window)
	if err != nil {
		return nil, err
	}
	results := make([]PretrainResult, 0, resource.NumKinds)
	for _, k := range resource.Kinds() {
		res, err := brain.kinds[k].net.TrainParallel(datasets[k], opts)
		if err != nil {
			return nil, fmt.Errorf("predict: pretrain kind %v: %w", k, err)
		}
		brain.kinds[k].steps += res.Epochs * len(datasets[k])
		results = append(results, PretrainResult{
			Kind:    k,
			Epochs:  res.Epochs,
			ValLoss: res.ValidationLoss,
			Samples: len(datasets[k]),
		})
	}
	return results, nil
}
