package predict

import (
	"bytes"
	"testing"

	"repro/internal/dnn"
	"repro/internal/resource"
)

func historySeries(t *testing.T, n, horizon int) ([][]resource.Vector, []resource.Vector) {
	t.Helper()
	series := residentUnusedSeries(t, 21, n, horizon)
	caps := make([]resource.Vector, n)
	for i := range caps {
		caps[i] = testCap
	}
	return series, caps
}

func TestBuildDatasetShapes(t *testing.T) {
	series, caps := historySeries(t, 3, 60)
	datasets, err := BuildDataset(series, caps, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Each VM contributes horizon − Δ − L + 1 = 60 − 18 + 1 = 43 samples.
	want := 3 * 43
	for _, k := range resource.Kinds() {
		if len(datasets[k]) != want {
			t.Errorf("kind %v: %d samples, want %d", k, len(datasets[k]), want)
		}
		s := datasets[k][0]
		if len(s.Input) != 12 || len(s.Target) != 1 {
			t.Fatalf("sample shape %d/%d", len(s.Input), len(s.Target))
		}
		for _, x := range append(append([]float64(nil), s.Input...), s.Target...) {
			if x < 0 || x > 1 {
				t.Fatalf("unnormalized value %v", x)
			}
		}
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	if _, err := BuildDataset(nil, nil, 12, 6); err == nil {
		t.Error("empty history should fail")
	}
	series, caps := historySeries(t, 2, 60)
	if _, err := BuildDataset(series, caps[:1], 12, 6); err == nil {
		t.Error("mismatched capacities should fail")
	}
	if _, err := BuildDataset(series, caps, 0, 6); err == nil {
		t.Error("zero input slots should fail")
	}
	// Series shorter than Δ+L leave the dataset empty.
	short, shortCaps := historySeries(t, 2, 10)
	if _, err := BuildDataset(short, shortCaps, 12, 6); err == nil {
		t.Error("too-short history should fail")
	}
}

func TestPretrainBrainImprovesColdPredictions(t *testing.T) {
	series, caps := historySeries(t, 8, 240)
	eval := residentUnusedSeries(t, 77, 1, 300)[0]

	run := func(pretrained bool) float64 {
		brain, err := NewCorpBrain(CorpConfig{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if pretrained {
			if _, err := PretrainBrain(brain, series, caps, dnn.ParallelOptions{
				TrainOptions: dnn.TrainOptions{MaxEpochs: 20, Seed: 5},
				Workers:      2,
			}); err != nil {
				t.Fatal(err)
			}
		}
		p := NewCorpPredictor(brain, testCap, 5)
		// Short warmup only: a cold brain stays bad, a pretrained one is
		// already calibrated.
		for s := 0; s < 30; s++ {
			p.Observe(eval[s])
		}
		var absErr float64
		n := 0
		for s := 30; s+6 <= len(eval); s += 6 {
			pred := p.Predict().Unused.At(resource.CPU)
			var actual float64
			for i := 0; i < 6; i++ {
				actual += eval[s+i].At(resource.CPU) / 6
				p.Observe(eval[s+i])
			}
			diff := actual - pred
			if diff < 0 {
				diff = -diff
			}
			absErr += diff
			n++
		}
		return absErr / float64(n)
	}
	cold := run(false)
	warm := run(true)
	t.Logf("mean |err|: cold=%.3f pretrained=%.3f", cold, warm)
	if warm >= cold {
		t.Errorf("pretraining did not help: cold %.3f vs warm %.3f", cold, warm)
	}
}

func TestPretrainResultsCoverAllKinds(t *testing.T) {
	series, caps := historySeries(t, 4, 120)
	brain, err := NewCorpBrain(CorpConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	results, err := PretrainBrain(brain, series, caps, dnn.ParallelOptions{
		TrainOptions: dnn.TrainOptions{MaxEpochs: 5, Seed: 6},
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != resource.NumKinds {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Samples == 0 || r.Epochs == 0 {
			t.Errorf("kind %v: empty result %+v", r.Kind, r)
		}
	}
	if brain.TrainSteps() == 0 {
		t.Error("train steps not accounted")
	}
}

func TestCorpBrainSaveLoadRoundTrip(t *testing.T) {
	series, caps := historySeries(t, 4, 120)
	brain, err := NewCorpBrain(CorpConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PretrainBrain(brain, series, caps, dnn.ParallelOptions{
		TrainOptions: dnn.TrainOptions{MaxEpochs: 5, Seed: 8},
		Workers:      2,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := brain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpBrain(CorpConfig{Seed: 999}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded networks must compute exactly what the saved ones do.
	// (Further online training would diverge — the replay sampler's RNG
	// state is intentionally not persisted — so compare pure inference.)
	input := make([]float64, 12)
	for i := range input {
		input[i] = float64(i) / 14
	}
	for _, k := range resource.Kinds() {
		want, err := brain.forward(k, input)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.forward(k, input)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("kind %v: loaded forward %v, want %v", k, got, want)
		}
	}
}

func TestLoadCorpBrainRejectsMismatch(t *testing.T) {
	brain, _ := NewCorpBrain(CorpConfig{Seed: 1})
	var buf bytes.Buffer
	if err := brain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A different topology must be rejected.
	if _, err := LoadCorpBrain(CorpConfig{Seed: 1, InputSlots: 8}, &buf); err == nil {
		t.Error("topology mismatch accepted")
	}
	if _, err := LoadCorpBrain(CorpConfig{Seed: 1}, bytes.NewBufferString("{bad")); err == nil {
		t.Error("garbage accepted")
	}
}
