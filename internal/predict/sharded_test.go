package predict

import (
	"math"
	"testing"

	"repro/internal/resource"
)

// TestShardedObserveEquivalence pins the engine's phase-split contract at
// the predict layer: feeding a fleet through ObserveLocal (in any VM
// order) followed by per-kind FlushShared in a fixed VM order must leave
// the shared brain and every predictor bit-identical to plain per-VM
// Observe calls.
func TestShardedObserveEquivalence(t *testing.T) {
	const nVMs = 6
	const slots = 80
	caps := resource.Vector{8, 16, 100}
	mkFleet := func() (*CorpBrain, []*CorpPredictor) {
		brain, err := NewCorpBrain(CorpConfig{Seed: 42, ReplaySteps: 2})
		if err != nil {
			t.Fatal(err)
		}
		ps := make([]*CorpPredictor, nVMs)
		for i := range ps {
			ps[i] = NewCorpPredictor(brain, caps, int64(100+i))
		}
		return brain, ps
	}
	sample := func(vm, slot int) resource.Vector {
		f := 0.5 + 0.4*math.Sin(float64(slot)/5+float64(vm))
		return resource.Vector{caps[0] * f, caps[1] * f * 0.8, caps[2] * f * 0.6}
	}

	brainA, fleetA := mkFleet()
	brainB, fleetB := mkFleet()
	for s := 0; s < slots; s++ {
		for i, p := range fleetA {
			p.Observe(sample(i, s))
		}
		// Sharded path: local phase in reverse VM order (order must not
		// matter), shared phase per kind in forward VM order (must).
		for i := len(fleetB) - 1; i >= 0; i-- {
			fleetB[i].ObserveLocal(sample(i, s))
		}
		for _, k := range resource.Kinds() {
			for _, p := range fleetB {
				p.FlushShared(k)
			}
		}
	}
	if brainA.TrainSteps() != brainB.TrainSteps() {
		t.Fatalf("TrainSteps diverged: %d vs %d", brainA.TrainSteps(), brainB.TrainSteps())
	}
	for i := range fleetA {
		pa, pb := fleetA[i].Predict(), fleetB[i].Predict()
		if pa != pb {
			t.Fatalf("VM %d prediction diverged: %+v vs %+v", i, pa, pb)
		}
	}
}
