package predict

import (
	"repro/internal/stats"
)

// Two-tier forecasting. The full CORP pipeline (DNN forward + HMM
// correction) costs microseconds per VM per refresh; across a 20k-VM
// fleet that is the refresh wall. But most VMs are flat most of the time,
// and for those a near-free classical forecaster is just as accurate —
// the "easily implementable" persistence and windowed-regression
// techniques from the time-series provisioning literature. The first tier
// runs one of those over the same history ring the DNN reads; a VM is
// served by the tier only while the tier's own rolling (capacity-relative)
// error stays under CorpConfig.TierThreshold, and escalates back to the
// full DNN+HMM path the moment it drifts. The confidence-interval
// adjustment and the Eq. 21 gate still apply to tier-served forecasts, so
// the safety layer is identical for both tiers.
//
// The tier is scored continuously even while the DNN serves: every
// refresh makes a shadow forecast, which matures once its window of
// actuals lands in the history ring, updating an EWMA of the relative
// error. Serving therefore requires TierMinScored matured shadow
// forecasts below threshold — a cold VM cannot be tier-served.
//
// With TierEnabled false (the default) no tier state is touched and the
// pipeline is bit-identical to the single-tier implementation.

// tierPending is one shadow forecast waiting for its window of actuals.
type tierPending struct {
	madeAt int
	value  float64
}

// tierState is one resource kind's first-tier bookkeeping.
type tierState struct {
	pending []tierPending
	// errEW is the EWMA of matured capacity-relative |error|; scored
	// counts matured shadow forecasts.
	errEW  float64
	scored int
}

// tierAlpha is the EWMA weight of the newest matured error.
const tierAlpha = 0.3

// score matures every due shadow forecast against the history ring.
// vals is the kind's full history (oldest first), slot the tracker's
// current slot counter, window the horizon L. A forecast made at slot s
// covers slots s+1..s+window, i.e. vals[len-(slot-s) : len-(slot-s)+window];
// forecasts whose window has scrolled out of the ring are dropped
// unscored. Allocation-free in steady state (the pending backing array is
// reused).
func (ts *tierState) score(vals []float64, slot, window int, capK float64) {
	if len(ts.pending) == 0 {
		return
	}
	keep := ts.pending[:0]
	for _, p := range ts.pending {
		age := slot - p.madeAt
		if age < window {
			keep = append(keep, p)
			continue
		}
		start := len(vals) - age
		if start < 0 || capK <= 0 {
			continue // scrolled out of the ring (or degenerate VM): drop
		}
		realized := stats.Mean(vals[start : start+window])
		rel := (realized - p.value) / capK
		if rel < 0 {
			rel = -rel
		}
		if ts.scored == 0 {
			ts.errEW = rel
		} else {
			ts.errEW = (1-tierAlpha)*ts.errEW + tierAlpha*rel
		}
		ts.scored++
	}
	ts.pending = keep
}

// record queues a fresh shadow forecast.
func (ts *tierState) record(slot int, value float64) {
	ts.pending = append(ts.pending, tierPending{madeAt: slot, value: value})
}

// trusted reports whether the tier has earned the right to serve.
func (ts *tierState) trusted(minScored int, threshold float64) bool {
	return ts.scored >= minScored && ts.errEW <= threshold
}

// tierForecast is the first-tier estimate of the next window's mean
// unused amount, clamped to [0, capK]. With at least ridgeWin slots of
// history it damps a ridge-regularized linear trend against persistence
// (the last window's mean); with less it falls back to plain persistence.
// Both are classical "easily implementable" forecasters; the damped blend
// keeps a noisy short-window slope from overshooting. Allocation-free.
func tierForecast(vals []float64, window, ridgeWin int, lambda, capK float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	p := vals
	if len(p) > window {
		p = p[len(p)-window:]
	}
	persistence := stats.Mean(p)
	f := persistence
	if len(vals) >= ridgeWin && ridgeWin >= 2 {
		// Closed-form ridge over the last ridgeWin points, x = 0..n-1,
		// slope-only regularization: b = Sxy/(Sxx+λ), a = ȳ − b·x̄.
		// Forecast the mean over the next window, i.e. at
		// x* = (n-1) + (window+1)/2.
		w := vals[len(vals)-ridgeWin:]
		n := float64(ridgeWin)
		xbar := (n - 1) / 2
		ybar := stats.Mean(w)
		sxx := n * (n*n - 1) / 12
		sxy := 0.0
		for i, y := range w {
			sxy += (float64(i) - xbar) * (y - ybar)
		}
		slope := sxy / (sxx + lambda)
		xstar := (n - 1) + (float64(window)+1)/2
		trend := ybar + slope*(xstar-xbar)
		f = 0.5*persistence + 0.5*trend
	}
	if f < 0 {
		f = 0
	}
	if capK > 0 && f > capK {
		f = capK
	}
	return f
}
