package predict

import (
	"math"
	"testing"

	"repro/internal/resource"
	"repro/internal/stats"
)

func TestTierForecastPersistenceOnFlatHistory(t *testing.T) {
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = 4.5
	}
	got := tierForecast(vals, 6, 12, 4.0, 8)
	if got != 4.5 {
		t.Fatalf("flat history: forecast %v, want 4.5", got)
	}
}

func TestTierForecastTracksLinearTrend(t *testing.T) {
	// y = 0.1·i: persistence alone lags a ramp; the damped ridge blend
	// must land strictly between persistence and the true next-window mean.
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 0.1 * float64(i)
	}
	window, ridgeWin := 6, 12
	persistence := stats.Mean(vals[len(vals)-window:])
	truth := 0.0
	for i := 0; i < window; i++ {
		truth += 0.1 * float64(len(vals)+i)
	}
	truth /= float64(window)
	got := tierForecast(vals, window, ridgeWin, 4.0, 100)
	if !(got > persistence && got < truth) {
		t.Fatalf("ramp: forecast %v not in (persistence %v, truth %v)", got, persistence, truth)
	}
}

func TestTierForecastClamps(t *testing.T) {
	up := []float64{7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}
	if got := tierForecast(up, 4, 8, 0.1, 10); got != 10 {
		t.Fatalf("overshoot: forecast %v, want clamp to capacity 10", got)
	}
	down := []float64{5, 4, 3, 2, 1, 0, -1, -2, -3, -4, -5, -6}
	if got := tierForecast(down, 4, 8, 0.1, 10); got != 0 {
		t.Fatalf("undershoot: forecast %v, want clamp to 0", got)
	}
	if got := tierForecast(nil, 4, 8, 0.1, 10); got != 0 {
		t.Fatalf("empty history: forecast %v, want 0", got)
	}
}

func TestTierScoreMaturesAgainstRealizedWindow(t *testing.T) {
	var ts tierState
	// History ring: slot i holds value i (20 slots, slot counter = 20).
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i)
	}
	window := 4
	// A forecast made at slot 14 covers slots 14..17, whose realized mean
	// is (14+15+16+17)/4 = 15.5. Forecast 13.5 → |err|/cap = 2/10 = 0.2.
	ts.record(14, 13.5)
	ts.score(vals, 20, window, 10)
	if ts.scored != 1 {
		t.Fatalf("scored %d forecasts, want 1", ts.scored)
	}
	if math.Abs(ts.errEW-0.2) > 1e-12 {
		t.Fatalf("errEW %v, want 0.2", ts.errEW)
	}
	// A forecast made 1 slot ago is not yet mature and must stay pending.
	ts.record(19, 18)
	ts.score(vals, 20, window, 10)
	if len(ts.pending) != 1 || ts.scored != 1 {
		t.Fatalf("immature forecast: pending %d scored %d, want 1/1", len(ts.pending), ts.scored)
	}
	// A forecast whose window scrolled out of the ring drops unscored.
	ts.record(-10, 1)
	ts.score(vals, 20, window, 10)
	if ts.scored != 1 {
		t.Fatalf("scrolled-out forecast was scored: %d", ts.scored)
	}
}

func TestTierTrustRequiresScoredHistoryAndLowError(t *testing.T) {
	var ts tierState
	if ts.trusted(4, 0.05) {
		t.Fatal("cold tier must not be trusted")
	}
	ts.scored, ts.errEW = 4, 0.04
	if !ts.trusted(4, 0.05) {
		t.Fatal("scored tier under threshold must be trusted")
	}
	ts.errEW = 0.06
	if ts.trusted(4, 0.05) {
		t.Fatal("tier over threshold must escalate")
	}
}

// TestTierServesFlatVMAndEscalatesOnDrift drives one predictor: a long
// flat phase must hand the kind to the first tier (persistence is exact),
// and a burst of volatility must push the rolling error over threshold so
// predictions escalate back to the DNN.
func TestTierServesFlatVMAndEscalatesOnDrift(t *testing.T) {
	brain, err := NewCorpBrain(CorpConfig{Seed: 2, TierEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	p := NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 1)
	flat := resource.Vector{3, 6, 40}
	for i := 0; i < 80; i++ {
		p.Observe(flat)
		p.Predict()
	}
	hits, escal := p.TierCounters()
	if hits == 0 {
		t.Fatalf("flat telemetry: tier hits %d escalations %d, want tier to serve", hits, escal)
	}
	for k := range p.mode {
		if p.mode[k] != refreshTier {
			t.Fatalf("flat telemetry kind %d: mode %d, want tier-served", k, p.mode[k])
		}
	}
	// Volatile phase: persistence misses badly, the EWMA error climbs, and
	// the predictor must stop tier-serving.
	for i := 0; i < 60; i++ {
		f := 0.1 + 0.8*float64(i%2)
		p.Observe(resource.Vector{8 * f, 16 * f, 100 * f})
		p.Predict()
	}
	for k := range p.mode {
		if p.mode[k] == refreshTier {
			t.Fatalf("volatile telemetry kind %d still tier-served (errEW %v)", k, p.tier[k].errEW)
		}
	}
	_, escalAfter := p.TierCounters()
	if escalAfter == escal {
		t.Fatal("volatile phase recorded no escalations")
	}
}

// TestTierDisabledIsBitIdentical pins the TierEnabled=false default as
// exactly the single-tier pipeline: identical predictions and no counter
// movement.
func TestTierDisabledIsBitIdentical(t *testing.T) {
	mk := func(enabled bool) *CorpPredictor {
		cfg := CorpConfig{Seed: 9}
		cfg.TierEnabled = enabled
		brain, err := NewCorpBrain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return NewCorpPredictor(brain, resource.Vector{8, 16, 100}, 3)
	}
	off, plain := mk(false), mk(false)
	for i := 0; i < 100; i++ {
		v := fluctVector(i)
		off.Observe(v)
		plain.Observe(v)
		a, b := off.Predict(), plain.Predict()
		if a != b {
			t.Fatalf("slot %d: tier-off predictions diverge: %+v vs %+v", i, a, b)
		}
	}
	if h, e := off.TierCounters(); h != 0 || e != 0 {
		t.Fatalf("tier off: counters %d/%d, want 0/0", h, e)
	}
}
