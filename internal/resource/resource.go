// Package resource models multi-dimensional cloud resources (CPU, memory,
// storage) as fixed-size vectors with value semantics.
//
// The paper (CORP, CLUSTER 2016) evaluates with l = 3 resource types and
// weights ω = (0.4, 0.4, 0.2) for CPU, memory and storage respectively
// (storage is not the bottleneck resource). Vectors are plain arrays so they
// are cheap to copy, hashable, and safe to share without synchronization.
package resource

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies one resource dimension.
type Kind int

// The resource dimensions used throughout the paper's evaluation.
const (
	CPU Kind = iota
	Memory
	Storage

	// NumKinds is l, the number of resource types (paper Table II: l = 3).
	NumKinds = 3
)

// String returns the conventional short name of the resource kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case Memory:
		return "MEM"
	case Storage:
		return "STO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns all resource kinds in order. The returned slice is fresh on
// every call so callers may mutate it.
func Kinds() []Kind {
	return []Kind{CPU, Memory, Storage}
}

// Vector is an amount of each resource kind. The unit is abstract but
// consistent per kind across the whole simulation (cores, GB, GB).
type Vector [NumKinds]float64

// New builds a vector from per-kind amounts.
func New(cpu, mem, sto float64) Vector {
	return Vector{cpu, mem, sto}
}

// Uniform returns a vector with the same amount of every kind.
func Uniform(v float64) Vector {
	var out Vector
	for i := range out {
		out[i] = v
	}
	return out
}

// Weights is a normalized importance vector ω with Σωⱼ = 1 (paper Eq. 2).
type Weights [NumKinds]float64

// DefaultWeights are the paper's evaluation weights: CPU 0.4, MEM 0.4,
// storage 0.2 ("storage is not the bottleneck resource").
func DefaultWeights() Weights {
	return Weights{0.4, 0.4, 0.2}
}

// Normalize scales the weights so they sum to one. Zero weights stay zero;
// an all-zero input becomes uniform weights.
func (w Weights) Normalize() Weights {
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		return Weights{1.0 / NumKinds, 1.0 / NumKinds, 1.0 / NumKinds}
	}
	var out Weights
	for i, v := range w {
		out[i] = v / sum
	}
	return out
}

// Add returns v + o element-wise.
func (v Vector) Add(o Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] + o[i]
	}
	return out
}

// Sub returns v − o element-wise.
func (v Vector) Sub(o Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] - o[i]
	}
	return out
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Mul returns the element-wise product.
func (v Vector) Mul(o Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] * o[i]
	}
	return out
}

// Div returns the element-wise quotient v/o. Divisions by zero yield +Inf
// for positive numerators, NaN for 0/0, mirroring IEEE semantics so callers
// can detect misuse rather than silently masking it.
func (v Vector) Div(o Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] / o[i]
	}
	return out
}

// Min returns the element-wise minimum. The builtin min matches math.Min
// for every input (NaN propagation, -0 ordered below +0) without the call
// overhead on this hot path.
func (v Vector) Min(o Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = min(v[i], o[i])
	}
	return out
}

// Max returns the element-wise maximum (builtin max; see Min).
func (v Vector) Max(o Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = max(v[i], o[i])
	}
	return out
}

// ClampNonNegative zeroes any negative component. Predicted unused amounts
// can dip below zero after confidence-interval subtraction (paper Eq. 19);
// a negative available amount is meaningless for allocation.
func (v Vector) ClampNonNegative() Vector {
	var out Vector
	for i := range v {
		if v[i] > 0 {
			out[i] = v[i]
		}
	}
	return out
}

// ClampTo limits every component to at most the corresponding component of
// ceiling (and at least zero).
func (v Vector) ClampTo(ceiling Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = min(max(v[i], 0), ceiling[i])
	}
	return out
}

// FitsIn reports whether every component of v is ≤ the corresponding
// component of capacity (with a tiny epsilon for float accumulation).
func (v Vector) FitsIn(capacity Vector) bool {
	const eps = 1e-9
	for i := range v {
		if v[i] > capacity[i]+eps {
			return false
		}
	}
	return true
}

// IsZero reports whether all components are exactly zero.
func (v Vector) IsZero() bool {
	return v == Vector{}
}

// NonNegative reports whether all components are ≥ 0.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// Sum returns the sum of all components.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Weighted returns Σⱼ ωⱼ·vⱼ, the weighted scalar value used by the paper's
// overall utilization and wastage metrics (Eqs. 2 and 4).
func (v Vector) Weighted(w Weights) float64 {
	var s float64
	for i, x := range v {
		s += w[i] * x
	}
	return s
}

// Dominant returns the job's dominant resource: the kind with the largest
// demand after normalizing by reference capacity (Section III-B). Reference
// normalization makes demands on heterogeneous units comparable; passing
// Uniform(1) degrades to raw-amount comparison.
func (v Vector) Dominant(reference Vector) Kind {
	best := Kind(0)
	bestShare := math.Inf(-1)
	for i, x := range v {
		ref := reference[i]
		share := x
		if ref > 0 {
			share = x / ref
		}
		if share > bestShare {
			bestShare = share
			best = Kind(i)
		}
	}
	return best
}

// Volume computes the unused-resource volume of paper Eq. 22:
// volume = Σₖ r̂ₖ / C′ₖ, where C′ is the per-kind maximum capacity across
// all VMs. Kinds with zero reference capacity contribute nothing.
func (v Vector) Volume(maxCapacity Vector) float64 {
	var s float64
	for i, x := range v {
		if maxCapacity[i] > 0 {
			s += x / maxCapacity[i]
		}
	}
	return s
}

// At returns the component for kind k.
func (v Vector) At(k Kind) float64 { return v[k] }

// With returns a copy of v with kind k replaced by amount.
func (v Vector) With(k Kind, amount float64) Vector {
	v[k] = amount
	return v
}

// String renders the vector as "<cpu, mem, sto>" matching the paper's
// example notation, e.g. "<25.0, 2.0, 30.0>".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.3g", x)
	}
	b.WriteByte('>')
	return b.String()
}

// MaxAcross returns the element-wise maximum across all vectors; this is C′
// in paper Eq. 22. An empty input yields the zero vector.
func MaxAcross(vs []Vector) Vector {
	var out Vector
	for _, v := range vs {
		out = out.Max(v)
	}
	return out
}

// SumAcross returns the element-wise sum across all vectors.
func SumAcross(vs []Vector) Vector {
	var out Vector
	for _, v := range vs {
		out = out.Add(v)
	}
	return out
}
