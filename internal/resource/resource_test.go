package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{CPU: "CPU", Memory: "MEM", Storage: "STO", Kind(7): "Kind(7)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != NumKinds {
		t.Fatalf("Kinds() has %d entries, want %d", len(ks), NumKinds)
	}
	if ks[0] != CPU || ks[1] != Memory || ks[2] != Storage {
		t.Errorf("Kinds() = %v, want [CPU MEM STO]", ks)
	}
}

func TestNewAndAt(t *testing.T) {
	v := New(1, 2, 3)
	if v.At(CPU) != 1 || v.At(Memory) != 2 || v.At(Storage) != 3 {
		t.Errorf("New/At mismatch: %v", v)
	}
}

func TestUniform(t *testing.T) {
	v := Uniform(2.5)
	for _, k := range Kinds() {
		if v.At(k) != 2.5 {
			t.Errorf("Uniform(2.5)[%v] = %v", k, v.At(k))
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, 5, 6)
	if got := a.Add(b); got != New(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != New(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != New(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
}

func TestMulDiv(t *testing.T) {
	a := New(2, 4, 8)
	b := New(2, 2, 2)
	if got := a.Mul(b); got != New(4, 8, 16) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Div(b); got != New(1, 2, 4) {
		t.Errorf("Div = %v", got)
	}
	inf := New(1, 0, 0).Div(New(0, 1, 1))
	if !math.IsInf(inf[0], 1) {
		t.Errorf("1/0 should be +Inf, got %v", inf[0])
	}
}

func TestMinMax(t *testing.T) {
	a := New(1, 5, 3)
	b := New(2, 4, 3)
	if got := a.Min(b); got != New(1, 4, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(2, 5, 3) {
		t.Errorf("Max = %v", got)
	}
}

func TestClampNonNegative(t *testing.T) {
	v := New(-1, 0, 2).ClampNonNegative()
	if v != New(0, 0, 2) {
		t.Errorf("ClampNonNegative = %v", v)
	}
}

func TestClampTo(t *testing.T) {
	v := New(-1, 5, 2).ClampTo(New(3, 3, 3))
	if v != New(0, 3, 2) {
		t.Errorf("ClampTo = %v", v)
	}
}

func TestFitsIn(t *testing.T) {
	cap := New(10, 10, 10)
	if !New(10, 9, 0).FitsIn(cap) {
		t.Error("exact fit should pass")
	}
	if New(10.001, 0, 0).FitsIn(cap) {
		t.Error("overflow should fail")
	}
	// Tiny epsilon tolerance for float accumulation.
	if !New(10+1e-12, 0, 0).FitsIn(cap) {
		t.Error("epsilon overshoot should pass")
	}
}

func TestIsZeroAndNonNegative(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector should be zero")
	}
	if New(0, 0, 1e-300).IsZero() {
		t.Error("tiny vector is not exactly zero")
	}
	if !New(0, 1, 2).NonNegative() {
		t.Error("non-negative vector misreported")
	}
	if New(0, -1, 2).NonNegative() {
		t.Error("negative vector misreported")
	}
}

func TestSumWeighted(t *testing.T) {
	v := New(1, 2, 3)
	if v.Sum() != 6 {
		t.Errorf("Sum = %v", v.Sum())
	}
	w := DefaultWeights()
	want := 0.4*1 + 0.4*2 + 0.2*3
	if !almostEqual(v.Weighted(w), want) {
		t.Errorf("Weighted = %v, want %v", v.Weighted(w), want)
	}
}

func TestDefaultWeightsSumToOne(t *testing.T) {
	var sum float64
	for _, w := range DefaultWeights() {
		sum += w
	}
	if !almostEqual(sum, 1) {
		t.Errorf("weights sum to %v, want 1", sum)
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := Weights{2, 2, 1}.Normalize()
	if !almostEqual(w[0], 0.4) || !almostEqual(w[2], 0.2) {
		t.Errorf("Normalize = %v", w)
	}
	u := Weights{}.Normalize()
	for _, x := range u {
		if !almostEqual(x, 1.0/NumKinds) {
			t.Errorf("zero weights should normalize to uniform, got %v", u)
		}
	}
}

func TestDominant(t *testing.T) {
	ref := New(25, 2, 30) // paper Fig. 5 reference capacities
	// CPU-heavy job: 20/25 = 0.8 dominates.
	if d := New(20, 1, 5).Dominant(ref); d != CPU {
		t.Errorf("dominant = %v, want CPU", d)
	}
	// Storage-heavy job: 25/30 ≈ 0.83 dominates.
	if d := New(5, 1, 25).Dominant(ref); d != Storage {
		t.Errorf("dominant = %v, want STO", d)
	}
	// Raw comparison with Uniform(1) reference.
	if d := New(1, 9, 3).Dominant(Uniform(1)); d != Memory {
		t.Errorf("dominant = %v, want MEM", d)
	}
}

func TestDominantZeroReference(t *testing.T) {
	// A zero reference component falls back to raw amount for that kind.
	d := New(0.5, 0, 0).Dominant(New(0, 1, 1))
	if d != CPU {
		t.Errorf("dominant with zero ref = %v, want CPU", d)
	}
}

// TestVolumePaperExample reproduces the worked example of Section III-B:
// C′ = <25, 2, 30>; the four VMs' unused vectors yield volumes
// 0.867, 1.233, 2.8, 1.183.
func TestVolumePaperExample(t *testing.T) {
	cprime := New(25, 2, 30)
	cases := []struct {
		unused Vector
		want   float64
	}{
		{New(5, 0, 20), 0.867},
		{New(10, 1, 10), 1.233},
		{New(20, 2, 30), 2.8},
		{New(10, 1, 8.5), 1.183},
	}
	for i, c := range cases {
		got := c.unused.Volume(cprime)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("VM%d volume = %.4f, want %.3f", i+1, got, c.want)
		}
	}
}

func TestMaxAcrossPaperExample(t *testing.T) {
	vs := []Vector{New(25, 2, 20), New(20, 1, 30), New(10, 2, 25)}
	if got := MaxAcross(vs); got != New(25, 2, 30) {
		t.Errorf("MaxAcross = %v, want <25,2,30>", got)
	}
	if got := MaxAcross(nil); !got.IsZero() {
		t.Errorf("MaxAcross(nil) = %v, want zero", got)
	}
}

func TestSumAcross(t *testing.T) {
	vs := []Vector{New(1, 2, 3), New(4, 5, 6)}
	if got := SumAcross(vs); got != New(5, 7, 9) {
		t.Errorf("SumAcross = %v", got)
	}
}

func TestWith(t *testing.T) {
	v := New(1, 2, 3).With(Memory, 9)
	if v != New(1, 9, 3) {
		t.Errorf("With = %v", v)
	}
}

func TestString(t *testing.T) {
	if got := New(25, 2, 30).String(); got != "<25, 2, 30>" {
		t.Errorf("String = %q", got)
	}
}

// Property: Add is commutative and Sub is its inverse.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(a, b Vector) bool {
		if a.Add(b) != b.Add(a) {
			return false
		}
		sum := a.Add(b)
		rt := sum.Sub(b)
		for i := range rt {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) ||
				math.IsNaN(sum[i]) || math.IsInf(sum[i], 0) {
				continue // IEEE overflow edge cases excluded
			}
			if math.Abs(rt[i]-a[i]) > 1e-6*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClampNonNegative output is always non-negative and idempotent.
func TestQuickClampNonNegative(t *testing.T) {
	f := func(v Vector) bool {
		c := v.ClampNonNegative()
		return c.NonNegative() && c.ClampNonNegative() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Volume is monotone in each component for positive capacity.
func TestQuickVolumeMonotone(t *testing.T) {
	ref := New(25, 2, 30)
	f := func(v Vector, delta float64) bool {
		v = v.ClampNonNegative()
		d := math.Abs(delta)
		if math.IsInf(d, 0) || math.IsNaN(d) {
			return true
		}
		grown := v.Add(Uniform(d))
		return grown.Volume(ref) >= v.Volume(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FitsIn is reflexive and monotone under shrinking.
func TestQuickFitsIn(t *testing.T) {
	f := func(v Vector) bool {
		v = v.ClampNonNegative()
		for i := range v {
			if math.IsInf(v[i], 0) || math.IsNaN(v[i]) {
				return true
			}
		}
		if !v.FitsIn(v) {
			return false
		}
		half := v.Scale(0.5)
		return half.FitsIn(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkVectorAdd(b *testing.B) {
	x := New(1, 2, 3)
	y := New(4, 5, 6)
	var sink Vector
	for i := 0; i < b.N; i++ {
		sink = x.Add(y)
	}
	_ = sink
}

func BenchmarkVolume(b *testing.B) {
	v := New(10, 1, 10)
	ref := New(25, 2, 30)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = v.Volume(ref)
	}
	_ = sink
}
