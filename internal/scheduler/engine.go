package scheduler

import (
	"sync"
	"sync/atomic"

	"repro/internal/predict"
	"repro/internal/resource"
)

// This file is the intra-run parallel prediction engine: it shards the
// per-VM predictor fleet across a bounded worker pool for the per-slot
// Observe fan-out and the per-window Refresh pass. Results are written
// positionally (b.latest[i], b.dirty[i]), and the only shared mutable
// state — the CORP brain — is only ever touched from the ordered per-kind
// flush phase, so any worker count yields bit-identical figures.

// BatchObserver is implemented by schedulers that can ingest a whole
// slot's observations at once, fanning the per-VM predictor updates
// across the engine's workers. skip[i] (optional, may be nil) marks VMs
// whose sample must not be fed this slot (e.g. down VMs); semantics are
// identical to calling Observe(i, actualUnused[i]) for every non-skipped
// VM in ascending order.
type BatchObserver interface {
	ObserveAll(actualUnused []resource.Vector, skip []bool)
}

// observeChunk is how many consecutive indices one work-stealing grab
// covers: large enough to amortize the atomic, small enough to balance
// uneven per-VM costs (HMM refits, signature refreshes).
const observeChunk = 4

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines,
// handing out index chunks through an atomic cursor. With workers <= 1 it
// degrades to a plain loop. fn must only write state owned by index i;
// the engine relies on that for order-independent results.
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(observeChunk)) - observeChunk
				if start >= n {
					return
				}
				end := start + observeChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// initEngine wires the parallel engine after the per-VM predictors exist:
// it caches the Sharded/OutcomeAppender views of each predictor (so the
// hot loops skip per-call type assertions) and allocates the dirty bits.
// All VMs start dirty so the first Refresh predicts everywhere.
func (b *base) initEngine(workers int) {
	b.workers = workers
	b.dirty = make([]bool, len(b.preds))
	b.sharded = make([]predict.Sharded, len(b.preds))
	b.appenders = make([]predict.OutcomeAppender, len(b.preds))
	anySharded := false
	for i, p := range b.preds {
		b.dirty[i] = true
		if s, ok := p.(predict.Sharded); ok {
			b.sharded[i] = s
			anySharded = true
		}
		if a, ok := p.(predict.OutcomeAppender); ok {
			b.appenders[i] = a
		}
	}
	b.anySharded = anySharded
}

// ObserveAll implements BatchObserver. The work splits into two phases:
// a VM-local phase (tracker updates plus staged training samples) that
// runs concurrently because each predictor's state is disjoint, and a
// shared phase that feeds staged samples into shared state (the CORP
// brain) — sharded per resource kind, each kind's stream serialized in
// ascending VM order. Both phases visit VMs positionally, so the result
// is bit-identical to serial per-VM Observe calls at any worker count.
func (b *base) ObserveAll(actualUnused []resource.Vector, skip []bool) {
	n := len(b.preds)
	parallelFor(b.workers, n, func(i int) {
		if skip != nil && skip[i] {
			return
		}
		b.dirty[i] = true
		if s := b.sharded[i]; s != nil {
			s.ObserveLocal(actualUnused[i])
		} else {
			b.preds[i].Observe(actualUnused[i])
		}
	})
	if !b.anySharded {
		return
	}
	parallelFor(b.workers, resource.NumKinds, func(k int) {
		kind := resource.Kind(k)
		for i := 0; i < n; i++ {
			if skip != nil && skip[i] {
				continue
			}
			if s := b.sharded[i]; s != nil {
				s.FlushShared(kind)
			}
		}
	})
}
