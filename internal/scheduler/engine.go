package scheduler

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/predict"
	"repro/internal/resource"
)

// This file is the intra-run parallel prediction engine: it shards the
// per-VM predictor fleet across a bounded worker pool for the per-slot
// Observe fan-out and the per-window Refresh pass. Results are written
// positionally (b.latest[i], b.dirty[i]), and the only shared mutable
// state — the CORP brain — is only ever touched from the ordered per-kind
// flush phase, so any worker count yields bit-identical figures.

// BatchObserver is implemented by schedulers that can ingest a whole
// slot's observations at once, fanning the per-VM predictor updates
// across the engine's workers. skip[i] (optional, may be nil) marks VMs
// whose sample must not be fed this slot (e.g. down VMs); semantics are
// identical to calling Observe(i, actualUnused[i]) for every non-skipped
// VM in ascending order.
type BatchObserver interface {
	ObserveAll(actualUnused []resource.Vector, skip []bool)
}

// SpanObserver is implemented by schedulers that can ingest several
// consecutive slots' observations in one call. rows[s][i] is VM i's sample
// for the s-th slot of the span; semantics are identical to calling
// ObserveAll(rows[s], skip) for s = 0, 1, ... in order. The simulator's
// quiescent-span fast-forward uses this to feed k slots of periodic
// resident telemetry without re-entering the per-slot dispatch.
type SpanObserver interface {
	ObserveSpan(rows [][]resource.Vector, skip []bool)
}

// observeChunk is how many consecutive indices one work-stealing grab
// covers: large enough to amortize the atomic, small enough to balance
// uneven per-VM costs (HMM refits, signature refreshes).
const observeChunk = 4

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines,
// handing out index chunks through an atomic cursor. With workers <= 1 it
// degrades to a plain loop. fn must only write state owned by index i;
// the engine relies on that for order-independent results.
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(observeChunk)) - observeChunk
				if start >= n {
					return
				}
				end := start + observeChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// initEngine wires the parallel engine after the per-VM predictors exist:
// it caches the Sharded/OutcomeAppender views of each predictor (so the
// hot loops skip per-call type assertions) and allocates the dirty bits.
// All VMs start dirty so the first Refresh predicts everywhere.
func (b *base) initEngine(workers int) {
	b.workers = workers
	b.dirty = make([]bool, len(b.preds))
	b.sharded = make([]predict.Sharded, len(b.preds))
	b.appenders = make([]predict.OutcomeAppender, len(b.preds))
	anySharded := false
	for i, p := range b.preds {
		b.dirty[i] = true
		if s, ok := p.(predict.Sharded); ok {
			b.sharded[i] = s
			anySharded = true
		}
		if a, ok := p.(predict.OutcomeAppender); ok {
			b.appenders[i] = a
		}
	}
	b.anySharded = anySharded
}

// initEngine (corpScheduler override) wires the base engine, then caches
// the concrete *CorpPredictor views the batched Refresh needs. A fleet
// with any non-CORP predictor (impossible today, defensive for future
// mixed fleets) falls back to the per-VM path, as do the oracle variant
// (nil brain) and DisableBatchedRefresh.
func (s *corpScheduler) initEngine(workers int) {
	s.base.initEngine(workers)
	if !s.batched || s.brain == nil {
		return
	}
	cp := make([]*predict.CorpPredictor, len(s.preds))
	for i, p := range s.preds {
		c, ok := p.(*predict.CorpPredictor)
		if !ok {
			return
		}
		cp[i] = c
	}
	s.corpPreds = cp
}

// refreshBatchRows is the batched Refresh chunk size: how many dirty VMs'
// input rows are gathered into one ForwardBatchKind call. Large enough to
// amortize the per-call weight-slab streaming across many rows, small
// enough that the staging chunk (rows × Δ floats) stays L1/L2-resident
// next to the weights.
const refreshBatchRows = 256

// Refresh (corpScheduler override) runs the batched prediction pipeline:
//
//  1. collect the dirty VM indices (serial, cheap);
//  2. PredictPrepare every dirty VM in parallel, each writing its
//     normalized per-kind DNN input rows into a contiguous per-kind
//     staging slab at its own position;
//  3. per resource kind (kinds in parallel, each kind serial): compact
//     the rows that actually need a forward — tier-served and cold kinds
//     drop out here, so first-tier hits save real work — into a chunk
//     buffer and run one ForwardBatchKind per chunk, scattering outputs
//     back by recorded position;
//  4. PredictFinish every dirty VM in parallel (HMM correction, CI
//     adjustment, Eq. 21 gate) into b.latest positionally.
//
// Every write in phases 2–4 lands at an index owned by one VM (or, in
// phase 3, one (VM, kind) slot), and each VM's own pipeline runs in the
// same order as a per-VM Predict, so results are bit-identical to the
// per-VM path at any worker count. Outputs are pre-filled with NaN so a
// failed batch forward degrades to PredictFinish's historical-mean
// fallback — the same fallback the per-VM path uses on a forward error.
// All staging buffers are reused across calls; steady-state refreshes
// perform no heap allocations.
func (s *corpScheduler) Refresh() {
	if s.corpPreds == nil {
		s.base.Refresh()
		return
	}
	idx := s.refreshIdx[:0]
	for i := range s.preds {
		if s.dirty != nil {
			if !s.dirty[i] {
				continue
			}
			s.dirty[i] = false
		}
		idx = append(idx, i)
	}
	s.refreshIdx = idx
	d := len(idx)
	if d == 0 {
		return
	}
	delta := s.brain.InputSlots()
	if cap(s.refreshNeed) < d {
		s.refreshNeed = make([][resource.NumKinds]bool, d)
		s.refreshOut = make([][resource.NumKinds]float64, d)
		s.refreshRows = make([][resource.NumKinds][]float64, d)
	}
	need := s.refreshNeed[:d]
	outs := s.refreshOut[:d]
	rows := s.refreshRows[:d]
	for k := range s.stageRows {
		if cap(s.stageRows[k]) < d*delta {
			s.stageRows[k] = make([]float64, d*delta)
		}
		s.stageRows[k] = s.stageRows[k][:d*delta]
	}
	nan := math.NaN()
	parallelFor(s.workers, d, func(pos int) {
		// rows[pos] is reused scratch owned by this position; a
		// function-local array would escape through PredictPrepare and
		// cost one heap allocation per dirty VM per refresh.
		r := &rows[pos]
		for k := range r {
			r[k] = s.stageRows[k][pos*delta : (pos+1)*delta]
		}
		need[pos] = s.corpPreds[idx[pos]].PredictPrepare(r)
		outs[pos] = [resource.NumKinds]float64{nan, nan, nan}
	})
	parallelFor(s.workers, resource.NumKinds, func(k int) {
		s.forwardKindBatched(resource.Kind(k), delta, need, outs)
	})
	parallelFor(s.workers, d, func(pos int) {
		s.latest[idx[pos]] = s.corpPreds[idx[pos]].PredictFinish(&outs[pos])
	})
}

// forwardKindBatched is phase 3 of the batched Refresh for one kind:
// compact the staged rows that need a forward into the kind's chunk
// buffer, run one batched forward per full chunk, and scatter each output
// back to its position's slot. Touches only kind-k brain state and
// kind-k/per-position slots, so distinct kinds run concurrently.
func (s *corpScheduler) forwardKindBatched(k resource.Kind, delta int, need [][resource.NumKinds]bool, outs [][resource.NumKinds]float64) {
	if cap(s.gatherIn[k]) < refreshBatchRows*delta {
		s.gatherIn[k] = make([]float64, refreshBatchRows*delta)
		s.gatherPos[k] = make([]int, refreshBatchRows)
	}
	in := s.gatherIn[k][:refreshBatchRows*delta]
	pos := s.gatherPos[k][:refreshBatchRows]
	stage := s.stageRows[k]
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		out, err := s.brain.ForwardBatchKind(k, in[:count*delta])
		if err == nil {
			for r := 0; r < count; r++ {
				outs[pos[r]][k] = out[r]
			}
		}
		count = 0
	}
	for p := range need {
		if !need[p][k] {
			continue
		}
		copy(in[count*delta:(count+1)*delta], stage[p*delta:(p+1)*delta])
		pos[count] = p
		count++
		if count == refreshBatchRows {
			flush()
		}
	}
	flush()
}

// ObserveAll implements BatchObserver. The work splits into two phases:
// a VM-local phase (tracker updates plus staged training samples) that
// runs concurrently because each predictor's state is disjoint, and a
// shared phase that feeds staged samples into shared state (the CORP
// brain) — sharded per resource kind, each kind's stream serialized in
// ascending VM order. Both phases visit VMs positionally, so the result
// is bit-identical to serial per-VM Observe calls at any worker count.
func (b *base) ObserveAll(actualUnused []resource.Vector, skip []bool) {
	n := len(b.preds)
	parallelFor(b.workers, n, func(i int) {
		if skip != nil && skip[i] {
			return
		}
		b.dirty[i] = true
		if s := b.sharded[i]; s != nil {
			s.ObserveLocal(actualUnused[i])
		} else {
			b.preds[i].Observe(actualUnused[i])
		}
	})
	if !b.anySharded {
		return
	}
	parallelFor(b.workers, resource.NumKinds, func(k int) {
		kind := resource.Kind(k)
		for i := 0; i < n; i++ {
			if skip != nil && skip[i] {
				continue
			}
			if s := b.sharded[i]; s != nil {
				s.FlushShared(kind)
			}
		}
	})
}

// ObserveSpan implements SpanObserver. For a fleet of independent
// predictors the span is fed VM-major: one parallel pass hands each
// predictor its k samples back to back (better cache locality than k
// slot-major sweeps, and one work-stealing dispatch instead of k). Each
// predictor's own observation sequence is unchanged, and predictors share
// no state, so the result is bit-identical to k ObserveAll calls.
//
// A sharded fleet (the CORP brain) is the exception: FlushShared calls for
// one kind must stay serialized slot-major in VM order, and ObserveLocal
// stages exactly one pending sample, so the span falls back to per-slot
// ObserveAll — the shared training stream is order-sensitive and the
// per-slot dispatch is what guarantees its order.
func (b *base) ObserveSpan(rows [][]resource.Vector, skip []bool) {
	if len(rows) == 0 {
		return
	}
	if b.anySharded {
		for _, row := range rows {
			b.ObserveAll(row, skip)
		}
		return
	}
	parallelFor(b.workers, len(b.preds), func(i int) {
		if skip != nil && skip[i] {
			return
		}
		b.dirty[i] = true
		p := b.preds[i]
		for _, row := range rows {
			p.Observe(row[i])
		}
	})
}
