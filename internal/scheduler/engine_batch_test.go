package scheduler

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/predict"
	"repro/internal/resource"
)

// batchTestCluster is sized past refreshBatchRows so the batched Refresh
// exercises a full chunk plus a ragged remainder.
func batchTestCluster(t *testing.T, vms int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileCluster, NumPMs: (vms + 3) / 4, NumVMs: vms})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// batchTelemetry is a deterministic per-VM, per-slot unused vector with
// enough variation that the DNN path, symbolizer, and error statistics
// all stay live.
func batchTelemetry(cl *cluster.Cluster, v, slot int) resource.Vector {
	c := cl.VMs[v].Capacity
	f := 0.35 + 0.25*math.Sin(float64(slot+v)/5) + 0.05*float64((slot+3*v)%7)/7
	return resource.New(c[0]*f, c[1]*f*0.9, c[2]*f*0.7)
}

// driveFleet feeds both schedulers identical telemetry (with a rotating
// down-VM mask to exercise the dirty-skip path) and refreshes every
// window, checking the forecasts stay exactly equal after each refresh.
func driveFleet(t *testing.T, a, b Scheduler, cl *cluster.Cluster, slots int) {
	t.Helper()
	ab, aok := a.(BatchObserver)
	bb, bok := b.(BatchObserver)
	if !aok || !bok {
		t.Fatal("schedulers must implement BatchObserver")
	}
	unused := make([]resource.Vector, len(cl.VMs))
	skip := make([]bool, len(cl.VMs))
	for slot := 0; slot < slots; slot++ {
		for v := range unused {
			unused[v] = batchTelemetry(cl, v, slot)
			// Rotate a sparse down mask so some VMs keep stale forecasts.
			skip[v] = slot > 20 && (v+slot)%17 == 0
		}
		ab.ObserveAll(unused, skip)
		bb.ObserveAll(unused, skip)
		if slot%a.Window() == 0 {
			a.Refresh()
			b.Refresh()
			compareLatest(t, a, b, slot)
		}
	}
	// A second Refresh with nothing dirty must be a no-op on both paths.
	a.Refresh()
	b.Refresh()
	compareLatest(t, a, b, slots)
}

func compareLatest(t *testing.T, a, b Scheduler, slot int) {
	t.Helper()
	la := a.(*corpScheduler).latest
	lb := b.(*corpScheduler).latest
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("slot %d VM %d: forecasts diverge: %+v vs %+v", slot, i, la[i], lb[i])
		}
	}
	oa := a.DrainOutcomes()
	ob := b.DrainOutcomes()
	if len(oa) != len(ob) {
		t.Fatalf("slot %d: outcome counts diverge: %d vs %d", slot, len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("slot %d outcome %d: %+v vs %+v", slot, i, oa[i], ob[i])
		}
	}
}

// TestBatchedRefreshMatchesPerVM pins the batched gather → ForwardBatch →
// scatter Refresh bit-identical to the per-VM forward path, across a
// fleet larger than one batch chunk, with down-VM skips and matured
// prediction outcomes compared at every refresh.
func TestBatchedRefreshMatchesPerVM(t *testing.T) {
	cl := batchTestCluster(t, 300)
	mk := func(disable bool) Scheduler {
		s, err := New(Config{Scheme: CORP, Seed: 7, Workers: 1, DisableBatchedRefresh: disable}, cl)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched, pervm := mk(false), mk(true)
	if batched.(*corpScheduler).corpPreds == nil {
		t.Fatal("batched scheduler did not cache corp predictors")
	}
	if pervm.(*corpScheduler).corpPreds != nil {
		t.Fatal("DisableBatchedRefresh should keep the per-VM path")
	}
	driveFleet(t, batched, pervm, cl, 40)
}

// TestBatchedRefreshWorkerEquivalence pins the batched Refresh
// bit-identical across worker counts — the multi-worker engine test the
// race gate runs under -race.
func TestBatchedRefreshWorkerEquivalence(t *testing.T) {
	cl := batchTestCluster(t, 300)
	mk := func(workers int) Scheduler {
		s, err := New(Config{Scheme: CORP, Seed: 7, Workers: workers}, cl)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	driveFleet(t, mk(1), mk(4), cl, 40)
}

// TestBatchedRefreshTierEquivalence pins the batched and per-VM paths
// identical with the two-tier forecaster enabled as well: tier decisions
// are VM-local state, so they must not depend on the forward batching.
func TestBatchedRefreshTierEquivalence(t *testing.T) {
	cl := batchTestCluster(t, 64)
	mk := func(disable bool) Scheduler {
		cfg := Config{Scheme: CORP, Seed: 7, Workers: 1, DisableBatchedRefresh: disable}
		cfg.Corp.TierEnabled = true
		s, err := New(cfg, cl)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched, pervm := mk(false), mk(true)
	driveFleet(t, batched, pervm, cl, 60)
	bh, be := batched.(*corpScheduler).TierCounters()
	ph, pe := pervm.(*corpScheduler).TierCounters()
	if bh != ph || be != pe {
		t.Fatalf("tier counters diverge: batched %d/%d vs per-VM %d/%d", bh, be, ph, pe)
	}
	if bh == 0 && be == 0 {
		t.Fatal("tier enabled but neither hits nor escalations recorded")
	}
}

// TestTierCountersOffByDefault checks the default pipeline records no
// tier activity and the oracle variant tolerates the counter query.
func TestTierCountersOffByDefault(t *testing.T) {
	cl := batchTestCluster(t, 8)
	s, err := New(Config{Scheme: CORP, Seed: 1, Workers: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	feedAndRefresh(s, cl, resource.New(2, 4, 30), 30)
	if h, e := s.(*corpScheduler).TierCounters(); h != 0 || e != 0 {
		t.Fatalf("tier off: counters %d/%d, want 0/0", h, e)
	}
	o, err := New(Config{Scheme: Oracle, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	if h, e := o.(*corpScheduler).TierCounters(); h != 0 || e != 0 {
		t.Fatalf("oracle: counters %d/%d, want 0/0", h, e)
	}
}

// TestBatchedRefreshSteadyStateAllocs pins the batched Refresh machinery
// (staging, gather, scatter) as adding no steady-state allocations over
// the per-VM path: the measured cycle includes the predictors' own
// pre-existing costs (training, HMM refits), so the batched and per-VM
// totals are compared rather than pinned at zero. A clean Refresh (no
// dirty VMs) must be exactly allocation-free. The pure prediction path
// is pinned at zero allocs in internal/predict and internal/dnn.
func TestBatchedRefreshSteadyStateAllocs(t *testing.T) {
	measure := func(disable bool) float64 {
		cl := batchTestCluster(t, 64)
		s, err := New(Config{Scheme: CORP, Seed: 3, Workers: 1, DisableBatchedRefresh: disable}, cl)
		if err != nil {
			t.Fatal(err)
		}
		bo := s.(BatchObserver)
		unused := make([]resource.Vector, len(cl.VMs))
		slot := 0
		cycle := func() {
			for j := 0; j < 6; j++ {
				for v := range unused {
					unused[v] = batchTelemetry(cl, v, slot)
				}
				bo.ObserveAll(unused, nil)
				slot++
			}
			s.Refresh()
			s.DrainOutcomes()
		}
		for i := 0; i < 10; i++ {
			cycle()
		}
		// The batched path bails before building any closure when nothing
		// is dirty; the per-VM path pays one closure allocation.
		if clean := testing.AllocsPerRun(10, s.Refresh); !disable && clean > 0 {
			t.Fatalf("batched Refresh with nothing dirty allocates %v times", clean)
		}
		return testing.AllocsPerRun(30, cycle)
	}
	batched, pervm := measure(false), measure(true)
	if batched > pervm+8 {
		t.Fatalf("batched refresh cycle allocates %v/op vs per-VM %v/op: staging machinery is not steady-state alloc-free", batched, pervm)
	}
}

// TestCorpPredictorSerialMatchesSplit drives one predictor through the
// serial Predict and another through the explicit Prepare/forward/Finish
// split the engine uses, pinning the outputs identical.
func TestCorpPredictorSerialMatchesSplit(t *testing.T) {
	mkPred := func() *predict.CorpPredictor {
		brain, err := predict.NewCorpBrain(predict.CorpConfig{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return predict.NewCorpPredictor(brain, resource.New(8, 16, 100), 5)
	}
	serial, split := mkPred(), mkPred()
	rows := [resource.NumKinds][]float64{
		make([]float64, 12), make([]float64, 12), make([]float64, 12),
	}
	for slot := 0; slot < 60; slot++ {
		f := 0.4 + 0.3*math.Sin(float64(slot)/4)
		v := resource.New(8*f, 16*f*0.8, 100*f*0.6)
		serial.Observe(v)
		split.Observe(v)
		if slot%6 != 0 {
			continue
		}
		want := serial.Predict()
		need := split.PredictPrepare(&rows)
		var outs [resource.NumKinds]float64
		for _, k := range resource.Kinds() {
			if !need[k] {
				continue
			}
			batch, err := split.Brain().ForwardBatchKind(k, rows[k])
			if err != nil {
				t.Fatal(err)
			}
			outs[k] = batch[0]
		}
		got := split.PredictFinish(&outs)
		if got != want {
			t.Fatalf("slot %d: split prediction %+v != serial %+v", slot, got, want)
		}
	}
}
