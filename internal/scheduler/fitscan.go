package scheduler

// fitEps is resource.Vector.FitsIn's slack, duplicated here because the
// feasibility scan compares against precomputed pool+eps arrays instead of
// calling FitsIn per VM. The precomputation performs the identical
// float64 addition FitsIn would, so every comparison sees the identical
// right-hand value and the candidate set is bit-identical.
const fitEps = 1e-9

// fitScanGeneric appends base+i to out for every index i whose pool entry
// satisfies the demand: !(d0 > q0[i]) && !(d1 > q1[i]) && !(d2 > q2[i]),
// where the q arrays already hold pool+fitEps. This is the portable
// reference scan; the assembly kernel must match it bit-for-bit (the
// comparisons are exact IEEE operations, so it does — including -Inf
// down-VM sentinels, which fail every finite demand, and NaN entries,
// which an ordered > reports as "not greater" and therefore fitting).
func fitScanGeneric(q0, q1, q2 []float64, d0, d1, d2 float64, out []int32, base int32) []int32 {
	q1 = q1[:len(q0)]
	q2 = q2[:len(q0)]
	for i := range q0 {
		if d0 > q0[i] || d1 > q1[i] || d2 > q2[i] {
			continue
		}
		out = append(out, base+int32(i))
	}
	return out
}

// fitScan returns the ascending indices of every pool entry satisfying the
// demand, reusing out's backing storage. On AVX-512 hardware the full
// 8-wide blocks run through the vector kernel (three VCMPPD fail-masks,
// complement, VPCOMPRESSD index store — the same exact comparisons eight
// lanes at a time); the remainder and non-AVX-512 machines take the scalar
// loop. Both paths produce the identical slice, so the scheduler's single
// rng.Intn(len(fits)) draw — and therefore every figure — is bit-identical
// whichever path runs.
func fitScan(q0, q1, q2 []float64, d0, d1, d2 float64, out []int32) []int32 {
	n := len(q0)
	if cap(out) < n {
		out = make([]int32, 0, n)
	}
	out = out[:0]
	if !hasFitScanAsm || n < 64 {
		return fitScanGeneric(q0, q1, q2, d0, d1, d2, out, 0)
	}
	blocks := n / 8
	buf := out[:n]
	cnt := int(fitScanAVX512(&q0[0], &q1[0], &q2[0], blocks, d0, d1, d2, &buf[0], 0))
	out = buf[:cnt]
	t := blocks * 8
	return fitScanGeneric(q0[t:n], q1[t:n], q2[t:n], d0, d1, d2, out, int32(t))
}
