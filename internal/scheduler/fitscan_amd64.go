//go:build amd64

package scheduler

// fitScanAVX512 is the vectorized feasibility scan (fitscan_amd64.s): for
// each of blocks*8 pool entries it evaluates the exact fail condition
// d0 > q0[i] || d1 > q1[i] || d2 > q2[i] with VCMPPD (ordered greater-than,
// the IEEE comparison Go's > performs) and compress-stores the surviving
// indices, offset by base and ascending, into out. Returns how many
// indices it stored.
//
//go:noescape
func fitScanAVX512(q0, q1, q2 *float64, blocks int, d0, d1, d2 float64, out *int32, base int32) int32

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// hasFitScanAsm gates the assembly kernel: the CPU must implement
// AVX-512 F (foundation + VPCOMPRESSD), DQ (byte mask ops) and VL
// (256-bit index vectors), and the OS must have enabled opmask and ZMM
// state in XCR0.
var hasFitScanAsm = detectAVX512()

func detectAVX512() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	// SSE, AVX, opmask, ZMM_Hi256 and Hi16_ZMM state all OS-enabled.
	const xcr0Needed = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xlo&xcr0Needed != xcr0Needed {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const (
		avx512f  = 1 << 16
		avx512dq = 1 << 17
		avx512vl = 1 << 31
	)
	return b7&(avx512f|avx512dq|avx512vl) == avx512f|avx512dq|avx512vl
}
