//go:build amd64

#include "textflag.h"

// iota32 and eights32 seed/advance the running dword index vector.
DATA iota32<>+0(SB)/4, $0
DATA iota32<>+4(SB)/4, $1
DATA iota32<>+8(SB)/4, $2
DATA iota32<>+12(SB)/4, $3
DATA iota32<>+16(SB)/4, $4
DATA iota32<>+20(SB)/4, $5
DATA iota32<>+24(SB)/4, $6
DATA iota32<>+28(SB)/4, $7
GLOBL iota32<>(SB), RODATA|NOPTR, $32

DATA eights32<>+0(SB)/4, $8
DATA eights32<>+4(SB)/4, $8
DATA eights32<>+8(SB)/4, $8
DATA eights32<>+12(SB)/4, $8
DATA eights32<>+16(SB)/4, $8
DATA eights32<>+20(SB)/4, $8
DATA eights32<>+24(SB)/4, $8
DATA eights32<>+28(SB)/4, $8
GLOBL eights32<>(SB), RODATA|NOPTR, $32

// func fitScanAVX512(q0, q1, q2 *float64, blocks int, d0, d1, d2 float64, out *int32, base int32) int32
//
// Per 8-lane block: K1..K3 = (d_k > q_k[i]) via VCMPPD GT_OQ — the exact
// ordered greater-than Go's > compiles to — OR'd into one fail mask, then
// complemented, and the surviving lane indices compress-stored ascending.
// base offsets the emitted indices so the kernel can scan with the output
// indices shifted (callers scanning a packed subset translate positions
// themselves and pass base 0).
TEXT ·fitScanAVX512(SB), NOSPLIT, $0-76
	MOVQ q0+0(FP), R8
	MOVQ q1+8(FP), R9
	MOVQ q2+16(FP), R10
	MOVQ blocks+24(FP), CX
	VBROADCASTSD d0+32(FP), Z1
	VBROADCASTSD d1+40(FP), Z2
	VBROADCASTSD d2+48(FP), Z3
	MOVQ out+56(FP), DI
	MOVQ DI, BX
	VMOVDQU iota32<>(SB), Y7
	VMOVDQU eights32<>(SB), Y8
	MOVL base+64(FP), AX
	VPBROADCASTD AX, Y9
	VPADDD Y9, Y7, Y7

loop:
	VMOVUPD (R8), Z4
	VMOVUPD (R9), Z5
	VMOVUPD (R10), Z6
	VCMPPD  $0x1e, Z4, Z1, K1
	VCMPPD  $0x1e, Z5, Z2, K2
	VCMPPD  $0x1e, Z6, Z3, K3
	KORB    K2, K1, K1
	KORB    K3, K1, K1
	KNOTB   K1, K1
	VPCOMPRESSD Y7, K1, (DI)
	KMOVB   K1, AX
	POPCNTL AX, AX
	LEAQ    (DI)(AX*4), DI
	VPADDD  Y8, Y7, Y7
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, R10
	DECQ    CX
	JNZ     loop

	SUBQ BX, DI
	SHRQ $2, DI
	MOVL DI, ret+72(FP)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
