//go:build !amd64

package scheduler

// Non-amd64 builds always take the scalar scan; results are identical.
var hasFitScanAsm = false

func fitScanAVX512(q0, q1, q2 *float64, blocks int, d0, d1, d2 float64, out *int32, base int32) int32 {
	return 0
}
