package scheduler

import (
	"math"
	"math/rand"
	"testing"
)

// refFitScan is the trusted oracle: the original per-VM loop exactly as
// randomFit wrote it before the pool+eps precomputation, evaluated over
// raw pools.
func refFitScan(p0, p1, p2 []float64, d0, d1, d2 float64) []int32 {
	const eps = 1e-9
	var out []int32
	for i := range p0 {
		if d0 > p0[i]+eps || d1 > p1[i]+eps || d2 > p2[i]+eps {
			continue
		}
		out = append(out, int32(i))
	}
	return out
}

func fillPools(rng *rand.Rand, n int) (p [3][]float64, q [3][]float64) {
	for k := 0; k < 3; k++ {
		p[k] = make([]float64, n)
		q[k] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = math.Inf(-1) // down-VM sentinel
			case 1:
				v = 0.5 // exact demand boundary
			case 2:
				v = 0.5 - 1e-9 // just inside the eps slack
			case 3:
				v = math.NaN() // never produced, but must not diverge
			default:
				v = rng.Float64()
			}
			p[k][i] = v
			q[k][i] = v + fitEps
		}
	}
	return p, q
}

// TestFitScanMatchesReference pins fitScan — vector kernel plus scalar
// tail on AVX-512 machines, pure scalar elsewhere — element-for-element
// against the original raw-pool loop, across lengths that exercise the
// kernel/tail split and values that sit exactly on the eps boundary.
func TestFitScanMatchesReference(t *testing.T) {
	t.Logf("hasFitScanAsm = %v", hasFitScanAsm)
	rng := rand.New(rand.NewSource(42))
	lengths := []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 127, 128, 200, 1024}
	demands := [][3]float64{
		{0.5, 0.5, 0.5},
		{0.5 + 1e-9, 0.5, 0.5},
		{0, 0, 0},
		{2, 2, 2}, // nothing fits
	}
	var out []int32
	for _, n := range lengths {
		p, q := fillPools(rng, n)
		for trial := 0; trial < 8; trial++ {
			d := demands[trial%len(demands)]
			if trial >= len(demands) {
				d = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
			}
			want := refFitScan(p[0], p[1], p[2], d[0], d[1], d[2])
			out = fitScan(q[0], q[1], q[2], d[0], d[1], d[2], out)
			if len(out) != len(want) {
				t.Fatalf("n=%d d=%v: got %d fits, want %d", n, d, len(out), len(want))
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("n=%d d=%v: fits[%d] = %d, want %d", n, d, i, out[i], want[i])
				}
			}
		}
	}
}

// FuzzFitScanKernel drives the vector kernel against the scalar loop with
// fuzz-chosen scalars: any divergence in candidate set or order is a
// placement (and RNG-draw) divergence, so both paths must agree exactly.
func FuzzFitScanKernel(f *testing.F) {
	f.Add(int64(1), 0.3, 0.6, 0.9, uint8(100))
	f.Add(int64(7), 0.5, 0.5, 0.5, uint8(64))
	f.Add(int64(9), 0.0, 1.0, 0.5, uint8(65))
	f.Fuzz(func(t *testing.T, seed int64, d0, d1, d2 float64, nb uint8) {
		n := int(nb)
		rng := rand.New(rand.NewSource(seed))
		_, q := fillPools(rng, n)
		want := fitScanGeneric(q[0], q[1], q[2], d0, d1, d2, nil, 0)
		got := fitScan(q[0], q[1], q[2], d0, d1, d2, nil)
		if len(got) != len(want) {
			t.Fatalf("got %d fits, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fits[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}
