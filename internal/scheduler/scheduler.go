// Package scheduler implements the four resource-provisioning schemes the
// paper evaluates, as placement policies over a common interface:
//
//   - CORP: packs complementary arrivals into entities (Section III-B),
//     places them on the most-matched VM (Eq. 22) out of the unlocked
//     predicted-unused pools, falling back to unallocated headroom.
//   - RCCR: no packing; places each job on a random VM whose
//     ETS-predicted unused resources satisfy it ("we randomly chose a VM
//     that can satisfy the resource demands of a job ... without
//     considering job packing").
//   - CloudScale: no packing; random VM whose padded prediction fits.
//   - DRA: demand-based only — never uses allocated-but-unused resources;
//     random share-weighted VM with unallocated headroom.
//
// The scheduler owns one predictor per VM and refreshes all forecasts once
// per window; the simulator drives Observe/Refresh/Place and owns the
// physical truth.
package scheduler

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/packing"
	"repro/internal/predict"
	"repro/internal/resource"
)

// Scheme selects a provisioning scheme.
type Scheme int

// The four evaluated schemes.
const (
	CORP Scheme = iota
	RCCR
	CloudScale
	DRA
	// Oracle places with perfect knowledge of future unused resources —
	// the reproduction's upper bound, not a scheme from the paper.
	Oracle
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case CORP:
		return "CORP"
	case RCCR:
		return "RCCR"
	case CloudScale:
		return "CloudScale"
	case DRA:
		return "DRA"
	case Oracle:
		return "Oracle"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes returns all schemes in the paper's comparison order.
func Schemes() []Scheme { return []Scheme{CORP, RCCR, CloudScale, DRA} }

// Config parameterizes scheduler construction.
type Config struct {
	Scheme Scheme

	// Corp, RCCR, CloudScale and DRA configure the per-scheme
	// predictors; zero values take each predictor's defaults.
	Corp       predict.CorpConfig
	RCCR       predict.RCCRConfig
	CloudScale predict.CloudScaleConfig
	DRA        predict.DRAConfig

	// Seed drives the baselines' random VM choice and predictor
	// initialization.
	Seed int64

	// DisablePacking turns CORP's complementary packing off (ablation).
	DisablePacking bool

	// CorpAllocMargin sizes CORP's per-job allocation: the corrected
	// predicted need is the job's mean demand times this margin
	// (Section III-A: CORP "dynamically allocates the corrected amount
	// of resource to jobs" rather than the declared peak). Zero defaults
	// to 1.15.
	CorpAllocMargin float64

	// CloudScalePad sizes CloudScale's allocation: declared peak times
	// this factor (its adaptive padding over-provisions to absorb
	// bursts). Zero defaults to 1.35.
	CloudScalePad float64

	// DRABulk sizes DRA's allocation: declared peak times this factor
	// (bulk-capacity redistribution is coarser than per-job rightsizing).
	// Zero defaults to 1.5.
	DRABulk float64

	// AllocTightness scales every allocation the scheme makes. 1.0 is
	// the scheme's nominal sizing; values below 1 trade SLO safety for
	// utilization — the knob the Fig. 8/12 sweep turns ("We varied the
	// SLO violation rate ... thereby varying the percentage of jobs that
	// have SLO violation"). Zero defaults to 1.0.
	AllocTightness float64

	// CorpPlacement selects CORP's VM-selection strategy: "most-matched"
	// (the paper's Eq. 22, the default), "first-fit", "worst-fit" or
	// "random" — the extension experiments compare them.
	CorpPlacement string

	// CorpPackK sets the maximum entity size for CORP's packing; zero
	// defaults to 2 (the paper packs pairs). Values above 2 exercise the
	// k-way extension.
	CorpPackK int

	// Workers sizes the intra-run prediction engine: how many goroutines
	// shard the per-VM Observe fan-out and the per-window Refresh pass.
	// Values <= 1 run serially. Results are bit-identical at any worker
	// count; Workers affects wall time only.
	Workers int

	// DisableBatchedRefresh forces CORP's Refresh back onto the per-VM
	// forward path instead of the batched gather → one ForwardBatch per
	// kind → scatter pipeline (engine.go). Results are bit-identical
	// either way (the equivalence suite pins this); the knob exists for
	// the baseline benches and the equivalence tests themselves.
	DisableBatchedRefresh bool
}

// VMView is the simulator's per-VM state snapshot handed to Place: what
// the scheduler may allocate from, and what it has already committed.
type VMView struct {
	// FreshAvailable is capacity − reservations − fresh allocations in
	// force: real, guaranteed headroom.
	FreshAvailable resource.Vector
	// OppInUse is the sum of opportunistic allocations currently riding
	// on this VM's predicted-unused pool.
	OppInUse resource.Vector
	// Down marks a failed VM: it drops out of every scheme's candidate
	// set until recovery re-offers it with Down cleared (graceful
	// degradation under fault injection).
	Down bool
}

// Placement is one placement decision.
type Placement struct {
	Jobs []*job.Job
	// Allocs[i] is the amount allocated to Jobs[i] — each scheme's own
	// sizing policy; the utilization metric (Eq. 1) is demand over these.
	Allocs []resource.Vector
	VM     int
	// Opportunistic marks allocations carved from predicted-unused
	// resources (preempted from residents) rather than fresh headroom.
	Opportunistic bool
}

// Scheduler is the common interface the simulator drives.
type Scheduler interface {
	// Name identifies the scheme.
	Name() string
	// Window is L, the prediction refresh period in slots.
	Window() int
	// Observe feeds VM vm's actual unused vector for the current slot.
	Observe(vm int, actualUnused resource.Vector)
	// Refresh recomputes all VM forecasts; the simulator calls it once
	// per window.
	Refresh()
	// Place decides placements for the given pending jobs. Views are
	// indexed by VM. Jobs not covered by any returned placement stay
	// queued. The returned slice (and the Jobs/Allocs slices inside each
	// Placement) may be reused backing storage, valid only until the next
	// Place call; callers that retain placements must copy them out.
	Place(jobs []*job.Job, views []VMView) []Placement
	// DrainOutcomes returns matured prediction errors across all VMs
	// (for the Fig. 6 harness). The returned slice may be a reused
	// buffer, valid only until the next DrainOutcomes call; callers that
	// retain samples must copy them out.
	DrainOutcomes() []predict.ErrorSample
}

// New builds the scheduler for the scheme over the given cluster.
func New(cfg Config, cl *cluster.Cluster) (Scheduler, error) {
	s, err := build(cfg, cl)
	if err != nil {
		return nil, err
	}
	// Every scheme embeds base; wire its parallel prediction engine now
	// that the per-VM predictors exist.
	if eng, ok := s.(interface{ initEngine(workers int) }); ok {
		eng.initEngine(cfg.Workers)
	}
	return s, nil
}

func build(cfg Config, cl *cluster.Cluster) (Scheduler, error) {
	caps := make([]resource.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		caps[i] = vm.Capacity
	}
	tight := cfg.AllocTightness
	if tight <= 0 {
		tight = 1.0
	}
	base := base{
		caps:   caps,
		maxCap: cl.MaxVMCapacity(),
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0xc0ffee)),
		preds:  make([]predict.Predictor, len(caps)),
		latest: make([]predict.Prediction, len(caps)),
		tight:  tight,
	}
	switch cfg.Scheme {
	case CORP:
		brain, err := predict.NewCorpBrain(cfg.Corp)
		if err != nil {
			return nil, err
		}
		for i, cap := range caps {
			base.preds[i] = predict.NewCorpPredictor(brain, cap, cfg.Seed+int64(i))
		}
		base.window = windowOf(cfg.Corp.Window)
		margin := cfg.CorpAllocMargin
		if margin <= 0 {
			margin = 1.15
		}
		strategy, err := placementStrategy(cfg.CorpPlacement, base.rng)
		if err != nil {
			return nil, err
		}
		packK := cfg.CorpPackK
		if packK <= 0 {
			packK = 2
		}
		return &corpScheduler{
			base: base, name: "CORP", packing: !cfg.DisablePacking,
			margin: margin, strategy: strategy, packK: packK, brain: brain,
			batched: !cfg.DisableBatchedRefresh,
		}, nil
	case RCCR:
		for i, cap := range caps {
			base.preds[i] = predict.NewRCCRPredictor(cfg.RCCR, cap)
		}
		base.window = windowOf(cfg.RCCR.Window)
		return &randomScheduler{base: base, name: "RCCR", allocFactor: 1.0}, nil
	case CloudScale:
		for i, cap := range caps {
			base.preds[i] = predict.NewCloudScalePredictor(cfg.CloudScale, cap)
		}
		base.window = windowOf(cfg.CloudScale.Window)
		pad := cfg.CloudScalePad
		if pad <= 0 {
			pad = 1.35
		}
		return &randomScheduler{base: base, name: "CloudScale", allocFactor: pad}, nil
	case DRA:
		for i, cap := range caps {
			base.preds[i] = predict.NewDRAPredictor(cfg.DRA, cap)
		}
		base.window = windowOf(cfg.DRA.Window)
		bulk := cfg.DRABulk
		if bulk <= 0 {
			bulk = 1.5
		}
		return newDRAScheduler(base, bulk), nil
	case Oracle:
		base.window = windowOf(0)
		for i, cap := range caps {
			base.preds[i] = predict.NewOraclePredictor(base.window, cap)
		}
		margin := cfg.CorpAllocMargin
		if margin <= 0 {
			margin = 1.15
		}
		strategy, err := placementStrategy(cfg.CorpPlacement, base.rng)
		if err != nil {
			return nil, err
		}
		packK := cfg.CorpPackK
		if packK <= 0 {
			packK = 2
		}
		// The oracle reuses CORP's packing and placement machinery; only
		// the predictions differ.
		return &corpScheduler{
			base: base, name: "Oracle", packing: !cfg.DisablePacking,
			margin: margin, strategy: strategy, packK: packK,
		}, nil
	default:
		return nil, fmt.Errorf("scheduler: unknown scheme %v", cfg.Scheme)
	}
}

// placementStrategy resolves a CorpPlacement name.
func placementStrategy(name string, rng *rand.Rand) (packing.Strategy, error) {
	switch name {
	case "", "most-matched":
		return packing.MostMatched{}, nil
	case "first-fit":
		return packing.FirstFit{}, nil
	case "worst-fit":
		return packing.WorstFit{}, nil
	case "random":
		return packing.RandomFit{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("scheduler: unknown placement strategy %q", name)
	}
}

// storageGranularity inflates every scheme's storage allocation: disk is
// provisioned in coarse volume sizes, so allocated storage exceeds the
// requested amount more than CPU/MEM do. This reproduces the paper's
// Fig. 11 observation that "the utilizations of CPU and MEM are higher
// than storage ... storage is not the bottleneck resource and has more
// wastage in allocation".
const storageGranularity = 1.3

// padStorage applies the volume-granularity inflation to an allocation.
func padStorage(v resource.Vector) resource.Vector {
	v[resource.Storage] *= storageGranularity
	return v
}

// windowOf applies the predictors' shared default window.
func windowOf(w int) int {
	if w <= 0 {
		return 6
	}
	return w
}

// FutureSink is implemented by predictors that accept the true future
// series (the oracle); the simulator feeds it when available.
type FutureSink interface {
	SetFuture(series []resource.Vector)
}

// SetFutures hands each VM's actual unused series to predictors that can
// consume it. It is a no-op for real schemes.
func SetFutures(s Scheduler, series [][]resource.Vector) {
	b, ok := s.(interface{ predictors() []predict.Predictor })
	if !ok {
		return
	}
	for i, p := range b.predictors() {
		if sink, ok := p.(FutureSink); ok && i < len(series) {
			sink.SetFuture(series[i])
		}
	}
}

// base carries the machinery every scheme shares.
type base struct {
	caps   []resource.Vector
	maxCap resource.Vector
	window int
	rng    *rand.Rand
	preds  []predict.Predictor
	latest []predict.Prediction
	tight  float64

	// Parallel prediction engine state (see engine.go). dirty[i] is set
	// when VM i has seen a new observation since its last Predict, so
	// Refresh can skip VMs with nothing new (down VMs keep their last
	// forecast). sharded/appenders cache optional-interface views of the
	// predictors; drainBuf is the reused DrainOutcomes output.
	workers    int
	dirty      []bool
	sharded    []predict.Sharded
	appenders  []predict.OutcomeAppender
	anySharded bool
	drainBuf   []predict.ErrorSample

	// Reused per-Place pool copies (oppPool/freshPool) so placement does
	// not reallocate them every slot.
	oppPool   []resource.Vector
	freshPool []resource.Vector
}

func (b *base) Window() int { return b.window }

// predictors exposes the per-VM predictors for SetFutures.
func (b *base) predictors() []predict.Predictor { return b.preds }

func (b *base) Observe(vm int, actualUnused resource.Vector) {
	if b.dirty != nil {
		b.dirty[vm] = true
	}
	b.preds[vm].Observe(actualUnused)
}

// Refresh recomputes the per-VM forecasts, fanning the fleet across the
// engine's workers. Each worker writes only b.latest[i]/b.dirty[i] for
// the indices it grabbed, so the merged result is positional and
// bit-identical at any worker count. VMs with no observation since their
// last Predict (down VMs under fault injection) are skipped and keep
// their previous forecast.
func (b *base) Refresh() {
	parallelFor(b.workers, len(b.preds), func(i int) {
		if b.dirty != nil {
			if !b.dirty[i] {
				return
			}
			b.dirty[i] = false
		}
		b.latest[i] = b.preds[i].Predict()
	})
}

// DrainOutcomes gathers matured prediction errors across all VMs into one
// reused buffer. The returned slice is valid until the next DrainOutcomes
// call; callers that retain samples must copy them out.
func (b *base) DrainOutcomes() []predict.ErrorSample {
	out := b.drainBuf[:0]
	for i, p := range b.preds {
		if b.appenders != nil && b.appenders[i] != nil {
			out = b.appenders[i].AppendOutcomes(out)
		} else {
			out = append(out, p.DrainOutcomes()...)
		}
	}
	b.drainBuf = out
	return out
}

// pools copies the per-VM opportunistic and fresh headroom into reused
// buffers so one Place call can consume them consistently across
// entities without reallocating every slot.
func (b *base) pools(views []VMView) (opp, fresh []resource.Vector) {
	if cap(b.oppPool) < len(views) {
		b.oppPool = make([]resource.Vector, len(views))
		b.freshPool = make([]resource.Vector, len(views))
	}
	opp = b.oppPool[:len(views)]
	fresh = b.freshPool[:len(views)]
	for i, v := range views {
		opp[i] = b.oppAvailable(i, v)
		fresh[i] = v.FreshAvailable
	}
	return opp, fresh
}

// oppAvailable returns what the prediction still offers on VM i after the
// opportunistic allocations already in force.
func (b *base) oppAvailable(i int, v VMView) resource.Vector {
	return b.latest[i].Unused.Sub(v.OppInUse).ClampNonNegative()
}

// Adjuster is implemented by schemes that re-size running jobs'
// allocations every window (CORP: "dynamically allocates the corrected
// amount of resource to jobs ... adapt[ing] well to the requirement of
// time-varying user demand"). The simulator consults it at each refresh.
type Adjuster interface {
	// AdjustAlloc returns the new allocation for a running job given its
	// current observed demand; ok is false when the scheme leaves the
	// allocation unchanged.
	AdjustAlloc(spec *job.Job, currentDemand resource.Vector) (alloc resource.Vector, ok bool)
}

// corpScheduler is the paper's system (also reused, with oracle
// predictions, as the upper-bound scheme).
type corpScheduler struct {
	base
	name     string
	packing  bool
	margin   float64
	strategy packing.Strategy
	packK    int
	// brain is the shared online DNN (nil for the oracle variant, which
	// reuses this scheduler without learned predictions).
	brain *predict.CorpBrain

	// Batched-refresh state (engine.go): batched is the config knob,
	// corpPreds the concrete per-VM predictors cached by initEngine (nil
	// when batching is off or unavailable, which routes Refresh through
	// the per-VM base path). The remaining slices are the reused staging
	// buffers of the gather → batched forward → scatter pipeline.
	batched     bool
	corpPreds   []*predict.CorpPredictor
	refreshIdx  []int
	refreshNeed [][resource.NumKinds]bool
	refreshOut  [][resource.NumKinds]float64
	refreshRows [][resource.NumKinds][]float64
	stageRows   [resource.NumKinds][]float64
	gatherIn    [resource.NumKinds][]float64
	gatherPos   [resource.NumKinds][]int

	// Reused candidate buffers: the eligible-VM sets are fixed for the
	// duration of one Place call (Down/Unlocked only change between
	// slots), so they are built once per call and only the chosen VM's
	// Available entry is updated after each placement. oppIdx/freshIdx
	// map VM index → candidate position (-1 when ineligible).
	oppCands   []packing.Candidate
	freshCands []packing.Candidate
	oppIdx     []int
	freshIdx   []int
}

// TrainErrors reports how many online DNN training samples the shared
// brain rejected; zero for the oracle variant. The simulator surfaces this
// through Result so a silently broken training feed is visible.
func (s *corpScheduler) TrainErrors() int {
	if s.brain == nil {
		return 0
	}
	return s.brain.TrainErrors()
}

// TierCounters sums the per-VM two-tier forecaster counters: how many
// per-kind estimates the cheap first tier served and how many escalated
// to the full DNN path. Both stay zero with the tier disabled (and for
// the oracle variant). The simulator surfaces them through Result.
func (s *corpScheduler) TierCounters() (hits, escalations int) {
	for _, p := range s.preds {
		if tc, ok := p.(interface{ TierCounters() (int, int) }); ok {
			h, e := tc.TierCounters()
			hits += h
			escalations += e
		}
	}
	return hits, escalations
}

// AdjustAlloc implements Adjuster: the corrected amount tracks the job's
// observed demand with the margin, floored at the mean-based initial
// sizing and capped at the declared peak.
func (s *corpScheduler) AdjustAlloc(spec *job.Job, currentDemand resource.Vector) (resource.Vector, bool) {
	tracked := currentDemand.Scale(s.margin)
	floor := spec.MeanDemand().Scale(0.8 * s.margin)
	return padStorage(tracked.Max(floor).Min(spec.PeakDemand())).Scale(s.tight), true
}

// alloc sizes CORP's allocation for one job: the corrected predicted need
// (mean demand times the margin), never above the declared peak, scaled by
// the tightness knob.
func (s *corpScheduler) alloc(j *job.Job) resource.Vector {
	return padStorage(j.MeanDemand().Scale(s.margin).Min(j.PeakDemand())).Scale(s.tight)
}

func (s *corpScheduler) Name() string { return s.name }

// Place implements the Section III-B algorithm: pack, then for each entity
// choose the most-matched VM from the unlocked predicted-unused pools;
// fall back to unallocated headroom with the same volume rule.
func (s *corpScheduler) Place(jobs []*job.Job, views []VMView) []Placement {
	var entities []packing.Entity
	if s.packing {
		entities = packing.PackK(jobs, s.maxCap, s.packK)
	} else {
		for _, j := range jobs {
			entities = append(entities, packing.NewEntity(j))
		}
	}
	// Local copies of the evolving pools so one Place call stays
	// consistent across multiple entities.
	opp, fresh := s.pools(views)
	// Candidate sets are fixed within one Place call; build them once and
	// patch only the chosen VM's Available after each placement instead
	// of rebuilding both slices per entity.
	if cap(s.oppIdx) < len(views) {
		s.oppIdx = make([]int, len(views))
		s.freshIdx = make([]int, len(views))
	}
	s.oppIdx = s.oppIdx[:len(views)]
	s.freshIdx = s.freshIdx[:len(views)]
	s.oppCands = s.oppCands[:0]
	s.freshCands = s.freshCands[:0]
	for i := range views {
		s.oppIdx[i], s.freshIdx[i] = -1, -1
		if views[i].Down {
			continue
		}
		s.freshIdx[i] = len(s.freshCands)
		s.freshCands = append(s.freshCands, packing.Candidate{VM: i, Available: fresh[i]})
		if s.latest[i].Unlocked {
			s.oppIdx[i] = len(s.oppCands)
			s.oppCands = append(s.oppCands, packing.Candidate{VM: i, Available: opp[i]})
		}
	}
	var placements []Placement
	for _, e := range entities {
		allocs := make([]resource.Vector, len(e.Jobs))
		var need resource.Vector
		for i, j := range e.Jobs {
			allocs[i] = s.alloc(j)
			need = need.Add(allocs[i])
		}
		if vm, ok := s.strategy.Choose(need, s.oppCands, s.maxCap); ok {
			opp[vm] = opp[vm].Sub(need).ClampNonNegative()
			s.oppCands[s.oppIdx[vm]].Available = opp[vm]
			placements = append(placements, Placement{Jobs: e.Jobs, Allocs: allocs, VM: vm, Opportunistic: true})
			continue
		}
		if vm, ok := s.strategy.Choose(need, s.freshCands, s.maxCap); ok {
			fresh[vm] = fresh[vm].Sub(need).ClampNonNegative()
			s.freshCands[s.freshIdx[vm]].Available = fresh[vm]
			placements = append(placements, Placement{Jobs: e.Jobs, Allocs: allocs, VM: vm})
		}
		// Otherwise the entity stays queued; the simulator re-offers its
		// jobs next slot.
	}
	return placements
}

// randomScheduler implements RCCR's and CloudScale's placement: each job
// individually, on a uniformly random VM whose predicted unused resources
// satisfy it, falling back to a random VM with fresh headroom.
//
// The pools are kept in structure-of-arrays form (one flat float64 slice
// per resource kind, rebuilt from the views at the top of each Place call)
// so the per-job feasibility scan streams three dense arrays instead of
// walking []resource.Vector plus a 56-byte VMView per VM. Down VMs hold
// -Inf in every kind, which fails the fit comparison for any real demand —
// exactly the set the old explicit Down check excluded — without a branch
// or a views load in the scan. At the scale profile (350k jobs × 20000
// VMs) this scan is the single largest cost in the whole run.
type randomScheduler struct {
	base
	name        string
	allocFactor float64
	// fits is randomFit's reused candidate buffer.
	fits []int32
	// soaOpp/soaFresh are the per-kind pool arrays; soaOpp[k][i] is VM i's
	// opportunistic pool in kind k (-Inf when the VM is down). soaOppQ /
	// soaFreshQ mirror them with fitEps pre-added — the scan arrays: the
	// feasibility test `demand > pool+eps` reads the precomputed sum, so
	// the per-VM comparison is two loads and a compare (and vectorizes;
	// see fitscan.go). -Inf + fitEps is still -Inf, so down sentinels
	// survive the precomputation.
	soaOpp    [resource.NumKinds][]float64
	soaFresh  [resource.NumKinds][]float64
	soaOppQ   [resource.NumKinds][]float64
	soaFreshQ [resource.NumKinds][]float64
	// susOpp/susFresh are the per-pool suspect indexes (suspect.go): on
	// large fleets most lanes provably fit the typical demand, so the
	// per-job kernel scan runs over the packed suspect lanes only. susT
	// is the call's gate threshold; demandScratch/quantScratch are the
	// per-call demand precompute buffers.
	susOpp        suspectIndex
	susFresh      suspectIndex
	susT          [resource.NumKinds]float64
	susOn         bool
	demandScratch [][resource.NumKinds]float64
	quantScratch  []float64
	arena         placementArena
}

func (s *randomScheduler) Name() string { return s.name }

// buildSoAPools fills the per-kind pool arrays from the views. Values are
// the same b.oppAvailable / FreshAvailable vectors pools() would copy,
// only transposed; down VMs become -Inf sentinels.
func (s *randomScheduler) buildSoAPools(views []VMView) {
	n := len(views)
	if cap(s.soaOpp[0]) < n {
		for k := 0; k < resource.NumKinds; k++ {
			s.soaOpp[k] = make([]float64, n)
			s.soaFresh[k] = make([]float64, n)
			s.soaOppQ[k] = make([]float64, n)
			s.soaFreshQ[k] = make([]float64, n)
		}
	}
	for k := 0; k < resource.NumKinds; k++ {
		s.soaOpp[k] = s.soaOpp[k][:n]
		s.soaFresh[k] = s.soaFresh[k][:n]
		s.soaOppQ[k] = s.soaOppQ[k][:n]
		s.soaFreshQ[k] = s.soaFreshQ[k][:n]
	}
	negInf := math.Inf(-1)
	for i := range views {
		if views[i].Down {
			for k := 0; k < resource.NumKinds; k++ {
				s.soaOpp[k][i] = negInf
				s.soaFresh[k][i] = negInf
				s.soaOppQ[k][i] = negInf
				s.soaFreshQ[k][i] = negInf
			}
			continue
		}
		o := s.oppAvailable(i, views[i])
		f := views[i].FreshAvailable
		for k := 0; k < resource.NumKinds; k++ {
			s.soaOpp[k][i] = o[k]
			s.soaFresh[k][i] = f[k]
			s.soaOppQ[k][i] = o[k] + fitEps
			s.soaFreshQ[k][i] = f[k] + fitEps
		}
	}
}

// poolAt gathers VM i's pool vector back out of the SoA arrays.
func poolAt(pool *[resource.NumKinds][]float64, i int) resource.Vector {
	return resource.Vector{pool[0][i], pool[1][i], pool[2][i]}
}

func (s *randomScheduler) Place(jobs []*job.Job, views []VMView) []Placement {
	s.buildSoAPools(views)
	s.arena.reset()
	s.susOpp.reset()
	s.susFresh.reset()
	// Precompute the call's demands and the suspect gate threshold. The
	// indexes themselves build lazily: the fresh one often never does
	// (the opportunistic pool fits nearly every job at scale).
	s.susOn = len(views) >= suspectMinLanes && len(jobs) > 0
	if s.susOn {
		if cap(s.demandScratch) < len(jobs) {
			s.demandScratch = make([][resource.NumKinds]float64, len(jobs))
		}
		s.demandScratch = s.demandScratch[:len(jobs)]
		for i, j := range jobs {
			s.demandScratch[i] = padStorage(j.PeakDemand()).Scale(s.allocFactor * s.tight)
		}
		s.susT = demandQuantile(s.demandScratch, s.quantScratch)
	}
	for _, j := range jobs {
		alloc := padStorage(j.PeakDemand()).Scale(s.allocFactor * s.tight)
		if vm, ok := s.randomFit(alloc, &s.soaOppQ, &s.susOpp); ok {
			p := poolAt(&s.soaOpp, vm).Sub(alloc).ClampNonNegative()
			for k := 0; k < resource.NumKinds; k++ {
				s.soaOpp[k][vm] = p[k]
				s.soaOppQ[k][vm] = p[k] + fitEps
			}
			s.susOpp.noteUpdate(&s.soaOppQ, vm)
			s.arena.add(j, alloc, vm, true)
			continue
		}
		if vm, ok := s.randomFit(alloc, &s.soaFreshQ, &s.susFresh); ok {
			p := poolAt(&s.soaFresh, vm).Sub(alloc).ClampNonNegative()
			for k := 0; k < resource.NumKinds; k++ {
				s.soaFresh[k][vm] = p[k]
				s.soaFreshQ[k][vm] = p[k] + fitEps
			}
			s.susFresh.noteUpdate(&s.soaFreshQ, vm)
			s.arena.add(j, alloc, vm, false)
		}
	}
	return s.arena.placements
}

// randomFit returns a uniformly random up-VM index whose pool satisfies
// demand. Both paths — the suspect index over packed suspect lanes and the
// flat scan over every lane — evaluate exactly resource.Vector.FitsIn over
// the precomputed pool+eps arrays, !(demand > pool+eps) per kind, so the
// candidate count, the single rng.Intn draw per successful call, and the
// selected lane are bit-identical to the AoS implementation they replaced.
func (s *randomScheduler) randomFit(demand resource.Vector, q *[resource.NumKinds][]float64, sus *suspectIndex) (int, bool) {
	if s.susOn && demand[0] <= s.susT[0] && demand[1] <= s.susT[1] && demand[2] <= s.susT[2] {
		if !sus.built {
			sus.build(q, s.susT)
		}
		count := sus.scan(q, demand[0], demand[1], demand[2])
		if count == 0 {
			return 0, false
		}
		return sus.selectNth(s.rng.Intn(count)), true
	}
	s.fits = fitScan(q[0], q[1], q[2], demand[0], demand[1], demand[2], s.fits)
	if len(s.fits) == 0 {
		return 0, false
	}
	return int(s.fits[s.rng.Intn(len(s.fits))]), true
}

// placementArena is a reused backing store for the single-job Placement
// slices the random and DRA schedulers return: one placements slice plus
// flat job/alloc arrays that one-element Jobs/Allocs subslices are carved
// from. It eliminates the three small heap allocations per placed job
// (hundreds of thousands per scale run). Per the Scheduler.Place contract
// the returned placements are only valid until the next Place call, which
// is exactly when the arena is reset.
type placementArena struct {
	placements []Placement
	jobs       []*job.Job
	allocs     []resource.Vector
}

func (a *placementArena) reset() {
	a.placements = a.placements[:0]
	a.jobs = a.jobs[:0]
	a.allocs = a.allocs[:0]
}

func (a *placementArena) add(j *job.Job, alloc resource.Vector, vm int, opp bool) {
	// Full-capacity subslices: if a later append grows the backing array,
	// already-taken subslices keep pointing at the old one — still valid
	// for the lifetime of this Place call's result.
	a.jobs = append(a.jobs, j)
	a.allocs = append(a.allocs, alloc)
	a.placements = append(a.placements, Placement{
		Jobs:          a.jobs[len(a.jobs)-1 : len(a.jobs) : len(a.jobs)],
		Allocs:        a.allocs[len(a.allocs)-1 : len(a.allocs) : len(a.allocs)],
		VM:            vm,
		Opportunistic: opp,
	})
}

// draScheduler implements DRA: demand-based allocation from unallocated
// capacity only, with VMs holding high/medium/low shares in the paper's
// 4:2:1 ratio; feasible VMs are chosen randomly with share-proportional
// probability.
type draScheduler struct {
	base
	shares []int
	bulk   float64
	arena  placementArena
}

func newDRAScheduler(b base, bulk float64) *draScheduler {
	s := &draScheduler{base: b, shares: make([]int, len(b.caps)), bulk: bulk}
	shareMix := []int{4, 2, 1} // high : medium : low
	for i := range s.shares {
		s.shares[i] = shareMix[i%len(shareMix)]
	}
	return s
}

func (s *draScheduler) Name() string { return "DRA" }

func (s *draScheduler) Place(jobs []*job.Job, views []VMView) []Placement {
	// DRA never touches the opportunistic pool; reuse only the fresh copy.
	if cap(s.freshPool) < len(views) {
		s.freshPool = make([]resource.Vector, len(views))
	}
	fresh := s.freshPool[:len(views)]
	for i, v := range views {
		fresh[i] = v.FreshAvailable
	}
	s.arena.reset()
	for _, j := range jobs {
		alloc := padStorage(j.PeakDemand()).Scale(s.bulk * s.tight)
		vm, ok := s.shareWeightedFit(alloc, fresh, views)
		if !ok {
			continue
		}
		fresh[vm] = fresh[vm].Sub(alloc).ClampNonNegative()
		s.arena.add(j, alloc, vm, false)
	}
	return s.arena.placements
}

// shareWeightedFit picks a feasible up VM with probability proportional to
// its share.
func (s *draScheduler) shareWeightedFit(demand resource.Vector, pools []resource.Vector, views []VMView) (int, bool) {
	total := 0
	for i, p := range pools {
		if !views[i].Down && demand.FitsIn(p) {
			total += s.shares[i]
		}
	}
	if total == 0 {
		return 0, false
	}
	pick := s.rng.Intn(total)
	for i, p := range pools {
		if views[i].Down || !demand.FitsIn(p) {
			continue
		}
		pick -= s.shares[i]
		if pick < 0 {
			return i, true
		}
	}
	return 0, false
}
