package scheduler

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileCluster, NumPMs: 2, NumVMs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func mkJob(id int, cpu, mem, sto float64) *job.Job {
	return &job.Job{
		ID: job.ID(id), Duration: 2, SLOFactor: 2,
		Usage: []resource.Vector{
			resource.New(cpu, mem, sto),
			resource.New(cpu, mem, sto),
		},
		Request: resource.New(cpu, mem, sto),
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{CORP: "CORP", RCCR: "RCCR", CloudScale: "CloudScale", DRA: "DRA"}
	for sc, name := range want {
		if sc.String() != name {
			t.Errorf("%d.String() = %q", int(sc), sc.String())
		}
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Error("unknown scheme name wrong")
	}
	if len(Schemes()) != 4 {
		t.Error("Schemes() should list all four")
	}
}

func TestNewAllSchemes(t *testing.T) {
	cl := testCluster(t)
	for _, sc := range Schemes() {
		s, err := New(Config{Scheme: sc, Seed: 1}, cl)
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if s.Name() != sc.String() {
			t.Errorf("%v: Name = %q", sc, s.Name())
		}
		if s.Window() != 6 {
			t.Errorf("%v: Window = %d, want default 6", sc, s.Window())
		}
	}
	if _, err := New(Config{Scheme: Scheme(9)}, cl); err == nil {
		t.Error("unknown scheme should fail")
	}
}

// feedAndRefresh warms a scheduler with a constant unused level,
// refreshing forecasts every window so predictions mature and error
// statistics accumulate.
func feedAndRefresh(s Scheduler, cl *cluster.Cluster, unused resource.Vector, slots int) {
	for t := 0; t < slots; t++ {
		if t%s.Window() == 0 {
			s.Refresh()
		}
		for v := range cl.VMs {
			s.Observe(v, unused)
		}
	}
	s.Refresh()
}

func openViews(cl *cluster.Cluster) []VMView {
	views := make([]VMView, len(cl.VMs))
	for i, vm := range cl.VMs {
		views[i] = VMView{FreshAvailable: vm.Capacity}
	}
	return views
}

func TestCorpPacksComplementaryArrivals(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: CORP, Seed: 1, Corp: predict.CorpConfig{Pth: 0.01, Epsilon: 0.9}}, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Constant unused level: predictions trivially accurate → unlocked.
	feedAndRefresh(s, cl, resource.New(2, 8, 90), 80)
	s.Refresh()

	jobs := []*job.Job{
		mkJob(0, 1.5, 0.5, 1), // CPU dominant
		mkJob(1, 0.2, 6.0, 1), // MEM dominant
	}
	placements := s.Place(jobs, openViews(cl))
	if len(placements) != 1 {
		t.Fatalf("got %d placements, want 1 packed entity: %+v", len(placements), placements)
	}
	p := placements[0]
	if len(p.Jobs) != 2 || len(p.Allocs) != 2 {
		t.Errorf("entity has %d jobs / %d allocs, want 2/2", len(p.Jobs), len(p.Allocs))
	}
	if !p.Opportunistic {
		t.Error("with unlocked accurate predictions the entity should ride unused resources")
	}
}

func TestCorpDisablePacking(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: CORP, Seed: 1, DisablePacking: true,
		Corp: predict.CorpConfig{Pth: 0.01, Epsilon: 0.9}}, cl)
	if err != nil {
		t.Fatal(err)
	}
	feedAndRefresh(s, cl, resource.New(2, 8, 90), 80)
	s.Refresh()
	jobs := []*job.Job{mkJob(0, 1.5, 0.5, 1), mkJob(1, 0.2, 6.0, 1)}
	placements := s.Place(jobs, openViews(cl))
	if len(placements) != 2 {
		t.Fatalf("unpacked CORP should place singly, got %d placements", len(placements))
	}
}

func TestCorpFallsBackToFreshWhenLocked(t *testing.T) {
	cl := testCluster(t)
	// Default Pth 0.95 with a cold predictor: everything locked.
	s, err := New(Config{Scheme: CORP, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	for v := range cl.VMs {
		s.Observe(v, resource.New(2, 8, 90))
	}
	s.Refresh()
	placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, openViews(cl))
	if len(placements) != 1 {
		t.Fatalf("got %d placements", len(placements))
	}
	if placements[0].Opportunistic {
		t.Error("locked predictions must not back opportunistic placement")
	}
}

func TestCorpAllocIsMeanBased(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: CORP, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.(*corpScheduler)
	j := &job.Job{
		ID: 0, Duration: 2, SLOFactor: 2,
		Usage: []resource.Vector{
			resource.New(1, 1, 1),
			resource.New(3, 1, 1), // mean CPU 2, peak 3
		},
		Request: resource.New(3, 1, 1),
	}
	alloc := cs.alloc(j)
	want := 2 * 1.15
	if alloc.At(resource.CPU) != want {
		t.Errorf("CORP alloc CPU = %v, want mean×margin = %v", alloc.At(resource.CPU), want)
	}
	// Never above peak.
	flat := mkJob(1, 2, 2, 2)
	if got := cs.alloc(flat).At(resource.CPU); got != 2 {
		t.Errorf("flat job alloc = %v, want capped at peak 2", got)
	}
}

func TestRandomSchedulerFallsBackToFresh(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: RCCR, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Zero unused: nothing opportunistic to offer.
	feedAndRefresh(s, cl, resource.Vector{}, 30)
	placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, openViews(cl))
	if len(placements) != 1 {
		t.Fatalf("got %d placements", len(placements))
	}
	if placements[0].Opportunistic {
		t.Error("zero predicted unused must not be opportunistic")
	}
}

func TestRandomSchedulerUsesOppWhenAvailable(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: RCCR, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	feedAndRefresh(s, cl, resource.New(3, 12, 150), 40)
	placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, openViews(cl))
	if len(placements) != 1 || !placements[0].Opportunistic {
		t.Errorf("RCCR should place opportunistically on ample predicted unused: %+v", placements)
	}
}

func TestCloudScaleAllocIncludesPadding(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: CloudScale, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	feedAndRefresh(s, cl, resource.New(3, 12, 150), 40)
	placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, openViews(cl))
	if len(placements) != 1 {
		t.Fatal("no placement")
	}
	if got := placements[0].Allocs[0].At(resource.CPU); got != 1.35 {
		t.Errorf("CloudScale alloc = %v, want peak×1.35", got)
	}
}

func TestDRAPlacesFreshOnly(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: DRA, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	feedAndRefresh(s, cl, resource.New(3, 12, 150), 40)
	placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, openViews(cl))
	if len(placements) != 1 {
		t.Fatal("no placement")
	}
	if placements[0].Opportunistic {
		t.Error("DRA must never place opportunistically")
	}
	if got := placements[0].Allocs[0].At(resource.CPU); got != 1.5 {
		t.Errorf("DRA alloc = %v, want peak×1.5 bulk", got)
	}
	// No fresh headroom anywhere → no placement.
	tight := make([]VMView, len(cl.VMs))
	none := s.Place([]*job.Job{mkJob(1, 1, 1, 1)}, tight)
	if len(none) != 0 {
		t.Errorf("DRA placed without headroom: %+v", none)
	}
}

func TestPlaceRespectsFreshHeadroom(t *testing.T) {
	cl := testCluster(t)
	for _, sc := range Schemes() {
		s, err := New(Config{Scheme: sc, Seed: 1}, cl)
		if err != nil {
			t.Fatal(err)
		}
		// Zero unused predictions + tiny fresh headroom on VM 2 only.
		feedAndRefresh(s, cl, resource.Vector{}, 30)
		views := make([]VMView, len(cl.VMs))
		views[2] = VMView{FreshAvailable: resource.New(8, 32, 360)}
		placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, views)
		for _, p := range placements {
			if p.VM != 2 {
				t.Errorf("%v placed on VM %d with zero headroom", sc, p.VM)
			}
			if p.Opportunistic {
				t.Errorf("%v placed opportunistically on zero predictions", sc)
			}
		}
	}
}

func TestPlaceSkipsDownVMs(t *testing.T) {
	// Every scheme must treat a Down view as nonexistent: no placements
	// when all VMs are down, placement resumes when they recover.
	for _, sc := range Schemes() {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			cl := testCluster(t)
			s, err := New(Config{Scheme: sc, Seed: 1,
				Corp: predict.CorpConfig{Pth: 0.01, Epsilon: 0.9}}, cl)
			if err != nil {
				t.Fatal(err)
			}
			feedAndRefresh(s, cl, resource.New(2, 8, 90), 80)
			jobs := []*job.Job{mkJob(0, 0.5, 0.5, 1)}
			down := make([]VMView, len(cl.VMs))
			for i := range down {
				down[i] = VMView{Down: true}
			}
			if placements := s.Place(jobs, down); len(placements) != 0 {
				t.Fatalf("placed %d entities on a fully-down cluster", len(placements))
			}
			// Only VM 1 survives: every placement must land there.
			oneUp := make([]VMView, len(cl.VMs))
			for i := range oneUp {
				oneUp[i] = VMView{Down: true}
			}
			oneUp[1] = VMView{FreshAvailable: cl.VMs[1].Capacity}
			placements := s.Place(jobs, oneUp)
			if len(placements) == 0 {
				t.Fatal("no placement despite one healthy VM")
			}
			for _, p := range placements {
				if p.VM != 1 {
					t.Errorf("placed on down VM %d", p.VM)
				}
			}
			// Full recovery restores normal placement.
			if placements := s.Place([]*job.Job{mkJob(1, 0.5, 0.5, 1)}, openViews(cl)); len(placements) == 0 {
				t.Error("no placement after recovery")
			}
		})
	}
}

func TestDrainOutcomesAggregatesVMs(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: RCCR, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh records a prediction per VM; maturing them takes a window.
	s.Refresh()
	for t2 := 0; t2 < 6; t2++ {
		for v := range cl.VMs {
			s.Observe(v, resource.New(1, 1, 1))
		}
	}
	outs := s.DrainOutcomes()
	want := len(cl.VMs) * resource.NumKinds
	if len(outs) != want {
		t.Errorf("drained %d outcomes, want %d", len(outs), want)
	}
	if len(s.DrainOutcomes()) != 0 {
		t.Error("second drain should be empty")
	}
}

func TestPlaceDoesNotOverfillPools(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: RCCR, Seed: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Each VM predicts ~1.0 CPU unused; offer 20 jobs of 0.4 CPU each:
	// at most ~2 per VM should land opportunistically.
	feedAndRefresh(s, cl, resource.New(1, 4, 45), 40)
	var jobs []*job.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, mkJob(i, 0.4, 0.4, 0.4))
	}
	views := make([]VMView, len(cl.VMs)) // no fresh headroom
	placements := s.Place(jobs, views)
	perVM := map[int]float64{}
	for _, p := range placements {
		if !p.Opportunistic {
			t.Fatalf("no fresh headroom, yet fresh placement: %+v", p)
		}
		perVM[p.VM] += p.Allocs[0].At(resource.CPU)
	}
	for vm, used := range perVM {
		if used > 1.2 { // predicted ≈ 1.0 with CI shave
			t.Errorf("VM %d oversubscribed beyond prediction: %v", vm, used)
		}
	}
}

func TestCorpPlacementStrategies(t *testing.T) {
	cl := testCluster(t)
	for _, name := range []string{"", "most-matched", "first-fit", "worst-fit", "random"} {
		s, err := New(Config{Scheme: CORP, Seed: 1, CorpPlacement: name,
			Corp: predict.CorpConfig{Pth: 0.01, Epsilon: 0.9}}, cl)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		feedAndRefresh(s, cl, resource.New(2, 8, 90), 80)
		placements := s.Place([]*job.Job{mkJob(0, 1, 1, 1)}, openViews(cl))
		if len(placements) != 1 {
			t.Errorf("%q: %d placements", name, len(placements))
		}
	}
	if _, err := New(Config{Scheme: CORP, CorpPlacement: "bogus"}, cl); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestCorpPackKThree(t *testing.T) {
	cl := testCluster(t)
	s, err := New(Config{Scheme: CORP, Seed: 1, CorpPackK: 3,
		Corp: predict.CorpConfig{Pth: 0.01, Epsilon: 0.9}}, cl)
	if err != nil {
		t.Fatal(err)
	}
	feedAndRefresh(s, cl, resource.New(3, 12, 150), 80)
	jobs := []*job.Job{
		mkJob(0, 1.5, 0.5, 1),  // CPU dominant
		mkJob(1, 0.2, 6.0, 1),  // MEM dominant
		mkJob(2, 0.2, 0.5, 40), // storage dominant
	}
	placements := s.Place(jobs, openViews(cl))
	if len(placements) != 1 {
		t.Fatalf("k=3 should pack a triple, got %d placements", len(placements))
	}
	if len(placements[0].Jobs) != 3 {
		t.Errorf("entity has %d jobs, want 3", len(placements[0].Jobs))
	}
}
