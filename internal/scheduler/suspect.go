package scheduler

import "sort"

// suspectOverflowMax bounds the sorted overflow list before a rebuild
// repacks the dense suspect set. A var so tests can force frequent
// rebuilds.
var suspectOverflowMax = 256

// suspectMinLanes gates the suspect index to fleets where the packed scan
// actually pays for its bookkeeping; smaller fleets take the flat kernel.
// A var so tests can force either path on the same fleet.
var suspectMinLanes = 1024

// suspectQuantile is the per-kind demand quantile the gate threshold is
// drawn from: jobs above it (a few percent) take the flat scan, and the
// suspect set stays proportional to a high-but-typical demand instead of
// the batch's single largest job.
const suspectQuantile = 0.98

// suspectIndex accelerates randomFit over one pool's Q (pool+fitEps)
// arrays. Per Place call it splits the lanes against a per-kind threshold
// t drawn from the call's own demand distribution:
//
//   - non-suspect lanes satisfy Q[k] ≥ t[k] for every kind, so any gated
//     demand (d ≤ t componentwise) fits them outright — by transitivity of
//     the exact IEEE comparisons the flat scan would run, not by any
//     approximation;
//   - suspect lanes (anything with Q[k] < t[k] in some kind, which
//     includes every -Inf down sentinel) are packed into dense per-kind
//     copies that the exact fitScan kernel streams per job.
//
// A gated job's candidate count is then #non-suspect + #fitting-suspects,
// and the r-th candidate in ascending lane order is reconstructed by
// binary search — both bit-identical to the flat scan over all lanes,
// while the kernel touches ~a tenth of the data.
//
// Placements decrement pool entries mid-call. The invariant that makes
// the split sound — a non-suspect lane satisfies Q ≥ t at all times — is
// maintained by noteUpdate: a decremented dense lane has its packed
// copies refreshed in place, and a decremented non-suspect lane that
// dropped below the threshold joins the sorted overflow list, which the
// per-job scan evaluates against the live arrays. When the overflow
// outgrows suspectOverflowMax, the whole index is rebuilt from the live
// arrays.
type suspectIndex struct {
	built bool
	t     [3]float64
	n     int
	// Dense suspect set: lanes ascending, packed live copies of the Q
	// arrays, and the lane → dense-position map (-1 non-suspect, -2
	// overflow).
	sidx []int32
	sq   [3][]float64
	pos  []int32
	// Overflow: lanes demoted since the last rebuild, ascending.
	ovf []int32
	// Per-job scratch: fitting dense positions (kernel output) and
	// overflow fit prefix counts.
	fitPos    []int32
	ovfPrefix []int32
}

func (x *suspectIndex) reset() { x.built = false }

// build classifies every lane against t from the live Q arrays.
func (x *suspectIndex) build(q *[3][]float64, t [3]float64) {
	x.t = t
	x.n = len(q[0])
	x.built = true
	x.sidx = x.sidx[:0]
	x.ovf = x.ovf[:0]
	if cap(x.pos) < x.n {
		x.pos = make([]int32, x.n)
	}
	x.pos = x.pos[:x.n]
	for k := 0; k < 3; k++ {
		x.sq[k] = x.sq[k][:0]
	}
	q0, q1, q2 := q[0], q[1], q[2]
	for i := 0; i < x.n; i++ {
		if q0[i] < t[0] || q1[i] < t[1] || q2[i] < t[2] {
			x.pos[i] = int32(len(x.sidx))
			x.sidx = append(x.sidx, int32(i))
			x.sq[0] = append(x.sq[0], q0[i])
			x.sq[1] = append(x.sq[1], q1[i])
			x.sq[2] = append(x.sq[2], q2[i])
		} else {
			x.pos[i] = -1
		}
	}
}

// noteUpdate re-syncs the index after lane's Q entries changed (always a
// decrement: placements only shrink pools). Dense lanes refresh their
// packed copies; non-suspect lanes that dropped below the threshold join
// the overflow.
func (x *suspectIndex) noteUpdate(q *[3][]float64, lane int) {
	if !x.built {
		return
	}
	switch p := x.pos[lane]; {
	case p >= 0:
		x.sq[0][p] = q[0][lane]
		x.sq[1][p] = q[1][lane]
		x.sq[2][p] = q[2][lane]
	case p == -1:
		if q[0][lane] < x.t[0] || q[1][lane] < x.t[1] || q[2][lane] < x.t[2] {
			x.pos[lane] = -2
			i := lowerBound32(x.ovf, int32(lane))
			x.ovf = append(x.ovf, 0)
			copy(x.ovf[i+1:], x.ovf[i:])
			x.ovf[i] = int32(lane)
		}
	}
}

// gated reports whether demand may use the suspect path: every kind at or
// below the threshold (a NaN demand fails the comparison and takes the
// flat scan).
func (x *suspectIndex) gated(d0, d1, d2 float64) bool {
	return d0 <= x.t[0] && d1 <= x.t[1] && d2 <= x.t[2]
}

// scan computes the gated demand's exact candidate count: non-suspect
// lanes all fit; dense suspects run through the same fitScan kernel the
// flat path uses (over the packed copies); overflow lanes are checked
// against the live arrays. Rebuilds first if the overflow list is full.
func (x *suspectIndex) scan(q *[3][]float64, d0, d1, d2 float64) int {
	if len(x.ovf) >= suspectOverflowMax {
		x.build(q, x.t)
	}
	x.fitPos = fitScan(x.sq[0], x.sq[1], x.sq[2], d0, d1, d2, x.fitPos)
	if cap(x.ovfPrefix) < len(x.ovf)+1 {
		x.ovfPrefix = make([]int32, 0, suspectOverflowMax+1)
	}
	x.ovfPrefix = x.ovfPrefix[:1]
	x.ovfPrefix[0] = 0
	q0, q1, q2 := q[0], q[1], q[2]
	for _, lane := range x.ovf {
		c := x.ovfPrefix[len(x.ovfPrefix)-1]
		if !(d0 > q0[lane] || d1 > q1[lane] || d2 > q2[lane]) {
			c++
		}
		x.ovfPrefix = append(x.ovfPrefix, c)
	}
	nonSuspect := x.n - len(x.sidx) - len(x.ovf)
	return nonSuspect + len(x.fitPos) + int(x.ovfPrefix[len(x.ovf)])
}

// selectNth returns the lane of the r-th (0-based) fitting candidate in
// ascending lane order for the demand scan just ran — exactly the lane
// fitScan's flat candidate list holds at index r. It binary-searches the
// smallest lane x with r+1 fits at or below x; fitsBelow is monotone and
// steps by one exactly at fitting lanes, so the boundary is the candidate.
func (x *suspectIndex) selectNth(r int) int {
	if len(x.ovf) == 0 && len(x.fitPos) == len(x.sidx) {
		// Every suspect fit too (common for small demands on an
		// all-up fleet), so every lane is a candidate: the r-th is r.
		return r
	}
	lo, hi := 0, x.n // invariant: fitsBelow(lo) ≤ r < fitsBelow(hi)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if x.fitsBelow(mid) > r {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// fitsBelow counts fitting candidates among lanes < lane for the demand
// last passed to scan. selectNth probes it ~log2(n) times per placement,
// so the three searches are hand-rolled lower bounds rather than
// sort.Search closures.
func (x *suspectIndex) fitsBelow(lane int) int {
	l := int32(lane)
	sBelow := lowerBound32(x.sidx, l)
	oBelow := 0
	if len(x.ovf) > 0 {
		oBelow = lowerBound32(x.ovf, l)
	}
	lo, hi := 0, len(x.fitPos)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.sidx[x.fitPos[mid]] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return (lane - sBelow - oBelow) + lo + int(x.ovfPrefix[oBelow])
}

// lowerBound32 returns the first index whose element is ≥ v in the
// ascending slice a.
func lowerBound32(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// demandQuantile returns the per-kind suspectQuantile over the call's
// precomputed job demands — the gate threshold t for this Place call.
func demandQuantile(demands [][3]float64, scratch []float64) [3]float64 {
	var t [3]float64
	m := len(demands)
	if m == 0 {
		return t
	}
	if cap(scratch) < m {
		scratch = make([]float64, m)
	}
	idx := int(float64(m-1) * suspectQuantile)
	for k := 0; k < 3; k++ {
		scratch = scratch[:0]
		for _, d := range demands {
			scratch = append(scratch, d[k])
		}
		sort.Float64s(scratch)
		t[k] = scratch[idx]
	}
	return t
}
