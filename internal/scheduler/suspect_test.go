package scheduler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
)

// flatOracle is the flat scan the suspect index must reproduce exactly:
// the generic loop over every lane of the live pool+eps arrays.
func flatOracle(q *[3][]float64, d0, d1, d2 float64) []int32 {
	return fitScanGeneric(q[0], q[1], q[2], d0, d1, d2, nil, 0)
}

// TestSuspectIndexMatchesFlat drives a suspectIndex through long
// placement-like sequences — gated demands, decrements of chosen lanes,
// threshold demotions into the overflow list, forced rebuilds — and pins
// candidate count and every selected lane against the flat scan over the
// live arrays. Pools include -Inf down sentinels, NaN lanes, and values
// exactly on the eps boundary.
func TestSuspectIndexMatchesFlat(t *testing.T) {
	for _, ovfMax := range []int{256, 4} {
		ovfMax := ovfMax
		t.Run(map[int]string{256: "ovf256", 4: "ovf4-rebuilds"}[ovfMax], func(t *testing.T) {
			old := suspectOverflowMax
			suspectOverflowMax = ovfMax
			defer func() { suspectOverflowMax = old }()

			for _, n := range []int{50, 200, 1024, 1031} {
				rng := rand.New(rand.NewSource(int64(1000 + n)))
				p, q := fillPools(rng, n)

				// The call's demand population: mostly moderate, with
				// exact-boundary and zero entries, plus a heavy tail that
				// the p98 threshold will exclude (gate rejections).
				demands := make([][3]float64, 300)
				for i := range demands {
					for k := 0; k < 3; k++ {
						switch i % 17 {
						case 0:
							demands[i][k] = 0.5 // boundary vs fillPools' 0.5 lanes
						case 1:
							demands[i][k] = 0
						case 2:
							demands[i][k] = 2 + rng.Float64() // tail above t
						default:
							demands[i][k] = rng.Float64() * 0.8
						}
					}
				}
				tq := demandQuantile(demands, nil)

				var idx suspectIndex
				idx.reset()
				idx.build(&q, tq)
				gatedSeen, selChecks := 0, 0
				for step := 0; step < 400; step++ {
					d := demands[rng.Intn(len(demands))]
					if !idx.gated(d[0], d[1], d[2]) {
						continue // production takes the flat path here
					}
					gatedSeen++
					want := flatOracle(&q, d[0], d[1], d[2])
					count := idx.scan(&q, d[0], d[1], d[2])
					if count != len(want) {
						t.Fatalf("n=%d step=%d d=%v: count=%d, flat=%d",
							n, step, d, count, len(want))
					}
					if count == 0 {
						continue
					}
					rs := []int{0, count / 2, count - 1, rng.Intn(count)}
					for _, r := range rs {
						if got := idx.selectNth(r); got != int(want[r]) {
							t.Fatalf("n=%d step=%d d=%v: selectNth(%d)=%d, flat[%d]=%d",
								n, step, d, r, got, r, want[r])
						}
						selChecks++
					}
					// Place on a fitting lane: decrement live pools with the
					// production clamp semantics, then noteUpdate. Most lanes
					// are non-suspect, so large demands demote them into the
					// overflow list; with ovfMax=4 this forces rebuilds.
					lane := int(want[rng.Intn(count)])
					for k := 0; k < 3; k++ {
						pk := p[k][lane] - d[k]
						if pk < 0 {
							pk = 0
						}
						p[k][lane] = pk
						q[k][lane] = pk + fitEps
					}
					idx.noteUpdate(&q, lane)
				}
				if gatedSeen == 0 || selChecks == 0 {
					t.Fatalf("n=%d: test exercised nothing (gated=%d sel=%d)", n, gatedSeen, selChecks)
				}
			}
		})
	}
}

// TestSuspectIndexEmptyAndSaturated covers the degenerate ends: no lane
// fits a gated demand, and every lane is suspect.
func TestSuspectIndexEmptyAndSaturated(t *testing.T) {
	var q [3][]float64
	n := 24
	for k := 0; k < 3; k++ {
		q[k] = make([]float64, n)
		for i := range q[k] {
			q[k][i] = 0.1 + fitEps // every lane below t: all suspect
		}
	}
	q[0][3] = math.Inf(-1) // a down lane among them
	var idx suspectIndex
	tq := [3]float64{0.5, 0.5, 0.5}
	idx.build(&q, tq)
	if len(idx.sidx) != n {
		t.Fatalf("all lanes should be suspect, got %d/%d", len(idx.sidx), n)
	}
	if got := idx.scan(&q, 0.5, 0.5, 0.5); got != 0 {
		t.Fatalf("nothing fits 0.5: count=%d", got)
	}
	// A demand at zero fits everything except the down lane.
	if got := idx.scan(&q, 0, 0, 0); got != n-1 {
		t.Fatalf("zero demand: count=%d, want %d", got, n-1)
	}
	want := flatOracle(&q, 0, 0, 0)
	for r := range want {
		if got := idx.selectNth(r); got != int(want[r]) {
			t.Fatalf("selectNth(%d)=%d, flat=%d", r, got, want[r])
		}
	}

	// All-up fleet, small demand: every suspect fits too, so every lane
	// is a candidate and selection short-circuits to the rank itself.
	for k := 0; k < 3; k++ {
		for i := range q[k] {
			q[k][i] = 0.4 + 0.1*float64(i%3) + fitEps
		}
	}
	idx.build(&q, tq)
	if len(idx.sidx) == 0 || len(idx.sidx) == n {
		t.Fatalf("want a mixed suspect split, got %d/%d", len(idx.sidx), n)
	}
	if got := idx.scan(&q, 0.1, 0.1, 0.1); got != n {
		t.Fatalf("all-fit count=%d, want %d", got, n)
	}
	allWant := flatOracle(&q, 0.1, 0.1, 0.1)
	for r := range allWant {
		if got := idx.selectNth(r); got != int(allWant[r]) {
			t.Fatalf("all-fit selectNth(%d)=%d, flat=%d", r, got, allWant[r])
		}
	}
}

// mkSuspectBatch builds one Place call's job batch: mostly moderate
// demands that pass the p98 gate, a heavy tail that takes the flat path,
// and a few zero-demand jobs.
func mkSuspectBatch(nextID *int, rng *rand.Rand, n int) []*job.Job {
	js := make([]*job.Job, n)
	for i := range js {
		var cpu, mem, sto float64
		switch i % 23 {
		case 0: // tail: above the call's p98 threshold
			cpu, mem, sto = 3+rng.Float64()*2, 12+rng.Float64()*8, 120+rng.Float64()*60
		case 1:
			cpu, mem, sto = 0, 0, 0
		default:
			cpu = rng.Float64() * 1.5
			mem = rng.Float64() * 6
			sto = rng.Float64() * 60
		}
		js[i] = mkJob(*nextID, cpu, mem, sto)
		*nextID++
	}
	return js
}

// TestRandomSchedulerSuspectEquivalence runs the same RCCR placement
// sequence on a 1200-VM fleet twice — suspect index forced on, then
// forced off (flat scans only) — and requires bit-identical placements.
// Any divergence in a candidate count would skew the shared RNG stream
// and cascade, so this pins the whole randomFit fast path end to end.
func TestRandomSchedulerSuspectEquivalence(t *testing.T) {
	cl, err := cluster.New(cluster.Config{Profile: cluster.ProfileCluster, NumPMs: 300, NumVMs: 1200})
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		job   int
		vm    int
		opp   bool
		alloc resource.Vector
	}
	run := func(minLanes int) []rec {
		old := suspectMinLanes
		suspectMinLanes = minLanes
		defer func() { suspectMinLanes = old }()

		s, err := New(Config{Scheme: RCCR, Seed: 7}, cl)
		if err != nil {
			t.Fatal(err)
		}
		rs := s.(*randomScheduler)
		rng := rand.New(rand.NewSource(99))
		var out []rec
		jobID := 0
		for round := 0; round < 6; round++ {
			views := make([]VMView, len(cl.VMs))
			for i := range views {
				if rng.Intn(97) == 0 {
					views[i] = VMView{Down: true}
					continue
				}
				c := cl.VMs[i].Capacity
				f := 0.2 + 0.8*rng.Float64()
				views[i] = VMView{
					FreshAvailable: c.Scale(f * 0.4),
					OppInUse:       c.Scale(rng.Float64() * 0.1),
				}
				rs.latest[i] = predict.Prediction{
					Unused:   c.Scale(rng.Float64() * 0.5),
					Unlocked: true,
				}
			}
			js := mkSuspectBatch(&jobID, rng, 350)
			for _, p := range s.Place(js, views) {
				out = append(out, rec{
					job: int(p.Jobs[0].ID), vm: p.VM,
					opp: p.Opportunistic, alloc: p.Allocs[0],
				})
			}
		}
		return out
	}

	on := run(1)        // suspect path active for every Place call
	off := run(1 << 30) // flat scans only
	if len(on) != len(off) {
		t.Fatalf("placement count diverged: suspect=%d flat=%d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("placement %d diverged: suspect=%+v flat=%+v", i, on[i], off[i])
		}
	}
	if len(on) == 0 {
		t.Fatal("no placements made; test exercised nothing")
	}
}
