package sim

import (
	"testing"

	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/scheduler"
)

// growAdjuster asks for the same (large) allocation for every running job.
type growAdjuster struct{ want resource.Vector }

func (g growAdjuster) AdjustAlloc(*job.Job, resource.Vector) (resource.Vector, bool) {
	return g.want, true
}

var _ scheduler.Adjuster = growAdjuster{}

// TestAdjustFreshGrowthRespectsLongReservations is the regression pin for
// the mixed-workload over-commit bug: the fresh-growth path computed
// headroom as capacity − reserved − freshInUse, silently treating long
// jobs' guaranteed reservations as free. On a VM with capacity 10,
// resident reservation 4, a long job holding 4 and a fresh short job
// holding 1, real headroom is 1 — but the buggy bound let the job grow by
// up to 5, pushing reserved + longReserved + freshInUse to 12 of 10.
func TestAdjustFreshGrowthRespectsLongReservations(t *testing.T) {
	one := func(x float64) resource.Vector { return resource.Vector{x, x, x} }
	spec := &job.Job{ID: 1, Duration: 10, Usage: []resource.Vector{one(1)}, Request: one(1)}
	rt := job.NewRuntime(spec)
	rt.Allocated = one(1)
	// Entity 0 = fresh placement (opportunistic jobs carry entity 1).
	st := &vmState{
		capacity:     one(10),
		reserved:     one(4),
		longReserved: one(4),
		freshInUse:   one(1),
		running:      []*job.Runtime{rt},
	}
	st.rebuildHot()

	applyAdjustments([]*vmState{st}, growAdjuster{want: one(6)})

	total := st.reserved.Add(st.longReserved).Add(st.freshInUse)
	if !total.FitsIn(st.capacity) {
		t.Errorf("ledger over-committed: reserved+longReserved+freshInUse = %v of %v", total, st.capacity)
	}
	// Real headroom was 1, so the job may grow from 1 to exactly 2.
	if want := one(2); rt.Allocated != want {
		t.Errorf("adjusted allocation = %v, want %v (grow bounded by real headroom)", rt.Allocated, want)
	}
	if want := one(2); st.freshInUse != want {
		t.Errorf("freshInUse = %v, want %v", st.freshInUse, want)
	}

	// Down VMs and opportunistic entities keep their existing behaviour:
	// the opportunistic pool swaps freely (risk lands at execute time).
	opp := job.NewRuntime(spec)
	opp.Allocated = one(1)
	opp.Entity = 1
	stOpp := &vmState{capacity: one(10), reserved: one(4), oppInUse: one(1), running: []*job.Runtime{opp}}
	stOpp.rebuildHot()
	applyAdjustments([]*vmState{stOpp}, growAdjuster{want: one(6)})
	if want := one(6); opp.Allocated != want {
		t.Errorf("opportunistic adjusted allocation = %v, want %v", opp.Allocated, want)
	}
}
