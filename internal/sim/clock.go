package sim

import "time"

// Clock abstracts the timer behind the scheduling-overhead metric
// (Figs. 10/14). Run brackets each scheduler decision with two Now calls
// and charges the difference to Result.Overhead. The default wall clock
// measures real decision time, which varies run-to-run and
// machine-to-machine; deterministic runs (regression tests, the ext-faults
// figure) inject a VirtualClock instead so identically-seeded runs report
// identical overhead.
type Clock interface {
	// Now returns elapsed microseconds since an arbitrary epoch.
	Now() float64
}

// NewWallClock returns the real-time clock used when Config.Clock is nil.
func NewWallClock() Clock { return &wallClock{base: time.Now()} }

type wallClock struct{ base time.Time }

func (c *wallClock) Now() float64 {
	return float64(time.Since(c.base).Nanoseconds()) / 1e3
}

// VirtualClock is a deterministic Clock: every reading advances it by
// StepMicros, so each measured interval costs exactly one step regardless
// of real elapsed time. It models scheduler decisions as fixed-cost
// operations, trading fidelity for reproducibility.
//
// A VirtualClock must not be shared between concurrent runs; give each
// Config its own instance.
type VirtualClock struct {
	// StepMicros is the advance per reading; values ≤ 0 are treated as 1.
	StepMicros float64
	now        float64
}

// Now advances the clock one step and returns the new reading.
func (c *VirtualClock) Now() float64 {
	step := c.StepMicros
	if step <= 0 {
		step = 1
	}
	c.now += step
	return c.now
}
