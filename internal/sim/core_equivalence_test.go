package sim

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/scheduler"
)

// coreScenario is one slot-vs-event equivalence case. The matrix covers
// every scheme, fault injection (the retry/evPlace re-arm paths), the
// cooperative mixed workload (long-arrival events), timeline recording
// (per-slot ledger sums) and the EC2 profile.
type coreScenario struct {
	name string
	cfg  func() Config
}

func coreScenarios() []coreScenario {
	base := func(sc scheduler.Scheme, seed int64) Config {
		return Config{
			NumPMs: 6, NumVMs: 24, NumJobs: 40, Seed: seed,
			Warmup: 40, ArrivalSpan: 30, Drain: 60,
			Scheduler: scheduler.Config{Scheme: sc, Seed: seed},
			Clock:     &VirtualClock{StepMicros: 50},
			Workers:   1,
		}
	}
	var scen []coreScenario
	for _, sc := range append(scheduler.Schemes(), scheduler.Oracle) {
		sc := sc
		scen = append(scen, coreScenario{sc.String(), func() Config { return base(sc, 7) }})
	}
	scen = append(scen,
		coreScenario{"faulted", func() Config {
			cfg := base(scheduler.CORP, 11)
			cfg.Faults = faults.Config{
				Seed: 11, VMCrashProb: 0.01, MeanDowntime: 12,
				SurgeProb: 0.02, DelayProb: 0.05,
			}
			return cfg
		}},
		coreScenario{"mixed-long", func() Config {
			cfg := base(scheduler.CORP, 9)
			cfg.LongJobs = 8
			return cfg
		}},
		coreScenario{"timeline", func() Config {
			cfg := base(scheduler.RCCR, 5)
			cfg.RecordTimeline = true
			return cfg
		}},
		coreScenario{"ec2", func() Config {
			cfg := base(scheduler.CORP, 3)
			cfg.Profile = cluster.ProfileEC2
			cfg.NumPMs, cfg.NumVMs = 0, 0
			return cfg
		}},
		// Surge-heavy: most slots run with surged resident demand, so the
		// observe fast path must stand down for long stretches and the
		// active-set executor sees surge-driven eviction/retry churn.
		coreScenario{"surged", func() Config {
			cfg := base(scheduler.RCCR, 13)
			cfg.Faults = faults.Config{
				Seed: 13, SurgeProb: 0.25, SurgeFactor: 1.8, MeanDowntime: 8,
			}
			return cfg
		}},
	)
	return scen
}

// TestCoreEquivalence is the tentpole's acceptance pin: for every
// scenario, the event-queue core must reproduce the slot loop's Result —
// every metric, timeline point and overhead microsecond — bit for bit.
func TestCoreEquivalence(t *testing.T) {
	for _, sc := range coreScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			slotCfg := sc.cfg()
			slotCfg.Core = CoreSlot
			want, err := Run(slotCfg)
			if err != nil {
				t.Fatal(err)
			}
			eventCfg := sc.cfg()
			eventCfg.Core = CoreEvent
			got, err := Run(eventCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("event core diverged from slot loop:\n slot:  %+v\n event: %+v", want, got)
			}
		})
	}
}

// TestCoreEquivalenceParallel repeats the pin with the sharded executor
// running wide: slot loop at 1 worker versus event core at several worker
// counts. The positional merge means worker count can only change wall
// time, never a figure; running under -race also exercises the shard for
// data races (the race Make target covers this package).
func TestCoreEquivalenceParallel(t *testing.T) {
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	all := coreScenarios()
	for _, sc := range []coreScenario{all[0], all[5], all[6], all[9]} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			slotCfg := sc.cfg()
			slotCfg.Core = CoreSlot
			want, err := Run(slotCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range counts {
				cfg := sc.cfg()
				cfg.Core = CoreEvent
				cfg.Workers = w
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("event core (workers=%d) diverged from serial slot loop", w)
				}
			}
		})
	}
}

// TestCoreParseAndString pins the CLI surface of the core selector.
func TestCoreParseAndString(t *testing.T) {
	for _, c := range []Core{CoreEvent, CoreSlot} {
		got, err := ParseCore(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCore(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCore("tick"); err == nil {
		t.Error("ParseCore accepted an unknown core")
	}
	if _, err := Run(Config{NumPMs: 2, NumVMs: 4, NumJobs: 5, Core: Core(7), Workers: 1}); err == nil {
		t.Error("Run accepted an unknown core")
	}
}
