package sim

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/scheduler"
)

// engineCfg is a run small enough for -race but busy enough to exercise
// training, HMM refits, packing, and outcome draining. The VirtualClock
// makes Overhead deterministic so whole Results can be compared.
func engineCfg(sc scheduler.Scheme, seed int64, workers int) Config {
	cfg := Config{
		NumPMs: 6, NumVMs: 24, NumJobs: 40, Seed: seed,
		Warmup: 40, ArrivalSpan: 30, Drain: 60,
		Scheduler: scheduler.Config{Scheme: sc, Seed: seed},
		Clock:     &VirtualClock{StepMicros: 50},
		Workers:   workers,
	}
	return cfg
}

// TestRunWorkerCountEquivalence is the tentpole's determinism pin: for
// every scheme, sim.Run with workers ∈ {1, 4, GOMAXPROCS} must produce
// an identical Result — the parallel engine merges positionally and the
// shared CORP brain only trains from the ordered flush phase, so worker
// count can only change wall time, never a figure.
func TestRunWorkerCountEquivalence(t *testing.T) {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	schemes := append(scheduler.Schemes(), scheduler.Oracle)
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			t.Parallel()
			want, err := Run(engineCfg(sc, 7, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range counts[1:] {
				got, err := Run(engineCfg(sc, 7, w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d diverged from workers=1:\n  w1: %+v\n  w%d: %+v", w, want, w, got)
				}
			}
		})
	}
}

// TestRunWorkerCountEquivalenceFaulted repeats the pin under fault
// injection for CORP: crashes exercise the dirty-VM Refresh skip and the
// Recovery/DNNTrainErrors fields, which must also match exactly.
func TestRunWorkerCountEquivalenceFaulted(t *testing.T) {
	mk := func(workers int) Config {
		cfg := engineCfg(scheduler.CORP, 11, workers)
		cfg.Faults = faults.Config{
			Seed:         11,
			VMCrashProb:  0.01,
			MeanDowntime: 12,
			SurgeProb:    0.02,
		}
		return cfg
	}
	want, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if want.Recovery.VMCrashes == 0 {
		t.Fatal("fault profile injected no crashes; the dirty-skip path is untested")
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Run(mk(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("faulted run diverged at workers=%d", w)
		}
	}
}

// TestRunAutoWorkersMatchesSerial pins that the budget-driven auto mode
// (Workers == 0) also reproduces the serial figures, whatever the budget
// happens to grant.
func TestRunAutoWorkersMatchesSerial(t *testing.T) {
	want, err := Run(engineCfg(scheduler.CORP, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(engineCfg(scheduler.CORP, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("auto-sized run diverged from serial run")
	}
}
