package sim

// This file is the event-driven simulator core: a global min-heap of
// simulation events keyed by timestamp with deterministic tie-breaking.
// Instead of offering every phase at every tick, the run advances from
// event to event — fault-free runs carry no fault events, idle stretches
// carry no arrival/retry/placement events, and the queue is empty the
// moment the horizon is reached.
//
// Two event kinds still recur every slot: telemetry (the synthetic
// resident traces fluctuate every slot, and the predictors' state advances
// per observation, so skipping a quiet slot would change every downstream
// forecast) and execute (per-slot grant scaling and the collectors'
// per-slot sums). The execute handler — the last phase of a slot — arms
// both for the next slot, and when the fleet is quiescent and the next
// real event is k > 1 slots away it first replays the whole span in one
// tight loop (span.go) and arms them at the span's end instead.
// Everything else fires only when there is work: faults only under an
// injector, refreshes once per window, arrivals/retries at their due
// times, placements only while jobs queue.

// eventKind orders same-timestamp events. The numeric order IS the phase
// order of the slot loop, so processing a slot's events in (time, kind)
// order replays the monolithic loop's phase sequence exactly.
type eventKind uint8

const (
	// evFault advances the fault injector (crashes, repairs, surges).
	evFault eventKind = iota
	// evLongArrival places due long-lived jobs.
	evLongArrival
	// evTelemetry samples per-VM unused resources and feeds predictors.
	evTelemetry
	// evRefresh runs the per-window forecast refresh and adjustments.
	evRefresh
	// evArrival admits due short-job arrivals into the queue.
	evArrival
	// evRetry admits evicted jobs whose backoff has elapsed.
	evRetry
	// evPlace offers the queued jobs to the scheduler.
	evPlace
	// evExecute runs one slot on every up VM and drains outcomes.
	evExecute
)

// event is one scheduled simulator action. index carries the VM/job index
// for per-entity events (retry releases); seq breaks remaining ties in
// creation order so the heap is a total, deterministic order.
type event struct {
	time  int
	kind  eventKind
	index int
	seq   uint64
}

// before is the heap's strict ordering: timestamp, then event kind (slot
// phase), then VM/job index, then creation sequence.
func (e event) before(o event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.index != o.index {
		return e.index < o.index
	}
	return e.seq < o.seq
}

// eventQueue is a slice-backed binary min-heap of events. It is
// deliberately not container/heap: events are small values and the
// interface indirection would allocate on every push in the hot loop.
type eventQueue struct {
	items []event
	seq   uint64
}

// Push schedules an event. Never-negative times only; callers clamp.
func (q *eventQueue) Push(time int, kind eventKind, index int) {
	q.seq++
	e := event{time: time, kind: kind, index: index, seq: q.seq}
	q.items = append(q.items, e)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.items[i].before(q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// HasPendingEvents reports whether any event remains scheduled.
func (q *eventQueue) HasPendingEvents() bool { return len(q.items) > 0 }

// PeekNextEventTime returns the earliest scheduled timestamp. It must not
// be called on an empty queue.
func (q *eventQueue) PeekNextEventTime() int { return q.items[0].time }

// pop removes and returns the earliest event. The vacated tail element is
// zeroed before the shrink so popped events don't linger in the backing
// array across long runs (and so scans of q.items can never observe a
// stale entry past the live length).
func (q *eventQueue) pop() event {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = event{}
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].before(q.items[smallest]) {
			smallest = l
		}
		if r < n && q.items[r].before(q.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

// runEventLoop is the event-driven core. It seeds the initial events,
// then repeatedly processes the earliest one until the horizon; every
// handler calls exactly the phase method the slot loop would have run at
// that simulated time, so results are bit-identical to runSlotLoop.
func (rs *runState) runEventLoop() error {
	rs.useEvents = true
	q := &rs.events
	if rs.inj != nil {
		q.Push(0, evFault, 0)
	}
	if len(rs.longRuntimes) > 0 {
		q.Push(clampSlot(rs.longRuntimes[0].Arrival), evLongArrival, 0)
	}
	q.Push(0, evTelemetry, 0)
	q.Push(0, evRefresh, 0)
	if len(rs.runtimes) > 0 {
		q.Push(clampSlot(rs.runtimes[0].Arrival), evArrival, 0)
	}
	q.Push(0, evExecute, 0)
	for q.HasPendingEvents() && q.PeekNextEventTime() < rs.horizon {
		if err := rs.processNextEvent(); err != nil {
			return err
		}
	}
	return nil
}

// processNextEvent pops the earliest event, runs its phase, and re-arms
// any follow-up events.
func (rs *runState) processNextEvent() error {
	ev := rs.events.pop()
	t := ev.time
	switch ev.kind {
	case evFault:
		// The injector draws per-slot RNG, so it must advance every slot
		// to stay bit-identical to the slot loop.
		rs.advanceFaults(t)
		rs.events.Push(t+1, evFault, 0)
	case evLongArrival:
		rs.placeLongArrivals(t)
		if rs.nextLong < len(rs.longRuntimes) {
			// The cursor stalls on the next arrival exactly like the slot
			// loop's ≤-scan; max() keeps time monotonic if specs arrived
			// unsorted.
			rs.events.Push(maxSlot(rs.longRuntimes[rs.nextLong].Arrival, t+1), evLongArrival, 0)
		}
	case evTelemetry:
		// Re-armed by the evExecute handler together with the next
		// execute event, so a quiescent-span fast-forward can move both
		// past the span in one decision.
		rs.observe(t)
	case evRefresh:
		rs.refreshWindow(t)
		rs.events.Push(t+rs.window, evRefresh, 0)
	case evArrival:
		if rs.admitArrivals(t) {
			rs.armPlace(t)
		}
		if rs.nextArrival < len(rs.runtimes) {
			rs.events.Push(maxSlot(rs.runtimes[rs.nextArrival].Arrival, t+1), evArrival, 0)
		}
	case evRetry:
		// Several retries can share a release slot, so events may be
		// duplicates of an already-drained scan; admitRetries is an
		// order-preserving no-op then, and no placement is armed.
		if rs.admitRetries(t) {
			rs.armPlace(t)
		}
	case evPlace:
		if len(rs.queue) > 0 {
			if err := rs.placeQueued(t); err != nil {
				return err
			}
			if len(rs.queue) > 0 {
				// Unplaced jobs are re-offered every slot, matching the
				// slot loop's standing len(queue)>0 pass.
				rs.armPlace(t + 1)
			}
		}
	case evExecute:
		rs.executeSlot(t)
		rs.armSlot(t + 1)
	}
	return nil
}

// armSlot schedules slot t's telemetry and execute events. evExecute is
// the last phase of a slot, so at call time every remaining queued event
// is a *real* event (arrival, retry, fault draw, refresh, long-job
// transition) at time ≥ t; if the earliest of them is more than one slot
// away and the fleet is quiescent, the whole span of no-op slots is
// replayed in one tight loop first and the per-slot events re-arm at the
// span's end.
func (rs *runState) armSlot(t int) {
	if end := rs.spanEnd(t); end > t {
		rs.fastForwardSpan(t, end)
		t = end
	}
	rs.events.Push(t, evTelemetry, 0)
	rs.events.Push(t, evExecute, 0)
}

// armPlace schedules a placement pass at slot t, deduplicating so at most
// one evPlace event exists per slot (arrivals and retries in the same slot
// both request one).
func (rs *runState) armPlace(t int) {
	if rs.placeArmedAt >= t {
		return
	}
	rs.placeArmedAt = t
	rs.events.Push(t, evPlace, 0)
}

func clampSlot(t int) int {
	if t < 0 {
		return 0
	}
	return t
}

func maxSlot(a, b int) int {
	if a > b {
		return a
	}
	return b
}
