package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering pins the heap's total order: timestamp first,
// then event kind (the slot loop's phase order), then VM/job index, then
// creation sequence.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	// Push a slot's phases out of order at two timestamps plus index ties.
	q.Push(2, evExecute, 0)
	q.Push(1, evPlace, 0)
	q.Push(1, evFault, 0)
	q.Push(1, evRetry, 9)
	q.Push(1, evRetry, 4)
	q.Push(1, evArrival, 0)
	q.Push(2, evFault, 0)
	q.Push(1, evTelemetry, 0)

	want := []event{
		{time: 1, kind: evFault},
		{time: 1, kind: evTelemetry},
		{time: 1, kind: evArrival},
		{time: 1, kind: evRetry, index: 4},
		{time: 1, kind: evRetry, index: 9},
		{time: 1, kind: evPlace},
		{time: 2, kind: evFault},
		{time: 2, kind: evExecute},
	}
	if !q.HasPendingEvents() || q.PeekNextEventTime() != 1 {
		t.Fatalf("peek = %d, want 1", q.PeekNextEventTime())
	}
	for i, w := range want {
		got := q.pop()
		if got.time != w.time || got.kind != w.kind || got.index != w.index {
			t.Fatalf("pop %d = {t%d k%d i%d}, want {t%d k%d i%d}",
				i, got.time, got.kind, got.index, w.time, w.kind, w.index)
		}
	}
	if q.HasPendingEvents() {
		t.Fatal("queue not drained")
	}
}

// TestEventQueueSeqTieBreak: identical (time, kind, index) events pop in
// creation order, so duplicate retry releases stay deterministic.
func TestEventQueueSeqTieBreak(t *testing.T) {
	var q eventQueue
	for i := 0; i < 5; i++ {
		q.Push(3, evRetry, 1)
	}
	var prev uint64
	for i := 0; i < 5; i++ {
		e := q.pop()
		if e.seq <= prev {
			t.Fatalf("pop %d: seq %d not increasing past %d", i, e.seq, prev)
		}
		prev = e.seq
	}
}

// TestEventQueueRandomized cross-checks the hand-rolled heap against a
// sorted reference on a few thousand random push/pop interleavings.
func TestEventQueueRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	var ref []event
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) > 0 || len(ref) == 0 {
			tm, k, idx := rng.Intn(50), eventKind(rng.Intn(8)), rng.Intn(10)
			q.Push(tm, k, idx)
			ref = append(ref, event{time: tm, kind: k, index: idx, seq: q.seq})
		} else {
			sort.Slice(ref, func(a, b int) bool { return ref[a].before(ref[b]) })
			got, want := q.pop(), ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("step %d: pop %+v, want %+v", i, got, want)
			}
		}
	}
}

// TestEventQueueDuplicateTimestampDrain is the drain-order property test
// with the adversarial shape the event core actually produces: many
// duplicate evPlace/evRetry events sharing timestamps (several retries
// released in one slot, re-armed placement passes). The whole queue is
// drained at once and every pop must follow the exact (time, kind, index,
// seq) order.
func TestEventQueueDuplicateTimestampDrain(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var ref []event
		push := func(tm int, k eventKind, idx int) {
			q.Push(tm, k, idx)
			ref = append(ref, event{time: tm, kind: k, index: idx, seq: q.seq})
		}
		for i := 0; i < 400; i++ {
			tm := rng.Intn(8) // few timestamps → heavy duplication
			switch rng.Intn(4) {
			case 0:
				push(tm, evPlace, 0)
			case 1:
				push(tm, evRetry, rng.Intn(3))
			case 2:
				// Duplicate the same (time, kind, index) several times:
				// only seq breaks the tie.
				for d := 0; d < 3; d++ {
					push(tm, evRetry, 1)
				}
			default:
				push(tm, eventKind(rng.Intn(8)), rng.Intn(4))
			}
		}
		sort.Slice(ref, func(a, b int) bool { return ref[a].before(ref[b]) })
		for i, want := range ref {
			if !q.HasPendingEvents() {
				t.Fatalf("seed %d: queue empty at pop %d/%d", seed, i, len(ref))
			}
			if got := q.pop(); got != want {
				t.Fatalf("seed %d pop %d: %+v, want %+v", seed, i, got, want)
			}
		}
		if q.HasPendingEvents() {
			t.Fatalf("seed %d: queue not drained", seed)
		}
	}
}

// FuzzArmPlaceDedup fuzzes armPlace's monotonic dedup against a naive
// model: a sorted slice of armed slots where an arm(t) request is accepted
// only if t is strictly greater than every previously armed slot. The
// queue must hold exactly the accepted slots' evPlace events (at most one
// per slot), in order.
func FuzzArmPlaceDedup(f *testing.F) {
	f.Add([]byte{0, 0, 1, 3, 3, 2, 5})
	f.Add([]byte{7, 7, 7})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, arms []byte) {
		rs := &runState{placeArmedAt: -1}
		var model []int // accepted arm times, strictly increasing
		for _, b := range arms {
			at := int(b % 32)
			rs.armPlace(at)
			if len(model) == 0 || at > model[len(model)-1] {
				model = append(model, at)
			}
		}
		var got []int
		for rs.events.HasPendingEvents() {
			e := rs.events.pop()
			if e.kind != evPlace {
				t.Fatalf("non-evPlace event %+v in queue", e)
			}
			got = append(got, e.time)
		}
		if len(got) != len(model) {
			t.Fatalf("armed %v, queue drained %v", model, got)
		}
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("pop %d: slot %d, want %d (model %v, got %v)", i, got[i], model[i], model, got)
			}
		}
	})
}

// TestEventQueuePopClearsTail is the retention regression for pop: the
// vacated tail slot must be zeroed before the shrink, so long-lived queues
// don't pin popped events in the backing array (and so any scan of the
// full backing storage can never observe a stale entry past the live
// length).
func TestEventQueuePopClearsTail(t *testing.T) {
	var q eventQueue
	for i := 0; i < 64; i++ {
		q.Push(i, evExecute, i)
	}
	backing := q.items[:cap(q.items)]
	for i := 0; q.HasPendingEvents(); i++ {
		e := q.pop()
		if e.time != i {
			t.Fatalf("pop %d: time %d", i, e.time)
		}
		for j := len(q.items); j < len(backing); j++ {
			if backing[j] != (event{}) {
				t.Fatalf("after pop %d: backing[%d] = %+v still live past len %d",
					i, j, backing[j], len(q.items))
			}
		}
	}
}
