package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventQueueOrdering pins the heap's total order: timestamp first,
// then event kind (the slot loop's phase order), then VM/job index, then
// creation sequence.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	// Push a slot's phases out of order at two timestamps plus index ties.
	q.Push(2, evExecute, 0)
	q.Push(1, evPlace, 0)
	q.Push(1, evFault, 0)
	q.Push(1, evRetry, 9)
	q.Push(1, evRetry, 4)
	q.Push(1, evArrival, 0)
	q.Push(2, evFault, 0)
	q.Push(1, evTelemetry, 0)

	want := []event{
		{time: 1, kind: evFault},
		{time: 1, kind: evTelemetry},
		{time: 1, kind: evArrival},
		{time: 1, kind: evRetry, index: 4},
		{time: 1, kind: evRetry, index: 9},
		{time: 1, kind: evPlace},
		{time: 2, kind: evFault},
		{time: 2, kind: evExecute},
	}
	if !q.HasPendingEvents() || q.PeekNextEventTime() != 1 {
		t.Fatalf("peek = %d, want 1", q.PeekNextEventTime())
	}
	for i, w := range want {
		got := q.pop()
		if got.time != w.time || got.kind != w.kind || got.index != w.index {
			t.Fatalf("pop %d = {t%d k%d i%d}, want {t%d k%d i%d}",
				i, got.time, got.kind, got.index, w.time, w.kind, w.index)
		}
	}
	if q.HasPendingEvents() {
		t.Fatal("queue not drained")
	}
}

// TestEventQueueSeqTieBreak: identical (time, kind, index) events pop in
// creation order, so duplicate retry releases stay deterministic.
func TestEventQueueSeqTieBreak(t *testing.T) {
	var q eventQueue
	for i := 0; i < 5; i++ {
		q.Push(3, evRetry, 1)
	}
	var prev uint64
	for i := 0; i < 5; i++ {
		e := q.pop()
		if e.seq <= prev {
			t.Fatalf("pop %d: seq %d not increasing past %d", i, e.seq, prev)
		}
		prev = e.seq
	}
}

// TestEventQueueRandomized cross-checks the hand-rolled heap against a
// sorted reference on a few thousand random push/pop interleavings.
func TestEventQueueRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	var ref []event
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) > 0 || len(ref) == 0 {
			tm, k, idx := rng.Intn(50), eventKind(rng.Intn(8)), rng.Intn(10)
			q.Push(tm, k, idx)
			ref = append(ref, event{time: tm, kind: k, index: idx, seq: q.seq})
		} else {
			sort.Slice(ref, func(a, b int) bool { return ref[a].before(ref[b]) })
			got, want := q.pop(), ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("step %d: pop %+v, want %+v", i, got, want)
			}
		}
	}
}
