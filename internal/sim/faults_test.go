package sim

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/scheduler"
)

// faulty returns a small config with an aggressive fault profile and a
// deterministic clock, so every recovery counter sees traffic.
func faulty(sc scheduler.Scheme, seed int64) Config {
	cfg := small(sc, seed)
	cfg.Faults = faults.Config{
		Seed:         seed,
		VMCrashProb:  0.01,
		PMCrashProb:  0.002,
		MeanDowntime: 10,
		SurgeProb:    0.02,
		DelayProb:    0.05,
	}
	cfg.Clock = &VirtualClock{StepMicros: 100}
	return cfg
}

// TestFaultInjectionEvictsRequeuesRetries is the acceptance test for the
// fault layer: a VM crash mid-run must kill the jobs there, requeue them
// with backoff, and account every step in the recovery metrics.
func TestFaultInjectionEvictsRequeuesRetries(t *testing.T) {
	r, err := Run(faulty(scheduler.RCCR, 21))
	if err != nil {
		t.Fatal(err)
	}
	rec := r.Recovery
	if rec.VMCrashes == 0 {
		t.Fatal("no VM crashes despite 1% per-slot rate over 300 slots × 40 VMs")
	}
	if rec.VMRecoveries == 0 {
		t.Error("no recoveries despite mean downtime 10 slots")
	}
	if rec.Evictions == 0 {
		t.Fatal("crashes never caught a running job; eviction path untested")
	}
	// Every eviction either retries or exhausts the budget — no job
	// silently vanishes.
	if rec.Retries+rec.RetriesExhausted != rec.Evictions {
		t.Errorf("eviction accounting: %d retries + %d exhausted != %d evictions",
			rec.Retries, rec.RetriesExhausted, rec.Evictions)
	}
	if rec.Retries == 0 {
		t.Error("no evicted job was requeued")
	}
	// Replacements are retried jobs that landed again; backoff means a
	// replacement takes at least RetryBackoff slots.
	if rec.Replaced == 0 {
		t.Error("no evicted job was ever re-placed")
	}
	if rec.Replaced > rec.Retries {
		t.Errorf("%d replacements exceed %d retries", rec.Replaced, rec.Retries)
	}
	if rec.ReplaceSlots < rec.Replaced*2 {
		t.Errorf("time-to-replace %d slots below the backoff floor for %d replacements",
			rec.ReplaceSlots, rec.Replaced)
	}
	if m := rec.MeanTimeToReplace(); m < 2 {
		t.Errorf("MeanTimeToReplace = %v, want >= backoff base 2", m)
	}
	// Every violated or unfinished job is attributed to exactly one
	// damage mechanism.
	if rec.ViolationsFailure+rec.ViolationsStarvation != r.SLO.Violated+r.SLO.Unfinished {
		t.Errorf("attribution: failure %d + starvation %d != violated %d + unfinished %d",
			rec.ViolationsFailure, rec.ViolationsStarvation, r.SLO.Violated, r.SLO.Unfinished)
	}
	if rec.SurgeSlots == 0 {
		t.Error("no surge slots recorded despite 2% surge rate")
	}
	if rec.Delays == 0 || rec.InjectedDelayMicros <= 0 {
		t.Errorf("delay accounting empty: %d delays, %v µs", rec.Delays, rec.InjectedDelayMicros)
	}
	// Injected stalls are charged to the run's overhead.
	if r.Overhead.CommMicros < rec.InjectedDelayMicros {
		t.Errorf("comm overhead %v µs below injected %v µs",
			r.Overhead.CommMicros, rec.InjectedDelayMicros)
	}
}

// TestFaultRunsDeterministic: with the virtual clock, a fault run is
// bit-for-bit reproducible — every metric including overhead.
func TestFaultRunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full CORP runs")
	}
	a, err := Run(faulty(scheduler.CORP, 22))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faulty(scheduler.CORP, 22))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed fault runs diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFaultFreeEquivalence: a zero fault config (and a rate-0 profile)
// must reproduce the plain fault-free run exactly, recovery metrics all
// zero.
func TestFaultFreeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full CORP runs")
	}
	plain := small(scheduler.CORP, 23)
	plain.Clock = &VirtualClock{StepMicros: 100}
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	// Rate 0 but a fault seed set: Enabled() is false, so the injector
	// never exists and no RNG draw can perturb the run.
	zeroRate := small(scheduler.CORP, 23)
	zeroRate.Clock = &VirtualClock{StepMicros: 100}
	zeroRate.Faults = faults.Config{Seed: 999, MeanDowntime: 5, MaxRetries: 7}
	b, err := Run(zeroRate)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rate-0 fault run diverges from fault-free:\n%+v\nvs\n%+v", a, b)
	}
	if a.Recovery != (metrics.RecoveryStats{}) {
		t.Errorf("fault-free recovery stats not zero: %+v", a.Recovery)
	}
}

// TestOverheadDeterministicWithVirtualClock is the regression test for
// the wall-clock overhead bug: two identically-seeded runs must report
// identical overhead when a deterministic clock is injected.
func TestOverheadDeterministicWithVirtualClock(t *testing.T) {
	if testing.Short() {
		t.Skip("two full CORP runs")
	}
	run := func() *Result {
		cfg := small(scheduler.CORP, 24)
		cfg.Clock = &VirtualClock{StepMicros: 100}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Overhead != b.Overhead {
		t.Errorf("virtual-clock overhead diverges: %+v vs %+v", a.Overhead, b.Overhead)
	}
	if a.Overhead.TotalMicros() <= 0 {
		t.Error("virtual clock produced no overhead at all")
	}
}

// TestFaultsDegradeService: injecting failures must not improve the SLO,
// and the run must still finish jobs.
func TestFaultsDegradeService(t *testing.T) {
	clean, err := Run(small(scheduler.RCCR, 25))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Run(faulty(scheduler.RCCR, 25))
	if err != nil {
		t.Fatal(err)
	}
	if dirty.SLORate < clean.SLORate {
		t.Errorf("faults improved SLO: %.3f < %.3f", dirty.SLORate, clean.SLORate)
	}
	if dirty.SLO.Finished == 0 {
		t.Error("no jobs finished under faults; recovery path is not recovering")
	}
}

// TestVirtualClockAdvances pins the VirtualClock contract: each reading
// advances by StepMicros (default 1).
func TestVirtualClockAdvances(t *testing.T) {
	c := &VirtualClock{StepMicros: 5}
	if c.Now() != 5 || c.Now() != 10 {
		t.Error("VirtualClock must advance StepMicros per reading")
	}
	d := &VirtualClock{}
	if d.Now() != 1 || d.Now() != 2 {
		t.Error("zero StepMicros must default to 1")
	}
	w := NewWallClock()
	if w.Now() < 0 {
		t.Error("wall clock went backwards")
	}
}
