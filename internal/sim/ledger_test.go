package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/scheduler"
)

// TestClusterUtilizationCountsFreshOnce is the regression pin for the
// cluster-utilization double-count: the reducer's per-VM ledger sum
// already includes freshInUse, so only the opportunistic share of short
// allocations may be added on top. The intended identity, checked against
// the collector's exported accumulators:
//
//	cluster allocated = Σ(reserved + longReserved + freshInUse) + Σ opp allocs
//
// The buggy version added all short allocations, counting every fresh
// grant twice in the cluster-utilization denominator.
func TestClusterUtilizationCountsFreshOnce(t *testing.T) {
	one := func(x float64) resource.Vector { return resource.Vector{x, x, x} }
	spec := func(id int) *job.Job {
		return &job.Job{
			ID: job.ID(id), Duration: 10,
			Usage:   []resource.Vector{one(1)},
			Request: one(1),
		}
	}

	// VM 0 hosts a fresh short job (entity 0) from guaranteed headroom;
	// VM 1 hosts an opportunistic one (entity 1) from predicted-unused.
	fresh := job.NewRuntime(spec(1))
	fresh.Allocated = one(3)
	opp := job.NewRuntime(spec(2))
	opp.Allocated = one(1)
	opp.Entity = 1
	vms := []*vmState{
		{capacity: one(8), reserved: one(2), freshInUse: one(3), running: []*job.Runtime{fresh}},
		{capacity: one(8), reserved: one(2), oppInUse: one(1), running: []*job.Runtime{opp}},
	}
	for _, st := range vms {
		st.rebuildHot()
	}

	cl, err := cluster.New(cluster.Config{NumPMs: 1, NumVMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.New(scheduler.Config{Scheme: scheduler.RCCR, Seed: 1, Workers: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	rs := &runState{cfg: Config{Warmup: 1}, sched: sched, res: &Result{}, workers: 1, vms: vms}
	rs.initScratch()
	// Ample opportunistic pool so the grant scale factor stays 1.
	rs.unused[0], rs.unused[1] = one(5), one(5)
	rs.residentUse[0], rs.residentUse[1] = one(1), one(1)

	rs.executeSlot(0)

	// Short-job side: both allocations, both grants.
	if want := one(4); rs.collector.Allocated != want {
		t.Errorf("short allocated = %v, want %v", rs.collector.Allocated, want)
	}
	if want := one(2); rs.collector.Demand != want {
		t.Errorf("short demand = %v, want %v", rs.collector.Demand, want)
	}
	// Cluster side: ledgers (2+3) + (2) plus the opportunistic alloc 1 =
	// 8. The double-count bug yielded 11 (= 7 + all 4 short allocations).
	if want := one(8); rs.clusterCollector.Allocated != want {
		t.Errorf("cluster allocated = %v, want %v (fresh counted twice?)", rs.clusterCollector.Allocated, want)
	}
	// Cluster demand: residents (1+1) + granted short demand (1+1).
	if want := one(4); rs.clusterCollector.Demand != want {
		t.Errorf("cluster demand = %v, want %v", rs.clusterCollector.Demand, want)
	}
}

// TestRefreshWindowSkipsDownVMs is the regression pin for the status-RPC
// fan-out charging communication latency for crashed VMs: a down VM
// answers no status probe, so the refresh window must add one round-trip
// per *up* VM only (DESIGN.md §5f, skip-vs-timeout).
func TestRefreshWindowSkipsDownVMs(t *testing.T) {
	cl, err := cluster.New(cluster.Config{NumPMs: 1, NumVMs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.New(scheduler.Config{Scheme: scheduler.RCCR, Seed: 1, Workers: 1}, cl)
	if err != nil {
		t.Fatal(err)
	}
	vms := make([]*vmState, 4)
	for i := range vms {
		vms[i] = &vmState{capacity: resource.Vector{4, 16, 180}}
	}
	rs := &runState{
		cl:      cl,
		sched:   sched,
		clk:     &VirtualClock{StepMicros: 50},
		res:     &Result{},
		workers: 1,
		vms:     vms,
	}
	rs.initScratch()
	rs.setDown(1, true)
	rs.setDown(3, true)

	before := rs.res.Overhead.CommMicros
	rs.refreshWindow(0)

	got := rs.res.Overhead.CommMicros - before
	if want := 2 * cl.CommLatencyMicros; got != want {
		t.Errorf("refresh comm charge = %v µs, want %v (2 up VMs × %v; down VMs must add no round-trip)",
			got, want, cl.CommLatencyMicros)
	}
}
