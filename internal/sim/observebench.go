package sim

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/predict"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// ObserveBench drives the telemetry phase (runState.observe) in isolation
// over a synthetic idle fleet, for the perf suite's sim/slot-observe-*
// entries: the same per-slot work the full scale run pays on every quiet
// slot, with the predictor fan-out stubbed out so the measurement isolates
// the resident-demand computation (periodic-table fast path versus per-VM
// recomputation).
type ObserveBench struct {
	rs *runState
	t  int
}

// nullScheduler is a no-op scheduler so ObserveBench's runState satisfies
// initScratch without dragging a predictor fleet into the measurement.
type nullScheduler struct{}

func (nullScheduler) Name() string                         { return "null" }
func (nullScheduler) Window() int                          { return 6 }
func (nullScheduler) Observe(int, resource.Vector)         {}
func (nullScheduler) Refresh()                             {}
func (nullScheduler) ObserveAll([]resource.Vector, []bool) {}
func (nullScheduler) DrainOutcomes() []predict.ErrorSample { return nil }
func (nullScheduler) Place([]*job.Job, []scheduler.VMView) []scheduler.Placement {
	return nil
}

// NewObserveBench builds the bench fleet from a prepared workload snapshot
// (one resident per VM capacity in its params). disableTables forces the
// slow recomputation path; otherwise the snapshot's periodic tables drive
// the fast path.
func NewObserveBench(snap *workload.Snapshot, disableTables bool) (*ObserveBench, error) {
	residents := snap.Residents()
	caps := snap.Params().VMCaps
	if len(residents) != len(caps) {
		return nil, fmt.Errorf("sim: observe bench: %d residents for %d VM capacities", len(residents), len(caps))
	}
	vms := make([]*vmState, len(residents))
	for i, r := range residents {
		vms[i] = &vmState{capacity: caps[i], reserved: r.Request, resident: r}
	}
	rs := &runState{
		sched:   nullScheduler{},
		vms:     vms,
		workers: 1,
	}
	if !disableTables {
		if tab := snap.Tables(); tab != nil && tab.NumVMs == len(vms) {
			rs.tables = tab
		}
	}
	rs.initScratch()
	return &ObserveBench{rs: rs}, nil
}

// UsingTables reports whether the fast path is armed.
func (ob *ObserveBench) UsingTables() bool { return ob.rs.tables != nil }

// Run drives iters consecutive telemetry slots (continuing from the last
// call, so repeated calls walk the period instead of re-observing slot 0)
// and returns a checksum over the computed unused vectors so the work
// cannot be dead-code-eliminated.
func (ob *ObserveBench) Run(iters int) float64 {
	var sum float64
	for i := 0; i < iters; i++ {
		t := ob.t
		ob.t++
		ob.rs.observe(t)
		sum += ob.rs.unused[t%len(ob.rs.vms)][0]
	}
	return sum
}
