package sim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/scheduler"
)

// TestFaultedOverheadRegression pins the exact Overhead totals of a
// faulted run under the virtual clock. The comm total is the quantity the
// refreshWindow batching (AddCommRepeat over up-VM count) must preserve:
// every crash and recovery changes how many VMs are charged status-RPC
// latency per refresh, so any drift in the down-mask bookkeeping — or a
// "simplification" of the repeated float addition into one multiply, which
// is not bit-identical once real latencies contaminate the accumulator —
// moves these totals.
func TestFaultedOverheadRegression(t *testing.T) {
	cfg := Config{
		NumPMs: 6, NumVMs: 24, NumJobs: 40, Seed: 11,
		Warmup: 40, ArrivalSpan: 30, Drain: 60,
		Scheduler: scheduler.Config{Scheme: scheduler.CORP, Seed: 11},
		Faults: faults.Config{
			Seed: 11, VMCrashProb: 0.01, MeanDowntime: 12,
			SurgeProb: 0.02, DelayProb: 0.05,
		},
		Clock:   &VirtualClock{StepMicros: 50},
		Workers: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Overhead.ComputeMicros; got != 2200 {
		t.Errorf("ComputeMicros = %v, want 2200", got)
	}
	if got := res.Overhead.CommMicros; got != 50900 {
		t.Errorf("CommMicros = %v, want 50900", got)
	}
	if got := res.Overhead.Operations; got != 523 {
		t.Errorf("Operations = %v, want 523", got)
	}
	if res.Recovery.VMCrashes == 0 || res.Recovery.VMRecoveries == 0 {
		t.Fatalf("fault injection vacuous: %+v", res.Recovery)
	}
}
