package sim

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/workload"
	"repro/internal/workpool"
)

// RunMany executes several independent simulations concurrently on a
// bounded worker pool and returns results positionally. Each simulation is
// self-contained (own cluster, own scheduler, own RNGs), so runs
// parallelize perfectly; the experiment sweeps use this to regenerate
// figures on all cores.
//
// Workers ≤ 0 defaults to GOMAXPROCS. The pool claims its worker count
// from the shared budget (internal/workpool) for the duration of the
// sweep, so auto-sized intra-run prediction engines (Config.Workers == 0)
// see only the remaining slots and outer×inner parallelism never
// oversubscribes the machine. A run that fails — including one
// that panics; panics are recovered per run so a single bad configuration
// cannot take down a whole sweep — leaves results[i] nil, with the
// remaining runs still completing. The returned error joins every per-run
// failure (errors.Join), so callers see all of them, not just the first.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	return runMany(cfgs, workers, nil, Run)
}

// ProgressFunc observes sweep progress: it is called once per completed
// run (successful or failed) with the number of runs finished so far and
// the sweep total. Calls are serialized and arrive in completion order,
// not config order; done is strictly increasing from 1 to total.
type ProgressFunc func(done, total int)

// RunManyProgress is RunMany with a per-run completion callback. Both the
// corpsim/corpbench sweep front-ends and the farm dispatcher report
// progress and ETA through this one hook. A nil progress is RunMany.
func RunManyProgress(cfgs []Config, workers int, progress ProgressFunc) ([]*Result, error) {
	return runMany(cfgs, workers, progress, Run)
}

// runMany is RunMany with the per-run function injected for testing.
func runMany(cfgs []Config, workers int, progress ProgressFunc, run func(Config) (*Result, error)) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	// Account the outer pool against the shared worker budget so inner
	// engines auto-size from the remainder. The claim is advisory: even
	// when the budget is exhausted the sweep still runs at its requested
	// width (worker counts never change results, only wall time).
	if claimed := workpool.ClaimUpTo(workers); claimed > 0 {
		defer workpool.Release(claimed)
	}
	// Pre-build each distinct workload snapshot once, concurrently,
	// before fanning the runs out: within a sweep the schemes ×
	// replications share (seed, workload) keys, so the cache's
	// singleflight generates every distinct trace exactly once here and
	// each run receives its snapshot read-only via Config.Prepared.
	// Skipped when the cache is disabled (-workload-cache=off): that A/B
	// baseline regenerates inside every run, as the harness always did.
	if workload.Default.Enabled() {
		prepared := make([]Config, len(cfgs))
		copy(prepared, cfgs)
		cfgs = prepared
		var pwg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				for i := range idx {
					prepareSafe(&cfgs[i])
				}
			}()
		}
		for i := range cfgs {
			if cfgs[i].Prepared == nil {
				idx <- i
			}
		}
		close(idx)
		pwg.Wait()
	}
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = runSafe(run, cfgs[i], i)
				if progress != nil {
					progressMu.Lock()
					done++
					progress(done, len(cfgs))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errors.Join(errs...)
}

// prepareSafe attaches the config's workload snapshot, swallowing errors
// and panics: a config whose preparation fails keeps Prepared nil, and the
// run itself regenerates and surfaces the real error on its own slot.
func prepareSafe(cfg *Config) {
	defer func() { _ = recover() }()
	if snap, err := PrepareWorkload(*cfg); err == nil {
		cfg.Prepared = snap
	}
}

// runSafe converts a panicking run into an error on the run's own slot.
func runSafe(run func(Config) (*Result, error), cfg Config, i int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("sim: run %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return run(cfg)
}
