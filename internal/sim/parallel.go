package sim

import (
	"runtime"
	"sync"
)

// RunMany executes several independent simulations concurrently on a
// bounded worker pool and returns results positionally. Each simulation is
// self-contained (own cluster, own scheduler, own RNGs), so runs
// parallelize perfectly; the experiment sweeps use this to regenerate
// figures on all cores.
//
// Workers ≤ 0 defaults to GOMAXPROCS. The first error encountered is
// returned (with the remaining runs still completing); results[i] is nil
// for the failed run.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
