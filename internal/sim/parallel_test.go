package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/scheduler"
)

// TestRunManyRecoversPanics is the regression test for the sweep-path
// crash bug: a panicking run must land in its own error slot instead of
// taking the whole process (and every sibling run) down.
func TestRunManyRecoversPanics(t *testing.T) {
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = small(scheduler.RCCR, int64(i))
	}
	boom := func(cfg Config) (*Result, error) {
		if cfg.Seed == 2 {
			panic("kaboom")
		}
		return &Result{Scheme: fmt.Sprint(cfg.Seed)}, nil
	}
	results, err := runMany(cfgs, 2, nil, boom)
	if err == nil {
		t.Fatal("panicking run must surface as an error")
	}
	if !strings.Contains(err.Error(), "run 2 panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error does not identify the panic: %v", err)
	}
	// The stack trace is attached so the panic is debuggable.
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("error lacks a stack trace: %.120s", err.Error())
	}
	for i, r := range results {
		if i == 2 {
			if r != nil {
				t.Error("panicked run should have a nil result")
			}
			continue
		}
		if r == nil || r.Scheme != fmt.Sprint(i) {
			t.Errorf("sibling run %d lost: %+v", i, r)
		}
	}
}

// TestRunManyJoinsAllErrors: every failing run contributes to the joined
// error, not just the first.
func TestRunManyJoinsAllErrors(t *testing.T) {
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = small(scheduler.RCCR, int64(i))
	}
	sentinel := errors.New("sentinel")
	results, err := runMany(cfgs, 3, nil, func(cfg Config) (*Result, error) {
		if cfg.Seed == 1 {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("run for seed %d: %w", cfg.Seed, sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("joined error lost the cause chain: %v", err)
	}
	for _, want := range []string{"seed 0", "seed 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if results[1] == nil {
		t.Error("successful run dropped amid failures")
	}
}

// TestRunManyConcurrencyRace hammers the worker pool with many tiny runs
// so `go test -race` can catch unsynchronized writes to the shared
// results/errs slices.
func TestRunManyConcurrencyRace(t *testing.T) {
	const n = 128
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = small(scheduler.RCCR, int64(i))
	}
	results, err := runMany(cfgs, 16, nil, func(cfg Config) (*Result, error) {
		if cfg.Seed%5 == 0 {
			return nil, fmt.Errorf("seed %d failed", cfg.Seed)
		}
		return &Result{NumJobs: int(cfg.Seed)}, nil
	})
	if err == nil {
		t.Fatal("expected joined failures")
	}
	for i, r := range results {
		if i%5 == 0 {
			if r != nil {
				t.Errorf("run %d should have failed", i)
			}
		} else if r == nil || r.NumJobs != i {
			t.Errorf("run %d result misplaced: %+v", i, r)
		}
	}
}

// TestRunManyProgress: the completion callback fires once per run —
// failures and panics included — with a strictly increasing done count and
// the correct total, serialized so callers need no locking of their own.
func TestRunManyProgress(t *testing.T) {
	const n = 32
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = small(scheduler.RCCR, int64(i))
	}
	var seen []int
	_, err := runMany(cfgs, 4, func(done, total int) {
		if total != n {
			t.Errorf("progress total = %d, want %d", total, n)
		}
		seen = append(seen, done)
	}, func(cfg Config) (*Result, error) {
		switch cfg.Seed % 3 {
		case 0:
			return nil, fmt.Errorf("seed %d failed", cfg.Seed)
		case 1:
			panic("progress should still tick")
		}
		return &Result{}, nil
	})
	if err == nil {
		t.Fatal("expected joined failures")
	}
	if len(seen) != n {
		t.Fatalf("progress fired %d times, want %d", len(seen), n)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence broken at %d: got %d", i, d)
		}
	}
}

// TestRunManyWorkerDefaults: non-positive worker counts fall back sanely.
func TestRunManyWorkerDefaults(t *testing.T) {
	cfgs := []Config{small(scheduler.RCCR, 1)}
	for _, workers := range []int{-1, 0, 99} {
		results, err := runMany(cfgs, workers, nil, func(Config) (*Result, error) {
			return &Result{}, nil
		})
		if err != nil || len(results) != 1 || results[0] == nil {
			t.Errorf("workers=%d: (%v, %v)", workers, results, err)
		}
	}
}
