package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// pendingRetry is an evicted job waiting out its backoff before re-entering
// the arrival queue.
type pendingRetry struct {
	rt *job.Runtime
	at int
}

// runState carries one run's mutable state through the per-slot phases.
// Both execution cores — the fixed-tick slot loop and the event queue —
// drive exactly these phase methods, in the same order at every simulated
// time, so their results are bit-identical by construction (pinned by the
// core-equivalence tests).
type runState struct {
	cfg     Config
	cl      *cluster.Cluster
	sched   scheduler.Scheduler
	clk     Clock
	inj     *faults.Injector
	res     *Result
	horizon int
	window  int
	workers int

	vms          []*vmState
	runtimes     []*job.Runtime
	longRuntimes []*job.Runtime
	nextArrival  int
	nextLong     int
	retries      []pendingRetry
	queue        []*job.Runtime
	maxVMCap     resource.Vector

	collector        metrics.UtilizationCollector
	clusterCollector metrics.UtilizationCollector
	outcomes         []predict.ErrorSample

	// Per-slot scratch, hoisted so the hot path does not reallocate.
	// unused/residentUse are copy-on-write: on quiescent table slots they
	// alias the snapshot's resident-table rows directly (strictly
	// read-only — see the aliasing contract on workload.ResidentTables),
	// and any path that must write per-VM entries first re-points them at
	// the run-owned backing buffers below.
	surge            []float64
	unused           []resource.Vector
	residentUse      []resource.Vector
	unusedOwned      []resource.Vector
	residentUseOwned []resource.Vector
	downMask         []bool
	surgeHits        []int
	views            []scheduler.VMView
	batcher          scheduler.BatchObserver
	hasBatcher       bool
	spanObs          scheduler.SpanObserver
	hasSpanObs       bool
	exec             []vmExecRecord
	spanRows         [][]resource.Vector
	// pendingScratch is placeQueued's reused spec-offer buffer. byID maps
	// every short job's ID to its runtime, built once per run; dupIDs
	// falls placeQueued back to a per-slot queue-only map (dupScratch)
	// when explicit specs carry duplicate IDs, preserving the historical
	// last-queued-wins lookup.
	pendingScratch []*job.Job
	byID           map[job.ID]*job.Runtime
	dupScratch     map[job.ID]*job.Runtime
	dupIDs         bool

	// Activity-proportional fast-path state (DESIGN.md §5i). tables holds
	// the snapshot's precomputed periodic resident vectors (nil disables
	// the telemetry fast path). downCount/downMask and longActive are
	// maintained incrementally at their transition points (advanceFaults,
	// long placement/finish) so the fast paths need no O(VMs) rescan.
	// activeJobs counts running short+long jobs per VM; execDirty marks
	// VMs whose cached exec record no longer matches what a full
	// executeVM pass would produce (job finished, fault transition).
	tables     *workload.ResidentTables
	downCount  int
	longActive int
	// shortActive counts running short jobs fleet-wide: incremented at
	// placement, decremented through the execute reduction's
	// rec.shortFinished replay and the fault-eviction path. The span
	// fast-forward's quiescence check reads it instead of scanning VMs.
	shortActive int
	activeJobs  []int32
	execDirty   []bool

	// Event-core state; unused by the slot loop.
	useEvents    bool
	events       eventQueue
	placeArmedAt int
}

// initScratch sizes the per-slot buffers once.
func (rs *runState) initScratch() {
	n := len(rs.vms)
	rs.unused = make([]resource.Vector, n)
	rs.residentUse = make([]resource.Vector, n)
	rs.unusedOwned = rs.unused
	rs.residentUseOwned = rs.residentUse
	rs.downMask = make([]bool, n)
	rs.surgeHits = make([]int, n)
	rs.views = make([]scheduler.VMView, n)
	rs.exec = make([]vmExecRecord, n)
	rs.activeJobs = make([]int32, n)
	rs.execDirty = make([]bool, n)
	for v := range rs.execDirty {
		// Every VM starts dirty: the first executeSlot must run a full
		// pass to seed the cached records.
		rs.execDirty[v] = true
	}
	rs.batcher, rs.hasBatcher = rs.sched.(scheduler.BatchObserver)
	rs.spanObs, rs.hasSpanObs = rs.sched.(scheduler.SpanObserver)
	rs.placeArmedAt = -1
	rs.byID = make(map[job.ID]*job.Runtime, len(rs.runtimes))
	for _, rt := range rs.runtimes {
		if _, dup := rs.byID[rt.Spec.ID]; dup {
			rs.dupIDs = true
		}
		rs.byID[rt.Spec.ID] = rt
	}
	if rs.dupIDs {
		rs.dupScratch = make(map[job.ID]*job.Runtime)
	}
}

// runSlotLoop is the original fixed-tick core: every phase is offered every
// slot, with the same cheap guards the monolithic loop used.
func (rs *runState) runSlotLoop() error {
	for t := 0; t < rs.horizon; t++ {
		if rs.inj != nil {
			rs.advanceFaults(t)
		}
		rs.placeLongArrivals(t)
		rs.observe(t)
		if t%rs.window == 0 {
			rs.refreshWindow(t)
		}
		rs.admitArrivals(t)
		rs.admitRetries(t)
		if len(rs.queue) > 0 {
			if err := rs.placeQueued(t); err != nil {
				return err
			}
		}
		rs.executeSlot(t)
	}
	return nil
}

// advanceFaults is phase 0: complete repairs, crash VMs/PMs and evict their
// jobs into the retry queue, and record the slot's surge factors and
// control-plane stalls. Only called when an injector exists.
func (rs *runState) advanceFaults(t int) {
	res := rs.res
	ev := rs.inj.Advance(t)
	res.Recovery.PMCrashes += ev.PMCrashes
	for _, v := range ev.Recovered {
		rs.vms[v].down = false
		rs.setDown(v, false)
		res.Recovery.VMRecoveries++
	}
	for _, v := range ev.Crashed {
		st := rs.vms[v]
		st.down = true
		rs.setDown(v, true)
		res.Recovery.VMCrashes++
		for _, rt := range st.running {
			rt.Evict(t)
			res.Recovery.Evictions++
			if rt.Retries >= rs.inj.Config().MaxRetries {
				// Retry budget exhausted: the job is abandoned and will
				// be accounted as an unfinished, failure-attributed SLO
				// violation.
				res.Recovery.RetriesExhausted++
				continue
			}
			rt.Retries++
			res.Recovery.Retries++
			at := t + rs.inj.Config().Backoff(rt.Retries)
			rs.retries = append(rs.retries, pendingRetry{rt, at})
			if rs.useEvents {
				rs.events.Push(at, evRetry, int(rt.Spec.ID))
			}
		}
		// Long-lived jobs die with the VM and are not retried; their
		// guaranteed reservations return to the pool.
		res.LongFailed += len(st.longRunning)
		rs.longActive -= len(st.longRunning)
		rs.shortActive -= len(st.running)
		rs.activeJobs[v] = 0
		st.running = nil
		st.hot = nil
		st.longRunning = nil
		st.freshInUse = resource.Vector{}
		st.oppInUse = resource.Vector{}
		st.longReserved = resource.Vector{}
	}
	if ev.DelayMicros > 0 {
		res.Overhead.AddComm(ev.DelayMicros)
		res.Recovery.Delays++
		res.Recovery.InjectedDelayMicros += ev.DelayMicros
	}
	rs.surge = ev.Surge
}

// setDown records VM v's up/down transition: the mask, the incremental
// up-VM count the refresh window charges from, and the execute cache (a
// cached exec record from before the transition no longer reflects the
// VM's ledgers — force a full pass). Every downMask transition must go
// through here so downCount never drifts from the mask.
func (rs *runState) setDown(v int, down bool) {
	if rs.downMask[v] != down {
		if down {
			rs.downCount++
		} else {
			rs.downCount--
		}
	}
	rs.downMask[v] = down
	rs.execDirty[v] = true
}

// placeLongArrivals is phase 1: place arriving long-lived jobs with the
// cooperating reservation method, largest guaranteed headroom first.
func (rs *runState) placeLongArrivals(t int) {
	for rs.nextLong < len(rs.longRuntimes) && rs.longRuntimes[rs.nextLong].Arrival <= t {
		rt := rs.longRuntimes[rs.nextLong]
		rs.nextLong++
		bestVM, bestVol := -1, -1.0
		need := rt.Spec.Request
		for v, st := range rs.vms {
			if st.down {
				continue
			}
			head := st.freshHeadroom()
			if !need.FitsIn(head) {
				continue
			}
			if vol := head.Volume(rs.maxVMCap); vol > bestVol {
				bestVM, bestVol = v, vol
			}
		}
		if bestVM < 0 {
			rs.res.LongUnplaced++
			continue
		}
		st := rs.vms[bestVM]
		st.longReserved = st.longReserved.Add(need)
		rt.VM = bestVM
		rt.Started = t
		rt.Allocated = need
		st.longRunning = append(st.longRunning, rt)
		rs.activeJobs[bestVM]++
		rs.longActive++
		rs.res.LongPlaced++
	}
}

// observe is phase 2: compute the actual unused resources (prediction
// target) per VM — the residents' slack, shrunk by any demand surge, plus
// the running long jobs' slack — and feed them to the predictor fleet.
// Failed VMs report no telemetry and offer no pool. The per-VM samples are
// independent ledger reads, so they shard across the worker budget with
// positional writes; the surge counter merges as an order-free int sum.
//
// Fast path: resident demand is periodic (job.DemandAt wraps
// t % len(Usage)), so when no surge is active and no long job is running
// the whole per-VM computation collapses to copying two precomputed rows
// out of the snapshot's ResidentTables — every entry of which was produced
// by the identical DemandAt/UnusedAt calls, so the values are bit-exact.
// Down VMs are re-zeroed from the incrementally maintained down mask. The
// surge-hit reset/sum is skipped: with surge == nil the slow path would
// zero every counter and add only zeros, and any later surge slot takes
// the slow path, which resets every entry before summing, so stale hits
// can never leak into Recovery.SurgeSlots.
func (rs *runState) observe(t int) {
	if rs.tables != nil && rs.surge == nil && rs.longActive == 0 {
		tab := rs.tables
		p := t % tab.Period
		if rs.downCount == 0 {
			// Copy-on-write: no entry needs patching, so the scratch
			// slices alias the (read-only) table rows directly instead of
			// copying 2×NumVMs vectors. Every downstream consumer —
			// predictor feeds, the execute reduction, timeline snapshots —
			// only reads them; any writing path below re-points the
			// slices at the run-owned buffers first.
			rs.residentUse = tab.DemandRow(p)
			rs.unused = tab.UnusedRow(p)
		} else {
			rs.residentUse = rs.residentUseOwned
			rs.unused = rs.unusedOwned
			copy(rs.residentUse, tab.DemandRow(p))
			copy(rs.unused, tab.UnusedRow(p))
			for v, d := range rs.downMask {
				if d {
					rs.unused[v] = resource.Vector{}
					rs.residentUse[v] = resource.Vector{}
				}
			}
		}
		rs.feedObservations()
		return
	}
	rs.residentUse = rs.residentUseOwned
	rs.unused = rs.unusedOwned
	surge := rs.surge
	shardIndexes(rs.workers, len(rs.vms), func(v int) {
		st := rs.vms[v]
		rs.downMask[v] = st.down
		rs.surgeHits[v] = 0
		if st.down {
			rs.unused[v] = resource.Vector{}
			rs.residentUse[v] = resource.Vector{}
			return
		}
		rs.residentUse[v] = st.resident.DemandAt(t)
		u := st.resident.UnusedAt(t)
		if surge != nil && surge[v] > 1 {
			rs.residentUse[v] = rs.residentUse[v].Scale(surge[v]).Min(st.reserved)
			u = st.reserved.Sub(rs.residentUse[v]).ClampNonNegative()
			rs.surgeHits[v] = 1
		}
		for _, rt := range st.longRunning {
			u = u.Add(rt.Spec.Request.Sub(rt.Spec.DemandAt(rt.Slots)).ClampNonNegative())
		}
		rs.unused[v] = u
	})
	if rs.inj != nil {
		for _, hit := range rs.surgeHits {
			rs.res.Recovery.SurgeSlots += hit
		}
	}
	rs.feedObservations()
}

// feedObservations hands the slot's unused vectors to the predictor fleet,
// batched when the scheduler supports it.
func (rs *runState) feedObservations() {
	if rs.hasBatcher {
		rs.batcher.ObserveAll(rs.unused, rs.downMask)
	} else {
		for v := range rs.vms {
			if !rs.downMask[v] {
				rs.sched.Observe(v, rs.unused[v])
			}
		}
	}
}

// refreshWindow is phase 3: refresh forecasts (timed — this is the
// prediction part of the allocation path), let adjusting schemes re-size
// running jobs' allocations, and charge the status-RPC fan-out.
func (rs *runState) refreshWindow(t int) {
	start := rs.clk.Now()
	rs.sched.Refresh()
	if adj, ok := rs.sched.(scheduler.Adjuster); ok {
		applyAdjustments(rs.vms, adj)
	}
	rs.res.Overhead.AddCompute(rs.clk.Now() - start)
	// One status RPC per VM to collect utilization reports; in a real
	// deployment this communication dominates the control loop, with the
	// predictor's compute as the increment on top (the paper: CORP's DNN
	// "increases the latency a little"). A crashed VM answers no status
	// probe, so it adds no round-trip to the control-plane total (see
	// DESIGN.md §5f on skip-vs-timeout). The up-VM count comes from the
	// incrementally maintained down counter instead of an O(VMs) mask
	// walk; AddCommRepeat performs the same repeated additions the old
	// loop did (a single fused n×latency add would not be bit-identical
	// once fault delays sit in the accumulator), and the adds are
	// identical so dropping the per-VM order cannot change the sum.
	rs.res.Overhead.AddCommRepeat(len(rs.vms)-rs.downCount, rs.cl.CommLatencyMicros)
}

// applyAdjustments re-sizes every running short job's allocation to the
// scheme's corrected amount. Opportunistic jobs swap their allocation
// freely (risk lands at execute time when the pool runs short); fresh jobs
// may only grow into real guaranteed headroom.
func applyAdjustments(vms []*vmState, adj scheduler.Adjuster) {
	for _, st := range vms {
		if st.down {
			continue
		}
		for i, rt := range st.running {
			// The hot entry carries the live slot counter and shadows the
			// allocation; the runtime's Slots is only synced at finish, so
			// the demand lookup must go through the hot index.
			h := &st.hot[i]
			newAlloc, changed := adj.AdjustAlloc(rt.Spec, h.d)
			if !changed {
				continue
			}
			if rt.Entity == 1 {
				st.oppInUse = st.oppInUse.Sub(rt.Allocated).ClampNonNegative().Add(newAlloc)
			} else {
				// Fresh increases are bounded by real headroom: capacity
				// minus the resident reservation, the long jobs'
				// guaranteed reservations, and fresh grants already out.
				headroom := st.freshHeadroom()
				grow := newAlloc.Sub(rt.Allocated).ClampNonNegative().Min(headroom)
				newAlloc = rt.Allocated.Min(newAlloc).Add(grow)
				st.freshInUse = st.freshInUse.Sub(rt.Allocated).ClampNonNegative().Add(newAlloc)
			}
			rt.Allocated = newAlloc
			h.alloc = newAlloc
		}
	}
}

// admitArrivals is phase 4a: move due arrivals into the queue. It reports
// whether any job was admitted (the event core arms a placement pass on
// admission).
func (rs *runState) admitArrivals(t int) bool {
	admitted := false
	for rs.nextArrival < len(rs.runtimes) && rs.runtimes[rs.nextArrival].Arrival <= t {
		rs.queue = append(rs.queue, rs.runtimes[rs.nextArrival])
		rs.nextArrival++
		admitted = true
	}
	return admitted
}

// admitRetries is phase 4b: move evicted jobs whose retry backoff has
// elapsed into the queue, preserving eviction order.
func (rs *runState) admitRetries(t int) bool {
	if len(rs.retries) == 0 {
		return false
	}
	admitted := false
	kept := rs.retries[:0]
	for _, pr := range rs.retries {
		if pr.at <= t {
			rs.queue = append(rs.queue, pr.rt)
			admitted = true
		} else {
			kept = append(kept, pr)
		}
	}
	rs.retries = kept
	return admitted
}

// placeQueued is phase 5: offer every queued job to the scheduler. Failed
// VMs drop out of the scheduler's view and re-enter when they recover.
func (rs *runState) placeQueued(t int) error {
	res := rs.res
	for v, st := range rs.vms {
		if st.down {
			rs.views[v] = scheduler.VMView{Down: true}
			continue
		}
		rs.views[v] = scheduler.VMView{
			FreshAvailable: st.freshHeadroom(),
			OppInUse:       st.oppInUse,
		}
	}
	if cap(rs.pendingScratch) < len(rs.queue) {
		rs.pendingScratch = make([]*job.Job, len(rs.queue))
	}
	pending := rs.pendingScratch[:len(rs.queue)]
	byID := rs.byID
	if rs.dupIDs {
		clear(rs.dupScratch)
		byID = rs.dupScratch
	}
	for i, rt := range rs.queue {
		pending[i] = rt.Spec
		if rs.dupIDs {
			byID[rt.Spec.ID] = rt
		}
	}
	start := rs.clk.Now()
	placements := rs.sched.Place(pending, rs.views)
	res.Overhead.AddCompute(rs.clk.Now() - start)
	anyPlaced := false
	for _, p := range placements {
		res.Overhead.AddComm(rs.cl.CommLatencyMicros)
		if len(p.Allocs) != len(p.Jobs) {
			return fmt.Errorf("sim: placement has %d allocs for %d jobs", len(p.Allocs), len(p.Jobs))
		}
		for idx, spec := range p.Jobs {
			rt := byID[spec.ID]
			if rt == nil {
				return fmt.Errorf("sim: scheduler placed unknown job %d", spec.ID)
			}
			if rt.VM >= 0 {
				return fmt.Errorf("sim: scheduler placed job %d twice", spec.ID)
			}
			rt.VM = p.VM
			rt.Started = t
			rt.Allocated = p.Allocs[idx]
			st := rs.vms[p.VM]
			if p.Opportunistic {
				st.oppInUse = st.oppInUse.Add(rt.Allocated)
				res.PlacedOpportunistic++
			} else {
				st.freshInUse = st.freshInUse.Add(rt.Allocated)
				res.PlacedFresh++
			}
			rt.Entity = boolToInt(p.Opportunistic)
			st.running = append(st.running, rt)
			st.hot = append(st.hot, hotShort{
				d:        rt.Spec.Usage[0],
				alloc:    rt.Allocated,
				duration: float64(rt.Spec.Duration),
				usage:    rt.Spec.Usage,
				opp:      p.Opportunistic,
			})
			rs.activeJobs[p.VM]++
			rs.shortActive++
			anyPlaced = true
			if rt.EvictedAt >= 0 {
				// An evicted job found a new home: record the
				// eviction-to-replacement gap.
				res.Recovery.Replaced++
				res.Recovery.ReplaceSlots += t - rt.EvictedAt
				rt.EvictedAt = -1
			}
		}
	}
	if anyPlaced {
		// A placed job has VM ≥ 0 (set above); everything queued is either
		// unplaced or evicted, both VM = -1 — so the runtime itself is the
		// placed set, no side table needed.
		kept := rs.queue[:0]
		for _, rt := range rs.queue {
			if rt.VM < 0 {
				kept = append(kept, rt)
			}
		}
		rs.queue = kept
	}
	return nil
}

// executeSlot is phases 6–7: run one slot on every up VM, fold the slot's
// ledger sums into the collectors, snapshot the timeline, and drain matured
// prediction errors.
//
// The per-VM work — demand lookups, grant scaling, runtime advancement and
// ledger updates — is VM-local, so it shards across the worker budget with
// each VM writing its contribution into a positional record. The records
// are then reduced serially in VM index order, replaying the exact
// per-value addition sequence of the original monolithic loop; since
// floating-point addition is not associative, this positional-merge recipe
// (not per-shard partial sums) is what keeps any worker count bit-identical
// to the serial run.
// Idle VMs — no running short or long job and no pending fault/finish
// transition — are skipped entirely: their cached vmExecRecord from the
// last full pass still holds exactly the values a fresh pass would produce
// (ledger snapshots only change through placements, adjustments, finishes
// and faults, all of which either imply activeJobs > 0 or set execDirty),
// and the per-slot resident demand is read live from rs.residentUse in the
// reduction rather than from the record. The reduction still walks every
// record in VM index order, so the collector sums see identical values in
// an identical order at any worker count.
func (rs *runState) executeSlot(t int) {
	var acc slotAccum
	if rs.workers <= 1 {
		// Fused serial pass: execute and fold each VM in index order in one
		// sweep. Active VMs fold their contributions inside executeVM as the
		// values are produced (no shortExecRec materialization); idle VMs
		// replay their cached record through the same fold the sharded
		// reduction uses. Per accumulator the added values and their order
		// are identical to the shard-then-reduce path, so both are
		// bit-identical at any worker count.
		for v := range rs.vms {
			if rs.activeJobs[v] == 0 && !rs.execDirty[v] {
				rs.foldExecRec(v, &rs.exec[v], &acc)
				continue
			}
			rs.execDirty[v] = false
			rs.executeVM(t, v, &acc)
		}
	} else {
		shardIndexes(rs.workers, len(rs.vms), func(v int) {
			if rs.activeJobs[v] == 0 && !rs.execDirty[v] {
				return
			}
			rs.execDirty[v] = false
			rs.executeVM(t, v, nil)
		})
		// Serial reduction in VM index order, matching the monolithic
		// loop's interleaving: cluster ledger adds, resident demand, long
		// grants, then the short jobs' allocation/served/demand triple,
		// per VM.
		for v := range rs.exec {
			rs.foldExecRec(v, &rs.exec[v], &acc)
		}
	}
	slotAllocated := acc.allocated
	slotDemand := acc.demand
	slotOppAlloc := acc.oppAlloc
	slotClusterAlloc := acc.clusterAlloc
	slotClusterDemand := acc.clusterDemand
	rs.collector.Observe(slotAllocated, slotDemand)
	// Cluster-wide allocation = Σ over VMs of (resident reservation +
	// long-job reservations + fresh grants) + the opportunistic grants.
	// Fresh short-job allocations already sit in the per-VM freshInUse
	// ledger summed above, so only the opportunistic share — which lives
	// outside the guaranteed ledgers — is added on top; adding all of
	// slotAllocated would count every fresh allocation twice.
	rs.clusterCollector.Observe(slotClusterAlloc.Add(slotOppAlloc), slotClusterDemand)
	if rs.cfg.RecordTimeline {
		rs.res.Timeline = append(rs.res.Timeline, snapshotTimeline(
			t, rs.cfg.Weights, slotAllocated, slotDemand,
			slotClusterAlloc.Add(slotOppAlloc), slotClusterDemand,
			rs.unused, rs.vms, len(rs.queue)))
	}

	// Drain matured prediction errors; only steady-state samples (past the
	// warmup) count toward the Fig. 6 metric.
	drained := rs.sched.DrainOutcomes()
	if t >= rs.cfg.Warmup {
		// Only the CPU samples feed the Fig. 6 error-rate metric
		// (finalize); dropping the other kinds here keeps the
		// run-long accumulation a third of the size.
		for _, o := range drained {
			if o.Kind == resource.CPU {
				rs.outcomes = append(rs.outcomes, o)
			}
		}
	}
}

// shortExecRec is one short job's slot contribution to the positional merge.
type shortExecRec struct {
	alloc   resource.Vector
	granted resource.Vector
	opp     bool
}

// slotAccum carries one slot's running collector sums. Each field is an
// independent floating-point addition chain; keeping the added values and
// their order fixed across execution strategies is what keeps every worker
// count bit-identical.
type slotAccum struct {
	allocated     resource.Vector // short-job allocations
	demand        resource.Vector // short-job served demand
	oppAlloc      resource.Vector // opportunistic share of allocated
	clusterAlloc  resource.Vector
	clusterDemand resource.Vector
}

// foldExecRec adds VM v's execution record into the slot sums — the per-VM
// body of the serial reduction, also used by the fused serial pass to
// replay idle VMs' cached records.
func (rs *runState) foldExecRec(v int, rec *vmExecRecord, acc *slotAccum) {
	if rec.skip {
		return
	}
	acc.clusterAlloc = acc.clusterAlloc.Add(rec.reserved).Add(rec.freshInUse).Add(rec.longReserved)
	acc.clusterDemand = acc.clusterDemand.Add(rs.residentUse[v])
	for _, g := range rec.longGrants {
		acc.clusterDemand = acc.clusterDemand.Add(g)
	}
	for i := range rec.shorts {
		s := &rec.shorts[i]
		acc.allocated = acc.allocated.Add(s.alloc)
		if s.opp {
			acc.oppAlloc = acc.oppAlloc.Add(s.alloc)
		}
		acc.demand = acc.demand.Add(s.granted)
		acc.clusterDemand = acc.clusterDemand.Add(s.granted)
	}
	rs.res.LongFinished += rec.longFinished
	// rec.longFinished/shortFinished are non-zero only on the finishing
	// slot's record: the finish marks the VM dirty, and the forced full
	// pass next slot resets them to zero before the record can be reused.
	rs.longActive -= rec.longFinished
	rs.shortActive -= rec.shortFinished
}

// hotShort is one running short job's execution state, packed into the
// VM's dense hot array (vmState.hot, index-parallel with vmState.running).
// At the scale profile executeVM visits millions of job-slots; reading
// them through *Runtime costs three dependent cache misses per job-slot
// (the runtime, its spec, the usage element), while this layout streams one
// sequential array. uidx is slots mod len(usage), maintained by a
// compare-wrap increment so the per-slot demand lookup (job.DemandAt's
// wrap-around) needs no integer division. progress/slots shadow the
// Runtime fields and are written back on finish and at finalize; alloc
// shadows Runtime.Allocated and is updated in lockstep by adjustments.
//
// d carries usage[uidx], the current slot's demand: every consumer of the
// per-slot demand (the wantOpp fold, the advance pass, adjustments) reads
// it from the sequential hot array, and the one gather into the job's
// usage series happens at the tail of the advance pass — as a store with
// no dependent consumer, so the per-job cache misses overlap instead of
// serializing the fold.
//
// usage aliases Spec.Usage; the trace generator packs every series into
// one contiguous arena (see trace.GenerateShortJobs), so these gathers
// land on a few shared hot pages rather than one generator-allocated heap
// page per job.
type hotShort struct {
	d        resource.Vector // usage[uidx], the current slot's demand
	alloc    resource.Vector
	progress float64
	duration float64           // float64(Spec.Duration), the finish threshold
	usage    []resource.Vector // aliases Spec.Usage
	slots    int32
	uidx     int32
	opp      bool
}

// vmExecRecord is one VM's slot contribution: ledger snapshots taken before
// job advancement plus the per-job grant sequence, in running-list order.
// For an idle VM the record is reused verbatim across slots (see
// executeSlot); the per-slot resident demand deliberately lives outside it,
// read from rs.residentUse at reduction time.
type vmExecRecord struct {
	skip         bool
	reserved     resource.Vector
	freshInUse   resource.Vector
	longReserved resource.Vector
	longGrants   []resource.Vector
	longFinished int
	// shortFinished counts short jobs that completed this slot; like
	// longFinished it is non-zero only on the finishing slot's record
	// (the finish marks the VM dirty, forcing a resetting full pass
	// before the record can be replayed for an idle VM).
	shortFinished int
	shorts        []shortExecRec
}

// rebuildHot reconstructs the dense hot array from the running list. The
// simulator maintains the pair incrementally (placement appends, execute
// compacts, crashes clear); this exists for tests that assemble vmStates
// directly.
func (st *vmState) rebuildHot() {
	st.hot = st.hot[:0]
	for _, rt := range st.running {
		h := hotShort{
			alloc:    rt.Allocated,
			progress: rt.Progress,
			duration: float64(rt.Spec.Duration),
			usage:    rt.Spec.Usage,
			slots:    int32(rt.Slots),
			opp:      rt.Entity == 1,
		}
		if len(h.usage) > 0 {
			h.uidx = h.slots % int32(len(h.usage))
			h.d = h.usage[h.uidx]
		}
		st.hot = append(st.hot, h)
	}
}

// executeVM runs slot t on VM v: advance long then short jobs, apply the
// opportunistic-pool scale factor, update the VM's ledgers, and record the
// contribution sequence for the serial reduction. Everything touched here
// is owned by VM v (its state, its runtimes), so the shard is race-free.
//
// With a non-nil acc (the fused serial pass) the contributions are folded
// into the slot sums directly, at exactly the points the reduction's
// per-VM replay would add them, and the per-job record slices are left
// empty — a VM only becomes idle (cached-record replay) with no running
// jobs, so an empty shorts/longGrants is exactly what a fresh pass would
// record for it.
func (rs *runState) executeVM(t, v int, acc *slotAccum) {
	st := rs.vms[v]
	rec := &rs.exec[v]
	rec.longGrants = rec.longGrants[:0]
	rec.shorts = rec.shorts[:0]
	rec.longFinished = 0
	rec.shortFinished = 0
	rec.skip = st.down
	if st.down {
		return
	}
	// Ledger snapshot before completions release reservations: the
	// monolithic loop added these before advancing any job.
	rec.reserved, rec.freshInUse, rec.longReserved = st.reserved, st.freshInUse, st.longReserved
	if acc != nil {
		acc.clusterAlloc = acc.clusterAlloc.Add(rec.reserved).Add(rec.freshInUse).Add(rec.longReserved)
		acc.clusterDemand = acc.clusterDemand.Add(rs.residentUse[v])
	}

	// Long-lived jobs run with guaranteed allocations.
	keptLong := st.longRunning[:0]
	for _, rt := range st.longRunning {
		granted := rt.Spec.DemandAt(rt.Slots).Min(rt.Allocated)
		if acc != nil {
			acc.clusterDemand = acc.clusterDemand.Add(granted)
		} else {
			rec.longGrants = append(rec.longGrants, granted)
		}
		rt.Advance(granted)
		if rt.Progress >= float64(rt.Spec.Duration)-1e-9 {
			rt.Finished = t
			st.longReserved = st.longReserved.Sub(rt.Allocated).ClampNonNegative()
			rec.longFinished++
			rs.activeJobs[v]--
			rs.execDirty[v] = true
		} else {
			keptLong = append(keptLong, rt)
		}
	}
	st.longRunning = keptLong

	// Opportunistic pool: what the residents truly left unused. The first
	// pass folds the opportunistic jobs' want = min(demand, allocated) in
	// running-list order, exactly as before; the demand lookups hit the
	// dense hot array, not the runtimes.
	pool := rs.unused[v]
	hot := st.hot
	var wantOpp resource.Vector
	for i := range hot {
		if h := &hot[i]; h.opp {
			wantOpp = wantOpp.Add(h.d.Min(h.alloc))
		}
	}
	// Per-kind scale factor when the pool is oversubscribed.
	var scale resource.Vector
	for k := range scale {
		if wantOpp[k] <= pool[k] || wantOpp[k] == 0 {
			scale[k] = 1
		} else {
			scale[k] = pool[k] / wantOpp[k]
		}
	}
	// Advance in place with positional record writes (no append/struct-copy
	// per job-slot); the running/hot arrays are only compacted afterwards,
	// on the rare slots where a job actually finished. The fused pass folds
	// each job's contribution straight into the slot sums instead of
	// materializing it.
	if acc == nil {
		if cap(rec.shorts) < len(hot) {
			rec.shorts = make([]shortExecRec, len(hot))
		}
		rec.shorts = rec.shorts[:len(hot)]
	}
	for i := range hot {
		h := &hot[i]
		d := h.d
		granted := d.Min(h.alloc) // the want the first pass folded
		if h.opp {
			granted = granted.Mul(scale)
		}
		if acc != nil {
			acc.allocated = acc.allocated.Add(h.alloc)
			if h.opp {
				acc.oppAlloc = acc.oppAlloc.Add(h.alloc)
			}
			acc.demand = acc.demand.Add(granted)
			acc.clusterDemand = acc.clusterDemand.Add(granted)
		} else {
			s := &rec.shorts[i]
			s.alloc = h.alloc
			s.granted = granted
			s.opp = h.opp
		}
		h.progress += job.ProgressRate(granted, d)
		h.slots++
		if h.uidx++; int(h.uidx) == len(h.usage) {
			h.uidx = 0
		}
		h.d = h.usage[h.uidx] // next slot's demand: a pure prefetch store
		if h.progress >= h.duration-1e-9 {
			rt := st.running[i]
			rt.Finished = t
			rt.Progress = h.progress
			rt.Slots = int(h.slots)
			if h.opp {
				st.oppInUse = st.oppInUse.Sub(h.alloc).ClampNonNegative()
			} else {
				st.freshInUse = st.freshInUse.Sub(h.alloc).ClampNonNegative()
			}
			rs.activeJobs[v]--
			rs.execDirty[v] = true
			rec.shortFinished++
		}
	}
	if rec.shortFinished > 0 {
		// Order-preserving compaction of both parallel arrays. The finish
		// predicate is stable: progress only grew past the threshold for
		// the jobs marked above.
		kept := st.running[:0]
		keptHot := hot[:0]
		for i := range hot {
			if h := &hot[i]; h.progress < h.duration-1e-9 {
				kept = append(kept, st.running[i])
				keptHot = append(keptHot, *h)
			}
		}
		st.running = kept
		st.hot = keptHot
	}
	if acc != nil {
		// The integer bookkeeping foldExecRec would have replayed.
		rs.res.LongFinished += rec.longFinished
		rs.longActive -= rec.longFinished
		rs.shortActive -= rec.shortFinished
	}
}

// finalize computes the run's aggregate metrics from the collectors and
// per-job runtimes.
func (rs *runState) finalize() *Result {
	cfg, res := rs.cfg, rs.res
	// Jobs still running at the horizon carry their live progress in the
	// VMs' hot arrays (the Runtime fields are only synced at finish); write
	// it back before the per-runtime accounting below reads it.
	for _, st := range rs.vms {
		for i, rt := range st.running {
			rt.Progress = st.hot[i].progress
			rt.Slots = int(st.hot[i].slots)
		}
	}
	for _, k := range resource.Kinds() {
		res.Utilization[k] = rs.collector.Utilization(k)
		res.ClusterUtilization[k] = rs.clusterCollector.Utilization(k)
	}
	res.Overall = rs.collector.Overall(cfg.Weights)
	res.Wastage = 1 - res.Overall
	res.ClusterOverall = rs.clusterCollector.Overall(cfg.Weights)

	cpuCap := rs.cl.VMs[0].Capacity.At(resource.CPU)
	predOutcomes := make([]metrics.PredictionOutcome, 0, len(rs.outcomes))
	for _, o := range rs.outcomes {
		if o.Kind == resource.CPU {
			predOutcomes = append(predOutcomes, metrics.PredictionOutcome{Error: o.Error})
		}
	}
	res.PredictionSamples = len(predOutcomes)
	res.PredictionErrorRate = metrics.PredictionErrorRate(predOutcomes, cfg.Epsilon*cpuCap)

	var respSum, respN float64
	responses := make([]int, 0, len(rs.runtimes))
	serviceRates := make([]float64, 0, len(rs.runtimes))
	// Attribute each violated or unfinished job to its damage mechanism:
	// jobs evicted by a failure are failure damage, the rest starved on
	// opportunistic pools (the paper's fault-free mechanism). Only fault
	// runs attribute, so fault-free results stay bit-for-bit unchanged.
	attribute := func(rt *job.Runtime) {
		if rs.inj == nil {
			return
		}
		if rt.Evictions > 0 {
			res.Recovery.ViolationsFailure++
		} else {
			res.Recovery.ViolationsStarvation++
		}
	}
	for _, rt := range rs.runtimes {
		if rt.Done() {
			res.SLO.Finished++
			if rt.SLOViolated() {
				res.SLO.Violated++
				attribute(rt)
			}
			respSum += float64(rt.ResponseTime())
			respN++
			responses = append(responses, rt.ResponseTime())
		} else {
			res.SLO.Unfinished++
			attribute(rt)
			if rt.VM < 0 && rt.Evictions == 0 {
				res.NeverPlaced++
			}
		}
		if rt.Slots > 0 {
			serviceRates = append(serviceRates, rt.Progress/float64(rt.Slots))
		}
	}
	res.SLORate = res.SLO.ViolationRate()
	if respN > 0 {
		res.MeanResponseSlots = respSum / respN
	}
	if p, ok := metrics.PercentileInt(responses, 50); ok {
		res.ResponseP50 = p
	}
	if p, ok := metrics.PercentileInt(responses, 95); ok {
		res.ResponseP95 = p
	}
	res.Fairness = metrics.JainFairness(serviceRates)
	if te, ok := rs.sched.(interface{ TrainErrors() int }); ok {
		res.DNNTrainErrors = te.TrainErrors()
	}
	if tc, ok := rs.sched.(interface{ TierCounters() (int, int) }); ok {
		res.TierHits, res.TierEscalations = tc.TierCounters()
	}
	return res
}
