package sim

import (
	"sync"
	"sync/atomic"
)

// shardChunk is how many consecutive VM indices one work-stealing grab
// covers: large enough to amortize the atomic, small enough to balance
// uneven per-VM costs (a VM with a deep running list next to idle ones).
// It mirrors the scheduler engine's observeChunk.
const shardChunk = 8

// shardIndexes runs fn(i) for i in [0, n) on up to `workers` goroutines,
// handing out index chunks through an atomic cursor; with workers <= 1 it
// degrades to a plain loop. fn must only write state owned by index i —
// the simulator's per-VM phases (telemetry sampling, slot execution) rely
// on that for positional, order-independent results.
func shardIndexes(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(shardChunk)) - shardChunk
				if start >= n {
					return
				}
				end := start + shardChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
