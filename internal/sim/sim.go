// Package sim is the discrete-time cluster simulator that drives the
// paper's evaluation: resident (tenant) jobs hold reservations on VMs and
// use a fluctuating fraction of them; short-lived jobs arrive and are
// placed by one of the four provisioning schemes; opportunistic placements
// ride the residents' allocated-but-unused resources and starve when the
// prediction overestimated, turning prediction error into SLO violations.
//
// One Run produces every metric the paper reports: per-kind and overall
// utilization (Eqs. 1–2), the prediction error rate of Fig. 6, the SLO
// violation rate, and the scheduling overhead of Figs. 10/14.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workpool"
)

// Config parameterizes one simulation run.
type Config struct {
	// Profile selects the testbed (cluster or ec2).
	Profile cluster.Profile
	// NumPMs / NumVMs override testbed defaults when > 0.
	NumPMs, NumVMs int
	// Heterogeneous carves unequal VM sizes (see cluster.Config).
	Heterogeneous bool

	// NumJobs is |J|, the number of short-lived jobs (Table II: 50–300).
	// Zero defaults to 300.
	NumJobs int

	// Scheduler selects and configures the provisioning scheme.
	Scheduler scheduler.Config

	// Seed drives workload generation.
	Seed int64

	// Warmup is how many slots run before the first arrival, giving
	// predictors history (zero defaults to 90 slots = 15 minutes).
	Warmup int
	// ArrivalSpan is the span of slots over which jobs arrive (zero
	// defaults to 60).
	ArrivalSpan int
	// Drain is how many slots run after the last possible arrival (zero
	// defaults to 150 — enough for a 5-minute job plus SLO slack).
	Drain int

	// Epsilon is the prediction-error tolerance ε of the Fig. 6 metric
	// (relative to VM capacity). Zero defaults to 0.10.
	Epsilon float64

	// Weights are the ω of Eq. 2; zero defaults to 0.4/0.4/0.2.
	Weights resource.Weights

	// Residents overrides the tenant-load generator; the zero value uses
	// its defaults with Horizon matched to the run length.
	Residents trace.ResidentConfig

	// Jobs overrides the short-job generator; the zero value derives
	// VM-capacity-scaled defaults.
	Jobs trace.Config

	// ExplicitJobs, when non-nil, bypasses the generator entirely: the
	// run is driven by these specs (e.g. loaded from a real Google
	// task_usage table via trace.ReadGoogleTaskUsage). Arrivals are
	// still offset past the warmup; NumJobs is ignored.
	ExplicitJobs []*job.Job

	// Prepared supplies a pre-built workload snapshot (see
	// PrepareWorkload) instead of generating traces inside the run. The
	// snapshot is shared read-only — all per-run state lives on
	// job.Runtime wrappers — so one snapshot can drive any number of
	// concurrent runs. Its key must match what this config would
	// generate; Run fails fast on a mismatch rather than silently
	// simulating the wrong workload. Nil generates (or fetches from the
	// process-wide cache, when enabled) as usual.
	Prepared *workload.Snapshot

	// RecordTimeline captures a per-slot snapshot into Result.Timeline.
	RecordTimeline bool

	// Faults configures the deterministic fault-injection layer: VM/PM
	// crash-and-recover events, resident demand surges, and transient
	// scheduler delays. The zero value injects nothing and leaves the
	// run bit-for-bit identical to a fault-free simulation.
	Faults faults.Config

	// Clock times scheduler decisions for the overhead metric. Nil uses
	// the real wall clock; inject a *VirtualClock for deterministic
	// overhead (regression tests, the ext-faults figure).
	Clock Clock

	// LongJobs adds long-lived service jobs to the run (the cooperative
	// mixed-workload extension): they arrive over time, receive
	// guaranteed reservations from a simple headroom-greedy method — the
	// "other method for long-lived jobs" CORP cooperates with — and
	// their allocated-but-unused resources join the opportunistic pool
	// the short-job schemes harvest. Zero disables them.
	LongJobs int
	// Long overrides the long-job generator.
	Long trace.LongJobConfig

	// Workers sizes the intra-run parallel prediction engine. 0 (the
	// default) auto-sizes from the shared worker budget: the run claims
	// whatever slots RunMany's outer pool has not already taken, so
	// sweeps and intra-run parallelism compose without oversubscription.
	// 1 forces a serial run; values > 1 are honored as given. Results
	// are bit-identical at any worker count — Workers affects wall time
	// only. Run overwrites Scheduler.Workers with the resolved count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.NumJobs <= 0 {
		c.NumJobs = 300
	}
	if c.Warmup <= 0 {
		c.Warmup = 90
	}
	if c.ArrivalSpan <= 0 {
		c.ArrivalSpan = 60
	}
	if c.Drain <= 0 {
		c.Drain = 150
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.10
	}
	if c.Weights == (resource.Weights{}) {
		c.Weights = resource.DefaultWeights()
	}
	if c.Residents.ReservedShare <= 0 {
		// 60% reserved leaves realistic fresh headroom for the
		// demand-based schemes while keeping a deep unused pool.
		c.Residents.ReservedShare = 0.6
	}
	if c.Scheduler.Scheme == scheduler.CORP && c.Scheduler.Corp.Pth <= 0 {
		// Table II's P_th = 0.95 is calibrated to the paper's trace; on
		// the synthetic trace the empirical in-band rate tops out lower,
		// so the experiment layer defaults the gate to 0.7 (Fig. 8
		// sweeps it). See EXPERIMENTS.md.
		c.Scheduler.Corp.Pth = 0.7
	}
	return c
}

// Result aggregates one run's metrics.
type Result struct {
	Scheme  string
	Profile string
	NumJobs int
	Slots   int

	// Utilization per kind (Eq. 1 pooled over slots) and overall (Eq. 2),
	// computed over the submitted short-lived jobs — Eq. 1's n_t is "the
	// number of jobs submitted at time slot t". This is the headline
	// metric of Figs. 7/8/11/12: demand served over resources allocated.
	Utilization [resource.NumKinds]float64
	Overall     float64
	// Wastage is 1 − Overall (Eq. 4).
	Wastage float64

	// ClusterUtilization pools residents and short jobs together: the
	// whole-cluster view (demand over all reservations + allocations).
	ClusterUtilization [resource.NumKinds]float64
	ClusterOverall     float64

	// PredictionErrorRate is Fig. 6's metric: the fraction of matured
	// CPU-kind predictions with error outside [0, ε·cap).
	PredictionErrorRate float64
	PredictionSamples   int

	// SLO tallies.
	SLO     metrics.SLOStats
	SLORate float64

	// Overhead of allocating resources to all jobs: scheduler decision
	// wall time plus simulated communication, as in Figs. 10/14.
	Overhead metrics.LatencyTracker

	// Placement accounting.
	PlacedOpportunistic int
	PlacedFresh         int
	NeverPlaced         int
	MeanResponseSlots   float64

	// Response-time percentiles over finished short jobs (slots).
	ResponseP50 int
	ResponseP95 int
	// Fairness is Jain's index over the short jobs' mean service rates.
	Fairness float64

	// Long-lived job accounting (mixed-workload runs). LongFailed counts
	// long jobs killed by VM failures (they are not retried; their
	// reservations return to the pool).
	LongPlaced   int
	LongUnplaced int
	LongFinished int
	LongFailed   int

	// Recovery aggregates the fault-injection layer's accounting:
	// crashes, evictions, retries, time-to-replace, and the
	// starvation-versus-failure attribution of SLO violations. All zero
	// in fault-free runs.
	Recovery metrics.RecoveryStats

	// DNNTrainErrors counts online training samples the CORP brain
	// rejected during the run (always zero for healthy feeds; non-zero
	// means the predictor silently stopped learning part of its input).
	// Zero for schemes without an online DNN.
	DNNTrainErrors int

	// Timeline holds per-slot snapshots when Config.RecordTimeline is
	// set (nil otherwise).
	Timeline []TimelinePoint
}

// vmState is the simulator's physical ledger for one VM.
type vmState struct {
	capacity     resource.Vector
	reserved     resource.Vector // resident reservation
	freshInUse   resource.Vector // short-job allocations from headroom
	oppInUse     resource.Vector // short-job allocations from predicted-unused
	longReserved resource.Vector // long-lived jobs' guaranteed reservations
	resident     *job.Job
	running      []*job.Runtime
	longRunning  []*job.Runtime
	down         bool // failed by fault injection; recovers later
}

// freshHeadroom is the guaranteed capacity still unallocated on the VM.
func (st *vmState) freshHeadroom() resource.Vector {
	return st.capacity.Sub(st.reserved).Sub(st.longReserved).Sub(st.freshInUse).ClampNonNegative()
}

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	// Size the intra-run prediction engine from the shared worker budget.
	// Auto (0) claims the remaining budget — RunMany claims its outer
	// slots first, so nested parallelism never oversubscribes; an
	// explicit count > 1 runs at the requested width and the claim is
	// advisory accounting for any sibling auto-sized runs.
	workers := cfg.Workers
	claimed := 0
	if workers == 0 {
		claimed = workpool.ClaimUpTo(workpool.Limit())
		workers = claimed
		if workers < 1 {
			workers = 1
		}
	} else if workers > 1 {
		claimed = workpool.ClaimUpTo(workers)
	}
	if claimed > 0 {
		defer workpool.Release(claimed)
	}
	cfg.Scheduler.Workers = workers

	cl, err := cluster.New(cluster.Config{
		Profile: cfg.Profile, NumPMs: cfg.NumPMs, NumVMs: cfg.NumVMs,
		Heterogeneous: cfg.Heterogeneous,
	})
	if err != nil {
		return nil, err
	}
	horizon := cfg.Warmup + cfg.ArrivalSpan + cfg.Drain

	// Workload snapshot: residents, short jobs, history and long jobs for
	// this config's (seed, workload) key — supplied pre-built, fetched
	// from the process-wide cache, or generated here. The snapshot is
	// shared read-only; every run-local adjustment below (the warmup
	// arrival offsets) lands on per-run job.Runtime state, never on the
	// shared specs.
	vmCaps := make([]resource.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		vmCaps[i] = vm.Capacity
	}
	params := workloadParams(cfg, vmCaps)
	snap := cfg.Prepared
	if snap == nil {
		if snap, err = snapshotFor(params); err != nil {
			return nil, err
		}
	} else if snap.Key() != params.Key() {
		return nil, fmt.Errorf("sim: prepared workload key %.12s does not match config key %.12s", snap.Key(), params.Key())
	}
	residents := snap.Residents()

	// Short-lived jobs, arrivals offset past the warmup (on runtime
	// state, below). Explicit specs (e.g. a loaded real trace) take
	// precedence over the generator.
	var shortJobs []*job.Job
	if cfg.ExplicitJobs != nil {
		shortJobs = make([]*job.Job, len(cfg.ExplicitJobs))
		for i, j := range cfg.ExplicitJobs {
			if err := j.Validate(); err != nil {
				return nil, fmt.Errorf("sim: explicit job: %w", err)
			}
			shortJobs[i] = j
		}
		sort.SliceStable(shortJobs, func(a, b int) bool {
			return shortJobs[a].Arrival < shortJobs[b].Arrival
		})
		cfg.NumJobs = len(shortJobs)
		// Explicit arrivals may extend past the configured span; widen
		// the horizon so every job gets its drain period.
		if n := len(shortJobs); n > 0 {
			if last := shortJobs[n-1].Arrival + cfg.Warmup; last+cfg.Drain > horizon {
				horizon = last + cfg.Drain
			}
		}
	} else {
		shortJobs = snap.ShortJobs()
	}

	sched, err := scheduler.New(cfg.Scheduler, cl)
	if err != nil {
		return nil, err
	}

	// The oracle upper bound receives the true future unused series
	// (residents only; in mixed runs the long jobs' contribution stays
	// unknown even to the oracle).
	if cfg.Scheduler.Scheme == scheduler.Oracle {
		futures := make([][]resource.Vector, len(residents))
		for v, r := range residents {
			series := make([]resource.Vector, horizon)
			for t := 0; t < horizon; t++ {
				series[t] = r.UnusedAt(t)
			}
			futures[v] = series
		}
		scheduler.SetFutures(sched, futures)
	}

	// CORP trains its DNN on historical trace data before deployment
	// ("we first used the deep learning algorithm to predict ... based on
	// the historical resource usage data from the Google trace"): feed a
	// batch of sibling resident series through the scheduler's predictors
	// ahead of the run. Observations only — no predictions are recorded,
	// so the error statistics stay untouched.
	if cfg.Scheduler.Scheme == scheduler.CORP {
		history, histHorizon, err := snap.History()
		if err != nil {
			return nil, err
		}
		// History predates the run; the bounded per-VM windows flush it
		// naturally during the warmup as live samples displace it.
		for v, h := range history {
			for t := 0; t < histHorizon; t++ {
				sched.Observe(v, h.UnusedAt(t))
			}
		}
	}

	vms := make([]*vmState, len(cl.VMs))
	for i, vm := range cl.VMs {
		vms[i] = &vmState{
			capacity: vm.Capacity,
			reserved: residents[i].Request,
			resident: residents[i],
		}
	}

	runtimes := make([]*job.Runtime, len(shortJobs))
	for i, j := range shortJobs {
		runtimes[i] = job.NewRuntimeAt(j, j.Arrival+cfg.Warmup)
	}

	// Long-lived service jobs for the cooperative mixed workload; they
	// start arriving mid-warmup.
	var longRuntimes []*job.Runtime
	for _, j := range snap.LongJobs() {
		longRuntimes = append(longRuntimes, job.NewRuntimeAt(j, j.Arrival+cfg.Warmup/2))
	}
	nextLong := 0

	clk := cfg.Clock
	if clk == nil {
		clk = NewWallClock()
	}

	// Fault injection: a zero-valued Faults config takes the fault-free
	// path untouched (no injector, no RNG draws, identical results).
	var inj *faults.Injector
	if cfg.Faults.Enabled() {
		fcfg := cfg.Faults
		fcfg.Seed ^= cfg.Seed
		vmToPM := make([]int, len(cl.VMs))
		for i, vm := range cl.VMs {
			vmToPM[i] = vm.PM
		}
		inj = faults.NewInjector(fcfg, vmToPM)
	}
	// retryAt holds evicted jobs waiting out their backoff before
	// re-entering the arrival queue.
	type pendingRetry struct {
		rt *job.Runtime
		at int
	}
	var retries []pendingRetry

	res := &Result{
		Scheme:  sched.Name(),
		Profile: cfg.Profile.String(),
		NumJobs: cfg.NumJobs,
		Slots:   horizon,
	}
	var collector, clusterCollector metrics.UtilizationCollector
	var outcomes []predict.ErrorSample
	var queue []*job.Runtime
	nextArrival := 0
	window := sched.Window()
	// VM capacities never change mid-run; compute the volume-normalising
	// reference once instead of rescanning every VM per candidate in the
	// long-job placement loop below.
	maxVMCap := cl.MaxVMCapacity()

	// Per-slot buffers, hoisted out of the loop so the hot path does not
	// reallocate them every slot. batcher is resolved once: the engine's
	// ObserveAll fans the per-VM predictor updates across its workers.
	unused := make([]resource.Vector, len(vms))
	residentUse := make([]resource.Vector, len(vms))
	downMask := make([]bool, len(vms))
	views := make([]scheduler.VMView, len(vms))
	batcher, hasBatcher := sched.(scheduler.BatchObserver)

	for t := 0; t < horizon; t++ {
		// 0. Fault injection: complete repairs, then crash VMs/PMs and
		// evict their jobs into the retry queue; the slot's surge factors
		// and control-plane stalls apply below.
		var surge []float64
		if inj != nil {
			ev := inj.Advance(t)
			res.Recovery.PMCrashes += ev.PMCrashes
			for _, v := range ev.Recovered {
				vms[v].down = false
				res.Recovery.VMRecoveries++
			}
			for _, v := range ev.Crashed {
				st := vms[v]
				st.down = true
				res.Recovery.VMCrashes++
				for _, rt := range st.running {
					rt.Evict(t)
					res.Recovery.Evictions++
					if rt.Retries >= inj.Config().MaxRetries {
						// Retry budget exhausted: the job is abandoned
						// and will be accounted as an unfinished,
						// failure-attributed SLO violation.
						res.Recovery.RetriesExhausted++
						continue
					}
					rt.Retries++
					res.Recovery.Retries++
					retries = append(retries, pendingRetry{rt, t + inj.Config().Backoff(rt.Retries)})
				}
				// Long-lived jobs die with the VM and are not retried;
				// their guaranteed reservations return to the pool.
				res.LongFailed += len(st.longRunning)
				st.running = nil
				st.longRunning = nil
				st.freshInUse = resource.Vector{}
				st.oppInUse = resource.Vector{}
				st.longReserved = resource.Vector{}
			}
			if ev.DelayMicros > 0 {
				res.Overhead.AddComm(ev.DelayMicros)
				res.Recovery.Delays++
				res.Recovery.InjectedDelayMicros += ev.DelayMicros
			}
			surge = ev.Surge
		}

		// 1. Place arriving long-lived jobs with the cooperating
		// reservation method: largest guaranteed headroom first.
		for nextLong < len(longRuntimes) && longRuntimes[nextLong].Arrival <= t {
			rt := longRuntimes[nextLong]
			nextLong++
			bestVM, bestVol := -1, -1.0
			need := rt.Spec.Request
			for v, st := range vms {
				if st.down {
					continue
				}
				head := st.freshHeadroom()
				if !need.FitsIn(head) {
					continue
				}
				if vol := head.Volume(maxVMCap); vol > bestVol {
					bestVM, bestVol = v, vol
				}
			}
			if bestVM < 0 {
				res.LongUnplaced++
				continue
			}
			st := vms[bestVM]
			st.longReserved = st.longReserved.Add(need)
			rt.VM = bestVM
			rt.Started = t
			rt.Allocated = need
			st.longRunning = append(st.longRunning, rt)
			res.LongPlaced++
		}

		// 2. Observe actual unused resources (prediction target): the
		// residents' slack (shrunk by any demand surge) plus the running
		// long jobs' slack. Failed VMs report no telemetry and offer no
		// pool; their predictors hold stale state until recovery. The
		// samples are computed serially (cheap ledger reads), then fed to
		// the predictor fleet in one batch so the engine can shard the
		// expensive per-VM updates across its workers.
		for v, st := range vms {
			downMask[v] = st.down
			if st.down {
				unused[v] = resource.Vector{}
				residentUse[v] = resource.Vector{}
				continue
			}
			residentUse[v] = st.resident.DemandAt(t)
			u := st.resident.UnusedAt(t)
			if surge != nil && surge[v] > 1 {
				residentUse[v] = residentUse[v].Scale(surge[v]).Min(st.reserved)
				u = st.reserved.Sub(residentUse[v]).ClampNonNegative()
				res.Recovery.SurgeSlots++
			}
			for _, rt := range st.longRunning {
				u = u.Add(rt.Spec.Request.Sub(rt.Spec.DemandAt(rt.Slots)).ClampNonNegative())
			}
			unused[v] = u
		}
		if hasBatcher {
			batcher.ObserveAll(unused, downMask)
		} else {
			for v := range vms {
				if !downMask[v] {
					sched.Observe(v, unused[v])
				}
			}
		}

		// 3. Refresh forecasts once per window (timed: this is the
		// prediction part of the allocation path), and let adjusting
		// schemes re-size running jobs' allocations to current demand.
		if t%window == 0 {
			start := clk.Now()
			sched.Refresh()
			if adj, ok := sched.(scheduler.Adjuster); ok {
				for _, st := range vms {
					if st.down {
						continue
					}
					for _, rt := range st.running {
						newAlloc, changed := adj.AdjustAlloc(rt.Spec, rt.Spec.DemandAt(rt.Slots))
						if !changed {
							continue
						}
						if rt.Entity == 1 {
							st.oppInUse = st.oppInUse.Sub(rt.Allocated).ClampNonNegative().Add(newAlloc)
						} else {
							// Fresh increases are bounded by real headroom.
							headroom := st.capacity.Sub(st.reserved).Sub(st.freshInUse).ClampNonNegative()
							grow := newAlloc.Sub(rt.Allocated).ClampNonNegative().Min(headroom)
							newAlloc = rt.Allocated.Min(newAlloc).Add(grow)
							st.freshInUse = st.freshInUse.Sub(rt.Allocated).ClampNonNegative().Add(newAlloc)
						}
						rt.Allocated = newAlloc
					}
				}
			}
			res.Overhead.AddCompute(clk.Now() - start)
			// One status RPC per VM to collect utilization reports; in a
			// real deployment this communication dominates the control
			// loop, with the predictor's compute as the increment on top
			// (the paper: CORP's DNN "increases the latency a little").
			for range vms {
				res.Overhead.AddComm(cl.CommLatencyMicros)
			}
		}

		// 4. Admit arrivals into the queue, then evicted jobs whose retry
		// backoff has elapsed.
		for nextArrival < len(runtimes) && runtimes[nextArrival].Arrival <= t {
			queue = append(queue, runtimes[nextArrival])
			nextArrival++
		}
		if len(retries) > 0 {
			kept := retries[:0]
			for _, pr := range retries {
				if pr.at <= t {
					queue = append(queue, pr.rt)
				} else {
					kept = append(kept, pr)
				}
			}
			retries = kept
		}

		// 5. Place queued jobs. Failed VMs drop out of the scheduler's
		// view and re-enter when they recover.
		if len(queue) > 0 {
			for v, st := range vms {
				if st.down {
					views[v] = scheduler.VMView{Down: true}
					continue
				}
				views[v] = scheduler.VMView{
					FreshAvailable: st.freshHeadroom(),
					OppInUse:       st.oppInUse,
				}
			}
			pending := make([]*job.Job, len(queue))
			byID := make(map[job.ID]*job.Runtime, len(queue))
			for i, rt := range queue {
				pending[i] = rt.Spec
				byID[rt.Spec.ID] = rt
			}
			start := clk.Now()
			placements := sched.Place(pending, views)
			res.Overhead.AddCompute(clk.Now() - start)
			placed := make(map[job.ID]bool)
			for _, p := range placements {
				res.Overhead.AddComm(cl.CommLatencyMicros)
				if len(p.Allocs) != len(p.Jobs) {
					return nil, fmt.Errorf("sim: placement has %d allocs for %d jobs", len(p.Allocs), len(p.Jobs))
				}
				for idx, spec := range p.Jobs {
					rt := byID[spec.ID]
					if rt == nil {
						return nil, fmt.Errorf("sim: scheduler placed unknown job %d", spec.ID)
					}
					rt.VM = p.VM
					rt.Started = t
					rt.Allocated = p.Allocs[idx]
					st := vms[p.VM]
					if p.Opportunistic {
						st.oppInUse = st.oppInUse.Add(rt.Allocated)
						res.PlacedOpportunistic++
					} else {
						st.freshInUse = st.freshInUse.Add(rt.Allocated)
						res.PlacedFresh++
					}
					rt.Entity = boolToInt(p.Opportunistic)
					st.running = append(st.running, rt)
					placed[spec.ID] = true
					if rt.EvictedAt >= 0 {
						// An evicted job found a new home: record the
						// eviction-to-replacement gap.
						res.Recovery.Replaced++
						res.Recovery.ReplaceSlots += t - rt.EvictedAt
						rt.EvictedAt = -1
					}
				}
			}
			if len(placed) > 0 {
				kept := queue[:0]
				for _, rt := range queue {
					if !placed[rt.Spec.ID] {
						kept = append(kept, rt)
					}
				}
				queue = kept
			}
		}

		// 6. Execute one slot on every up VM and update ledgers. Failed
		// VMs contribute nothing: their capacity, residents and pools are
		// all offline until repair.
		slotAllocated := resource.Vector{} // short-job allocations
		slotDemand := resource.Vector{}    // short-job served demand
		slotClusterAlloc := resource.Vector{}
		slotClusterDemand := resource.Vector{}
		for v, st := range vms {
			if st.down {
				continue
			}
			resUse := residentUse[v]
			slotClusterAlloc = slotClusterAlloc.Add(st.reserved).Add(st.freshInUse).Add(st.longReserved)
			slotClusterDemand = slotClusterDemand.Add(resUse)

			// Long-lived jobs run with guaranteed allocations.
			keptLong := st.longRunning[:0]
			for _, rt := range st.longRunning {
				granted := rt.Spec.DemandAt(rt.Slots).Min(rt.Allocated)
				slotClusterDemand = slotClusterDemand.Add(granted)
				rt.Advance(granted)
				if rt.Progress >= float64(rt.Spec.Duration)-1e-9 {
					rt.Finished = t
					st.longReserved = st.longReserved.Sub(rt.Allocated).ClampNonNegative()
					res.LongFinished++
				} else {
					keptLong = append(keptLong, rt)
				}
			}
			st.longRunning = keptLong

			// Opportunistic pool: what the residents truly left unused.
			pool := unused[v]
			var wantOpp resource.Vector
			for _, rt := range st.running {
				if rt.Entity == 1 {
					wantOpp = wantOpp.Add(rt.Spec.DemandAt(rt.Slots).Min(rt.Allocated))
				}
			}
			// Per-kind scale factor when the pool is oversubscribed.
			var scale resource.Vector
			for k := range scale {
				if wantOpp[k] <= pool[k] || wantOpp[k] == 0 {
					scale[k] = 1
				} else {
					scale[k] = pool[k] / wantOpp[k]
				}
			}
			finished := st.running[:0]
			for _, rt := range st.running {
				want := rt.Spec.DemandAt(rt.Slots).Min(rt.Allocated)
				granted := want
				if rt.Entity == 1 {
					granted = want.Mul(scale)
				}
				slotAllocated = slotAllocated.Add(rt.Allocated)
				slotDemand = slotDemand.Add(granted)
				slotClusterDemand = slotClusterDemand.Add(granted)
				rt.Advance(granted)
				if rt.Progress >= float64(rt.Spec.Duration)-1e-9 {
					rt.Finished = t
					if rt.Entity == 1 {
						st.oppInUse = st.oppInUse.Sub(rt.Allocated).ClampNonNegative()
					} else {
						st.freshInUse = st.freshInUse.Sub(rt.Allocated).ClampNonNegative()
					}
				} else {
					finished = append(finished, rt)
				}
			}
			st.running = finished
		}
		collector.Observe(slotAllocated, slotDemand)
		clusterCollector.Observe(slotClusterAlloc.Add(slotAllocated), slotClusterDemand)
		if cfg.RecordTimeline {
			res.Timeline = append(res.Timeline, snapshotTimeline(
				t, cfg.Weights, slotAllocated, slotDemand,
				slotClusterAlloc.Add(slotAllocated), slotClusterDemand,
				unused, vms, len(queue)))
		}

		// 7. Drain matured prediction errors; only steady-state samples
		// (past the warmup) count toward the Fig. 6 metric.
		drained := sched.DrainOutcomes()
		if t >= cfg.Warmup {
			outcomes = append(outcomes, drained...)
		}
	}

	// Final metrics.
	for _, k := range resource.Kinds() {
		res.Utilization[k] = collector.Utilization(k)
		res.ClusterUtilization[k] = clusterCollector.Utilization(k)
	}
	res.Overall = collector.Overall(cfg.Weights)
	res.Wastage = 1 - res.Overall
	res.ClusterOverall = clusterCollector.Overall(cfg.Weights)

	cpuCap := cl.VMs[0].Capacity.At(resource.CPU)
	var predOutcomes []metrics.PredictionOutcome
	for _, o := range outcomes {
		if o.Kind == resource.CPU {
			predOutcomes = append(predOutcomes, metrics.PredictionOutcome{Error: o.Error})
		}
	}
	res.PredictionSamples = len(predOutcomes)
	res.PredictionErrorRate = metrics.PredictionErrorRate(predOutcomes, cfg.Epsilon*cpuCap)

	var respSum, respN float64
	var responses []int
	var serviceRates []float64
	// Attribute each violated or unfinished job to its damage mechanism:
	// jobs evicted by a failure are failure damage, the rest starved on
	// opportunistic pools (the paper's fault-free mechanism). Only fault
	// runs attribute, so fault-free results stay bit-for-bit unchanged.
	attribute := func(rt *job.Runtime) {
		if inj == nil {
			return
		}
		if rt.Evictions > 0 {
			res.Recovery.ViolationsFailure++
		} else {
			res.Recovery.ViolationsStarvation++
		}
	}
	for _, rt := range runtimes {
		if rt.Done() {
			res.SLO.Finished++
			if rt.SLOViolated() {
				res.SLO.Violated++
				attribute(rt)
			}
			respSum += float64(rt.ResponseTime())
			respN++
			responses = append(responses, rt.ResponseTime())
		} else {
			res.SLO.Unfinished++
			attribute(rt)
			if rt.VM < 0 && rt.Evictions == 0 {
				res.NeverPlaced++
			}
		}
		if rt.Slots > 0 {
			serviceRates = append(serviceRates, rt.Progress/float64(rt.Slots))
		}
	}
	res.SLORate = res.SLO.ViolationRate()
	if respN > 0 {
		res.MeanResponseSlots = respSum / respN
	}
	if p, ok := metrics.PercentileInt(responses, 50); ok {
		res.ResponseP50 = p
	}
	if p, ok := metrics.PercentileInt(responses, 95); ok {
		res.ResponseP95 = p
	}
	res.Fairness = metrics.JainFairness(serviceRates)
	if te, ok := sched.(interface{ TrainErrors() int }); ok {
		res.DNNTrainErrors = te.TrainErrors()
	}
	return res, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
