// Package sim is the discrete-time cluster simulator that drives the
// paper's evaluation: resident (tenant) jobs hold reservations on VMs and
// use a fluctuating fraction of them; short-lived jobs arrive and are
// placed by one of the four provisioning schemes; opportunistic placements
// ride the residents' allocated-but-unused resources and starve when the
// prediction overestimated, turning prediction error into SLO violations.
//
// One Run produces every metric the paper reports: per-kind and overall
// utilization (Eqs. 1–2), the prediction error rate of Fig. 6, the SLO
// violation rate, and the scheduling overhead of Figs. 10/14.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workpool"
)

// Config parameterizes one simulation run.
type Config struct {
	// Profile selects the testbed (cluster or ec2).
	Profile cluster.Profile
	// NumPMs / NumVMs override testbed defaults when > 0.
	NumPMs, NumVMs int
	// Heterogeneous carves unequal VM sizes (see cluster.Config).
	Heterogeneous bool

	// NumJobs is |J|, the number of short-lived jobs (Table II: 50–300).
	// Zero defaults to 300.
	NumJobs int

	// Scheduler selects and configures the provisioning scheme.
	Scheduler scheduler.Config

	// Seed drives workload generation.
	Seed int64

	// Warmup is how many slots run before the first arrival, giving
	// predictors history (zero defaults to 90 slots = 15 minutes).
	Warmup int
	// ArrivalSpan is the span of slots over which jobs arrive (zero
	// defaults to 60).
	ArrivalSpan int
	// Drain is how many slots run after the last possible arrival (zero
	// defaults to 150 — enough for a 5-minute job plus SLO slack).
	Drain int

	// Epsilon is the prediction-error tolerance ε of the Fig. 6 metric
	// (relative to VM capacity). Zero defaults to 0.10.
	Epsilon float64

	// Weights are the ω of Eq. 2; zero defaults to 0.4/0.4/0.2.
	Weights resource.Weights

	// Residents overrides the tenant-load generator; the zero value uses
	// its defaults with Horizon matched to the run length.
	Residents trace.ResidentConfig

	// Jobs overrides the short-job generator; the zero value derives
	// VM-capacity-scaled defaults.
	Jobs trace.Config

	// ExplicitJobs, when non-nil, bypasses the generator entirely: the
	// run is driven by these specs (e.g. loaded from a real Google
	// task_usage table via trace.ReadGoogleTaskUsage). Arrivals are
	// still offset past the warmup; NumJobs is ignored.
	ExplicitJobs []*job.Job

	// Prepared supplies a pre-built workload snapshot (see
	// PrepareWorkload) instead of generating traces inside the run. The
	// snapshot is shared read-only — all per-run state lives on
	// job.Runtime wrappers — so one snapshot can drive any number of
	// concurrent runs. Its key must match what this config would
	// generate; Run fails fast on a mismatch rather than silently
	// simulating the wrong workload. Nil generates (or fetches from the
	// process-wide cache, when enabled) as usual.
	Prepared *workload.Snapshot

	// RecordTimeline captures a per-slot snapshot into Result.Timeline.
	RecordTimeline bool

	// Faults configures the deterministic fault-injection layer: VM/PM
	// crash-and-recover events, resident demand surges, and transient
	// scheduler delays. The zero value injects nothing and leaves the
	// run bit-for-bit identical to a fault-free simulation.
	Faults faults.Config

	// Clock times scheduler decisions for the overhead metric. Nil uses
	// the real wall clock; inject a *VirtualClock for deterministic
	// overhead (regression tests, the ext-faults figure).
	Clock Clock

	// LongJobs adds long-lived service jobs to the run (the cooperative
	// mixed-workload extension): they arrive over time, receive
	// guaranteed reservations from a simple headroom-greedy method — the
	// "other method for long-lived jobs" CORP cooperates with — and
	// their allocated-but-unused resources join the opportunistic pool
	// the short-job schemes harvest. Zero disables them.
	LongJobs int
	// Long overrides the long-job generator.
	Long trace.LongJobConfig

	// Workers sizes the intra-run parallel prediction engine. 0 (the
	// default) auto-sizes from the shared worker budget: the run claims
	// whatever slots RunMany's outer pool has not already taken, so
	// sweeps and intra-run parallelism compose without oversubscription.
	// 1 forces a serial run; values > 1 are honored as given. Results
	// are bit-identical at any worker count — Workers affects wall time
	// only. Run overwrites Scheduler.Workers with the resolved count.
	Workers int

	// Core selects the execution core driving the run: the global event
	// queue (the default) or the original fixed-tick slot loop, kept as
	// the equivalence reference. Both cores drive identical phase methods
	// and produce bit-identical results (see the core-equivalence tests);
	// only the scheduling of no-op slots differs.
	Core Core

	// DisableResidentTables forces the telemetry phase onto the original
	// per-VM recomputation instead of the snapshot's precomputed periodic
	// tables (DESIGN.md §5i). The tables are bit-identical by
	// construction, so this only affects wall time; it exists for the
	// equivalence tests and A/B measurements.
	DisableResidentTables bool

	// DisableSpanFastForward forces the event core to process every
	// quiescent slot through the normal per-event path instead of
	// replaying whole no-op spans in one loop (DESIGN.md §5j). The
	// fast-forward is bit-identical by construction, so this only affects
	// wall time; it exists for the equivalence tests and A/B
	// measurements. It implies nothing for CoreSlot, which never
	// fast-forwards.
	DisableSpanFastForward bool
}

// Core selects the simulator's execution core.
type Core int

const (
	// CoreEvent drives the run from a global min-heap of simulation
	// events (arrivals, retries, refresh windows, faults, telemetry,
	// execution) keyed by timestamp with deterministic tie-breaking.
	CoreEvent Core = iota
	// CoreSlot is the original fixed-tick loop offering every phase at
	// every slot. Results are bit-identical to CoreEvent.
	CoreSlot
)

// String names the core.
func (c Core) String() string {
	switch c {
	case CoreEvent:
		return "event"
	case CoreSlot:
		return "slot"
	default:
		return fmt.Sprintf("Core(%d)", int(c))
	}
}

// ParseCore parses "event" or "slot" (the -core CLI flag).
func ParseCore(s string) (Core, error) {
	switch s {
	case "event":
		return CoreEvent, nil
	case "slot":
		return CoreSlot, nil
	default:
		return 0, fmt.Errorf("sim: unknown core %q (want event or slot)", s)
	}
}

func (c Config) withDefaults() Config {
	if c.NumJobs <= 0 {
		c.NumJobs = 300
	}
	if c.Warmup <= 0 {
		c.Warmup = 90
	}
	if c.ArrivalSpan <= 0 {
		c.ArrivalSpan = 60
	}
	if c.Drain <= 0 {
		c.Drain = 150
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.10
	}
	if c.Weights == (resource.Weights{}) {
		c.Weights = resource.DefaultWeights()
	}
	if c.Residents.ReservedShare <= 0 {
		// 60% reserved leaves realistic fresh headroom for the
		// demand-based schemes while keeping a deep unused pool.
		c.Residents.ReservedShare = 0.6
	}
	if c.Scheduler.Scheme == scheduler.CORP && c.Scheduler.Corp.Pth <= 0 {
		// Table II's P_th = 0.95 is calibrated to the paper's trace; on
		// the synthetic trace the empirical in-band rate tops out lower,
		// so the experiment layer defaults the gate to 0.7 (Fig. 8
		// sweeps it). See EXPERIMENTS.md.
		c.Scheduler.Corp.Pth = 0.7
	}
	return c
}

// Result aggregates one run's metrics.
type Result struct {
	Scheme  string
	Profile string
	NumJobs int
	Slots   int

	// Utilization per kind (Eq. 1 pooled over slots) and overall (Eq. 2),
	// computed over the submitted short-lived jobs — Eq. 1's n_t is "the
	// number of jobs submitted at time slot t". This is the headline
	// metric of Figs. 7/8/11/12: demand served over resources allocated.
	Utilization [resource.NumKinds]float64
	Overall     float64
	// Wastage is 1 − Overall (Eq. 4).
	Wastage float64

	// ClusterUtilization pools residents and short jobs together: the
	// whole-cluster view (demand over all reservations + allocations).
	ClusterUtilization [resource.NumKinds]float64
	ClusterOverall     float64

	// PredictionErrorRate is Fig. 6's metric: the fraction of matured
	// CPU-kind predictions with error outside [0, ε·cap).
	PredictionErrorRate float64
	PredictionSamples   int

	// SLO tallies.
	SLO     metrics.SLOStats
	SLORate float64

	// Overhead of allocating resources to all jobs: scheduler decision
	// wall time plus simulated communication, as in Figs. 10/14.
	Overhead metrics.LatencyTracker

	// Placement accounting.
	PlacedOpportunistic int
	PlacedFresh         int
	NeverPlaced         int
	MeanResponseSlots   float64

	// Response-time percentiles over finished short jobs (slots).
	ResponseP50 int
	ResponseP95 int
	// Fairness is Jain's index over the short jobs' mean service rates.
	Fairness float64

	// Long-lived job accounting (mixed-workload runs). LongFailed counts
	// long jobs killed by VM failures (they are not retried; their
	// reservations return to the pool).
	LongPlaced   int
	LongUnplaced int
	LongFinished int
	LongFailed   int

	// Recovery aggregates the fault-injection layer's accounting:
	// crashes, evictions, retries, time-to-replace, and the
	// starvation-versus-failure attribution of SLO violations. All zero
	// in fault-free runs.
	Recovery metrics.RecoveryStats

	// DNNTrainErrors counts online training samples the CORP brain
	// rejected during the run (always zero for healthy feeds; non-zero
	// means the predictor silently stopped learning part of its input).
	// Zero for schemes without an online DNN.
	DNNTrainErrors int

	// TierHits and TierEscalations count per-kind forecasts the CORP
	// two-tier predictor served from the cheap first tier versus ones
	// that escalated to the full DNN+HMM path. Both zero unless the
	// scheduler ran with the tier enabled (-forecast-tier=auto).
	TierHits        int
	TierEscalations int

	// Timeline holds per-slot snapshots when Config.RecordTimeline is
	// set (nil otherwise).
	Timeline []TimelinePoint
}

// vmState is the simulator's physical ledger for one VM.
type vmState struct {
	capacity     resource.Vector
	reserved     resource.Vector // resident reservation
	freshInUse   resource.Vector // short-job allocations from headroom
	oppInUse     resource.Vector // short-job allocations from predicted-unused
	longReserved resource.Vector // long-lived jobs' guaranteed reservations
	resident     *job.Job
	running      []*job.Runtime
	// hot mirrors running index-for-index with the per-slot execution state
	// (usage series, allocation, progress) packed into one dense array, so
	// executeVM streams a contiguous slice instead of chasing a *Runtime,
	// its *Job spec, and the usage backing array per job-slot. The Runtime
	// fields it shadows (Progress, Slots) are written back on finish,
	// eviction, and at finalize; Allocated is kept in both (adjustments
	// update the pair together). See hotShort in run.go.
	hot         []hotShort
	longRunning []*job.Runtime
	down        bool // failed by fault injection; recovers later
}

// freshHeadroom is the guaranteed capacity still unallocated on the VM.
func (st *vmState) freshHeadroom() resource.Vector {
	return st.capacity.Sub(st.reserved).Sub(st.longReserved).Sub(st.freshInUse).ClampNonNegative()
}

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	// Size the intra-run prediction engine from the shared worker budget.
	// Auto (0) claims the remaining budget — RunMany claims its outer
	// slots first, so nested parallelism never oversubscribes; an
	// explicit count > 1 runs at the requested width and the claim is
	// advisory accounting for any sibling auto-sized runs.
	workers := cfg.Workers
	claimed := 0
	if workers == 0 {
		claimed = workpool.ClaimUpTo(workpool.Limit())
		workers = claimed
		if workers < 1 {
			workers = 1
		}
	} else if workers > 1 {
		claimed = workpool.ClaimUpTo(workers)
	}
	if claimed > 0 {
		defer workpool.Release(claimed)
	}
	cfg.Scheduler.Workers = workers

	cl, err := cluster.New(cluster.Config{
		Profile: cfg.Profile, NumPMs: cfg.NumPMs, NumVMs: cfg.NumVMs,
		Heterogeneous: cfg.Heterogeneous,
	})
	if err != nil {
		return nil, err
	}
	horizon := cfg.Warmup + cfg.ArrivalSpan + cfg.Drain

	// Workload snapshot: residents, short jobs, history and long jobs for
	// this config's (seed, workload) key — supplied pre-built, fetched
	// from the process-wide cache, or generated here. The snapshot is
	// shared read-only; every run-local adjustment below (the warmup
	// arrival offsets) lands on per-run job.Runtime state, never on the
	// shared specs.
	vmCaps := make([]resource.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		vmCaps[i] = vm.Capacity
	}
	params := workloadParams(cfg, vmCaps)
	snap := cfg.Prepared
	if snap == nil {
		if snap, err = snapshotFor(params); err != nil {
			return nil, err
		}
	} else if snap.Key() != params.Key() {
		return nil, fmt.Errorf("sim: prepared workload key %.12s does not match config key %.12s", snap.Key(), params.Key())
	}
	residents := snap.Residents()

	// Short-lived jobs, arrivals offset past the warmup (on runtime
	// state, below). Explicit specs (e.g. a loaded real trace) take
	// precedence over the generator.
	var shortJobs []*job.Job
	if cfg.ExplicitJobs != nil {
		shortJobs = make([]*job.Job, len(cfg.ExplicitJobs))
		for i, j := range cfg.ExplicitJobs {
			if err := j.Validate(); err != nil {
				return nil, fmt.Errorf("sim: explicit job: %w", err)
			}
			shortJobs[i] = j
		}
		sort.SliceStable(shortJobs, func(a, b int) bool {
			return shortJobs[a].Arrival < shortJobs[b].Arrival
		})
		cfg.NumJobs = len(shortJobs)
		// Explicit arrivals may extend past the configured span; widen
		// the horizon so every job gets its drain period.
		if n := len(shortJobs); n > 0 {
			if last := shortJobs[n-1].Arrival + cfg.Warmup; last+cfg.Drain > horizon {
				horizon = last + cfg.Drain
			}
		}
	} else {
		shortJobs = snap.ShortJobs()
	}

	sched, err := scheduler.New(cfg.Scheduler, cl)
	if err != nil {
		return nil, err
	}

	// The oracle upper bound receives the true future unused series
	// (residents only; in mixed runs the long jobs' contribution stays
	// unknown even to the oracle).
	if cfg.Scheduler.Scheme == scheduler.Oracle {
		futures := make([][]resource.Vector, len(residents))
		for v, r := range residents {
			series := make([]resource.Vector, horizon)
			for t := 0; t < horizon; t++ {
				series[t] = r.UnusedAt(t)
			}
			futures[v] = series
		}
		scheduler.SetFutures(sched, futures)
	}

	// CORP trains its DNN on historical trace data before deployment
	// ("we first used the deep learning algorithm to predict ... based on
	// the historical resource usage data from the Google trace"): feed a
	// batch of sibling resident series through the scheduler's predictors
	// ahead of the run. Observations only — no predictions are recorded,
	// so the error statistics stay untouched.
	if cfg.Scheduler.Scheme == scheduler.CORP {
		history, histHorizon, err := snap.History()
		if err != nil {
			return nil, err
		}
		// History predates the run; the bounded per-VM windows flush it
		// naturally during the warmup as live samples displace it.
		for v, h := range history {
			for t := 0; t < histHorizon; t++ {
				sched.Observe(v, h.UnusedAt(t))
			}
		}
	}

	vms := make([]*vmState, len(cl.VMs))
	for i, vm := range cl.VMs {
		vms[i] = &vmState{
			capacity: vm.Capacity,
			reserved: residents[i].Request,
			resident: residents[i],
		}
	}

	runtimes := make([]*job.Runtime, len(shortJobs))
	for i, j := range shortJobs {
		runtimes[i] = job.NewRuntimeAt(j, j.Arrival+cfg.Warmup)
	}

	// Long-lived service jobs for the cooperative mixed workload; they
	// start arriving mid-warmup.
	var longRuntimes []*job.Runtime
	for _, j := range snap.LongJobs() {
		longRuntimes = append(longRuntimes, job.NewRuntimeAt(j, j.Arrival+cfg.Warmup/2))
	}

	clk := cfg.Clock
	if clk == nil {
		clk = NewWallClock()
	}

	// Fault injection: a zero-valued Faults config takes the fault-free
	// path untouched (no injector, no RNG draws, identical results).
	var inj *faults.Injector
	if cfg.Faults.Enabled() {
		fcfg := cfg.Faults
		fcfg.Seed ^= cfg.Seed
		vmToPM := make([]int, len(cl.VMs))
		for i, vm := range cl.VMs {
			vmToPM[i] = vm.PM
		}
		inj = faults.NewInjector(fcfg, vmToPM)
	}
	res := &Result{
		Scheme:  sched.Name(),
		Profile: cfg.Profile.String(),
		NumJobs: cfg.NumJobs,
		Slots:   horizon,
	}
	rs := &runState{
		cfg:          cfg,
		cl:           cl,
		sched:        sched,
		clk:          clk,
		inj:          inj,
		res:          res,
		horizon:      horizon,
		window:       sched.Window(),
		workers:      workers,
		vms:          vms,
		runtimes:     runtimes,
		longRuntimes: longRuntimes,
		// VM capacities never change mid-run; compute the
		// volume-normalising reference once instead of rescanning every
		// VM per candidate in the long-job placement phase.
		maxVMCap: cl.MaxVMCapacity(),
	}
	if !cfg.DisableResidentTables {
		// Periodic resident tables for the telemetry fast path, built once
		// per snapshot and shared via the workload cache. Guarded by the
		// VM count so a snapshot/cluster mismatch can never read the wrong
		// rows (the key check above should already preclude it).
		if tab := snap.Tables(); tab != nil && tab.NumVMs == len(vms) {
			rs.tables = tab
		}
	}
	rs.initScratch()
	switch cfg.Core {
	case CoreEvent:
		err = rs.runEventLoop()
	case CoreSlot:
		err = rs.runSlotLoop()
	default:
		return nil, fmt.Errorf("sim: unknown core %d", int(cfg.Core))
	}
	if err != nil {
		return nil, err
	}
	return rs.finalize(), nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
