package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// small returns a quick config for the given scheme.
func small(sc scheduler.Scheme, seed int64) Config {
	return Config{
		NumPMs: 10, NumVMs: 40, NumJobs: 80, Seed: seed,
		Scheduler: scheduler.Config{Scheme: sc, Seed: seed},
	}
}

func TestRunBasicInvariants(t *testing.T) {
	for _, sc := range scheduler.Schemes() {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			r, err := Run(small(sc, 1))
			if err != nil {
				t.Fatal(err)
			}
			if r.Scheme != sc.String() {
				t.Errorf("Scheme = %q", r.Scheme)
			}
			if r.Slots != 90+60+150 {
				t.Errorf("Slots = %d", r.Slots)
			}
			for _, k := range resource.Kinds() {
				u := r.Utilization[k]
				if u < 0 || u > 1.000001 {
					t.Errorf("utilization[%v] = %v outside [0,1]", k, u)
				}
				cu := r.ClusterUtilization[k]
				if cu < 0 || cu > 1.000001 {
					t.Errorf("cluster utilization[%v] = %v outside [0,1]", k, cu)
				}
			}
			if r.Overall < 0 || r.Overall > 1.000001 {
				t.Errorf("overall = %v", r.Overall)
			}
			if r.Wastage < -1e-9 || r.Wastage > 1 {
				t.Errorf("wastage = %v", r.Wastage)
			}
			if r.SLORate < 0 || r.SLORate > 1 {
				t.Errorf("SLO rate = %v", r.SLORate)
			}
			if r.PredictionErrorRate < 0 || r.PredictionErrorRate > 1 {
				t.Errorf("error rate = %v", r.PredictionErrorRate)
			}
			if r.PredictionSamples == 0 {
				t.Error("no prediction samples matured")
			}
			placed := r.PlacedOpportunistic + r.PlacedFresh
			if placed+r.NeverPlaced != r.NumJobs {
				t.Errorf("placement accounting: %d placed + %d never != %d jobs",
					placed, r.NeverPlaced, r.NumJobs)
			}
			if r.SLO.Finished+r.SLO.Unfinished != r.NumJobs {
				t.Errorf("SLO accounting: %d + %d != %d",
					r.SLO.Finished, r.SLO.Unfinished, r.NumJobs)
			}
			if r.Overhead.TotalMicros() <= 0 {
				t.Error("overhead should be positive")
			}
		})
	}
}

func TestRunDeterministicMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("two full CORP runs")
	}
	// All metrics except wall-clock overhead must be identical across
	// same-seed runs.
	a, err := Run(small(scheduler.CORP, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(scheduler.CORP, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Overall != b.Overall || a.SLORate != b.SLORate ||
		a.PredictionErrorRate != b.PredictionErrorRate ||
		a.PlacedOpportunistic != b.PlacedOpportunistic {
		t.Errorf("same-seed runs diverge: %+v vs %+v", a, b)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, err := Run(small(scheduler.RCCR, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(scheduler.RCCR, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Overall == b.Overall && a.PredictionErrorRate == b.PredictionErrorRate {
		t.Error("different seeds should produce different workloads")
	}
}

// TestPaperOrderings is the headline integration test: on one seed, the
// four schemes must reproduce the paper's orderings for utilization
// (Fig. 7), SLO violation rate (Fig. 9 levels), prediction error rate
// (Fig. 6) and overhead (Fig. 10).
func TestPaperOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration ordering test")
	}
	results := map[scheduler.Scheme]*Result{}
	for _, sc := range scheduler.Schemes() {
		r, err := Run(small(sc, 3))
		if err != nil {
			t.Fatal(err)
		}
		results[sc] = r
	}
	corp, rccr := results[scheduler.CORP], results[scheduler.RCCR]
	cs, dra := results[scheduler.CloudScale], results[scheduler.DRA]

	// Utilization: CORP > RCCR > CloudScale > DRA (Fig. 7).
	if !(corp.Overall > rccr.Overall && rccr.Overall > cs.Overall && cs.Overall > dra.Overall) {
		t.Errorf("utilization ordering broken: CORP=%.3f RCCR=%.3f CS=%.3f DRA=%.3f",
			corp.Overall, rccr.Overall, cs.Overall, dra.Overall)
	}
	// Prediction error rate: CORP lowest; DRA and CloudScale clearly
	// above RCCR (Fig. 6).
	if !(corp.PredictionErrorRate < rccr.PredictionErrorRate) {
		t.Errorf("error rate: CORP %.3f should beat RCCR %.3f",
			corp.PredictionErrorRate, rccr.PredictionErrorRate)
	}
	if !(rccr.PredictionErrorRate < cs.PredictionErrorRate) ||
		!(rccr.PredictionErrorRate < dra.PredictionErrorRate) {
		t.Errorf("error rate: RCCR %.3f should beat CS %.3f and DRA %.3f",
			rccr.PredictionErrorRate, cs.PredictionErrorRate, dra.PredictionErrorRate)
	}
	// SLO: CORP lowest, DRA highest (Figs. 8/9 levels).
	if !(corp.SLORate <= rccr.SLORate && rccr.SLORate <= cs.SLORate && cs.SLORate <= dra.SLORate) {
		t.Errorf("SLO ordering broken: CORP=%.3f RCCR=%.3f CS=%.3f DRA=%.3f",
			corp.SLORate, rccr.SLORate, cs.SLORate, dra.SLORate)
	}
	// Overhead: CORP highest (Fig. 10); wall-clock so compare loosely.
	for _, other := range []*Result{rccr, cs, dra} {
		if corp.Overhead.TotalMicros() <= other.Overhead.TotalMicros() {
			t.Errorf("overhead: CORP %.1fms should exceed %s %.1fms",
				corp.Overhead.TotalMillis(), other.Scheme, other.Overhead.TotalMillis())
		}
	}
}

func TestEC2ProfileRuns(t *testing.T) {
	r, err := Run(Config{
		Profile: cluster.ProfileEC2, NumJobs: 50, Seed: 4,
		Scheduler: scheduler.Config{Scheme: scheduler.CORP, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Profile != "ec2" {
		t.Errorf("profile = %q", r.Profile)
	}
	// EC2's comm latency per op is 8× the cluster's; overhead must
	// reflect heavier communication (Fig. 14 vs Fig. 10).
	if r.Overhead.CommMicros <= 0 {
		t.Error("EC2 comm overhead missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.NumJobs != 300 || c.Warmup != 90 || c.ArrivalSpan != 60 || c.Drain != 150 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.Epsilon != 0.10 {
		t.Errorf("epsilon default = %v", c.Epsilon)
	}
	if c.Residents.ReservedShare != 0.6 {
		t.Errorf("reserved share default = %v", c.Residents.ReservedShare)
	}
	// CORP's gate default applies only to CORP configs.
	corp := Config{Scheduler: scheduler.Config{Scheme: scheduler.CORP}}.withDefaults()
	if corp.Scheduler.Corp.Pth != 0.7 {
		t.Errorf("CORP Pth default = %v", corp.Scheduler.Corp.Pth)
	}
	dra := Config{Scheduler: scheduler.Config{Scheme: scheduler.DRA}}.withDefaults()
	if dra.Scheduler.Corp.Pth != 0 {
		t.Error("non-CORP configs must not set the CORP gate")
	}
}

func TestMoreJobsMoreLoad(t *testing.T) {
	few, err := Run(Config{
		NumPMs: 10, NumVMs: 40, NumJobs: 30, Seed: 5,
		Scheduler: scheduler.Config{Scheme: scheduler.RCCR, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(Config{
		NumPMs: 10, NumVMs: 40, NumJobs: 150, Seed: 5,
		Scheduler: scheduler.Config{Scheme: scheduler.RCCR, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	fewPlaced := few.PlacedOpportunistic + few.PlacedFresh
	manyPlaced := many.PlacedOpportunistic + many.PlacedFresh
	if manyPlaced <= fewPlaced {
		t.Errorf("more jobs should place more: %d vs %d", manyPlaced, fewPlaced)
	}
	// Cluster-wide utilization rises with served short-job demand.
	if many.ClusterOverall <= few.ClusterOverall {
		t.Errorf("cluster utilization should rise with load: %.4f vs %.4f",
			many.ClusterOverall, few.ClusterOverall)
	}
}

func BenchmarkRunCORPSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(small(scheduler.CORP, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunRCCRSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(small(scheduler.RCCR, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMixedWorkloadCooperation(t *testing.T) {
	cfg := small(scheduler.CORP, 9)
	cfg.LongJobs = 15
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.LongPlaced+r.LongUnplaced != 15 {
		t.Errorf("long accounting: %d + %d != 15", r.LongPlaced, r.LongUnplaced)
	}
	if r.LongPlaced == 0 {
		t.Error("no long jobs placed")
	}
	// Short jobs still get served alongside the long population.
	if r.PlacedOpportunistic+r.PlacedFresh == 0 {
		t.Error("no short jobs placed in mixed run")
	}
	if r.Fairness <= 0 || r.Fairness > 1 {
		t.Errorf("fairness = %v", r.Fairness)
	}
	if r.ResponseP95 < r.ResponseP50 {
		t.Errorf("P95 %d < P50 %d", r.ResponseP95, r.ResponseP50)
	}
}

func TestMixedWorkloadGrowsOpportunisticPool(t *testing.T) {
	// With long jobs present, the harvested pool is bigger, so an
	// opportunistic scheme should place at least as many jobs that way.
	base := small(scheduler.RCCR, 11)
	withLong := base
	withLong.LongJobs = 20
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withLong)
	if err != nil {
		t.Fatal(err)
	}
	if b.LongPlaced == 0 {
		t.Fatal("no long jobs placed")
	}
	if b.PlacedOpportunistic < a.PlacedOpportunistic-3 {
		t.Errorf("long jobs should not shrink opportunistic placement: %d vs %d",
			b.PlacedOpportunistic, a.PlacedOpportunistic)
	}
}

func TestResponsePercentilesConsistent(t *testing.T) {
	r, err := Run(small(scheduler.RCCR, 12))
	if err != nil {
		t.Fatal(err)
	}
	if r.SLO.Finished > 0 {
		if r.ResponseP50 <= 0 {
			t.Error("P50 missing despite finished jobs")
		}
		if float64(r.ResponseP50) > r.MeanResponseSlots*3 {
			t.Errorf("P50 %d wildly above mean %.1f", r.ResponseP50, r.MeanResponseSlots)
		}
	}
}

func TestTimelineRecording(t *testing.T) {
	cfg := small(scheduler.RCCR, 13)
	cfg.RecordTimeline = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != r.Slots {
		t.Fatalf("timeline has %d points for %d slots", len(r.Timeline), r.Slots)
	}
	sawRunning := false
	for i, p := range r.Timeline {
		if p.Slot != i {
			t.Fatalf("point %d has slot %d", i, p.Slot)
		}
		if p.ShortUtil < 0 || p.ShortUtil > 1.000001 || p.ClusterUtil < 0 || p.ClusterUtil > 1.000001 {
			t.Fatalf("point %d utilization out of range: %+v", i, p)
		}
		if p.UnusedCPU < 0 || p.OppInUseCPU < 0 {
			t.Fatalf("point %d negative resources: %+v", i, p)
		}
		if p.RunningShort > 0 {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Error("timeline never saw a running job")
	}
	// Off by default.
	plain, err := Run(small(scheduler.RCCR, 13))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Timeline != nil {
		t.Error("timeline recorded without the flag")
	}
}

func TestRunManyMatchesSequential(t *testing.T) {
	cfgs := []Config{
		small(scheduler.RCCR, 31),
		small(scheduler.DRA, 32),
		small(scheduler.CloudScale, 33),
	}
	par, err := RunMany(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		seq, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i] == nil {
			t.Fatalf("run %d missing", i)
		}
		if par[i].Overall != seq.Overall || par[i].SLORate != seq.SLORate ||
			par[i].PredictionErrorRate != seq.PredictionErrorRate {
			t.Errorf("run %d diverges: parallel %+v vs sequential %+v", i, par[i], seq)
		}
	}
}

func TestRunManyEmptyAndErrors(t *testing.T) {
	res, err := RunMany(nil, 4)
	if err != nil || len(res) != 0 {
		t.Errorf("empty RunMany = (%v, %v)", res, err)
	}
	bad := small(scheduler.RCCR, 1)
	bad.Scheduler.Scheme = scheduler.Scheme(99)
	good := small(scheduler.DRA, 1)
	res, err = RunMany([]Config{bad, good}, 2)
	if err == nil {
		t.Fatal("expected error from bad config")
	}
	if res[0] != nil {
		t.Error("failed run should have nil result")
	}
	if res[1] == nil {
		t.Error("good run should still complete")
	}
}

func TestExplicitJobsDriveTheRun(t *testing.T) {
	jobs, err := trace.GenerateShortJobs(trace.Config{Seed: 40, NumJobs: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Push one arrival far past the default span: the horizon must widen.
	jobs[len(jobs)-1].Arrival = 400
	cfg := small(scheduler.RCCR, 40)
	cfg.ExplicitJobs = jobs
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumJobs != 25 {
		t.Errorf("NumJobs = %d, want 25 (explicit)", r.NumJobs)
	}
	if r.Slots < 400+90+150 {
		t.Errorf("horizon %d not widened for late arrival", r.Slots)
	}
	placed := r.PlacedOpportunistic + r.PlacedFresh
	if placed+r.NeverPlaced != 25 {
		t.Errorf("accounting: %d + %d != 25", placed, r.NeverPlaced)
	}
	// The caller's specs must not be mutated (arrival offset on copies).
	if jobs[0].Arrival >= 90 {
		t.Error("explicit job arrival mutated by the run")
	}
}

func TestExplicitJobsValidated(t *testing.T) {
	cfg := small(scheduler.RCCR, 41)
	cfg.ExplicitJobs = []*job.Job{{ID: 1}} // invalid spec
	if _, err := Run(cfg); err == nil {
		t.Error("invalid explicit job accepted")
	}
}

func TestOracleUpperBound(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	corp, err := Run(small(scheduler.CORP, 17))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(small(scheduler.Oracle, 17))
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Scheme != "Oracle" {
		t.Fatalf("scheme = %q", oracle.Scheme)
	}
	// Perfect foresight: the oracle's prediction error rate must be far
	// below CORP's (its only "errors" are the conservative zero-bias).
	if oracle.PredictionErrorRate >= corp.PredictionErrorRate {
		t.Errorf("oracle error rate %.3f should beat CORP %.3f",
			oracle.PredictionErrorRate, corp.PredictionErrorRate)
	}
	// And its utilization should be at least in CORP's neighbourhood.
	if oracle.Overall < corp.Overall-0.05 {
		t.Errorf("oracle utilization %.3f far below CORP %.3f",
			oracle.Overall, corp.Overall)
	}
}

// TestRunSurfacesDNNTrainErrors checks the Result plumbing for the CORP
// brain's rejected-sample counter: a healthy run must report zero (the
// Observe path only produces well-formed samples), and non-CORP schemes
// must also report zero rather than garbage.
func TestRunSurfacesDNNTrainErrors(t *testing.T) {
	for _, sc := range []scheduler.Scheme{scheduler.CORP, scheduler.RCCR, scheduler.Oracle} {
		r, err := Run(small(sc, 3))
		if err != nil {
			t.Fatal(err)
		}
		if r.DNNTrainErrors != 0 {
			t.Errorf("%v: DNNTrainErrors = %d, want 0", sc, r.DNNTrainErrors)
		}
	}
}

// TestRunSurfacesTierCounters checks the Result plumbing for the
// two-tier predictor: with the tier off (the default) both counters stay
// zero, and with it on a CORP run records tier decisions.
func TestRunSurfacesTierCounters(t *testing.T) {
	off, err := Run(small(scheduler.CORP, 3))
	if err != nil {
		t.Fatal(err)
	}
	if off.TierHits != 0 || off.TierEscalations != 0 {
		t.Errorf("tier off: counters %d/%d, want 0/0", off.TierHits, off.TierEscalations)
	}
	cfg := small(scheduler.CORP, 3)
	cfg.Scheduler.Corp.TierEnabled = true
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.TierHits+on.TierEscalations == 0 {
		t.Error("tier on: no tier decisions recorded over a full run")
	}
}
