package sim

import (
	"sync/atomic"

	"repro/internal/resource"
)

// spanSlotsFastForwarded counts the slots replayed by fastForwardSpan,
// process-wide. The equivalence tests read it to prove their quiet
// scenarios actually enter the fast path — and that faulted or surged
// runs stand down completely. Atomic because figure sweeps run
// simulations concurrently; one add per span is noise.
var spanSlotsFastForwarded atomic.Int64

// This file is the quiescent-span fast-forward (DESIGN.md §5j): when the
// event queue's next real event is k > 1 slots away and the fleet is
// quiescent, the event core replays the whole span in one tight loop
// instead of k full slot iterations. "Quiescent" means every slot in the
// span would be a pure telemetry+execute no-op slot:
//
//   - the resident tables are armed and no surge is active, so observe(t)
//     would take the table fast path and its output depends only on
//     t mod Period;
//   - no long or short job is running and no VM carries a pending
//     fault/finish transition (execDirty), so executeSlot(t) would skip
//     every VM and its reduction would fold exactly the cached ledger
//     records plus the phase's resident-demand row;
//   - no job queues and no event (arrival, retry, fault draw, refresh,
//     long-job transition, placement) is due before the span's end. A
//     fault injector re-arms evFault every slot, so faulted runs never
//     form a span and the fast path stands down automatically; a surge can
//     only arm inside advanceFaults, which the same bound covers.
//
// Bit-exactness recipe (the AddCommRepeat recipe from §5i, applied to the
// telemetry/collector folds): every per-slot accumulation is applied as
// repeated additions in the identical per-slot order the normal path would
// perform — one collector.Observe with zero vectors and one
// clusterCollector.Observe per slot, with the cluster demand taken from
// the table's precomputed per-phase row sum (itself folded in ascending VM
// order, the reduction's exact addition sequence) and the cluster
// allocation from one per-span fold of the cached exec records (the
// ledgers are constant across the span, so each slot's fold would produce
// the identical bits). Predictor ring feeds go through the engine's
// ObserveSpan, which replays the same per-VM appends sharded across the
// worker budget with positional writes (internal/workpool supplies the
// budget), so any worker count stays bit-identical.
//
// In-span slots drain no prediction outcomes: predictions are recorded
// only during Refresh and mature exactly at the next refresh slot's
// observe (every scheme's tracker window equals its scheduler window —
// they share one config field), and a pending refresh event always bounds
// the span, so the skipped per-slot DrainOutcomes calls would all return
// empty.
//
// Config.DisableSpanFastForward is the escape hatch; the equivalence
// suites pin fast-forward on vs off (and the event core vs the slot loop)
// bit-identical at any worker count.

// spanEnd reports how far the event core may fast-forward from slot t: it
// returns the first slot the replay must stop before (exclusive), or t
// itself when no fast-forward is possible. A span is only worth entering
// when it covers at least two slots; single quiet slots run the normal
// per-event path.
func (rs *runState) spanEnd(t int) int {
	if rs.cfg.DisableSpanFastForward || rs.tables == nil || rs.cfg.RecordTimeline {
		return t
	}
	// Activity checks, cheapest first: any running or queued work, an
	// armed surge, or a down VM disqualifies the span.
	if rs.shortActive != 0 || rs.longActive != 0 || len(rs.queue) != 0 ||
		rs.surge != nil || rs.downCount != 0 {
		return t
	}
	// Every queued event is a real event at time ≥ t (armSlot runs after
	// the slot's execute, the last phase); the earliest of them — or the
	// horizon — bounds the span.
	end := rs.horizon
	for i := range rs.events.items {
		if et := rs.events.items[i].time; et < end {
			end = et
		}
	}
	if end <= t+1 {
		return t
	}
	// A VM whose cached exec record is stale (a job finished or a fault
	// transitioned last slot) still needs one full executeVM pass; stand
	// down for this slot and re-check at the next. Scanned last — it is
	// the only O(VMs) check.
	for _, d := range rs.execDirty {
		if d {
			return t
		}
	}
	return end
}

// fastForwardSpan replays the quiescent slots [t0, end) in one pass. Every
// observable effect of the normal per-slot path is reproduced bit-exactly;
// see the file comment for the argument.
func (rs *runState) fastForwardSpan(t0, end int) {
	spanSlotsFastForwarded.Add(int64(end - t0))
	tab := rs.tables
	// The cluster-allocation side of the execute reduction folds the
	// cached ledger records in ascending VM order. The records are
	// untouched across the span, so one fold yields every slot's bits;
	// the trailing Add of the (zero) opportunistic share replays the
	// slotClusterAlloc.Add(slotOppAlloc) the reduction performs.
	var clusterAlloc resource.Vector
	for v := range rs.exec {
		rec := &rs.exec[v]
		clusterAlloc = clusterAlloc.Add(rec.reserved).Add(rec.freshInUse).Add(rec.longReserved)
	}
	var zero resource.Vector
	clusterAlloc = clusterAlloc.Add(zero)

	// Telemetry rows for the span, aliased straight out of the resident
	// tables (read-only; the observe fast path would alias the same rows
	// with downCount == 0).
	rows := rs.spanRows[:0]
	for t := t0; t < end; t++ {
		rows = append(rows, tab.UnusedRow(t%tab.Period))
	}
	rs.spanRows = rows

	// Predictor feeds: the engine's ObserveSpan replays the identical
	// per-VM appends (sharded, positional); without one, per-slot batch
	// or serial feeds preserve the exact call sequence instead.
	switch {
	case rs.hasSpanObs:
		rs.spanObs.ObserveSpan(rows, rs.downMask)
	case rs.hasBatcher:
		for _, row := range rows {
			rs.batcher.ObserveAll(row, rs.downMask)
		}
	default:
		for _, row := range rows {
			for v := range rs.vms {
				if !rs.downMask[v] {
					rs.sched.Observe(v, row[v])
				}
			}
		}
	}

	// Collector folds, one slot at a time in slot order (repeated
	// additions, never a fused multiply): the short-job collector sees
	// the zero sums an empty slot produces, the cluster collector the
	// constant allocation fold and the phase's precomputed demand-row
	// fold.
	for t := t0; t < end; t++ {
		rs.collector.Observe(zero, zero)
		rs.clusterCollector.Observe(clusterAlloc, tab.DemandRowSum(t%tab.Period))
	}
}
