package sim

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/scheduler"
)

// spanQuietConfig is the quiet-heavy shape the span tests share: a short
// arrival burst followed by a long drain, so the tail is one quiescent
// stretch the event core carves into spans (each bounded by the refresh
// event, the arrival chain having ended).
func spanQuietConfig(sc scheduler.Scheme, seed int64) Config {
	return Config{
		NumPMs: 8, NumVMs: 32, NumJobs: 60, Seed: seed,
		Warmup: 30, ArrivalSpan: 15, Drain: 250,
		Scheduler: scheduler.Config{Scheme: sc, Seed: seed},
		Clock:     &VirtualClock{StepMicros: 50},
		Workers:   1,
	}
}

// TestSpanFastForwardEquivalence pins the quiescent-span fast-forward
// (DESIGN.md §5j): every scenario must produce the identical Result with
// Config.DisableSpanFastForward off (spans replayed in one loop) and on
// (every slot through the normal per-event path). The process-wide span
// counter proves each scenario does what its name claims — the quiet
// shapes must actually fast-forward, and the faulted/surged shapes must
// stand down completely. Subtests are deliberately sequential: the
// counter is shared by every run in the process.
func TestSpanFastForwardEquivalence(t *testing.T) {
	scenarios := []struct {
		name      string
		cfg       func() Config
		wantSpans bool // fast path must fire; otherwise it must fully stand down
	}{
		{"quiet-tail-rccr", func() Config {
			return spanQuietConfig(scheduler.RCCR, 7)
		}, true},
		{"quiet-tail-corp-workers4", func() Config {
			// CORP's engine implements ObserveSpan; workers > 1 exercises
			// the sharded positional replay inside the span.
			cfg := spanQuietConfig(scheduler.CORP, 11)
			cfg.Workers = 4
			return cfg
		}, true},
		{"arrival-gaps", func() Config {
			// Explicit jobs arriving every 40 slots: each gap goes quiet
			// once the burst drains, so spans form between bursts and the
			// pending arrival event lands exactly on a span edge.
			cfg := spanQuietConfig(scheduler.RCCR, 13)
			var jobs []*job.Job
			for i := 0; i < 6; i++ {
				usage := make([]resource.Vector, 3)
				for s := range usage {
					usage[s] = resource.Vector{0.2, 0.8, 2}
				}
				jobs = append(jobs, &job.Job{
					ID: job.ID(2000 + i), Arrival: 20 + 40*i,
					Request: resource.Vector{0.4, 1.6, 4}, Usage: usage,
					Duration: 3, SLOFactor: 10,
				})
			}
			cfg.ExplicitJobs = jobs
			return cfg
		}, true},
		{"refresh-bisect", func() Config {
			// A refresh window far wider than the default bisects the
			// quiet tail into long spans bounded only by the refresh event;
			// the span must stop exactly there so the matured prediction
			// outcomes drain at the refresh slot and nowhere else.
			cfg := spanQuietConfig(scheduler.RCCR, 17)
			cfg.Scheduler.RCCR.Window = 25
			return cfg
		}, true},
		{"fault-edge-stand-down", func() Config {
			// The injector re-arms its draw event every slot, so every
			// would-be span is bounded at its edge by a fault draw: the
			// fast path must never fire, and crash/recovery transitions
			// land exactly on those edges.
			cfg := spanQuietConfig(scheduler.RCCR, 19)
			cfg.Faults = faults.Config{
				Seed: 19, VMCrashProb: 0.02, MeanDowntime: 10,
			}
			return cfg
		}, false},
		{"surge-stand-down", func() Config {
			// Surges arm inside the fault layer's per-slot draws, so the
			// same per-slot event bound keeps the fast path down for the
			// whole run even when no VM ever crashes.
			cfg := spanQuietConfig(scheduler.CORP, 23)
			cfg.Faults = faults.Config{
				Seed: 23, SurgeProb: 0.2, SurgeFactor: 1.8, MeanDowntime: 8,
			}
			return cfg
		}, false},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			before := spanSlotsFastForwarded.Load()
			want, err := Run(sc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			ffOn := spanSlotsFastForwarded.Load() - before
			if sc.wantSpans && ffOn == 0 {
				t.Fatal("scenario never entered the span fast path; it pins nothing")
			}
			if !sc.wantSpans && ffOn != 0 {
				t.Fatalf("span fast path replayed %d slots; this scenario requires it to stand down", ffOn)
			}

			off := sc.cfg()
			off.DisableSpanFastForward = true
			before = spanSlotsFastForwarded.Load()
			got, err := Run(off)
			if err != nil {
				t.Fatal(err)
			}
			if ff := spanSlotsFastForwarded.Load() - before; ff != 0 {
				t.Fatalf("DisableSpanFastForward run still replayed %d span slots", ff)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("span-off run diverged from span-on:\n on:  %+v\n off: %+v", want, got)
			}
		})
	}
}

// TestSpanFastForwardWorkersAndCores pins the span path's other two axes:
// the engine's sharded ObserveSpan replay is bit-identical at any worker
// budget, and the event core with spans enabled matches the reference
// slot loop, which has no span machinery at all.
func TestSpanFastForwardWorkersAndCores(t *testing.T) {
	mk := func(workers int, core Core) Config {
		cfg := spanQuietConfig(scheduler.CORP, 29)
		cfg.Workers = workers
		cfg.Core = core
		return cfg
	}
	before := spanSlotsFastForwarded.Load()
	want, err := Run(mk(1, CoreEvent))
	if err != nil {
		t.Fatal(err)
	}
	if spanSlotsFastForwarded.Load() == before {
		t.Fatal("reference run never entered the span fast path; the comparison is vacuous")
	}
	for _, tc := range []struct {
		name    string
		workers int
		core    Core
	}{
		{"workers4-event", 4, CoreEvent},
		{"workers1-slot", 1, CoreSlot},
		{"workers4-slot", 4, CoreSlot},
	} {
		got, err := Run(mk(tc.workers, tc.core))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s diverged from workers=1 event core", tc.name)
		}
	}
}
