package sim

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// TestObserveTableEquivalence pins the observe fast path: every scenario
// must produce the identical Result with the periodic resident tables on
// and off. The matrix covers the quiet fast path itself, fault-driven
// down-mask patching, surge-heavy runs (fast path standing down for long
// stretches), the mixed long-job workload (longActive gating), and an
// explicit-jobs run whose widened horizon forces real t % period wraps.
func TestObserveTableEquivalence(t *testing.T) {
	base := func(sc scheduler.Scheme, seed int64) Config {
		return Config{
			NumPMs: 6, NumVMs: 24, NumJobs: 40, Seed: seed,
			Warmup: 40, ArrivalSpan: 30, Drain: 60,
			Scheduler: scheduler.Config{Scheme: sc, Seed: seed},
			Clock:     &VirtualClock{StepMicros: 50},
			Workers:   1,
		}
	}
	scenarios := []struct {
		name string
		cfg  func() Config
	}{
		{"plain-rccr", func() Config { return base(scheduler.RCCR, 7) }},
		{"faulted", func() Config {
			cfg := base(scheduler.CORP, 11)
			cfg.Faults = faults.Config{
				Seed: 11, VMCrashProb: 0.01, MeanDowntime: 12,
				SurgeProb: 0.02, DelayProb: 0.05,
			}
			return cfg
		}},
		{"surged", func() Config {
			cfg := base(scheduler.RCCR, 13)
			cfg.Faults = faults.Config{
				Seed: 13, SurgeProb: 0.25, SurgeFactor: 1.8, MeanDowntime: 8,
			}
			return cfg
		}},
		{"mixed-long", func() Config {
			cfg := base(scheduler.CORP, 9)
			cfg.LongJobs = 8
			return cfg
		}},
		{"span-quiet-tail", func() Config {
			// A short burst followed by a long drain: the tail is pure
			// quiescence, so the event core fast-forwards span after span
			// (each bounded by the refresh event); the tables-off side
			// disables the spans too, so this pins the span replay against
			// the fully plain per-slot path.
			cfg := base(scheduler.RCCR, 17)
			cfg.ArrivalSpan = 10
			cfg.Drain = 200
			return cfg
		}},
		{"span-edge-fault", func() Config {
			// Faults during a quiet-heavy run: the injector re-arms its
			// draw event every slot, so every would-be span is bounded at
			// its edge by a fault draw and the fast path must stand down;
			// crash/recovery transitions land exactly on those edges.
			cfg := base(scheduler.RCCR, 19)
			cfg.ArrivalSpan = 10
			cfg.Drain = 150
			cfg.Faults = faults.Config{
				Seed: 19, VMCrashProb: 0.02, MeanDowntime: 10,
			}
			return cfg
		}},
		{"span-refresh-bisect", func() Config {
			// A refresh window far wider than the default bisects the quiet
			// tail into long spans whose only boundary is the refresh event
			// itself — the span must stop exactly at the refresh slot so the
			// matured prediction outcomes drain there and nowhere else.
			cfg := base(scheduler.RCCR, 23)
			cfg.Scheduler.RCCR.Window = 25
			cfg.ArrivalSpan = 10
			cfg.Drain = 200
			return cfg
		}},
		{"explicit-wrap", func() Config {
			cfg := base(scheduler.RCCR, 3)
			// Late-arriving explicit jobs widen the run horizon well past
			// the resident period, so table rows are read through several
			// full t % Period wraps.
			var jobs []*job.Job
			for i := 0; i < 12; i++ {
				usage := make([]resource.Vector, 4)
				for s := range usage {
					usage[s] = resource.Vector{0.2, 0.8, 2}
				}
				jobs = append(jobs, &job.Job{
					ID: job.ID(1000 + i), Arrival: 10 + 25*i,
					Request: resource.Vector{0.4, 1.6, 4}, Usage: usage,
					Duration: 4, SLOFactor: 10,
				})
			}
			cfg.ExplicitJobs = jobs
			return cfg
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			on := sc.cfg()
			want, err := Run(on)
			if err != nil {
				t.Fatal(err)
			}
			off := sc.cfg()
			off.DisableResidentTables = true
			got, err := Run(off)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("tables-off run diverged from tables-on:\n on:  %+v\n off: %+v", want, got)
			}
		})
	}
}

// TestScaleProfileSmoke runs the 5000-PM / 20000-VM scale profile at a
// truncated horizon — the same cluster and VM-capacity shape as the
// scale/sim-scale5k-rccr bench, just few enough jobs to finish in seconds —
// and pins tables-on versus tables-off bit-identical at that scale. This is
// the only tier-1 test that exercises the 20k-VM fast paths (SoA scan
// blocks, table rows, active-set shards) at their real width.
func TestScaleProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short mode")
	}
	cfg := Config{
		Profile: cluster.ProfileScale,
		NumJobs: 4000, Seed: 1,
		Warmup: 5, ArrivalSpan: 10, Drain: 30,
		Scheduler: scheduler.Config{Scheme: scheduler.RCCR, Seed: 1},
		Jobs: trace.Config{
			MeanDuration: 8,
			VMCapacity:   resource.Vector{0.5, 2, 8},
		},
		Clock:   &VirtualClock{StepMicros: 50},
		Workers: 1,
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.NumJobs != 4000 {
		t.Fatalf("NumJobs = %d, want 4000", want.NumJobs)
	}
	if want.PlacedOpportunistic+want.PlacedFresh == 0 {
		t.Fatal("scale smoke placed no jobs; the run is vacuous")
	}
	off := cfg
	off.DisableResidentTables = true
	got, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("scale profile diverged with resident tables disabled")
	}
}
