package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/resource"
)

// TimelinePoint is one slot's snapshot of the run, recorded when
// Config.RecordTimeline is set. It backs "utilization over time" analyses
// and the corpsim -timeline output.
type TimelinePoint struct {
	Slot int
	// ShortUtil is the short-job overall utilization this slot (Eq. 2
	// over the submitted jobs); zero when no short job is running.
	ShortUtil float64
	// ClusterUtil is the whole-cluster overall utilization this slot.
	ClusterUtil float64
	// UnusedCPU is the total actual unused CPU across VMs (cores).
	UnusedCPU float64
	// OppInUseCPU is the total opportunistically allocated CPU (cores).
	OppInUseCPU float64
	// RunningShort and Queued count short jobs in flight and waiting.
	RunningShort int
	Queued       int
}

// WriteTimelineCSV renders a timeline as CSV with a header row.
func WriteTimelineCSV(w io.Writer, points []TimelinePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"slot", "short_util", "cluster_util", "unused_cpu", "opp_in_use_cpu", "running", "queued",
	}); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, p := range points {
		if err := cw.Write([]string{
			strconv.Itoa(p.Slot), f(p.ShortUtil), f(p.ClusterUtil),
			f(p.UnusedCPU), f(p.OppInUseCPU),
			strconv.Itoa(p.RunningShort), strconv.Itoa(p.Queued),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTimelineCSV parses a timeline written by WriteTimelineCSV.
func ReadTimelineCSV(r io.Reader) ([]TimelinePoint, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sim: timeline header: %w", err)
	}
	if len(header) != 7 {
		return nil, fmt.Errorf("sim: timeline header has %d columns", len(header))
	}
	var out []TimelinePoint
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ints := make([]int, 0, 3)
		for _, idx := range []int{0, 5, 6} {
			v, err := strconv.Atoi(row[idx])
			if err != nil {
				return nil, fmt.Errorf("sim: timeline column %d: %w", idx, err)
			}
			ints = append(ints, v)
		}
		floats := make([]float64, 0, 4)
		for _, idx := range []int{1, 2, 3, 4} {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				return nil, fmt.Errorf("sim: timeline column %d: %w", idx, err)
			}
			floats = append(floats, v)
		}
		out = append(out, TimelinePoint{
			Slot: ints[0], ShortUtil: floats[0], ClusterUtil: floats[1],
			UnusedCPU: floats[2], OppInUseCPU: floats[3],
			RunningShort: ints[1], Queued: ints[2],
		})
	}
	return out, nil
}

// snapshotTimeline builds one slot's point from the loop's ledgers.
func snapshotTimeline(t int, weights resource.Weights,
	shortAlloc, shortDemand, clusterAlloc, clusterDemand resource.Vector,
	unused []resource.Vector, vms []*vmState, queued int) TimelinePoint {
	p := TimelinePoint{Slot: t, Queued: queued}
	if den := shortAlloc.Weighted(weights); den > 0 {
		p.ShortUtil = shortDemand.Weighted(weights) / den
	}
	if den := clusterAlloc.Weighted(weights); den > 0 {
		p.ClusterUtil = clusterDemand.Weighted(weights) / den
	}
	for _, u := range unused {
		p.UnusedCPU += u.At(resource.CPU)
	}
	for _, st := range vms {
		p.OppInUseCPU += st.oppInUse.At(resource.CPU)
		p.RunningShort += len(st.running)
	}
	return p
}
