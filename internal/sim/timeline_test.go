package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelineCSVRoundTrip(t *testing.T) {
	points := []TimelinePoint{
		{Slot: 0, ShortUtil: 0.5, ClusterUtil: 0.4, UnusedCPU: 12.5, OppInUseCPU: 3, RunningShort: 4, Queued: 1},
		{Slot: 1, ShortUtil: 0.75, ClusterUtil: 0.45, UnusedCPU: 11, OppInUseCPU: 4.5, RunningShort: 5, Queued: 0},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(points) {
		t.Fatalf("round trip %d points", len(back))
	}
	for i := range points {
		if back[i] != points[i] {
			t.Errorf("point %d: %+v vs %+v", i, back[i], points[i])
		}
	}
}

func TestReadTimelineCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadTimelineCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("short header accepted")
	}
	bad := "slot,short_util,cluster_util,unused_cpu,opp_in_use_cpu,running,queued\nx,0,0,0,0,0,0\n"
	if _, err := ReadTimelineCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad slot accepted")
	}
	bad2 := "slot,short_util,cluster_util,unused_cpu,opp_in_use_cpu,running,queued\n0,y,0,0,0,0,0\n"
	if _, err := ReadTimelineCSV(strings.NewReader(bad2)); err == nil {
		t.Error("bad float accepted")
	}
}
