package sim

import (
	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/workload"
)

// workloadParams derives the content-address of the workload a run with
// this (already defaulted) config generates: the generator configs with the
// run seed folded in and every cluster-derived default resolved. Run and
// PrepareWorkload both go through here, so a prepared snapshot and in-run
// generation are keyed — and therefore generated — identically.
func workloadParams(cfg Config, vmCaps []resource.Vector) workload.Params {
	horizon := cfg.Warmup + cfg.ArrivalSpan + cfg.Drain

	resCfg := cfg.Residents
	resCfg.Seed ^= cfg.Seed
	if resCfg.Horizon < horizon {
		resCfg.Horizon = horizon
	}

	// Explicit specs bypass the short-job generator entirely; the
	// snapshot then carries only residents (and long jobs, if any).
	var jobCfg trace.Config
	if cfg.ExplicitJobs == nil {
		jobCfg = cfg.Jobs
		jobCfg.Seed ^= cfg.Seed
		jobCfg.NumJobs = cfg.NumJobs
		jobCfg.ArrivalSpan = cfg.ArrivalSpan
		if jobCfg.VMCapacity.IsZero() {
			jobCfg.VMCapacity = vmCaps[0]
		}
	}

	var longCfg trace.LongJobConfig
	if cfg.LongJobs > 0 {
		longCfg = cfg.Long
		longCfg.Seed ^= cfg.Seed
		longCfg.NumJobs = cfg.LongJobs
		if longCfg.VMCapacity.IsZero() {
			longCfg.VMCapacity = vmCaps[0]
		}
	}

	return workload.Params{
		VMCaps:    vmCaps,
		Residents: resCfg,
		Jobs:      jobCfg,
		Long:      longCfg,
	}
}

// snapshotFor returns the workload snapshot for the given params, through
// the process-wide cache when it is enabled and by a private build when
// not (the -workload-cache=off A/B path).
func snapshotFor(p workload.Params) (*workload.Snapshot, error) {
	if workload.Default.Enabled() {
		return workload.Default.Get(p)
	}
	return workload.Build(p)
}

// WorkloadKey returns the content address (workload.Params.Key) of the
// workload the given config's Run would generate, without generating it.
// Two configs with equal keys draw bit-identical traces, so the key is the
// dedup unit for distributed work: the farm dispatcher folds it into job
// identities and workers build each distinct snapshot once per process.
func WorkloadKey(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	cl, err := cluster.New(cluster.Config{
		Profile: cfg.Profile, NumPMs: cfg.NumPMs, NumVMs: cfg.NumVMs,
		Heterogeneous: cfg.Heterogeneous,
	})
	if err != nil {
		return "", err
	}
	vmCaps := make([]resource.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		vmCaps[i] = vm.Capacity
	}
	return workloadParams(cfg, vmCaps).Key(), nil
}

// PrepareWorkload builds (or fetches from the cache) the workload snapshot
// the given config's Run would generate, without running the simulation.
// The returned snapshot can be assigned to Config.Prepared and shared
// read-only across any number of concurrent runs whose workload-affecting
// fields match; RunMany uses this to generate each distinct workload in a
// sweep exactly once.
func PrepareWorkload(cfg Config) (*workload.Snapshot, error) {
	cfg = cfg.withDefaults()
	cl, err := cluster.New(cluster.Config{
		Profile: cfg.Profile, NumPMs: cfg.NumPMs, NumVMs: cfg.NumVMs,
		Heterogeneous: cfg.Heterogeneous,
	})
	if err != nil {
		return nil, err
	}
	vmCaps := make([]resource.Vector, len(cl.VMs))
	for i, vm := range cl.VMs {
		vmCaps[i] = vm.Capacity
	}
	return snapshotFor(workloadParams(cfg, vmCaps))
}
