package sim

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/job"
	"repro/internal/scheduler"
	"repro/internal/trace"
	"repro/internal/workload"
)

// workloadCfg is a mixed-workload run (long jobs, heterogeneous VMs) small
// enough to repeat per scheme; the VirtualClock makes whole Results
// comparable.
func workloadCfg(sc scheduler.Scheme, seed int64) Config {
	return Config{
		NumPMs: 6, NumVMs: 24, NumJobs: 40, Seed: seed,
		Heterogeneous: true,
		LongJobs:      4,
		Warmup:        40, ArrivalSpan: 30, Drain: 60,
		Scheduler: scheduler.Config{Scheme: sc, Seed: seed},
		Clock:     &VirtualClock{StepMicros: 50},
		Workers:   1,
	}
}

// uncached runs f with the process-wide snapshot cache disabled, restoring
// its previous state afterwards.
func uncached(f func()) {
	prev := workload.Default.Enabled()
	workload.Default.SetEnabled(false)
	defer workload.Default.SetEnabled(prev)
	f()
}

// TestPreparedMatchesInline pins the tentpole's equivalence contract at
// the single-run level: for every scheme, a run driven by a pre-built
// snapshot (Config.Prepared), a run that generates inline with the cache
// off, and a run served by the cache all produce identical Results.
func TestPreparedMatchesInline(t *testing.T) {
	schemes := append(scheduler.Schemes(), scheduler.Oracle)
	for _, sc := range schemes {
		sc := sc
		// Serial subtests: uncached() toggles a process-wide flag, which
		// parallel siblings would race on.
		t.Run(sc.String(), func(t *testing.T) {
			var want *Result
			uncached(func() {
				var err error
				want, err = Run(workloadCfg(sc, 7))
				if err != nil {
					t.Fatal(err)
				}
			})

			snap, err := PrepareWorkload(workloadCfg(sc, 7))
			if err != nil {
				t.Fatal(err)
			}
			var got *Result
			uncached(func() {
				cfg := workloadCfg(sc, 7)
				cfg.Prepared = snap
				got, err = Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
			})
			if !reflect.DeepEqual(want, got) {
				t.Errorf("prepared run diverged from inline generation:\n  inline:   %+v\n  prepared: %+v", want, got)
			}
		})
	}
}

// TestPreparedCacheMatchesInline repeats the pin through the process-wide
// cache path (snapshot fetched by Run itself rather than supplied).
func TestPreparedCacheMatchesInline(t *testing.T) {
	cfg := workloadCfg(scheduler.CORP, 13)
	var want *Result
	uncached(func() {
		var err error
		want, err = Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	prev := workload.Default.Enabled()
	workload.Default.SetEnabled(true)
	defer workload.Default.SetEnabled(prev)
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("cache-served run diverged from inline generation")
	}
}

// TestPreparedMatchesInlineFaulted repeats the pin under fault injection:
// evictions, retries and surge slots must also match exactly, and the
// shared snapshot must survive a faulted run unmodified.
func TestPreparedMatchesInlineFaulted(t *testing.T) {
	mk := func() Config {
		cfg := workloadCfg(scheduler.CORP, 11)
		cfg.Faults = faults.Config{
			Seed:         11,
			VMCrashProb:  0.01,
			MeanDowntime: 12,
			SurgeProb:    0.02,
		}
		return cfg
	}
	var want *Result
	uncached(func() {
		var err error
		want, err = Run(mk())
		if err != nil {
			t.Fatal(err)
		}
	})
	if want.Recovery.VMCrashes == 0 {
		t.Fatal("fault profile injected no crashes")
	}
	snap, err := PrepareWorkload(mk())
	if err != nil {
		t.Fatal(err)
	}
	uncached(func() {
		cfg := mk()
		cfg.Prepared = snap
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Error("faulted prepared run diverged from inline generation")
		}
		// The faulted run must not have written through the snapshot:
		// a second prepared run sees identical inputs.
		again, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Error("second prepared run diverged — snapshot was mutated")
		}
	})
}

// TestPreparedKeyMismatch pins the fail-fast: a snapshot prepared for a
// different workload must be rejected, not silently simulated.
func TestPreparedKeyMismatch(t *testing.T) {
	snap, err := PrepareWorkload(workloadCfg(scheduler.DRA, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloadCfg(scheduler.DRA, 8) // different seed → different key
	cfg.Prepared = snap
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("expected key-mismatch error, got %v", err)
	}
}

// TestConcurrentRunsSharedSnapshot is the -race pin for read-only sharing:
// many concurrent runs — all four schemes, faulted and fault-free — drive
// off one snapshot, and each must reproduce its serial reference exactly.
func TestConcurrentRunsSharedSnapshot(t *testing.T) {
	mk := func(sc scheduler.Scheme, faulted bool) Config {
		cfg := workloadCfg(sc, 21)
		if faulted {
			cfg.Faults = faults.Config{Seed: 21, VMCrashProb: 0.01, MeanDowntime: 12}
		}
		return cfg
	}
	snap, err := PrepareWorkload(mk(scheduler.CORP, false))
	if err != nil {
		t.Fatal(err)
	}
	type variant struct {
		sc      scheduler.Scheme
		faulted bool
	}
	var variants []variant
	for _, sc := range scheduler.Schemes() {
		variants = append(variants, variant{sc, false}, variant{sc, true})
	}
	want := make([]*Result, len(variants))
	uncached(func() {
		for i, v := range variants {
			cfg := mk(v.sc, v.faulted)
			cfg.Prepared = snap
			if want[i], err = Run(cfg); err != nil {
				t.Fatal(err)
			}
		}
	})

	repeats := 3
	if testing.Short() {
		repeats = 1 // the -race CI target runs -short; one pass suffices there
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(variants)*repeats)
	for r := 0; r < repeats; r++ {
		for i, v := range variants {
			wg.Add(1)
			go func(i int, v variant) {
				defer wg.Done()
				cfg := mk(v.sc, v.faulted)
				cfg.Prepared = snap
				got, err := Run(cfg)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(want[i], got) {
					t.Errorf("%s (faulted=%v): concurrent shared-snapshot run diverged", v.sc, v.faulted)
				}
			}(i, v)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestExplicitJobsNotMutated pins the immutability side of the snapshot
// contract on the explicit-trace path: Run must never write its warmup
// offset through caller-owned specs, so the same slice drives repeated
// runs identically.
func TestExplicitJobsNotMutated(t *testing.T) {
	jobs, err := trace.GenerateShortJobs(trace.Config{Seed: 3, NumJobs: 20, ArrivalSpan: 30})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([]int, len(jobs))
	for i, j := range jobs {
		arrivals[i] = j.Arrival
	}
	cfg := workloadCfg(scheduler.DRA, 5)
	cfg.ExplicitJobs = jobs
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if j.Arrival != arrivals[i] {
			t.Fatalf("job %d arrival mutated: %d -> %d", j.ID, arrivals[i], j.Arrival)
		}
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("second explicit-jobs run diverged — specs were mutated")
	}
}

// TestRuntimeArrivalOffset pins that the warmup offset lives on runtime
// state: response times are measured from the offset arrival while the
// spec keeps its generator-relative slot.
func TestRuntimeArrivalOffset(t *testing.T) {
	spec := &job.Job{ID: 1, Arrival: 5, Duration: 2, SLOFactor: 2}
	rt := job.NewRuntimeAt(spec, spec.Arrival+90)
	rt.Finished = 100
	if got := rt.ResponseTime(); got != 100-95+1 {
		t.Errorf("ResponseTime = %d, want %d", got, 100-95+1)
	}
	if spec.Arrival != 5 {
		t.Errorf("spec arrival mutated to %d", spec.Arrival)
	}
}
