package stats

// Exponential smoothing (ETS) forecasters. The RCCR baseline of the paper
// "used a time series forecasting technique, i.e., Exponential Smoothing
// (ETS), to predict the amount of unused resource of VMs" (Section IV).
// Both simple exponential smoothing and Holt's linear-trend method are
// provided; RCCR uses Holt so it can track drifting baselines.

// SimpleETS is simple exponential smoothing: level only, no trend.
type SimpleETS struct {
	alpha float64
	level float64
	ready bool
}

// NewSimpleETS returns a simple exponential smoother. Alpha is clamped to
// (0, 1].
func NewSimpleETS(alpha float64) *SimpleETS {
	if alpha <= 0 {
		alpha = 0.3
	}
	if alpha > 1 {
		alpha = 1
	}
	return &SimpleETS{alpha: alpha}
}

// Observe folds one sample into the level.
func (s *SimpleETS) Observe(x float64) {
	if !s.ready {
		s.level = x
		s.ready = true
		return
	}
	s.level = s.alpha*x + (1-s.alpha)*s.level
}

// Forecast returns the h-step-ahead forecast. For simple smoothing the
// forecast is flat: the current level for any horizon h ≥ 1.
func (s *SimpleETS) Forecast(h int) float64 { return s.level }

// Ready reports whether at least one sample has been observed.
func (s *SimpleETS) Ready() bool { return s.ready }

// HoltETS is Holt's linear-trend double exponential smoothing.
type HoltETS struct {
	alpha, beta  float64
	level, trend float64
	seen         int
	prev         float64
}

// NewHoltETS returns a Holt forecaster. Parameters are clamped to (0, 1].
func NewHoltETS(alpha, beta float64) *HoltETS {
	if alpha <= 0 {
		alpha = 0.5
	}
	if alpha > 1 {
		alpha = 1
	}
	if beta <= 0 {
		beta = 0.1
	}
	if beta > 1 {
		beta = 1
	}
	return &HoltETS{alpha: alpha, beta: beta}
}

// Observe folds one sample into level and trend. The first two samples
// initialize level and trend directly.
func (h *HoltETS) Observe(x float64) {
	switch h.seen {
	case 0:
		h.level = x
		h.prev = x
		h.seen = 1
		return
	case 1:
		h.trend = x - h.prev
		h.level = x
		h.seen = 2
		return
	}
	prevLevel := h.level
	h.level = h.alpha*x + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	h.seen++
}

// Forecast returns the k-step-ahead forecast level + k·trend. k values
// below 1 are treated as 1.
func (h *HoltETS) Forecast(k int) float64 {
	if k < 1 {
		k = 1
	}
	return h.level + float64(k)*h.trend
}

// Ready reports whether the forecaster has seen at least two samples (so
// the trend is initialized).
func (h *HoltETS) Ready() bool { return h.seen >= 2 }

// FitHolt runs a Holt forecaster over the whole series and returns the
// 1-step-ahead forecast past its end. Convenience for batch callers.
func FitHolt(series []float64, alpha, beta float64) float64 {
	h := NewHoltETS(alpha, beta)
	for _, x := range series {
		h.Observe(x)
	}
	return h.Forecast(1)
}
