package stats

import "math"

// FFT support. The direct DFT in signature.go is fine for the prediction
// windows the schedulers use (tens of samples); offline trace analysis
// (cmd/tracegen, long resident series) benefits from the O(n log n)
// transform, and PeriodogramFFT produces the same spectrum as Periodogram
// on power-of-two inputs.

// FFT computes the in-place radix-2 Cooley–Tukey transform of the complex
// sequence given as separate real and imaginary slices. Both slices must
// have the same power-of-two length; it returns false otherwise.
func FFT(re, im []float64) bool {
	n := len(re)
	if n == 0 || n != len(im) || n&(n-1) != 0 {
		return false
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j], im[j] = re[i]-tRe, im[i]-tIm
				re[i], im[i] = re[i]+tRe, im[i]+tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
	return true
}

// PeriodogramFFT computes the same power spectrum as Periodogram using the
// FFT. The series length must be a power of two ≥ 4; it returns nil
// otherwise.
func PeriodogramFFT(series []float64) []float64 {
	n := len(series)
	if n < 4 || n&(n-1) != 0 {
		return nil
	}
	m := Mean(series)
	re := make([]float64, n)
	im := make([]float64, n)
	for i, x := range series {
		re[i] = x - m
	}
	if !FFT(re, im) {
		return nil
	}
	half := n / 2
	power := make([]float64, half)
	for k := 1; k <= half; k++ {
		power[k-1] = (re[k]*re[k] + im[k]*im[k]) / float64(n)
	}
	return power
}

// Autocorrelation returns the normalized autocorrelation r(lag) for
// lag = 0..maxLag (r(0) = 1). It returns nil when the series is shorter
// than 2 or has zero variance.
func Autocorrelation(series []float64, maxLag int) []float64 {
	n := len(series)
	if n < 2 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	m := Mean(series)
	var denom float64
	for _, x := range series {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var num float64
		for t := 0; t+lag < n; t++ {
			num += (series[t] - m) * (series[t+lag] - m)
		}
		out[lag] = num / denom
	}
	return out
}

// DominantLag returns the lag ≥ minLag with the highest autocorrelation,
// and whether it exceeds the threshold — a time-domain alternative to
// DominantPeriod for signature detection.
func DominantLag(series []float64, minLag int, threshold float64) (int, bool) {
	if minLag < 1 {
		minLag = 1
	}
	ac := Autocorrelation(series, len(series)/2)
	if ac == nil || len(ac) <= minLag {
		return 0, false
	}
	best := minLag
	for lag := minLag; lag < len(ac); lag++ {
		if ac[lag] > ac[best] {
			best = lag
		}
	}
	return best, ac[best] >= threshold
}
