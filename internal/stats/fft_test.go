package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTRejectsBadInput(t *testing.T) {
	if FFT(nil, nil) {
		t.Error("empty input should fail")
	}
	if FFT(make([]float64, 3), make([]float64, 3)) {
		t.Error("non-power-of-two should fail")
	}
	if FFT(make([]float64, 4), make([]float64, 8)) {
		t.Error("mismatched lengths should fail")
	}
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Direct DFT.
	wantRe := make([]float64, n)
	wantIm := make([]float64, n)
	for k := 0; k < n; k++ {
		for t2 := 0; t2 < n; t2++ {
			ang := -2 * math.Pi * float64(k) * float64(t2) / float64(n)
			wantRe[k] += x[t2] * math.Cos(ang)
			wantIm[k] += x[t2] * math.Sin(ang)
		}
	}
	re := append([]float64(nil), x...)
	im := make([]float64, n)
	if !FFT(re, im) {
		t.Fatal("FFT failed")
	}
	for k := 0; k < n; k++ {
		if math.Abs(re[k]-wantRe[k]) > 1e-9 || math.Abs(im[k]-wantIm[k]) > 1e-9 {
			t.Fatalf("bin %d: FFT (%v, %v), DFT (%v, %v)", k, re[k], im[k], wantRe[k], wantIm[k])
		}
	}
}

// Property: Parseval's theorem — energy in time equals energy in frequency
// divided by n.
func TestQuickFFTParseval(t *testing.T) {
	f := func(raw []float64) bool {
		n := 16
		x := make([]float64, n)
		for i := range x {
			if i < len(raw) {
				x[i] = math.Mod(raw[i], 100)
				if math.IsNaN(x[i]) {
					x[i] = 0
				}
			}
		}
		var timeEnergy float64
		for _, v := range x {
			timeEnergy += v * v
		}
		re := append([]float64(nil), x...)
		im := make([]float64, n)
		if !FFT(re, im) {
			return false
		}
		var freqEnergy float64
		for k := range re {
			freqEnergy += re[k]*re[k] + im[k]*im[k]
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodogramFFTMatchesDirect(t *testing.T) {
	n := 64
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/8) + 0.3*math.Cos(2*math.Pi*float64(i)/16)
	}
	direct := Periodogram(series)
	fast := PeriodogramFFT(series)
	if fast == nil {
		t.Fatal("PeriodogramFFT failed on power-of-two input")
	}
	if len(direct) != len(fast) {
		t.Fatalf("lengths differ: %d vs %d", len(direct), len(fast))
	}
	for k := range direct {
		if math.Abs(direct[k]-fast[k]) > 1e-9*(1+direct[k]) {
			t.Fatalf("bin %d: direct %v, fft %v", k, direct[k], fast[k])
		}
	}
	if PeriodogramFFT(series[:60]) != nil {
		t.Error("non-power-of-two should return nil")
	}
}

func TestAutocorrelation(t *testing.T) {
	if Autocorrelation([]float64{1}, 4) != nil {
		t.Error("too-short series should be nil")
	}
	if Autocorrelation([]float64{2, 2, 2, 2}, 2) != nil {
		t.Error("zero-variance series should be nil")
	}
	// Period-4 signal: r(4) should be strongly positive, r(2) negative.
	var series []float64
	for i := 0; i < 40; i++ {
		series = append(series, math.Sin(2*math.Pi*float64(i)/4))
	}
	ac := Autocorrelation(series, 8)
	if math.Abs(ac[0]-1) > 1e-12 {
		t.Errorf("r(0) = %v, want 1", ac[0])
	}
	if ac[4] < 0.8 {
		t.Errorf("r(4) = %v, want strong positive", ac[4])
	}
	if ac[2] > -0.8 {
		t.Errorf("r(2) = %v, want strong negative", ac[2])
	}
	// maxLag clamping.
	if got := Autocorrelation([]float64{1, 2, 3}, 10); len(got) != 3 {
		t.Errorf("clamped lags = %d, want 3", len(got))
	}
}

func TestDominantLag(t *testing.T) {
	var series []float64
	for i := 0; i < 48; i++ {
		series = append(series, math.Sin(2*math.Pi*float64(i)/6))
	}
	lag, ok := DominantLag(series, 2, 0.5)
	if !ok || lag != 6 {
		t.Errorf("DominantLag = (%d, %v), want (6, true)", lag, ok)
	}
	if _, ok := DominantLag([]float64{1, 2}, 1, 0.5); ok {
		t.Error("tiny series should not detect a lag")
	}
}

func TestHoltWintersSeasonal(t *testing.T) {
	// Level 10 + seasonal pattern {+2, 0, −2, 0} with period 4.
	season := []float64{2, 0, -2, 0}
	h := NewHoltWintersETS(0.3, 0.05, 0.2, 4)
	for i := 0; i < 60; i++ {
		h.Observe(10 + season[i%4])
	}
	if !h.Ready() {
		t.Fatal("should be initialized")
	}
	// One-step forecast: next index is 60 % 4 = 0 → ≈ 12.
	if got := h.Forecast(1); math.Abs(got-12) > 0.3 {
		t.Errorf("Forecast(1) = %v, want ≈ 12", got)
	}
	// Three steps ahead: index 62 % 4 = 2 → ≈ 8.
	if got := h.Forecast(3); math.Abs(got-8) > 0.3 {
		t.Errorf("Forecast(3) = %v, want ≈ 8", got)
	}
}

func TestHoltWintersBeforeReady(t *testing.T) {
	h := NewHoltWintersETS(0.3, 0.1, 0.2, 4)
	h.Observe(5)
	h.Observe(7)
	if h.Ready() {
		t.Error("not enough data to initialize")
	}
	if got := h.Forecast(1); math.Abs(got-6) > 1e-12 {
		t.Errorf("pre-init forecast = %v, want buffered mean 6", got)
	}
}

func TestHoltWintersClamping(t *testing.T) {
	h := NewHoltWintersETS(-1, 2, 0, 1)
	if h.alpha <= 0 || h.beta > 1 || h.gamma <= 0 || h.period != 2 {
		t.Errorf("clamping failed: %+v", h)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4, 0, 8)
	for _, x := range []float64{-1, 0.5, 2.5, 4.5, 6.5, 9} {
		h.Observe(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// Bins: [-1, 0.5]→bin0 ×2, 2.5→bin1, 4.5→bin2, [6.5, 9]→bin3 ×2.
	want := []int{2, 1, 1, 2}
	for b, w := range want {
		if h.Count(b) != w {
			t.Errorf("bin %d = %d, want %d", b, h.Count(b), w)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 0, 10)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%10) + 0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-5) > 1.1 {
		t.Errorf("median = %v, want ≈ 5", q)
	}
	if q := h.Quantile(0); q > 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 9 {
		t.Errorf("q1 = %v", q)
	}
	empty := NewHistogram(4, 0, 1)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be lo")
	}
	// Degenerate construction.
	d := NewHistogram(0, 5, 5)
	d.Observe(5)
	if d.Total() != 1 {
		t.Error("degenerate histogram should still count")
	}
}

// Property: histogram quantiles are monotone in q.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(16, 0, 1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		h.Observe(rng.Float64())
	}
	f := func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		return h.Quantile(lo) <= h.Quantile(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) / 7)
	}
	re := make([]float64, n)
	im := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(re, x)
		for j := range im {
			im[j] = 0
		}
		FFT(re, im)
	}
}

func BenchmarkPeriodogramFFT256VsDirect(b *testing.B) {
	n := 256
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(float64(i) / 5)
	}
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PeriodogramFFT(series)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Periodogram(series)
		}
	})
}
