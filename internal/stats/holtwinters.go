package stats

// HoltWintersETS is additive triple exponential smoothing (Holt–Winters):
// level, trend and a seasonal component of fixed period. The paper's RCCR
// discussion cites seasonal time-series configuration (Taskaya-Temizel &
// Casey) as the family its forecasting comes from; Holt–Winters lets the
// RCCR baseline be upgraded when workloads do have daily/period structure,
// and serves as another point of comparison in the extension experiments.
type HoltWintersETS struct {
	alpha, beta, gamma float64
	period             int

	level, trend float64
	seasonal     []float64
	initBuf      []float64
	seen         int
	ready        bool
}

// NewHoltWintersETS returns a Holt–Winters forecaster with the given
// smoothing parameters and seasonal period (≥ 2). Parameters are clamped
// to (0, 1].
func NewHoltWintersETS(alpha, beta, gamma float64, period int) *HoltWintersETS {
	clamp := func(x, def float64) float64 {
		if x <= 0 {
			return def
		}
		if x > 1 {
			return 1
		}
		return x
	}
	if period < 2 {
		period = 2
	}
	return &HoltWintersETS{
		alpha:    clamp(alpha, 0.4),
		beta:     clamp(beta, 0.1),
		gamma:    clamp(gamma, 0.2),
		period:   period,
		seasonal: make([]float64, period),
	}
}

// Observe folds one sample. The first two full periods initialize the
// level, trend and seasonal indices; smoothing starts afterwards.
func (h *HoltWintersETS) Observe(x float64) {
	if !h.ready {
		h.initBuf = append(h.initBuf, x)
		h.seen++
		if len(h.initBuf) == 2*h.period {
			h.initialize()
		}
		return
	}
	s := h.seen % h.period
	prevLevel := h.level
	h.level = h.alpha*(x-h.seasonal[s]) + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	h.seasonal[s] = h.gamma*(x-h.level) + (1-h.gamma)*h.seasonal[s]
	h.seen++
}

// initialize sets level/trend/seasonal from the first two periods.
func (h *HoltWintersETS) initialize() {
	p := h.period
	var mean1, mean2 float64
	for i := 0; i < p; i++ {
		mean1 += h.initBuf[i] / float64(p)
		mean2 += h.initBuf[p+i] / float64(p)
	}
	h.level = mean2
	h.trend = (mean2 - mean1) / float64(p)
	for i := 0; i < p; i++ {
		h.seasonal[i] = (h.initBuf[i] - mean1 + h.initBuf[p+i] - mean2) / 2
	}
	h.initBuf = nil
	h.ready = true
}

// Ready reports whether initialization has completed (two full periods).
func (h *HoltWintersETS) Ready() bool { return h.ready }

// Forecast returns the k-step-ahead forecast
// level + k·trend + seasonal[(t+k) mod period]. Before initialization it
// returns the mean of the buffered samples.
func (h *HoltWintersETS) Forecast(k int) float64 {
	if !h.ready {
		return Mean(h.initBuf)
	}
	if k < 1 {
		k = 1
	}
	s := (h.seen + k - 1) % h.period
	return h.level + float64(k)*h.trend + h.seasonal[s]
}

// Histogram is a fixed-bin histogram over [lo, hi] with clamping, used for
// offline trace analysis and the experiment harness's distribution notes.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram builds a histogram with bins ≥ 1 over [lo, hi] (a
// degenerate range is widened).
func NewHistogram(bins int, lo, hi float64) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Observe adds one sample, clamping out-of-range values to the edge bins.
func (h *Histogram) Observe(x float64) {
	f := (x - h.lo) / (h.hi - h.lo)
	b := int(f * float64(len(h.counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.total++
}

// Total returns the number of samples observed.
func (h *Histogram) Total() int { return h.total }

// Count returns bin b's count.
func (h *Histogram) Count(b int) int { return h.counts[b] }

// Quantile returns an approximate q-quantile (q in [0,1]) by walking the
// bins and interpolating inside the containing bin. It returns lo for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return h.lo
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var acc float64
	width := (h.hi - h.lo) / float64(len(h.counts))
	for b, c := range h.counts {
		next := acc + float64(c)
		if next >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(b)+frac)*width
		}
		acc = next
	}
	return h.hi
}
