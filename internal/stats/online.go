package stats

import "math"

// Online estimators: Welford mean/variance and an O(1) amortized sliding
// window min/max (monotonic deque). The per-VM predictors recompute window
// statistics every slot; these structures keep that constant-time at any
// window length.

// OnlineStats accumulates count, mean and variance in one pass (Welford's
// algorithm), numerically stable for long streams.
type OnlineStats struct {
	n    int
	mean float64
	m2   float64
}

// Observe folds one sample.
func (o *OnlineStats) Observe(x float64) {
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the sample count.
func (o *OnlineStats) N() int { return o.n }

// Mean returns the running mean (0 before any sample).
func (o *OnlineStats) Mean() float64 { return o.mean }

// Variance returns the population variance.
func (o *OnlineStats) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// SampleVariance returns the unbiased (n−1) variance.
func (o *OnlineStats) SampleVariance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// SampleStdDev returns the unbiased standard deviation.
func (o *OnlineStats) SampleStdDev() float64 {
	return math.Sqrt(o.SampleVariance())
}

// Merge folds another accumulator into this one (Chan et al.'s parallel
// combination), enabling per-shard accumulation in parallel sweeps.
func (o *OnlineStats) Merge(other OnlineStats) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	nA, nB := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := nA + nB
	o.mean += delta * nB / total
	o.m2 += other.m2 + delta*delta*nA*nB/total
	o.n += other.n
}

// SlidingExtrema tracks the minimum and maximum of the last W pushed
// samples in O(1) amortized time per push, using a pair of monotonic
// deques. It is the constant-time backing for window range (Δⱼ) and
// burst statistics.
type SlidingExtrema struct {
	window int
	idx    int
	minQ   []extremaEntry
	maxQ   []extremaEntry
	count  int
}

type extremaEntry struct {
	idx int
	val float64
}

// NewSlidingExtrema returns a tracker over a window of the given length
// (raised to 1 if smaller).
func NewSlidingExtrema(window int) *SlidingExtrema {
	if window < 1 {
		window = 1
	}
	return &SlidingExtrema{window: window}
}

// Push adds a sample, evicting entries that fell out of the window.
func (s *SlidingExtrema) Push(x float64) {
	// Pop dominated entries from the backs.
	for len(s.minQ) > 0 && s.minQ[len(s.minQ)-1].val >= x {
		s.minQ = s.minQ[:len(s.minQ)-1]
	}
	s.minQ = append(s.minQ, extremaEntry{s.idx, x})
	for len(s.maxQ) > 0 && s.maxQ[len(s.maxQ)-1].val <= x {
		s.maxQ = s.maxQ[:len(s.maxQ)-1]
	}
	s.maxQ = append(s.maxQ, extremaEntry{s.idx, x})
	s.idx++
	if s.count < s.window {
		s.count++
	}
	// Expire entries outside the window from the fronts.
	cutoff := s.idx - s.window
	for len(s.minQ) > 0 && s.minQ[0].idx < cutoff {
		s.minQ = s.minQ[1:]
	}
	for len(s.maxQ) > 0 && s.maxQ[0].idx < cutoff {
		s.maxQ = s.maxQ[1:]
	}
}

// Len returns how many samples are inside the window.
func (s *SlidingExtrema) Len() int { return s.count }

// Min returns the window minimum; ok is false when empty.
func (s *SlidingExtrema) Min() (v float64, ok bool) {
	if len(s.minQ) == 0 {
		return 0, false
	}
	return s.minQ[0].val, true
}

// Max returns the window maximum; ok is false when empty.
func (s *SlidingExtrema) Max() (v float64, ok bool) {
	if len(s.maxQ) == 0 {
		return 0, false
	}
	return s.maxQ[0].val, true
}

// Range returns max − min over the window (the paper's Δⱼ); ok is false
// when empty.
func (s *SlidingExtrema) Range() (v float64, ok bool) {
	lo, ok1 := s.Min()
	hi, ok2 := s.Max()
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi - lo, true
}
