package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineStatsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var o OnlineStats
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Observe(xs[i])
	}
	if o.N() != 500 {
		t.Errorf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-Mean(xs)) > 1e-10 {
		t.Errorf("mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if math.Abs(o.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("variance %v vs batch %v", o.Variance(), Variance(xs))
	}
	if math.Abs(o.SampleStdDev()-SampleStdDev(xs)) > 1e-9 {
		t.Errorf("stddev %v vs batch %v", o.SampleStdDev(), SampleStdDev(xs))
	}
}

func TestOnlineStatsEmpty(t *testing.T) {
	var o OnlineStats
	if o.Mean() != 0 || o.Variance() != 0 || o.SampleVariance() != 0 {
		t.Error("empty accumulator should be zero")
	}
}

func TestOnlineStatsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b OnlineStats
	for i := 0; i < 400; i++ {
		x := rng.ExpFloat64()
		all.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-10 {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	// Merging into/with empty.
	var empty OnlineStats
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Error("merge into empty lost samples")
	}
	before := a.N()
	a.Merge(OnlineStats{})
	if a.N() != before {
		t.Error("merging empty changed the accumulator")
	}
}

func TestSlidingExtremaBasics(t *testing.T) {
	s := NewSlidingExtrema(3)
	if _, ok := s.Min(); ok {
		t.Error("empty window should have no min")
	}
	for _, x := range []float64{5, 3, 8} {
		s.Push(x)
	}
	if lo, _ := s.Min(); lo != 3 {
		t.Errorf("min = %v", lo)
	}
	if hi, _ := s.Max(); hi != 8 {
		t.Errorf("max = %v", hi)
	}
	if r, _ := s.Range(); r != 5 {
		t.Errorf("range = %v", r)
	}
	// Push 1: window becomes {3, 8, 1}.
	s.Push(1)
	if lo, _ := s.Min(); lo != 1 {
		t.Errorf("min after slide = %v", lo)
	}
	if hi, _ := s.Max(); hi != 8 {
		t.Errorf("max after slide = %v", hi)
	}
	// Push 2, 2: window {1, 2, 2} → 8 expired.
	s.Push(2)
	s.Push(2)
	if hi, _ := s.Max(); hi != 2 {
		t.Errorf("max after expiry = %v", hi)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSlidingExtremaWindowOne(t *testing.T) {
	s := NewSlidingExtrema(0) // raised to 1
	s.Push(4)
	s.Push(9)
	if lo, _ := s.Min(); lo != 9 {
		t.Errorf("window-1 min = %v, want the latest sample", lo)
	}
}

// Property: the deque always agrees with a brute-force window scan.
func TestQuickSlidingExtremaMatchesBruteForce(t *testing.T) {
	f := func(raw []float64, rawW uint8) bool {
		w := int(rawW%8) + 1
		s := NewSlidingExtrema(w)
		var hist []float64
		for _, x := range raw {
			if math.IsNaN(x) {
				x = 0
			}
			x = math.Mod(x, 1000)
			s.Push(x)
			hist = append(hist, x)
			start := len(hist) - w
			if start < 0 {
				start = 0
			}
			win := hist[start:]
			lo, hi := win[0], win[0]
			for _, v := range win[1:] {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			gotLo, ok1 := s.Min()
			gotHi, ok2 := s.Max()
			if !ok1 || !ok2 || gotLo != lo || gotHi != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSlidingExtremaPush(b *testing.B) {
	s := NewSlidingExtrema(64)
	for i := 0; i < b.N; i++ {
		s.Push(float64(i % 97))
	}
}
