package stats

import (
	"math"
	"math/rand"
	"testing"
)

// testSeriesSet builds a varied family of series of the given length:
// clean sines at several periods, noisy sines, pure noise, a linear trend
// and a constant — the regimes the signature detector must classify.
func testSeriesSet(n int, rng *rand.Rand) [][]float64 {
	var set [][]float64
	for _, period := range []int{2, 3, 4, 5, 8} {
		if period*2 > n {
			continue
		}
		clean := make([]float64, n)
		noisy := make([]float64, n)
		for i := range clean {
			v := math.Sin(2 * math.Pi * float64(i) / float64(period))
			clean[i] = 5 + 3*v
			noisy[i] = 5 + 3*v + 0.4*rng.NormFloat64()
		}
		set = append(set, clean, noisy)
	}
	noise := make([]float64, n)
	trend := make([]float64, n)
	konst := make([]float64, n)
	for i := range noise {
		noise[i] = rng.Float64() * 10
		trend[i] = float64(i) * 0.3
		konst[i] = 7
	}
	return append(set, noise, trend, konst)
}

// TestDominantPeriodFFTAndDirectAgree pins the satellite requirement: on
// power-of-two lengths the FFT-routed decision must match the direct-DFT
// decision — same (period, ok) — for every series in the family.
func TestDominantPeriodFFTAndDirectAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shares := []float64{0.2, 0.5, 0.8}
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
		for si, series := range testSeriesSet(n, rng) {
			for _, share := range shares {
				direct := Periodogram(series)
				fft := PeriodogramFFT(series)
				if fft == nil {
					t.Fatalf("n=%d: PeriodogramFFT returned nil on power-of-two input", n)
				}
				pd, okd := dominantFromPower(direct, n, share)
				pf, okf := dominantFromPower(fft, n, share)
				if pd != pf || okd != okf {
					t.Fatalf("n=%d series=%d share=%v: direct (%d,%v) != fft (%d,%v)",
						n, si, share, pd, okd, pf, okf)
				}
				// The package entry point routes to the FFT here.
				pp, okp := DominantPeriod(series, share)
				if pp != pf || okp != okf {
					t.Fatalf("n=%d series=%d share=%v: DominantPeriod (%d,%v) != fft path (%d,%v)",
						n, si, share, pp, okp, pf, okf)
				}
			}
		}
	}
}

// TestDominantPeriodNonPow2UsesDirect checks the fallback: non-power-of-two
// lengths must produce exactly the direct-DFT decision.
func TestDominantPeriodNonPow2UsesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{5, 6, 7, 12, 30, 100} {
		for si, series := range testSeriesSet(n, rng) {
			pd, okd := dominantFromPower(Periodogram(series), n, 0.5)
			pp, okp := DominantPeriod(series, 0.5)
			if pd != pp || okd != okp {
				t.Fatalf("n=%d series=%d: DominantPeriod (%d,%v) != direct (%d,%v)",
					n, si, pp, okp, pd, okd)
			}
		}
	}
}

// TestPeriodScratchMatchesPackageFuncs pins the scratch-based CloudScale
// path to the allocating package functions bit for bit.
func TestPeriodScratchMatchesPackageFuncs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var ps PeriodScratch
	for _, n := range []int{3, 4, 6, 8, 16, 30, 32, 64, 100} {
		for si, series := range testSeriesSet(n, rng) {
			p1, ok1 := DominantPeriod(series, 0.5)
			p2, ok2 := ps.DominantPeriod(series, 0.5)
			if p1 != p2 || ok1 != ok2 {
				t.Fatalf("n=%d series=%d: scratch DominantPeriod (%d,%v) != package (%d,%v)",
					n, si, p2, ok2, p1, ok1)
			}
			for _, period := range []int{0, 1, 2, 3, 5, n/2 + 1} {
				for _, h := range []int{0, 1, 3, 6} {
					preds := SignaturePredict(series, period, h)
					got, ok := ps.SignatureMean(series, period, h)
					if (preds != nil) != ok {
						t.Fatalf("n=%d period=%d h=%d: SignatureMean ok=%v, SignaturePredict nil=%v",
							n, period, h, ok, preds == nil)
					}
					if ok {
						want := Mean(preds)
						if got != want {
							t.Fatalf("n=%d period=%d h=%d: SignatureMean %v != Mean(SignaturePredict) %v",
								n, period, h, got, want)
						}
					}
				}
			}
		}
	}
}

func TestPeriodScratchAndMarkovDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pow2 := make([]float64, 32)
	odd := make([]float64, 30)
	for i := range pow2 {
		pow2[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/4) + 0.2*rng.NormFloat64()
	}
	for i := range odd {
		odd[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/5) + 0.2*rng.NormFloat64()
	}
	var ps PeriodScratch
	ps.DominantPeriod(pow2, 0.5)
	ps.DominantPeriod(odd, 0.5)
	ps.SignatureMean(pow2, 4, 6)
	if n := testing.AllocsPerRun(100, func() {
		ps.DominantPeriod(pow2, 0.5)
		ps.DominantPeriod(odd, 0.5)
		ps.SignatureMean(pow2, 4, 6)
		ps.SignatureMean(odd, 5, 6)
	}); n != 0 {
		t.Fatalf("warm PeriodScratch allocates %v times per run, want 0", n)
	}

	mc := NewMarkovChain(8, 0, 100)
	for i := 0; i < 64; i++ {
		mc.Observe(50 + 40*math.Sin(float64(i)/3))
	}
	mc.Predict(3)
	if n := testing.AllocsPerRun(100, func() {
		mc.Predict(3)
	}); n != 0 {
		t.Fatalf("warm MarkovChain.Predict allocates %v times per run, want 0", n)
	}
}
