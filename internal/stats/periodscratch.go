package stats

import "math"

// PeriodScratch holds the reusable buffers for the CloudScale signature
// path: spectrum work areas for period detection and per-phase
// accumulators for signature replay. A zero PeriodScratch is ready to use;
// buffers grow to the largest series seen and are reused, after which the
// methods are allocation-free. Not safe for concurrent use.
type PeriodScratch struct {
	re, im, power []float64
	sig           []float64
	cnt           []int
}

func (ps *PeriodScratch) growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// DominantPeriod is the package-level DominantPeriod running on scratch
// buffers: identical spectrum (FFT for power-of-two lengths ≥ 4, direct
// DFT otherwise) and identical decision rule.
func (ps *PeriodScratch) DominantPeriod(series []float64, minShare float64) (int, bool) {
	return dominantFromPower(ps.periodogram(series), len(series), minShare)
}

// periodogram computes the k = 1..n/2 power spectrum into ps.power,
// matching Periodogram / PeriodogramFFT bit for bit.
func (ps *PeriodScratch) periodogram(series []float64) []float64 {
	n := len(series)
	if n < 4 {
		return nil
	}
	if n&(n-1) == 0 {
		return ps.periodogramFFT(series)
	}
	m := Mean(series)
	half := n / 2
	ps.power = ps.growF(ps.power, half)
	power := ps.power
	for k := 1; k <= half; k++ {
		var re, im float64
		for t, x := range series {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c := x - m
			re += c * math.Cos(angle)
			im += c * math.Sin(angle)
		}
		power[k-1] = (re*re + im*im) / float64(n)
	}
	return power
}

func (ps *PeriodScratch) periodogramFFT(series []float64) []float64 {
	n := len(series)
	m := Mean(series)
	ps.re = ps.growF(ps.re, n)
	ps.im = ps.growF(ps.im, n)
	re, im := ps.re, ps.im
	for i, x := range series {
		re[i] = x - m
		im[i] = 0
	}
	if !FFT(re, im) {
		return nil
	}
	half := n / 2
	ps.power = ps.growF(ps.power, half)
	power := ps.power
	for k := 1; k <= half; k++ {
		power[k-1] = (re[k]*re[k] + im[k]*im[k]) / float64(n)
	}
	return power
}

// SignatureMean returns Mean(SignaturePredict(series, period, h)) — the
// CloudScale window forecast — without allocating: the per-phase signature
// accumulates into scratch and the replayed values are summed in the same
// order Mean would visit them. The boolean is false exactly when
// SignaturePredict would return nil.
func (ps *PeriodScratch) SignatureMean(series []float64, period, h int) (float64, bool) {
	if period < 1 || len(series) < 2*period || h < 1 {
		return 0, false
	}
	ps.sig = ps.growF(ps.sig, period)
	if cap(ps.cnt) < period {
		ps.cnt = make([]int, period)
	}
	sig := ps.sig
	cnt := ps.cnt[:period]
	for i := range sig {
		sig[i] = 0
		cnt[i] = 0
	}
	for t, x := range series {
		p := t % period
		sig[p] += x
		cnt[p]++
	}
	for i := range sig {
		sig[i] /= float64(cnt[i])
	}
	var sum float64
	for i := 0; i < h; i++ {
		sum += sig[(len(series)+i)%period]
	}
	return sum / float64(h), true
}
