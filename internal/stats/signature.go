package stats

import "math"

// PRESS-style signature detection, used by the CloudScale baseline.
//
// CloudScale builds on PRESS (Gong et al., CNSM 2010): it computes a
// periodogram of the recent resource-usage series, and if a dominant period
// explains enough of the signal energy it predicts by replaying the
// per-period "signature" pattern; otherwise it falls back to a discrete-time
// Markov chain over binned usage levels. Short-lived jobs rarely exhibit a
// dominant period, which is precisely why CloudScale underperforms CORP in
// the paper's evaluation — this implementation preserves that behaviour.

// Periodogram returns the power spectrum |X(k)|² / n of the series for
// k = 1..n/2 (the DC component is excluded), computed with a direct DFT.
// A direct O(n²) transform is deliberate: prediction windows are tens of
// samples, so an FFT would add complexity without measurable benefit.
func Periodogram(series []float64) []float64 {
	n := len(series)
	if n < 4 {
		return nil
	}
	m := Mean(series)
	half := n / 2
	power := make([]float64, half)
	for k := 1; k <= half; k++ {
		var re, im float64
		for t, x := range series {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c := x - m
			re += c * math.Cos(angle)
			im += c * math.Sin(angle)
		}
		power[k-1] = (re*re + im*im) / float64(n)
	}
	return power
}

// DominantPeriod finds the period (in samples) whose spectral peak carries
// at least minShare of the total spectral energy. It returns (period, true)
// when such a signature exists and (0, false) otherwise. Power-of-two
// series lengths ≥ 4 go through the O(n log n) PeriodogramFFT; other
// lengths fall back to the direct DFT.
func DominantPeriod(series []float64, minShare float64) (int, bool) {
	n := len(series)
	var power []float64
	if n >= 4 && n&(n-1) == 0 {
		power = PeriodogramFFT(series)
	} else {
		power = Periodogram(series)
	}
	return dominantFromPower(power, n, minShare)
}

// dominantFromPower applies the signature decision rule to a power
// spectrum over a length-n series: the spectral peak must carry minShare
// of the energy, frequency 1 (the trend) is rejected, and the implied
// period must repeat at least twice within the window.
func dominantFromPower(power []float64, n int, minShare float64) (int, bool) {
	if len(power) == 0 {
		return 0, false
	}
	var total float64
	best := 0
	for k, p := range power {
		total += p
		if p > power[best] {
			best = k
		}
	}
	if total <= 0 {
		return 0, false
	}
	if power[best]/total < minShare {
		return 0, false
	}
	freq := best + 1 // k index
	if freq < 2 {
		// Frequency 1 is the trend itself, not a repeating signature: one
		// "period" spans the whole window, so the pattern can never be
		// validated against a second occurrence.
		return 0, false
	}
	period := n / freq
	if period < 2 {
		return 0, false
	}
	return period, true
}

// Signature extracts the average per-phase pattern for the given period:
// element i is the mean of all samples at phase i. It returns nil when the
// period does not fit in the series at least twice.
func Signature(series []float64, period int) []float64 {
	if period < 1 || len(series) < 2*period {
		return nil
	}
	sig := make([]float64, period)
	count := make([]int, period)
	for t, x := range series {
		p := t % period
		sig[p] += x
		count[p]++
	}
	for i := range sig {
		sig[i] /= float64(count[i])
	}
	return sig
}

// SignaturePredict forecasts the next h values by replaying the signature
// starting at the phase that follows the series end.
func SignaturePredict(series []float64, period, h int) []float64 {
	sig := Signature(series, period)
	if sig == nil || h < 1 {
		return nil
	}
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		out[i] = sig[(len(series)+i)%period]
	}
	return out
}

// MarkovChain is a first-order discrete-time Markov chain over usage levels
// quantized into equal-width bins. It is the PRESS fallback predictor that
// CloudScale uses "when pattern is not found".
type MarkovChain struct {
	bins   int
	lo, hi float64
	counts [][]float64 // transition counts with Laplace smoothing
	last   int
	seen   int

	// Predict scratch: smoothed row plus ping-pong state distributions,
	// allocated once at construction so steady-state prediction never
	// touches the heap.
	rowBuf, distBuf, nextBuf []float64
}

// NewMarkovChain builds a chain with the given number of bins over the
// value range [lo, hi]. Bins < 2 are raised to 2; a degenerate range is
// widened slightly so binning stays defined.
func NewMarkovChain(bins int, lo, hi float64) *MarkovChain {
	if bins < 2 {
		bins = 2
	}
	if hi <= lo {
		hi = lo + 1
	}
	slab := make([]float64, bins*bins)
	counts := make([][]float64, bins)
	for i := range counts {
		counts[i] = slab[i*bins : (i+1)*bins : (i+1)*bins]
	}
	return &MarkovChain{
		bins: bins, lo: lo, hi: hi, counts: counts,
		rowBuf:  make([]float64, bins),
		distBuf: make([]float64, bins),
		nextBuf: make([]float64, bins),
	}
}

// Bin quantizes a value into a bin index, clamping out-of-range values.
func (mc *MarkovChain) Bin(x float64) int {
	f := (x - mc.lo) / (mc.hi - mc.lo)
	b := int(f * float64(mc.bins))
	if b < 0 {
		b = 0
	}
	if b >= mc.bins {
		b = mc.bins - 1
	}
	return b
}

// binCenter returns the representative value for a bin.
func (mc *MarkovChain) binCenter(b int) float64 {
	width := (mc.hi - mc.lo) / float64(mc.bins)
	return mc.lo + (float64(b)+0.5)*width
}

// Observe folds one sample into the transition counts.
func (mc *MarkovChain) Observe(x float64) {
	b := mc.Bin(x)
	if mc.seen > 0 {
		mc.counts[mc.last][b]++
	}
	mc.last = b
	mc.seen++
}

// Fit observes an entire series.
func (mc *MarkovChain) Fit(series []float64) {
	for _, x := range series {
		mc.Observe(x)
	}
}

// TransitionRow returns the smoothed transition distribution out of bin b
// (additive smoothing of 0.1 so unseen transitions keep nonzero mass
// without drowning short histories in prior probability).
func (mc *MarkovChain) TransitionRow(b int) []float64 {
	row := make([]float64, mc.bins)
	mc.transitionRowInto(row, b)
	return row
}

// transitionRowInto writes the smoothed row into a caller-owned slice of
// length mc.bins, preserving TransitionRow's accumulation order exactly.
func (mc *MarkovChain) transitionRowInto(row []float64, b int) {
	var total float64
	for j, c := range mc.counts[b] {
		row[j] = c + 0.1
		total += row[j]
	}
	for j := range row {
		row[j] /= total
	}
}

// Predict returns the expected value h steps ahead of the last observed
// sample, computed by propagating the state distribution through the
// transition matrix. Before any observation it returns the range midpoint.
func (mc *MarkovChain) Predict(h int) float64 {
	if mc.seen == 0 {
		return (mc.lo + mc.hi) / 2
	}
	if h < 1 {
		h = 1
	}
	// Chains built by struct literal (none today) would lack the scratch;
	// guard so Predict stays total.
	if mc.rowBuf == nil {
		mc.rowBuf = make([]float64, mc.bins)
		mc.distBuf = make([]float64, mc.bins)
		mc.nextBuf = make([]float64, mc.bins)
	}
	dist, next := mc.distBuf, mc.nextBuf
	for j := range dist {
		dist[j] = 0
	}
	dist[mc.last] = 1
	for step := 0; step < h; step++ {
		for j := range next {
			next[j] = 0
		}
		for i, p := range dist {
			if p == 0 {
				continue
			}
			mc.transitionRowInto(mc.rowBuf, i)
			for j, q := range mc.rowBuf {
				next[j] += p * q
			}
		}
		dist, next = next, dist
	}
	var ev float64
	for b, p := range dist {
		ev += p * mc.binCenter(b)
	}
	return ev
}
