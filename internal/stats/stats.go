// Package stats is the statistics substrate for the CORP reproduction.
//
// It provides the numerical building blocks the paper's predictors rely on:
// descriptive statistics, standard-normal quantiles for confidence intervals
// (paper Eqs. 18–19), exponential-smoothing time-series forecasting (the ETS
// predictor used by the RCCR baseline), a periodogram/signature detector and
// a discrete-time Markov chain (the PRESS-style predictor used by the
// CloudScale baseline), and windowed online estimators.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than one
// sample).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// SampleStdDev returns the unbiased (n−1) sample standard deviation, the σ̂
// estimator the paper uses for prediction errors (Eq. 18). It returns 0 for
// fewer than two samples.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty for an
// empty slice.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for an empty
// slice.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 100 {
		return sorted[len(sorted)-1], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// (the value z with Φ(z) = p). It uses the exact inverse error function.
// p must be in (0, 1); out-of-range values return ∓Inf.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// ZForConfidence returns z_{θ/2} of paper Eq. 18: for confidence level η,
// significance θ = 1−η, the two-sided critical value is the (1 − θ/2)
// standard-normal quantile. E.g. η = 0.90 → z ≈ 1.645.
func ZForConfidence(eta float64) float64 {
	if eta < 0 {
		eta = 0
	}
	if eta > 1 {
		eta = 1
	}
	theta := 1 - eta
	return NormalQuantile(1 - theta/2)
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]. The zero value is not ready; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	ready bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new sample into the average and returns the updated value.
func (e *EWMA) Observe(x float64) float64 {
	if !e.ready {
		e.value = x
		e.ready = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Ready reports whether at least one sample has been observed.
func (e *EWMA) Ready() bool { return e.ready }

// Window is a fixed-capacity sliding window of float64 samples. It is the
// backing store for the paper's per-window prediction-error statistics
// (Eq. 20) and for HMM observation histories.
type Window struct {
	buf  []float64
	head int
	n    int
}

// NewWindow returns a window holding at most capacity samples. Capacity
// must be ≥ 1; smaller values are raised to 1.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Push appends x, evicting the oldest sample when full. The ring indices
// are wrapped with compares instead of %: head and n are both < len(buf)+1,
// so one conditional subtract reaches the same index without the integer
// division (Push runs once per predictor kind per VM per slot).
func (w *Window) Push(x float64) {
	if w.n < len(w.buf) {
		i := w.head + w.n
		if i >= len(w.buf) {
			i -= len(w.buf)
		}
		w.buf[i] = x
		w.n++
		return
	}
	w.buf[w.head] = x
	if w.head++; w.head == len(w.buf) {
		w.head = 0
	}
}

// Len returns the number of stored samples.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// At returns the i-th oldest sample (0 = oldest). It panics when i is out
// of range, matching slice semantics.
func (w *Window) At(i int) float64 {
	if i < 0 || i >= w.n {
		panic("stats: Window index out of range")
	}
	return w.buf[(w.head+i)%len(w.buf)]
}

// Values copies the samples oldest-first into a fresh slice.
func (w *Window) Values() []float64 {
	return w.AppendValues(nil)
}

// AppendValues appends the samples oldest-first to dst and returns the
// extended slice. Callers on hot paths pass a reused buffer (dst[:0]) to
// avoid the per-call allocation of Values.
func (w *Window) AppendValues(dst []float64) []float64 {
	if w.n == 0 {
		return dst
	}
	// The ring is at most two contiguous runs of buf.
	head := w.buf[w.head:]
	if len(head) >= w.n {
		return append(dst, head[:w.n]...)
	}
	dst = append(dst, head...)
	return append(dst, w.buf[:w.n-len(head)]...)
}

// TailMean returns the mean of the newest n samples (all of them when
// fewer are stored; 0 when empty). The sum visits the samples oldest-first,
// exactly the order Mean(AppendValues(...)[len-n:]) would fold them in, so
// the result is bit-identical to linearizing the ring first — without
// copying it.
func (w *Window) TailMean(n int) float64 {
	if n > w.n {
		n = w.n
	}
	if n <= 0 {
		return 0
	}
	i := w.head + w.n - n
	if i >= len(w.buf) {
		i -= len(w.buf)
	}
	var s float64
	for k := 0; k < n; k++ {
		s += w.buf[i]
		if i++; i == len(w.buf) {
			i = 0
		}
	}
	return s / float64(n)
}

// Last returns the newest sample; ok is false when empty.
func (w *Window) Last() (v float64, ok bool) {
	if w.n == 0 {
		return 0, false
	}
	return w.At(w.n - 1), true
}

// Mean returns the mean of the stored samples (0 when empty).
func (w *Window) Mean() float64 { return Mean(w.Values()) }

// Reset drops all samples.
func (w *Window) Reset() {
	w.head = 0
	w.n = 0
}
