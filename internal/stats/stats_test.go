package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSampleStdDev(t *testing.T) {
	if SampleStdDev([]float64{5}) != 0 {
		t.Error("SampleStdDev of one sample should be 0")
	}
	xs := []float64{1, 2, 3, 4, 5}
	want := math.Sqrt(2.5)
	if got := SampleStdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("SampleStdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("MinMax(nil) should return ErrEmpty")
	}
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v, %v)", lo, hi, err)
	}
}

func TestPercentile(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must not mutate its input.
	ys := []float64{5, 1, 3}
	if _, err := Percentile(ys, 50); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.025, -1.959964},
		{0.84134, 0.99998}, // ≈ Φ(1)
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile boundaries should be infinite")
	}
}

func TestZForConfidence(t *testing.T) {
	// η = 0.90 → θ = 0.10 → z_{0.05} = 1.645 (two-sided).
	if got := ZForConfidence(0.90); math.Abs(got-1.6449) > 1e-3 {
		t.Errorf("ZForConfidence(0.90) = %v", got)
	}
	// η = 0.95 → 1.96.
	if got := ZForConfidence(0.95); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("ZForConfidence(0.95) = %v", got)
	}
	// Clamping: silly inputs do not panic or produce NaN.
	if math.IsNaN(ZForConfidence(-2)) || !math.IsInf(ZForConfidence(2), 1) {
		t.Error("ZForConfidence clamping misbehaves")
	}
}

// Property: NormalQuantile is monotone increasing and antisymmetric about
// p = 0.5.
func TestQuickNormalQuantile(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 0.001 || p >= 0.999 {
			return true
		}
		z := NormalQuantile(p)
		if NormalQuantile(p+0.0005) < z {
			return false
		}
		return math.Abs(NormalQuantile(1-p)+z) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Ready() {
		t.Error("fresh EWMA should not be ready")
	}
	e.Observe(10)
	if !e.Ready() || e.Value() != 10 {
		t.Errorf("first observation should set value, got %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Errorf("EWMA = %v, want 15", e.Value())
	}
	// Clamping of silly alphas.
	if NewEWMA(-1).alpha <= 0 || NewEWMA(9).alpha > 1 {
		t.Error("alpha clamping failed")
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatalf("fresh window cap=%d len=%d", w.Cap(), w.Len())
	}
	if _, ok := w.Last(); ok {
		t.Error("empty window should have no last")
	}
	w.Push(1)
	w.Push(2)
	w.Push(3)
	w.Push(4) // evicts 1
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	got := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Values = %v, want %v", got, want)
			break
		}
	}
	if last, ok := w.Last(); !ok || last != 4 {
		t.Errorf("Last = %v, %v", last, ok)
	}
	if w.Mean() != 3 {
		t.Errorf("Mean = %v", w.Mean())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset should empty the window")
	}
}

func TestWindowAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range should panic")
		}
	}()
	NewWindow(2).At(0)
}

func TestWindowMinCapacity(t *testing.T) {
	w := NewWindow(0)
	if w.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", w.Cap())
	}
	w.Push(1)
	w.Push(2)
	if v, _ := w.Last(); v != 2 {
		t.Errorf("Last = %v", v)
	}
}

// Property: the window always retains exactly the last min(n, cap) pushes,
// in order.
func TestQuickWindowRetention(t *testing.T) {
	f := func(vals []float64, rawCap uint8) bool {
		capacity := int(rawCap%16) + 1
		w := NewWindow(capacity)
		for _, v := range vals {
			w.Push(v)
		}
		n := len(vals)
		keep := n
		if keep > capacity {
			keep = capacity
		}
		got := w.Values()
		if len(got) != keep {
			return false
		}
		for i := 0; i < keep; i++ {
			if got[i] != vals[n-keep+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimpleETS(t *testing.T) {
	s := NewSimpleETS(0.5)
	if s.Ready() {
		t.Error("fresh smoother should not be ready")
	}
	s.Observe(10)
	s.Observe(20)
	if got := s.Forecast(1); got != 15 {
		t.Errorf("Forecast = %v, want 15", got)
	}
	// Flat forecast regardless of horizon.
	if s.Forecast(10) != s.Forecast(1) {
		t.Error("simple ETS forecast should be flat in horizon")
	}
}

func TestHoltETSTrendTracking(t *testing.T) {
	h := NewHoltETS(0.8, 0.8)
	// A perfect linear ramp should be forecast almost exactly.
	for i := 0; i < 30; i++ {
		h.Observe(float64(2 * i))
	}
	if !h.Ready() {
		t.Fatal("Holt should be ready")
	}
	got := h.Forecast(1)
	want := 60.0 // next ramp value
	if math.Abs(got-want) > 1.0 {
		t.Errorf("Holt forecast = %v, want ≈ %v", got, want)
	}
	// Multi-step forecast extrapolates the trend.
	if h.Forecast(5) <= h.Forecast(1) {
		t.Error("multi-step forecast of a rising ramp should exceed one-step")
	}
}

func TestHoltETSConstantSeries(t *testing.T) {
	h := NewHoltETS(0.5, 0.1)
	for i := 0; i < 20; i++ {
		h.Observe(7)
	}
	if got := h.Forecast(3); math.Abs(got-7) > 1e-9 {
		t.Errorf("constant series forecast = %v, want 7", got)
	}
}

func TestFitHolt(t *testing.T) {
	series := make([]float64, 20)
	for i := range series {
		series[i] = float64(i)
	}
	got := FitHolt(series, 0.8, 0.8)
	if math.Abs(got-20) > 1.0 {
		t.Errorf("FitHolt ramp forecast = %v, want ≈ 20", got)
	}
}

func TestPeriodogramNil(t *testing.T) {
	if Periodogram([]float64{1, 2, 3}) != nil {
		t.Error("too-short series should yield nil periodogram")
	}
}

func TestDominantPeriodSine(t *testing.T) {
	// Strong period-8 sine: the detector must find it.
	n := 64
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 8)
	}
	period, ok := DominantPeriod(series, 0.5)
	if !ok {
		t.Fatal("expected a dominant period")
	}
	if period != 8 {
		t.Errorf("period = %d, want 8", period)
	}
}

func TestDominantPeriodNoise(t *testing.T) {
	// A pattern-free ramp of pseudo-random values: no single frequency
	// should carry half the energy.
	series := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5}
	if _, ok := DominantPeriod(series, 0.5); ok {
		t.Error("noise should not have a dominant period at 50% share")
	}
}

func TestDominantPeriodConstant(t *testing.T) {
	series := make([]float64, 16)
	if _, ok := DominantPeriod(series, 0.3); ok {
		t.Error("constant series has no period")
	}
}

func TestSignatureAndPredict(t *testing.T) {
	// Periodic series 1,2,3,4 repeating.
	var series []float64
	for i := 0; i < 5; i++ {
		series = append(series, 1, 2, 3, 4)
	}
	sig := Signature(series, 4)
	if sig == nil {
		t.Fatal("signature should exist")
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(sig[i]-want) > 1e-12 {
			t.Errorf("sig[%d] = %v, want %v", i, sig[i], want)
		}
	}
	pred := SignaturePredict(series, 4, 6)
	want := []float64{1, 2, 3, 4, 1, 2}
	for i := range want {
		if math.Abs(pred[i]-want[i]) > 1e-12 {
			t.Errorf("pred = %v, want %v", pred, want)
			break
		}
	}
	if Signature(series[:6], 4) != nil {
		t.Error("signature needs at least two full periods")
	}
	if SignaturePredict(series, 4, 0) != nil {
		t.Error("zero-horizon predict should be nil")
	}
}

func TestMarkovChainBinning(t *testing.T) {
	mc := NewMarkovChain(4, 0, 8)
	cases := []struct {
		x    float64
		want int
	}{{-1, 0}, {0, 0}, {1.9, 0}, {2, 1}, {7.9, 3}, {8, 3}, {100, 3}}
	for _, c := range cases {
		if got := mc.Bin(c.x); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestMarkovChainDegenerateRange(t *testing.T) {
	mc := NewMarkovChain(1, 5, 5)
	if mc.bins != 2 {
		t.Errorf("bins = %d, want raised to 2", mc.bins)
	}
	if mc.hi <= mc.lo {
		t.Error("degenerate range should be widened")
	}
}

func TestMarkovChainPredictAlternating(t *testing.T) {
	// Deterministic alternation between low (≈1) and high (≈9): after a
	// low sample the 1-step prediction must be high.
	mc := NewMarkovChain(2, 0, 10)
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			mc.Observe(1)
		} else {
			mc.Observe(9)
		}
	}
	mc.Observe(1) // end on low
	got := mc.Predict(1)
	if got < 5 {
		t.Errorf("Predict(1) after low = %v, want high (> 5)", got)
	}
	// Two steps ahead should be low again.
	if got2 := mc.Predict(2); got2 > 5 {
		t.Errorf("Predict(2) after low = %v, want low (< 5)", got2)
	}
}

func TestMarkovChainPredictBeforeData(t *testing.T) {
	mc := NewMarkovChain(4, 0, 10)
	if got := mc.Predict(1); got != 5 {
		t.Errorf("prior prediction = %v, want midpoint 5", got)
	}
}

func TestMarkovChainTransitionRowNormalized(t *testing.T) {
	mc := NewMarkovChain(3, 0, 3)
	mc.Fit([]float64{0.5, 1.5, 2.5, 0.5, 1.5})
	for b := 0; b < 3; b++ {
		row := mc.TransitionRow(b)
		var sum float64
		for _, p := range row {
			if p <= 0 {
				t.Errorf("row %d has non-positive prob %v", b, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", b, sum)
		}
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = NormalQuantile(0.975)
	}
	_ = sink
}

func BenchmarkPeriodogram64(b *testing.B) {
	series := make([]float64, 64)
	for i := range series {
		series[i] = math.Sin(float64(i) / 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Periodogram(series)
	}
}

func BenchmarkMarkovPredict(b *testing.B) {
	mc := NewMarkovChain(10, 0, 1)
	for i := 0; i < 200; i++ {
		mc.Observe(math.Mod(float64(i)*0.37, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Predict(3)
	}
}

func TestDominantPeriodRejectsTrend(t *testing.T) {
	// A pure linear ramp concentrates spectral energy at frequency 1 (the
	// trend); the detector must NOT report it as a usable signature.
	series := make([]float64, 32)
	for i := range series {
		series[i] = float64(i)
	}
	if p, ok := DominantPeriod(series, 0.3); ok {
		t.Errorf("trend misdetected as period %d", p)
	}
}
