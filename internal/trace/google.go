package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/job"
	"repro/internal/resource"
)

// Google cluster-trace (v2 "clusterdata-2011") task_usage support.
//
// The paper drives its evaluation with this trace ("the trace from Google
// which records the resource requirements and usage of tasks every 5
// minutes"). The trace itself is not redistributable, but users who have
// it can load the task_usage table here: rows are grouped per task, the
// 5-minute samples become per-slot usage via the paper's 5-minute →
// 10-second transformation, and tasks whose lifetime exceeds the paper's
// 5-minute short-job timeout can be filtered the way the paper "removed
// the long-lived jobs".
//
// The reader consumes the published 20-column layout; only the columns the
// reproduction needs are interpreted:
//
//	col 0  start time (µs)
//	col 1  end time (µs)
//	col 2  job ID
//	col 3  task index
//	col 5  mean CPU usage rate          (fraction of the reference machine)
//	col 6  canonical memory usage       (fraction)
//	col 12 mean local disk space used   (fraction)
type googleKey struct {
	jobID string
	task  string
}

type googleSample struct {
	start, end int64
	use        resource.Vector
}

// GoogleReadOptions controls task_usage parsing.
type GoogleReadOptions struct {
	// MachineCapacity scales the trace's normalized usage fractions into
	// absolute amounts. Zero defaults to the cluster-profile VM
	// (4 cores, 16 GB, 180 GB).
	MachineCapacity resource.Vector
	// ShortOnly drops tasks whose lifetime exceeds the paper's 5-minute
	// short-job timeout (the paper "removed the long-lived jobs").
	ShortOnly bool
	// SLOFactor for the constructed jobs; zero defaults to 2.0.
	SLOFactor float64
	// MaxTasks bounds how many tasks are constructed (0 = no bound).
	MaxTasks int
}

func (o GoogleReadOptions) withDefaults() GoogleReadOptions {
	if o.MachineCapacity.IsZero() {
		o.MachineCapacity = resource.New(4, 16, 180)
	}
	if o.SLOFactor <= 0 {
		o.SLOFactor = 2.0
	}
	return o
}

// ReadGoogleTaskUsage parses a task_usage CSV (no header, 20 columns) into
// job specs: one job per (job ID, task index), with the 5-minute samples
// transformed into 10-second slots. Arrival is the task's first sample
// start, converted from microseconds to slots.
func ReadGoogleTaskUsage(r io.Reader, opts GoogleReadOptions) ([]*job.Job, error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	samples := make(map[googleKey][]googleSample)
	var order []googleKey
	for line := 1; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: task_usage line %d: %w", line, err)
		}
		if len(row) < 13 {
			return nil, fmt.Errorf("trace: task_usage line %d has %d columns, want ≥ 13", line, len(row))
		}
		start, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d start time %q: %w", line, row[0], err)
		}
		end, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d end time %q: %w", line, row[1], err)
		}
		cpu, err := parseFraction(row[5])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d cpu: %w", line, err)
		}
		mem, err := parseFraction(row[6])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d memory: %w", line, err)
		}
		disk, err := parseFraction(row[12])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d disk: %w", line, err)
		}
		key := googleKey{jobID: row[2], task: row[3]}
		if _, seen := samples[key]; !seen {
			order = append(order, key)
		}
		samples[key] = append(samples[key], googleSample{
			start: start,
			end:   end,
			use:   resource.New(cpu, mem, disk).Mul(opts.MachineCapacity),
		})
	}

	var jobs []*job.Job
	id := 0
	for _, key := range order {
		rows := samples[key]
		sort.Slice(rows, func(a, b int) bool { return rows[a].start < rows[b].start })
		first := rows[0].start
		last := rows[len(rows)-1].end
		lifetimeSlots := int((last - first) / 1e6 / SlotSeconds)
		if lifetimeSlots < 1 {
			lifetimeSlots = 1
		}
		if opts.ShortOnly && lifetimeSlots > MaxShortJobSlots {
			continue
		}
		coarse := make([]resource.Vector, len(rows))
		for i, s := range rows {
			coarse[i] = s.use
		}
		usage := Densify(coarse, 0, first)
		if len(usage) > lifetimeSlots {
			usage = usage[:lifetimeSlots]
		}
		j := &job.Job{
			ID:        job.ID(id),
			Class:     classify(resource.MaxAcross(usage), opts.MachineCapacity),
			Arrival:   int(first / 1e6 / SlotSeconds),
			Duration:  len(usage),
			Usage:     usage,
			Request:   resource.MaxAcross(usage),
			SLOFactor: opts.SLOFactor,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: task %s/%s: %w", key.jobID, key.task, err)
		}
		jobs = append(jobs, j)
		id++
		if opts.MaxTasks > 0 && id >= opts.MaxTasks {
			break
		}
	}
	return jobs, nil
}

// parseFraction parses a usage fraction; empty fields (common in the real
// trace) read as zero.
func parseFraction(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if x < 0 {
		return 0, fmt.Errorf("negative fraction %v", x)
	}
	return x, nil
}

// classify picks an intensity class from normalized peak shares.
func classify(peak, cap resource.Vector) job.Class {
	shares := peak.Div(cap)
	dominant := resource.CPU
	for _, k := range resource.Kinds() {
		if shares.At(k) > shares.At(dominant) {
			dominant = k
		}
	}
	// Balanced when no share leads by ≥ 1.5×.
	var second float64
	for _, k := range resource.Kinds() {
		if k != dominant && shares.At(k) > second {
			second = shares.At(k)
		}
	}
	if second > 0 && shares.At(dominant) < 1.5*second {
		return job.Balanced
	}
	switch dominant {
	case resource.Memory:
		return job.MemIntensive
	case resource.Storage:
		return job.StorageIntensive
	default:
		return job.CPUIntensive
	}
}

// WriteGoogleTaskUsage renders jobs in the 20-column task_usage layout
// (one row per 5-minute sample, usage as fractions of machineCapacity) —
// the inverse of ReadGoogleTaskUsage for tooling and tests.
func WriteGoogleTaskUsage(w io.Writer, jobs []*job.Job, machineCapacity resource.Vector) error {
	if machineCapacity.IsZero() {
		machineCapacity = resource.New(4, 16, 180)
	}
	cw := csv.NewWriter(w)
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, j := range jobs {
		// One coarse sample per CoarseSlots of usage (mean within).
		for s := 0; s < len(j.Usage); s += CoarseSlots {
			endIdx := s + CoarseSlots
			if endIdx > len(j.Usage) {
				endIdx = len(j.Usage)
			}
			mean := resource.SumAcross(j.Usage[s:endIdx]).Scale(1 / float64(endIdx-s))
			frac := mean.Div(machineCapacity)
			startUS := int64(j.Arrival+s) * SlotSeconds * 1e6
			endUS := int64(j.Arrival+endIdx) * SlotSeconds * 1e6
			row := make([]string, 20)
			row[0] = strconv.FormatInt(startUS, 10)
			row[1] = strconv.FormatInt(endUS, 10)
			row[2] = strconv.Itoa(int(j.ID))
			row[3] = "0"
			row[4] = "machine-0"
			row[5] = f(frac[resource.CPU])
			row[6] = f(frac[resource.Memory])
			row[12] = f(frac[resource.Storage])
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
