package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/resource"
)

// googleRow builds one 20-column task_usage row.
func googleRow(startUS, endUS int64, jobID, task string, cpu, mem, disk string) string {
	cols := make([]string, 20)
	cols[0] = itoa64(startUS)
	cols[1] = itoa64(endUS)
	cols[2] = jobID
	cols[3] = task
	cols[4] = "m1"
	cols[5] = cpu
	cols[6] = mem
	cols[12] = disk
	return strings.Join(cols, ",")
}

func itoa64(x int64) string {
	var b []byte
	if x == 0 {
		return "0"
	}
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

func TestReadGoogleTaskUsage(t *testing.T) {
	// Task (1, 0): two 5-minute samples; task (2, 0): one sample.
	const us5min = 300 * 1e6
	data := strings.Join([]string{
		googleRow(0, us5min, "1", "0", "0.25", "0.1", "0.05"),
		googleRow(us5min, 2*us5min, "1", "0", "0.5", "0.1", "0.05"),
		googleRow(0, us5min, "2", "0", "0.1", "0.4", ""),
	}, "\n") + "\n"

	jobs, err := ReadGoogleTaskUsage(strings.NewReader(data), GoogleReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	j1 := jobs[0]
	if j1.Duration != 2*CoarseSlots {
		t.Errorf("task 1 duration = %d slots, want %d", j1.Duration, 2*CoarseSlots)
	}
	// First slot: 0.25 of 4 cores = 1 core.
	if got := j1.Usage[0].At(resource.CPU); got != 1 {
		t.Errorf("task 1 first-slot CPU = %v, want 1", got)
	}
	// Usage interpolates up toward the second sample (0.5×4 = 2).
	mid := j1.Usage[CoarseSlots].At(resource.CPU)
	if mid < 1.5 {
		t.Errorf("interpolated CPU at sample 2 start = %v, want ≈ 2", mid)
	}
	// Empty disk field reads as zero.
	j2 := jobs[1]
	if got := j2.Usage[0].At(resource.Storage); got != 0 {
		t.Errorf("task 2 disk = %v, want 0", got)
	}
	if j2.Class != job.MemIntensive {
		t.Errorf("task 2 class = %v, want mem-intensive", j2.Class)
	}
}

func TestReadGoogleShortOnlyFilters(t *testing.T) {
	const us5min = 300 * 1e6
	// Task 1 runs 10 minutes (> 5-minute timeout), task 2 runs 5.
	data := strings.Join([]string{
		googleRow(0, us5min, "1", "0", "0.2", "0.1", "0"),
		googleRow(us5min, 2*us5min, "1", "0", "0.2", "0.1", "0"),
		googleRow(0, us5min, "2", "0", "0.1", "0.1", "0"),
	}, "\n") + "\n"
	jobs, err := ReadGoogleTaskUsage(strings.NewReader(data), GoogleReadOptions{ShortOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("ShortOnly kept %d tasks, want 1", len(jobs))
	}
}

func TestReadGoogleMaxTasks(t *testing.T) {
	const us5min = 300 * 1e6
	data := strings.Join([]string{
		googleRow(0, us5min, "1", "0", "0.2", "0.1", "0"),
		googleRow(0, us5min, "2", "0", "0.2", "0.1", "0"),
		googleRow(0, us5min, "3", "0", "0.2", "0.1", "0"),
	}, "\n") + "\n"
	jobs, err := ReadGoogleTaskUsage(strings.NewReader(data), GoogleReadOptions{MaxTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("MaxTasks kept %d", len(jobs))
	}
}

func TestReadGoogleRejectsGarbage(t *testing.T) {
	cases := []string{
		"1,2,3\n", // too few columns
		googleRow(0, 300e6, "1", "0", "x", "0.1", "0") + "\n",    // bad cpu
		googleRow(0, 300e6, "1", "0", "-0.5", "0.1", "0") + "\n", // negative
		"a,b,1,0,m,0.1,0.1,,,,,,0,,,,,,,\n",                      // bad times
	}
	for i, c := range cases {
		if _, err := ReadGoogleTaskUsage(strings.NewReader(c), GoogleReadOptions{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGoogleRoundTrip(t *testing.T) {
	jobs, err := GenerateShortJobs(Config{Seed: 3, NumJobs: 10, MeanDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	cap := resource.New(4, 16, 180)
	var buf bytes.Buffer
	if err := WriteGoogleTaskUsage(&buf, jobs, cap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGoogleTaskUsage(&buf, GoogleReadOptions{MachineCapacity: cap})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip %d jobs, want %d", len(back), len(jobs))
	}
	// The coarse resampling loses slot detail but the mean CPU usage of
	// each job should be preserved within the interpolation error.
	for i := range jobs {
		want := jobs[i].MeanDemand().At(resource.CPU)
		got := back[i].MeanDemand().At(resource.CPU)
		if want == 0 {
			continue
		}
		if rel := (got - want) / want; rel > 0.35 || rel < -0.35 {
			t.Errorf("job %d mean CPU: wrote %v, read %v", i, want, got)
		}
	}
}
