package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/job"
	"repro/internal/resource"
)

// jobJSON is the on-disk JSON shape of one job. Usage rows are
// [cpu, mem, sto] triples to keep files compact and diff-friendly.
type jobJSON struct {
	ID        int          `json:"id"`
	Class     string       `json:"class"`
	Arrival   int          `json:"arrival"`
	Duration  int          `json:"duration"`
	SLOFactor float64      `json:"slo_factor"`
	Request   [3]float64   `json:"request"`
	Usage     [][3]float64 `json:"usage"`
}

func toJSON(j *job.Job) jobJSON {
	out := jobJSON{
		ID:        int(j.ID),
		Class:     j.Class.String(),
		Arrival:   j.Arrival,
		Duration:  j.Duration,
		SLOFactor: j.SLOFactor,
		Request:   [3]float64(j.Request),
	}
	for _, u := range j.Usage {
		out.Usage = append(out.Usage, [3]float64(u))
	}
	return out
}

func classFromString(s string) (job.Class, error) {
	for _, c := range []job.Class{job.Balanced, job.CPUIntensive, job.MemIntensive, job.StorageIntensive} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown class %q", s)
}

func fromJSON(in jobJSON) (*job.Job, error) {
	class, err := classFromString(in.Class)
	if err != nil {
		return nil, err
	}
	j := &job.Job{
		ID:        job.ID(in.ID),
		Class:     class,
		Arrival:   in.Arrival,
		Duration:  in.Duration,
		SLOFactor: in.SLOFactor,
		Request:   resource.Vector(in.Request),
	}
	for _, u := range in.Usage {
		j.Usage = append(j.Usage, resource.Vector(u))
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// WriteJSON streams the jobs as a JSON array.
func WriteJSON(w io.Writer, jobs []*job.Job) error {
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = toJSON(j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON parses a JSON array of jobs and validates every spec.
func ReadJSON(r io.Reader) ([]*job.Job, error) {
	var raw []jobJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	jobs := make([]*job.Job, 0, len(raw))
	for _, in := range raw {
		j, err := fromJSON(in)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// csvHeader is the flat per-slot CSV schema, one row per (job, slot),
// mirroring the Google trace's task-usage table.
var csvHeader = []string{
	"job_id", "class", "arrival", "duration", "slo_factor",
	"req_cpu", "req_mem", "req_sto", "slot", "use_cpu", "use_mem", "use_sto",
}

// WriteCSV writes the jobs in a flat per-slot CSV table.
func WriteCSV(w io.Writer, jobs []*job.Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, j := range jobs {
		for s, u := range j.Usage {
			row := []string{
				strconv.Itoa(int(j.ID)), j.Class.String(),
				strconv.Itoa(j.Arrival), strconv.Itoa(j.Duration), f(j.SLOFactor),
				f(j.Request[0]), f(j.Request[1]), f(j.Request[2]),
				strconv.Itoa(s),
				f(u[0]), f(u[1]), f(u[2]),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the flat per-slot table back into job specs. Rows must be
// grouped by job and ordered by slot within a job (the format WriteCSV
// emits).
func ReadCSV(r io.Reader) ([]*job.Job, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: csv header has %d columns, want %d", len(header), len(csvHeader))
	}
	var jobs []*job.Job
	var cur *job.Job
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv row: %w", err)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: bad job_id %q: %w", row[0], err)
		}
		if cur == nil || int(cur.ID) != id {
			class, err := classFromString(row[1])
			if err != nil {
				return nil, err
			}
			nums, err := parseFloats(row[2:8])
			if err != nil {
				return nil, err
			}
			cur = &job.Job{
				ID:        job.ID(id),
				Class:     class,
				Arrival:   int(nums[0]),
				Duration:  int(nums[1]),
				SLOFactor: nums[2],
				Request:   resource.New(nums[3], nums[4], nums[5]),
			}
			jobs = append(jobs, cur)
		}
		use, err := parseFloats(row[9:12])
		if err != nil {
			return nil, err
		}
		cur.Usage = append(cur.Usage, resource.New(use[0], use[1], use[2]))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad number %q: %w", f, err)
		}
		out[i] = x
	}
	return out, nil
}
