// Package trace generates synthetic Google-trace-like workloads.
//
// The paper drives its evaluation with the 2011 Google cluster trace,
// keeping only short-lived jobs and transforming the 5-minute samples into
// a 10-second trace. The real trace is not redistributable, so this package
// synthesizes workloads that reproduce the statistical properties the
// paper's argument depends on:
//
//   - short lifetimes: durations of seconds to minutes with a 5-minute
//     timeout (heavy-tailed, truncated);
//   - no stable utilization pattern: per-slot demands are a mean-reverting
//     random walk, not a periodic signal;
//   - frequent fluctuation: regime-switching peak/valley bursts (what the
//     paper's HMM corrects for);
//   - multi-resource skew: CPU-, memory- and storage-intensive classes
//     (what complementary packing exploits);
//   - reservation slack: resident jobs reserve far more than their average
//     usage (Reiss et al.'s observation that average use is well below the
//     reservation) — the allocated-but-unused pool CORP harvests.
//
// All generation is deterministic given the seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/job"
	"repro/internal/resource"
)

// SlotSeconds is the simulation slot length; the paper transforms the
// 5-minute Google samples into a 10-second trace.
const SlotSeconds = 10

// CoarseSlots is how many fine slots one original 5-minute sample spans.
const CoarseSlots = 300 / SlotSeconds

// MaxShortJobSlots caps short-lived job durations at the paper's 5-minute
// timeout.
const MaxShortJobSlots = 300 / SlotSeconds

// ArrivalPattern selects how short-lived jobs arrive over the span.
type ArrivalPattern int

// Arrival patterns.
const (
	// ArrivalUniform scatters arrivals uniformly over the span (the
	// default; matches the paper's steady submission).
	ArrivalUniform ArrivalPattern = iota
	// ArrivalBursty concentrates arrivals into a few short bursts —
	// the flash-crowd case.
	ArrivalBursty
	// ArrivalDiurnal modulates the arrival rate with one sinusoidal
	// "day" across the span.
	ArrivalDiurnal
)

// String names the pattern.
func (a ArrivalPattern) String() string {
	switch a {
	case ArrivalUniform:
		return "uniform"
	case ArrivalBursty:
		return "bursty"
	case ArrivalDiurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("ArrivalPattern(%d)", int(a))
	}
}

// Config parameterizes short-lived job generation.
type Config struct {
	Seed    int64
	NumJobs int

	// ArrivalSpan is the number of slots over which jobs arrive.
	// Zero defaults to 60 slots (10 minutes).
	ArrivalSpan int

	// Arrivals selects the arrival pattern; the zero value is uniform.
	Arrivals ArrivalPattern

	// MeanDuration is the mean nominal duration in slots; durations are
	// lognormal, truncated to [1, MaxShortJobSlots]. Zero defaults to 6
	// slots (one minute).
	MeanDuration int

	// SLOFactor scales nominal duration into the response-time
	// threshold. Zero defaults to 2.0.
	SLOFactor float64

	// VMCapacity scales job demands; a job's peak demand per kind stays
	// below roughly half of this. Zero defaults to the cluster-profile
	// VM (4 cores, 16 GB, 180 GB).
	VMCapacity resource.Vector

	// ClassWeights gives the sampling weight of each intensity class in
	// order Balanced, CPU, MEM, Storage. Zero defaults to
	// {0.2, 0.35, 0.35, 0.1} — mostly complementary CPU/MEM pairs, as in
	// the paper's motivating figure.
	ClassWeights [4]float64

	// Fluctuation is the relative amplitude of peak/valley bursts. Zero
	// defaults to 0.4.
	Fluctuation float64
}

func (c Config) withDefaults() Config {
	if c.ArrivalSpan <= 0 {
		c.ArrivalSpan = 60
	}
	if c.MeanDuration <= 0 {
		c.MeanDuration = 6
	}
	if c.SLOFactor <= 0 {
		c.SLOFactor = 2.0
	}
	if c.VMCapacity.IsZero() {
		c.VMCapacity = resource.New(4, 16, 180)
	}
	if c.ClassWeights == ([4]float64{}) {
		c.ClassWeights = [4]float64{0.2, 0.35, 0.35, 0.1}
	}
	if c.Fluctuation <= 0 {
		c.Fluctuation = 0.4
	}
	return c
}

// GenerateShortJobs produces NumJobs short-lived job specs. Jobs are sorted
// by arrival slot and have sequential IDs.
func GenerateShortJobs(cfg Config) ([]*job.Job, error) {
	cfg = cfg.withDefaults()
	if cfg.NumJobs < 0 {
		return nil, fmt.Errorf("trace: negative NumJobs %d", cfg.NumJobs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]*job.Job, 0, cfg.NumJobs)
	// One backing array for all specs: the dominant per-job allocation
	// after the usage series itself (halves the generator's allocs/op).
	specs := make([]job.Job, cfg.NumJobs)
	arrivals := sampleArrivals(rng, cfg.Arrivals, cfg.NumJobs, cfg.ArrivalSpan)
	sortInts(arrivals)
	for i := 0; i < cfg.NumJobs; i++ {
		class := sampleClass(rng, cfg.ClassWeights)
		dur := sampleDuration(rng, cfg.MeanDuration)
		base := classBaseDemand(rng, class, cfg.VMCapacity)
		usage := demandSeries(rng, dur, base, cfg.Fluctuation)
		j := &specs[i]
		*j = job.Job{
			ID:        job.ID(i),
			Class:     class,
			Arrival:   arrivals[i],
			Duration:  dur,
			Usage:     usage,
			Request:   resource.MaxAcross(usage),
			SLOFactor: cfg.SLOFactor,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: generated invalid job: %w", err)
		}
		jobs = append(jobs, j)
	}
	// Repack every usage series into one contiguous arena, preserving the
	// generated values exactly. The simulator's execute loop gathers one
	// usage element per running job per slot; with each series on its own
	// generator-allocated heap page those gathers cost a dTLB walk apiece,
	// while the packed arena keeps concurrently running (≈ concurrently
	// generated) jobs on shared pages.
	total := 0
	for _, j := range jobs {
		total += len(j.Usage)
	}
	arena := make([]resource.Vector, 0, total)
	for _, j := range jobs {
		off := len(arena)
		arena = append(arena, j.Usage...)
		j.Usage = arena[off:len(arena):len(arena)]
	}
	return jobs, nil
}

// ResidentConfig parameterizes the long-standing tenant load whose
// allocated-but-unused resources CORP harvests.
type ResidentConfig struct {
	Seed int64

	// Horizon is the number of slots of usage series to generate per
	// resident. Zero defaults to 600 slots (100 minutes).
	Horizon int

	// ReservedShare is the fraction of VM capacity the residents of one
	// VM reserve in total. Zero defaults to 0.7.
	ReservedShare float64

	// MeanUseShare is the average fraction of its reservation a resident
	// actually uses. Zero defaults to 0.45 (Google-trace-like slack).
	MeanUseShare float64

	// Fluctuation is the burst amplitude. Zero defaults to 0.5.
	Fluctuation float64

	// JumpProb is the probability that a coarse-sample boundary is a
	// step discontinuity (short-lived-job churn) rather than a smooth
	// transition. Zero defaults to 0.5.
	JumpProb float64
}

func (c ResidentConfig) withDefaults() ResidentConfig {
	if c.Horizon <= 0 {
		c.Horizon = 600
	}
	if c.ReservedShare <= 0 {
		c.ReservedShare = 0.7
	}
	if c.MeanUseShare <= 0 {
		c.MeanUseShare = 0.45
	}
	if c.Fluctuation <= 0 {
		c.Fluctuation = 0.5
	}
	if c.JumpProb <= 0 {
		c.JumpProb = 0.5
	}
	return c
}

// GenerateResidents produces per-VM resident jobs for the given VM
// capacities. Each VM hosts one resident job reserving ReservedShare of its
// capacity with fluctuating usage around MeanUseShare of the reservation.
// Resident IDs start at firstID.
func GenerateResidents(cfg ResidentConfig, vmCaps []resource.Vector, firstID job.ID) ([]*job.Job, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	residents := make([]*job.Job, 0, len(vmCaps))
	specs := make([]job.Job, len(vmCaps))
	var scratch seriesScratch
	for i, cap := range vmCaps {
		reserve := cap.Scale(cfg.ReservedShare)
		base := reserve.Scale(cfg.MeanUseShare)
		usage := scratch.smoothSeries(rng, cfg.Horizon, base, cfg.Fluctuation, cfg.JumpProb)
		// Usage cannot exceed the reservation.
		for k := range usage {
			usage[k] = usage[k].ClampTo(reserve)
		}
		j := &specs[i]
		*j = job.Job{
			ID:        firstID + job.ID(i),
			Class:     job.Balanced,
			Arrival:   0,
			Duration:  cfg.Horizon,
			Usage:     usage,
			Request:   reserve,
			SLOFactor: 10, // residents are long-lived; SLO not at issue
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: generated invalid resident: %w", err)
		}
		residents = append(residents, j)
	}
	return residents, nil
}

// LongJobConfig parameterizes long-lived service jobs for the cooperative
// mixed-workload extension (the paper: CORP "can cooperate with other
// methods for long-lived jobs for resource allocation"; future work: "we
// will consider both short-lived and long-lived jobs").
type LongJobConfig struct {
	Seed    int64
	NumJobs int

	// ArrivalSpan spreads arrivals; zero defaults to 60 slots.
	ArrivalSpan int
	// MinDuration/MaxDuration bound durations in slots; zeros default to
	// 60 and 240 (10–40 minutes).
	MinDuration, MaxDuration int
	// VMCapacity scales demands; zero defaults to the cluster VM.
	VMCapacity resource.Vector
	// ReservedShare is the fraction of a VM each long job reserves;
	// zero defaults to 0.25.
	ReservedShare float64
	// MeanUseShare is the average used fraction of the reservation;
	// zero defaults to 0.5.
	MeanUseShare float64
	// SLOFactor; zero defaults to 4 (long services have loose deadlines).
	SLOFactor float64
}

func (c LongJobConfig) withDefaults() LongJobConfig {
	if c.ArrivalSpan <= 0 {
		c.ArrivalSpan = 60
	}
	if c.MinDuration <= 0 {
		c.MinDuration = 60
	}
	if c.MaxDuration <= c.MinDuration {
		c.MaxDuration = c.MinDuration * 4
	}
	if c.VMCapacity.IsZero() {
		c.VMCapacity = resource.New(4, 16, 180)
	}
	if c.ReservedShare <= 0 {
		c.ReservedShare = 0.25
	}
	if c.MeanUseShare <= 0 {
		c.MeanUseShare = 0.5
	}
	if c.SLOFactor <= 0 {
		c.SLOFactor = 4
	}
	return c
}

// GenerateLongJobs produces long-lived service jobs whose reservations
// exceed their smooth, fluctuating usage — additional donors for CORP's
// opportunistic pool in mixed-workload runs. IDs start at firstID.
func GenerateLongJobs(cfg LongJobConfig, firstID job.ID) ([]*job.Job, error) {
	cfg = cfg.withDefaults()
	if cfg.NumJobs < 0 {
		return nil, fmt.Errorf("trace: negative NumJobs %d", cfg.NumJobs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x10f6))
	jobs := make([]*job.Job, 0, cfg.NumJobs)
	specs := make([]job.Job, cfg.NumJobs)
	var scratch seriesScratch
	for i := 0; i < cfg.NumJobs; i++ {
		dur := cfg.MinDuration + rng.Intn(cfg.MaxDuration-cfg.MinDuration+1)
		reserve := cfg.VMCapacity.Scale(cfg.ReservedShare * (0.7 + 0.6*rng.Float64()))
		base := reserve.Scale(cfg.MeanUseShare)
		usage := scratch.smoothSeries(rng, dur, base, 0.5, 0.5)
		for k := range usage {
			usage[k] = usage[k].ClampTo(reserve)
		}
		j := &specs[i]
		*j = job.Job{
			ID:        firstID + job.ID(i),
			Class:     job.Balanced,
			Arrival:   rng.Intn(cfg.ArrivalSpan),
			Duration:  dur,
			Usage:     usage,
			Request:   reserve,
			SLOFactor: cfg.SLOFactor,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: generated invalid long job: %w", err)
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	return jobs, nil
}

// Densify performs the paper's 5-minute → 10-second transformation: each
// coarse sample becomes CoarseSlots fine slots, linearly interpolated
// toward the next sample with multiplicative jitter of the given relative
// amplitude. Deterministic for a given seed.
func Densify(coarse []resource.Vector, jitter float64, seed int64) []resource.Vector {
	if len(coarse) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	fine := make([]resource.Vector, 0, len(coarse)*CoarseSlots)
	for i, cur := range coarse {
		next := cur
		if i+1 < len(coarse) {
			next = coarse[i+1]
		}
		for s := 0; s < CoarseSlots; s++ {
			f := float64(s) / float64(CoarseSlots)
			v := cur.Scale(1 - f).Add(next.Scale(f))
			if jitter > 0 {
				v = v.Scale(1 + jitter*(2*rng.Float64()-1))
			}
			fine = append(fine, v.ClampNonNegative())
		}
	}
	return fine
}

// sampleArrivals draws arrival slots for the given pattern.
func sampleArrivals(rng *rand.Rand, pattern ArrivalPattern, n, span int) []int {
	arrivals := make([]int, n)
	switch pattern {
	case ArrivalBursty:
		// 3 burst epochs, each 5% of the span wide.
		nBursts := 3
		width := span / 20
		if width < 1 {
			width = 1
		}
		centers := make([]int, nBursts)
		for b := range centers {
			centers[b] = rng.Intn(span)
		}
		for i := range arrivals {
			c := centers[rng.Intn(nBursts)]
			a := c + rng.Intn(2*width+1) - width
			if a < 0 {
				a = 0
			}
			if a >= span {
				a = span - 1
			}
			arrivals[i] = a
		}
	case ArrivalDiurnal:
		// Rejection-sample against 0.5·(1 + sin) over one "day".
		for i := range arrivals {
			for {
				a := rng.Intn(span)
				rate := 0.5 * (1 + math.Sin(2*math.Pi*float64(a)/float64(span)))
				if rng.Float64() < rate {
					arrivals[i] = a
					break
				}
			}
		}
	default:
		for i := range arrivals {
			arrivals[i] = rng.Intn(span)
		}
	}
	return arrivals
}

// sampleClass draws an intensity class with the given weights.
func sampleClass(rng *rand.Rand, w [4]float64) job.Class {
	var total float64
	for _, x := range w {
		total += x
	}
	u := rng.Float64() * total
	for i, x := range w {
		if u < x {
			return job.Class(i)
		}
		u -= x
	}
	return job.Balanced
}

// sampleDuration draws a lognormal duration (heavy tail), truncated to
// [1, MaxShortJobSlots].
func sampleDuration(rng *rand.Rand, mean int) int {
	mu := math.Log(float64(mean)) - 0.32 // sigma²/2 with sigma = 0.8
	d := int(math.Exp(mu + 0.8*rng.NormFloat64()))
	if d < 1 {
		d = 1
	}
	if d > MaxShortJobSlots {
		d = MaxShortJobSlots
	}
	return d
}

// classBaseDemand draws a base demand vector for a class. Dominant kinds
// sit at 8–20% of VM capacity, non-dominant at 2–7% (bursts push peaks
// well above the base, so requests land around a quarter of a VM).
func classBaseDemand(rng *rand.Rand, class job.Class, vmCap resource.Vector) resource.Vector {
	hi := func() float64 { return 0.08 + 0.12*rng.Float64() }
	lo := func() float64 { return 0.02 + 0.05*rng.Float64() }
	var shares resource.Vector
	switch class {
	case job.CPUIntensive:
		shares = resource.New(hi(), lo(), lo())
	case job.MemIntensive:
		shares = resource.New(lo(), hi(), lo())
	case job.StorageIntensive:
		shares = resource.New(lo(), lo(), hi())
	default: // Balanced
		m := 0.05 + 0.08*rng.Float64()
		shares = resource.New(m, m, m)
	}
	return shares.Mul(vmCap)
}

// regime indices for the burst process.
const (
	regimeNormal = iota
	regimePeak
	regimeValley
)

// demandSeries builds an n-slot demand series around base: a mean-reverting
// multiplicative walk modulated by a three-regime (normal/peak/valley)
// Markov burst process. This is deliberately pattern-free — no periodic
// component — matching the paper's premise that short-lived jobs "do not
// exhibit certain resource utilization patterns".
func demandSeries(rng *rand.Rand, n int, base resource.Vector, amp float64) []resource.Vector {
	series := make([]resource.Vector, n)
	level := 1.0
	regime := regimeNormal
	for t := 0; t < n; t++ {
		// Regime switching: enter a burst with p=0.12, leave with p=0.35.
		switch regime {
		case regimeNormal:
			if rng.Float64() < 0.12 {
				if rng.Float64() < 0.5 {
					regime = regimePeak
				} else {
					regime = regimeValley
				}
			}
		default:
			if rng.Float64() < 0.35 {
				regime = regimeNormal
			}
		}
		// Mean-reverting walk on the multiplicative level.
		level += 0.5*(1-level) + 0.12*rng.NormFloat64()
		if level < 0.6 {
			level = 0.6
		}
		if level > 1.5 {
			level = 1.5
		}
		mult := level
		switch regime {
		case regimePeak:
			mult *= 1 + amp
		case regimeValley:
			mult *= 1 - amp
			if mult < 0.05 {
				mult = 0.05
			}
		}
		series[t] = base.Scale(mult).ClampNonNegative()
	}
	return series
}

// smoothSeries builds resident usage the way the paper's own trace was
// built: a coarse 5-minute-granularity process (mean-reverting level with
// persistent peak/valley burst regimes) is transformed to 10-second slots
// by interpolation with small multiplicative jitter — exactly the paper's
// "we transformed the ... 5-minute trace into [a] 10-second trace". The
// result fluctuates at the multi-minute scale (what the HMM corrects for)
// while staying smooth at the slot scale (as a resampled trace is).
func smoothSeries(rng *rand.Rand, n int, base resource.Vector, amp, jumpProb float64) []resource.Vector {
	var scratch seriesScratch
	return scratch.smoothSeries(rng, n, base, amp, jumpProb)
}

// seriesScratch holds the transient buffers smoothSeries needs (coarse
// process, jump flags, jitter RNG) so generators looping over many series
// pay for them once instead of per series. Only the returned fine series
// escapes; everything here is overwritten on the next call.
type seriesScratch struct {
	coarse []resource.Vector
	jump   []bool
	jitter *rand.Rand
}

func (sc *seriesScratch) smoothSeries(rng *rand.Rand, n int, base resource.Vector, amp, jumpProb float64) []resource.Vector {
	nCoarse := n/CoarseSlots + 2
	if cap(sc.coarse) < nCoarse {
		sc.coarse = make([]resource.Vector, nCoarse)
		sc.jump = make([]bool, nCoarse)
	}
	coarse := sc.coarse[:nCoarse]
	level := 1.0
	regime := regimeNormal
	for i := range coarse {
		switch regime {
		case regimeNormal:
			if rng.Float64() < 0.30 {
				if rng.Float64() < 0.5 {
					regime = regimePeak
				} else {
					regime = regimeValley
				}
			}
		default:
			if rng.Float64() < 0.40 { // bursts last ~2.5 coarse steps
				regime = regimeNormal
			}
		}
		level += 0.4*(1-level) + 0.12*rng.NormFloat64()
		if level < 0.2 {
			level = 0.2
		}
		if level > 1.8 {
			level = 1.8
		}
		mult := level
		switch regime {
		case regimePeak:
			mult *= 1 + amp
		case regimeValley:
			mult *= 1 - amp
			if mult < 0.05 {
				mult = 0.05
			}
		}
		coarse[i] = base.Scale(mult)
	}
	// Short-lived-job churn causes step discontinuities: at some coarse
	// boundaries the level jumps (a job finished or arrived) instead of
	// drifting. Densify piecewise: hold-then-jump at jump boundaries,
	// interpolate elsewhere.
	jump := sc.jump[:nCoarse]
	for i := range jump {
		jump[i] = rng.Float64() < jumpProb
	}
	if sc.jitter == nil {
		sc.jitter = rand.New(rand.NewSource(rng.Int63()))
	} else {
		// Seed replays the same sequence rand.New(rand.NewSource(s))
		// would produce, so reuse is draw-for-draw identical.
		sc.jitter.Seed(rng.Int63())
	}
	jitterRng := sc.jitter
	// The fine series escapes (it becomes the job's Usage), so it is the
	// one allocation per series — sized exactly n; trailing jitter draws
	// for the unused tail of the last coarse step are skipped, which is
	// unobservable because the jitter RNG is re-seeded per series.
	fine := make([]resource.Vector, 0, n)
densify:
	for i := 0; i < nCoarse; i++ {
		cur := coarse[i]
		next := cur
		if i+1 < nCoarse && !jump[i+1] {
			next = coarse[i+1]
		}
		for s := 0; s < CoarseSlots; s++ {
			f := float64(s) / float64(CoarseSlots)
			v := cur.Scale(1 - f).Add(next.Scale(f))
			v = v.Scale(1 + 0.04*(2*jitterRng.Float64()-1))
			fine = append(fine, v.ClampNonNegative())
			if len(fine) == n {
				break densify
			}
		}
	}
	return fine
}

// sortInts sorts ascending. Small lists (the paper-scale 50–300 arrivals)
// use insertion sort; larger ones (the scale profile generates hundreds of
// thousands of arrivals, where insertion sort's O(n²) dominated the whole
// snapshot build) route through sort.Ints. Both produce the identical
// sorted slice, so generated workloads are byte-for-byte unchanged.
func sortInts(xs []int) {
	if len(xs) > 64 {
		sort.Ints(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
